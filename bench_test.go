// Benchmarks regenerating the measurements behind every table and
// figure of the paper. Table 2 and the portfolio study involve
// multi-second unsatisfiability proofs by design, so by default those
// benchmarks run on the faster half of the suite; set
// FPGASAT_BENCH_FULL=1 to measure all eight Table 2 instances exactly
// as cmd/experiments does (the recorded results live in
// EXPERIMENTS.md).
package fpgasat_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"fpgasat/internal/core"
	"fpgasat/internal/experiments"
	"fpgasat/internal/fpga"
	"fpgasat/internal/graph"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/portfolio"
	"fpgasat/internal/sat"
	"fpgasat/internal/search"
	"fpgasat/internal/share"
)

// benchInstances returns the Table 2 instances measured by default:
// the two smallest challenging ones, or all eight with
// FPGASAT_BENCH_FULL=1.
func benchInstances(b *testing.B) []mcnc.Instance {
	b.Helper()
	insts := mcnc.Table2Instances()
	if os.Getenv("FPGASAT_BENCH_FULL") == "" {
		return insts[:2]
	}
	return insts
}

func mustInstance(b *testing.B, name string) mcnc.Instance {
	b.Helper()
	in, err := mcnc.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

func mustGraph(b *testing.B, in mcnc.Instance) *graph.Graph {
	b.Helper()
	_, g, err := in.Build()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func mustStrategy(b *testing.B, spec string) core.Strategy {
	b.Helper()
	s, err := core.ParseStrategy(spec)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTable1Encodings measures the generation of the paper's
// Table 1 example (the three previously known encodings on two
// adjacent vertices with three colors).
func BenchmarkTable1Encodings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiments.RunTable1(); len(tbl.Rows) != 3 {
			b.Fatal("wrong table")
		}
	}
}

// BenchmarkFigure1Trees measures construction of the four ITE-tree
// encodings of Figure 1 for a 13-value domain.
func BenchmarkFigure1Trees(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 measures the unroutability proof (translate + encode
// + solve at W-1) per instance and strategy column — the grid of the
// paper's Table 2.
func BenchmarkTable2(b *testing.B) {
	for _, in := range benchInstances(b) {
		g := mustGraph(b, in)
		w := in.UnroutableW()
		for _, col := range experiments.Table2Columns {
			s := mustStrategy(b, col)
			b.Run(fmt.Sprintf("%s/W=%d/%s", in.Name, w, col), func(b *testing.B) {
				b.ReportAllocs()
				var conflicts int64
				for i := 0; i < b.N; i++ {
					t := experiments.RunStrategy(g, w, s, 0, 0, nil)
					if t.Status != sat.Unsat {
						b.Fatalf("got %v, want Unsat", t.Status)
					}
					conflicts += t.Conflicts
				}
				b.ReportMetric(float64(conflicts)/float64(b.N), "conflicts/op")
			})
		}
	}
}

// BenchmarkRoutable measures the satisfiable side (finding a detailed
// routing at W) for every paper encoding — the paper's observation
// that routable configurations are fast under all encodings.
func BenchmarkRoutable(b *testing.B) {
	in := mustInstance(b, "alu2")
	g := mustGraph(b, in)
	for _, encName := range core.PaperEncodingNames {
		s := mustStrategy(b, encName+"/s1")
		b.Run(fmt.Sprintf("%s/W=%d/%s", in.Name, in.RoutableW, encName), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				t := experiments.RunStrategy(g, in.RoutableW, s, 0, 0, nil)
				if t.Status != sat.Sat {
					b.Fatalf("got %v, want Sat", t.Status)
				}
			}
		})
	}
}

// BenchmarkPortfolio measures the paper's 2- and 3-strategy portfolios
// against the best single strategy on an unroutability proof.
func BenchmarkPortfolio(b *testing.B) {
	in := mustInstance(b, "alu2")
	g := mustGraph(b, in)
	w := in.UnroutableW()
	single := mustStrategy(b, "ITE-linear-2+muldirect/s1")
	b.Run("single/"+single.Name(), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if t := experiments.RunStrategy(g, w, single, 0, 0, nil); t.Status != sat.Unsat {
				b.Fatal(t.Status)
			}
		}
	})
	for name, members := range map[string][]core.Strategy{
		"portfolio2": portfolio.Must(portfolio.PaperPortfolio2()),
		"portfolio3": portfolio.Must(portfolio.PaperPortfolio3()),
	} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				winner, _, err := portfolio.Run(g, w, members, 0)
				if err != nil || winner.Status != sat.Unsat {
					b.Fatalf("%v %v", winner.Status, err)
				}
			}
		})
	}
}

// BenchmarkPortfolioBlind and BenchmarkPortfolioShared contrast a
// seeded portfolio of replicated same-strategy lanes racing blind
// against the same lanes cooperating through the learnt-clause
// exchange — the saving measured in the clause-sharing study
// (EXPERIMENTS.md, BENCH_portfolio.json).
func BenchmarkPortfolioBlind(b *testing.B)  { benchSharedPortfolio(b, false) }
func BenchmarkPortfolioShared(b *testing.B) { benchSharedPortfolio(b, true) }

func benchSharedPortfolio(b *testing.B, shared bool) {
	in := mustInstance(b, "alu2")
	g := mustGraph(b, in)
	w := in.UnroutableW()
	lanes := portfolio.Replicate([]core.Strategy{mustStrategy(b, "ITE-linear-2+muldirect/s1")}, 2)
	b.ReportAllocs()
	var conflicts int64
	for i := 0; i < b.N; i++ {
		opts := portfolio.Options{Seed: 1}
		if shared {
			opts.Share = &share.Options{}
		}
		winner, all, err := portfolio.RunHardened(context.Background(), g, w, lanes, opts)
		if err != nil || winner.Status != sat.Unsat {
			b.Fatalf("%v %v", winner.Status, err)
		}
		for _, r := range all {
			conflicts += r.Stats.Conflicts
		}
	}
	b.ReportMetric(float64(conflicts)/float64(b.N), "conflicts/op")
}

// BenchmarkEncodingSizes measures pure CNF generation (the
// "translation to CNF" column of the paper's time accounting) per
// encoding.
func BenchmarkEncodingSizes(b *testing.B) {
	in := mustInstance(b, "9symml")
	g := mustGraph(b, in)
	w := in.UnroutableW()
	for _, encName := range core.PaperEncodingNames {
		enc, err := core.ByName(encName)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(encName, func(b *testing.B) {
			var clauses int
			for i := 0; i < b.N; i++ {
				e := core.Encode(core.NewCSP(g, w), enc)
				clauses = e.CNF.NumClauses()
			}
			b.ReportMetric(float64(clauses), "clauses")
		})
	}
}

// countSink is a minimal ClauseSink: it absorbs clauses without
// retaining them, isolating pure emission cost from CNF storage.
type countSink struct{ clauses int }

func (s *countSink) AddClause(lits ...int) { s.clauses++ }

// BenchmarkEncodeMaterialized measures the classic pipeline step:
// build the full CNF clause list in memory (the input to DIMACS export
// or a fresh solver).
func BenchmarkEncodeMaterialized(b *testing.B) {
	in := mustInstance(b, "9symml")
	g := mustGraph(b, in)
	csp := core.NewCSP(g, in.UnroutableW())
	enc, err := core.ByName("ITE-linear-2+muldirect")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if e := core.Encode(csp, enc); e.CNF.NumClauses() == 0 {
			b.Fatal("empty CNF")
		}
	}
}

// BenchmarkEncodeInto measures the same encoding streamed through the
// ClauseSink interface with no CNF buffer — the path the incremental
// search uses to feed a solver directly.
func BenchmarkEncodeInto(b *testing.B) {
	in := mustInstance(b, "9symml")
	g := mustGraph(b, in)
	csp := core.NewCSP(g, in.UnroutableW())
	enc, err := core.ByName("ITE-linear-2+muldirect")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink := &countSink{}
		if st := core.EncodeInto(csp, enc, sink); sink.clauses == 0 || st.NumVars == 0 {
			b.Fatal("empty encoding")
		}
	}
}

// BenchmarkMinWidthSingleShot measures the pre-incremental width
// search: one fresh encode + solve per width, descending from the
// DSATUR bound until the Unsat proof.
func BenchmarkMinWidthSingleShot(b *testing.B) {
	in := mustInstance(b, "9symml")
	g := mustGraph(b, in)
	s := mustStrategy(b, "ITE-linear-2+muldirect/s1")
	hi := in.RoutableW + 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		found := 0
		for w := hi; w >= 1; w-- {
			e := core.Encode(core.BuildCSP(g, w, s.Symmetry), s.Encoding)
			res := sat.SolveCNFContext(context.Background(), e.CNF, sat.Options{})
			if res.Status != sat.Sat {
				break
			}
			found = w
		}
		if found != in.RoutableW {
			b.Fatalf("found W=%d, want %d", found, in.RoutableW)
		}
	}
}

// BenchmarkMinWidthIncremental measures the same search on one
// incremental solver: a single encode at the upper bound, then one
// assumption probe per width with learnt clauses carried across
// probes. Compare against BenchmarkMinWidthSingleShot.
func BenchmarkMinWidthIncremental(b *testing.B) {
	in := mustInstance(b, "9symml")
	g := mustGraph(b, in)
	s := mustStrategy(b, "ITE-linear-2+muldirect/s1")
	hi := in.RoutableW + 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := search.MinWidth(context.Background(), g, search.Options{
			Strategy: s,
			Lo:       1,
			Hi:       hi,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.MinWidth != in.RoutableW || !res.ProvedOptimal {
			b.Fatalf("MinWidth=%d ProvedOptimal=%v, want %d/true",
				res.MinWidth, res.ProvedOptimal, in.RoutableW)
		}
	}
}

// scaleFactors returns the scale multipliers the scaling benchmarks
// cover: the full 1×/10×/100× ladder (the 100× fabric exceeds 10⁵
// nets and is cheap for generation and encode).
var scaleFactors = []int{1, 10, 100}

// BenchmarkScaleConflictGraph measures tile-templated conflict-graph
// generation straight into CSR storage at each scale point.
func BenchmarkScaleConflictGraph(b *testing.B) {
	for _, factor := range scaleFactors {
		p := fpga.ScaledFabric(factor)
		b.Run(fmt.Sprintf("%dx", factor), func(b *testing.B) {
			b.ReportAllocs()
			var stats fpga.ScaleStats
			for i := 0; i < b.N; i++ {
				g, s, err := fpga.GenerateScaled(p)
				if err != nil {
					b.Fatal(err)
				}
				if g.N() == 0 {
					b.Fatal("empty graph")
				}
				stats = s
			}
			b.ReportMetric(float64(stats.Nets), "nets")
			b.ReportMetric(float64(stats.GraphBytes), "graph_bytes")
		})
	}
}

// BenchmarkScaleEncode measures the streaming encode of each scale
// point's conflict graph at its channel width — the clauses/sec the
// scaling study records in BENCH_scale.json.
func BenchmarkScaleEncode(b *testing.B) {
	enc, err := core.ByName("ITE-linear-2+muldirect")
	if err != nil {
		b.Fatal(err)
	}
	for _, factor := range scaleFactors {
		p := fpga.ScaledFabric(factor)
		g, _, err := fpga.GenerateScaled(p)
		if err != nil {
			b.Fatal(err)
		}
		csp := core.NewCSP(g, p.ChannelWidth)
		b.Run(fmt.Sprintf("%dx", factor), func(b *testing.B) {
			b.ReportAllocs()
			var clauses int
			for i := 0; i < b.N; i++ {
				sink := &countSink{}
				if st := core.EncodeInto(csp, enc, sink); st.NumVars == 0 {
					b.Fatal("empty encoding")
				}
				clauses = sink.clauses
			}
			b.ReportMetric(float64(clauses), "clauses")
		})
	}
}

// BenchmarkScaleMinWidth measures the incremental width search on the
// scaled instances, converging to the first routable width with one
// track of slack (W+1). The instances are tight by construction
// (χ = clique = W), and the zero-slack point is a CDCL hardness wall at
// every fabric size — even the direct encoding needs minutes beyond the
// 1× fabric, and the W-1 refutation means a from-scratch pigeonhole
// proof inside a fabric-sized formula (see the scaling notes in
// EXPERIMENTS.md). So the benchmark brackets the search at
// [CliqueLB+1, CliqueLB+2]: two full encode+solve probes over the
// scaled formula, with optimality from the trusted clique bound. The
// strategy is direct/s1, the fastest on these fabrics. The 100× point
// solves a 10⁵-net instance in ~10s; it runs only with
// FPGASAT_BENCH_FULL=1.
func BenchmarkScaleMinWidth(b *testing.B) {
	s := mustStrategy(b, "direct/s1")
	for _, factor := range scaleFactors {
		if factor >= 100 && os.Getenv("FPGASAT_BENCH_FULL") == "" {
			continue
		}
		p := fpga.ScaledFabric(factor)
		g, stats, err := fpga.GenerateScaled(p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%dx", factor), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := search.MinWidth(context.Background(), g, search.Options{
					Strategy: s,
					Lo:       stats.CliqueLB + 1,
					Hi:       stats.CliqueLB + 2,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.MinWidth != p.ChannelWidth+1 || !res.ProvedOptimal {
					b.Fatalf("MinWidth=%d ProvedOptimal=%v, want %d/true",
						res.MinWidth, res.ProvedOptimal, p.ChannelWidth+1)
				}
			}
		})
	}
}

// BenchmarkGlobalRouter measures the PathFinder-style global router
// (the "translation to graph coloring" cost).
func BenchmarkGlobalRouter(b *testing.B) {
	in := mustInstance(b, "alu2")
	nl, err := fpga.Generate(in.Name, in.Gen)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		gr, _, err := fpga.RouteGlobal(nl, in.Route)
		if err != nil {
			b.Fatal(err)
		}
		if gr.ConflictGraph().N() == 0 {
			b.Fatal("empty conflict graph")
		}
	}
}

// BenchmarkSolverPigeonhole measures the raw CDCL solver on a classic
// unsatisfiable family.
func BenchmarkSolverPigeonhole(b *testing.B) {
	for _, holes := range []int{6, 7, 8} {
		b.Run(fmt.Sprintf("PHP%d", holes), func(b *testing.B) {
			cnf := &sat.CNF{}
			v := func(p, h int) int { return p*holes + h + 1 }
			for p := 0; p <= holes; p++ {
				cl := make([]int, holes)
				for h := 0; h < holes; h++ {
					cl[h] = v(p, h)
				}
				cnf.AddClause(cl...)
			}
			for h := 0; h < holes; h++ {
				for p1 := 0; p1 <= holes; p1++ {
					for p2 := p1 + 1; p2 <= holes; p2++ {
						cnf.AddClause(-v(p1, h), -v(p2, h))
					}
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := sat.SolveCNFContext(context.Background(), cnf, sat.Options{}); res.Status != sat.Unsat {
					b.Fatal(res.Status)
				}
			}
		})
	}
}

// BenchmarkSolverRandom3SAT measures the solver on satisfiable random
// instances near ratio 3.
func BenchmarkSolverRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cnf := &sat.CNF{NumVars: 300}
	for i := 0; i < 900; i++ {
		var cl []int
		for len(cl) < 3 {
			v := rng.Intn(300) + 1
			if rng.Intn(2) == 0 {
				v = -v
			}
			cl = append(cl, v)
		}
		cnf.AddClause(cl...)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if res := sat.SolveCNFContext(context.Background(), cnf, sat.Options{}); res.Status != sat.Sat {
			b.Fatal(res.Status)
		}
	}
}

// BenchmarkSolverReuse contrasts a fresh solver per solve against one
// solver Reset() between solves of the same problem — the saving the
// session pool captures: the arena, watch lists and trail keep their
// capacity, so a warm solve allocates almost nothing.
func BenchmarkSolverReuse(b *testing.B) {
	in := mustInstance(b, "9symml")
	g := mustGraph(b, in)
	s := mustStrategy(b, "ITE-linear-2+muldirect/s1")
	w := in.RoutableW
	solveOn := func(b *testing.B, solver *sat.Solver) {
		csp := core.BuildCSP(g, w, s.Symmetry)
		enc := core.EncodeInto(csp, s.Encoding, sat.SolverSink{S: solver})
		if st := solver.SolveAssumingContext(context.Background()); st != sat.Sat {
			b.Fatal(st)
		}
		if _, err := enc.DecodeVerify(solver.Model()); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			solveOn(b, sat.New(sat.Options{}))
		}
	})
	b.Run("reset", func(b *testing.B) {
		b.ReportAllocs()
		solver := sat.New(sat.Options{})
		for i := 0; i < b.N; i++ {
			solver.Reset(sat.Options{})
			solveOn(b, solver)
		}
	})
}
