// Command calibrate regenerates every registered benchmark instance
// and reports its conflict-graph statistics, chromatic number (found
// with the SAT flow itself) and indicative solve times for a slow and
// a fast strategy on the unroutable configuration. It is the tool that
// produced (and re-checks) the RoutableW values baked into package
// mcnc.
//
// The chromatic number is measured with the incremental width search
// (mcnc.FindChi): one encode at the DSATUR upper bound, then one
// selector-assumption probe per width on a single solver that keeps
// its learnt clauses across widths. The indicative timing columns
// deliberately remain fresh single-shot solves, since they measure a
// strategy's cost on one decision problem.
//
// Usage:
//
//	calibrate [-instance name] [-timeout seconds] [-metrics-out file]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"fpgasat/internal/core"
	"fpgasat/internal/graph"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/obs"
	"fpgasat/internal/sat"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibrate: ")
	instName := flag.String("instance", "", "calibrate a single instance (default all)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-solve timeout")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot (incremental search timers, learnt-clause reuse) to this file")
	flag.Parse()

	insts := mcnc.Instances()
	if *instName != "" {
		in, err := mcnc.ByName(*instName)
		if err != nil {
			log.Fatal(err)
		}
		insts = []mcnc.Instance{in}
	}

	slow, err := core.ParseStrategy("muldirect")
	if err != nil {
		log.Fatal(err)
	}
	fast, err := core.ParseStrategy("ITE-linear-2+muldirect/s1")
	if err != nil {
		log.Fatal(err)
	}

	reg := obs.NewRegistry()
	fmt.Printf("%-10s %6s %7s %4s %4s %4s | %11s %11s %11s\n",
		"instance", "V", "E", "clq", "dsat", "chi", "unsat-fast", "unsat-slow", "sat-fast")
	exit := 0
	for _, in := range insts {
		_, g, err := in.Build()
		if err != nil {
			log.Fatal(err)
		}

		chi, err := mcnc.FindChi(context.Background(), g, []core.Strategy{fast}, *timeout, reg)
		if err != nil {
			log.Fatal(err)
		}
		if !chi.Proved {
			fmt.Fprintf(os.Stderr, "  %s: width search stopped at chi<=%d after %d probes (per-probe timeout %v)\n",
				in.Name, chi.Chi, chi.Probes, *timeout)
		}

		stFastU, dFastU, err := solveGraph(fast, g, chi.Chi-1, *timeout)
		if err != nil {
			log.Fatal(err)
		}
		stSlowU, dSlowU, err := solveGraph(slow, g, chi.Chi-1, *timeout)
		if err != nil {
			log.Fatal(err)
		}
		stFastS, dFastS, err := solveGraph(fast, g, chi.Chi, *timeout)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %6d %7d %4d %4d %4d | %10.2fs%c %10.2fs%c %10.2fs%c\n",
			in.Name, g.N(), g.M(), chi.LowerBound, chi.UpperBound, chi.Chi,
			dFastU.Seconds(), mark(stFastU, sat.Unsat),
			dSlowU.Seconds(), mark(stSlowU, sat.Unsat),
			dFastS.Seconds(), mark(stFastS, sat.Sat))
		if chi.Chi != in.RoutableW {
			fmt.Printf("  !! registry says RoutableW=%d but measured chi=%d\n", in.RoutableW, chi.Chi)
			exit = 1
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := reg.Snapshot().WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	os.Exit(exit)
}

// solveGraph encodes and solves one (strategy, graph, k) configuration
// from scratch with a wall-clock timeout — the single-shot baseline the
// indicative timing columns report.
func solveGraph(s core.Strategy, g *graph.Graph, k int, timeout time.Duration) (sat.Status, time.Duration, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	start := time.Now()
	enc := s.EncodeGraph(g, k)
	st, _, err := enc.SolveContext(ctx, sat.Options{})
	if err != nil {
		return st, time.Since(start), fmt.Errorf("%s k=%d: %w", s.Name(), k, err)
	}
	return st, time.Since(start), nil
}

func mark(got, want sat.Status) byte {
	if got == want {
		return ' '
	}
	if got == sat.Unknown {
		return '?'
	}
	return '!'
}
