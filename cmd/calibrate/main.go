// Command calibrate regenerates every registered benchmark instance
// and reports its conflict-graph statistics, chromatic number (found
// with the SAT flow itself) and indicative solve times for a slow and
// a fast strategy on the unroutable configuration. It is the tool that
// produced (and re-checks) the RoutableW values baked into package
// mcnc.
//
// Usage:
//
//	calibrate [-instance name] [-timeout seconds]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"fpgasat/internal/coloring"
	"fpgasat/internal/core"
	"fpgasat/internal/graph"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/sat"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibrate: ")
	instName := flag.String("instance", "", "calibrate a single instance (default all)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-solve timeout")
	flag.Parse()

	insts := mcnc.Instances()
	if *instName != "" {
		in, err := mcnc.ByName(*instName)
		if err != nil {
			log.Fatal(err)
		}
		insts = []mcnc.Instance{in}
	}

	slow, err := core.ParseStrategy("muldirect")
	if err != nil {
		log.Fatal(err)
	}
	fast, err := core.ParseStrategy("ITE-linear-2+muldirect/s1")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %6s %7s %4s %4s %4s | %11s %11s %11s\n",
		"instance", "V", "E", "clq", "dsat", "chi", "unsat-fast", "unsat-slow", "sat-fast")
	exit := 0
	for _, in := range insts {
		_, g, err := in.Build()
		if err != nil {
			log.Fatal(err)
		}
		clique := len(coloring.GreedyClique(g))
		_, ub := coloring.DSATUR(g)

		// Find chi with the fast strategy, descending from the DSATUR
		// upper bound.
		chi := ub
		for k := ub - 1; k >= clique && k >= 1; k-- {
			st, dur := solveGraph(fast, g, k, *timeout)
			if st == sat.Unknown {
				fmt.Fprintf(os.Stderr, "  %s: k=%d timed out after %v\n", in.Name, k, dur)
				break
			}
			if st == sat.Unsat {
				break
			}
			chi = k
		}

		stFastU, dFastU := solveGraph(fast, g, chi-1, *timeout)
		stSlowU, dSlowU := solveGraph(slow, g, chi-1, *timeout)
		stFastS, dFastS := solveGraph(fast, g, chi, *timeout)
		fmt.Printf("%-10s %6d %7d %4d %4d %4d | %10.2fs%c %10.2fs%c %10.2fs%c\n",
			in.Name, g.N(), g.M(), clique, ub, chi,
			dFastU.Seconds(), mark(stFastU, sat.Unsat),
			dSlowU.Seconds(), mark(stSlowU, sat.Unsat),
			dFastS.Seconds(), mark(stFastS, sat.Sat))
		if chi != in.RoutableW {
			fmt.Printf("  !! registry says RoutableW=%d but measured chi=%d\n", in.RoutableW, chi)
			exit = 1
		}
	}
	os.Exit(exit)
}

// solveGraph encodes and solves one (strategy, graph, k) configuration
// with a wall-clock timeout.
func solveGraph(s core.Strategy, g *graph.Graph, k int, timeout time.Duration) (sat.Status, time.Duration) {
	start := time.Now()
	enc := s.EncodeGraph(g, k)
	stop := make(chan struct{})
	timer := time.AfterFunc(timeout, func() { close(stop) })
	defer timer.Stop()
	st, _, err := enc.Solve(sat.Options{}, stop)
	if err != nil {
		log.Fatalf("%s k=%d: %v", s.Name(), k, err)
	}
	return st, time.Since(start)
}

func mark(got, want sat.Status) byte {
	if got == want {
		return ' '
	}
	if got == sat.Unknown {
		return '?'
	}
	return '!'
}
