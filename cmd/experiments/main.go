// Command experiments regenerates the paper's tables and figures on
// the synthetic MCNC-style benchmark suite. Each experiment is
// rendered as Markdown (the same format recorded in EXPERIMENTS.md).
//
// Usage:
//
//	experiments -table1 -figure1 -table2 -routable -portfolio -sizes
//	experiments -all [-timeout 60s] [-quick] [-v]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"fpgasat"
	"fpgasat/internal/experiments"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/obs"
	"fpgasat/internal/symmetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		table1     = flag.Bool("table1", false, "reproduce Table 1 (example encodings)")
		figure1    = flag.Bool("figure1", false, "reproduce Figure 1 (ITE trees for 13 values)")
		table2     = flag.Bool("table2", false, "reproduce Table 2 (unroutable configurations)")
		routable   = flag.Bool("routable", false, "reproduce the routable-configuration comparison")
		portfolio  = flag.Bool("portfolio", false, "reproduce the portfolio study")
		sizes      = flag.Bool("sizes", false, "encoding-size ablation")
		solvers    = flag.Bool("solvers", false, "solver-profile comparison (siege vs MiniSat analog)")
		trees      = flag.Bool("trees", false, "ITE-tree shape ablation")
		symAbl     = flag.Bool("symmetry", false, "symmetry-heuristic ablation (-, b1, s1, c1)")
		baselines  = flag.Bool("baselines", false, "one-net-at-a-time baselines vs the SAT flow")
		all        = flag.Bool("all", false, "run everything")
		quick      = flag.Bool("quick", false, "use only the first two benchmarks (smoke test)")
		timeout    = flag.Duration("timeout", 120*time.Second, "per-solve timeout (0 = none)")
		verbose    = flag.Bool("v", false, "print per-solve progress to stderr")
		trace      = flag.Bool("trace", false, "print the collected metrics report after the run")
		metricsOut = flag.String("metrics-out", "", "write the metrics snapshot as JSON to this file")
		instances  = flag.String("instances", "", "load benchmark instances from a registry file instead of the built-in table")
		verify     = flag.Bool("verify", false, "paranoid mode: re-verify Sat answers and replay Unsat answers in portfolio runs")
		laneTO     = flag.Duration("lane-timeout", 0, "per-lane watchdog timeout for portfolio runs (0 = none)")
		maxRetries = flag.Int("max-retries", 0, "budgeted-retry attempts per portfolio lane (0 = no retry)")
		shareCmp   = flag.Bool("share", false, "clause-sharing study: blind vs cooperating replicated-lane portfolio")
		shareLBD   = flag.Int("share-lbd", 4, "with -share: export only learnt clauses with LBD at most this")
		shareMax   = flag.Int("share-max", 8, "with -share: export only learnt clauses with at most this many literals")
		shareLanes = flag.Int("share-lanes", 2, "with -share: same-strategy lanes per run")
		seed       = flag.Int64("seed", 1, "lane diversification seed for the -share study")
		shareReps  = flag.Int("share-repeats", 1, "with -share: repeat each (instance, mode) run over seeds seed..seed+N-1 and sum wall clock")
		benchOut   = flag.String("bench-out", "", "with -share or -scale: write the study as JSON to this file (BENCH_portfolio.json / BENCH_scale.json format)")
		scaleRun   = flag.Bool("scale", false, "scaling study: generate and encode tile-templated instances far beyond the MCNC suite")
		scaleFacts = flag.String("scale-factors", "1,10,100", "with -scale: comma-separated scale multipliers")
		scaleEnc   = flag.String("scale-encoding", "", "with -scale: encoding to stream (default ITE-linear-2+muldirect)")
		bandwidth  = flag.Bool("bandwidth", false, "bandwidth-coloring study: crosstalk instances solved to their minimum span per encoding")
	)
	flag.Parse()
	if *all {
		*table1, *figure1, *table2, *routable, *portfolio = true, true, true, true, true
		*sizes, *solvers, *trees, *symAbl, *baselines, *shareCmp, *scaleRun, *bandwidth = true, true, true, true, true, true, true, true
	}
	if !*table1 && !*figure1 && !*table2 && !*routable && !*portfolio &&
		!*sizes && !*solvers && !*trees && !*symAbl && !*baselines && !*shareCmp && !*scaleRun && !*bandwidth {
		flag.Usage()
		os.Exit(2)
	}
	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	reg := obs.NewRegistry()
	// Pre-register the robustness counters so -trace / -metrics-out
	// snapshots report zeros instead of omitting them entirely (the
	// registry creates metrics lazily on first touch).
	for _, name := range fpgasat.RobustnessMetricNames() {
		reg.Counter(name)
	}
	// One session for the whole run: every timed solve draws a pooled
	// arena-backed solver, and the sat.reset.* / sat.arena.* gauges end
	// up in the -trace / -metrics-out dump.
	session := fpgasat.NewSession(reg)
	pool := session.Pool()
	defer func() {
		session.PoolStats()
		if *trace {
			fmt.Println("\n── metrics report ──")
			if err := reg.Snapshot().WriteText(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
		if *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			if err := reg.Snapshot().WriteJSON(f); err != nil {
				log.Fatal(err)
			}
		}
	}()
	insts := mcnc.Table2Instances()
	if *instances != "" {
		f, err := os.Open(*instances)
		if err != nil {
			log.Fatal(err)
		}
		insts, err = mcnc.ParseInstances(*instances, f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	if *quick && len(insts) > 2 {
		insts = insts[:2]
	}

	fmt.Printf("# fpgasat experiment run (%s)\n\n", time.Now().Format(time.RFC3339))
	if *table1 {
		fmt.Println(experiments.RunTable1().Markdown())
	}
	if *figure1 {
		f, err := experiments.RunFigure1()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(f.Markdown())
	}
	if *table2 {
		start := time.Now()
		r, err := experiments.RunTable2(experiments.Table2Config{
			Instances: insts, Timeout: *timeout, Progress: progress, Pool: pool,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Markdown())
		fmt.Printf("Best single strategy: **%s** (total %s). Symmetry wins per heuristic: %v. Run time %s.\n\n",
			r.Columns[r.Best()], r.Totals[r.Best()], r.SymmetryWins(), time.Since(start).Round(time.Second))
	}
	if *routable {
		r, err := experiments.RunRoutable(experiments.RoutableConfig{
			Instances: insts, Timeout: *timeout, Progress: progress, Pool: pool,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Markdown())
		fmt.Printf("Spread (slowest/fastest encoding total): %.1f×\n\n", r.Spread())
	}
	if *portfolio {
		r, err := experiments.RunPortfolio(experiments.PortfolioConfig{
			Instances: insts, Timeout: *timeout, Progress: progress, Obs: reg, Pool: pool,
			Verify: *verify, VerifyUnsat: *verify, LaneTimeout: *laneTO, MaxRetries: *maxRetries,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Markdown())
	}
	if *shareCmp {
		r, err := experiments.RunShareComparison(experiments.ShareCompareConfig{
			Instances: insts, Lanes: *shareLanes, Seed: *seed, Repeats: *shareReps,
			Share:   fpgasat.ShareOptions{MaxLBD: int32(*shareLBD), MaxSize: *shareMax},
			Timeout: *timeout, Progress: progress, Pool: pool,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Markdown())
		fmt.Printf("Sharing improved wall clock on %d of %d instances (total %.2f×).\n\n",
			r.Improved(), len(r.Rows), r.TotalSpeedup)
		if *benchOut != "" {
			f, err := os.Create(*benchOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := r.WriteJSON(f); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote clause-sharing benchmark record to %s\n\n", *benchOut)
		}
	}
	if *scaleRun {
		var factors []int
		for _, part := range strings.Split(*scaleFacts, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			f, err := strconv.Atoi(part)
			if err != nil || f < 1 {
				log.Fatalf("bad -scale-factors entry %q", part)
			}
			factors = append(factors, f)
		}
		r, err := experiments.RunScale(experiments.ScaleConfig{
			Factors: factors, Encoding: *scaleEnc, Progress: progress,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Markdown())
		if *benchOut != "" && !*shareCmp {
			f, err := os.Create(*benchOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := r.WriteJSON(f); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote scaling benchmark record to %s\n\n", *benchOut)
		}
	}
	if *bandwidth {
		r, err := experiments.RunBandwidth(experiments.BandwidthConfig{
			Timeout: *timeout, Progress: progress, Pool: pool,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Markdown())
		if *benchOut != "" && !*shareCmp && !*scaleRun {
			f, err := os.Create(*benchOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := r.WriteJSON(f); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote bandwidth benchmark record to %s\n\n", *benchOut)
		}
	}
	if *sizes {
		r, err := experiments.RunSizes(insts[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Markdown())
	}
	if *solvers {
		cfgInsts := insts
		if len(cfgInsts) > 4 {
			cfgInsts = cfgInsts[:4]
		}
		r, err := experiments.RunSolverCompare(experiments.SolverCompareConfig{
			Instances: cfgInsts, Timeout: *timeout, Progress: progress, Pool: pool,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Markdown())
	}
	if *trees {
		r, err := experiments.RunTreeAblation(experiments.TreeAblationConfig{
			Instance: insts[0], Symmetry: symmetry.S1, Timeout: *timeout, Progress: progress, Pool: pool,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Markdown())
	}
	if *baselines {
		r, err := experiments.RunBaselines(insts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Markdown())
	}
	if *symAbl {
		r, err := experiments.RunSymmetryAblation(experiments.SymmetryAblationConfig{
			Instances: insts, Timeout: *timeout, Progress: progress, Pool: pool,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("### Symmetry-heuristic ablation (fixed encoding ITE-linear-2+muldirect)")
		fmt.Println()
		fmt.Println(r.Markdown())
	}
}
