// Command fpgasat is the end-to-end SAT-based FPGA detailed router:
// it generates (or looks up) a benchmark netlist, computes a global
// routing, translates the detailed-routing problem to graph coloring
// and then to CNF under a chosen encoding/symmetry strategy, runs the
// CDCL solver, and either prints the detailed routing (track
// assignment) or reports a proof of unroutability.
//
// Usage:
//
//	fpgasat -instance vda -w 7 -strategy ITE-linear-2+muldirect/s1
//	fpgasat -instance alu2 -findmin             # minimum channel width
//	fpgasat -instance k2 -w 8 -col out.col      # emit DIMACS graph
//	fpgasat -instance k2 -w 8 -cnf out.cnf      # emit DIMACS CNF
//	fpgasat -instance apex7 -w 8 -tracks        # print track assignment
//	fpgasat -instance alu2 -portfolio           # paper's 3-strategy portfolio
//	fpgasat -instance alu2 -trace               # per-stage timing report
//	fpgasat -instance alu2 -metrics-out m.json  # dump metrics as JSON
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"fpgasat"
	"fpgasat/internal/coloring"
	"fpgasat/internal/core"
	"fpgasat/internal/fpga"
	"fpgasat/internal/graph"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/obs"
	"fpgasat/internal/sat"
)

// reg collects per-stage spans (pipeline.translate / encode / solve /
// decode), solver progress gauges and, in -portfolio mode, the
// per-strategy portfolio telemetry. It is dumped by -trace and
// -metrics-out.
var reg = obs.NewRegistry()

// session owns the process-wide solver pool: plain solves, the width
// search and portfolio lanes all draw arena-backed solvers from it,
// and its sat.reset.* / sat.arena.* gauges land in reg.
var session = fpgasat.NewSession(reg)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fpgasat: ")
	var (
		instName     = flag.String("instance", "alu2", "benchmark instance name (see -list)")
		netFile      = flag.String("netlist", "", "route an external netlist file instead of a benchmark instance")
		rtFile       = flag.String("routing", "", "use an external global-routing file (requires -netlist)")
		list         = flag.Bool("list", false, "list available instances and exit")
		w            = flag.Int("w", 0, "channel width W (default: the instance's routable width)")
		strategy     = flag.String("strategy", "ITE-linear-2+muldirect/s1", "encoding[/heuristic]")
		usePortfolio = flag.Bool("portfolio", false, "solve with the paper's 3-strategy portfolio instead of -strategy")
		findMin      = flag.Bool("findmin", false, "find the minimum routable channel width")
		colOut       = flag.String("col", "", "write the conflict graph in DIMACS edge format to this file")
		cnfOut       = flag.String("cnf", "", "write the CNF in DIMACS format to this file")
		tracks       = flag.Bool("tracks", false, "print the full track assignment when routable")
		proof        = flag.String("proof", "", "on UNROUTABLE, write a DRAT unroutability certificate here and verify it")
		timeout      = flag.Duration("timeout", 5*time.Minute, "solve timeout (0 = none)")
		trace        = flag.Bool("trace", false, "print the per-stage (and per-strategy) timing report")
		metricsOut   = flag.String("metrics-out", "", "write the metrics snapshot as JSON to this file")
		verify       = flag.Bool("verify", false, "paranoid mode: re-verify Sat answers against the conflict graph and replay Unsat answers through the DRAT checker (with -portfolio)")
		laneTimeout  = flag.Duration("lane-timeout", 0, "per-lane attempt timeout and watchdog grace period for -portfolio (0 = none)")
		maxRetries   = flag.Int("max-retries", 0, "re-run a budget-exhausted portfolio lane up to this many times with escalated budgets")
		shareOn      = flag.Bool("share", false, "with -portfolio: replicate each strategy into -share-lanes seeded lanes exchanging learnt clauses")
		shareLBD     = flag.Int("share-lbd", 4, "with -share: export only learnt clauses with LBD at most this")
		shareMax     = flag.Int("share-max", 8, "with -share: export only learnt clauses with at most this many literals")
		shareLanes   = flag.Int("share-lanes", 2, "with -share: same-strategy lanes per portfolio member")
		seed         = flag.Int64("seed", 0, "diversification seed for -portfolio lanes (0 = unseeded; -share defaults it to 1)")
	)
	flag.Parse()

	if *list {
		for _, name := range mcnc.Names() {
			in, _ := mcnc.ByName(name)
			fmt.Printf("%-10s %2dx%-2d %4d nets  routable W=%d\n",
				in.Name, in.Gen.Cols, in.Gen.Rows, in.Gen.NumNets, in.RoutableW)
		}
		return
	}

	s, err := core.ParseStrategy(*strategy)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	span := reg.StartSpan("pipeline.translate")
	var gr *fpga.GlobalRouting
	var g *graph.Graph
	name := *instName
	if *netFile != "" {
		gr = loadExternal(*netFile, *rtFile)
		name = gr.Netlist.Name
		if *w == 0 {
			log.Fatal("-w is required with -netlist")
		}
		g = gr.ConflictGraph()
	} else {
		in, err := mcnc.ByName(*instName)
		if err != nil {
			log.Fatal(err)
		}
		if *w == 0 {
			*w = in.RoutableW
		}
		// Build returns the instance's conflict graph with crosstalk
		// distances applied; recomputing it via ConflictGraph() would
		// silently drop them.
		gr, g, err = in.Build()
		if err != nil {
			log.Fatal(err)
		}
	}
	span.End()
	fmt.Printf("instance %s: %dx%d array, %d nets, %d 2-pin nets\n",
		name, gr.Netlist.Arch.Cols, gr.Netlist.Arch.Rows, len(gr.Netlist.Nets), len(gr.Routes))
	fmt.Printf("conflict graph: %d vertices, %d edges, max congestion %d (translate %v)\n",
		g.N(), g.M(), gr.MaxCongestion(), time.Since(start).Round(time.Millisecond))

	if *colOut != "" {
		if err := writeCol(*colOut, g, name); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote conflict graph to %s\n", *colOut)
	}

	defer dumpMetrics(*trace, *metricsOut)

	if *findMin {
		findMinimum(gr, g, s, *timeout)
		return
	}

	if *usePortfolio {
		opts := fpgasat.PortfolioOptions{
			Verify:      *verify,
			VerifyUnsat: *verify,
			LaneTimeout: *laneTimeout,
			MaxRetries:  *maxRetries,
			Seed:        *seed,
		}
		if *shareOn {
			opts.Share = &fpgasat.ShareOptions{MaxLBD: int32(*shareLBD), MaxSize: *shareMax}
		}
		runPortfolio(gr, g, *w, *timeout, *tracks, *shareLanes, opts)
		return
	}

	var st sat.Status
	var colors []int
	if *cnfOut == "" && *proof == "" {
		// Hot path: stream the encoding straight into a pooled session
		// solver — no intermediate CNF is materialized.
		st, colors = solveStreamed(g, *w, s, *timeout)
	} else {
		// -cnf and -proof need the materialized formula (to write it
		// out, and to check the DRAT certificate against it).
		span = reg.StartSpan("pipeline.encode")
		enc := s.EncodeGraph(g, *w)
		span.End()
		reg.Gauge("pipeline.cnf_vars").Set(int64(enc.CNF.NumVars))
		reg.Gauge("pipeline.cnf_clauses").Set(int64(enc.CNF.NumClauses()))
		if *cnfOut != "" {
			if err := writeCnf(*cnfOut, enc.CNF); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote CNF to %s (%d vars, %d clauses)\n",
				*cnfOut, enc.CNF.NumVars, enc.CNF.NumClauses())
		}

		opts := solverOptions()
		var proofFile *os.File
		if *proof != "" {
			proofFile, err = os.Create(*proof)
			if err != nil {
				log.Fatal(err)
			}
			opts.ProofWriter = proofFile
		}
		st, colors = solveWith(enc, opts, *timeout)
		if proofFile != nil {
			if err := proofFile.Close(); err != nil {
				log.Fatal(err)
			}
			if st == sat.Unsat {
				pf, err := os.Open(*proof)
				if err != nil {
					log.Fatal(err)
				}
				err = sat.CheckDRAT(enc.CNF, pf)
				pf.Close()
				if err != nil {
					log.Fatalf("unroutability certificate failed verification: %v", err)
				}
				fmt.Printf("unroutability certificate written to %s and verified (DRAT)\n", *proof)
			}
		}
	}
	switch st {
	case sat.Sat:
		span = reg.StartSpan("pipeline.decode")
		dr, err := fpga.AssignTracks(gr, colors, *w)
		span.End()
		if err != nil {
			log.Fatalf("decoded routing invalid: %v", err)
		}
		fmt.Printf("ROUTABLE with W=%d tracks (strategy %s)\n", *w, s.Name())
		if *tracks {
			printTracks(dr)
		}
	case sat.Unsat:
		fmt.Printf("UNROUTABLE with W=%d tracks — proven by %s\n", *w, s.Name())
	default:
		dumpMetrics(*trace, *metricsOut)
		fmt.Printf("UNDECIDED within %v\n", *timeout)
		os.Exit(1)
	}
}

// solverOptions wires the solver's Progress hook into the metrics
// registry so the last restart snapshot is visible in the report.
func solverOptions() sat.Options {
	conflicts := reg.Gauge("solver.conflicts")
	propagations := reg.Gauge("solver.propagations")
	restarts := reg.Gauge("solver.restarts")
	learntDB := reg.Gauge("solver.learnt_db")
	trailDepth := reg.Gauge("solver.trail_depth")
	return sat.Options{
		Progress: func(st sat.Stats) {
			conflicts.Set(st.Conflicts)
			propagations.Set(st.Propagations)
			restarts.Set(st.Restarts)
			learntDB.Set(int64(st.LearntDB))
			trailDepth.Set(int64(st.TrailDepth))
		},
	}
}

// runPortfolio solves with the paper's 3-strategy portfolio, printing
// the per-strategy telemetry table. The run goes through the hardened
// supervision layer: lanes are panic-isolated, and opts enables
// paranoid answer checking, watchdog timeouts and budgeted retries.
func runPortfolio(gr *fpga.GlobalRouting, g *graph.Graph, w int, timeout time.Duration, tracks bool, shareLanes int, opts fpgasat.PortfolioOptions) {
	registerRobustnessMetrics()
	if opts.Share != nil {
		for _, name := range fpgasat.ShareMetricNames() {
			reg.Counter(name)
		}
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	members, err := fpgasat.PaperPortfolio3()
	if err != nil {
		log.Fatal(err)
	}
	if opts.Share != nil {
		// Clauses only flow between lanes of one strategy, so give every
		// member enough same-strategy peers to make sharing worthwhile.
		members = fpgasat.ReplicateStrategies(members, shareLanes)
	}
	span := reg.StartSpan("pipeline.solve")
	winner, all, err := session.PortfolioHardened(ctx, g, w, members, opts)
	span.End()
	fmt.Println("portfolio strategies:")
	for _, r := range all {
		mark := " "
		if r.Winner {
			mark = "*"
		}
		note := ""
		if r.Attempts > 1 {
			note = fmt.Sprintf(" (%d attempts)", r.Attempts)
		}
		if r.Err != nil {
			note += " err: " + r.Err.Error()
		}
		fmt.Printf("  %s %-28s %-8v encode %-10v solve %-10v %8d vars %8d clauses %8d conflicts%s\n",
			mark, r.Strategy.Name(), r.Status,
			r.EncodeTime.Round(time.Microsecond), r.SolveTime.Round(time.Millisecond),
			r.Vars, r.Clauses, r.Stats.Conflicts, note)
	}
	if err != nil {
		log.Fatal(err)
	}
	switch winner.Status {
	case sat.Sat:
		dspan := reg.StartSpan("pipeline.decode")
		dr, derr := fpga.AssignTracks(gr, winner.Colors, w)
		dspan.End()
		if derr != nil {
			log.Fatalf("decoded routing invalid: %v", derr)
		}
		fmt.Printf("ROUTABLE with W=%d tracks (portfolio winner %s)\n", w, winner.Strategy.Name())
		if tracks {
			printTracks(dr)
		}
	case sat.Unsat:
		fmt.Printf("UNROUTABLE with W=%d tracks — proven by portfolio winner %s\n", w, winner.Strategy.Name())
	}
}

// registerRobustnessMetrics touches the robustness counters
// (portfolio.panics, robust.retries, robust.verify.*) so they appear
// in -trace / -metrics-out output even when they stay zero.
func registerRobustnessMetrics() {
	for _, name := range fpgasat.RobustnessMetricNames() {
		reg.Counter(name)
	}
}

// dumpMetrics prints the text report (-trace) and/or writes the JSON
// snapshot (-metrics-out). It is idempotent enough to call twice only
// on the error path before os.Exit skips the deferred call.
func dumpMetrics(trace bool, metricsOut string) {
	if !trace && metricsOut == "" {
		return
	}
	snap := reg.Snapshot()
	if trace {
		fmt.Println("\n── timing report ──")
		if err := snap.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := snap.WriteJSON(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote metrics to %s\n", metricsOut)
	}
}

// solveStreamed solves the width-w coloring through the session: the
// encoding streams into a pooled solver's clause arena and the solver
// returns to the pool afterwards, carrying its capacity to the next
// solve in this process.
func solveStreamed(g *graph.Graph, w int, s core.Strategy, timeout time.Duration) (sat.Status, []int) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	span := reg.StartSpan("pipeline.solve")
	st, colors, err := session.SolveGraph(ctx, g, w, s, solverOptions())
	span.End()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SAT solve: %v (streamed into pooled solver) -> %v\n",
		time.Since(start).Round(time.Millisecond), st)
	return st, colors
}

func solveWith(enc *core.Encoded, opts sat.Options, timeout time.Duration) (sat.Status, []int) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	span := reg.StartSpan("pipeline.solve")
	st, colors, err := enc.SolveContext(ctx, opts)
	span.End()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SAT solve: %v (%d vars, %d clauses) -> %v\n",
		time.Since(start).Round(time.Millisecond), enc.CNF.NumVars, enc.CNF.NumClauses(), st)
	return st, colors
}

// findMinimum performs the paper's optimality flow: descend from the
// DSATUR upper bound until the first unroutable width. It runs the
// incremental search on one pooled session solver — the graph is
// encoded once at the upper bound and each width is a single
// assumption probe, so learnt clauses carry over between widths.
func findMinimum(gr *fpga.GlobalRouting, g *graph.Graph, s core.Strategy, timeout time.Duration) {
	_, ub := coloring.DSATUR(g)
	fmt.Printf("DSATUR upper bound: %d; clique lower bound: %d\n",
		ub, len(coloring.GreedyClique(g)))
	res, err := session.MinWidth(context.Background(), g, fpgasat.SearchOptions{
		Strategy:     s,
		Hi:           ub,
		Solver:       solverOptions(),
		ProbeTimeout: timeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range res.Probes {
		fmt.Printf("  probe W=%-3d %-7v %10v %8d conflicts, %d learnt clauses carried in\n",
			p.Width, p.Status, p.Duration.Round(time.Millisecond), p.Conflicts, p.Learnts)
	}
	switch {
	case res.ProvedOptimal && res.MinWidth > 1:
		fmt.Printf("minimum channel width: W=%d (W=%d proven unroutable)\n",
			res.MinWidth, res.MinWidth-1)
	case res.ProvedOptimal && res.MinWidth == 1:
		fmt.Printf("minimum channel width: W=%d\n", res.MinWidth)
	case res.MinWidth > 0:
		fmt.Printf("undecided at W=%d; best known routable width: %d\n",
			res.MinWidth-1, res.MinWidth)
		os.Exit(1)
	default:
		fmt.Printf("undecided at W=%d; no routable width proven\n", ub)
		os.Exit(1)
	}
}

func printTracks(dr *fpga.DetailedRouting) {
	for i, r := range dr.Global.Routes {
		fmt.Printf("  %-12s track %d  (%d connection blocks)\n",
			r.Label(dr.Global.Netlist), dr.Tracks[i], len(r.Segs))
	}
}

// loadExternal reads a netlist file and either a companion global-
// routing file or computes a fresh global routing.
func loadExternal(netPath, rtPath string) *fpga.GlobalRouting {
	nf, err := os.Open(netPath)
	if err != nil {
		log.Fatal(err)
	}
	defer nf.Close()
	nl, err := fpga.ParseNetlist(nf)
	if err != nil {
		log.Fatal(err)
	}
	if rtPath == "" {
		gr, converged, err := fpga.RouteGlobal(nl, fpga.RouteOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if !converged {
			fmt.Println("note: global router did not meet its occupancy target; routing is valid but congested")
		}
		return gr
	}
	rf, err := os.Open(rtPath)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	gr, err := fpga.ParseRouting(rf, nl)
	if err != nil {
		log.Fatal(err)
	}
	return gr
}

func writeCol(path string, g *graph.Graph, name string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return graph.WriteDIMACS(f, g, "conflict graph of instance "+name)
}

func writeCnf(path string, cnf *sat.CNF) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return sat.WriteDIMACS(f, cnf)
}
