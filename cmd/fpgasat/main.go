// Command fpgasat is the end-to-end SAT-based FPGA detailed router:
// it generates (or looks up) a benchmark netlist, computes a global
// routing, translates the detailed-routing problem to graph coloring
// and then to CNF under a chosen encoding/symmetry strategy, runs the
// CDCL solver, and either prints the detailed routing (track
// assignment) or reports a proof of unroutability.
//
// Usage:
//
//	fpgasat -instance vda -w 7 -strategy ITE-linear-2+muldirect/s1
//	fpgasat -instance alu2 -findmin             # minimum channel width
//	fpgasat -instance k2 -w 8 -col out.col      # emit DIMACS graph
//	fpgasat -instance k2 -w 8 -cnf out.cnf      # emit DIMACS CNF
//	fpgasat -instance apex7 -w 8 -tracks        # print track assignment
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"fpgasat/internal/coloring"
	"fpgasat/internal/core"
	"fpgasat/internal/fpga"
	"fpgasat/internal/graph"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/sat"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fpgasat: ")
	var (
		instName = flag.String("instance", "alu2", "benchmark instance name (see -list)")
		netFile  = flag.String("netlist", "", "route an external netlist file instead of a benchmark instance")
		rtFile   = flag.String("routing", "", "use an external global-routing file (requires -netlist)")
		list     = flag.Bool("list", false, "list available instances and exit")
		w        = flag.Int("w", 0, "channel width W (default: the instance's routable width)")
		strategy = flag.String("strategy", "ITE-linear-2+muldirect/s1", "encoding[/heuristic]")
		findMin  = flag.Bool("findmin", false, "find the minimum routable channel width")
		colOut   = flag.String("col", "", "write the conflict graph in DIMACS edge format to this file")
		cnfOut   = flag.String("cnf", "", "write the CNF in DIMACS format to this file")
		tracks   = flag.Bool("tracks", false, "print the full track assignment when routable")
		proof    = flag.String("proof", "", "on UNROUTABLE, write a DRAT unroutability certificate here and verify it")
		timeout  = flag.Duration("timeout", 5*time.Minute, "solve timeout (0 = none)")
	)
	flag.Parse()

	if *list {
		for _, name := range mcnc.Names() {
			in, _ := mcnc.ByName(name)
			fmt.Printf("%-10s %2dx%-2d %4d nets  routable W=%d\n",
				in.Name, in.Gen.Cols, in.Gen.Rows, in.Gen.NumNets, in.RoutableW)
		}
		return
	}

	s, err := core.ParseStrategy(*strategy)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	var gr *fpga.GlobalRouting
	name := *instName
	if *netFile != "" {
		gr = loadExternal(*netFile, *rtFile)
		name = gr.Netlist.Name
		if *w == 0 {
			log.Fatal("-w is required with -netlist")
		}
	} else {
		in, err := mcnc.ByName(*instName)
		if err != nil {
			log.Fatal(err)
		}
		if *w == 0 {
			*w = in.RoutableW
		}
		gr, _, err = in.Build()
		if err != nil {
			log.Fatal(err)
		}
	}
	g := gr.ConflictGraph()
	fmt.Printf("instance %s: %dx%d array, %d nets, %d 2-pin nets\n",
		name, gr.Netlist.Arch.Cols, gr.Netlist.Arch.Rows, len(gr.Netlist.Nets), len(gr.Routes))
	fmt.Printf("conflict graph: %d vertices, %d edges, max congestion %d (translate %v)\n",
		g.N(), g.M(), gr.MaxCongestion(), time.Since(start).Round(time.Millisecond))

	if *colOut != "" {
		if err := writeCol(*colOut, g, name); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote conflict graph to %s\n", *colOut)
	}

	if *findMin {
		findMinimum(gr, g, s, *timeout)
		return
	}

	enc := s.EncodeGraph(g, *w)
	if *cnfOut != "" {
		if err := writeCnf(*cnfOut, enc.CNF); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote CNF to %s (%d vars, %d clauses)\n",
			*cnfOut, enc.CNF.NumVars, enc.CNF.NumClauses())
	}

	opts := sat.Options{}
	var proofFile *os.File
	if *proof != "" {
		proofFile, err = os.Create(*proof)
		if err != nil {
			log.Fatal(err)
		}
		opts.ProofWriter = proofFile
	}
	st, colors := solveWith(enc, opts, *timeout)
	if proofFile != nil {
		if err := proofFile.Close(); err != nil {
			log.Fatal(err)
		}
		if st == sat.Unsat {
			pf, err := os.Open(*proof)
			if err != nil {
				log.Fatal(err)
			}
			err = sat.CheckDRAT(enc.CNF, pf)
			pf.Close()
			if err != nil {
				log.Fatalf("unroutability certificate failed verification: %v", err)
			}
			fmt.Printf("unroutability certificate written to %s and verified (DRAT)\n", *proof)
		}
	}
	switch st {
	case sat.Sat:
		dr, err := fpga.AssignTracks(gr, colors, *w)
		if err != nil {
			log.Fatalf("decoded routing invalid: %v", err)
		}
		fmt.Printf("ROUTABLE with W=%d tracks (strategy %s)\n", *w, s.Name())
		if *tracks {
			printTracks(dr)
		}
	case sat.Unsat:
		fmt.Printf("UNROUTABLE with W=%d tracks — proven by %s\n", *w, s.Name())
	default:
		fmt.Printf("UNDECIDED within %v\n", *timeout)
		os.Exit(1)
	}
}

func solveOnce(enc *core.Encoded, timeout time.Duration) (sat.Status, []int) {
	return solveWith(enc, sat.Options{}, timeout)
}

func solveWith(enc *core.Encoded, opts sat.Options, timeout time.Duration) (sat.Status, []int) {
	var stop chan struct{}
	if timeout > 0 {
		stop = make(chan struct{})
		t := time.AfterFunc(timeout, func() { close(stop) })
		defer t.Stop()
	}
	start := time.Now()
	st, colors, err := enc.Solve(opts, stop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SAT solve: %v (%d vars, %d clauses) -> %v\n",
		time.Since(start).Round(time.Millisecond), enc.CNF.NumVars, enc.CNF.NumClauses(), st)
	return st, colors
}

// findMinimum performs the paper's optimality flow: descend from the
// DSATUR upper bound, proving routability at each width until the
// first unroutable one.
func findMinimum(gr *fpga.GlobalRouting, g *graph.Graph, s core.Strategy, timeout time.Duration) {
	_, ub := coloring.DSATUR(g)
	fmt.Printf("DSATUR upper bound: %d; clique lower bound: %d\n",
		ub, len(coloring.GreedyClique(g)))
	best := ub
	for k := ub - 1; k >= 1; k-- {
		st, _ := solveOnce(s.EncodeGraph(g, k), timeout)
		if st == sat.Unsat {
			fmt.Printf("minimum channel width: W=%d (W=%d proven unroutable)\n", best, k)
			return
		}
		if st == sat.Unknown {
			fmt.Printf("undecided at W=%d; best known routable width: %d\n", k, best)
			os.Exit(1)
		}
		best = k
	}
	fmt.Printf("minimum channel width: W=%d\n", best)
}

func printTracks(dr *fpga.DetailedRouting) {
	for i, r := range dr.Global.Routes {
		fmt.Printf("  %-12s track %d  (%d connection blocks)\n",
			r.Label(dr.Global.Netlist), dr.Tracks[i], len(r.Segs))
	}
}

// loadExternal reads a netlist file and either a companion global-
// routing file or computes a fresh global routing.
func loadExternal(netPath, rtPath string) *fpga.GlobalRouting {
	nf, err := os.Open(netPath)
	if err != nil {
		log.Fatal(err)
	}
	defer nf.Close()
	nl, err := fpga.ParseNetlist(nf)
	if err != nil {
		log.Fatal(err)
	}
	if rtPath == "" {
		gr, converged, err := fpga.RouteGlobal(nl, fpga.RouteOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if !converged {
			fmt.Println("note: global router did not meet its occupancy target; routing is valid but congested")
		}
		return gr
	}
	rf, err := os.Open(rtPath)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	gr, err := fpga.ParseRouting(rf, nl)
	if err != nil {
		log.Fatal(err)
	}
	return gr
}

func writeCol(path string, g *graph.Graph, name string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return graph.WriteDIMACS(f, g, "conflict graph of instance "+name)
}

func writeCnf(path string, cnf *sat.CNF) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return sat.WriteDIMACS(f, cnf)
}
