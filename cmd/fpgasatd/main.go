// Command fpgasatd is the solve-as-a-service daemon: a long-running
// HTTP/JSON server that decides FPGA detailed routability at a given
// channel width on sharded pools of reusable SAT solvers. It serves
// the existing benchmark registry and inline DIMACS conflict graphs
// through four endpoints:
//
//	POST /v1/solve     submit a solve job (async, or synchronous with "wait")
//	GET  /v1/jobs/{id} job status and result
//	GET  /metrics      live metrics snapshot (queue depths, shard
//	                   utilization, pool hit rates, solver telemetry)
//	GET  /healthz      liveness (200 while the process serves at all)
//	GET  /readyz       readiness (503 while draining or saturated)
//
// Jobs are classified into size-class shards by conflict-graph vertex
// count; each shard owns bounded interactive and batch admission
// queues (full = HTTP 429 with an adaptive Retry-After), a fixed
// worker group, a solver pool whose clause arenas recycle across jobs
// of similar size, and a circuit breaker that isolates the shard when
// its jobs keep dying of supervision failures. Every solve runs
// through the hardened portfolio layer, so per-job deadlines, conflict
// budgets, retries, clause sharing and paranoid answer verification
// are all available per request. SIGINT/SIGTERM starts a graceful
// drain: admission stops, queued and in-flight jobs finish, then the
// process exits.
//
// With -journal, accepted jobs are fsynced to a write-ahead log before
// the submit is acknowledged, and a restart replays it: completed
// results are restored, accepted-but-unfinished jobs are re-enqueued,
// and idempotency keys keep client retries duplicate-free across the
// crash.
//
// Usage:
//
//	fpgasatd -addr :8080
//	fpgasatd -addr :8080 -journal /var/lib/fpgasatd/wal
//	fpgasatd -addr :8080 -verify -workers 8 -queue 512
//	curl -s localhost:8080/v1/solve -d '{"instance":"alu2","width":6,"wait":true}'
//
// See docs/OPERATIONS.md for the endpoint reference, tuning guide and
// metrics catalog.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fpgasat/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("fpgasatd: ")
	var (
		addr            = flag.String("addr", ":8080", "listen address")
		shardSpec       = flag.String("shards", "", `size-class layout as "name=maxVertices,..." with 0 = unbounded catch-all (default "small=4096,medium=262144,large=0")`)
		workers         = flag.Int("workers", 0, "workers per shard (0 = per-shard defaults)")
		queueDepth      = flag.Int("queue", 0, "admission queue depth per shard (0 = per-shard defaults)")
		defaultDeadline = flag.Duration("default-deadline", time.Minute, "job deadline applied when the request sets none")
		maxDeadline     = flag.Duration("max-deadline", 10*time.Minute, "upper clamp on job deadlines (negative = no clamp)")
		verify          = flag.Bool("verify", false, "paranoid mode on every job: re-verify Sat answers against the conflict graph, replay Unsat answers through the DRAT checker")
		retain          = flag.Duration("retain", 15*time.Minute, "how long completed jobs stay queryable via /v1/jobs")
		maxJobs         = flag.Int("max-jobs", 16384, "job-table cap; oldest completed jobs are evicted beyond it")
		drainTimeout    = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on SIGTERM before their solves are cancelled")
		journalDir      = flag.String("journal", "", "durable job journal directory (empty = no journal; a restart loses job state)")
		sojournTarget   = flag.Duration("sojourn-target", 30*time.Second, "shed jobs that sat queued longer than this at dequeue (negative = never shed)")
		brkThreshold    = flag.Int("breaker-threshold", 5, "consecutive supervision failures that trip a shard's circuit breaker (negative = breakers off)")
		brkBackoff      = flag.Duration("breaker-backoff", time.Second, "first circuit-breaker open period (doubles per failed probe)")
		brkMaxBackoff   = flag.Duration("breaker-max-backoff", time.Minute, "circuit-breaker backoff cap")
		metricsOut      = flag.String("metrics-out", "", "write a final metrics snapshot (JSON) to this file on shutdown")
	)
	flag.Parse()

	opts := serve.Options{
		DefaultDeadline:   *defaultDeadline,
		MaxDeadline:       *maxDeadline,
		Verify:            *verify,
		RetainJobs:        *retain,
		MaxJobs:           *maxJobs,
		JournalDir:        *journalDir,
		SojournTarget:     *sojournTarget,
		BreakerThreshold:  *brkThreshold,
		BreakerBackoff:    *brkBackoff,
		BreakerMaxBackoff: *brkMaxBackoff,
	}
	if *shardSpec != "" {
		shards, err := parseShards(*shardSpec)
		if err != nil {
			log.Fatal(err)
		}
		opts.Shards = shards
	} else {
		opts.Shards = serve.DefaultShards()
	}
	for i := range opts.Shards {
		if *workers > 0 {
			opts.Shards[i].Workers = *workers
		}
		if *queueDepth > 0 {
			opts.Shards[i].QueueDepth = *queueDepth
		}
	}

	srv, err := serve.NewServer(opts)
	if err != nil {
		log.Fatal(err)
	}
	if *journalDir != "" {
		reg := srv.Metrics()
		log.Printf("journal %s: replayed %d records (%d results restored, %d jobs re-enqueued, %d truncated)",
			*journalDir,
			reg.Counter(serve.MetricJournalReplayed).Value(),
			reg.Counter(serve.MetricJournalRestored).Value(),
			reg.Counter(serve.MetricJournalRecovered).Value(),
			reg.Counter(serve.MetricJournalTruncated).Value())
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	for _, sc := range opts.Shards {
		bound := "unbounded"
		if sc.MaxVertices > 0 {
			bound = fmt.Sprintf("<= %d vertices", sc.MaxVertices)
		}
		log.Printf("shard %-8s %s, %d workers, queue %d", sc.Name, bound, sc.Workers, sc.QueueDepth)
	}
	log.Printf("serving on %s (verify=%v)", *addr, *verify)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutdown signal received; draining (timeout %v)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Printf("drain incomplete: %v (in-flight solves were cancelled)", err)
	} else {
		log.Printf("drain complete: all queued and in-flight jobs finished")
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	if *metricsOut != "" {
		if err := writeMetrics(srv, *metricsOut); err != nil {
			log.Printf("metrics-out: %v", err)
		} else {
			log.Printf("final metrics snapshot written to %s", *metricsOut)
		}
	}
}

// writeMetrics dumps a final metrics snapshot to path.
func writeMetrics(srv *serve.Server, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := srv.Scrape().WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// parseShards parses the -shards flag: comma-separated name=bound
// pairs, bound 0 marking the unbounded catch-all.
func parseShards(spec string) ([]serve.ShardConfig, error) {
	var out []serve.ShardConfig
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, boundStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-shards: %q is not name=maxVertices", part)
		}
		bound, err := strconv.Atoi(boundStr)
		if err != nil {
			return nil, fmt.Errorf("-shards: %q: %v", part, err)
		}
		out = append(out, serve.ShardConfig{Name: strings.TrimSpace(name), MaxVertices: bound})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-shards: empty layout")
	}
	return out, nil
}
