// Command gc2sat implements the second step of the paper's tool flow:
// it reads a graph-coloring problem in DIMACS edge format, applies an
// optional symmetry-breaking heuristic, translates it to CNF under a
// chosen encoding, and writes the result in DIMACS CNF format.
//
// Usage:
//
//	gc2sat -k 7 -encoding ITE-linear-2+muldirect -symmetry s1 < graph.col > formula.cnf
//	gc2sat -k 7 -in graph.col -out formula.cnf
//	gc2sat -encodings    # list available encodings
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"fpgasat/internal/core"
	"fpgasat/internal/graph"
	"fpgasat/internal/sat"
	"fpgasat/internal/symmetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gc2sat: ")
	var (
		k       = flag.Int("k", 0, "number of colors (required)")
		encName = flag.String("encoding", "muldirect", "CSP-to-SAT encoding")
		symName = flag.String("symmetry", "", "symmetry-breaking heuristic: b1, s1 or empty")
		inPath  = flag.String("in", "", "input .col file (default stdin)")
		outPath = flag.String("out", "", "output .cnf file (default stdout)")
		listEnc = flag.Bool("encodings", false, "list the paper's encodings and exit")
	)
	flag.Parse()

	if *listEnc {
		for _, n := range core.PaperEncodingNames {
			fmt.Println(n)
		}
		return
	}
	if *k < 1 {
		log.Fatal("-k must be at least 1")
	}
	enc, err := core.ByName(*encName)
	if err != nil {
		log.Fatal(err)
	}
	h, err := symmetry.Parse(*symName)
	if err != nil {
		log.Fatal(err)
	}

	var in io.Reader = os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	g, err := graph.ParseDIMACS(in)
	if err != nil {
		log.Fatal(err)
	}

	e := core.Strategy{Encoding: enc, Symmetry: h}.EncodeGraph(g, *k)

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := sat.WriteDIMACS(out, e.CNF); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "gc2sat: %d vertices, %d edges, k=%d -> %d vars, %d clauses (%s)\n",
		g.N(), g.M(), *k, e.CNF.NumVars, e.CNF.NumClauses(),
		core.Strategy{Encoding: enc, Symmetry: h}.Name())
}
