// Command mcncgen regenerates the synthetic MCNC-style benchmark
// instances and writes their conflict graphs as DIMACS .col files, so
// the graph-coloring step of the flow can also be fed to third-party
// coloring or SAT tooling.
//
// Usage:
//
//	mcncgen -dir bench/           # write all instances
//	mcncgen -instance vda -stats  # stats only
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"fpgasat/internal/coloring"
	"fpgasat/internal/fpga"
	"fpgasat/internal/graph"
	"fpgasat/internal/mcnc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcncgen: ")
	var (
		dir      = flag.String("dir", "", "directory to write .col files into (omit for stats only)")
		full     = flag.Bool("full", false, "with -dir, also write .net netlists and .route global routings")
		instName = flag.String("instance", "", "restrict to one instance")
		stats    = flag.Bool("stats", true, "print instance statistics")
	)
	flag.Parse()

	insts := mcnc.Instances()
	if *instName != "" {
		in, err := mcnc.ByName(*instName)
		if err != nil {
			log.Fatal(err)
		}
		insts = []mcnc.Instance{in}
	}
	if *dir != "" {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	if *stats {
		fmt.Printf("%-10s %7s %6s %8s %6s %6s %9s %4s\n",
			"instance", "array", "nets", "2pin", "V", "E", "congest", "W")
	}
	for _, in := range insts {
		gr, g, err := in.Build()
		if err != nil {
			log.Fatal(err)
		}
		if *stats {
			fmt.Printf("%-10s %3dx%-3d %6d %8d %6d %6d %9d %4d\n",
				in.Name, in.Gen.Cols, in.Gen.Rows, len(gr.Netlist.Nets),
				len(gr.Routes), g.N(), g.M(), gr.MaxCongestion(), in.RoutableW)
		}
		if *dir != "" {
			path := filepath.Join(*dir, in.Name+".col")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			comment := fmt.Sprintf("instance %s: routable W=%d, unroutable W=%d, clique>=%d",
				in.Name, in.RoutableW, in.UnroutableW(), len(coloring.GreedyClique(g)))
			if err := graph.WriteDIMACS(f, g, comment); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			if *full {
				writeFile(filepath.Join(*dir, in.Name+".net"), func(w *os.File) error {
					return fpga.WriteNetlist(w, gr.Netlist)
				})
				writeFile(filepath.Join(*dir, in.Name+".route"), func(w *os.File) error {
					return fpga.WriteRouting(w, gr)
				})
			}
		}
	}
}

// writeFile creates path and runs fn on it, exiting on any error.
func writeFile(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := fn(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}
