// Command satsolve runs the built-in CDCL solver on a DIMACS CNF file
// and prints the result in SAT-competition output format
// ("s SATISFIABLE" / "s UNSATISFIABLE" plus "v" model lines).
//
// Usage:
//
//	satsolve formula.cnf
//	satsolve < formula.cnf
//	satsolve -budget 100000 -stats formula.cnf
//	satsolve -proof refutation.drat formula.cnf
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"fpgasat/internal/sat"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("satsolve: ")
	var (
		budget   = flag.Int64("budget", 0, "conflict budget (0 = unlimited)")
		stats    = flag.Bool("stats", false, "print solver statistics to stderr")
		noModel  = flag.Bool("q", false, "suppress the model (v lines)")
		proof    = flag.String("proof", "", "write a DRAT proof to this file and self-check it on UNSAT")
		simplify = flag.Bool("simplify", false, "preprocess with unit propagation and pure-literal elimination")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	cnf, err := sat.ParseDIMACS(in)
	if err != nil {
		log.Fatal(err)
	}
	var pre *sat.Simplified
	if *simplify {
		pre = sat.Simplify(cnf)
		fmt.Fprintf(os.Stderr, "c simplify: %d -> %d clauses, %d vars fixed\n",
			len(cnf.Clauses), len(pre.CNF.Clauses), len(pre.Fixed))
		switch pre.Status {
		case sat.Unsat:
			fmt.Println("s UNSATISFIABLE")
			os.Exit(20)
		case sat.Sat:
			fmt.Println("s SATISFIABLE")
			if !*noModel {
				model, err := pre.Extend(nil)
				if err != nil {
					log.Fatal(err)
				}
				printModel(model)
			}
			os.Exit(10)
		}
		cnf = pre.CNF
	}
	opts := sat.Options{ConflictBudget: *budget}
	var proofFile *os.File
	if *proof != "" {
		var err error
		proofFile, err = os.Create(*proof)
		if err != nil {
			log.Fatal(err)
		}
		opts.ProofWriter = proofFile
	}
	res := sat.SolveCNFContext(context.Background(), cnf, opts)
	if proofFile != nil {
		if err := proofFile.Close(); err != nil {
			log.Fatal(err)
		}
		if res.Status == sat.Unsat {
			pf, err := os.Open(*proof)
			if err != nil {
				log.Fatal(err)
			}
			err = sat.CheckDRAT(cnf, pf)
			pf.Close()
			if err != nil {
				log.Fatalf("generated proof failed verification: %v", err)
			}
			fmt.Fprintf(os.Stderr, "c DRAT proof written to %s and verified\n", *proof)
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "c conflicts=%d decisions=%d propagations=%d restarts=%d learnt=%d removed=%d\n",
			res.Stats.Conflicts, res.Stats.Decisions, res.Stats.Propagations,
			res.Stats.Restarts, res.Stats.Learnt, res.Stats.Removed)
	}
	switch res.Status {
	case sat.Sat:
		fmt.Println("s SATISFIABLE")
		if !*noModel {
			model := res.Model
			if pre != nil {
				var err error
				model, err = pre.Extend(model)
				if err != nil {
					log.Fatal(err)
				}
			}
			printModel(model)
		}
	case sat.Unsat:
		fmt.Println("s UNSATISFIABLE")
		os.Exit(20)
	default:
		fmt.Println("s UNKNOWN")
		os.Exit(1)
	}
	os.Exit(10)
}

func printModel(model []bool) {
	line := "v"
	for i, val := range model {
		lit := i + 1
		if !val {
			lit = -lit
		}
		s := fmt.Sprintf(" %d", lit)
		if len(line)+len(s) > 76 {
			fmt.Println(line)
			line = "v"
		}
		line += s
	}
	fmt.Println(line + " 0")
}
