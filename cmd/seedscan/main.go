// Command seedscan searches generator seeds for "challenging
// unroutable configurations" in the sense of the paper's Table 2:
// instances whose W-1 unroutability proof is expensive for the
// baseline muldirect encoding without symmetry breaking. The selected
// seeds are baked into package mcnc; this tool documents and
// reproduces that selection.
//
// For every size class and seed it regenerates the instance, finds the
// conflict graph's chromatic number with a fast strategy, then times
// the baseline on the unroutable width. Selection uses only the
// baseline time (the paper's notion of "challenging"), never the times
// of the new encodings.
//
// Usage:
//
//	seedscan [-class name] [-seeds n] [-min seconds] [-cap seconds]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"fpgasat/internal/coloring"
	"fpgasat/internal/core"
	"fpgasat/internal/fpga"
	"fpgasat/internal/graph"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/sat"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seedscan: ")
	class := flag.String("class", "", "scan a single size class (instance name)")
	seeds := flag.Int("seeds", 12, "seeds per class")
	minHard := flag.Duration("min", 2*time.Second, "minimum baseline time to call a seed challenging")
	capT := flag.Duration("cap", 30*time.Second, "per-solve cap")
	flag.Parse()

	fast1 := mustStrategy("ITE-log/s1")
	fast2 := mustStrategy("ITE-linear-2+muldirect/s1")
	slow := mustStrategy("muldirect")

	for _, in := range mcnc.Instances() {
		if *class != "" && in.Name != *class {
			continue
		}
		if !in.Hard {
			continue
		}
		fmt.Printf("== class %s (%dx%d, %d nets)\n", in.Name, in.Gen.Cols, in.Gen.Rows, in.Gen.NumNets)
		base := in.Gen.Seed
		for s := 0; s < *seeds; s++ {
			gen := in.Gen
			gen.Seed = base + int64(1000*s)
			nl, err := fpga.Generate(in.Name, gen)
			if err != nil {
				log.Fatal(err)
			}
			gr, _, err := fpga.RouteGlobal(nl, in.Route)
			if err != nil {
				log.Fatal(err)
			}
			g := gr.ConflictGraph()
			chi, ok := findChi(g, fast1, fast2, *capT)
			if !ok {
				fmt.Printf("  seed %-6d V=%-4d E=%-5d chi=? (timeout)\n", gen.Seed, g.N(), g.M())
				continue
			}
			clq := len(coloring.GreedyClique(g))
			tSlow, stSlow := timeSolve(slow, g, chi-1, *capT)
			mark := " "
			if stSlow == sat.Unknown || tSlow >= *minHard {
				mark = "*"
			}
			tF1, _ := timeSolve(fast1, g, chi-1, *capT)
			tF2, _ := timeSolve(fast2, g, chi-1, *capT)
			fmt.Printf("  seed %-6d V=%-4d E=%-5d clq=%d chi=%d | muldirect/-: %8.2fs%s %s  [%s: %.2fs, %s: %.2fs]\n",
				gen.Seed, g.N(), g.M(), clq, chi,
				tSlow.Seconds(), timeoutSuffix(stSlow), mark,
				fast1.Name(), tF1.Seconds(), fast2.Name(), tF2.Seconds())
		}
	}
}

func mustStrategy(s string) core.Strategy {
	st, err := core.ParseStrategy(s)
	if err != nil {
		log.Fatal(err)
	}
	return st
}

// findChi locates the chromatic number by descending from the DSATUR
// bound, racing two fast strategies at each width.
func findChi(g *graph.Graph, a, b core.Strategy, cap time.Duration) (int, bool) {
	_, ub := coloring.DSATUR(g)
	chi := ub
	for k := ub - 1; k >= 1; k-- {
		st := race(g, k, cap, a, b)
		if st == sat.Unknown {
			return 0, false
		}
		if st == sat.Unsat {
			return chi, true
		}
		chi = k
	}
	return chi, true
}

// race solves (g,k) with the given strategies sequentially until one
// answers within the cap.
func race(g *graph.Graph, k int, cap time.Duration, strategies ...core.Strategy) sat.Status {
	for _, s := range strategies {
		if _, st := timeSolveInv(s, g, k, cap); st != sat.Unknown {
			return st
		}
	}
	return sat.Unknown
}

func timeSolve(s core.Strategy, g *graph.Graph, k int, cap time.Duration) (time.Duration, sat.Status) {
	d, st := timeSolveInv(s, g, k, cap)
	return d, st
}

func timeSolveInv(s core.Strategy, g *graph.Graph, k int, cap time.Duration) (time.Duration, sat.Status) {
	start := time.Now()
	enc := s.EncodeGraph(g, k)
	stop := make(chan struct{})
	timer := time.AfterFunc(cap, func() { close(stop) })
	defer timer.Stop()
	st, _, err := enc.Solve(sat.Options{}, stop)
	if err != nil {
		log.Fatalf("%s k=%d: %v", s.Name(), k, err)
	}
	return time.Since(start), st
}

func timeoutSuffix(st sat.Status) string {
	if st == sat.Unknown {
		return "+"
	}
	return ""
}
