// Command seedscan searches generator seeds for "challenging
// unroutable configurations" in the sense of the paper's Table 2:
// instances whose W-1 unroutability proof is expensive for the
// baseline muldirect encoding without symmetry breaking. The selected
// seeds are baked into package mcnc; this tool documents and
// reproduces that selection.
//
// For every size class and seed it regenerates the instance, finds the
// conflict graph's chromatic number with the shared incremental width
// search (mcnc.FindChi, racing two fast strategies), then times the
// baseline on the unroutable width. Selection uses only the baseline
// time (the paper's notion of "challenging"), never the times of the
// new encodings.
//
// Usage:
//
//	seedscan [-class name] [-seeds n] [-min seconds] [-cap seconds]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"fpgasat/internal/core"
	"fpgasat/internal/fpga"
	"fpgasat/internal/graph"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/sat"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seedscan: ")
	class := flag.String("class", "", "scan a single size class (instance name)")
	seeds := flag.Int("seeds", 12, "seeds per class")
	minHard := flag.Duration("min", 2*time.Second, "minimum baseline time to call a seed challenging")
	capT := flag.Duration("cap", 30*time.Second, "per-solve cap")
	flag.Parse()

	fastPair := []core.Strategy{
		mustStrategy("ITE-log/s1"),
		mustStrategy("ITE-linear-2+muldirect/s1"),
	}
	slow := mustStrategy("muldirect")

	for _, in := range mcnc.Instances() {
		if *class != "" && in.Name != *class {
			continue
		}
		if !in.Hard {
			continue
		}
		fmt.Printf("== class %s (%dx%d, %d nets)\n", in.Name, in.Gen.Cols, in.Gen.Rows, in.Gen.NumNets)
		base := in.Gen.Seed
		for s := 0; s < *seeds; s++ {
			gen := in.Gen
			gen.Seed = base + int64(1000*s)
			nl, err := fpga.Generate(in.Name, gen)
			if err != nil {
				log.Fatal(err)
			}
			gr, _, err := fpga.RouteGlobal(nl, in.Route)
			if err != nil {
				log.Fatal(err)
			}
			g := gr.ConflictGraph()
			chi, err := mcnc.FindChi(context.Background(), g, fastPair, *capT, nil)
			if err != nil {
				log.Fatal(err)
			}
			if !chi.Proved {
				fmt.Printf("  seed %-6d V=%-4d E=%-5d chi=? (timeout)\n", gen.Seed, g.N(), g.M())
				continue
			}
			tSlow, stSlow, err := timeSolve(slow, g, chi.Chi-1, *capT)
			if err != nil {
				log.Fatal(err)
			}
			mark := " "
			if stSlow == sat.Unknown || tSlow >= *minHard {
				mark = "*"
			}
			tF1, _, err := timeSolve(fastPair[0], g, chi.Chi-1, *capT)
			if err != nil {
				log.Fatal(err)
			}
			tF2, _, err := timeSolve(fastPair[1], g, chi.Chi-1, *capT)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  seed %-6d V=%-4d E=%-5d clq=%d chi=%d | muldirect/-: %8.2fs%s %s  [%s: %.2fs, %s: %.2fs]\n",
				gen.Seed, g.N(), g.M(), chi.LowerBound, chi.Chi,
				tSlow.Seconds(), timeoutSuffix(stSlow), mark,
				fastPair[0].Name(), tF1.Seconds(), fastPair[1].Name(), tF2.Seconds())
		}
	}
}

func mustStrategy(s string) core.Strategy {
	st, err := core.ParseStrategy(s)
	if err != nil {
		log.Fatal(err)
	}
	return st
}

// timeSolve runs one fresh single-shot solve under a wall-clock cap —
// the baseline measurement the seed selection is based on.
func timeSolve(s core.Strategy, g *graph.Graph, k int, cap time.Duration) (time.Duration, sat.Status, error) {
	ctx, cancel := context.WithTimeout(context.Background(), cap)
	defer cancel()
	start := time.Now()
	enc := s.EncodeGraph(g, k)
	st, _, err := enc.SolveContext(ctx, sat.Options{})
	if err != nil {
		return time.Since(start), st, fmt.Errorf("%s k=%d: %w", s.Name(), k, err)
	}
	return time.Since(start), st, nil
}

func timeoutSuffix(st sat.Status) string {
	if st == sat.Unknown {
		return "+"
	}
	return ""
}
