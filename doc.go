// Package fpgasat reproduces "Comparison of Boolean Satisfiability
// Encodings on FPGA Detailed Routing Problems" (Velev & Gao, DATE
// 2008): a tool flow that translates FPGA detailed routing to graph
// coloring and then to SAT under 14 different CSP-to-SAT encodings,
// with two symmetry-breaking heuristics and parallel strategy
// portfolios.
//
// The implementation lives under internal/ (see DESIGN.md for the
// system inventory); command-line tools are under cmd/ and runnable
// examples under examples/. The benchmarks in bench_test.go regenerate
// the measurements of every table and figure in the paper; the
// authoritative recorded runs are in EXPERIMENTS.md.
package fpgasat
