package fpgasat_test

// TestDocsRelativeLinks is the link checker behind CI's docs-check
// job: every relative markdown link in README.md and docs/ must
// resolve to a file or directory in the repository, so renames and
// deletions cannot silently orphan the documentation. External (http)
// and intra-document (#anchor) links are out of scope.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target); images share
// the syntax and are checked the same way.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestDocsRelativeLinks(t *testing.T) {
	files := []string{"README.md"}
	entries, err := os.ReadDir("docs")
	if err != nil {
		t.Fatalf("reading docs/: %v", err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
			files = append(files, filepath.Join("docs", e.Name()))
		}
	}

	checked := 0
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			target, _, _ = strings.Cut(target, "#") // strip section anchors
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (%v)", file, m[1], err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no relative links found: the checker is miswired")
	}
	t.Logf("checked %d relative links across %d files", checked, len(files))
}
