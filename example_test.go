package fpgasat_test

import (
	"context"
	"fmt"
	"strings"

	fpgasat "fpgasat"
)

// ExampleParseStrategy shows the paper's strategy naming: an encoding
// name optionally followed by a symmetry-breaking heuristic.
func ExampleParseStrategy() {
	s, err := fpgasat.ParseStrategy("ITE-linear-2+muldirect/s1")
	if err != nil {
		panic(err)
	}
	fmt.Println(s.Name())
	fmt.Println(s.Encoding.Multivalued())
	// Output:
	// ITE-linear-2+muldirect/s1
	// true
}

// ExampleEncodeCSP encodes a triangle 3-coloring with the muldirect
// encoding and solves it.
func ExampleEncodeCSP() {
	g, _ := fpgasat.ParseGraphDIMACS(strings.NewReader(
		"p edge 3 3\ne 1 2\ne 2 3\ne 1 3\n"))
	csp := fpgasat.NewCSP(g, 3)
	enc := fpgasat.EncodeCSP(csp, fpgasat.NewSimple(fpgasat.KindMuldirect))
	fmt.Println(enc.CNF.NumVars, "variables,", enc.CNF.NumClauses(), "clauses")
	res := fpgasat.SolveCNFContext(context.Background(), enc.CNF, fpgasat.SolverOptions{})
	fmt.Println(res.Status)
	colors, _ := enc.Decode(res.Model)
	fmt.Println("proper:", fpgasat.VerifyColoring(g, colors, 3) == nil)
	// Output:
	// 9 variables, 12 clauses
	// SATISFIABLE
	// proper: true
}

// ExampleEncodingByName lists the Boolean variables each paper
// encoding allocates for a single CSP variable with 13 domain values
// (the domain size of the paper's Fig. 1).
func ExampleEncodingByName() {
	for _, name := range []string{"log", "muldirect", "ITE-linear", "ITE-log-2+ITE-linear"} {
		enc, err := fpgasat.EncodingByName(name)
		if err != nil {
			panic(err)
		}
		fmt.Println(enc.Name())
	}
	// Output:
	// log
	// muldirect
	// ITE-linear
	// ITE-log-2+ITE-linear
}

// ExampleNewCSP shows symmetry breaking shrinking color domains: the
// i-th selected vertex may only use colors < i+1.
func ExampleNewCSP() {
	g, _ := fpgasat.ParseGraphDIMACS(strings.NewReader(
		"p edge 4 4\ne 1 2\ne 2 3\ne 3 4\ne 4 1\n"))
	csp := fpgasat.NewCSP(g, 3)
	csp.ApplySequence([]int{0, 1}) // vertex 0 -> {0}, vertex 1 -> {0,1}
	fmt.Println(csp.Domain)
	// Output:
	// [1 2 3 3]
}
