package fpgasat_test

import (
	"context"
	"fmt"
	"strings"

	fpgasat "fpgasat"
)

// ExampleParseStrategy shows the paper's strategy naming: an encoding
// name optionally followed by a symmetry-breaking heuristic.
func ExampleParseStrategy() {
	s, err := fpgasat.ParseStrategy("ITE-linear-2+muldirect/s1")
	if err != nil {
		panic(err)
	}
	fmt.Println(s.Name())
	fmt.Println(s.Encoding.Multivalued())
	// Output:
	// ITE-linear-2+muldirect/s1
	// true
}

// ExampleEncodeCSP encodes a triangle 3-coloring with the muldirect
// encoding and solves it.
func ExampleEncodeCSP() {
	g, _ := fpgasat.ParseGraphDIMACS(strings.NewReader(
		"p edge 3 3\ne 1 2\ne 2 3\ne 1 3\n"))
	csp := fpgasat.NewCSP(g, 3)
	enc := fpgasat.EncodeCSP(csp, fpgasat.NewSimple(fpgasat.KindMuldirect))
	fmt.Println(enc.CNF.NumVars, "variables,", enc.CNF.NumClauses(), "clauses")
	res := fpgasat.SolveCNFContext(context.Background(), enc.CNF, fpgasat.SolverOptions{})
	fmt.Println(res.Status)
	colors, _ := enc.Decode(res.Model)
	fmt.Println("proper:", fpgasat.VerifyColoring(g, colors, 3) == nil)
	// Output:
	// 9 variables, 12 clauses
	// SATISFIABLE
	// proper: true
}

// ExampleEncodingByName lists the Boolean variables each paper
// encoding allocates for a single CSP variable with 13 domain values
// (the domain size of the paper's Fig. 1).
func ExampleEncodingByName() {
	for _, name := range []string{"log", "muldirect", "ITE-linear", "ITE-log-2+ITE-linear"} {
		enc, err := fpgasat.EncodingByName(name)
		if err != nil {
			panic(err)
		}
		fmt.Println(enc.Name())
	}
	// Output:
	// log
	// muldirect
	// ITE-linear
	// ITE-log-2+ITE-linear
}

// ExampleNewSession shows the reusable solving context: a Session
// owns a solver pool and a metrics registry, so back-to-back solves
// recycle clause arenas instead of reallocating them.
func ExampleNewSession() {
	sess := fpgasat.NewSession(fpgasat.NewMetrics())
	g, _ := fpgasat.ParseGraphDIMACS(strings.NewReader(
		"p edge 3 3\ne 1 2\ne 2 3\ne 1 3\n"))
	strat, _ := fpgasat.ParseStrategy("muldirect/s1")
	for _, k := range []int{3, 2} {
		status, colors, err := sess.SolveGraph(context.Background(), g, k, strat, fpgasat.SolverOptions{})
		if err != nil {
			panic(err)
		}
		fmt.Printf("width %d: %v (%d tracks assigned)\n", k, status, len(colors))
	}
	ps := sess.PoolStats()
	fmt.Printf("solvers handed out: %d, recycled: %d\n", ps.Gets, ps.Reuses)
	// Output:
	// width 3: SATISFIABLE (3 tracks assigned)
	// width 2: UNSATISFIABLE (0 tracks assigned)
	// solvers handed out: 2, recycled: 1
}

// ExampleSession_minWidth finds the minimum routable channel width of
// a conflict graph with the incremental assumption-based search (a
// 5-cycle needs 3 colors).
func ExampleSession_minWidth() {
	sess := fpgasat.NewSession(nil)
	g, _ := fpgasat.ParseGraphDIMACS(strings.NewReader(
		"p edge 5 5\ne 1 2\ne 2 3\ne 3 4\ne 4 5\ne 5 1\n"))
	strat, _ := fpgasat.ParseStrategy("muldirect")
	res, err := sess.MinWidth(context.Background(), g, fpgasat.SearchOptions{Strategy: strat, Hi: 5})
	if err != nil {
		panic(err)
	}
	fmt.Println("min width:", res.MinWidth, "proved optimal:", res.ProvedOptimal)
	fmt.Println("coloring verified:", fpgasat.VerifyColoring(g, res.Colors, res.MinWidth) == nil)
	// Output:
	// min width: 3 proved optimal: true
	// coloring verified: true
}

// ExampleSession_portfolioHardened races the paper's 3-strategy
// portfolio under full supervision: panic isolation, and paranoid
// verification of the answer (Sat models re-checked against the
// conflict edges, Unsat answers replayed through the DRAT checker).
func ExampleSession_portfolioHardened() {
	sess := fpgasat.NewSession(nil)
	g, _ := fpgasat.ParseGraphDIMACS(strings.NewReader(
		"p edge 3 3\ne 1 2\ne 2 3\ne 1 3\n"))
	strategies, _ := fpgasat.PaperPortfolio3()
	win, all, err := sess.PortfolioHardened(context.Background(), g, 2, strategies,
		fpgasat.PortfolioOptions{Verify: true, VerifyUnsat: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("answer:", win.Status)
	fmt.Println("lanes raced:", len(all))
	// Output:
	// answer: UNSATISFIABLE
	// lanes raced: 3
}

// ExampleNewCSP shows symmetry breaking shrinking color domains: the
// i-th selected vertex may only use colors < i+1.
func ExampleNewCSP() {
	g, _ := fpgasat.ParseGraphDIMACS(strings.NewReader(
		"p edge 4 4\ne 1 2\ne 2 3\ne 3 4\ne 4 1\n"))
	csp := fpgasat.NewCSP(g, 3)
	csp.ApplySequence([]int{0, 1}) // vertex 0 -> {0}, vertex 1 -> {0,1}
	fmt.Println(csp.Domain)
	// Output:
	// [1 2 3 3]
}
