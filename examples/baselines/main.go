// Baselines: why solve detailed routing with SAT at all? Conventional
// routers assign tracks one net at a time; on tight channels they need
// more tracks than necessary and can never prove a width infeasible.
// This example routes a benchmark with one-net-at-a-time greedy
// assignment, with DSATUR, and with the SAT flow, and renders the
// channel occupancy of the array.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"fpgasat/internal/coloring"
	"fpgasat/internal/core"
	"fpgasat/internal/fpga"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/sat"
)

func main() {
	log.SetFlags(0)

	inst, err := mcnc.ByName("9symml")
	if err != nil {
		log.Fatal(err)
	}
	global, conflict, err := inst.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance %s — channel occupancy after global routing:\n\n", inst.Name)
	fmt.Println(fpga.RenderOccupancy(global))

	// One net at a time, in netlist order: the conventional approach.
	_, wNatural := coloring.Greedy(conflict, nil)

	// One net at a time, most-constrained first.
	order := make([]int, conflict.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return conflict.Degree(order[a]) > conflict.Degree(order[b])
	})
	_, wDegree := coloring.Greedy(conflict, order)

	_, wDSATUR := coloring.DSATUR(conflict)

	fmt.Printf("one net at a time (netlist order):   needs W=%d\n", wNatural)
	fmt.Printf("one net at a time (hardest first):   needs W=%d\n", wDegree)
	fmt.Printf("DSATUR heuristic:                    needs W=%d\n", wDSATUR)

	// The SAT flow considers all nets simultaneously — and proves the
	// minimum.
	strategy, err := core.ParseStrategy("ITE-linear-2+muldirect/s1")
	if err != nil {
		log.Fatal(err)
	}
	w := inst.RoutableW
	st, colors, err := strategy.EncodeGraph(conflict, w).SolveContext(context.Background(), sat.Options{})
	if err != nil || st != sat.Sat {
		log.Fatalf("expected routable at W=%d: %v %v", w, st, err)
	}
	if _, err := fpga.AssignTracks(global, colors, w); err != nil {
		log.Fatal(err)
	}
	stU, _, err := strategy.EncodeGraph(conflict, w-1).SolveContext(context.Background(), sat.Options{})
	if err != nil || stU != sat.Unsat {
		log.Fatalf("expected unroutable at W=%d: %v %v", w-1, stU, err)
	}
	fmt.Printf("SAT flow (all nets simultaneously):  routes at W=%d and PROVES W=%d impossible\n", w, w-1)
	for _, base := range []struct {
		name string
		w    int
	}{{"netlist order", wNatural}, {"hardest first", wDegree}, {"DSATUR", wDSATUR}} {
		if base.w > w {
			fmt.Printf("  -> %s wastes %d track(s)\n", base.name, base.w-w)
		}
	}
}
