// Encodings: a tour of the CSP-to-SAT encoding framework — the clause
// shapes of Table 1, the ITE-tree patterns of Figure 1, arbitrary tree
// shapes, and the formula-size trade-offs across all 14 paper
// encodings on one graph.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fpgasat/internal/core"
	"fpgasat/internal/experiments"
	"fpgasat/internal/graph"
)

func main() {
	log.SetFlags(0)

	// Table 1: the clauses of the previously used encodings on two
	// adjacent CSP variables with 3 colors.
	fmt.Print(experiments.RunTable1().Markdown())

	// Figure 1: the indexing Boolean patterns of the ITE-tree
	// encodings for a 13-value domain.
	fig, err := experiments.RunFigure1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fig.Markdown())

	// Arbitrary ITE-tree shapes (Sect. 3: "the ITE tree for a CSP
	// variable can have any structure"): a random tree still selects
	// exactly one value per assignment, so it needs no structural
	// clauses and is a drop-in encoding.
	shape := core.RandomShape(rand.New(rand.NewSource(7)))
	custom := core.NewITETree("ITE-random", shape)
	cubes, nvars, err := core.DescribeVariable(custom, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("### A random ITE-tree encoding for 13 values (%d variables)\n\n", nvars)
	for c, cube := range cubes[:4] {
		fmt.Printf("  v%d selected by a %d-literal pattern %v\n", c, len(cube), cube)
	}
	fmt.Println("  ...")

	// Encode one graph under every paper encoding and compare formula
	// sizes: the structural trade-offs behind the Table 2 results.
	g := graph.Random(rand.New(rand.NewSource(3)), 60, 0.25)
	k := 7
	fmt.Printf("\n### Formula sizes for a %d-vertex, %d-edge graph with k=%d\n\n", g.N(), g.M(), k)
	fmt.Printf("%-24s %8s %9s %11s\n", "encoding", "vars", "clauses", "literals")
	for _, name := range core.PaperEncodingNames {
		enc, err := core.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		e := core.Encode(core.NewCSP(g, k), enc)
		fmt.Printf("%-24s %8d %9d %11d\n", name, e.CNF.NumVars, e.CNF.NumClauses(), e.CNF.NumLiterals())
	}
}
