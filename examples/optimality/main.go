// Optimality: the paper's headline capability — because the SAT flow
// can *prove* that a global routing has no detailed routing with W-1
// tracks, a routing found with W tracks is guaranteed optimal. This
// example walks the channel width down on a benchmark instance with
// the incremental width search: the graph is encoded once, every width
// is one assumption probe on the same solver, and the learnt clauses
// of earlier probes are reused by later ones.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fpgasat/internal/coloring"
	"fpgasat/internal/core"
	"fpgasat/internal/fpga"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/obs"
	"fpgasat/internal/sat"
	"fpgasat/internal/search"
)

func main() {
	log.SetFlags(0)

	inst, err := mcnc.ByName("tseng")
	if err != nil {
		log.Fatal(err)
	}
	global, conflict, err := inst.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance %s: %d 2-pin nets, conflict graph %d vertices / %d edges\n",
		inst.Name, len(global.Routes), conflict.N(), conflict.M())

	// A heuristic router would stop here: DSATUR gives a valid routing
	// but only an upper bound on the needed channel width.
	heurColors, heurW := coloring.DSATUR(conflict)
	if _, err := fpga.AssignTracks(global, heurColors, heurW); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DSATUR heuristic routes with W=%d — but is that optimal? It cannot say.\n", heurW)

	strategy, err := core.ParseStrategy("ITE-linear-2+muldirect/s1")
	if err != nil {
		log.Fatal(err)
	}
	reg := obs.NewRegistry()
	res, err := search.MinWidth(context.Background(), conflict, search.Options{
		Strategy: strategy,
		Lo:       1,
		Hi:       heurW,
		Metrics:  reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded once at W=%d in %v; probing widths by assumption:\n",
		heurW, res.EncodeTime.Round(time.Microsecond*100))
	for _, p := range res.Probes {
		switch p.Status {
		case sat.Sat:
			fmt.Printf("W=%d: routable (probe %v, %d learnt clauses carried in)\n",
				p.Width, p.Duration.Round(time.Microsecond*100), p.Learnts)
		case sat.Unsat:
			fmt.Printf("W=%d: UNROUTABLE, proven in %v reusing %d learnt clauses\n",
				p.Width, p.Duration.Round(time.Microsecond*100), p.Learnts)
		default:
			fmt.Printf("W=%d: undecided (cancelled)\n", p.Width)
		}
	}
	best, bestColors := heurW, heurColors
	if res.MinWidth > 0 {
		best, bestColors = res.MinWidth, res.Colors
	}
	if res.ProvedOptimal {
		fmt.Printf("=> W=%d is the exact minimum channel width (optimality certificate)\n", best)
	}

	detailed, err := fpga.AssignTracks(global, bestColors, best)
	if err != nil {
		log.Fatal(err)
	}
	if err := detailed.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final detailed routing verified: %d 2-pin nets on %d tracks\n",
		len(detailed.Tracks), best)
	if best < heurW {
		fmt.Printf("the SAT flow also beat DSATUR by %d track(s)\n", heurW-best)
	}
	snap := reg.Snapshot()
	fmt.Printf("telemetry: %d assumption solves, %d conflicts total, one encode pass\n",
		snap.Counters[search.MetricAssumpSolves], res.Stats.Conflicts)
}
