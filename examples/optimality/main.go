// Optimality: the paper's headline capability — because the SAT flow
// can *prove* that a global routing has no detailed routing with W-1
// tracks, a routing found with W tracks is guaranteed optimal. This
// example walks the channel width down on a benchmark instance,
// comparing against the DSATUR heuristic's upper bound (which cannot
// prove anything).
package main

import (
	"fmt"
	"log"
	"time"

	"fpgasat/internal/coloring"
	"fpgasat/internal/core"
	"fpgasat/internal/fpga"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/sat"
)

func main() {
	log.SetFlags(0)

	inst, err := mcnc.ByName("tseng")
	if err != nil {
		log.Fatal(err)
	}
	global, conflict, err := inst.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance %s: %d 2-pin nets, conflict graph %d vertices / %d edges\n",
		inst.Name, len(global.Routes), conflict.N(), conflict.M())

	// A heuristic router would stop here: DSATUR gives a valid routing
	// but only an upper bound on the needed channel width.
	heurColors, heurW := coloring.DSATUR(conflict)
	if _, err := fpga.AssignTracks(global, heurColors, heurW); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DSATUR heuristic routes with W=%d — but is that optimal? It cannot say.\n", heurW)

	strategy, err := core.ParseStrategy("ITE-linear-2+muldirect/s1")
	if err != nil {
		log.Fatal(err)
	}
	best := heurW
	var bestColors []int = heurColors
	for w := heurW - 1; w >= 1; w-- {
		start := time.Now()
		status, colors, err := strategy.EncodeGraph(conflict, w).Solve(sat.Options{}, nil)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		if status == sat.Unsat {
			fmt.Printf("W=%d: UNROUTABLE, proven in %v\n", w, elapsed)
			fmt.Printf("=> W=%d is the exact minimum channel width (optimality certificate)\n", best)
			break
		}
		fmt.Printf("W=%d: routable (found in %v)\n", w, elapsed)
		best, bestColors = w, colors
	}
	detailed, err := fpga.AssignTracks(global, bestColors, best)
	if err != nil {
		log.Fatal(err)
	}
	if err := detailed.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final detailed routing verified: %d 2-pin nets on %d tracks\n",
		len(detailed.Tracks), best)
	if best < heurW {
		fmt.Printf("the SAT flow also beat DSATUR by %d track(s)\n", heurW-best)
	}
}
