// Portfolio: run the paper's three-strategy portfolio — each member a
// (SAT encoding, symmetry heuristic) pair — in parallel on an
// unroutability proof, cancelling the losers as soon as one strategy
// answers (Sect. 6 of the paper).
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"fpgasat/internal/mcnc"
	"fpgasat/internal/obs"
	"fpgasat/internal/portfolio"
	"fpgasat/internal/sat"
)

func main() {
	log.SetFlags(0)

	inst, err := mcnc.ByName("alu2")
	if err != nil {
		log.Fatal(err)
	}
	_, conflict, err := inst.Build()
	if err != nil {
		log.Fatal(err)
	}
	w := inst.UnroutableW()
	fmt.Printf("instance %s at W=%d (unroutable): conflict graph %d vertices / %d edges\n",
		inst.Name, w, conflict.N(), conflict.M())

	members := portfolio.Must(portfolio.PaperPortfolio3())
	fmt.Println("portfolio members:")
	for _, m := range members {
		fmt.Printf("  - %s\n", m.Name())
	}

	// Run each strategy alone first, to show the variance a portfolio
	// exploits.
	fmt.Println("\nindividual runs:")
	for _, m := range members {
		start := time.Now()
		status, _, err := m.EncodeGraph(conflict, w).SolveContext(context.Background(), sat.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %8.3fs  %v\n", m.Name(), time.Since(start).Seconds(), status)
	}

	// The context-based runner with a metrics registry: per-strategy
	// encode/solve telemetry plus the winner margin (the cancellation
	// latency the losers pay).
	reg := obs.NewRegistry()
	start := time.Now()
	winner, all, err := portfolio.RunObserved(context.Background(), conflict, w, members, reg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nportfolio wall-clock: %.3fs, winner: %s (%v)\n",
		time.Since(start).Seconds(), winner.Strategy.Name(), winner.Status)
	for _, r := range all {
		state := "cancelled"
		if r.Winner {
			state = "WINNER"
		} else if r.Status != sat.Unknown {
			state = "finished"
		}
		fmt.Printf("  %-28s %8.3fs (encode %v + solve %v, %d vars, %d clauses)  %s\n",
			r.Strategy.Name(), r.Elapsed.Seconds(),
			r.EncodeTime.Round(time.Microsecond), r.SolveTime.Round(time.Millisecond),
			r.Vars, r.Clauses, state)
	}

	// The same machinery also answers satisfiable questions: at W+1 the
	// instance is routable and the winner supplies the routing.
	winner, _, err = portfolio.RunObserved(context.Background(), conflict, w+1, members, reg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat W=%d the portfolio finds a routing (winner %s, %d nets colored)\n",
		w+1, winner.Strategy.Name(), len(winner.Colors))

	fmt.Println("\ncollected telemetry:")
	if err := reg.Snapshot().WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
