// Quickstart: the whole SAT-based detailed-routing flow on a small
// synthetic FPGA — generate a placed netlist, compute a global
// routing, translate to graph coloring and then to CNF, and decide
// routability for two channel widths.
package main

import (
	"context"
	"fmt"
	"log"

	fpgasat "fpgasat"
)

func main() {
	log.SetFlags(0)

	// 1. A small placed circuit: 6x6 CLB array, 30 random nets.
	netlist, err := fpgasat.Generate("quickstart", fpgasat.GenParams{
		Rows: 6, Cols: 6, NumNets: 30, MinPins: 2, MaxPins: 4, Locality: 3, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("netlist: %d nets, %d pins on a %dx%d array\n",
		len(netlist.Nets), netlist.NumPins(), netlist.Arch.Cols, netlist.Arch.Rows)

	// 2. Global routing (the input of the detailed-routing problem).
	global, converged, err := fpgasat.RouteGlobal(netlist, fpgasat.RouteOptions{Capacity: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("global routing: %d 2-pin nets, wirelength %d, max congestion %d (converged=%v)\n",
		len(global.Routes), global.TotalWirelength(), global.MaxCongestion(), converged)

	// 3. Detailed routing as graph coloring: vertices are 2-pin nets,
	// edges join nets of different multi-pin nets sharing a connection
	// block, colors are tracks.
	conflict := global.ConflictGraph()
	fmt.Printf("conflict graph: %d vertices, %d edges\n", conflict.N(), conflict.M())

	// 4. Translate to SAT with the paper's best strategy and solve for
	// two widths around the threshold.
	strategy, err := fpgasat.ParseStrategy("ITE-linear-2+muldirect/s1")
	if err != nil {
		log.Fatal(err)
	}
	for w := global.MaxCongestion() + 1; w >= global.MaxCongestion()-1 && w >= 1; w-- {
		enc := strategy.EncodeGraph(conflict, w)
		status, colors, err := enc.SolveContext(context.Background(), fpgasat.SolverOptions{})
		if err != nil {
			log.Fatal(err)
		}
		switch status {
		case fpgasat.Sat:
			detailed, err := fpgasat.AssignTracks(global, colors, w)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("W=%d: ROUTABLE (%d vars, %d clauses); first nets: ", w,
				enc.CNF.NumVars, enc.CNF.NumClauses())
			for i := 0; i < 3 && i < len(detailed.Tracks); i++ {
				fmt.Printf("%s->track%d ", global.Routes[i].Label(netlist), detailed.Tracks[i])
			}
			fmt.Println()
		case fpgasat.Unsat:
			fmt.Printf("W=%d: UNROUTABLE — proven, so any routing found at W=%d is optimal\n", w, w+1)
		}
	}
}
