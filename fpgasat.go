package fpgasat

// This file is the public API of the module: a facade over the
// internal packages, so that downstream users can drive the complete
// flow — netlist → global routing → conflict graph → CSP-to-SAT
// encoding → CDCL solving → verified detailed routing — through one
// import. The examples/ directory shows it in use; the internal
// packages remain the implementation.

import (
	"context"
	"io"
	"time"

	"fpgasat/internal/coloring"
	"fpgasat/internal/core"
	"fpgasat/internal/fpga"
	"fpgasat/internal/graph"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/obs"
	"fpgasat/internal/portfolio"
	"fpgasat/internal/robust"
	"fpgasat/internal/sat"
	"fpgasat/internal/search"
	"fpgasat/internal/share"
	"fpgasat/internal/symmetry"
)

// Re-exported types. Aliases keep the full method sets of the
// underlying implementations.
type (
	// Graph is an undirected conflict graph: vertices are 2-pin nets,
	// edges are track-exclusivity constraints. It is immutable CSR
	// (compressed sparse row) storage — build one with GraphBuilder or
	// GraphFromEdgeStream.
	Graph = graph.Graph
	// GraphBuilder is the mutable construction side of Graph: AddVertex
	// / AddEdge freely, then Freeze() into the immutable CSR form every
	// consumer reads.
	GraphBuilder = graph.Builder

	// CSP is a graph-coloring constraint-satisfaction problem with
	// per-vertex color domains.
	CSP = core.CSP
	// Encoding translates CSP variables to Boolean variables, cubes
	// and structural clauses (the paper's contribution).
	Encoding = core.Encoding
	// Level is one partition level of a hierarchical encoding.
	Level = core.Level
	// Kind identifies a simple encoding (log, direct, muldirect,
	// ITE-linear, ITE-log).
	Kind = core.Kind
	// Cube is an indexing Boolean pattern.
	Cube = core.Cube
	// Encoded is a CSP translated to CNF, ready to solve and decode.
	Encoded = core.Encoded
	// Strategy pairs an encoding with a symmetry-breaking heuristic.
	Strategy = core.Strategy
	// TreeShape builds arbitrary ITE-tree structures.
	TreeShape = core.TreeShape

	// Heuristic is a symmetry-breaking heuristic (None, B1, S1, C1).
	Heuristic = symmetry.Heuristic

	// CNF is a formula in DIMACS literal convention.
	CNF = sat.CNF
	// SolverOptions configure the CDCL solver, including the Progress
	// observability callback (invoked with SolverStats snapshots at
	// restarts and periodically during search).
	SolverOptions = sat.Options
	// SolverStats counts solver work; also the payload of the
	// SolverOptions.Progress callback.
	SolverStats = sat.Stats
	// SolveResult bundles status, model and statistics.
	SolveResult = sat.Result
	// Status is Sat, Unsat or Unknown.
	Status = sat.Status

	// Metrics is the observability registry: named counters, gauges
	// and timers with per-stage spans; see NewMetrics.
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a Metrics registry,
	// serializable as JSON (WriteJSON) or a text report (WriteText).
	MetricsSnapshot = obs.Snapshot

	// Arch is an island-style FPGA array.
	Arch = fpga.Arch
	// Pin is a logic-block pin.
	Pin = fpga.Pin
	// Net is a multi-pin net (source first).
	Net = fpga.Net
	// Netlist is a placed circuit.
	Netlist = fpga.Netlist
	// GenParams control the synthetic netlist generator.
	GenParams = fpga.GenParams
	// ScaleParams control the tile-templated scaled-instance generator
	// (see GenerateScaled).
	ScaleParams = fpga.ScaleParams
	// ScaleStats summarize a scaled instance (net/edge counts, clique
	// lower bound, CSR storage size).
	ScaleStats = fpga.ScaleStats
	// RouteOptions configure the negotiated-congestion global router.
	RouteOptions = fpga.RouteOptions
	// GlobalRouting is a netlist with segment-level 2-pin routes.
	GlobalRouting = fpga.GlobalRouting
	// DetailedRouting adds a verified track assignment.
	DetailedRouting = fpga.DetailedRouting

	// Instance is a calibrated benchmark instance.
	Instance = mcnc.Instance
	// PortfolioResult is one strategy's outcome within a portfolio run.
	PortfolioResult = portfolio.Result
	// PortfolioOptions configure a hardened portfolio run: paranoid
	// answer verification, per-lane watchdog timeouts, budgeted
	// retries, per-lane seeding and clause sharing (see
	// RunPortfolioHardened).
	PortfolioOptions = portfolio.Options
	// ShareOptions configure the learnt-clause exchange of a clause-
	// sharing portfolio (export filter, ring size, import budget, seed,
	// deterministic replay); set PortfolioOptions.Share to enable it.
	ShareOptions = share.Options
	// ShareStats snapshots clause-exchange activity; the same numbers
	// are published as the portfolio.share.* counters.
	ShareStats = share.Stats

	// PanicError is a panic captured at a supervision boundary
	// (portfolio lane, width-search probe, Session solve), carrying the
	// panic value and its stack; surfaced via PortfolioResult.Err and
	// Session errors instead of crashing the process.
	PanicError = robust.PanicError
	// SoundnessError reports a definite answer that failed paranoid-
	// mode verification, naming the guilty strategy.
	SoundnessError = robust.SoundnessError
	// InputError wraps a parse or validation failure of user-supplied
	// input with its source file and line.
	InputError = robust.InputError
	// RetrySchedule selects how lane retries escalate conflict budgets.
	RetrySchedule = robust.RetrySchedule

	// Solver is the incremental CDCL solver: load or stream clauses,
	// then Solve / SolveAssuming / SolveAssumingContext repeatedly;
	// learnt clauses, activity and phases carry over between calls.
	Solver = sat.Solver
	// Lit is a solver literal; convert with LitFromDimacs.
	Lit = sat.Lit
	// ClauseSink consumes streamed DIMACS clauses: *CNF buffers them,
	// SolverClauseSink feeds them straight into a Solver.
	ClauseSink = core.ClauseSink
	// StreamedEncoding is the decode bookkeeping of one EncodeCSPInto
	// run (cubes, variable count, clause census).
	StreamedEncoding = core.Streamed
	// IncrementalEncoding is one encode at width K that serves every
	// width in [Lo, K] through selector assumptions.
	IncrementalEncoding = core.Incremental
	// SearchOptions configure the incremental minimum-width search.
	SearchOptions = search.Options
	// SearchResult is the outcome of a minimum-width search.
	SearchResult = search.Result
	// WidthProbe records one width probe within a SearchResult.
	WidthProbe = search.Probe
	// WidthResult is one strategy's outcome within a minimum-width
	// portfolio run.
	WidthResult = portfolio.WidthResult
	// ChiResult is the outcome of FindChi: measured chromatic number
	// plus the heuristic bounds that framed the search.
	ChiResult = mcnc.ChiResult
)

// Solver statuses.
const (
	Sat     = sat.Sat
	Unsat   = sat.Unsat
	Unknown = sat.Unknown
)

// Retry schedules for hardened portfolio runs.
const (
	GeometricRetry = robust.GeometricRetry
	LubyRetry      = robust.LubyRetry
)

// Robustness metric names recorded by hardened portfolio runs (lane
// panics, budgeted retries, paranoid-mode verifications, watchdog
// abandonments). Registries create metrics lazily, so tools that dump
// snapshots should touch these counters up front to make zero values
// visible.
const (
	MetricPortfolioPanics = portfolio.MetricPanics
	MetricRetries         = portfolio.MetricRetries
	MetricVerifySat       = portfolio.MetricVerifySat
	MetricVerifyUnsat     = portfolio.MetricVerifyUnsat
	MetricAbandoned       = portfolio.MetricAbandoned
)

// Clause-sharing metric names recorded by hardened portfolio runs with
// PortfolioOptions.Share set (see ShareStats for the semantics).
const (
	MetricShareExported   = portfolio.MetricShareExported
	MetricShareFiltered   = portfolio.MetricShareFiltered
	MetricShareDuplicates = portfolio.MetricShareDuplicates
	MetricShareDropped    = portfolio.MetricShareDropped
	MetricShareImported   = portfolio.MetricShareImported
	MetricShareRejected   = portfolio.MetricShareRejected
)

// RobustnessMetricNames lists the robustness counters above, in a
// stable order — convenience for pre-registering them in a registry.
func RobustnessMetricNames() []string {
	return []string{
		MetricPortfolioPanics,
		MetricRetries,
		MetricVerifySat,
		MetricVerifyUnsat,
		MetricAbandoned,
	}
}

// ShareMetricNames lists the clause-sharing counters, in a stable
// order — convenience for pre-registering them in a registry.
func ShareMetricNames() []string {
	return []string{
		MetricShareExported,
		MetricShareFiltered,
		MetricShareDuplicates,
		MetricShareDropped,
		MetricShareImported,
		MetricShareRejected,
	}
}

// Simple encoding kinds.
const (
	KindLog       = core.KindLog
	KindDirect    = core.KindDirect
	KindMuldirect = core.KindMuldirect
	KindITELinear = core.KindITELinear
	KindITELog    = core.KindITELog
)

// Symmetry-breaking heuristics: none, Van Gelder's b1, the paper's s1
// and the clique-seeded extension c1.
const (
	SymmetryNone = symmetry.None
	SymmetryB1   = symmetry.B1
	SymmetryS1   = symmetry.S1
	SymmetryC1   = symmetry.C1
)

// PaperEncodingNames lists the paper's 14 encodings (plus direct).
var PaperEncodingNames = core.PaperEncodingNames

// BandwidthEncodingNames lists the encodings of the bandwidth-coloring
// (distance-constraint) study: the order/ladder encoding plus the
// distance-aware direct and log encodings.
var BandwidthEncodingNames = core.BandwidthEncodingNames

// NewOrder returns the order (ladder) encoding: value v is represented
// by the unary threshold variables ge_i ≡ (v ≥ i), the natural home of
// distance constraints |c(u)−c(v)| ≥ d. Also reachable as "order" or
// "ladder" through EncodingByName and ParseStrategy.
func NewOrder() Encoding { return core.NewOrder() }

// EncodingByName returns an encoding by its paper-style name, e.g.
// "ITE-linear-2+muldirect".
func EncodingByName(name string) (Encoding, error) { return core.ByName(name) }

// NewSimple returns a simple encoding of the given kind.
func NewSimple(kind Kind) Encoding { return core.NewSimple(kind) }

// NewHierarchical composes partition levels with a leaf kind (Sect. 4
// of the paper).
func NewHierarchical(levels []Level, leaf Kind) (Encoding, error) {
	return core.NewHierarchical(levels, leaf)
}

// NewITETree builds an encoding from an arbitrary ITE-tree shape
// (Sect. 3). LinearShape and BalancedShape are predefined.
func NewITETree(name string, shape TreeShape) Encoding { return core.NewITETree(name, shape) }

// Predefined ITE-tree shapes.
var (
	LinearShape   = core.LinearShape
	BalancedShape = core.BalancedShape
)

// ParseStrategy parses "encoding" or "encoding/heuristic".
func ParseStrategy(spec string) (Strategy, error) { return core.ParseStrategy(spec) }

// NewCSP builds a k-coloring CSP over g with full domains.
func NewCSP(g *Graph, k int) *CSP { return core.NewCSP(g, k) }

// EncodeCSP translates a CSP to CNF under an encoding.
func EncodeCSP(csp *CSP, enc Encoding) *Encoded { return core.Encode(csp, enc) }

// EncodeCSPInto streams the CSP's clauses under an encoding into a
// ClauseSink — with SolverClauseSink the hot path skips the
// intermediate CNF copy entirely.
func EncodeCSPInto(csp *CSP, enc Encoding, sink ClauseSink) *StreamedEncoding {
	return core.EncodeInto(csp, enc, sink)
}

// EncodeIncrementalCSP encodes the CSP once at its full width with
// selector-guarded color bounds, so one solver serves every width in
// [lo, csp.K] via IncrementalEncoding.Assumptions.
func EncodeIncrementalCSP(csp *CSP, enc Encoding, lo int, sink ClauseSink) *IncrementalEncoding {
	return core.EncodeIncremental(csp, enc, lo, sink)
}

// NewSolver returns an empty incremental CDCL solver.
func NewSolver(opts SolverOptions) *Solver { return sat.New(opts) }

// SolverClauseSink adapts a Solver to the ClauseSink streaming
// interface.
func SolverClauseSink(s *Solver) ClauseSink { return sat.SolverSink{S: s} }

// LitFromDimacs converts a DIMACS literal (±variable index) to a
// solver literal, e.g. for SolveAssuming.
func LitFromDimacs(d int) Lit { return sat.LitFromDimacs(d) }

// MinWidth runs the incremental minimum-channel-width search on g: one
// encode at opts.Hi, one assumption probe per width on a single solver
// (see SearchOptions).
func MinWidth(ctx context.Context, g *Graph, opts SearchOptions) (*SearchResult, error) {
	return search.MinWidth(ctx, g, opts)
}

// RunMinWidthPortfolio races the incremental width search across
// strategies; the first member to complete (prove its minimum width
// optimal) wins and cancels the rest. Telemetry goes to m (may be nil).
func RunMinWidthPortfolio(ctx context.Context, g *Graph, opts SearchOptions, strategies []Strategy, m *Metrics) (WidthResult, []WidthResult, error) {
	return portfolio.RunMinWidth(ctx, g, opts, strategies, m)
}

// FindChi measures the chromatic number (exact minimum channel width)
// of a conflict graph with the incremental width search framed by the
// greedy-clique and DSATUR bounds, racing the strategies if more than
// one is given.
func FindChi(ctx context.Context, g *Graph, strategies []Strategy, probeTimeout time.Duration, m *Metrics) (ChiResult, error) {
	return mcnc.FindChi(ctx, g, strategies, probeTimeout, m)
}

// Generate builds a deterministic random placed netlist.
func Generate(name string, p GenParams) (*Netlist, error) { return fpga.Generate(name, p) }

// GenerateScaled instantiates interned switch-block templates across an
// R×C fabric and streams the resulting conflict graph straight into CSR
// storage — routing instances with 10⁵–10⁶ nets, generated in
// milliseconds, with a known minimum channel width at full utilization.
func GenerateScaled(p ScaleParams) (*Graph, ScaleStats, error) { return fpga.GenerateScaled(p) }

// ScaledFabric returns the canonical scale-study parameters for a scale
// factor (square fabric, side ∝ √factor, channel width 8).
func ScaledFabric(factor int) ScaleParams { return fpga.ScaledFabric(factor) }

// NewGraphBuilder returns a mutable graph builder with n vertices;
// Freeze() it into an immutable CSR Graph.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// GraphFromEdgeStream builds a CSR Graph in two passes over a
// deterministic edge stream, with no intermediate adjacency maps — the
// cheapest way to materialize a large generated graph.
func GraphFromEdgeStream(n int, stream func(emit func(u, v int))) *Graph {
	return graph.FromEdgeStream(n, stream)
}

// GraphFromWeightedEdgeStream is GraphFromEdgeStream for
// bandwidth-coloring instances: each emitted edge carries a distance
// d ≥ 1 (duplicates merge to the larger distance, and an all-1 stream
// normalizes to an unweighted graph).
func GraphFromWeightedEdgeStream(n int, stream func(emit func(u, v, d int))) *Graph {
	return graph.FromWeightedEdgeStream(n, stream)
}

// RouteGlobal computes a global routing with negotiated congestion.
// The boolean reports whether the occupancy target was met.
func RouteGlobal(nl *Netlist, opts RouteOptions) (*GlobalRouting, bool, error) {
	return fpga.RouteGlobal(nl, opts)
}

// AssignTracks turns a conflict-graph coloring into a verified
// detailed routing with w tracks.
func AssignTracks(gr *GlobalRouting, colors []int, w int) (*DetailedRouting, error) {
	return fpga.AssignTracks(gr, colors, w)
}

// Benchmarks returns the calibrated MCNC-style instances.
func Benchmarks() []Instance { return mcnc.Instances() }

// BenchmarkByName looks up one benchmark instance.
func BenchmarkByName(name string) (Instance, error) { return mcnc.ByName(name) }

// NewMetrics returns an empty observability registry to pass to the
// *Observed API variants and instrumented pipeline stages.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// SolveCNF runs the CDCL solver on a formula; stop (optional) cancels.
//
// Deprecated for new code: prefer SolveCNFContext, which accepts a
// context.Context instead of a raw channel.
func SolveCNF(c *CNF, opts SolverOptions, stop <-chan struct{}) SolveResult {
	return sat.SolveCNF(c, opts, stop)
}

// SolveCNFContext is SolveCNF with context-based cancellation: the
// solve returns Unknown promptly once ctx is cancelled or its deadline
// passes.
func SolveCNFContext(ctx context.Context, c *CNF, opts SolverOptions) SolveResult {
	return sat.SolveCNFContext(ctx, c, opts)
}

// RunPortfolio solves the k-coloring of g with all strategies in
// parallel, first definite answer wins (Sect. 6).
func RunPortfolio(g *Graph, k int, strategies []Strategy, timeout time.Duration) (PortfolioResult, []PortfolioResult, error) {
	return portfolio.Run(g, k, strategies, timeout)
}

// RunPortfolioContext is RunPortfolio with caller-controlled
// cancellation (use context.WithTimeout for the classic timeout).
func RunPortfolioContext(ctx context.Context, g *Graph, k int, strategies []Strategy) (PortfolioResult, []PortfolioResult, error) {
	return portfolio.RunContext(ctx, g, k, strategies)
}

// RunPortfolioObserved is RunPortfolioContext with per-strategy
// telemetry (encode/solve timers, CNF sizes, wins, winner margin)
// recorded into m, which may be nil.
func RunPortfolioObserved(ctx context.Context, g *Graph, k int, strategies []Strategy, m *Metrics) (PortfolioResult, []PortfolioResult, error) {
	return portfolio.RunObserved(ctx, g, k, strategies, m)
}

// RunPortfolioHardened is RunPortfolioObserved with the full
// supervision layer: panic-isolated lanes, optional answer
// self-checking ("paranoid mode"), per-lane watchdog timeouts and
// budgeted retries, all configured through opts.
func RunPortfolioHardened(ctx context.Context, g *Graph, k int, strategies []Strategy, opts PortfolioOptions) (PortfolioResult, []PortfolioResult, error) {
	return portfolio.RunHardened(ctx, g, k, strategies, opts)
}

// PaperPortfolio3 returns the paper's three-strategy portfolio.
func PaperPortfolio3() ([]Strategy, error) { return portfolio.PaperPortfolio3() }

// BandwidthPortfolio returns the lane set for bandwidth-coloring
// instances (order, distance-aware direct and log; no symmetry
// breaking, which is unsound under distance constraints).
func BandwidthPortfolio() ([]Strategy, error) { return portfolio.BandwidthPortfolio() }

// PaperPortfolio2 returns the paper's two-strategy portfolio (the
// first two members of PaperPortfolio3).
func PaperPortfolio2() ([]Strategy, error) { return portfolio.PaperPortfolio2() }

// MustStrategies unwraps a (strategies, error) pair, panicking on
// error — for examples and tests with compile-time-constant specs.
func MustStrategies(ss []Strategy, err error) []Strategy { return portfolio.Must(ss, err) }

// ReplicateStrategies expands each strategy into n interleaved copies —
// the lane set for a clause-sharing portfolio, where same-strategy
// lanes diversify by seed and exchange learnt clauses.
func ReplicateStrategies(ss []Strategy, n int) []Strategy { return portfolio.Replicate(ss, n) }

// VerifyColoring checks that colors is a proper k-coloring of g.
func VerifyColoring(g *Graph, colors []int, k int) error {
	return coloring.Verify(g, colors, k)
}

// DSATUR is the saturation-degree heuristic baseline: it returns a
// proper coloring and the number of colors used (an upper bound on the
// minimum channel width, with no optimality guarantee).
func DSATUR(g *Graph) ([]int, int) { return coloring.DSATUR(g) }

// WriteGraphDIMACS writes g in the DIMACS edge (.col) format.
func WriteGraphDIMACS(w io.Writer, g *Graph, comments ...string) error {
	return graph.WriteDIMACS(w, g, comments...)
}

// ParseGraphDIMACS reads a DIMACS edge-format graph.
func ParseGraphDIMACS(r io.Reader) (*Graph, error) { return graph.ParseDIMACS(r) }

// WriteCNFDIMACS writes a formula in DIMACS CNF format.
func WriteCNFDIMACS(w io.Writer, c *CNF) error { return sat.WriteDIMACS(w, c) }

// ParseCNFDIMACS reads a DIMACS CNF file.
func ParseCNFDIMACS(r io.Reader) (*CNF, error) { return sat.ParseDIMACS(r) }

// CheckDRAT verifies a DRAT unsatisfiability proof (produced via
// SolverOptions.ProofWriter) against the original formula, returning
// nil for a valid refutation — a machine-checkable unroutability
// certificate.
func CheckDRAT(c *CNF, proof io.Reader) error { return sat.CheckDRAT(c, proof) }

// SimplifiedCNF is the result of preprocessing a formula; see
// SimplifyCNF.
type SimplifiedCNF = sat.Simplified

// SimplifyCNF preprocesses a formula with unit propagation and
// pure-literal elimination; Extend turns models of the reduced formula
// back into models of the original.
func SimplifyCNF(c *CNF) *SimplifiedCNF { return sat.Simplify(c) }
