package fpgasat_test

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	fpgasat "fpgasat"
)

// TestPublicAPIEndToEnd drives the complete flow through the public
// facade only: generate, route, encode, solve, decode, verify, prove
// unroutability, and round-trip the DIMACS formats.
func TestPublicAPIEndToEnd(t *testing.T) {
	netlist, err := fpgasat.Generate("api", fpgasat.GenParams{
		Rows: 5, Cols: 5, NumNets: 20, MinPins: 2, MaxPins: 3, Locality: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	global, _, err := fpgasat.RouteGlobal(netlist, fpgasat.RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	conflict := global.ConflictGraph()

	// Heuristic upper bound, then SAT at that width.
	_, ub := fpgasat.DSATUR(conflict)
	strategy, err := fpgasat.ParseStrategy("ITE-linear-2+muldirect/s1")
	if err != nil {
		t.Fatal(err)
	}
	enc := strategy.EncodeGraph(conflict, ub)
	res := fpgasat.SolveCNFContext(context.Background(), enc.CNF, fpgasat.SolverOptions{})
	if res.Status != fpgasat.Sat {
		t.Fatalf("status %v at DSATUR bound", res.Status)
	}
	colors, err := enc.Decode(res.Model)
	if err != nil {
		t.Fatal(err)
	}
	if err := fpgasat.VerifyColoring(conflict, colors, ub); err != nil {
		t.Fatal(err)
	}
	if _, err := fpgasat.AssignTracks(global, colors, ub); err != nil {
		t.Fatal(err)
	}

	// DIMACS round trips.
	var buf bytes.Buffer
	if err := fpgasat.WriteGraphDIMACS(&buf, conflict, "api test"); err != nil {
		t.Fatal(err)
	}
	g2, err := fpgasat.ParseGraphDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != conflict.N() || g2.M() != conflict.M() {
		t.Fatal("graph DIMACS roundtrip mismatch")
	}
	buf.Reset()
	if err := fpgasat.WriteCNFDIMACS(&buf, enc.CNF); err != nil {
		t.Fatal(err)
	}
	if _, err := fpgasat.ParseCNFDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIEncodings(t *testing.T) {
	if len(fpgasat.PaperEncodingNames) != 15 {
		t.Fatalf("%d paper encodings", len(fpgasat.PaperEncodingNames))
	}
	for _, name := range fpgasat.PaperEncodingNames {
		if _, err := fpgasat.EncodingByName(name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fpgasat.NewHierarchical([]fpgasat.Level{{Kind: fpgasat.KindITELog, Vars: 2}},
		fpgasat.KindMuldirect); err != nil {
		t.Fatal(err)
	}
	tree := fpgasat.NewITETree("bal", fpgasat.BalancedShape)
	if !strings.Contains(tree.Name(), "bal") {
		t.Fatal("tree name lost")
	}
	if fpgasat.NewSimple(fpgasat.KindLog).Name() != "log" {
		t.Fatal("simple name wrong")
	}
}

func TestPublicAPIBenchmarks(t *testing.T) {
	if len(fpgasat.Benchmarks()) < 10 {
		t.Fatal("too few benchmarks")
	}
	in, err := fpgasat.BenchmarkByName("term1")
	if err != nil {
		t.Fatal(err)
	}
	_, g, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	winner, _, err := fpgasat.RunPortfolio(g, in.RoutableW, fpgasat.MustStrategies(fpgasat.PaperPortfolio3()), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if winner.Status != fpgasat.Sat {
		t.Fatalf("portfolio status %v", winner.Status)
	}
}

func TestPublicAPICSP(t *testing.T) {
	g, err := fpgasat.ParseGraphDIMACS(strings.NewReader(
		"p edge 3 3\ne 1 2\ne 2 3\ne 1 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	csp := fpgasat.NewCSP(g, 2)
	enc := fpgasat.EncodeCSP(csp, fpgasat.NewSimple(fpgasat.KindMuldirect))
	res := fpgasat.SolveCNFContext(context.Background(), enc.CNF, fpgasat.SolverOptions{})
	if res.Status != fpgasat.Unsat {
		t.Fatalf("triangle with 2 colors: %v", res.Status)
	}
}

// TestPublicAPIObservability drives the context-based API variants and
// the metrics registry through the facade: a portfolio run with
// telemetry, a context solve with a Progress hook, and snapshot
// serialization.
func TestPublicAPIObservability(t *testing.T) {
	netlist, err := fpgasat.Generate("obs", fpgasat.GenParams{
		Rows: 5, Cols: 5, NumNets: 20, MinPins: 2, MaxPins: 3, Locality: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	global, _, err := fpgasat.RouteGlobal(netlist, fpgasat.RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	conflict := global.ConflictGraph()
	_, ub := fpgasat.DSATUR(conflict)

	metrics := fpgasat.NewMetrics()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	winner, all, err := fpgasat.RunPortfolioObserved(ctx, conflict, ub, fpgasat.MustStrategies(fpgasat.PaperPortfolio3()), metrics)
	if err != nil {
		t.Fatal(err)
	}
	if winner.Status != fpgasat.Sat {
		t.Fatalf("status %v at DSATUR bound", winner.Status)
	}
	if err := fpgasat.VerifyColoring(conflict, winner.Colors, ub); err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("expected 3 per-strategy results, got %d", len(all))
	}
	snap := metrics.Snapshot()
	if len(snap.Timers) == 0 {
		t.Fatal("portfolio run recorded no timers")
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "portfolio.solve.") {
		t.Fatalf("metrics JSON missing per-strategy solve timer:\n%s", buf.String())
	}

	// Context solve with a Progress snapshot hook.
	strategy, err := fpgasat.ParseStrategy("ITE-linear-2+muldirect/s1")
	if err != nil {
		t.Fatal(err)
	}
	enc := strategy.EncodeGraph(conflict, ub)
	var progressCalls int
	res := fpgasat.SolveCNFContext(ctx, enc.CNF, fpgasat.SolverOptions{
		Progress: func(st fpgasat.SolverStats) { progressCalls++ },
	})
	if res.Status != fpgasat.Sat {
		t.Fatalf("context solve status %v", res.Status)
	}
	_ = progressCalls // tiny instances may finish before the first poll interval
}

// TestPublicAPIBandwidth drives the bandwidth-coloring flow through
// the facade: a weighted graph built from a distance edge stream,
// solved by the bandwidth portfolio through a Session, minimized with
// the incremental width search under the order encoding, and
// round-tripped through weighted DIMACS.
func TestPublicAPIBandwidth(t *testing.T) {
	// A distance-2 5-cycle: chromatic number 3, bandwidth minimum 5
	// (e.g. colors 0 2 0 2 4).
	g := fpgasat.GraphFromWeightedEdgeStream(5, func(emit func(u, v, d int)) {
		for i := 0; i < 5; i++ {
			emit(i, (i+1)%5, 2)
		}
	})
	if !g.Weighted() || g.MaxEdgeWeight() != 2 {
		t.Fatalf("weighted stream produced Weighted()=%v max=%d", g.Weighted(), g.MaxEdgeWeight())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	session := fpgasat.NewSession(nil)
	lanes := fpgasat.MustStrategies(fpgasat.BandwidthPortfolio())
	winner, _, err := session.Portfolio(ctx, g, 5, lanes)
	if err != nil {
		t.Fatal(err)
	}
	if winner.Status != fpgasat.Sat {
		t.Fatalf("bandwidth portfolio at width 5: %v", winner.Status)
	}
	if err := fpgasat.VerifyColoring(g, winner.Colors, 5); err != nil {
		t.Fatal(err)
	}

	order, err := fpgasat.ParseStrategy("ladder/-")
	if err != nil {
		t.Fatal(err)
	}
	res, err := session.MinWidth(ctx, g, fpgasat.SearchOptions{Strategy: order, Hi: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.MinWidth != 5 || !res.ProvedOptimal {
		t.Fatalf("MinWidth=%d proved=%v, want 5/true", res.MinWidth, res.ProvedOptimal)
	}

	var buf bytes.Buffer
	if err := fpgasat.WriteGraphDIMACS(&buf, g, "bandwidth api test"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "e 1 2 2") {
		t.Fatalf("weighted DIMACS lacks distances:\n%s", buf.String())
	}
	g2, err := fpgasat.ParseGraphDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Weighted() || g2.MaxEdgeWeight() != 2 || g2.M() != g.M() {
		t.Fatal("weighted DIMACS roundtrip mismatch")
	}
}
