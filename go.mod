module fpgasat

go 1.22
