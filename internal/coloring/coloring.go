// Package coloring provides graph-coloring baselines and verification:
// greedy and DSATUR heuristics (upper bounds), a clique heuristic
// (lower bound), and an exact branch-and-bound search. The SAT-based
// flow in package core is the paper's contribution; these baselines
// calibrate benchmark instances (find the exact chromatic number) and
// cross-check SAT answers in tests.
package coloring

import (
	"fmt"
	"sort"

	"fpgasat/internal/graph"
)

// Verify checks that colors is a proper coloring of g using at most k
// colors (values 0..k-1, one per vertex). On weighted graphs the check
// is the bandwidth-coloring condition |colors[u]-colors[v]| >= d for
// every edge distance d. A nil error means proper.
func Verify(g *graph.Graph, colors []int, k int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("coloring: %d colors for %d vertices", len(colors), g.N())
	}
	for v, c := range colors {
		if c < 0 || c >= k {
			return fmt.Errorf("coloring: vertex %d has color %d outside [0,%d)", v, c, k)
		}
	}
	var bad error
	g.ForEachWeightedEdge(func(u, v, d int) {
		if bad != nil {
			return
		}
		diff := colors[u] - colors[v]
		if diff < 0 {
			diff = -diff
		}
		if diff >= d {
			return
		}
		if d == 1 {
			bad = fmt.Errorf("coloring: edge {%d,%d} monochromatic (color %d)",
				u, v, colors[u])
		} else {
			bad = fmt.Errorf("coloring: edge {%d,%d} colors %d,%d closer than distance %d",
				u, v, colors[u], colors[v], d)
		}
	})
	return bad
}

// Greedy colors vertices in the given order (or 0..n-1 if order is
// nil) with the smallest available color, returning the coloring and
// the number of colors used.
func Greedy(g *graph.Graph, order []int) ([]int, int) {
	n := g.N()
	if order == nil {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	}
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	used := 0
	forbidden := make([]int, n+1) // stamp per color
	for step, v := range order {
		stamp := step + 1
		for _, u := range g.Neighbors(v) {
			if c := colors[u]; c >= 0 {
				forbidden[c] = stamp
			}
		}
		c := 0
		for forbidden[c] == stamp {
			c++
		}
		colors[v] = c
		if c+1 > used {
			used = c + 1
		}
	}
	return colors, used
}

// DSATUR colors the graph with the saturation-degree heuristic and
// returns the coloring and number of colors used. It is a strong upper
// bound on the chromatic number.
func DSATUR(g *graph.Graph) ([]int, int) {
	n := g.N()
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	satur := make([]map[int]struct{}, n)
	for i := range satur {
		satur[i] = make(map[int]struct{})
	}
	used := 0
	for step := 0; step < n; step++ {
		// Pick the uncolored vertex with max saturation, tie-break on
		// degree then index (deterministic).
		best := -1
		for v := 0; v < n; v++ {
			if colors[v] >= 0 {
				continue
			}
			if best < 0 {
				best = v
				continue
			}
			sv, sb := len(satur[v]), len(satur[best])
			if sv > sb || (sv == sb && g.Degree(v) > g.Degree(best)) {
				best = v
			}
		}
		c := 0
		for {
			if _, bad := satur[best][c]; !bad {
				break
			}
			c++
		}
		colors[best] = c
		if c+1 > used {
			used = c + 1
		}
		for _, u := range g.Neighbors(best) {
			if colors[u] < 0 {
				satur[u][c] = struct{}{}
			}
		}
	}
	return colors, used
}

// GreedyClique grows a clique greedily from each of the highest-degree
// vertices and returns the best clique found — a lower bound on the
// chromatic number.
func GreedyClique(g *graph.Graph) []int {
	n := g.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return g.Degree(order[i]) > g.Degree(order[j])
	})
	var best []int
	tries := 12
	if tries > n {
		tries = n
	}
	for t := 0; t < tries; t++ {
		clique := []int{order[t]}
		for _, v := range order {
			if v == order[t] {
				continue
			}
			ok := true
			for _, u := range clique {
				if !g.HasEdge(u, v) {
					ok = false
					break
				}
			}
			if ok {
				clique = append(clique, v)
			}
		}
		if len(clique) > len(best) {
			best = clique
		}
	}
	return best
}
