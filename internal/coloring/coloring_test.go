package coloring

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpgasat/internal/graph"
)

func TestVerify(t *testing.T) {
	g := graph.Cycle(4)
	if err := Verify(g, []int{0, 1, 0, 1}, 2); err != nil {
		t.Fatalf("proper coloring rejected: %v", err)
	}
	if err := Verify(g, []int{0, 0, 1, 1}, 2); err == nil {
		t.Fatal("improper coloring accepted")
	}
	if err := Verify(g, []int{0, 1, 0, 2}, 2); err == nil {
		t.Fatal("out-of-range color accepted")
	}
	if err := Verify(g, []int{0, 1}, 2); err == nil {
		t.Fatal("wrong length accepted")
	}
}

func TestGreedyProper(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		g := graph.Random(rng, 1+rng.Intn(40), rng.Float64())
		colors, k := Greedy(g, nil)
		if err := Verify(g, colors, k); err != nil {
			t.Fatalf("greedy produced improper coloring: %v", err)
		}
		if k > g.MaxDegree()+1 {
			t.Fatalf("greedy used %d colors, max degree %d", k, g.MaxDegree())
		}
	}
}

func TestDSATURProper(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		g := graph.Random(rng, 1+rng.Intn(40), rng.Float64())
		colors, k := DSATUR(g)
		if err := Verify(g, colors, k); err != nil {
			t.Fatalf("DSATUR improper: %v", err)
		}
	}
}

func TestDSATURKnownGraphs(t *testing.T) {
	if _, k := DSATUR(graph.Complete(5)); k != 5 {
		t.Fatalf("DSATUR(K5) = %d", k)
	}
	if _, k := DSATUR(graph.Cycle(6)); k != 2 {
		t.Fatalf("DSATUR(C6) = %d", k)
	}
	if _, k := DSATUR(graph.Cycle(7)); k != 3 {
		t.Fatalf("DSATUR(C7) = %d", k)
	}
}

func TestGreedyCliqueIsClique(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw%30) + 2
		g := graph.Random(rng, n, float64(pRaw)/255)
		cl := GreedyClique(g)
		for i := 0; i < len(cl); i++ {
			for j := i + 1; j < len(cl); j++ {
				if !g.HasEdge(cl[i], cl[j]) {
					return false
				}
			}
		}
		return len(cl) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKColorableKnown(t *testing.T) {
	k5 := graph.Complete(5)
	if _, sat, done := KColorable(k5, 4, 0); sat || !done {
		t.Fatal("K5 should not be 4-colorable")
	}
	if cols, sat, done := KColorable(k5, 5, 0); !sat || !done {
		t.Fatal("K5 should be 5-colorable")
	} else if err := Verify(k5, cols, 5); err != nil {
		t.Fatal(err)
	}
	odd := graph.Cycle(9)
	if _, sat, _ := KColorable(odd, 2, 0); sat {
		t.Fatal("odd cycle 2-colorable?")
	}
	if _, sat, _ := KColorable(odd, 3, 0); !sat {
		t.Fatal("odd cycle not 3-colorable?")
	}
}

func TestKColorableEdgeCases(t *testing.T) {
	empty := graph.New(0)
	if _, sat, _ := KColorable(empty, 0, 0); !sat {
		t.Fatal("empty graph should be 0-colorable")
	}
	one := graph.New(3)
	if _, sat, _ := KColorable(one, 0, 0); sat {
		t.Fatal("nonempty graph 0-colorable?")
	}
	if cols, sat, _ := KColorable(one, 1, 0); !sat || cols[0] != 0 {
		t.Fatal("isolated vertices should be 1-colorable")
	}
	if _, sat, _ := KColorable(one, -1, 0); sat {
		t.Fatal("negative k accepted")
	}
}

func TestKColorableBudget(t *testing.T) {
	g := graph.Random(rand.New(rand.NewSource(8)), 40, 0.5)
	_, _, done := KColorable(g, 5, 3)
	if done {
		t.Skip("instance solved within 3 nodes; budget path not exercised")
	}
}

func TestChromaticNumberKnown(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{graph.Complete(6), 6},
		{graph.Cycle(8), 2},
		{graph.Cycle(9), 3},
		{graph.New(5), 1},
		{graph.New(0), 0},
	}
	for i, c := range cases {
		got, ok := ChromaticNumber(c.g, 0)
		if !ok || got != c.want {
			t.Errorf("case %d: chi = %d (ok=%v), want %d", i, got, ok, c.want)
		}
	}
}

func TestChromaticNumberAgainstBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		g := graph.Random(rng, 4+rng.Intn(16), rng.Float64())
		chi, ok := ChromaticNumber(g, 0)
		if !ok {
			t.Fatal("unbounded search exhausted")
		}
		lb := len(GreedyClique(g))
		_, ub := DSATUR(g)
		if chi < lb || chi > ub {
			t.Fatalf("chi=%d outside [%d,%d]", chi, lb, ub)
		}
		cols, sat, _ := KColorable(g, chi, 0)
		if !sat {
			t.Fatalf("graph not colorable with its chromatic number %d", chi)
		}
		if err := Verify(g, cols, chi); err != nil {
			t.Fatal(err)
		}
		if chi > 1 {
			if _, sat, _ := KColorable(g, chi-1, 0); sat {
				t.Fatalf("graph colorable with chi-1 = %d", chi-1)
			}
		}
	}
}

func TestGreedyCustomOrder(t *testing.T) {
	// Crown-graph-like example where natural order wastes colors but a
	// good order doesn't: star K1,3 colored leaf-first still needs 2.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	g := b.Freeze()
	colors, k := Greedy(g, []int{1, 2, 3, 0})
	if err := Verify(g, colors, k); err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Fatalf("star greedy used %d colors", k)
	}
	// Order must change results deterministically: center first also 2.
	_, k2 := Greedy(g, []int{0, 1, 2, 3})
	if k2 != 2 {
		t.Fatalf("k2 = %d", k2)
	}
}

func TestGreedyOrderIsPermutationSensitive(t *testing.T) {
	// The classic bipartite trap: vertices 0-3, edges 0-3, 1-2 plus
	// cross edges make interleaved order use 3 colors while sides-first
	// uses 2.
	b := graph.NewBuilder(6)
	// bipartite sides {0,2,4} and {1,3,5} minus a perfect matching
	for i := 0; i < 6; i += 2 {
		for j := 1; j < 6; j += 2 {
			if j != i+1 {
				b.AddEdge(i, j)
			}
		}
	}
	g := b.Freeze()
	_, kGood := Greedy(g, []int{0, 2, 4, 1, 3, 5})
	_, kBad := Greedy(g, []int{0, 1, 2, 3, 4, 5})
	if kGood != 2 {
		t.Fatalf("sides-first used %d colors", kGood)
	}
	if kBad <= kGood {
		t.Skipf("interleaved order happened to be good (k=%d)", kBad)
	}
}
