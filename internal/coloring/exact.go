package coloring

import "fpgasat/internal/graph"

// KColorable decides by exhaustive branch-and-bound whether g admits a
// proper coloring with k colors, returning the coloring when it does.
// Vertices are branched in DSATUR order with symmetry breaking (a new
// color may only be opened if it is the lowest unused one). maxNodes
// bounds the search (0 = unlimited); the third return value is false if
// the budget was exhausted before an answer was reached.
func KColorable(g *graph.Graph, k int, maxNodes int64) ([]int, bool, bool) {
	n := g.N()
	if k < 0 {
		return nil, false, true
	}
	if n == 0 {
		return []int{}, true, true
	}
	if k == 0 {
		return nil, false, true
	}
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	var nodes int64
	type state struct{ exhausted bool }
	st := &state{}

	// satCount[v][c] = number of colored neighbors of v with color c.
	satCount := make([][]int, n)
	for i := range satCount {
		satCount[i] = make([]int, k)
	}
	satDeg := make([]int, n) // number of distinct neighbor colors

	var assign func(v, c, delta int)
	assign = func(v, c, delta int) {
		for _, u := range g.Neighbors(v) {
			if colors[u] >= 0 {
				continue
			}
			before := satCount[u][c] > 0
			satCount[u][c] += delta
			after := satCount[u][c] > 0
			if !before && after {
				satDeg[u]++
			} else if before && !after {
				satDeg[u]--
			}
		}
	}

	var solve func(colored, maxUsed int) bool
	solve = func(colored, maxUsed int) bool {
		if colored == n {
			return true
		}
		nodes++
		if maxNodes > 0 && nodes > maxNodes {
			st.exhausted = true
			return false
		}
		// DSATUR vertex selection.
		best := -1
		for v := 0; v < n; v++ {
			if colors[v] >= 0 {
				continue
			}
			if best < 0 || satDeg[v] > satDeg[best] ||
				(satDeg[v] == satDeg[best] && g.Degree(v) > g.Degree(best)) {
				best = v
			}
		}
		// Try existing colors plus at most one fresh color.
		limit := maxUsed + 1
		if limit > k {
			limit = k
		}
		for c := 0; c < limit; c++ {
			if satCount[best][c] > 0 {
				continue
			}
			colors[best] = c
			assign(best, c, 1)
			nextMax := maxUsed
			if c == maxUsed {
				nextMax++
			}
			if solve(colored+1, nextMax) {
				return true
			}
			assign(best, c, -1)
			colors[best] = -1
			if st.exhausted {
				return false
			}
		}
		return false
	}

	if solve(0, 0) {
		return colors, true, true
	}
	if st.exhausted {
		return nil, false, false
	}
	return nil, false, true
}

// ChromaticNumber computes χ(g) exactly by binary refinement between
// the clique lower bound and the DSATUR upper bound. maxNodes bounds
// each k-colorability search; ok is false when a budget was exhausted
// (the returned value is then the best-known upper bound).
func ChromaticNumber(g *graph.Graph, maxNodes int64) (chi int, ok bool) {
	if g.N() == 0 {
		return 0, true
	}
	_, ub := DSATUR(g)
	lb := len(GreedyClique(g))
	if lb < 1 {
		lb = 1
	}
	for k := ub - 1; k >= lb; k-- {
		_, sat, done := KColorable(g, k, maxNodes)
		if !done {
			return k + 1, false
		}
		if !sat {
			return k + 1, true
		}
	}
	return lb, true
}
