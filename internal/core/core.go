// Package core implements the paper's primary contribution: a family
// of encodings that translate graph-coloring constraint-satisfaction
// problems (CSPs) — and hence FPGA detailed routing problems — into
// equivalent Boolean satisfiability problems.
//
// Each CSP variable (a vertex of the conflict graph, i.e. a 2-pin net)
// ranges over a finite domain of colors (routing tracks). An encoding
// assigns every domain value an "indexing Boolean pattern": a
// conjunction (Cube) of literals over the Boolean variables introduced
// for that CSP variable which is true exactly when (or, for multivalued
// encodings, only when) the value is selected. Disequality constraints
// between adjacent vertices then become conflict clauses — the negation
// of the two patterns for each common value — and each encoding
// contributes its own structural clauses (at-least-one, at-most-one,
// excluded-illegal-values) as described in Table 1 of the paper.
//
// The package provides the 2 previously used encodings (log,
// muldirect), the direct encoding they derive from, the ITE-tree
// encodings of Sect. 3 (ITE-linear, ITE-log and arbitrary tree
// shapes), and the hierarchical composition of Sect. 4 that builds the
// remaining encodings such as ITE-linear-2+muldirect or direct-3+direct.
package core

import (
	"fmt"

	"fpgasat/internal/graph"
)

// Cube is an indexing Boolean pattern: a conjunction of literals in
// DIMACS convention (positive int = variable true, negative =
// variable false). The empty cube is the constant true and is used for
// CSP variables whose domain was restricted to a single value.
type Cube []int

// Negate returns the clause ¬cube as a fresh literal slice (De Morgan).
func (c Cube) Negate() []int {
	return c.AppendNegated(make([]int, 0, len(c)))
}

// AppendNegated appends the clause ¬cube to dst and returns the
// extended slice — the allocation-free form of Negate used by emitters
// that stream clauses from a reused scratch buffer (see ClauseSink).
func (c Cube) AppendNegated(dst []int) []int {
	for _, l := range c {
		dst = append(dst, -l)
	}
	return dst
}

// Eval reports whether the cube holds under the model (model[v-1] is
// the value of DIMACS variable v; variables beyond the model are
// false).
func (c Cube) Eval(model []bool) bool {
	for _, l := range c {
		v := abs(l)
		val := v-1 < len(model) && model[v-1]
		if (l > 0) != val {
			return false
		}
	}
	return true
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// CSP is a graph-coloring constraint-satisfaction problem: color the
// vertices of G with colors drawn from per-vertex domains
// {0,...,Domain[v]-1} so that adjacent vertices differ. K is the
// number of colors (tracks); Domain[v] <= K always, and symmetry
// breaking shrinks the domains of selected vertices.
//
// When G carries per-edge distance weights (graph.Weighted), the
// constraint generalizes to bandwidth coloring: adjacent vertices must
// satisfy |color(u)-color(v)| >= Dist(u,v). Unweighted graphs have
// Dist ≡ 1, which is exactly the classic disequality CSP — every
// encoding emits a byte-identical clause stream for that case.
type CSP struct {
	G      *graph.Graph
	K      int
	Domain []int
}

// NewCSP builds a CSP giving every vertex the full domain of k colors.
// k must be at least 1 when the graph has vertices.
func NewCSP(g *graph.Graph, k int) *CSP {
	if k < 0 {
		panic("core: negative color count")
	}
	dom := make([]int, g.N())
	for i := range dom {
		dom[i] = k
	}
	return &CSP{G: g, K: k, Domain: dom}
}

// RestrictDomain shrinks vertex v's domain to {0,...,size-1}. size must
// be in [1, K].
func (c *CSP) RestrictDomain(v, size int) {
	if size < 1 || size > c.K {
		panic(fmt.Sprintf("core: domain size %d outside [1,%d]", size, c.K))
	}
	c.Domain[v] = size
}

// ApplySequence applies a symmetry-breaking vertex sequence: the vertex
// at 0-based position i is restricted to colors {0,...,i}, i.e. the
// paper's "the i-th of them (1-based) has a color of less than i".
func (c *CSP) ApplySequence(seq []int) {
	for i, v := range seq {
		size := i + 1
		if size < c.Domain[v] {
			c.RestrictDomain(v, size)
		}
	}
}

// Dist returns the distance constraint of edge {u,v}: colors must
// satisfy |color(u)-color(v)| >= Dist(u,v). It is 1 for every edge of
// an unweighted graph and 0 for non-edges.
func (c *CSP) Dist(u, v int) int { return c.G.EdgeWeight(u, v) }

// Verify reports whether colors is a solution of the CSP (within every
// domain, and every edge's distance constraint satisfied; for
// unweighted graphs that is the classic properness check).
func (c *CSP) Verify(colors []int) error {
	if len(colors) != c.G.N() {
		return fmt.Errorf("core: %d colors for %d vertices", len(colors), c.G.N())
	}
	for v, col := range colors {
		if col < 0 || col >= c.Domain[v] {
			return fmt.Errorf("core: vertex %d color %d outside domain [0,%d)", v, col, c.Domain[v])
		}
	}
	var bad error
	c.G.ForEachWeightedEdge(func(u, v, d int) {
		if bad != nil {
			return
		}
		diff := colors[u] - colors[v]
		if diff < 0 {
			diff = -diff
		}
		if diff >= d {
			return
		}
		if d == 1 {
			bad = fmt.Errorf("core: edge {%d,%d} monochromatic", u, v)
		} else {
			bad = fmt.Errorf("core: edge {%d,%d} colors %d,%d closer than distance %d",
				u, v, colors[u], colors[v], d)
		}
	})
	return bad
}

// alloc hands out fresh DIMACS variable indices (1-based). It also
// carries the scratch literal buffer emitters assemble clauses in
// before streaming them into a ClauseSink (which must copy; see the
// sink contract).
type alloc struct {
	next int
	buf  []int
}

func newAlloc() *alloc { return &alloc{next: 1} }

// block reserves n consecutive variables and returns their indices.
func (a *alloc) block(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = a.next
		a.next++
	}
	return out
}

func (a *alloc) count() int { return a.next - 1 }
