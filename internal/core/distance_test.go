package core

import (
	"context"
	"testing"

	"fpgasat/internal/graph"
	"fpgasat/internal/sat"
)

// weightedTestGraphs builds the small bandwidth-coloring instances the
// brute-force cross-checks run on: every shape exercises a different
// emission path (mixed distances, singleton windows clipped at domain
// boundaries, distance larger than the domain, merged parallel edges).
func weightedTestGraphs() map[string]*graph.Graph {
	out := map[string]*graph.Graph{}

	tri := graph.NewBuilder(3)
	tri.AddWeightedEdge(0, 1, 2)
	tri.AddWeightedEdge(1, 2, 2)
	tri.AddWeightedEdge(0, 2, 1)
	out["triangle-d2"] = tri.Freeze()

	path := graph.NewBuilder(5)
	path.AddWeightedEdge(0, 1, 3)
	path.AddWeightedEdge(1, 2, 1)
	path.AddWeightedEdge(2, 3, 2)
	path.AddWeightedEdge(3, 4, 4)
	out["path-mixed"] = path.Freeze()

	star := graph.NewBuilder(5)
	for leaf := 1; leaf < 5; leaf++ {
		star.AddWeightedEdge(0, leaf, leaf)
	}
	out["star-1234"] = star.Freeze()

	// Parallel edges merge keeping the larger distance.
	par := graph.NewBuilder(4)
	par.AddWeightedEdge(0, 1, 1)
	par.AddWeightedEdge(1, 0, 3)
	par.AddWeightedEdge(1, 2, 2)
	par.AddWeightedEdge(2, 3, 2)
	par.AddWeightedEdge(0, 3, 2)
	out["cycle-merged"] = par.Freeze()

	// A clique with uniform spacing 2: min span is 2*(n-1)+1 colors.
	k4 := graph.FromWeightedEdgeStream(4, func(emit func(u, v, d int)) {
		for u := 0; u < 4; u++ {
			for v := u + 1; v < 4; v++ {
				emit(u, v, 2)
			}
		}
	})
	out["k4-d2"] = k4

	return out
}

// bruteForceSolvable enumerates every assignment of k colors and
// reports whether one satisfies all distance constraints.
func bruteForceSolvable(g *graph.Graph, k int) bool {
	n := g.N()
	colors := make([]int, n)
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == n {
			return true
		}
		for c := 0; c < k; c++ {
			ok := true
			for _, u := range g.Neighbors(v) {
				if int(u) < v {
					diff := colors[u] - c
					if diff < 0 {
						diff = -diff
					}
					if diff < g.EdgeWeight(v, int(u)) {
						ok = false
						break
					}
				}
			}
			if ok {
				colors[v] = c
				if rec(v + 1) {
					return true
				}
			}
		}
		return false
	}
	return rec(0)
}

var distanceTestEncodings = []string{"order", "ladder", "direct", "log", "muldirect", "ITE-log", "ITE-linear-2+muldirect"}

// TestDistanceEncodingsBruteForce cross-checks every distance-capable
// encoding against brute-force enumeration on small weighted graphs:
// the SAT formula must be satisfiable exactly when a bandwidth coloring
// exists, and every decoded solution must verify against the distance
// constraints.
func TestDistanceEncodingsBruteForce(t *testing.T) {
	for gname, g := range weightedTestGraphs() {
		if !g.Weighted() {
			t.Fatalf("%s: test graph lost its weights", gname)
		}
		for k := 1; k <= 8; k++ {
			want := bruteForceSolvable(g, k)
			for _, ename := range distanceTestEncodings {
				enc, err := ByName(ename)
				if err != nil {
					t.Fatal(err)
				}
				e := Encode(NewCSP(g, k), enc)
				st, colors, err := e.SolveContext(context.Background(), sat.Options{})
				if err != nil {
					t.Fatalf("%s/%s k=%d: %v", gname, ename, k, err)
				}
				if want && st != sat.Sat {
					t.Errorf("%s/%s k=%d: got %v, brute force says solvable", gname, ename, k, st)
				}
				if !want && st != sat.Unsat {
					t.Errorf("%s/%s k=%d: got %v, brute force says unsolvable", gname, ename, k, st)
				}
				if st == sat.Sat {
					if err := NewCSP(g, k).Verify(colors); err != nil {
						t.Errorf("%s/%s k=%d: decoded solution invalid: %v", gname, ename, k, err)
					}
				}
			}
		}
	}
}

// TestDistanceIncrementalMatchesFresh proves the selector staircase is
// sound on weighted CSPs: probing width w on one incremental encode
// must decide exactly like a fresh single-shot encode at width w, for
// the order encoding (native guards) and a cube encoding (generic
// guards).
func TestDistanceIncrementalMatchesFresh(t *testing.T) {
	for gname, g := range weightedTestGraphs() {
		for _, ename := range []string{"order", "direct", "log"} {
			enc, err := ByName(ename)
			if err != nil {
				t.Fatal(err)
			}
			hi := 9
			solver := sat.New(sat.Options{})
			inc := EncodeIncremental(NewCSP(g, hi), enc, 1, sat.SolverSink{S: solver})
			for w := 1; w <= hi; w++ {
				assumps, err := inc.Assumptions(w)
				if err != nil {
					t.Fatal(err)
				}
				st := solver.SolveAssumingContext(context.Background(), assumps...)
				fresh := Encode(NewCSP(g, w), enc)
				fst, _, err := fresh.SolveContext(context.Background(), sat.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if st != fst {
					t.Errorf("%s/%s w=%d: incremental %v, fresh %v", gname, ename, w, st, fst)
				}
				if st == sat.Sat {
					if _, err := inc.DecodeVerifyWidth(solver.Model(), w); err != nil {
						t.Errorf("%s/%s w=%d: %v", gname, ename, w, err)
					}
				}
			}
		}
	}
}

// TestOrderEncodingShape pins the order encoding's variable and clause
// scheme: d-1 order variables, d-2 ladder clauses, and the documented
// value cubes.
func TestOrderEncodingShape(t *testing.T) {
	enc := NewOrder()
	for d := 1; d <= 6; d++ {
		cubes, vars, err := DescribeVariable(enc, d)
		if err != nil {
			t.Fatal(err)
		}
		if wantVars := d - 1; d > 1 && vars != wantVars {
			t.Fatalf("d=%d: %d vars, want %d", d, vars, wantVars)
		}
		if len(cubes) != d {
			t.Fatalf("d=%d: %d cubes", d, len(cubes))
		}
		// Exactly one cube true under every ladder-respecting assignment.
		for val := 0; val < d; val++ {
			model := make([]bool, vars)
			for i := 0; i < val; i++ {
				model[i] = true // ge[1..val] true
			}
			selected := -1
			for c, cube := range cubes {
				if cube.Eval(model) {
					if selected >= 0 {
						t.Fatalf("d=%d val=%d: cubes %d and %d both true", d, val, selected, c)
					}
					selected = c
				}
			}
			if selected != val {
				t.Fatalf("d=%d: assignment for value %d decodes as %d", d, val, selected)
			}
		}
	}
	if enc.Multivalued() {
		t.Fatal("order encoding is not multivalued")
	}
	if enc.Name() != "order" {
		t.Fatalf("name %q", enc.Name())
	}
	ladder, err := ByName("ladder")
	if err != nil || ladder.Name() != "order" {
		t.Fatalf("ladder alias: %v %v", ladder, err)
	}
}

// TestWeightedStreamMatchesUnweightedOnD1 proves the distance-1 normal
// form end-to-end: building the same graph through the weighted
// constructors with all distances 1 yields an unweighted graph, so the
// encoder takes the exact pre-distance path (the one pinned by
// TestPinnedClauseStreams).
func TestWeightedStreamMatchesUnweightedOnD1(t *testing.T) {
	g := graph.FromWeightedEdgeStream(6, func(emit func(u, v, d int)) {
		emit(0, 1, 1)
		emit(1, 2, 1)
		emit(2, 3, 1)
		emit(3, 4, 1)
		emit(4, 5, 1)
		emit(0, 5, 1)
		emit(0, 3, 1)
	})
	if g.Weighted() {
		t.Fatal("all-1 weighted stream did not normalize to unweighted")
	}
	b := graph.NewBuilder(4)
	b.AddWeightedEdge(0, 1, 1)
	b.AddWeightedEdge(2, 3, 1)
	if b.Freeze().Weighted() {
		t.Fatal("all-1 builder did not normalize to unweighted")
	}
}

// TestOrderIntervalClauseCount pins the size advantage that motivates
// the order encoding: an edge with distance d costs min(du,dv) interval
// clauses regardless of d, where the pairwise form grows with d.
func TestOrderIntervalClauseCount(t *testing.T) {
	for _, d := range []int{2, 3, 5} {
		g := graph.NewBuilder(2)
		g.AddWeightedEdge(0, 1, d)
		gw := g.Freeze()
		k := 8
		order := Encode(NewCSP(gw, k), mustByName(t, "order"))
		direct := Encode(NewCSP(gw, k), mustByName(t, "direct"))
		if order.ConflictClauses != k {
			t.Errorf("d=%d: order emitted %d conflict clauses, want %d", d, order.ConflictClauses, k)
		}
		wantPairwise := 0
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				if diff := a - b; diff > -d && diff < d {
					wantPairwise++
				}
			}
		}
		if direct.ConflictClauses != wantPairwise {
			t.Errorf("d=%d: direct emitted %d conflict clauses, want %d", d, direct.ConflictClauses, wantPairwise)
		}
	}
}

func mustByName(t *testing.T, name string) Encoding {
	t.Helper()
	enc, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// TestWeightedSkipsSymmetry: clique-prefix domain restrictions are
// unsound under distance constraints, so BuildCSP must ignore the
// heuristic on weighted graphs.
func TestWeightedSkipsSymmetry(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(1, 2, 2)
	b.AddWeightedEdge(0, 2, 2)
	b.AddWeightedEdge(2, 3, 2)
	g := b.Freeze()
	csp := BuildCSP(g, 6, "s1")
	for v, d := range csp.Domain {
		if d != 6 {
			t.Fatalf("vertex %d domain restricted to %d on a weighted graph", v, d)
		}
	}
	// And the restriction really would be unsound: K4-free triangle with
	// spacing 2 needs colors {0,2,4} on the triangle in some order; a
	// prefix restriction to {0} / {0,1} / {0,1,2} cuts all solutions.
	csp.ApplySequence([]int{0, 1, 2})
	e := Encode(csp, mustByName(t, "order"))
	st, _, err := e.SolveContext(context.Background(), sat.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st != sat.Unsat {
		t.Fatalf("prefix-restricted triangle-d2 at k=6: %v, want Unsat (demonstrating unsoundness)", st)
	}
	if !bruteForceSolvable(g, 6) {
		t.Fatal("triangle-d2 should be solvable at k=6")
	}
}
