package core

import (
	"context"
	"fmt"

	"fpgasat/internal/sat"
)

// Streamed is the sink-independent record of one encoding run: the
// bookkeeping needed to decode a model back into a CSP solution, plus
// the clause census. It is produced by EncodeInto, which streams the
// clauses themselves into a ClauseSink — a *sat.CNF buffer (Encode) or
// an incremental solver (sat.SolverSink) — without materializing an
// intermediate clause list.
type Streamed struct {
	Encoding Encoding
	CSP      *CSP
	// Cubes[v][c] is the indexing Boolean pattern selecting color c for
	// vertex v, for c < CSP.Domain[v].
	Cubes [][]Cube
	// NumVars is the number of DIMACS variables the encoding allocated.
	NumVars int

	// Clause census, for the size ablation experiment.
	StructuralClauses int
	ConflictClauses   int
}

// Encoded is the SAT translation of a coloring CSP under a particular
// encoding, buffered as a CNF formula for DIMACS export and single-shot
// solving. It is Streamed plus the materialized clause list.
type Encoded struct {
	*Streamed
	CNF *sat.CNF
}

// EncodeInto translates the CSP to CNF under the given encoding,
// streaming every clause into sink: per-variable structural clauses
// first, then one conflict clause per edge per common domain value (the
// negated pair of indexing patterns). Clauses are assembled in a scratch
// buffer reused across calls — sinks copy what they keep, per the
// ClauseSink contract. This is the hot path of the pipeline — with a
// sat.SolverSink the clauses go straight into the solver's clause arena
// with no intermediate garbage.
func EncodeInto(csp *CSP, enc Encoding, sink ClauseSink) *Streamed {
	a := newAlloc()
	cs := &countingSink{sink: sink}
	cubes := make([][]Cube, csp.G.N())
	for v := 0; v < csp.G.N(); v++ {
		d := csp.Domain[v]
		vc := enc.emitVar(d, a, cs)
		if len(vc) != d {
			panic(fmt.Sprintf("core: encoding %s produced %d cubes for domain %d",
				enc.Name(), len(vc), d))
		}
		cubes[v] = vc
	}
	structural := cs.n
	if csp.G.Weighted() {
		emitDistanceConflicts(csp, enc, cubes, a, cs)
	} else {
		// Classic disequality: one conflict clause per edge per common
		// domain value. This loop is kept verbatim — unweighted CSPs must
		// emit byte-identical clause streams to the pre-distance encoder
		// (pinned by TestPinnedClauseStreams).
		csp.G.ForEachEdge(func(u, v int) {
			common := csp.Domain[u]
			if csp.Domain[v] < common {
				common = csp.Domain[v]
			}
			for c := 0; c < common; c++ {
				cl := cubes[u][c].AppendNegated(a.buf[:0])
				cl = cubes[v][c].AppendNegated(cl)
				a.buf = cl
				cs.AddClause(cl...)
			}
		})
	}
	return &Streamed{
		Encoding:          enc,
		CSP:               csp,
		Cubes:             cubes,
		NumVars:           a.count(),
		StructuralClauses: structural,
		ConflictClauses:   cs.n - structural,
	}
}

// Encode translates the CSP to CNF under the given encoding into a
// buffered formula (EncodeInto with a *sat.CNF sink).
func Encode(csp *CSP, enc Encoding) *Encoded {
	cnf := &sat.CNF{}
	st := EncodeInto(csp, enc, cnf)
	if cnf.NumVars < st.NumVars {
		cnf.NumVars = st.NumVars
	}
	cnf.Comments = append(cnf.Comments,
		fmt.Sprintf("encoding: %s", enc.Name()),
		fmt.Sprintf("graph: %d vertices, %d edges, %d colors", csp.G.N(), csp.G.M(), csp.K),
	)
	return &Encoded{Streamed: st, CNF: cnf}
}

// DescribeVariable returns the indexing Boolean patterns an encoding
// generates for a single CSP variable with domain {0..d-1}, together
// with the number of Boolean variables it allocates. It is used by the
// Figure 1 reproduction and by size ablations.
func DescribeVariable(enc Encoding, d int) ([]Cube, int, error) {
	if d < 1 {
		return nil, 0, fmt.Errorf("core: domain size %d", d)
	}
	a := newAlloc()
	cubes := enc.emitVar(d, a, discardSink{})
	return cubes, a.count(), nil
}

// Decode maps a satisfying assignment back to a CSP solution. For
// multivalued encodings several values may be selected; the smallest
// is taken, which the conflict clauses guarantee is safe.
func (e *Streamed) Decode(model []bool) ([]int, error) {
	colors := make([]int, e.CSP.G.N())
	for v := range colors {
		colors[v] = -1
		for c, cube := range e.Cubes[v] {
			if cube.Eval(model) {
				colors[v] = c
				break
			}
		}
		if colors[v] < 0 {
			return nil, fmt.Errorf("core: no domain value selected for vertex %d under %s",
				v, e.Encoding.Name())
		}
	}
	return colors, nil
}

// DecodeVerify decodes a satisfying assignment and verifies that the
// result is a proper coloring within every domain — the flow's
// end-to-end correctness guarantee.
func (e *Streamed) DecodeVerify(model []bool) ([]int, error) {
	colors, err := e.Decode(model)
	if err != nil {
		return nil, err
	}
	if err := e.CSP.Verify(colors); err != nil {
		return nil, fmt.Errorf("core: decoded solution invalid: %w", err)
	}
	return colors, nil
}

// Solve encodes nothing further: it runs the CDCL solver on the CNF
// and, when satisfiable, decodes and verifies the coloring. The stop
// channel (may be nil) cancels the solve when closed.
//
// Deprecated for new code: prefer SolveContext, which accepts a
// context.Context instead of a raw channel.
func (e *Encoded) Solve(opts sat.Options, stop <-chan struct{}) (sat.Status, []int, error) {
	return e.decodeResult(sat.SolveCNF(e.CNF, opts, stop))
}

// SolveContext is Solve with context-based cancellation: the solve
// returns Unknown promptly once ctx is cancelled or its deadline
// passes.
func (e *Encoded) SolveContext(ctx context.Context, opts sat.Options) (sat.Status, []int, error) {
	return e.decodeResult(sat.SolveCNFContext(ctx, e.CNF, opts))
}

// SolveReusing is SolveContext on a pooled solver (see sat.Pool); a
// nil pool falls back to a fresh solver.
func (e *Encoded) SolveReusing(ctx context.Context, pool *sat.Pool, opts sat.Options) (sat.Status, []int, error) {
	return e.decodeResult(sat.SolveCNFReusing(ctx, pool, e.CNF, opts))
}

func (e *Encoded) decodeResult(res sat.Result) (sat.Status, []int, error) {
	if res.Status != sat.Sat {
		return res.Status, nil, nil
	}
	colors, err := e.DecodeVerify(res.Model)
	if err != nil {
		return res.Status, nil, err
	}
	return sat.Sat, colors, nil
}
