package core

import (
	"context"
	"math/rand"
	"testing"

	"fpgasat/internal/coloring"
	"fpgasat/internal/graph"
	"fpgasat/internal/sat"
	"fpgasat/internal/symmetry"
)

// allTestEncodings returns the 14 paper encodings plus extra
// framework-only ones (deeper hierarchies, arbitrary trees) exercised
// by tests.
func allTestEncodings(t *testing.T) []Encoding {
	t.Helper()
	encs := PaperEncodings()
	extra := []Encoding{
		MustHierarchical([]Level{{KindLog, 1}}, KindDirect),
		MustHierarchical([]Level{{KindLog, 2}}, KindMuldirect),
		MustHierarchical([]Level{{KindITELog, 1}, {KindITELinear, 1}}, KindITELinear),
		MustHierarchical([]Level{{KindMuldirect, 2}, {KindMuldirect, 2}}, KindMuldirect),
		MustHierarchical([]Level{{KindDirect, 2}, {KindDirect, 2}}, KindDirect),
		MustHierarchical([]Level{{KindITELinear, 3}}, KindLog),
		NewITETree("tree-balanced", BalancedShape),
		NewITETree("tree-random", RandomShape(rand.New(rand.NewSource(17)))),
	}
	return append(encs, extra...)
}

// TestEncodingsAgreeWithExactColoring is the central correctness
// property of the package: for every encoding, on random graphs and
// color counts, SAT-solving the encoded CSP must agree with the exact
// branch-and-bound k-colorability answer, and decoded models must be
// proper colorings.
func TestEncodingsAgreeWithExactColoring(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	encs := allTestEncodings(t)
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(10)
		g := graph.Random(rng, n, 0.3+rng.Float64()*0.5)
		k := 1 + rng.Intn(5)
		_, want, done := coloring.KColorable(g, k, 0)
		if !done {
			t.Fatal("exact search exhausted")
		}
		for _, enc := range encs {
			csp := NewCSP(g, k)
			e := Encode(csp, enc)
			if err := e.CNF.Validate(); err != nil {
				t.Fatalf("%s: invalid CNF: %v", enc.Name(), err)
			}
			st, colors, err := e.SolveContext(context.Background(), sat.Options{})
			if err != nil {
				t.Fatalf("%s trial %d: %v", enc.Name(), trial, err)
			}
			if (st == sat.Sat) != want {
				t.Fatalf("%s trial %d (n=%d m=%d k=%d): SAT=%v, exact=%v",
					enc.Name(), trial, n, g.M(), k, st == sat.Sat, want)
			}
			if st == sat.Sat {
				if err := coloring.Verify(g, colors, k); err != nil {
					t.Fatalf("%s: decoded coloring invalid: %v", enc.Name(), err)
				}
			}
		}
	}
}

// TestSymmetryPreservesSatisfiability checks Van Gelder's soundness
// property: restricting the i-th sequence vertex to colors < i never
// changes satisfiability, for both heuristics and all encodings.
func TestSymmetryPreservesSatisfiability(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	encs := []Encoding{
		NewSimple(KindMuldirect),
		NewSimple(KindLog),
		NewSimple(KindITELinear),
		MustHierarchical([]Level{{KindITELinear, 2}}, KindMuldirect),
		MustHierarchical([]Level{{KindDirect, 3}}, KindDirect),
	}
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(8)
		g := graph.Random(rng, n, 0.4+rng.Float64()*0.4)
		k := 2 + rng.Intn(4)
		_, want, _ := coloring.KColorable(g, k, 0)
		for _, h := range []symmetry.Heuristic{symmetry.B1, symmetry.S1, symmetry.C1} {
			for _, enc := range encs {
				st, colors, err := Strategy{enc, h}.EncodeGraph(g, k).SolveContext(context.Background(), sat.Options{})
				if err != nil {
					t.Fatalf("%s/%s: %v", enc.Name(), h, err)
				}
				if (st == sat.Sat) != want {
					t.Fatalf("%s/%s trial %d: symmetry changed satisfiability (got %v, want sat=%v)",
						enc.Name(), h, trial, st, want)
				}
				if st == sat.Sat {
					if err := coloring.Verify(g, colors, k); err != nil {
						t.Fatalf("%s/%s: %v", enc.Name(), h, err)
					}
				}
			}
		}
	}
}

func TestEncodeAdjacentSingletonDomainsUnsat(t *testing.T) {
	// Two adjacent vertices both restricted to color 0: every encoding
	// must produce an unsatisfiable formula (the conflict clause is
	// empty).
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	g := b.Freeze()
	for _, enc := range allTestEncodings(t) {
		csp := NewCSP(g, 3)
		csp.RestrictDomain(0, 1)
		csp.RestrictDomain(1, 1)
		st, _, err := Encode(csp, enc).SolveContext(context.Background(), sat.Options{})
		if err != nil {
			t.Fatalf("%s: %v", enc.Name(), err)
		}
		if st != sat.Unsat {
			t.Errorf("%s: got %v, want Unsat", enc.Name(), st)
		}
	}
}

func TestEncodeTriangleNeedsThreeColors(t *testing.T) {
	tri := graph.Complete(3)
	for _, enc := range allTestEncodings(t) {
		if st, _, _ := Encode(NewCSP(tri, 2), enc).SolveContext(context.Background(), sat.Options{}); st != sat.Unsat {
			t.Errorf("%s: K3 with 2 colors gave %v", enc.Name(), st)
		}
		st, colors, err := Encode(NewCSP(tri, 3), enc).SolveContext(context.Background(), sat.Options{})
		if err != nil || st != sat.Sat {
			t.Errorf("%s: K3 with 3 colors gave %v, %v", enc.Name(), st, err)
			continue
		}
		if err := coloring.Verify(tri, colors, 3); err != nil {
			t.Errorf("%s: %v", enc.Name(), err)
		}
	}
}

func TestEncodeEmptyGraph(t *testing.T) {
	g := graph.New(0)
	for _, enc := range PaperEncodings() {
		st, colors, err := Encode(NewCSP(g, 4), enc).SolveContext(context.Background(), sat.Options{})
		if err != nil || st != sat.Sat || len(colors) != 0 {
			t.Errorf("%s: empty graph gave %v %v %v", enc.Name(), st, colors, err)
		}
	}
}

func TestEncodeIsolatedVertices(t *testing.T) {
	g := graph.New(5)
	for _, enc := range PaperEncodings() {
		st, colors, err := Encode(NewCSP(g, 2), enc).SolveContext(context.Background(), sat.Options{})
		if err != nil || st != sat.Sat {
			t.Fatalf("%s: %v %v", enc.Name(), st, err)
		}
		if len(colors) != 5 {
			t.Fatalf("%s: %d colors", enc.Name(), len(colors))
		}
	}
}

func TestEncodedClauseCensus(t *testing.T) {
	g := graph.Complete(3)
	e := Encode(NewCSP(g, 3), NewSimple(KindDirect))
	// direct: per vertex 1 ALO + 3 AMO = 4 structural; 3 edges × 3
	// colors = 9 conflicts.
	if e.StructuralClauses != 12 || e.ConflictClauses != 9 {
		t.Fatalf("census = %d structural, %d conflict; want 12, 9",
			e.StructuralClauses, e.ConflictClauses)
	}
	if e.CNF.NumClauses() != 21 {
		t.Fatalf("total clauses = %d, want 21", e.CNF.NumClauses())
	}
}

func TestDecodeRejectsBrokenModel(t *testing.T) {
	g := graph.New(1)
	e := Encode(NewCSP(g, 3), NewSimple(KindDirect))
	// All-false model selects no value for the vertex.
	if _, err := e.Decode(make([]bool, e.CNF.NumVars)); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestStrategyName(t *testing.T) {
	s, err := ParseStrategy("ITE-linear-2+muldirect/s1")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "ITE-linear-2+muldirect/s1" {
		t.Fatalf("Name = %q", s.Name())
	}
	s2, err := ParseStrategy("muldirect")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Name() != "muldirect/-" || s2.Symmetry != symmetry.None {
		t.Fatalf("Name = %q", s2.Name())
	}
	if _, err := ParseStrategy("muldirect/zz"); err == nil {
		t.Fatal("bad heuristic accepted")
	}
	if _, err := ParseStrategy("frob/s1"); err == nil {
		t.Fatal("bad encoding accepted")
	}
}

// TestVarCountsPerEncoding pins down the Boolean variable counts per
// CSP variable for a domain of 13 values, documenting the size
// trade-offs between encodings.
func TestVarCountsPerEncoding(t *testing.T) {
	want := map[string]int{
		"log":                    4,
		"direct":                 13,
		"muldirect":              13,
		"ITE-linear":             12,
		"ITE-log":                4,
		"ITE-log-1+ITE-linear":   1 + 6, // 2 groups of 7,6; shared chain needs 6
		"ITE-log-2+ITE-linear":   2 + 3, // 4 groups of 4,3,3,3; shared chain needs 3
		"ITE-linear-2+direct":    2 + 5, // 3 groups of 5,4,4
		"ITE-linear-2+muldirect": 2 + 5,
		"direct-3+direct":        3 + 5,
		"muldirect-3+muldirect":  3 + 5,
	}
	for name, wantVars := range want {
		enc, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a := newAlloc()
		encodeVar(enc, 13, a)
		if a.count() != wantVars {
			t.Errorf("%s: %d vars for domain 13, want %d", name, a.count(), wantVars)
		}
	}
}

func TestDescribeVariable(t *testing.T) {
	cubes, n, err := DescribeVariable(NewSimple(KindITELinear), 5)
	if err != nil || n != 4 || len(cubes) != 5 {
		t.Fatalf("%v %d %d", err, n, len(cubes))
	}
	if _, _, err := DescribeVariable(NewSimple(KindLog), 0); err == nil {
		t.Fatal("domain 0 accepted")
	}
}

func TestEncodeGraphAddsComments(t *testing.T) {
	g := graph.Cycle(4)
	s, err := ParseStrategy("muldirect/s1")
	if err != nil {
		t.Fatal(err)
	}
	e := s.EncodeGraph(g, 3)
	found := false
	for _, c := range e.CNF.Comments {
		if c == "symmetry: s1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("comments = %v", e.CNF.Comments)
	}
}

func TestRestrictDomainValidation(t *testing.T) {
	csp := NewCSP(graph.New(2), 3)
	for _, bad := range []int{0, 4, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RestrictDomain(%d) accepted", bad)
				}
			}()
			csp.RestrictDomain(0, bad)
		}()
	}
}

// TestEncodingSizeGoldens pins the exact formula sizes of every paper
// encoding on C5 with 4 colors, catching accidental changes to clause
// generation.
func TestEncodingSizeGoldens(t *testing.T) {
	golden := []struct {
		name                string
		vars, clauses, lits int
	}{
		{"log", 10, 20, 80},
		{"direct", 20, 55, 120},
		{"muldirect", 20, 25, 60},
		{"ITE-linear", 15, 20, 90},
		{"ITE-log", 10, 20, 80},
		{"ITE-log-1+ITE-linear", 10, 20, 80},
		{"ITE-log-2+ITE-linear", 10, 20, 80},
		{"ITE-log-2+direct", 10, 20, 80},
		{"ITE-log-2+muldirect", 10, 20, 80},
		{"ITE-linear-2+direct", 20, 40, 130},
		{"ITE-linear-2+muldirect", 20, 35, 120},
		{"direct-3+direct", 25, 60, 145},
		{"direct-3+muldirect", 25, 55, 135},
		{"muldirect-3+direct", 25, 45, 115},
		{"muldirect-3+muldirect", 25, 40, 105},
	}
	g := graph.Cycle(5)
	for _, want := range golden {
		enc, err := ByName(want.name)
		if err != nil {
			t.Fatal(err)
		}
		e := Encode(NewCSP(g, 4), enc)
		if e.CNF.NumVars != want.vars || e.CNF.NumClauses() != want.clauses ||
			e.CNF.NumLiterals() != want.lits {
			t.Errorf("%s: got (%d,%d,%d), want (%d,%d,%d)", want.name,
				e.CNF.NumVars, e.CNF.NumClauses(), e.CNF.NumLiterals(),
				want.vars, want.clauses, want.lits)
		}
	}
}
