package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Encoding translates the domain of one CSP variable into Boolean
// variables, indexing Boolean patterns (cubes) and structural clauses.
// Implementations are the simple encodings of Sect. 2–3 and the
// hierarchical compositions of Sect. 4; construct them with
// NewSimple, NewHierarchical, NewITETree or ByName.
type Encoding interface {
	// Name returns the paper's name for the encoding (e.g.
	// "ITE-linear-2+muldirect").
	Name() string
	// emitVar allocates Boolean variables for one CSP variable with
	// domain {0..d-1}, emits the encoding's structural clauses into
	// sink, and returns the per-value cubes.
	emitVar(d int, a *alloc, sink ClauseSink) []Cube
	// Multivalued reports whether a satisfying assignment may select
	// more than one domain value (no 1-to-1 SAT/CSP correspondence);
	// decoding then takes any selected value.
	Multivalued() bool
}

// simpleEncoding wraps a Kind as a standalone Encoding.
type simpleEncoding struct{ kind Kind }

// NewSimple returns the simple encoding of the given kind.
func NewSimple(kind Kind) Encoding { return simpleEncoding{kind} }

func (e simpleEncoding) Name() string { return e.kind.String() }

func (e simpleEncoding) Multivalued() bool { return e.kind == KindMuldirect }

func (e simpleEncoding) emitVar(d int, a *alloc, sink ClauseSink) []Cube {
	vars := a.block(numVarsFor(e.kind, d))
	emitStructural(e.kind, d, vars, a, sink)
	return cubesFor(e.kind, d, vars)
}

// Level is one partition level of a hierarchical encoding: Kind
// partitions the (sub)domain into subdomains using Vars Boolean
// variables. With Vars=n, log and ITE-log produce up to 2^n
// subdomains, ITE-linear up to n+1, direct and muldirect up to n —
// matching the paper's naming, where "muldirect-3" is a first-level
// muldirect encoding over 3 Boolean variables.
type Level struct {
	Kind Kind
	Vars int
}

// hierEncoding composes partition levels with a leaf encoding, as in
// Sect. 4. All subdomains at one level share that level's Boolean
// variables; subdomains smaller than the largest one either use
// smaller ITE trees (ITE kinds) or receive exclusion constraints
// preventing the selection of non-existent values (log/direct/
// muldirect kinds).
type hierEncoding struct {
	levels []Level
	leaf   Kind
}

// NewHierarchical builds a hierarchical encoding from one or more
// partition levels and a leaf kind applied to the final subdomains.
func NewHierarchical(levels []Level, leaf Kind) (Encoding, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("core: hierarchical encoding needs at least one level")
	}
	for _, l := range levels {
		if l.Vars < 1 {
			return nil, fmt.Errorf("core: level %s has %d variables", l.Kind, l.Vars)
		}
	}
	return hierEncoding{levels: levels, leaf: leaf}, nil
}

// MustHierarchical is NewHierarchical, panicking on error (for the
// fixed paper encodings).
func MustHierarchical(levels []Level, leaf Kind) Encoding {
	e, err := NewHierarchical(levels, leaf)
	if err != nil {
		panic(err)
	}
	return e
}

func (e hierEncoding) Name() string {
	var sb strings.Builder
	for _, l := range e.levels {
		fmt.Fprintf(&sb, "%s-%d+", l.Kind, l.Vars)
	}
	sb.WriteString(e.leaf.String())
	return sb.String()
}

func (e hierEncoding) Multivalued() bool {
	if e.leaf == KindMuldirect {
		return true
	}
	for _, l := range e.levels {
		if l.Kind == KindMuldirect {
			return true
		}
	}
	return false
}

// subEncoding is the shared-variable encoding of one hierarchy suffix.
// cubes(d) re-derives the value cubes for any domain size d <= maxSize
// over the same variables, so that subdomains of different sizes at the
// same level reuse one variable block. Structural and exclusion clauses
// are emitted into the sink passed to buildSub as the suffix is built.
type subEncoding struct {
	maxSize int
	pureITE bool
	cubes   func(d int) []Cube
}

// buildSub constructs the shared sub-encoding for the hierarchy suffix
// (levels, leaf) over domains of size up to maxSize, emitting its
// structural and exclusion clauses into sink.
func buildSub(levels []Level, leaf Kind, maxSize int, a *alloc, sink ClauseSink) subEncoding {
	if maxSize == 1 {
		return subEncoding{
			maxSize: 1,
			pureITE: true,
			cubes:   func(d int) []Cube { return []Cube{nil} },
		}
	}
	if len(levels) == 0 {
		vars := a.block(numVarsFor(leaf, maxSize))
		emitStructural(leaf, maxSize, vars, a, sink)
		return subEncoding{
			maxSize: maxSize,
			pureITE: leaf.isITE(),
			cubes:   func(d int) []Cube { return cubesFor(leaf, d, vars) },
		}
	}
	level := levels[0]
	gMax := groupCount(level, maxSize)
	topVars := a.block(numVarsFor(level.Kind, gMax))
	emitStructural(level.Kind, gMax, topVars, a, sink)
	sizesMax := balancedSizes(maxSize, gMax)
	sub := buildSub(levels[1:], leaf, sizesMax[0], a, sink)

	// Exclusion constraints: when the sub-encoding is not a pure ITE
	// tree, forbid (group j selected AND non-existent index selected).
	if !sub.pureITE {
		topCubes := cubesFor(level.Kind, gMax, topVars)
		subCubes := sub.cubes(sub.maxSize)
		for j, sz := range sizesMax {
			for t := sz; t < sub.maxSize; t++ {
				cl := topCubes[j].AppendNegated(a.buf[:0])
				cl = subCubes[t].AppendNegated(cl)
				a.buf = cl
				sink.AddClause(cl...)
			}
		}
	}

	pure := level.Kind.isITE() && sub.pureITE
	repartition := func(d int) []Cube {
		g := groupCount(level, d)
		sizes := balancedSizes(d, g)
		topCubes := cubesFor(level.Kind, g, topVars)
		out := make([]Cube, 0, d)
		for j, sz := range sizes {
			subCubes := sub.cubes(sz)
			for t := 0; t < sz; t++ {
				cube := append(append(Cube(nil), topCubes[j]...), subCubes[t]...)
				out = append(out, cube)
			}
		}
		return out
	}
	cubes := func(d int) []Cube {
		if d == 1 {
			return []Cube{nil}
		}
		// A pure-ITE suffix may be rebuilt as a genuinely smaller tree
		// ("smaller versions of the ITE-trees", Sect. 4). A suffix with
		// structural clauses must instead keep the max-size partition
		// and take a prefix of its cube list, so that the exclusion
		// constraints generated above remain consistent with the cubes
		// used for smaller subdomains.
		if d == maxSize || pure {
			return repartition(d)
		}
		return repartition(maxSize)[:d]
	}
	return subEncoding{
		maxSize: maxSize,
		pureITE: pure,
		cubes:   cubes,
	}
}

func (e hierEncoding) emitVar(d int, a *alloc, sink ClauseSink) []Cube {
	sub := buildSub(e.levels, e.leaf, d, a, sink)
	return sub.cubes(d)
}

// groupCount returns the number of subdomains a level splits a domain
// of size d into: the level's fan-out capacity, capped at d.
func groupCount(l Level, d int) int {
	g := capacity(l.Kind, l.Vars)
	if g > d {
		g = d
	}
	return g
}

// balancedSizes splits d domain values into g contiguous subdomains as
// evenly as possible, larger subdomains first: with s = ceil(d/g),
// the first d-(s-1)*g subdomains have size s and the rest s-1. For
// d=13, g=4 this yields 4,3,3,3 — matching Fig. 1.d of the paper.
func balancedSizes(d, g int) []int {
	if g < 1 || g > d {
		panic(fmt.Sprintf("core: cannot split %d values into %d groups", d, g))
	}
	s := (d + g - 1) / g
	big := d - (s-1)*g
	sizes := make([]int, g)
	for i := range sizes {
		if i < big {
			sizes[i] = s
		} else {
			sizes[i] = s - 1
		}
	}
	return sizes
}

// parseEncodingName parses paper-style names: a simple kind name, or
// "<kind>-<vars>+<kind>-<vars>+...+<leafkind>".
func parseEncodingName(name string) (Encoding, error) {
	if k, ok := parseKind(name); ok {
		return NewSimple(k), nil
	}
	parts := strings.Split(name, "+")
	leaf, ok := parseKind(parts[len(parts)-1])
	if !ok {
		return nil, fmt.Errorf("core: unknown leaf encoding in %q", name)
	}
	if len(parts) < 2 {
		return nil, fmt.Errorf("core: unknown encoding %q", name)
	}
	var levels []Level
	for _, p := range parts[:len(parts)-1] {
		dash := strings.LastIndex(p, "-")
		if dash < 0 {
			return nil, fmt.Errorf("core: level %q in %q lacks a variable count", p, name)
		}
		kind, ok := parseKind(p[:dash])
		if !ok {
			return nil, fmt.Errorf("core: unknown level kind %q in %q", p[:dash], name)
		}
		n, err := strconv.Atoi(p[dash+1:])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("core: bad variable count %q in %q", p[dash+1:], name)
		}
		levels = append(levels, Level{Kind: kind, Vars: n})
	}
	return NewHierarchical(levels, leaf)
}

// ByName returns the encoding with the given paper-style name, e.g.
// "muldirect", "ITE-log-2+ITE-linear" or "direct-3+muldirect". The
// order encoding of the bandwidth-coloring family answers to "order"
// and its ladder alias.
func ByName(name string) (Encoding, error) {
	if name == "order" || name == "ladder" {
		return NewOrder(), nil
	}
	return parseEncodingName(name)
}

// BandwidthEncodingNames lists the encodings the bandwidth-coloring
// (distance-constraint) study compares: the order encoding, whose
// interval clauses are distance-native, and the distance-aware
// pairwise variants of direct and log.
var BandwidthEncodingNames = []string{"order", "direct", "log"}

// PaperEncodingNames lists the 14 encodings of the paper in its order:
// the 2 previously used ones (log, muldirect) preceded by direct, then
// the 12 new encodings of Sect. 6.
var PaperEncodingNames = []string{
	"log",
	"direct",
	"muldirect",
	"ITE-linear",
	"ITE-log",
	"ITE-log-1+ITE-linear",
	"ITE-log-2+ITE-linear",
	"ITE-log-2+direct",
	"ITE-log-2+muldirect",
	"ITE-linear-2+direct",
	"ITE-linear-2+muldirect",
	"direct-3+direct",
	"direct-3+muldirect",
	"muldirect-3+direct",
	"muldirect-3+muldirect",
}

// PaperEncodings returns all encodings named in the paper.
func PaperEncodings() []Encoding {
	out := make([]Encoding, len(PaperEncodingNames))
	for i, n := range PaperEncodingNames {
		e, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out[i] = e
	}
	return out
}
