package core

import (
	"fmt"
	"testing"

	"fpgasat/internal/graph"
)

func TestNumVarsFor(t *testing.T) {
	cases := []struct {
		kind Kind
		d    int
		want int
	}{
		{KindLog, 1, 0}, {KindLog, 2, 1}, {KindLog, 3, 2}, {KindLog, 13, 4},
		{KindITELog, 3, 2}, {KindITELog, 13, 4}, {KindITELog, 16, 4},
		{KindDirect, 5, 5}, {KindMuldirect, 5, 5},
		{KindITELinear, 13, 12}, {KindITELinear, 2, 1}, {KindITELinear, 1, 0},
	}
	for _, c := range cases {
		if got := numVarsFor(c.kind, c.d); got != c.want {
			t.Errorf("numVarsFor(%s,%d) = %d, want %d", c.kind, c.d, got, c.want)
		}
	}
}

func TestCapacity(t *testing.T) {
	cases := []struct {
		kind Kind
		n    int
		want int
	}{
		{KindLog, 2, 4}, {KindITELog, 2, 4}, {KindITELog, 1, 2},
		{KindDirect, 3, 3}, {KindMuldirect, 3, 3},
		{KindITELinear, 2, 3}, {KindITELinear, 1, 2},
	}
	for _, c := range cases {
		if got := capacity(c.kind, c.n); got != c.want {
			t.Errorf("capacity(%s,%d) = %d, want %d", c.kind, c.n, got, c.want)
		}
	}
}

func cubeEq(a, b Cube) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestITELinearCubesMatchFig1a(t *testing.T) {
	// Fig 1.a: value 0 selected by i0; value 1 by ¬i0∧i1; last value by
	// all-negative.
	vars := []int{1, 2, 3, 4}
	cubes := cubesFor(KindITELinear, 5, vars)
	want := []Cube{{1}, {-1, 2}, {-1, -2, 3}, {-1, -2, -3, 4}, {-1, -2, -3, -4}}
	for i := range want {
		if !cubeEq(cubes[i], want[i]) {
			t.Errorf("value %d: cube %v, want %v", i, cubes[i], want[i])
		}
	}
}

func TestITELogCubesBalanced(t *testing.T) {
	// 13 values need 4 variables; every cube has length 4 or 3.
	vars := []int{1, 2, 3, 4}
	cubes := cubesFor(KindITELog, 13, vars)
	if len(cubes) != 13 {
		t.Fatalf("%d cubes", len(cubes))
	}
	for i, c := range cubes {
		if len(c) != 4 && len(c) != 3 {
			t.Errorf("value %d cube length %d, want 3 or 4 (Fig 1.b)", i, len(c))
		}
	}
	// Cubes must be pairwise contradictory (some variable with opposite
	// signs), since an ITE tree selects exactly one leaf.
	for i := 0; i < len(cubes); i++ {
		for j := i + 1; j < len(cubes); j++ {
			if !contradict(cubes[i], cubes[j]) {
				t.Errorf("cubes %d and %d are simultaneously satisfiable", i, j)
			}
		}
	}
}

func contradict(a, b Cube) bool {
	for _, la := range a {
		for _, lb := range b {
			if la == -lb {
				return true
			}
		}
	}
	return false
}

func TestITELogGroupCubesMatchPaperExample(t *testing.T) {
	// Sect. 4 example: ITE-log-2+ITE-linear over 13 values. The second
	// group {v4,v5,v6} is selected by i0∧¬i1, and within it ITE-linear
	// over shared variables i2,i3 gives v4 ← i2, v5 ← ¬i2∧i3,
	// v6 ← ¬i2∧¬i3.
	enc := MustHierarchical([]Level{{KindITELog, 2}}, KindITELinear)
	a := newAlloc()
	cubes, clauses := encodeVar(enc, 13, a)
	if len(clauses) != 0 {
		t.Fatalf("pure ITE encoding emitted %d structural clauses", len(clauses))
	}
	// Variables: i0,i1 are 1,2 (top), i2,i3,i4 are 3,4,5 (shared leaf
	// level sized for the largest subdomain, 4).
	want := map[int]Cube{
		4: {1, -2, 3},
		5: {1, -2, -3, 4},
		6: {1, -2, -3, -4},
	}
	for val, w := range want {
		if !cubeEq(cubes[val], w) {
			t.Errorf("v%d cube = %v, want %v", val, cubes[val], w)
		}
	}
	if a.count() != 5 {
		t.Errorf("allocated %d vars, want 5 (2 top + 3 shared)", a.count())
	}
}

func TestBalancedSizes(t *testing.T) {
	cases := []struct {
		d, g int
		want []int
	}{
		{13, 4, []int{4, 3, 3, 3}},
		{13, 2, []int{7, 6}},
		{6, 3, []int{2, 2, 2}},
		{5, 3, []int{2, 2, 1}},
		{4, 4, []int{1, 1, 1, 1}},
	}
	for _, c := range cases {
		got := balancedSizes(c.d, c.g)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("balancedSizes(%d,%d) = %v, want %v", c.d, c.g, got, c.want)
		}
	}
}

func TestLogStructuralClauses(t *testing.T) {
	// Domain 3 over 2 bits: the single illegal pattern 11 is excluded
	// by (¬x1 ∨ ¬x2), as in Table 1.
	vars := []int{1, 2}
	cls := structuralFor(KindLog, 3, vars)
	if len(cls) != 1 || fmt.Sprint(cls[0]) != "[-1 -2]" {
		t.Fatalf("log structural clauses = %v, want [[-1 -2]]", cls)
	}
	// Power-of-two domains need no exclusions.
	if cls := structuralFor(KindLog, 4, []int{1, 2}); len(cls) != 0 {
		t.Fatalf("log(4) structural = %v, want none", cls)
	}
}

func TestDirectStructuralClauses(t *testing.T) {
	cls := structuralFor(KindDirect, 3, []int{1, 2, 3})
	// 1 at-least-one + 3 at-most-one pairs.
	if len(cls) != 4 {
		t.Fatalf("direct(3) has %d clauses, want 4: %v", len(cls), cls)
	}
	mls := structuralFor(KindMuldirect, 3, []int{1, 2, 3})
	if len(mls) != 1 || len(mls[0]) != 3 {
		t.Fatalf("muldirect(3) = %v, want one ALO clause", mls)
	}
}

func TestEncodingNamesRoundtrip(t *testing.T) {
	for _, name := range PaperEncodingNames {
		e, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if e.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, e.Name())
		}
	}
}

func TestByNameErrors(t *testing.T) {
	for _, bad := range []string{"", "frob", "frob-2+direct", "direct-0+direct",
		"direct-x+direct", "direct-2+frob", "ITE-linear+direct"} {
		if _, err := ByName(bad); err == nil {
			t.Errorf("ByName(%q) accepted", bad)
		}
	}
}

func TestMultivalued(t *testing.T) {
	cases := map[string]bool{
		"log":                    false,
		"direct":                 false,
		"muldirect":              true,
		"ITE-linear":             false,
		"ITE-log":                false,
		"ITE-linear-2+direct":    false,
		"ITE-linear-2+muldirect": true,
		"muldirect-3+direct":     true,
		"direct-3+muldirect":     true,
	}
	for name, want := range cases {
		e, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if e.Multivalued() != want {
			t.Errorf("%s.Multivalued() = %v, want %v", name, e.Multivalued(), want)
		}
	}
}

// enumerate all assignments over vars 1..n and count how many cubes of
// the list are satisfied by each.
func selectionCounts(t *testing.T, cubes []Cube, nvars int) (min, max int) {
	t.Helper()
	min, max = 1<<30, 0
	for mask := 0; mask < 1<<uint(nvars); mask++ {
		model := make([]bool, nvars)
		for v := 0; v < nvars; v++ {
			model[v] = mask&(1<<uint(v)) != 0
		}
		cnt := 0
		for _, c := range cubes {
			if c.Eval(model) {
				cnt++
			}
		}
		if cnt < min {
			min = cnt
		}
		if cnt > max {
			max = cnt
		}
	}
	return min, max
}

func TestITEEncodingsSelectExactlyOneValue(t *testing.T) {
	// The defining property of ITE-tree encodings (Sect. 3): every
	// assignment to the indexing variables selects exactly one leaf, so
	// no at-least-one or at-most-one clauses are needed.
	encs := []Encoding{
		NewSimple(KindITELinear),
		NewSimple(KindITELog),
		MustHierarchical([]Level{{KindITELog, 1}}, KindITELinear),
		MustHierarchical([]Level{{KindITELog, 2}}, KindITELinear),
		MustHierarchical([]Level{{KindITELinear, 2}}, KindITELinear),
		NewITETree("tree-linear", LinearShape),
		NewITETree("tree-balanced", BalancedShape),
	}
	for _, enc := range encs {
		for d := 1; d <= 13; d++ {
			a := newAlloc()
			cubes, clauses := encodeVar(enc, d, a)
			if len(clauses) != 0 {
				t.Errorf("%s d=%d: %d structural clauses, want 0", enc.Name(), d, len(clauses))
			}
			min, max := selectionCounts(t, cubes, a.count())
			if min != 1 || max != 1 {
				t.Errorf("%s d=%d: selection counts [%d,%d], want exactly 1", enc.Name(), d, min, max)
			}
		}
	}
}

func TestLogEncodingSelectsAtMostOne(t *testing.T) {
	for d := 2; d <= 9; d++ {
		a := newAlloc()
		cubes, _ := encodeVar(NewSimple(KindLog), d, a)
		_, max := selectionCounts(t, cubes, a.count())
		if max != 1 {
			t.Errorf("log d=%d: max selection %d, want 1", d, max)
		}
	}
}

func TestTreeShapeHelpers(t *testing.T) {
	if n := LinearShape(7).Leaves(); n != 7 {
		t.Errorf("LinearShape(7) has %d leaves", n)
	}
	if d := LinearShape(7).Depth(); d != 6 {
		t.Errorf("LinearShape(7) depth %d, want 6", d)
	}
	if d := BalancedShape(13).Depth(); d != 4 {
		t.Errorf("BalancedShape(13) depth %d, want 4", d)
	}
	bad := &TreeNode{Left: &TreeNode{}}
	if err := bad.validate(); err == nil {
		t.Error("single-child node validated")
	}
}

func TestLinearTreeMatchesITELinear(t *testing.T) {
	for d := 2; d <= 10; d++ {
		a1, a2 := newAlloc(), newAlloc()
		c1, _ := encodeVar(NewSimple(KindITELinear), d, a1)
		c2, _ := encodeVar(NewITETree("lin", LinearShape), d, a2)
		for i := range c1 {
			if !cubeEq(c1[i], c2[i]) {
				t.Fatalf("d=%d value %d: %v vs %v", d, i, c1[i], c2[i])
			}
		}
	}
}

func TestCSPBasics(t *testing.T) {
	g := graph.Cycle(4)
	csp := NewCSP(g, 3)
	if csp.Domain[2] != 3 {
		t.Fatal("full domain expected")
	}
	csp.ApplySequence([]int{1, 3})
	if csp.Domain[1] != 1 || csp.Domain[3] != 2 {
		t.Fatalf("domains after sequence: %v", csp.Domain)
	}
	if err := csp.Verify([]int{1, 0, 1, 0}); err != nil {
		t.Fatalf("valid solution rejected: %v", err)
	}
	if err := csp.Verify([]int{0, 0, 1, 0}); err == nil {
		t.Fatal("monochromatic edge accepted")
	}
	if err := csp.Verify([]int{1, 0, 1, 2}); err == nil {
		t.Fatal("out-of-domain color accepted")
	}
}

func TestCubeNegateEval(t *testing.T) {
	c := Cube{1, -2}
	n := c.Negate()
	if fmt.Sprint(n) != "[-1 2]" {
		t.Fatalf("negate = %v", n)
	}
	if !c.Eval([]bool{true, false}) || c.Eval([]bool{true, true}) {
		t.Fatal("Eval wrong")
	}
	if !Cube(nil).Eval(nil) {
		t.Fatal("empty cube must be true")
	}
}

func TestDeepHierarchyNameRoundtrip(t *testing.T) {
	names := []string{
		"ITE-log-1+ITE-linear-2+muldirect",
		"muldirect-2+direct-2+log",
		"log-2+ITE-log-1+ITE-linear",
	}
	for _, name := range names {
		enc, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if enc.Name() != name {
			t.Errorf("roundtrip: %q -> %q", name, enc.Name())
		}
		// Deep hierarchies must still encode sanely.
		a := newAlloc()
		cubes, _ := encodeVar(enc, 9, a)
		if len(cubes) != 9 {
			t.Errorf("%s: %d cubes for domain 9", name, len(cubes))
		}
	}
}
