package core

import "testing"

// FuzzParseEncodingName checks that paper-style encoding-name parsing
// never panics and that every accepted name's canonical form (Name())
// reparses to the same canonical form.
func FuzzParseEncodingName(f *testing.F) {
	for _, name := range PaperEncodingNames {
		f.Add(name)
	}
	for _, s := range []string{
		"",
		"log-",
		"ITE-log-0+direct",
		"direct-3+",
		"+",
		"a+b",
		"ITE-linear-2+muldirect+",
		"direct-99999999999999999999+log",
		"muldirect-3+direct-2+log",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, name string) {
		enc, err := ByName(name)
		if err != nil {
			return
		}
		canonical := enc.Name()
		enc2, err := ByName(canonical)
		if err != nil {
			t.Fatalf("Name() %q of accepted %q does not reparse: %v", canonical, name, err)
		}
		if enc2.Name() != canonical {
			t.Fatalf("Name() not stable: %q reparses to %q", canonical, enc2.Name())
		}
		_ = enc.Multivalued()
	})
}
