package core

import (
	"fmt"

	"fpgasat/internal/sat"
)

// Incremental is one encoding of a coloring graph at width K that
// serves every channel width w in [Lo, K] through assumptions, for the
// paper's central workflow of probing the same graph at adjacent
// widths (prove W-1 unroutable, route at W) on a single incremental
// solver.
//
// The color-domain upper bounds that a fresh encode at width w would
// bake into the domains are instead emitted as selector-guarded
// clauses: for each width w in [Lo, K) a selector variable sel_w
// guards, for every vertex whose domain contains color w, the clause
//
//	sel_w → ¬(color w selected at that vertex)
//
// and a staircase chain sel_w → sel_{w+1} links the selectors, so
// assuming the single literal sel_w forbids every color ≥ w and the
// effective per-vertex domains become min(Domain[v], w) — exactly the
// domains a single-shot encode at width w produces, because the
// symmetry-breaking sequences are width-independent orderings truncated
// to the first k-1 vertices (a prefix property; see symmetry.Sequence).
// Probing a width therefore needs exactly one assumption, and lemmas
// learnt at one width remain sound at every other, which is what makes
// learnt-clause reuse across the width search effective.
type Incremental struct {
	*Streamed
	// Lo is the smallest probeable width; [Lo, CSP.K] is the width range.
	Lo int
	// selectors[w-Lo] is the DIMACS index of sel_w, for w in [Lo, K).
	selectors []int
	// GuardClauses counts the emitted selector chain + guard clauses.
	GuardClauses int
}

// EncodeIncremental encodes the CSP at its full width csp.K into sink
// and appends the selector machinery covering widths [lo, csp.K]. The
// CSP should come from BuildCSP at width K; probing any width w in the
// range is then Assumptions(w) on a solver fed from the same sink. lo
// is clamped to [1, csp.K].
func EncodeIncremental(csp *CSP, enc Encoding, lo int, sink ClauseSink) *Incremental {
	if lo < 1 {
		lo = 1
	}
	if lo > csp.K {
		lo = csp.K
	}
	st := EncodeInto(csp, enc, sink)
	inc := &Incremental{Streamed: st, Lo: lo}
	n := csp.K - lo
	if n == 0 {
		return inc
	}
	inc.selectors = make([]int, n)
	for i := range inc.selectors {
		st.NumVars++
		inc.selectors[i] = st.NumVars
	}
	cs := &countingSink{sink: sink}
	for i := 0; i+1 < n; i++ {
		cs.AddClause(-inc.selectors[i], inc.selectors[i+1])
	}
	// An encoding with native order literals shortens the guard to a
	// single ¬(color >= w) literal; cube encodings guard by negating the
	// value-w cube (the staircase chain covers the widths above w).
	guard, _ := enc.(incrementalGuard)
	var buf []int // scratch; sinks copy what they keep
	for w := lo; w < csp.K; w++ {
		sel := inc.selectors[w-lo]
		for v := 0; v < csp.G.N(); v++ {
			if csp.Domain[v] <= w {
				continue
			}
			buf = append(buf[:0], -sel)
			if guard != nil {
				buf = guard.guardLits(st.Cubes[v], w, buf)
			} else {
				buf = st.Cubes[v][w].AppendNegated(buf)
			}
			cs.AddClause(buf...)
		}
	}
	inc.GuardClauses = cs.n
	return inc
}

// SelectorVar returns the DIMACS index of sel_w, or 0 when width w
// needs no selector (w == K, the unguarded full-width probe).
func (inc *Incremental) SelectorVar(w int) int {
	if w < inc.Lo || w >= inc.CSP.K {
		return 0
	}
	return inc.selectors[w-inc.Lo]
}

// Assumptions returns the assumption literals that restrict the encoded
// formula to channel width w: one selector literal for w < K, none for
// w == K. Widths outside [Lo, K] are an error.
func (inc *Incremental) Assumptions(w int) ([]sat.Lit, error) {
	if w < inc.Lo || w > inc.CSP.K {
		return nil, fmt.Errorf("core: width %d outside encoded range [%d,%d]", w, inc.Lo, inc.CSP.K)
	}
	if w == inc.CSP.K {
		return nil, nil
	}
	return []sat.Lit{sat.LitFromDimacs(inc.selectors[w-inc.Lo])}, nil
}

// widthCSP returns the CSP as a single-shot encode at width w would
// build it: same graph, domains clamped to w.
func (inc *Incremental) widthCSP(w int) *CSP {
	dom := make([]int, len(inc.CSP.Domain))
	for v, d := range inc.CSP.Domain {
		if d > w {
			d = w
		}
		dom[v] = d
	}
	return &CSP{G: inc.CSP.G, K: w, Domain: dom}
}

// DecodeVerifyWidth decodes a model obtained under Assumptions(w) and
// verifies it is a proper coloring within the width-w domains. The
// guard clauses force every cube of a color ≥ w to be false under the
// model, so plain decoding already lands inside the restricted domains;
// the verification makes that an explicit end-to-end guarantee.
func (inc *Incremental) DecodeVerifyWidth(model []bool, w int) ([]int, error) {
	if w < inc.Lo || w > inc.CSP.K {
		return nil, fmt.Errorf("core: width %d outside encoded range [%d,%d]", w, inc.Lo, inc.CSP.K)
	}
	colors, err := inc.Decode(model)
	if err != nil {
		return nil, err
	}
	if err := inc.widthCSP(w).Verify(colors); err != nil {
		return nil, fmt.Errorf("core: decoded width-%d solution invalid: %w", w, err)
	}
	return colors, nil
}
