package core

import (
	"context"
	"math/rand"
	"testing"

	"fpgasat/internal/graph"
	"fpgasat/internal/sat"
)

// TestEncodeIncrementalWidthEquivalence checks the selector-guard
// construction against single-shot encodes: for every width w in the
// encoded range, the incremental CNF with sel_w asserted as a unit has
// the same satisfiability as a fresh encode at width w, and a Sat model
// decodes to a valid width-w coloring.
func TestEncodeIncrementalWidthEquivalence(t *testing.T) {
	specs := []string{
		"log/-",
		"direct/s1",
		"muldirect/c1",
		"ITE-log/b1",
		"ITE-linear/-",
		"ITE-linear-2+muldirect/s1",
		"direct-3+direct/s1",
	}
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 14; round++ {
		n := 4 + rng.Intn(4)
		g := graph.Random(rng, n, 0.3+0.4*rng.Float64())
		strat, err := ParseStrategy(specs[round%len(specs)])
		if err != nil {
			t.Fatal(err)
		}
		K := n
		csp := BuildCSP(g, K, strat.Symmetry)
		cnf := &sat.CNF{}
		inc := EncodeIncremental(csp, strat.Encoding, 1, cnf)
		if cnf.NumVars < inc.NumVars {
			cnf.NumVars = inc.NumVars
		}
		for w := 1; w <= K; w++ {
			want := sat.SolveCNFContext(context.Background(),
				Encode(BuildCSP(g, w, strat.Symmetry), strat.Encoding).CNF,
				sat.Options{}).Status
			probe := &sat.CNF{NumVars: cnf.NumVars}
			for _, cl := range cnf.Clauses {
				probe.AddClause(cl...)
			}
			if sel := inc.SelectorVar(w); sel != 0 {
				probe.AddClause(sel)
			}
			res := sat.SolveCNFContext(context.Background(), probe, sat.Options{})
			if res.Status != want {
				t.Fatalf("round %d %s width %d: incremental %v, single-shot %v",
					round, strat.Name(), w, res.Status, want)
			}
			if res.Status == sat.Sat {
				if _, err := inc.DecodeVerifyWidth(res.Model, w); err != nil {
					t.Fatalf("round %d %s width %d: %v", round, strat.Name(), w, err)
				}
			}
		}
	}
}

func TestEncodeIncrementalBookkeeping(t *testing.T) {
	g := graph.Complete(4)
	csp := BuildCSP(g, 5, "s1")
	cnf := &sat.CNF{}
	inc := EncodeIncremental(csp, NewSimple(KindDirect), 2, cnf)

	if got := inc.StructuralClauses + inc.ConflictClauses + inc.GuardClauses; got != cnf.NumClauses() {
		t.Fatalf("census %d, CNF has %d clauses", got, cnf.NumClauses())
	}
	if a, err := inc.Assumptions(5); err != nil || a != nil {
		t.Fatalf("full-width probe needs no assumptions, got %v, %v", a, err)
	}
	for w := 2; w < 5; w++ {
		a, err := inc.Assumptions(w)
		if err != nil || len(a) != 1 {
			t.Fatalf("width %d: assumptions %v, %v", w, a, err)
		}
		if a[0].Dimacs() != inc.SelectorVar(w) {
			t.Fatalf("width %d: assumption %d != selector %d", w, a[0].Dimacs(), inc.SelectorVar(w))
		}
	}
	if _, err := inc.Assumptions(1); err == nil {
		t.Fatal("width below Lo must be rejected")
	}
	if _, err := inc.Assumptions(6); err == nil {
		t.Fatal("width above K must be rejected")
	}
	if inc.SelectorVar(5) != 0 || inc.SelectorVar(1) != 0 {
		t.Fatal("SelectorVar outside (Lo, K) range must be 0")
	}
}

// TestEncodeIncrementalNoSelectors covers the degenerate lo == K range:
// no selectors, no guard clauses, identical to a plain encode.
func TestEncodeIncrementalNoSelectors(t *testing.T) {
	g := graph.Complete(3)
	csp := BuildCSP(g, 3, "")
	cnf := &sat.CNF{}
	inc := EncodeIncremental(csp, NewSimple(KindLog), 3, cnf)
	if inc.GuardClauses != 0 {
		t.Fatalf("expected no guard clauses, got %d", inc.GuardClauses)
	}
	plain := Encode(BuildCSP(graph.Complete(3), 3, ""), NewSimple(KindLog))
	if cnf.NumClauses() != plain.CNF.NumClauses() {
		t.Fatalf("lo==K incremental encode has %d clauses, plain %d",
			cnf.NumClauses(), plain.CNF.NumClauses())
	}
}
