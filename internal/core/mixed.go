package core

import "fmt"

// mixedEncoding is the generalization the paper mentions but does not
// evaluate (Sect. 4): "it is not required that all the subdomains at a
// particular level of a hierarchical encoding be further divided ...
// by using the same simple encoding". A mixed encoding partitions the
// domain with a top level and then encodes each subdomain with its own
// (possibly different) encoding.
//
// Unlike the homogeneous hierarchy, subdomains do not share Boolean
// variables — each gets a private block — so no exclusion constraints
// are needed: every group's structural clauses simply hold
// unconditionally, which is sound because a value is selected only
// when its group's cube holds as well.
type mixedEncoding struct {
	name string
	top  Level
	subs []Encoding // assigned to groups round-robin
}

// NewMixed builds a mixed hierarchical encoding: the top level
// partitions the domain and group j is encoded with
// subs[j mod len(subs)].
func NewMixed(name string, top Level, subs []Encoding) (Encoding, error) {
	if top.Vars < 1 {
		return nil, fmt.Errorf("core: mixed top level needs at least 1 variable")
	}
	if len(subs) == 0 {
		return nil, fmt.Errorf("core: mixed encoding needs at least one subdomain encoding")
	}
	return mixedEncoding{name: name, top: top, subs: subs}, nil
}

// MustMixed is NewMixed, panicking on error.
func MustMixed(name string, top Level, subs []Encoding) Encoding {
	e, err := NewMixed(name, top, subs)
	if err != nil {
		panic(err)
	}
	return e
}

func (e mixedEncoding) Name() string { return e.name }

func (e mixedEncoding) Multivalued() bool {
	if e.top.Kind == KindMuldirect {
		return true
	}
	for _, s := range e.subs {
		if s.Multivalued() {
			return true
		}
	}
	return false
}

func (e mixedEncoding) emitVar(d int, a *alloc, sink ClauseSink) []Cube {
	if d == 1 {
		return []Cube{nil}
	}
	g := groupCount(e.top, d)
	topVars := a.block(numVarsFor(e.top.Kind, g))
	topCubes := cubesFor(e.top.Kind, g, topVars)
	emitStructural(e.top.Kind, g, topVars, a, sink)

	sizes := balancedSizes(d, g)
	cubes := make([]Cube, 0, d)
	for j, sz := range sizes {
		sub := e.subs[j%len(e.subs)]
		subCubes := sub.emitVar(sz, a, sink)
		for t := 0; t < sz; t++ {
			cube := append(append(Cube(nil), topCubes[j]...), subCubes[t]...)
			cubes = append(cubes, cube)
		}
	}
	return cubes
}
