package core

import (
	"context"
	"math/rand"
	"testing"

	"fpgasat/internal/coloring"
	"fpgasat/internal/graph"
	"fpgasat/internal/sat"
)

func mixedTestEncodings() []Encoding {
	return []Encoding{
		MustMixed("mixed/itelog2(direct,muldirect)", Level{KindITELog, 2},
			[]Encoding{NewSimple(KindDirect), NewSimple(KindMuldirect)}),
		MustMixed("mixed/muldirect3(linear,log)", Level{KindMuldirect, 3},
			[]Encoding{NewSimple(KindITELinear), NewSimple(KindLog)}),
		MustMixed("mixed/direct2(hier,itelog)", Level{KindDirect, 2},
			[]Encoding{
				MustHierarchical([]Level{{KindITELinear, 2}}, KindMuldirect),
				NewSimple(KindITELog),
			}),
		MustMixed("mixed/log2(tree)", Level{KindLog, 2},
			[]Encoding{NewITETree("bal", BalancedShape)}),
	}
}

func TestNewMixedValidation(t *testing.T) {
	if _, err := NewMixed("x", Level{KindDirect, 0}, []Encoding{NewSimple(KindLog)}); err == nil {
		t.Fatal("zero-variable top accepted")
	}
	if _, err := NewMixed("x", Level{KindDirect, 2}, nil); err == nil {
		t.Fatal("empty sub list accepted")
	}
	e := MustMixed("myname", Level{KindDirect, 2}, []Encoding{NewSimple(KindLog)})
	if e.Name() != "myname" {
		t.Fatalf("Name = %q", e.Name())
	}
}

func TestMixedMultivalued(t *testing.T) {
	mv := MustMixed("a", Level{KindMuldirect, 2}, []Encoding{NewSimple(KindDirect)})
	if !mv.Multivalued() {
		t.Error("muldirect top should be multivalued")
	}
	mv2 := MustMixed("b", Level{KindDirect, 2}, []Encoding{NewSimple(KindMuldirect)})
	if !mv2.Multivalued() {
		t.Error("muldirect sub should be multivalued")
	}
	sv := MustMixed("c", Level{KindITELog, 2}, []Encoding{NewSimple(KindITELinear)})
	if sv.Multivalued() {
		t.Error("pure ITE mixed should be single-valued")
	}
}

// TestMixedSemantics runs the exhaustive existence/soundness check on
// the mixed encodings.
func TestMixedSemantics(t *testing.T) {
	for _, enc := range mixedTestEncodings() {
		for d := 1; d <= 9; d++ {
			a := newAlloc()
			cubes, clauses := encodeVar(enc, d, a)
			n := a.count()
			if n > 15 {
				continue
			}
			if len(cubes) != d {
				t.Fatalf("%s d=%d: %d cubes", enc.Name(), d, len(cubes))
			}
			selectable := make([]bool, d)
			forAllAssignments(n, func(model []bool) {
				if !clausesSatisfied(clauses, model) {
					return
				}
				count := 0
				for c, cube := range cubes {
					if cube.Eval(model) {
						count++
						selectable[c] = true
					}
				}
				if count == 0 {
					t.Fatalf("%s d=%d: valid assignment selects nothing", enc.Name(), d)
				}
				if count > 1 && !enc.Multivalued() {
					t.Fatalf("%s d=%d: single-valued encoding selected %d", enc.Name(), d, count)
				}
			})
			for c, ok := range selectable {
				if !ok {
					t.Fatalf("%s d=%d: value %d never selectable", enc.Name(), d, c)
				}
			}
		}
	}
}

// TestMixedAgreesWithExactColoring: end-to-end equisatisfiability for
// mixed encodings on random graphs.
func TestMixedAgreesWithExactColoring(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 8; trial++ {
		g := graph.Random(rng, 4+rng.Intn(8), 0.4+rng.Float64()*0.4)
		k := 2 + rng.Intn(4)
		_, want, _ := coloring.KColorable(g, k, 0)
		for _, enc := range mixedTestEncodings() {
			st, colors, err := Encode(NewCSP(g, k), enc).SolveContext(context.Background(), sat.Options{})
			if err != nil {
				t.Fatalf("%s: %v", enc.Name(), err)
			}
			if (st == sat.Sat) != want {
				t.Fatalf("%s trial %d: got %v, exact sat=%v", enc.Name(), trial, st, want)
			}
			if st == sat.Sat {
				if err := coloring.Verify(g, colors, k); err != nil {
					t.Fatalf("%s: %v", enc.Name(), err)
				}
			}
		}
	}
}
