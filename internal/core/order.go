package core

// The order (ladder) encoding and the distance-constraint conflict
// emitters. Bandwidth coloring generalizes the disequality constraint
// on an edge to |color(u)-color(v)| >= d; the "SAT Encodings for
// Bandwidth Coloring" design study identifies the order encoding as the
// natural fit because a distance constraint over order literals needs
// only O(D) interval clauses, against the O(D·d) pairwise clauses a
// value-indexed (cube) encoding needs.

// orderEncoding indexes a domain {0..d-1} with d-1 order variables
// ge[i] ≡ (value >= i) for i in 1..d-1, chained by the ladder clauses
// ge[i+1] → ge[i] ("a value of at least i+1 is at least i"). The cube
// selecting value c is then (value >= c) ∧ ¬(value >= c+1), with the
// boundary literals (value >= 0, always true; value >= d, always
// false) dropped.
type orderEncoding struct{}

// NewOrder returns the order (ladder) encoding.
func NewOrder() Encoding { return orderEncoding{} }

func (orderEncoding) Name() string { return "order" }

// Multivalued is false: under the ladder clauses every assignment
// selects exactly one value (the largest i with ge[i] true).
func (orderEncoding) Multivalued() bool { return false }

func (orderEncoding) emitVar(d int, a *alloc, sink ClauseSink) []Cube {
	if d == 1 {
		return []Cube{nil}
	}
	vars := a.block(d - 1) // vars[i-1] is ge[i], for i in 1..d-1
	for i := 0; i+1 < d-1; i++ {
		// Ladder (monotonicity): ge[i+2] → ge[i+1].
		sink.AddClause(vars[i], -vars[i+1])
	}
	cubes := make([]Cube, d)
	cubes[0] = Cube{-vars[0]}
	for c := 1; c < d-1; c++ {
		cubes[c] = Cube{vars[c-1], -vars[c]}
	}
	cubes[d-1] = Cube{vars[d-2]}
	return cubes
}

// geLit recovers the DIMACS literal of ge[i] (value >= i, 1 <= i <= d-1)
// from the cube list emitVar produced: the cube for value i >= 1 leads
// with the positive ge[i] literal.
func geLit(cubes []Cube, i int) int { return cubes[i][0] }

// emitDistance emits the interval form of |x-y| >= dist over the order
// literals of both endpoints: for every length-dist window [w, w+dist)
// that intersects both domains, the clause
//
//	¬(x>=w) ∨ (x>=w+dist) ∨ ¬(y>=w) ∨ (y>=w+dist)
//
// ("not both inside the window"), with always-true/always-false
// boundary literals dropped. min(du,dv) clauses of at most 4 literals,
// independent of dist. Singleton domains fall back to the generic
// pairwise emitter, which handles constant values directly.
func (orderEncoding) emitDistance(cu, cv []Cube, du, dv, dist int, a *alloc, sink ClauseSink) bool {
	if du < 2 || dv < 2 {
		return false
	}
	common := du
	if dv < common {
		common = dv
	}
	for w := 0; w < common; w++ {
		cl := a.buf[:0]
		if w >= 1 {
			cl = append(cl, -geLit(cu, w))
		}
		if w+dist <= du-1 {
			cl = append(cl, geLit(cu, w+dist))
		}
		if w >= 1 {
			cl = append(cl, -geLit(cv, w))
		}
		if w+dist <= dv-1 {
			cl = append(cl, geLit(cv, w+dist))
		}
		a.buf = cl
		sink.AddClause(cl...)
	}
	return true
}

// guardLits appends to buf the literals completing an incremental width
// guard for a vertex with the given cubes: a single ¬ge[w] forbids every
// color >= w at once (the ladder clauses propagate ¬ge[w] upward), so
// the order encoding needs one 2-literal guard clause per (width,
// vertex) where cube encodings need a full negated cube.
func (orderEncoding) guardLits(cubes []Cube, w int, buf []int) []int {
	return append(buf, -geLit(cubes, w))
}

// distanceEncoding is the optional interface an Encoding implements to
// emit an edge's distance constraint natively instead of through the
// generic pairwise emitter. Implementations return false to fall back
// (e.g. for singleton domains).
type distanceEncoding interface {
	emitDistance(cu, cv []Cube, du, dv, dist int, a *alloc, sink ClauseSink) bool
}

// incrementalGuard is the optional interface an Encoding implements to
// shorten EncodeIncremental's per-vertex width guards (see guardLits).
type incrementalGuard interface {
	guardLits(cubes []Cube, w int, buf []int) []int
}

// emitDistanceConflicts emits the conflict clauses of a weighted
// (bandwidth-coloring) CSP: per edge {u,v} with distance d, every value
// pair closer than d is forbidden. Distance-native encodings (order)
// emit interval clauses through emitDistance; all other encodings get
// the generic windowed pairwise form — for each value a of u, the
// values of v in (a-d, a+d) — which at d=1 degenerates to exactly the
// classic per-common-value loop. This is what makes the distance-aware
// direct and log variants fall out of the existing cube machinery.
func emitDistanceConflicts(csp *CSP, enc Encoding, cubes [][]Cube, a *alloc, cs ClauseSink) {
	de, _ := enc.(distanceEncoding)
	csp.G.ForEachWeightedEdge(func(u, v, d int) {
		du, dv := csp.Domain[u], csp.Domain[v]
		if de != nil && de.emitDistance(cubes[u], cubes[v], du, dv, d, a, cs) {
			return
		}
		for cu := 0; cu < du; cu++ {
			lo := cu - d + 1
			if lo < 0 {
				lo = 0
			}
			hi := cu + d - 1
			if hi > dv-1 {
				hi = dv - 1
			}
			for cv := lo; cv <= hi; cv++ {
				cl := cubes[u][cu].AppendNegated(a.buf[:0])
				cl = cubes[v][cv].AppendNegated(cl)
				a.buf = cl
				cs.AddClause(cl...)
			}
		}
	})
}
