package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"

	"fpgasat/internal/graph"
)

// hashSink folds the clause stream into a SHA-256 digest: every literal
// in decimal, clauses newline-terminated. Any change to clause content
// or emission order changes the digest.
type hashSink struct {
	h   [32]byte
	buf []byte
	n   int
}

func newHashSink() *hashSink { return &hashSink{} }

func (s *hashSink) AddClause(lits ...int) {
	s.buf = s.buf[:0]
	for _, l := range lits {
		s.buf = append(s.buf, fmt.Sprintf("%d ", l)...)
	}
	s.buf = append(s.buf, '\n')
	mix := sha256.New()
	mix.Write(s.h[:])
	mix.Write(s.buf)
	mix.Sum(s.h[:0])
	s.n++
}

func (s *hashSink) sum() string { return hex.EncodeToString(s.h[:8]) }

// pinnedGraphs are the deterministic instances the clause streams are
// pinned on: a sparse random graph, a clique and an odd cycle cover the
// distinct emission paths (mixed domains, full conflicts, tiny domains).
func pinnedGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"rand24": graph.Random(rand.New(rand.NewSource(7)), 24, 0.3),
		"k9":     graph.Complete(9),
		"c11":    graph.Cycle(11),
	}
}

var pinnedWidths = map[string]int{"rand24": 6, "k9": 9, "c11": 3}

// pinnedStreams maps "<graph>/<strategy>[/inc]" to the first 8 bytes of
// the chained SHA-256 of its clause stream, captured from the encoder
// before the distance-constraint generalization. These digests prove
// that distance-1 (classic disequality) instances keep producing
// byte-identical clause streams through every encoding, symmetry
// heuristic and the incremental selector path.
var pinnedStreams = map[string]string{
	"c11/ITE-linear-2+muldirect/s1":        "51286eb3f2af2044",
	"c11/ITE-linear-2+muldirect/s1/inc":    "46e8b076fb67af03",
	"c11/ITE-log-2+direct/b1":              "5fc2d969fed0ea91",
	"c11/ITE-log-2+direct/b1/inc":          "931696993fc75ee1",
	"c11/ITE-log/-":                        "635d9b3374d7e296",
	"c11/ITE-log/-/inc":                    "77c2fd8a4db30dfb",
	"c11/direct-3+direct/c1":               "96f48356ba87aee0",
	"c11/direct-3+direct/c1/inc":           "3b088a38c1c258c8",
	"c11/direct/s1":                        "96f48356ba87aee0",
	"c11/direct/s1/inc":                    "3b088a38c1c258c8",
	"c11/log/-":                            "db3f844b612547c4",
	"c11/log/-/inc":                        "de5d9aab660a4fed",
	"c11/muldirect-3+muldirect/s1":         "b92a6e0eea13a30b",
	"c11/muldirect-3+muldirect/s1/inc":     "b12b143e621f68c1",
	"c11/muldirect/b1":                     "b92a6e0eea13a30b",
	"c11/muldirect/b1/inc":                 "b12b143e621f68c1",
	"k9/ITE-linear-2+muldirect/s1":         "e6b142583361e518",
	"k9/ITE-linear-2+muldirect/s1/inc":     "f9098026af74d9dd",
	"k9/ITE-log-2+direct/b1":               "1ef052768c770575",
	"k9/ITE-log-2+direct/b1/inc":           "cbfbe5f4be53b79c",
	"k9/ITE-log/-":                         "8de6cdf668198a17",
	"k9/ITE-log/-/inc":                     "3a1e2410a6c4b872",
	"k9/direct-3+direct/c1":                "a09a4bb8d96a89e9",
	"k9/direct-3+direct/c1/inc":            "b056eaabb1ed09ba",
	"k9/direct/s1":                         "2814246b7e542428",
	"k9/direct/s1/inc":                     "28de8dfbe20e5e9f",
	"k9/log/-":                             "bfd1ef67944912c4",
	"k9/log/-/inc":                         "983ed9b2d005de6e",
	"k9/muldirect-3+muldirect/s1":          "fd8786ac136970e9",
	"k9/muldirect-3+muldirect/s1/inc":      "75ab3f6e3ba59acc",
	"k9/muldirect/b1":                      "6ee6aa1660514430",
	"k9/muldirect/b1/inc":                  "16ac3f99cf71b854",
	"rand24/ITE-linear-2+muldirect/s1":     "b9f315e5c669d704",
	"rand24/ITE-linear-2+muldirect/s1/inc": "980c166c12610d75",
	"rand24/ITE-log-2+direct/b1":           "cef252fd80ac967f",
	"rand24/ITE-log-2+direct/b1/inc":       "8799b268fc4e106e",
	"rand24/ITE-log/-":                     "03f94dafc549e73c",
	"rand24/ITE-log/-/inc":                 "4aad03787f878fc7",
	"rand24/direct-3+direct/c1":            "4a450c052aeb3fae",
	"rand24/direct-3+direct/c1/inc":        "bd5fd98dcafcf47e",
	"rand24/direct/s1":                     "ad425ba283ed9548",
	"rand24/direct/s1/inc":                 "0a20ace8c20c087c",
	"rand24/log/-":                         "dc0c08b0def2e1d4",
	"rand24/log/-/inc":                     "95df4bb47459140e",
	"rand24/muldirect-3+muldirect/s1":      "cab355f3768a2450",
	"rand24/muldirect-3+muldirect/s1/inc":  "b7bb1f87543ff25a",
	"rand24/muldirect/b1":                  "5c60d826cc4c7178",
	"rand24/muldirect/b1/inc":              "c1c19db379eb2ec9",
}

var pinnedSpecs = []string{
	"log/-",
	"direct/s1",
	"muldirect/b1",
	"ITE-log/-",
	"ITE-linear-2+muldirect/s1",
	"ITE-log-2+direct/b1",
	"direct-3+direct/c1",
	"muldirect-3+muldirect/s1",
}

// TestPinnedClauseStreams locks the exact clause streams (content and
// order) every pre-distance encoding emits on classic disequality
// instances. The distance-constraint generalization must keep these
// byte-identical: a d≡1 instance takes the same emission path as before
// the refactor.
func TestPinnedClauseStreams(t *testing.T) {
	graphs := pinnedGraphs()
	missing := false
	for gname, g := range graphs {
		k := pinnedWidths[gname]
		for _, spec := range pinnedSpecs {
			strat, err := ParseStrategy(spec)
			if err != nil {
				t.Fatalf("ParseStrategy(%q): %v", spec, err)
			}
			// Full encode at width k.
			sink := newHashSink()
			EncodeInto(BuildCSP(g, k, strat.Symmetry), strat.Encoding, sink)
			checkPinned(t, fmt.Sprintf("%s/%s", gname, spec), sink, &missing)
			// Incremental encode over widths [2, k].
			inc := newHashSink()
			EncodeIncremental(BuildCSP(g, k, strat.Symmetry), strat.Encoding, 2, inc)
			checkPinned(t, fmt.Sprintf("%s/%s/inc", gname, spec), inc, &missing)
		}
	}
	if missing {
		t.Fatal("pinned digests missing; paste the digests printed above")
	}
}

func checkPinned(t *testing.T, key string, sink *hashSink, missing *bool) {
	t.Helper()
	got := sink.sum()
	want, ok := pinnedStreams[key]
	if !ok {
		t.Logf("%q: %q,", key, got)
		*missing = true
		return
	}
	if got != want {
		t.Errorf("%s: clause stream digest %s, pinned %s (%d clauses) — the encoder no longer emits a byte-identical stream",
			key, got, want, sink.n)
	}
}
