package core

import (
	"math/rand"
	"testing"
)

// enumerating assignments over n variables; f is called with each model.
func forAllAssignments(n int, f func(model []bool)) {
	model := make([]bool, n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for v := 0; v < n; v++ {
			model[v] = mask&(1<<uint(v)) != 0
		}
		f(model)
	}
}

func clausesSatisfied(clauses [][]int, model []bool) bool {
	for _, cl := range clauses {
		ok := false
		for _, l := range cl {
			v := l
			if v < 0 {
				v = -v
			}
			val := v-1 < len(model) && model[v-1]
			if (l > 0) == val {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// randomEncodings builds a pool of random hierarchical encodings for
// property testing, mixing every kind at every level.
func randomEncodings(rng *rand.Rand, n int) []Encoding {
	kinds := []Kind{KindLog, KindDirect, KindMuldirect, KindITELinear, KindITELog}
	var out []Encoding
	for len(out) < n {
		depth := 1 + rng.Intn(2)
		var levels []Level
		for d := 0; d < depth; d++ {
			levels = append(levels, Level{
				Kind: kinds[rng.Intn(len(kinds))],
				Vars: 1 + rng.Intn(3),
			})
		}
		leaf := kinds[rng.Intn(len(kinds))]
		if rng.Intn(4) == 0 {
			out = append(out, NewSimple(leaf))
			continue
		}
		enc, err := NewHierarchical(levels, leaf)
		if err != nil {
			continue
		}
		out = append(out, enc)
	}
	return out
}

// TestEncodingExistenceAndSoundness verifies, by exhaustive model
// enumeration, the two semantic requirements of every encoding
// (Sect. 3-4): under the structural clauses at least one value cube is
// always satisfied (so decoding succeeds), and every value is
// individually selectable (so no solution is lost).
func TestEncodingExistenceAndSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	encs := append(randomEncodings(rng, 20), PaperEncodings()...)
	for _, enc := range encs {
		for d := 1; d <= 9; d++ {
			a := newAlloc()
			cubes, clauses := encodeVar(enc, d, a)
			n := a.count()
			if n > 14 {
				continue // keep enumeration tractable
			}
			if len(cubes) != d {
				t.Fatalf("%s d=%d: %d cubes", enc.Name(), d, len(cubes))
			}
			selectable := make([]bool, d)
			forAllAssignments(n, func(model []bool) {
				if !clausesSatisfied(clauses, model) {
					return
				}
				selected := 0
				for c, cube := range cubes {
					if cube.Eval(model) {
						selected++
						selectable[c] = true
					}
				}
				if selected == 0 {
					t.Fatalf("%s d=%d: structurally valid assignment selects no value", enc.Name(), d)
				}
			})
			for c, ok := range selectable {
				if !ok {
					t.Fatalf("%s d=%d: value %d is never selectable", enc.Name(), d, c)
				}
			}
		}
	}
}

// TestSingleValuedEncodingsNeverSelectTwo verifies the 1-to-1
// correspondence claim for non-multivalued encodings: no structurally
// valid assignment selects two distinct values.
func TestSingleValuedEncodingsNeverSelectTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	encs := append(randomEncodings(rng, 20), PaperEncodings()...)
	for _, enc := range encs {
		if enc.Multivalued() {
			continue
		}
		for d := 1; d <= 9; d++ {
			a := newAlloc()
			cubes, clauses := encodeVar(enc, d, a)
			n := a.count()
			if n > 14 {
				continue
			}
			forAllAssignments(n, func(model []bool) {
				if !clausesSatisfied(clauses, model) {
					return
				}
				selected := 0
				for _, cube := range cubes {
					if cube.Eval(model) {
						selected++
					}
				}
				if selected > 1 {
					t.Fatalf("%s d=%d: single-valued encoding selected %d values", enc.Name(), d, selected)
				}
			})
		}
	}
}

// TestDistinctCubesPerValue: two different values of one CSP variable
// must never share an indexing pattern.
func TestDistinctCubesPerValue(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	encs := append(randomEncodings(rng, 30), PaperEncodings()...)
	for _, enc := range encs {
		for d := 2; d <= 13; d++ {
			a := newAlloc()
			cubes, _ := encodeVar(enc, d, a)
			seen := map[string]int{}
			for c, cube := range cubes {
				key := ""
				for _, l := range cube {
					key += string(rune(l)) + ","
				}
				if prev, dup := seen[key]; dup {
					t.Fatalf("%s d=%d: values %d and %d share cube %v", enc.Name(), d, prev, c, cube)
				}
				seen[key] = c
			}
		}
	}
}

// TestHierarchicalVariableSharing: the Boolean variables of one CSP
// variable's encoding must be disjoint from another's (fresh blocks
// per variable), while levels within one variable share blocks across
// subdomains.
func TestHierarchicalVariableSharing(t *testing.T) {
	enc := MustHierarchical([]Level{{KindITELog, 2}}, KindITELinear)
	a := newAlloc()
	cubes1, _ := encodeVar(enc, 13, a)
	first := a.count()
	cubes2, _ := encodeVar(enc, 13, a)
	if a.count() != 2*first {
		t.Fatalf("second variable allocated %d vars, first %d", a.count()-first, first)
	}
	for _, cube := range cubes2 {
		for _, l := range cube {
			v := l
			if v < 0 {
				v = -v
			}
			if v <= first {
				t.Fatalf("second variable's cube %v reuses first variable's vars", cube)
			}
		}
	}
	_ = cubes1
}
