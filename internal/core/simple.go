package core

import "fmt"

// Kind identifies a simple (non-hierarchical) encoding, usable on its
// own or as one level of a hierarchical encoding.
type Kind int

const (
	// KindLog is the log encoding of Iwama and Miyazaki: ceil(log2 d)
	// Boolean variables per CSP variable, full bit patterns as cubes,
	// plus excluded-illegal-values clauses for unused patterns.
	KindLog Kind = iota
	// KindDirect is de Kleer's direct encoding: one Boolean variable
	// per domain value with at-least-one and at-most-one clauses.
	KindDirect
	// KindMuldirect is the multivalued direct encoding of Selman et
	// al.: the direct encoding without the at-most-one clauses.
	KindMuldirect
	// KindITELinear is the chain-shaped ITE-tree encoding (Fig. 1.a):
	// d-1 indexing variables, no structural clauses.
	KindITELinear
	// KindITELog is the balanced ITE-tree encoding (Fig. 1.b):
	// ceil(log2 d) indexing variables, no structural clauses, no
	// illegal patterns by construction.
	KindITELog
)

// String returns the paper's name for the kind.
func (k Kind) String() string {
	switch k {
	case KindLog:
		return "log"
	case KindDirect:
		return "direct"
	case KindMuldirect:
		return "muldirect"
	case KindITELinear:
		return "ITE-linear"
	case KindITELog:
		return "ITE-log"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// parseKind recognizes the paper's names.
func parseKind(s string) (Kind, bool) {
	for _, k := range []Kind{KindLog, KindDirect, KindMuldirect, KindITELinear, KindITELog} {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// isITE reports whether the kind is an ITE-tree encoding, which needs
// neither structural clauses nor exclusion constraints for smaller
// subdomains (smaller ITE trees are used instead; Sect. 4).
func (k Kind) isITE() bool { return k == KindITELinear || k == KindITELog }

// ceilLog2 returns ceil(log2 n) for n >= 1.
func ceilLog2(n int) int {
	b := 0
	for 1<<uint(b) < n {
		b++
	}
	return b
}

// numVarsFor returns the number of Boolean variables kind needs to
// index a domain of size d. A singleton domain never needs variables:
// its only value is selected by the empty cube.
func numVarsFor(k Kind, d int) int {
	if d < 1 {
		panic(fmt.Sprintf("core: domain size %d", d))
	}
	if d == 1 {
		return 0
	}
	switch k {
	case KindLog, KindITELog:
		return ceilLog2(d)
	case KindDirect, KindMuldirect:
		return d
	case KindITELinear:
		return d - 1
	}
	panic("core: unknown kind")
}

// capacity returns how many domain values kind can index with n
// Boolean variables (the subdomain fan-out when used as a hierarchy
// level).
func capacity(k Kind, n int) int {
	if n < 1 {
		panic("core: hierarchy level needs at least 1 variable")
	}
	switch k {
	case KindLog, KindITELog:
		if n >= 30 {
			return 1 << 30
		}
		return 1 << uint(n)
	case KindDirect, KindMuldirect:
		return n
	case KindITELinear:
		return n + 1
	}
	panic("core: unknown kind")
}

// cubesFor returns the indexing Boolean pattern of every domain value
// 0..d-1 over the given variable block. The block may be larger than
// needed (shared second-level variables of a hierarchical encoding);
// only a prefix is used, so cubes for a smaller domain are consistent
// with cubes for a larger one over the same block.
func cubesFor(k Kind, d int, vars []int) []Cube {
	if d == 1 {
		return []Cube{nil}
	}
	need := numVarsFor(k, d)
	if len(vars) < need {
		panic(fmt.Sprintf("core: %s with domain %d needs %d vars, got %d", k, d, need, len(vars)))
	}
	cubes := make([]Cube, d)
	switch k {
	case KindLog:
		m := need
		for c := 0; c < d; c++ {
			cube := make(Cube, m)
			for j := 0; j < m; j++ {
				if c&(1<<uint(j)) != 0 {
					cube[j] = vars[j]
				} else {
					cube[j] = -vars[j]
				}
			}
			cubes[c] = cube
		}
	case KindDirect, KindMuldirect:
		for c := 0; c < d; c++ {
			cubes[c] = Cube{vars[c]}
		}
	case KindITELinear:
		for c := 0; c < d; c++ {
			var cube Cube
			for j := 0; j < c && j < d-1; j++ {
				cube = append(cube, -vars[j])
			}
			if c < d-1 {
				cube = append(cube, vars[c])
			}
			cubes[c] = cube
		}
	case KindITELog:
		// Balanced tree: a positive literal selects the first (larger)
		// half, using one variable per depth level.
		var walk func(lo, hi, depth int, prefix Cube)
		walk = func(lo, hi, depth int, prefix Cube) {
			if hi-lo == 1 {
				cubes[lo] = append(Cube(nil), prefix...)
				return
			}
			mid := lo + (hi-lo+1)/2
			walk(lo, mid, depth+1, append(prefix, vars[depth]))
			walk(mid, hi, depth+1, append(prefix[:len(prefix):len(prefix)], -vars[depth]))
		}
		walk(0, d, 0, nil)
	default:
		panic("core: unknown kind")
	}
	return cubes
}

// emitStructural emits kind's structural clauses for a domain of size
// d over the variable block into sink: at-least-one (direct,
// muldirect), at-most-one (direct), excluded-illegal-values (log).
// ITE-tree encodings have none — the tree structure guarantees exactly
// one leaf is selected by every assignment. Clauses are assembled in
// the allocator's scratch buffer; sinks copy what they keep.
func emitStructural(k Kind, d int, vars []int, a *alloc, sink ClauseSink) {
	if d == 1 {
		return
	}
	switch k {
	case KindLog:
		m := numVarsFor(k, d)
		for illegal := d; illegal < 1<<uint(m); illegal++ {
			cl := a.buf[:0]
			for j := 0; j < m; j++ {
				if illegal&(1<<uint(j)) != 0 {
					cl = append(cl, -vars[j])
				} else {
					cl = append(cl, vars[j])
				}
			}
			a.buf = cl
			sink.AddClause(cl...)
		}
	case KindDirect:
		alo := append(a.buf[:0], vars[:d]...)
		a.buf = alo
		sink.AddClause(alo...)
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				sink.AddClause(-vars[i], -vars[j])
			}
		}
	case KindMuldirect:
		alo := append(a.buf[:0], vars[:d]...)
		a.buf = alo
		sink.AddClause(alo...)
	case KindITELinear, KindITELog:
		// none
	}
}

// structuralFor materializes emitStructural's clause stream; kept for
// tests and size introspection.
func structuralFor(k Kind, d int, vars []int) [][]int {
	var c clauseCollector
	emitStructural(k, d, vars, &alloc{}, &c)
	return c.clauses
}
