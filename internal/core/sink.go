package core

// ClauseSink consumes CNF clauses in DIMACS convention (positive int =
// variable true, negative = false, no zero terminator). It is the
// streaming side of the encoding pipeline: encodings emit structural,
// conflict and guard clauses into a sink instead of materializing an
// intermediate clause list.
//
// Contract: the literal slice is only valid for the duration of the
// AddClause call — emitters stream clauses from a scratch buffer they
// reuse, so a sink that wants to keep a clause must copy it. (This is
// the memory-model inversion that removes per-clause slice garbage
// from the encode hot path: the common sinks — a solver's watch lists,
// a counting sink — never needed ownership of the slice.) Sinks must
// accept clauses over variables they have not seen before (DIMACS
// indices are allocated densely from 1 by the encoder). The two
// production sinks are *sat.CNF (buffering; copies each clause) and
// sat.SolverSink (streams straight into an incremental solver, which
// copies literals into its clause arena).
type ClauseSink interface {
	AddClause(lits ...int)
}

// clauseCollector is a ClauseSink that materializes the emitted clauses,
// used by the materializing compatibility wrappers and by tests that
// inspect an encoding's structural clauses directly. Per the sink
// contract it copies every clause.
type clauseCollector struct{ clauses [][]int }

func (c *clauseCollector) AddClause(lits ...int) {
	c.clauses = append(c.clauses, append([]int(nil), lits...))
}

// countingSink forwards clauses to an underlying sink while counting
// them — the clause census of the size ablation without a second pass.
type countingSink struct {
	sink ClauseSink
	n    int
}

func (c *countingSink) AddClause(lits ...int) {
	c.n++
	c.sink.AddClause(lits...)
}

// discardSink drops every clause; used when only the cubes and the
// variable count of an encoding are of interest (DescribeVariable).
type discardSink struct{}

func (discardSink) AddClause(lits ...int) {}

// encodeVar materializes one CSP variable's encoding: the per-value
// cubes plus the structural clauses collected from the sink stream.
// It is the materializing counterpart of Encoding.emitVar, kept for
// tests and introspection.
func encodeVar(e Encoding, d int, a *alloc) ([]Cube, [][]int) {
	var c clauseCollector
	cubes := e.emitVar(d, a, &c)
	return cubes, c.clauses
}
