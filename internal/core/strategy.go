package core

import (
	"fmt"
	"strings"

	"fpgasat/internal/graph"
	"fpgasat/internal/symmetry"
)

// Strategy pairs a SAT encoding with a symmetry-breaking heuristic —
// the unit the paper compares in Table 2 and combines into portfolios.
type Strategy struct {
	Encoding Encoding
	Symmetry symmetry.Heuristic
}

// Name returns "encoding/heuristic", with "-" for no symmetry breaking
// (matching the dashes in Table 2).
func (s Strategy) Name() string {
	h := string(s.Symmetry)
	if h == "" {
		h = "-"
	}
	return s.Encoding.Name() + "/" + h
}

// ParseStrategy parses "encoding" or "encoding/heuristic".
func ParseStrategy(spec string) (Strategy, error) {
	encName, symName := spec, ""
	if i := strings.LastIndex(spec, "/"); i >= 0 {
		encName, symName = spec[:i], spec[i+1:]
	}
	enc, err := ByName(encName)
	if err != nil {
		return Strategy{}, err
	}
	h, err := symmetry.Parse(symName)
	if err != nil {
		return Strategy{}, err
	}
	return Strategy{Encoding: enc, Symmetry: h}, nil
}

// BuildCSP creates the k-coloring CSP for g with the symmetry-breaking
// domain restrictions of h applied. Weighted (bandwidth-coloring)
// graphs skip symmetry breaking regardless of h: the clique-based
// domain restrictions assume any color permutation maps solutions to
// solutions, but distance constraints are only invariant under
// translation and reflection, so restricting clique vertices to color
// prefixes would cut off real solutions.
func BuildCSP(g *graph.Graph, k int, h symmetry.Heuristic) *CSP {
	csp := NewCSP(g, k)
	if !g.Weighted() {
		csp.ApplySequence(symmetry.Sequence(g, k, h))
	}
	return csp
}

// EncodeGraph runs the full second translation step of the paper's
// tool flow for one strategy: symmetry-break, then encode the coloring
// CSP to CNF.
func (s Strategy) EncodeGraph(g *graph.Graph, k int) *Encoded {
	csp := BuildCSP(g, k, s.Symmetry)
	enc := Encode(csp, s.Encoding)
	enc.CNF.Comments = append(enc.CNF.Comments,
		fmt.Sprintf("symmetry: %s", orDash(string(s.Symmetry))))
	return enc
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
