package core

import (
	"math/rand"
	"testing"

	"fpgasat/internal/graph"
)

// recordSink copies every streamed clause, preserving order.
type recordSink struct{ clauses [][]int }

func (s *recordSink) AddClause(lits ...int) {
	s.clauses = append(s.clauses, append([]int(nil), lits...))
}

// TestEncodeClauseStreamMatchesEdgeListReference pins the conflict
// half of every encoder's clause stream to a reference built from a
// materialized edge list — the semantics of the pre-CSR Edges() loop.
// The CSR ForEachEdge migration must keep the stream identical, clause
// by clause and literal by literal, or DIMACS outputs and solver replay
// determinism silently drift.
func TestEncodeClauseStreamMatchesEdgeListReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		n := 6 + rng.Intn(10)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Freeze()
		var edges [][2]int
		g.ForEachEdge(func(u, v int) { edges = append(edges, [2]int{u, v}) })
		k := 3 + rng.Intn(4)
		for _, name := range PaperEncodingNames {
			enc, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			csp := NewCSP(g, k)
			sink := &recordSink{}
			st := EncodeInto(csp, enc, sink)
			total := st.StructuralClauses + st.ConflictClauses
			if len(sink.clauses) != total {
				t.Fatalf("%s: sink saw %d clauses, census says %d", name, len(sink.clauses), total)
			}
			// Reference conflict stream: ascending (u,v) edge order,
			// common domain values in order, negated u-cube then v-cube.
			var want [][]int
			for _, e := range edges {
				u, v := e[0], e[1]
				common := csp.Domain[u]
				if csp.Domain[v] < common {
					common = csp.Domain[v]
				}
				for c := 0; c < common; c++ {
					cl := st.Cubes[u][c].AppendNegated(nil)
					cl = st.Cubes[v][c].AppendNegated(cl)
					want = append(want, cl)
				}
			}
			got := sink.clauses[st.StructuralClauses:]
			if len(got) != len(want) {
				t.Fatalf("%s: %d conflict clauses, want %d", name, len(got), len(want))
			}
			for i := range want {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("%s: conflict clause %d = %v, want %v", name, i, got[i], want[i])
				}
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("%s: conflict clause %d = %v, want %v", name, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestEncodeIdenticalAcrossConstruction checks that the construction
// path (Builder vs FromEdgeStream, insertion order, duplicates) leaves
// no trace in the clause stream: equal edge sets yield byte-identical
// encodings.
func TestEncodeIdenticalAcrossConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 12
	var edges [][2]int
	for i := 0; i < 40; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, [2]int{u, v})
		}
	}
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g1 := b.Freeze()
	g2 := graph.FromEdgeStream(n, func(emit func(u, v int)) {
		for i := len(edges) - 1; i >= 0; i-- { // reversed + duplicated
			emit(edges[i][1], edges[i][0])
			emit(edges[i][0], edges[i][1])
		}
	})
	enc, err := ByName("ITE-linear-2+muldirect")
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := &recordSink{}, &recordSink{}
	EncodeInto(NewCSP(g1, 4), enc, s1)
	EncodeInto(NewCSP(g2, 4), enc, s2)
	if len(s1.clauses) != len(s2.clauses) {
		t.Fatalf("clause counts differ: %d vs %d", len(s1.clauses), len(s2.clauses))
	}
	for i := range s1.clauses {
		if len(s1.clauses[i]) != len(s2.clauses[i]) {
			t.Fatalf("clause %d differs: %v vs %v", i, s1.clauses[i], s2.clauses[i])
		}
		for j := range s1.clauses[i] {
			if s1.clauses[i][j] != s2.clauses[i][j] {
				t.Fatalf("clause %d differs: %v vs %v", i, s1.clauses[i], s2.clauses[i])
			}
		}
	}
}
