package core

import (
	"fmt"
	"math/rand"
)

// TreeNode is one node of an arbitrary ITE-tree shape (Sect. 3: "In
// general, the ITE tree for a CSP variable can have any structure").
// A node with both children nil is a leaf (a domain value slot); an
// internal node selects its left child when its indexing Boolean
// variable is true, else its right child.
type TreeNode struct {
	Left, Right *TreeNode
}

// IsLeaf reports whether the node is a domain-value slot.
func (t *TreeNode) IsLeaf() bool { return t.Left == nil && t.Right == nil }

// Leaves returns the number of leaves in the tree.
func (t *TreeNode) Leaves() int {
	if t == nil {
		return 0
	}
	if t.IsLeaf() {
		return 1
	}
	return t.Left.Leaves() + t.Right.Leaves()
}

// Depth returns the longest root-to-leaf path length in ITE operators.
func (t *TreeNode) Depth() int {
	if t == nil || t.IsLeaf() {
		return 0
	}
	l, r := t.Left.Depth(), t.Right.Depth()
	if r > l {
		l = r
	}
	return l + 1
}

// validate checks that the tree is a proper binary tree (every internal
// node has exactly two children).
func (t *TreeNode) validate() error {
	if t == nil {
		return fmt.Errorf("core: nil ITE tree node")
	}
	if t.IsLeaf() {
		return nil
	}
	if t.Left == nil || t.Right == nil {
		return fmt.Errorf("core: ITE node with a single child")
	}
	if err := t.Left.validate(); err != nil {
		return err
	}
	return t.Right.validate()
}

// TreeShape produces an ITE-tree shape with exactly d leaves for every
// domain size d >= 2.
type TreeShape func(d int) *TreeNode

// LinearShape is the chain of Fig. 1.a: each ITE selects one value or
// defers to the rest of the chain. NewITETree(LinearShape) generates
// the same cubes as NewSimple(KindITELinear).
func LinearShape(d int) *TreeNode {
	if d == 1 {
		return &TreeNode{}
	}
	return &TreeNode{Left: &TreeNode{}, Right: LinearShape(d - 1)}
}

// BalancedShape is the balanced tree of Fig. 1.b, splitting the larger
// half to the left.
func BalancedShape(d int) *TreeNode {
	if d == 1 {
		return &TreeNode{}
	}
	l := (d + 1) / 2
	return &TreeNode{Left: BalancedShape(l), Right: BalancedShape(d - l)}
}

// RandomShape returns a TreeShape drawing a uniformly random split at
// every node from rng — used by the tree-shape ablation to show that
// shape changes value-selection probabilities without changing
// satisfiability.
func RandomShape(rng *rand.Rand) TreeShape {
	var build func(d int) *TreeNode
	build = func(d int) *TreeNode {
		if d == 1 {
			return &TreeNode{}
		}
		l := 1 + rng.Intn(d-1)
		return &TreeNode{Left: build(l), Right: build(d - l)}
	}
	return build
}

// treeEncoding encodes each CSP variable with an arbitrary ITE tree.
// Unlike ITE-log's per-level variable sharing, every internal node gets
// its own indexing Boolean variable, which trivially satisfies the
// paper's restriction that a variable appears at most once on any
// root-to-leaf path.
type treeEncoding struct {
	name  string
	shape TreeShape
}

// NewITETree returns an encoding built from an arbitrary ITE-tree
// shape. The shape is validated lazily per domain size; a shape with
// the wrong number of leaves causes Encode to panic, since that is a
// programming error in the shape function.
func NewITETree(name string, shape TreeShape) Encoding {
	return treeEncoding{name: name, shape: shape}
}

func (e treeEncoding) Name() string      { return e.name }
func (e treeEncoding) Multivalued() bool { return false }

func (e treeEncoding) emitVar(d int, a *alloc, sink ClauseSink) []Cube {
	if d == 1 {
		return []Cube{nil}
	}
	t := e.shape(d)
	if err := t.validate(); err != nil {
		panic(err)
	}
	if got := t.Leaves(); got != d {
		panic(fmt.Sprintf("core: ITE tree shape %s produced %d leaves for domain %d",
			e.name, got, d))
	}
	cubes := make([]Cube, 0, d)
	var walk func(n *TreeNode, prefix Cube)
	walk = func(n *TreeNode, prefix Cube) {
		if n.IsLeaf() {
			cubes = append(cubes, append(Cube(nil), prefix...))
			return
		}
		v := a.block(1)[0]
		walk(n.Left, append(prefix, v))
		walk(n.Right, append(prefix[:len(prefix):len(prefix)], -v))
	}
	walk(t, nil)
	return cubes
}
