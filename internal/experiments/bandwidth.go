package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"fpgasat/internal/core"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/sat"
	"fpgasat/internal/search"
)

// BandwidthConfig drives the bandwidth-coloring study: the crosstalk
// (distance-annotated) instances solved to their exact minimum span by
// the incremental width search, once per encoding of the bandwidth
// family. The study compares how the order/ladder encoding's compact
// interval clauses fare against the windowed pairwise conflicts of the
// distance-aware direct and log encodings — the bandwidth analogue of
// the paper's encoding comparison.
type BandwidthConfig struct {
	// Instances defaults to mcnc.DistanceInstances().
	Instances []mcnc.Instance
	// Encodings are bandwidth-capable encoding names (default
	// core.BandwidthEncodingNames). Symmetry breaking is never applied:
	// the color-permutation heuristics are unsound under distance
	// constraints.
	Encodings []string
	// Timeout bounds each MinWidth search; 0 means none.
	Timeout  time.Duration
	Progress io.Writer
	Pool     *sat.Pool
}

// BandwidthRow is one (instance, encoding) measurement: the full
// MinWidth staircase — encode once at Hi, probe every width down to
// the proved minimum.
type BandwidthRow struct {
	Instance  string `json:"instance"`
	Crosstalk int    `json:"crosstalk"`
	Encoding  string `json:"encoding"`
	MinWidth  int    `json:"min_width"`
	SearchNS  int64  `json:"search_ns"`
	EncodeNS  int64  `json:"encode_ns"`
	Conflicts int64  `json:"conflicts"`
	Probes    int    `json:"probes"`
	Clauses   int64  `json:"clauses"`
	Vars      int    `json:"vars"`
}

// BandwidthResult aggregates the study for Markdown and JSON output
// (BENCH_bandwidth.json).
type BandwidthResult struct {
	Encodings []string
	Rows      []BandwidthRow
}

// countingSink counts clauses on the way into another sink-free encode
// pass; the study re-encodes once outside the timed search to report
// formula sizes.
type countingSink struct{ clauses int64 }

func (s *countingSink) AddClause(lits ...int) { s.clauses++ }

// RunBandwidth solves every distance instance to its proved minimum
// span with every bandwidth encoding, verifying each result against
// the instance's calibrated width.
func RunBandwidth(cfg BandwidthConfig) (*BandwidthResult, error) {
	insts := cfg.Instances
	if insts == nil {
		insts = mcnc.DistanceInstances()
	}
	encodings := cfg.Encodings
	if encodings == nil {
		encodings = core.BandwidthEncodingNames
	}
	res := &BandwidthResult{Encodings: encodings}
	for _, in := range insts {
		_, g, err := in.Build()
		if err != nil {
			return nil, err
		}
		for _, encName := range encodings {
			strat, err := core.ParseStrategy(encName + "/-")
			if err != nil {
				return nil, err
			}
			ctx := context.Background()
			cancel := context.CancelFunc(func() {})
			if cfg.Timeout > 0 {
				ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
			}
			start := time.Now()
			sr, err := search.MinWidth(ctx, g, search.Options{
				Strategy: strat,
				Hi:       in.RoutableW + 2,
				Pool:     cfg.Pool,
			})
			elapsed := time.Since(start)
			cancel()
			if err != nil {
				return nil, fmt.Errorf("experiments: bandwidth %s/%s: %w", in.Name, encName, err)
			}
			if !sr.ProvedOptimal || sr.MinWidth != in.RoutableW {
				return nil, fmt.Errorf("experiments: bandwidth %s/%s found width %d (proved %v), calibrated %d",
					in.Name, encName, sr.MinWidth, sr.ProvedOptimal, in.RoutableW)
			}
			var conflicts int64
			for _, p := range sr.Probes {
				conflicts += p.Conflicts
			}
			// Formula size at the search's upper bound, measured outside
			// the timed section.
			sink := &countingSink{}
			st := core.EncodeInto(core.NewCSP(g, in.RoutableW+2), strat.Encoding, sink)
			row := BandwidthRow{
				Instance: in.Name, Crosstalk: in.Crosstalk, Encoding: encName,
				MinWidth: sr.MinWidth, SearchNS: elapsed.Nanoseconds(),
				EncodeNS: sr.EncodeTime.Nanoseconds(), Conflicts: conflicts,
				Probes: len(sr.Probes), Clauses: sink.clauses, Vars: st.NumVars,
			}
			res.Rows = append(res.Rows, row)
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "%-12s %-8s span=%d %8.3fs %8d conflicts %8d clauses\n",
					in.Name, encName, row.MinWidth, elapsed.Seconds(), conflicts, row.Clauses)
			}
		}
	}
	return res, nil
}

// Markdown renders the study in the EXPERIMENTS.md table format: one
// row per instance, search time and clause count per encoding.
func (r *BandwidthResult) Markdown() string {
	var sb strings.Builder
	sb.WriteString("### Bandwidth-coloring study — crosstalk instances solved to their minimum span\n\n")
	header := []string{"Benchmark", "xtalk", "span"}
	for _, e := range r.Encodings {
		header = append(header, e+" [s]", e+" clauses")
	}
	byInstance := map[string][]BandwidthRow{}
	var order []string
	for _, row := range r.Rows {
		if _, ok := byInstance[row.Instance]; !ok {
			order = append(order, row.Instance)
		}
		byInstance[row.Instance] = append(byInstance[row.Instance], row)
	}
	var rows [][]string
	for _, name := range order {
		group := byInstance[name]
		cells := []string{name, fmt.Sprintf("%d", group[0].Crosstalk), fmt.Sprintf("%d", group[0].MinWidth)}
		for _, e := range r.Encodings {
			var found *BandwidthRow
			for i := range group {
				if group[i].Encoding == e {
					found = &group[i]
					break
				}
			}
			if found == nil {
				cells = append(cells, "—", "—")
				continue
			}
			cells = append(cells,
				fmt.Sprintf("%.3f", time.Duration(found.SearchNS).Seconds()),
				fmt.Sprintf("%d", found.Clauses))
		}
		rows = append(rows, cells)
	}
	sb.WriteString(markdownTable(header, rows))
	return sb.String()
}

// Report converts the study to the unified bench envelope: per-metric
// series with "instance/encoding" labels.
func (r *BandwidthResult) Report() *BenchReport {
	labels := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		labels[i] = row.Instance + "/" + row.Encoding
	}
	rows := r.Rows
	return &BenchReport{
		Schema: BenchSchema,
		Bench:  "bandwidth",
		Meta:   newBenchMeta(map[string]string{"encodings": strings.Join(r.Encodings, ",")}),
		Series: []BenchSeries{
			series("min_width", "count", labels, func(i int) float64 { return float64(rows[i].MinWidth) }),
			series("search_ns", "ns", labels, func(i int) float64 { return float64(rows[i].SearchNS) }),
			series("encode_ns", "ns", labels, func(i int) float64 { return float64(rows[i].EncodeNS) }),
			series("conflicts", "count", labels, func(i int) float64 { return float64(rows[i].Conflicts) }),
			series("probes", "count", labels, func(i int) float64 { return float64(rows[i].Probes) }),
			series("clauses", "count", labels, func(i int) float64 { return float64(rows[i].Clauses) }),
			series("vars", "count", labels, func(i int) float64 { return float64(rows[i].Vars) }),
		},
	}
}

// WriteJSON emits the machine-readable benchmark record
// (BENCH_bandwidth.json) in the unified bench schema.
func (r *BandwidthResult) WriteJSON(w io.Writer) error {
	return r.Report().WriteJSON(w)
}
