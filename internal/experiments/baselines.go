package experiments

import (
	"fmt"
	"sort"
	"strings"

	"fpgasat/internal/coloring"
	"fpgasat/internal/mcnc"
)

// BaselinesResult contrasts the SAT flow with the one-net-at-a-time
// approach of conventional FPGA detailed routers (the paper's
// introduction: SAT "considers all nets simultaneously", while most
// non-SAT routers commit to one net at a time). Assigning tracks one
// 2-pin net at a time is exactly greedy coloring of the conflict
// graph in some net order, so the baselines are order-driven greedy
// variants plus DSATUR; the SAT flow achieves the exact minimum W by
// construction (calibrated chromatic number).
type BaselinesResult struct {
	Rows []BaselineRow
}

// BaselineRow is one instance's comparison.
type BaselineRow struct {
	Instance    string
	MinW        int // exact minimum channel width (SAT flow)
	GreedyOrder int // greedy, netlist order
	GreedyDeg   int // greedy, most-constrained (highest degree) first
	DSATUR      int
}

// RunBaselines measures the channel width every baseline needs on
// each instance.
func RunBaselines(instances []mcnc.Instance) (*BaselinesResult, error) {
	if instances == nil {
		instances = mcnc.Table2Instances()
	}
	res := &BaselinesResult{}
	for _, in := range instances {
		_, g, err := in.Build()
		if err != nil {
			return nil, err
		}
		_, natural := coloring.Greedy(g, nil)

		order := make([]int, g.N())
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			if g.Degree(order[a]) != g.Degree(order[b]) {
				return g.Degree(order[a]) > g.Degree(order[b])
			}
			return order[a] < order[b]
		})
		_, byDeg := coloring.Greedy(g, order)
		_, dsatur := coloring.DSATUR(g)

		res.Rows = append(res.Rows, BaselineRow{
			Instance:    in.Name,
			MinW:        in.RoutableW,
			GreedyOrder: natural,
			GreedyDeg:   byDeg,
			DSATUR:      dsatur,
		})
	}
	return res, nil
}

// ExcessTracks returns the total number of extra tracks each baseline
// needs beyond the exact minimum, summed over instances.
func (r *BaselinesResult) ExcessTracks() (greedyOrder, greedyDeg, dsatur int) {
	for _, row := range r.Rows {
		greedyOrder += row.GreedyOrder - row.MinW
		greedyDeg += row.GreedyDeg - row.MinW
		dsatur += row.DSATUR - row.MinW
	}
	return
}

// Markdown renders the comparison.
func (r *BaselinesResult) Markdown() string {
	var sb strings.Builder
	sb.WriteString("### One-net-at-a-time baselines vs the SAT flow — channel width W needed\n\n")
	sb.WriteString("Greedy track assignment in net order is what conventional routers do; ")
	sb.WriteString("only the SAT flow both achieves and *proves* the minimum.\n\n")
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Instance,
			fmt.Sprintf("**%d** (proven)", row.MinW),
			markExcess(row.GreedyOrder, row.MinW),
			markExcess(row.GreedyDeg, row.MinW),
			markExcess(row.DSATUR, row.MinW),
		})
	}
	go1, go2, go3 := r.ExcessTracks()
	rows = append(rows, []string{"**Total excess tracks**", "0",
		fmt.Sprintf("+%d", go1), fmt.Sprintf("+%d", go2), fmt.Sprintf("+%d", go3)})
	sb.WriteString(markdownTable(
		[]string{"Benchmark", "SAT flow", "greedy (net order)", "greedy (max degree)", "DSATUR"},
		rows))
	return sb.String()
}

func markExcess(got, min int) string {
	if got == min {
		return fmt.Sprintf("%d", got)
	}
	return fmt.Sprintf("%d (+%d)", got, got-min)
}
