package experiments

// The unified schema of the committed BENCH_*.json artifacts
// (BENCH_scale.json, BENCH_portfolio.json, BENCH_bandwidth.json). Every
// study serializes as one BenchReport: run metadata (when, which Go,
// which study knobs) plus named series of labeled points, so tooling
// can diff the perf trajectory across PRs without per-study parsers.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// BenchSchema identifies the envelope version in every report.
const BenchSchema = "fpgasat-bench/v1"

// BenchReport is the envelope of a committed benchmark artifact.
type BenchReport struct {
	// Schema is always BenchSchema.
	Schema string `json:"schema"`
	// Bench names the study ("scale", "portfolio.share", "bandwidth").
	Bench string `json:"bench"`
	// Meta records when and how the study ran.
	Meta BenchMeta `json:"meta"`
	// Series are the study's measurements: one named series per metric,
	// one labeled point per instance / scale factor / encoding.
	Series []BenchSeries `json:"series"`
}

// BenchMeta is the run-metadata block of a report.
type BenchMeta struct {
	// GeneratedAt is the RFC 3339 UTC timestamp of the run.
	GeneratedAt string `json:"generated_at,omitempty"`
	// GoVersion is runtime.Version() of the generating binary.
	GoVersion string `json:"go_version,omitempty"`
	// Params are the study knobs (encoding, lanes, seed, ...) as
	// strings, so the envelope stays study-agnostic.
	Params map[string]string `json:"params,omitempty"`
}

// BenchSeries is one metric measured across the study's subjects.
type BenchSeries struct {
	Name string `json:"name"`
	// Unit documents the value dimension ("ns", "count", "bytes",
	// "ratio", ...).
	Unit   string       `json:"unit,omitempty"`
	Points []BenchPoint `json:"points"`
}

// BenchPoint is one labeled measurement of a series.
type BenchPoint struct {
	// Label identifies the subject: an instance name, a scale factor
	// ("100x"), or an encoding name.
	Label string  `json:"label"`
	Value float64 `json:"value"`
}

// newBenchMeta stamps a metadata block for a run happening now.
func newBenchMeta(params map[string]string) BenchMeta {
	return BenchMeta{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Params:      params,
	}
}

// series builds one BenchSeries by projecting a value out of each
// labeled subject.
func series(name, unit string, labels []string, value func(i int) float64) BenchSeries {
	s := BenchSeries{Name: name, Unit: unit}
	for i, l := range labels {
		s.Points = append(s.Points, BenchPoint{Label: l, Value: value(i)})
	}
	return s
}

// WriteJSON emits the report as indented JSON — the exact bytes
// committed as BENCH_<bench>.json.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	if r.Schema == "" {
		r.Schema = BenchSchema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseBenchReport reads a committed artifact back, rejecting foreign
// schemas so tooling fails loudly on format drift.
func ParseBenchReport(r io.Reader) (*BenchReport, error) {
	var rep BenchReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("experiments: parsing bench report: %w", err)
	}
	if rep.Schema != BenchSchema {
		return nil, fmt.Errorf("experiments: bench report schema %q, want %q", rep.Schema, BenchSchema)
	}
	return &rep, nil
}
