package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fpgasat/internal/mcnc"
)

// TestCommittedBenchArtifactsShareSchema pins the unified bench schema
// over every committed BENCH_*.json: all parse, all carry the envelope
// version, run metadata and at least one non-empty named series.
func TestCommittedBenchArtifactsShareSchema(t *testing.T) {
	matches, err := filepath.Glob("../../BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"BENCH_scale.json":     "scale",
		"BENCH_portfolio.json": "portfolio.share",
		"BENCH_bandwidth.json": "bandwidth",
	}
	seen := map[string]bool{}
	for _, path := range matches {
		name := filepath.Base(path)
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ParseBenchReport(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if bench, ok := want[name]; ok {
			seen[name] = true
			if rep.Bench != bench {
				t.Errorf("%s: bench %q, want %q", name, rep.Bench, bench)
			}
		}
		if rep.Meta.GeneratedAt == "" || rep.Meta.GoVersion == "" {
			t.Errorf("%s: incomplete run metadata %+v", name, rep.Meta)
		}
		if _, err := time.Parse(time.RFC3339, rep.Meta.GeneratedAt); err != nil {
			t.Errorf("%s: generated_at %q is not RFC 3339", name, rep.Meta.GeneratedAt)
		}
		if len(rep.Series) == 0 {
			t.Errorf("%s: no series", name)
		}
		for _, s := range rep.Series {
			if s.Name == "" || len(s.Points) == 0 {
				t.Errorf("%s: empty series %+v", name, s)
			}
		}
	}
	for name := range want {
		if !seen[name] {
			t.Errorf("committed artifact %s is missing", name)
		}
	}
}

// TestBenchReportRoundTrip checks WriteJSON/ParseBenchReport and the
// foreign-schema rejection.
func TestBenchReportRoundTrip(t *testing.T) {
	rep := &BenchReport{
		Bench: "unit",
		Meta:  newBenchMeta(map[string]string{"k": "v"}),
		Series: []BenchSeries{
			series("m", "count", []string{"a", "b"}, func(i int) float64 { return float64(i) }),
		},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseBenchReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != BenchSchema || got.Bench != "unit" || len(got.Series) != 1 || len(got.Series[0].Points) != 2 {
		t.Fatalf("round trip mangled the report: %+v", got)
	}
	if _, err := ParseBenchReport(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

// TestBandwidthSmoke runs the bandwidth study on its smallest instance
// with the full encoding family and checks the calibration cross-check,
// the Markdown table and the JSON envelope.
func TestBandwidthSmoke(t *testing.T) {
	in, err := mcnc.ByName("term1.x2")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunBandwidth(BandwidthConfig{Instances: []mcnc.Instance{in}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(r.Encodings) {
		t.Fatalf("%d rows for %d encodings", len(r.Rows), len(r.Encodings))
	}
	for _, row := range r.Rows {
		if row.MinWidth != in.RoutableW {
			t.Errorf("%s/%s: span %d, want %d", row.Instance, row.Encoding, row.MinWidth, in.RoutableW)
		}
		if row.Clauses <= 0 || row.Vars <= 0 || row.Probes < 1 {
			t.Errorf("%s/%s: degenerate measurement %+v", row.Instance, row.Encoding, row)
		}
	}
	md := r.Markdown()
	if !strings.Contains(md, "term1.x2") || !strings.Contains(md, "order [s]") {
		t.Fatalf("markdown lacks expected cells:\n%s", md)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := ParseBenchReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bench != "bandwidth" {
		t.Fatalf("bench %q, want bandwidth", rep.Bench)
	}
}
