// Package experiments regenerates every table and figure of the
// paper's evaluation (Sect. 2 Table 1, Sect. 3 Fig. 1, Sect. 6
// Table 2, the routable-configuration comparison and the portfolio
// study), plus an encoding-size ablation. Results are rendered as
// Markdown so they can be diffed against EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"fpgasat/internal/core"
	"fpgasat/internal/graph"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/sat"
)

// Timing is the cost breakdown of one (instance, strategy, width)
// solve, mirroring the paper's "translation to graph coloring +
// translation to CNF + SAT solving" accounting.
type Timing struct {
	Translate time.Duration // netlist -> global routing -> conflict graph
	Encode    time.Duration // symmetry breaking + CNF generation
	Solve     time.Duration
	Status    sat.Status
	Conflicts int64
	Vars      int
	Clauses   int
}

// Total returns the end-to-end time, the quantity Table 2 reports.
func (t Timing) Total() time.Duration { return t.Translate + t.Encode + t.Solve }

// RunStrategy times one strategy on a prebuilt conflict graph. The
// translate duration is supplied by the caller (it is shared across
// strategies, but the paper charges it to every run, so we do too).
// A zero timeout means no timeout. pool, when non-nil, supplies the
// solver, so a sweep reuses clause-arena and watch-list capacity
// between runs; nil solves on a fresh solver.
func RunStrategy(g *graph.Graph, k int, s core.Strategy, translate time.Duration, timeout time.Duration, pool *sat.Pool) Timing {
	encStart := time.Now()
	enc := s.EncodeGraph(g, k)
	encDur := time.Since(encStart)

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	solveStart := time.Now()
	res := sat.SolveCNFReusing(ctx, pool, enc.CNF, sat.Options{})
	solveDur := time.Since(solveStart)

	// For satisfiable results, decoding and verification are part of
	// the flow's correctness guarantee; include them in solve time.
	if res.Status == sat.Sat {
		if _, err := enc.DecodeVerify(res.Model); err != nil {
			panic(fmt.Sprintf("experiments: %s produced an invalid model: %v", s.Name(), err))
		}
		solveDur = time.Since(solveStart)
	}
	return Timing{
		Translate: translate,
		Encode:    encDur,
		Solve:     solveDur,
		Status:    res.Status,
		Conflicts: res.Stats.Conflicts,
		Vars:      enc.CNF.NumVars,
		Clauses:   enc.CNF.NumClauses(),
	}
}

// BuildInstance regenerates an instance's conflict graph, returning it
// with the translation time (netlist generation + global routing +
// conflict-graph extraction).
func BuildInstance(in mcnc.Instance) (*graph.Graph, time.Duration, error) {
	start := time.Now()
	_, g, err := in.Build()
	if err != nil {
		return nil, 0, err
	}
	return g, time.Since(start), nil
}

// fmtDur renders a duration in seconds with adaptive precision, with a
// ">" prefix for runs that hit the timeout.
func fmtDur(d time.Duration, timedOut bool) string {
	prefix := ""
	if timedOut {
		prefix = ">"
	}
	s := d.Seconds()
	switch {
	case s >= 100:
		return fmt.Sprintf("%s%.0f", prefix, s)
	case s >= 10:
		return fmt.Sprintf("%s%.1f", prefix, s)
	default:
		return fmt.Sprintf("%s%.2f", prefix, s)
	}
}

// markdownTable renders rows as a Markdown table with the given
// header.
func markdownTable(header []string, rows [][]string) string {
	var sb strings.Builder
	sb.WriteString("| " + strings.Join(header, " | ") + " |\n")
	seps := make([]string, len(header))
	for i := range seps {
		seps[i] = "---"
	}
	sb.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, r := range rows {
		sb.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return sb.String()
}
