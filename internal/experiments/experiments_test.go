package experiments

import (
	"strings"
	"testing"
	"time"

	"fpgasat/internal/core"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/sat"
	"fpgasat/internal/symmetry"
)

func TestTable1MatchesPaper(t *testing.T) {
	tbl := RunTable1()
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	log, direct, muldirect := tbl.Rows[0], tbl.Rows[1], tbl.Rows[2]

	// Log: 2 bits per vertex, 3 conflict clauses, 2 excluded-illegal-
	// values clauses, nothing else (Table 1, first row).
	if log.Encoding != "log" || log.Vars != 4 {
		t.Fatalf("log row: %+v", log)
	}
	if len(log.AtLeastOne) != 0 || len(log.AtMostOne) != 0 ||
		len(log.Conflict) != 3 || len(log.Excluded) != 2 {
		t.Fatalf("log clause census: %+v", log)
	}
	wantLogConflicts := []string{
		"(l_v1 ∨ l_v2 ∨ l_w1 ∨ l_w2)",
		"(¬l_v1 ∨ l_v2 ∨ ¬l_w1 ∨ l_w2)",
		"(l_v1 ∨ ¬l_v2 ∨ l_w1 ∨ ¬l_w2)",
	}
	for i, want := range wantLogConflicts {
		if log.Conflict[i] != want {
			t.Errorf("log conflict %d = %s, want %s", i, log.Conflict[i], want)
		}
	}
	wantLogExcluded := []string{"(¬l_v1 ∨ ¬l_v2)", "(¬l_w1 ∨ ¬l_w2)"}
	for i, want := range wantLogExcluded {
		if log.Excluded[i] != want {
			t.Errorf("log excluded %d = %s, want %s", i, log.Excluded[i], want)
		}
	}

	// Direct: 2 ALO, 6 AMO, 3 conflicts, no exclusions.
	if direct.Vars != 6 || len(direct.AtLeastOne) != 2 || len(direct.AtMostOne) != 6 ||
		len(direct.Conflict) != 3 || len(direct.Excluded) != 0 {
		t.Fatalf("direct clause census: %+v", direct)
	}
	if direct.AtLeastOne[0] != "(x_v0 ∨ x_v1 ∨ x_v2)" {
		t.Errorf("direct ALO = %s", direct.AtLeastOne[0])
	}
	if direct.Conflict[0] != "(¬x_v0 ∨ ¬x_w0)" {
		t.Errorf("direct conflict = %s", direct.Conflict[0])
	}

	// Muldirect: like direct minus the at-most-one clauses.
	if len(muldirect.AtLeastOne) != 2 || len(muldirect.AtMostOne) != 0 ||
		len(muldirect.Conflict) != 3 || len(muldirect.Excluded) != 0 {
		t.Fatalf("muldirect clause census: %+v", muldirect)
	}

	md := tbl.Markdown()
	for _, want := range []string{"Table 1", "| log |", "| direct |", "| muldirect |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}

func TestFigure1MatchesPaper(t *testing.T) {
	fig, err := RunFigure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Encodings) != 4 {
		t.Fatalf("%d encodings", len(fig.Encodings))
	}
	linear, itelog, log1, log2 := fig.Encodings[0], fig.Encodings[1], fig.Encodings[2], fig.Encodings[3]
	if linear.NumVars != 12 || itelog.NumVars != 4 || log1.NumVars != 7 || log2.NumVars != 5 {
		t.Fatalf("var counts: %d %d %d %d", linear.NumVars, itelog.NumVars, log1.NumVars, log2.NumVars)
	}
	// Fig 1.a: v0 by i0, v1 by ¬i0∧i1, v12 by all-negations.
	if linear.Patterns[0] != "i0" || linear.Patterns[1] != "¬i0∧i1" {
		t.Fatalf("ITE-linear patterns: %v", linear.Patterns[:2])
	}
	// Sect. 4 worked example for ITE-log-2+ITE-linear: v4,v5,v6.
	if log2.Patterns[4] != "i0∧¬i1∧i2" ||
		log2.Patterns[5] != "i0∧¬i1∧¬i2∧i3" ||
		log2.Patterns[6] != "i0∧¬i1∧¬i2∧¬i3" {
		t.Fatalf("ITE-log-2+ITE-linear patterns v4..v6: %v", log2.Patterns[4:7])
	}
	if !strings.Contains(fig.Markdown(), "Figure 1") {
		t.Error("markdown missing header")
	}
}

func quickInstances(t *testing.T) []mcnc.Instance {
	t.Helper()
	var out []mcnc.Instance
	for _, name := range []string{"term1", "9symml"} {
		in, err := mcnc.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, in)
	}
	return out
}

func TestTable2Smoke(t *testing.T) {
	cols := []string{"muldirect/-", "muldirect/s1", "ITE-log/s1", "ITE-linear-2+muldirect/s1"}
	r, err := RunTable2(Table2Config{
		Instances: quickInstances(t),
		Columns:   cols,
		Timeout:   2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Instances) != 2 || len(r.Cells[0]) != len(cols) {
		t.Fatalf("grid shape wrong: %dx%d", len(r.Instances), len(r.Cells[0]))
	}
	for ii := range r.Cells {
		for ci, c := range r.Cells[ii] {
			if c.Timing.Status != sat.Unsat {
				t.Errorf("%s %s: %v, want Unsat", r.Instances[ii], cols[ci], c.Timing.Status)
			}
			if c.Timing.Total() <= 0 {
				t.Errorf("nonpositive total time")
			}
		}
	}
	if r.Speedups[0] != 1.0 {
		t.Errorf("baseline speedup %v", r.Speedups[0])
	}
	md := r.Markdown()
	for _, want := range []string{"Table 2", "**Total**", "**Speedup vs muldirect/-**", "term1"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	wins := r.SymmetryWins()
	if wins[symmetry.None]+wins[symmetry.B1]+wins[symmetry.S1] == 0 {
		t.Error("symmetry win census empty")
	}
	if b := r.Best(); b < 0 || b >= len(cols) {
		t.Errorf("Best out of range: %d", b)
	}
}

func TestRoutableSmoke(t *testing.T) {
	r, err := RunRoutable(RoutableConfig{
		Instances: quickInstances(t),
		Encodings: []string{"muldirect", "ITE-log", "ITE-linear-2+muldirect"},
		Symmetry:  "s1",
		Timeout:   2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	for ii := range r.Times {
		for _, tm := range r.Times[ii] {
			if tm.Status != sat.Sat {
				t.Errorf("routable run returned %v", tm.Status)
			}
		}
	}
	if r.Spread() < 1 {
		t.Errorf("spread %v < 1", r.Spread())
	}
	if !strings.Contains(r.Markdown(), "Routable configurations") {
		t.Error("markdown missing header")
	}
}

func TestPortfolioSmoke(t *testing.T) {
	r, err := RunPortfolio(PortfolioConfig{
		Instances: quickInstances(t),
		Timeout:   2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Instances) != 2 || len(r.P3) != 2 || len(r.Winners3) != 2 {
		t.Fatalf("result shape: %+v", r)
	}
	if r.TotalSingle <= 0 || r.TotalP2 <= 0 || r.TotalP3 <= 0 {
		t.Fatal("nonpositive totals")
	}
	if r.SpeedupP2() <= 0 || r.SpeedupP3() <= 0 {
		t.Fatal("nonpositive speedups")
	}
	if !strings.Contains(r.Markdown(), "Portfolio study") {
		t.Error("markdown missing header")
	}
}

func TestSizesSmoke(t *testing.T) {
	in, err := mcnc.ByName("term1")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunSizes(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 15 {
		t.Fatalf("%d rows, want 15 encodings", len(r.Rows))
	}
	byName := map[string]SizeRow{}
	for _, row := range r.Rows {
		if row.Vars <= 0 || row.Clauses <= 0 {
			t.Errorf("%s: empty census", row.Encoding)
		}
		if row.Clauses != row.Structural+row.Conflict {
			t.Errorf("%s: clause split inconsistent", row.Encoding)
		}
		byName[row.Encoding] = row
	}
	// Structural expectations: ITE encodings need no structural
	// clauses; direct has more clauses than muldirect; log variables
	// are fewest.
	if byName["ITE-linear"].Structural != 0 || byName["ITE-log"].Structural != 0 {
		t.Error("ITE encodings should have no structural clauses")
	}
	if byName["direct"].Clauses <= byName["muldirect"].Clauses {
		t.Error("direct should have more clauses than muldirect")
	}
	if byName["log"].Vars >= byName["direct"].Vars {
		t.Error("log should use fewer variables than direct")
	}
	if !strings.Contains(r.Markdown(), "Encoding sizes") {
		t.Error("markdown missing header")
	}
}

func TestRunStrategyTimeout(t *testing.T) {
	in, err := mcnc.ByName("k2")
	if err != nil {
		t.Fatal(err)
	}
	g, translate, err := BuildInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	s := mustStrategy(t, "muldirect/-")
	var pool sat.Pool
	tm := RunStrategy(g, in.UnroutableW(), s, translate, time.Millisecond, &pool)
	if tm.Status == sat.Sat {
		t.Fatal("unsat instance reported Sat")
	}
	if tm.Translate != translate {
		t.Fatal("translate time not propagated")
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[string]string{
		"1.50":  fmtDur(1500*time.Millisecond, false),
		">12.0": fmtDur(12*time.Second, true),
		"150":   fmtDur(150*time.Second, false),
	}
	for want, got := range cases {
		if got != want {
			t.Errorf("fmtDur: got %q, want %q", got, want)
		}
	}
}

func mustStrategy(t *testing.T, s string) core.Strategy {
	t.Helper()
	st, err := core.ParseStrategy(s)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSolverCompareSmoke(t *testing.T) {
	r, err := RunSolverCompare(SolverCompareConfig{
		Instances: quickInstances(t),
		Timeout:   2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Profiles) < 2 || len(r.Instances) != 2 {
		t.Fatalf("shape: %v %v", r.Profiles, r.Instances)
	}
	for pi := range r.Profiles {
		if r.UnsatTotal[pi] <= 0 || r.SatTotal[pi] <= 0 {
			t.Fatal("nonpositive totals")
		}
	}
	if !strings.Contains(r.Markdown(), "Solver-profile comparison") {
		t.Error("markdown missing header")
	}
}

func TestTreeAblationSmoke(t *testing.T) {
	in, err := mcnc.ByName("term1")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunTreeAblation(TreeAblationConfig{
		Instance:    in,
		RandomTrees: 2,
		Symmetry:    symmetry.S1,
		Timeout:     2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Shapes) != 4 {
		t.Fatalf("%d shapes, want 4 (linear, balanced, 2 random)", len(r.Shapes))
	}
	if !strings.Contains(r.Markdown(), "ITE-tree shape ablation") {
		t.Error("markdown missing header")
	}
}

func TestSymmetryAblationSmoke(t *testing.T) {
	r, err := RunSymmetryAblation(SymmetryAblationConfig{
		Instances: quickInstances(t),
		Encoding:  "ITE-log",
		Timeout:   2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Columns) != 4 {
		t.Fatalf("columns: %v", r.Columns)
	}
	for _, col := range []string{"ITE-log/-", "ITE-log/b1", "ITE-log/s1", "ITE-log/c1"} {
		found := false
		for _, c := range r.Columns {
			if c == col {
				found = true
			}
		}
		if !found {
			t.Errorf("missing column %s", col)
		}
	}
	for ii := range r.Cells {
		for _, c := range r.Cells[ii] {
			if c.Timing.Status == sat.Sat {
				t.Error("ablation instance unexpectedly satisfiable")
			}
		}
	}
}

func TestBaselinesSmoke(t *testing.T) {
	r, err := RunBaselines(quickInstances(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.GreedyOrder < row.MinW || row.GreedyDeg < row.MinW || row.DSATUR < row.MinW {
			t.Fatalf("%s: a heuristic beat the proven minimum: %+v", row.Instance, row)
		}
	}
	a, b, c := r.ExcessTracks()
	if a < 0 || b < 0 || c < 0 {
		t.Fatal("negative excess")
	}
	if !strings.Contains(r.Markdown(), "One-net-at-a-time baselines") {
		t.Error("markdown missing header")
	}
}

func TestTable2TimeoutRendering(t *testing.T) {
	// Force a timeout on a hard instance and check the ">" and "≥"
	// markers appear in the rendered table.
	in, err := mcnc.ByName("k2")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunTable2(Table2Config{
		Instances: []mcnc.Instance{in},
		Columns:   []string{"muldirect/-", "ITE-log/s1"},
		Timeout:   10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.AnyCapped[0] {
		t.Skip("baseline finished within 10ms; cannot exercise timeout rendering")
	}
	md := r.Markdown()
	if !strings.Contains(md, ">") {
		t.Fatalf("capped-cell marker missing:\n%s", md)
	}
	// The speedup row carries a bound marker: "≥" when only the
	// baseline is capped, "≤" when only the other column is, "~" when
	// both are.
	if !strings.ContainsAny(md, "≥≤~") {
		t.Fatalf("speedup bound marker missing:\n%s", md)
	}
}
