package experiments

import (
	"fmt"
	"strings"

	"fpgasat/internal/core"
)

// Figure1 reproduces Fig. 1 of the paper: the indexing Boolean
// patterns of the four ITE-tree encodings for a CSP variable with 13
// domain values — rendered as the cube selecting each value, which
// fully determines the tree (every cube is one root-to-leaf path).
type Figure1 struct {
	Encodings []Figure1Encoding
}

// Figure1Encoding is one sub-figure: the encoding name, its variable
// count and the pattern of every domain value.
type Figure1Encoding struct {
	Name     string
	NumVars  int
	Patterns []string // Patterns[c] selects value v_c
}

// Fig1Domain is the domain size used by the paper's figure.
const Fig1Domain = 13

// RunFigure1 builds the four encodings of the figure.
func RunFigure1() (*Figure1, error) {
	names := []string{
		"ITE-linear",
		"ITE-log",
		"ITE-log-1+ITE-linear",
		"ITE-log-2+ITE-linear",
	}
	out := &Figure1{}
	for _, n := range names {
		enc, err := core.ByName(n)
		if err != nil {
			return nil, err
		}
		fe, err := describeEncoding(enc, Fig1Domain)
		if err != nil {
			return nil, err
		}
		out.Encodings = append(out.Encodings, fe)
	}
	return out, nil
}

// describeEncoding extracts the per-value patterns by encoding a
// single isolated CSP variable.
func describeEncoding(enc core.Encoding, d int) (Figure1Encoding, error) {
	cubes, nvars, err := core.DescribeVariable(enc, d)
	if err != nil {
		return Figure1Encoding{}, err
	}
	fe := Figure1Encoding{Name: enc.Name(), NumVars: nvars}
	for _, cube := range cubes {
		fe.Patterns = append(fe.Patterns, renderCube(cube))
	}
	return fe, nil
}

func renderCube(c core.Cube) string {
	if len(c) == 0 {
		return "⊤"
	}
	parts := make([]string, len(c))
	for i, l := range c {
		if l > 0 {
			parts[i] = fmt.Sprintf("i%d", l-1)
		} else {
			parts[i] = fmt.Sprintf("¬i%d", -l-1)
		}
	}
	return strings.Join(parts, "∧")
}

// Markdown renders the figure as one table per encoding.
func (f *Figure1) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### Figure 1 — ITE trees for a CSP variable with %d domain values\n\n", Fig1Domain)
	sb.WriteString("Each row gives the indexing Boolean pattern (root-to-leaf path) selecting the value.\n\n")
	for _, e := range f.Encodings {
		fmt.Fprintf(&sb, "**%s** (%d indexing variables)\n\n", e.Name, e.NumVars)
		rows := make([][]string, len(e.Patterns))
		for c, p := range e.Patterns {
			rows[c] = []string{fmt.Sprintf("v%d", c), p}
		}
		sb.WriteString(markdownTable([]string{"value", "selected when"}, rows))
		sb.WriteString("\n")
	}
	return sb.String()
}
