package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"fpgasat/internal/core"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/obs"
	"fpgasat/internal/portfolio"
	"fpgasat/internal/sat"
)

// PortfolioConfig controls the portfolio study of Sect. 6.
type PortfolioConfig struct {
	Instances []mcnc.Instance // defaults to mcnc.Table2Instances()
	Timeout   time.Duration
	Progress  io.Writer
	// Obs, when non-nil, receives per-strategy portfolio telemetry
	// (encode/solve timers, CNF sizes, wins, winner margin).
	Obs *obs.Registry
	// Pool, when non-nil, supplies reusable solvers to the single-
	// strategy baseline and every portfolio lane; nil keeps the
	// portfolio's default lane pool and fresh baseline solvers.
	Pool *sat.Pool
	// Verify and VerifyUnsat enable paranoid-mode answer checking of
	// every portfolio run; LaneTimeout and MaxRetries configure the
	// per-lane watchdog and budgeted retry policy (see
	// portfolio.Options).
	Verify      bool
	VerifyUnsat bool
	LaneTimeout time.Duration
	MaxRetries  int
}

// PortfolioResult compares the best single strategy against the
// paper's 2- and 3-strategy portfolios on the unroutable
// configurations.
type PortfolioResult struct {
	Instances []string
	// Per instance: single strategy, portfolio of 2, portfolio of 3.
	Single, P2, P3 []time.Duration
	// Winners3[i] is the winning strategy of the 3-portfolio.
	Winners3    []string
	TotalSingle time.Duration
	TotalP2     time.Duration
	TotalP3     time.Duration
}

// RunPortfolio measures wall-clock time of (a) the best single
// strategy ITE-linear-2+muldirect/s1, (b) the paper's 2-strategy
// portfolio and (c) its 3-strategy portfolio on each unroutable
// configuration. Portfolio members run concurrently; on a single-core
// host the portfolio's advantage comes purely from strategy variance
// (see EXPERIMENTS.md).
func RunPortfolio(cfg PortfolioConfig) (*PortfolioResult, error) {
	if cfg.Instances == nil {
		cfg.Instances = mcnc.Table2Instances()
	}
	single, err := core.ParseStrategy("ITE-linear-2+muldirect/s1")
	if err != nil {
		return nil, err
	}
	p2, err := portfolio.PaperPortfolio2()
	if err != nil {
		return nil, err
	}
	p3, err := portfolio.PaperPortfolio3()
	if err != nil {
		return nil, err
	}
	laneOpts := portfolio.Options{
		Metrics:     cfg.Obs,
		Pool:        cfg.Pool,
		Verify:      cfg.Verify,
		VerifyUnsat: cfg.VerifyUnsat,
		LaneTimeout: cfg.LaneTimeout,
		MaxRetries:  cfg.MaxRetries,
	}
	if laneOpts.Pool == nil {
		laneOpts.Pool = portfolio.DefaultLanePool()
	}
	res := &PortfolioResult{}
	for _, in := range cfg.Instances {
		g, translate, err := BuildInstance(in)
		if err != nil {
			return nil, err
		}
		w := in.UnroutableW()

		t := RunStrategy(g, w, single, translate, cfg.Timeout, cfg.Pool)
		res.Single = append(res.Single, t.Total())
		res.TotalSingle += t.Total()

		for pi, members := range [][]core.Strategy{p2, p3} {
			start := time.Now()
			ctx := context.Background()
			cancel := context.CancelFunc(func() {})
			if cfg.Timeout > 0 {
				ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
			}
			winner, _, err := portfolio.RunHardened(ctx, g, w, members, laneOpts)
			cancel()
			if err != nil {
				return nil, fmt.Errorf("experiments: %s portfolio: %w", in.Name, err)
			}
			if winner.Status == sat.Sat {
				return nil, fmt.Errorf("experiments: %s at W=%d claims routable; calibration broken", in.Name, w)
			}
			elapsed := translate + time.Since(start)
			if pi == 0 {
				res.P2 = append(res.P2, elapsed)
				res.TotalP2 += elapsed
			} else {
				res.P3 = append(res.P3, elapsed)
				res.TotalP3 += elapsed
				res.Winners3 = append(res.Winners3, winner.Strategy.Name())
			}
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "%-10s portfolio-%d %8.2fs winner=%s\n",
					in.Name, pi+2, elapsed.Seconds(), winner.Strategy.Name())
			}
		}
		res.Instances = append(res.Instances, in.Name)
	}
	return res, nil
}

// SpeedupP2 returns total single / total 2-portfolio.
func (r *PortfolioResult) SpeedupP2() float64 {
	return r.TotalSingle.Seconds() / r.TotalP2.Seconds()
}

// SpeedupP3 returns total single / total 3-portfolio.
func (r *PortfolioResult) SpeedupP3() float64 {
	return r.TotalSingle.Seconds() / r.TotalP3.Seconds()
}

// Markdown renders the comparison.
func (r *PortfolioResult) Markdown() string {
	var sb strings.Builder
	sb.WriteString("### Portfolio study — wall-clock time [s] proving unroutability at W-1\n\n")
	header := []string{"Benchmark", "ITE-linear-2+muldirect/s1", "portfolio of 2", "portfolio of 3", "3-portfolio winner"}
	var rows [][]string
	for i, name := range r.Instances {
		rows = append(rows, []string{
			name,
			fmtDur(r.Single[i], false),
			fmtDur(r.P2[i], false),
			fmtDur(r.P3[i], false),
			r.Winners3[i],
		})
	}
	rows = append(rows, []string{"**Total**",
		fmtDur(r.TotalSingle, false), fmtDur(r.TotalP2, false), fmtDur(r.TotalP3, false), ""})
	rows = append(rows, []string{"**Speedup vs single**", "1.00×",
		fmt.Sprintf("%.2f×", r.SpeedupP2()), fmt.Sprintf("%.2f×", r.SpeedupP3()), ""})
	sb.WriteString(markdownTable(header, rows))
	return sb.String()
}
