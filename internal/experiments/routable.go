package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"fpgasat/internal/core"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/sat"
)

// RoutableConfig controls the routable-configuration experiment
// (Sect. 6: "most of the encodings had comparable and very efficient
// performance when finding solutions for configurations that were
// routable").
type RoutableConfig struct {
	Instances []mcnc.Instance // defaults to mcnc.Table2Instances()
	Encodings []string        // defaults to all 14 paper encodings
	Symmetry  string          // heuristic applied to every encoding ("", "b1", "s1")
	Timeout   time.Duration
	Progress  io.Writer
	// Pool, when non-nil, supplies reusable solvers for every timed
	// solve; nil measures on fresh solvers.
	Pool *sat.Pool
}

// RoutableResult is the grid of satisfiable-solve times.
type RoutableResult struct {
	Encodings []string
	Instances []string
	Times     [][]Timing // [instance][encoding]
	Totals    []time.Duration
	Symmetry  string
}

// RunRoutable solves every instance at its routable width W under
// every encoding; all formulas are satisfiable and each decoded
// routing is verified.
func RunRoutable(cfg RoutableConfig) (*RoutableResult, error) {
	if cfg.Instances == nil {
		cfg.Instances = mcnc.Table2Instances()
	}
	if cfg.Encodings == nil {
		cfg.Encodings = core.PaperEncodingNames
	}
	res := &RoutableResult{Encodings: cfg.Encodings, Symmetry: cfg.Symmetry}
	res.Totals = make([]time.Duration, len(cfg.Encodings))
	for _, in := range cfg.Instances {
		g, translate, err := BuildInstance(in)
		if err != nil {
			return nil, err
		}
		row := make([]Timing, len(cfg.Encodings))
		for ei, encName := range cfg.Encodings {
			spec := encName
			if cfg.Symmetry != "" {
				spec += "/" + cfg.Symmetry
			}
			s, err := core.ParseStrategy(spec)
			if err != nil {
				return nil, err
			}
			t := RunStrategy(g, in.RoutableW, s, translate, cfg.Timeout, cfg.Pool)
			if t.Status == sat.Unsat {
				return nil, fmt.Errorf("experiments: %s at W=%d claims unroutable; calibration broken",
					in.Name, in.RoutableW)
			}
			row[ei] = t
			res.Totals[ei] += t.Total()
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "%-10s W=%d %-28s %8.2fs %s\n",
					in.Name, in.RoutableW, spec, t.Total().Seconds(), t.Status)
			}
		}
		res.Instances = append(res.Instances, in.Name)
		res.Times = append(res.Times, row)
	}
	return res, nil
}

// Markdown renders the grid with a totals row.
func (r *RoutableResult) Markdown() string {
	var sb strings.Builder
	sym := r.Symmetry
	if sym == "" {
		sym = "no symmetry breaking"
	} else {
		sym = "symmetry heuristic " + sym
	}
	fmt.Fprintf(&sb, "### Routable configurations — total CPU time [s] finding a detailed routing at W (%s)\n\n", sym)
	header := append([]string{"Benchmark"}, r.Encodings...)
	var rows [][]string
	for ii, name := range r.Instances {
		row := []string{name}
		for _, t := range r.Times[ii] {
			row = append(row, fmtDur(t.Total(), t.Status == sat.Unknown))
		}
		rows = append(rows, row)
	}
	totalRow := []string{"**Total**"}
	for _, t := range r.Totals {
		totalRow = append(totalRow, fmtDur(t, false))
	}
	rows = append(rows, totalRow)
	sb.WriteString(markdownTable(header, rows))
	return sb.String()
}

// Spread returns max/min of the encoding totals — the paper's
// "comparable performance" claim corresponds to a small spread.
func (r *RoutableResult) Spread() float64 {
	min, max := r.Totals[0], r.Totals[0]
	for _, t := range r.Totals {
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	if min == 0 {
		return 0
	}
	return max.Seconds() / min.Seconds()
}
