package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"fpgasat/internal/coloring"
	"fpgasat/internal/core"
	"fpgasat/internal/fpga"
)

// ScaleConfig drives the scaling study: tile-templated instances far
// beyond the MCNC suite (factor 100 exceeds 10⁵ nets), measured through
// generation and streaming encode. Solving is deliberately excluded —
// the study answers whether the representation and encode layers keep
// up, and the instances' minimum width is known by construction.
type ScaleConfig struct {
	// Factors are the scale multipliers to measure (default 1, 10, 100).
	Factors []int
	// Encoding is the paper-style encoding name streamed at each point
	// (default "ITE-linear-2+muldirect", the portfolio workhorse).
	Encoding string
	Progress io.Writer
}

// ScaleRow is one scale point's measurement.
type ScaleRow struct {
	Factor       int     `json:"factor"`
	Rows         int     `json:"rows"`
	Cols         int     `json:"cols"`
	W            int     `json:"w"`
	Nets         int     `json:"nets"`
	Edges        int     `json:"edges"`
	CliqueLB     int     `json:"clique_lb"`
	GraphBytes   int     `json:"graph_bytes"` // peak CSR storage of the conflict graph
	GenNS        int64   `json:"gen_ns"`
	EncodeNS     int64   `json:"encode_ns"`
	Vars         int     `json:"vars"`
	Clauses      int     `json:"clauses"`
	ClausesPerSc float64 `json:"clauses_per_sec"`
}

// ScaleResult aggregates the scaling study for Markdown and JSON
// output (BENCH_scale.json).
type ScaleResult struct {
	Bench    string     `json:"bench"` // "scale"
	Encoding string     `json:"encoding"`
	Rows     []ScaleRow `json:"rows"`
}

// nullSink absorbs streamed clauses, isolating emission cost.
type nullSink struct{ clauses int }

func (s *nullSink) AddClause(lits ...int) { s.clauses++ }

// RunScale generates and encodes one instance per scale factor,
// verifying each instance's known-width witness before timing it.
func RunScale(cfg ScaleConfig) (*ScaleResult, error) {
	factors := cfg.Factors
	if len(factors) == 0 {
		factors = []int{1, 10, 100}
	}
	encName := cfg.Encoding
	if encName == "" {
		encName = "ITE-linear-2+muldirect"
	}
	enc, err := core.ByName(encName)
	if err != nil {
		return nil, err
	}
	res := &ScaleResult{Bench: "scale", Encoding: encName}
	for _, factor := range factors {
		p := fpga.ScaledFabric(factor)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "scale %dx: generating %dx%d fabric W=%d\n",
				factor, p.Cols, p.Rows, p.ChannelWidth)
		}
		genStart := time.Now()
		g, stats, err := fpga.GenerateScaled(p)
		if err != nil {
			return nil, err
		}
		genNS := time.Since(genStart).Nanoseconds()
		// The instance is W-routable by construction; check the witness
		// (outside the timed sections) so the numbers describe a real
		// routing problem, not a malformed graph.
		if err := coloring.Verify(g, fpga.BlockColoring(p), p.ChannelWidth); err != nil {
			return nil, fmt.Errorf("scale %dx: block coloring witness broken: %v", factor, err)
		}
		if stats.CliqueLB != p.ChannelWidth {
			return nil, fmt.Errorf("scale %dx: clique bound %d != W=%d", factor, stats.CliqueLB, p.ChannelWidth)
		}
		csp := core.NewCSP(g, p.ChannelWidth)
		sink := &nullSink{}
		encStart := time.Now()
		st := core.EncodeInto(csp, enc, sink)
		encNS := time.Since(encStart).Nanoseconds()
		row := ScaleRow{
			Factor: factor, Rows: p.Rows, Cols: p.Cols, W: p.ChannelWidth,
			Nets: stats.Nets, Edges: stats.Edges, CliqueLB: stats.CliqueLB,
			GraphBytes: stats.GraphBytes,
			GenNS:      genNS, EncodeNS: encNS,
			Vars: st.NumVars, Clauses: sink.clauses,
			ClausesPerSc: float64(sink.clauses) / (float64(encNS) / 1e9),
		}
		res.Rows = append(res.Rows, row)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "scale %dx: %d nets, %d edges, %d clauses in %s\n",
				factor, row.Nets, row.Edges, row.Clauses, time.Duration(encNS).Round(time.Millisecond))
		}
	}
	return res, nil
}

// Markdown renders the scaling study as the table recorded in
// EXPERIMENTS.md.
func (r *ScaleResult) Markdown() string {
	var sb strings.Builder
	sb.WriteString("### Scaling study: tile-templated instances (encoding " + r.Encoding + ")\n\n")
	header := []string{"scale", "fabric", "W", "nets", "edges", "graph", "generate", "encode", "clauses", "clauses/s"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d×", row.Factor),
			fmt.Sprintf("%d×%d", row.Cols, row.Rows),
			fmt.Sprintf("%d", row.W),
			fmt.Sprintf("%d", row.Nets),
			fmt.Sprintf("%d", row.Edges),
			fmtBytes(row.GraphBytes),
			time.Duration(row.GenNS).Round(time.Millisecond).String(),
			time.Duration(row.EncodeNS).Round(time.Millisecond).String(),
			fmt.Sprintf("%d", row.Clauses),
			fmt.Sprintf("%.2gM", row.ClausesPerSc/1e6),
		})
	}
	sb.WriteString(markdownTable(header, rows))
	return sb.String()
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Report converts the study to the unified bench envelope: one series
// per metric, one point per scale factor.
func (r *ScaleResult) Report() *BenchReport {
	labels := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		labels[i] = fmt.Sprintf("%dx", row.Factor)
	}
	rows := r.Rows
	return &BenchReport{
		Schema: BenchSchema,
		Bench:  r.Bench,
		Meta:   newBenchMeta(map[string]string{"encoding": r.Encoding}),
		Series: []BenchSeries{
			series("nets", "count", labels, func(i int) float64 { return float64(rows[i].Nets) }),
			series("edges", "count", labels, func(i int) float64 { return float64(rows[i].Edges) }),
			series("graph_bytes", "bytes", labels, func(i int) float64 { return float64(rows[i].GraphBytes) }),
			series("gen_ns", "ns", labels, func(i int) float64 { return float64(rows[i].GenNS) }),
			series("encode_ns", "ns", labels, func(i int) float64 { return float64(rows[i].EncodeNS) }),
			series("vars", "count", labels, func(i int) float64 { return float64(rows[i].Vars) }),
			series("clauses", "count", labels, func(i int) float64 { return float64(rows[i].Clauses) }),
			series("clauses_per_sec", "1/s", labels, func(i int) float64 { return rows[i].ClausesPerSc }),
		},
	}
}

// WriteJSON emits the machine-readable benchmark record
// (BENCH_scale.json) in the unified bench schema.
func (r *ScaleResult) WriteJSON(w io.Writer) error {
	return r.Report().WriteJSON(w)
}
