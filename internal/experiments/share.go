package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"fpgasat/internal/core"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/obs"
	"fpgasat/internal/portfolio"
	"fpgasat/internal/sat"
	"fpgasat/internal/share"
)

// ShareCompareConfig controls the clause-sharing study: the same
// replicated-lane portfolio proving unroutability at W-1, once blind
// (seeded lanes, no exchange) and once cooperating through the
// internal/share exchange.
type ShareCompareConfig struct {
	Instances []mcnc.Instance // defaults to mcnc.Table2Instances()
	Strategy  string          // lane strategy, default "ITE-linear-2+muldirect/s1"
	Lanes     int             // same-strategy lanes per run, default 2
	Seed      int64           // lane diversification seed, default 1
	// Repeats runs every (instance, mode) pair this many times with
	// seeds Seed, Seed+1, ... and records the summed wall clock.
	// Refutation time under seeded search is heavy-tailed; a single
	// seed can swing an instance's comparison either way, so the
	// recorded numbers should aggregate a few. Default 1.
	Repeats  int
	Share    share.Options // exchange tuning for the cooperating run
	Timeout  time.Duration
	Progress io.Writer
	Pool     *sat.Pool
}

// ShareCompareRow is one instance's blind-vs-shared measurement.
type ShareCompareRow struct {
	Instance string  `json:"instance"`
	W        int     `json:"w"` // unroutable width being refuted
	BlindNS  int64   `json:"blind_ns"`
	SharedNS int64   `json:"shared_ns"`
	Speedup  float64 `json:"speedup"` // blind / shared wall clock
	// Summed solver conflicts across lanes — the work the exchange is
	// supposed to save.
	BlindConflicts  int64 `json:"blind_conflicts"`
	SharedConflicts int64 `json:"shared_conflicts"`
	// Exchange activity of the shared run.
	Exported int64 `json:"exported"`
	Imported int64 `json:"imported"`
}

// ShareCompareResult aggregates the study for Markdown and JSON output.
type ShareCompareResult struct {
	Bench         string            `json:"bench"` // "portfolio.share"
	Strategy      string            `json:"strategy"`
	Lanes         int               `json:"lanes"`
	Seed          int64             `json:"seed"`
	Repeats       int               `json:"repeats"` // times are summed over seeds Seed..Seed+Repeats-1
	Rows          []ShareCompareRow `json:"rows"`
	TotalBlindNS  int64             `json:"total_blind_ns"`
	TotalSharedNS int64             `json:"total_shared_ns"`
	TotalSpeedup  float64           `json:"total_speedup"`
}

// RunShareComparison measures, per unroutable configuration, the
// wall-clock time of a blind n-lane portfolio against the same lanes
// connected through a clause exchange. Both runs use identical seeds,
// so the only difference is the imported lemmas.
func RunShareComparison(cfg ShareCompareConfig) (*ShareCompareResult, error) {
	if cfg.Instances == nil {
		cfg.Instances = mcnc.Table2Instances()
	}
	if cfg.Strategy == "" {
		cfg.Strategy = "ITE-linear-2+muldirect/s1"
	}
	if cfg.Lanes < 2 {
		cfg.Lanes = 2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Repeats < 1 {
		cfg.Repeats = 1
	}
	s, err := core.ParseStrategy(cfg.Strategy)
	if err != nil {
		return nil, err
	}
	lanes := portfolio.Replicate([]core.Strategy{s}, cfg.Lanes)
	res := &ShareCompareResult{
		Bench: "portfolio.share", Strategy: s.Name(),
		Lanes: cfg.Lanes, Seed: cfg.Seed, Repeats: cfg.Repeats,
	}

	for _, in := range cfg.Instances {
		g, _, err := BuildInstance(in)
		if err != nil {
			return nil, err
		}
		w := in.UnroutableW()
		row := ShareCompareRow{Instance: in.Name, W: w}

		for _, shared := range []bool{false, true} {
			for rep := 0; rep < cfg.Repeats; rep++ {
				reg := obs.NewRegistry()
				opts := portfolio.Options{
					Metrics: reg,
					Pool:    cfg.Pool,
					Seed:    cfg.Seed + int64(rep),
				}
				if shared {
					so := cfg.Share
					opts.Share = &so
				}
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if cfg.Timeout > 0 {
					ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
				}
				start := time.Now()
				winner, all, err := portfolio.RunHardened(ctx, g, w, lanes, opts)
				elapsed := time.Since(start)
				cancel()
				if err != nil {
					return nil, fmt.Errorf("experiments: %s share study: %w", in.Name, err)
				}
				if winner.Status == sat.Sat {
					return nil, fmt.Errorf("experiments: %s at W=%d claims routable; calibration broken", in.Name, w)
				}
				var conflicts int64
				for _, r := range all {
					conflicts += r.Stats.Conflicts
				}
				if shared {
					row.SharedNS += elapsed.Nanoseconds()
					row.SharedConflicts += conflicts
					snap := reg.Snapshot()
					row.Exported += snap.Counters[portfolio.MetricShareExported]
					row.Imported += snap.Counters[portfolio.MetricShareImported]
				} else {
					row.BlindNS += elapsed.Nanoseconds()
					row.BlindConflicts += conflicts
				}
				if cfg.Progress != nil {
					mode := "blind "
					if shared {
						mode = "shared"
					}
					fmt.Fprintf(cfg.Progress, "%-10s %s seed=%-3d %8.2fs %9d conflicts\n",
						in.Name, mode, cfg.Seed+int64(rep), elapsed.Seconds(), conflicts)
				}
			}
		}
		if row.SharedNS > 0 {
			row.Speedup = float64(row.BlindNS) / float64(row.SharedNS)
		}
		res.Rows = append(res.Rows, row)
		res.TotalBlindNS += row.BlindNS
		res.TotalSharedNS += row.SharedNS
	}
	if res.TotalSharedNS > 0 {
		res.TotalSpeedup = float64(res.TotalBlindNS) / float64(res.TotalSharedNS)
	}
	return res, nil
}

// Improved counts the instances where the cooperating portfolio beat
// the blind one on wall clock.
func (r *ShareCompareResult) Improved() int {
	n := 0
	for _, row := range r.Rows {
		if row.Speedup > 1 {
			n++
		}
	}
	return n
}

// Markdown renders the study in the EXPERIMENTS.md table format.
func (r *ShareCompareResult) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### Clause-sharing study — %d lanes of %s proving unroutability at W-1\n\n",
		r.Lanes, r.Strategy)
	header := []string{"Benchmark", "blind [s]", "shared [s]", "speedup", "blind conflicts", "shared conflicts", "imported"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Instance,
			fmtDur(time.Duration(row.BlindNS), false),
			fmtDur(time.Duration(row.SharedNS), false),
			fmt.Sprintf("%.2f×", row.Speedup),
			fmt.Sprintf("%d", row.BlindConflicts),
			fmt.Sprintf("%d", row.SharedConflicts),
			fmt.Sprintf("%d", row.Imported),
		})
	}
	total := "—"
	if r.TotalSpeedup > 0 {
		total = fmt.Sprintf("%.2f×", r.TotalSpeedup)
	}
	rows = append(rows, []string{"**Total**",
		fmtDur(time.Duration(r.TotalBlindNS), false),
		fmtDur(time.Duration(r.TotalSharedNS), false),
		total, "", "", ""})
	sb.WriteString(markdownTable(header, rows))
	return sb.String()
}

// Report converts the study to the unified bench envelope: one series
// per metric, one point per instance, with the study knobs and totals
// in the metadata params.
func (r *ShareCompareResult) Report() *BenchReport {
	labels := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		labels[i] = row.Instance
	}
	rows := r.Rows
	return &BenchReport{
		Schema: BenchSchema,
		Bench:  r.Bench,
		Meta: newBenchMeta(map[string]string{
			"strategy":        r.Strategy,
			"lanes":           fmt.Sprintf("%d", r.Lanes),
			"seed":            fmt.Sprintf("%d", r.Seed),
			"repeats":         fmt.Sprintf("%d", r.Repeats),
			"total_blind_ns":  fmt.Sprintf("%d", r.TotalBlindNS),
			"total_shared_ns": fmt.Sprintf("%d", r.TotalSharedNS),
			"total_speedup":   fmt.Sprintf("%g", r.TotalSpeedup),
		}),
		Series: []BenchSeries{
			series("blind_ns", "ns", labels, func(i int) float64 { return float64(rows[i].BlindNS) }),
			series("shared_ns", "ns", labels, func(i int) float64 { return float64(rows[i].SharedNS) }),
			series("speedup", "ratio", labels, func(i int) float64 { return rows[i].Speedup }),
			series("blind_conflicts", "count", labels, func(i int) float64 { return float64(rows[i].BlindConflicts) }),
			series("shared_conflicts", "count", labels, func(i int) float64 { return float64(rows[i].SharedConflicts) }),
			series("exported", "count", labels, func(i int) float64 { return float64(rows[i].Exported) }),
			series("imported", "count", labels, func(i int) float64 { return float64(rows[i].Imported) }),
		},
	}
}

// WriteJSON emits the machine-readable benchmark record
// (BENCH_portfolio.json) in the unified bench schema.
func (r *ShareCompareResult) WriteJSON(w io.Writer) error {
	return r.Report().WriteJSON(w)
}
