package experiments

import (
	"fmt"
	"strings"

	"fpgasat/internal/core"
	"fpgasat/internal/mcnc"
)

// SizesResult is the encoding-size ablation: Boolean variable and
// clause counts per encoding on one benchmark instance, quantifying
// the structural differences behind Table 2 (ITE encodings need no
// at-least-one/at-most-one clauses; log needs illegal-pattern
// exclusions; hierarchical encodings trade variables for clause
// density).
type SizesResult struct {
	Instance string
	W        int
	Vertices int
	Edges    int
	Rows     []SizeRow
}

// SizeRow is one encoding's census.
type SizeRow struct {
	Encoding   string
	Vars       int
	Clauses    int
	Literals   int
	Structural int
	Conflict   int
	// VarsPerCSPVar is the Boolean variable count for one unrestricted
	// CSP variable (domain W).
	VarsPerCSPVar int
}

// RunSizes encodes one instance's unroutable configuration under all
// paper encodings (no symmetry breaking, so every vertex has the full
// domain) and reports formula sizes.
func RunSizes(in mcnc.Instance) (*SizesResult, error) {
	g, _, err := BuildInstance(in)
	if err != nil {
		return nil, err
	}
	w := in.UnroutableW()
	res := &SizesResult{Instance: in.Name, W: w, Vertices: g.N(), Edges: g.M()}
	for _, name := range core.PaperEncodingNames {
		enc, err := core.ByName(name)
		if err != nil {
			return nil, err
		}
		e := core.Encode(core.NewCSP(g, w), enc)
		_, perVar, err := core.DescribeVariable(enc, w)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, SizeRow{
			Encoding:      name,
			Vars:          e.CNF.NumVars,
			Clauses:       e.CNF.NumClauses(),
			Literals:      e.CNF.NumLiterals(),
			Structural:    e.StructuralClauses,
			Conflict:      e.ConflictClauses,
			VarsPerCSPVar: perVar,
		})
	}
	return res, nil
}

// Markdown renders the census.
func (r *SizesResult) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### Encoding sizes — %s at W=%d (%d vertices, %d edges, no symmetry breaking)\n\n",
		r.Instance, r.W, r.Vertices, r.Edges)
	header := []string{"Encoding", "vars/CSP-var", "variables", "clauses", "structural", "conflict", "literals"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Encoding,
			fmt.Sprintf("%d", row.VarsPerCSPVar),
			fmt.Sprintf("%d", row.Vars),
			fmt.Sprintf("%d", row.Clauses),
			fmt.Sprintf("%d", row.Structural),
			fmt.Sprintf("%d", row.Conflict),
			fmt.Sprintf("%d", row.Literals),
		})
	}
	sb.WriteString(markdownTable(header, rows))
	return sb.String()
}
