package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"fpgasat/internal/core"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/sat"
)

// SolverCompareConfig controls the solver-profile comparison that
// mirrors the paper's siege_v4-vs-MiniSat observation ("siege_v4 was
// faster by at least a factor of 2 when proving unsatisfiability ...
// while the satisfiable formulas were solved by either SAT solver in
// usually a fraction of a second, such that MiniSat had a small
// advantage").
type SolverCompareConfig struct {
	Instances []mcnc.Instance // defaults to the first 4 Table 2 instances
	Strategy  string          // defaults to "ITE-linear-2+muldirect/s1"
	Timeout   time.Duration
	Progress  io.Writer
	// Pool, when non-nil, supplies reusable solvers; nil measures on
	// fresh solvers.
	Pool *sat.Pool
}

// SolverCompareResult aggregates per-profile totals on the
// unsatisfiable (W-1) and satisfiable (W) sides.
type SolverCompareResult struct {
	Strategy   string
	Profiles   []string
	Instances  []string
	UnsatTimes [][]time.Duration // [instance][profile]
	SatTimes   [][]time.Duration
	UnsatTotal []time.Duration
	SatTotal   []time.Duration
}

// RunSolverCompare solves each instance's unroutable and routable
// configurations under every built-in solver profile with a fixed
// encoding strategy.
func RunSolverCompare(cfg SolverCompareConfig) (*SolverCompareResult, error) {
	if cfg.Instances == nil {
		cfg.Instances = mcnc.Table2Instances()[:4]
	}
	if cfg.Strategy == "" {
		cfg.Strategy = "ITE-linear-2+muldirect/s1"
	}
	strategy, err := core.ParseStrategy(cfg.Strategy)
	if err != nil {
		return nil, err
	}
	profiles := sat.Profiles()
	res := &SolverCompareResult{Strategy: cfg.Strategy}
	for _, p := range profiles {
		res.Profiles = append(res.Profiles, p.Name)
	}
	res.UnsatTotal = make([]time.Duration, len(profiles))
	res.SatTotal = make([]time.Duration, len(profiles))
	for _, in := range cfg.Instances {
		g, _, err := BuildInstance(in)
		if err != nil {
			return nil, err
		}
		unsatRow := make([]time.Duration, len(profiles))
		satRow := make([]time.Duration, len(profiles))
		for pi, p := range profiles {
			for _, side := range []struct {
				w    int
				want sat.Status
				row  []time.Duration
				tot  *time.Duration
			}{
				{in.UnroutableW(), sat.Unsat, unsatRow, &res.UnsatTotal[pi]},
				{in.RoutableW, sat.Sat, satRow, &res.SatTotal[pi]},
			} {
				enc := strategy.EncodeGraph(g, side.w)
				ctx := context.Background()
				if cfg.Timeout > 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
					defer cancel()
				}
				start := time.Now()
				r := sat.SolveCNFReusing(ctx, cfg.Pool, enc.CNF, p.Opts)
				elapsed := time.Since(start)
				if r.Status != side.want && r.Status != sat.Unknown {
					return nil, fmt.Errorf("experiments: %s W=%d: got %v, want %v",
						in.Name, side.w, r.Status, side.want)
				}
				side.row[pi] = elapsed
				*side.tot += elapsed
				if cfg.Progress != nil {
					fmt.Fprintf(cfg.Progress, "%-10s W=%d profile=%-10s %8.2fs %v\n",
						in.Name, side.w, p.Name, elapsed.Seconds(), r.Status)
				}
			}
		}
		res.Instances = append(res.Instances, in.Name)
		res.UnsatTimes = append(res.UnsatTimes, unsatRow)
		res.SatTimes = append(res.SatTimes, satRow)
	}
	return res, nil
}

// Markdown renders both sides of the comparison.
func (r *SolverCompareResult) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### Solver-profile comparison (strategy %s)\n\n", r.Strategy)
	sb.WriteString("Analog of the paper's siege_v4 vs MiniSat study, using the built-in solver's profiles.\n\n")
	for _, side := range []struct {
		title string
		times [][]time.Duration
		total []time.Duration
	}{
		{"Unsatisfiable (W-1, unroutable)", r.UnsatTimes, r.UnsatTotal},
		{"Satisfiable (W, routable)", r.SatTimes, r.SatTotal},
	} {
		fmt.Fprintf(&sb, "**%s** [s]\n\n", side.title)
		header := append([]string{"Benchmark"}, r.Profiles...)
		var rows [][]string
		for ii, name := range r.Instances {
			row := []string{name}
			for _, d := range side.times[ii] {
				row = append(row, fmtDur(d, false))
			}
			rows = append(rows, row)
		}
		totalRow := []string{"**Total**"}
		for _, d := range side.total {
			totalRow = append(totalRow, fmtDur(d, false))
		}
		rows = append(rows, totalRow)
		sb.WriteString(markdownTable(header, rows))
		sb.WriteString("\n")
	}
	return sb.String()
}
