package experiments

import (
	"fmt"
	"time"

	"fpgasat/internal/mcnc"
	"fpgasat/internal/sat"
)

// SymmetryAblationConfig controls the symmetry-heuristic ablation:
// one fixed encoding run under no symmetry breaking, the paper's b1
// and s1, and the clique-seeded extension c1.
type SymmetryAblationConfig struct {
	Instances []mcnc.Instance // defaults to mcnc.Table2Instances()
	Encoding  string          // defaults to "ITE-linear-2+muldirect"
	Timeout   time.Duration
	Progress  progressWriter
	// Pool, when non-nil, supplies reusable solvers; nil measures on
	// fresh solvers.
	Pool *sat.Pool
}

type progressWriter interface{ Write([]byte) (int, error) }

// RunSymmetryAblation reuses the Table 2 machinery with heuristic
// columns instead of encoding columns.
func RunSymmetryAblation(cfg SymmetryAblationConfig) (*Table2Result, error) {
	if cfg.Encoding == "" {
		cfg.Encoding = "ITE-linear-2+muldirect"
	}
	cols := []string{
		cfg.Encoding + "/-",
		cfg.Encoding + "/b1",
		cfg.Encoding + "/s1",
		cfg.Encoding + "/c1",
	}
	res, err := RunTable2(Table2Config{
		Instances: cfg.Instances,
		Columns:   cols,
		Timeout:   cfg.Timeout,
		Progress:  cfg.Progress,
		Pool:      cfg.Pool,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: symmetry ablation: %w", err)
	}
	return res, nil
}
