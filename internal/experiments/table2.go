package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"fpgasat/internal/core"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/sat"
	"fpgasat/internal/symmetry"
)

// Table2Columns are the strategy columns of the paper's Table 2: the
// better previously used encoding (muldirect) without and with both
// symmetry-breaking heuristics, then the best 6 of the 12 new
// encodings with b1 and s1.
var Table2Columns = []string{
	"muldirect/-",
	"muldirect/b1",
	"muldirect/s1",
	"ITE-linear/b1",
	"ITE-linear/s1",
	"ITE-log/b1",
	"ITE-log/s1",
	"ITE-linear-2+direct/b1",
	"ITE-linear-2+direct/s1",
	"ITE-linear-2+muldirect/b1",
	"ITE-linear-2+muldirect/s1",
	"muldirect-3+muldirect/b1",
	"muldirect-3+muldirect/s1",
	"direct-3+muldirect/b1",
	"direct-3+muldirect/s1",
}

// Table2Config controls the Table 2 run.
type Table2Config struct {
	Instances []mcnc.Instance // defaults to mcnc.Table2Instances()
	Columns   []string        // defaults to Table2Columns
	Timeout   time.Duration   // per solve; 0 means none
	Progress  io.Writer       // optional live progress
	// Pool, when non-nil, supplies reusable solvers for every timed
	// solve (see sat.Pool); nil measures on fresh solvers.
	Pool *sat.Pool
}

// Table2Cell is one measurement.
type Table2Cell struct {
	Timing   Timing
	TimedOut bool
}

// Table2Result holds the full grid plus totals and speedups, matching
// the paper's layout.
type Table2Result struct {
	Columns   []string
	Instances []string
	Cells     [][]Table2Cell // [instance][column]
	Totals    []time.Duration
	AnyCapped []bool // column contains a timed-out cell
	// Speedups[i] is Totals[baseline]/Totals[i]; the baseline is
	// column 0, muldirect without symmetry breaking.
	Speedups []float64
}

// RunTable2 reproduces Table 2: for every challenging instance, prove
// the unroutability of the global routing with W-1 tracks under every
// strategy column, reporting translate+encode+solve time.
func RunTable2(cfg Table2Config) (*Table2Result, error) {
	if cfg.Instances == nil {
		cfg.Instances = mcnc.Table2Instances()
	}
	if cfg.Columns == nil {
		cfg.Columns = Table2Columns
	}
	strategies := make([]core.Strategy, len(cfg.Columns))
	for i, c := range cfg.Columns {
		s, err := core.ParseStrategy(c)
		if err != nil {
			return nil, err
		}
		strategies[i] = s
	}
	res := &Table2Result{Columns: cfg.Columns}
	res.Totals = make([]time.Duration, len(cfg.Columns))
	res.AnyCapped = make([]bool, len(cfg.Columns))
	for _, in := range cfg.Instances {
		g, translate, err := BuildInstance(in)
		if err != nil {
			return nil, err
		}
		w := in.UnroutableW()
		row := make([]Table2Cell, len(strategies))
		for si, s := range strategies {
			t := RunStrategy(g, w, s, translate, cfg.Timeout, cfg.Pool)
			if t.Status == sat.Sat {
				return nil, fmt.Errorf("experiments: %s at W=%d claims routable; calibration broken",
					in.Name, w)
			}
			cell := Table2Cell{Timing: t, TimedOut: t.Status == sat.Unknown}
			row[si] = cell
			res.Totals[si] += t.Total()
			if cell.TimedOut {
				res.AnyCapped[si] = true
			}
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "%-10s W=%d %-28s %8.2fs %s\n",
					in.Name, w, s.Name(), t.Total().Seconds(), t.Status)
			}
		}
		res.Instances = append(res.Instances, in.Name)
		res.Cells = append(res.Cells, row)
	}
	res.Speedups = make([]float64, len(cfg.Columns))
	base := res.Totals[0].Seconds()
	for i, tot := range res.Totals {
		if tot > 0 {
			res.Speedups[i] = base / tot.Seconds()
		}
	}
	return res, nil
}

// Best returns the column index with the smallest total.
func (r *Table2Result) Best() int {
	best := 0
	for i, t := range r.Totals {
		if t < r.Totals[best] {
			best = i
		}
	}
	return best
}

// Markdown renders the grid in the paper's layout: one row per
// benchmark, a totals row and a speedup row. Timed-out cells are
// prefixed with ">" and make their column's total a lower bound.
func (r *Table2Result) Markdown() string {
	var sb strings.Builder
	sb.WriteString("### Table 2 — total CPU time [s] proving unroutability at W-1 ")
	sb.WriteString("(translation to graph coloring + translation to CNF + SAT solving)\n\n")
	header := append([]string{"Benchmark"}, r.Columns...)
	var rows [][]string
	for ii, name := range r.Instances {
		row := []string{name}
		for _, c := range r.Cells[ii] {
			row = append(row, fmtDur(c.Timing.Total(), c.TimedOut))
		}
		rows = append(rows, row)
	}
	totalRow := []string{"**Total**"}
	for i, t := range r.Totals {
		totalRow = append(totalRow, fmtDur(t, r.AnyCapped[i]))
	}
	rows = append(rows, totalRow)
	speedRow := []string{fmt.Sprintf("**Speedup vs %s**", r.Columns[0])}
	for i, s := range r.Speedups {
		if i == 0 {
			speedRow = append(speedRow, "1.00×")
			continue
		}
		// Capped totals are lower bounds on the true time: a capped
		// baseline makes the true speedup larger (≥), a capped column
		// makes it smaller (≤), both capped is indeterminate (~).
		mark := ""
		switch {
		case r.AnyCapped[0] && r.AnyCapped[i]:
			mark = "~"
		case r.AnyCapped[0]:
			mark = "≥"
		case r.AnyCapped[i]:
			mark = "≤"
		}
		speedRow = append(speedRow, fmt.Sprintf("%s%.2f×", mark, s))
	}
	rows = append(rows, speedRow)
	sb.WriteString(markdownTable(header, rows))
	return sb.String()
}

// SymmetryWins summarises, per heuristic, on how many (instance,
// encoding) pairs it beat the alternatives — the paper's observation
// that each heuristic wins somewhere but s1 produces the greatest
// speedups.
func (r *Table2Result) SymmetryWins() map[symmetry.Heuristic]int {
	wins := map[symmetry.Heuristic]int{}
	// Group columns by encoding name.
	type variant struct {
		col int
		h   symmetry.Heuristic
	}
	byEnc := map[string][]variant{}
	for i, c := range r.Columns {
		s, err := core.ParseStrategy(c)
		if err != nil {
			continue
		}
		byEnc[s.Encoding.Name()] = append(byEnc[s.Encoding.Name()], variant{i, s.Symmetry})
	}
	for ii := range r.Instances {
		for _, vs := range byEnc {
			if len(vs) < 2 {
				continue
			}
			best := vs[0]
			for _, v := range vs[1:] {
				if r.Cells[ii][v.col].Timing.Total() < r.Cells[ii][best.col].Timing.Total() {
					best = v
				}
			}
			wins[best.h]++
		}
	}
	return wins
}
