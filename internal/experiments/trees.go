package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"fpgasat/internal/core"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/sat"
	"fpgasat/internal/symmetry"
)

// TreeAblationConfig controls the ITE-tree-shape ablation. Sect. 3 of
// the paper notes that structurally different ITE trees over the same
// domain yield different encodings with different value-selection
// probabilities; this ablation quantifies the effect by solving the
// same configuration under the two extreme shapes (chain, balanced)
// and several random shapes.
type TreeAblationConfig struct {
	Instance    mcnc.Instance // zero value selects "alu2"
	RandomTrees int           // number of random shapes; default 3
	Symmetry    symmetry.Heuristic
	Timeout     time.Duration
	Progress    io.Writer
	// Pool, when non-nil, supplies reusable solvers for every timed
	// solve; nil measures on fresh solvers.
	Pool *sat.Pool
}

// TreeAblationResult holds per-shape measurements at both widths.
type TreeAblationResult struct {
	Instance   string
	Shapes     []string
	UnsatTimes []time.Duration
	SatTimes   []time.Duration
	Conflicts  []int64 // on the unsat side
}

// RunTreeAblation measures every shape on the instance's unroutable
// and routable configurations.
func RunTreeAblation(cfg TreeAblationConfig) (*TreeAblationResult, error) {
	in := cfg.Instance
	if in.Name == "" {
		var err error
		in, err = mcnc.ByName("alu2")
		if err != nil {
			return nil, err
		}
	}
	if cfg.RandomTrees == 0 {
		cfg.RandomTrees = 3
	}
	encodings := []core.Encoding{
		core.NewITETree("ITE-tree-linear", core.LinearShape),
		core.NewITETree("ITE-tree-balanced", core.BalancedShape),
	}
	for i := 0; i < cfg.RandomTrees; i++ {
		encodings = append(encodings, core.NewITETree(
			fmt.Sprintf("ITE-tree-random-%d", i),
			core.RandomShape(rand.New(rand.NewSource(int64(100+i))))))
	}
	g, _, err := BuildInstance(in)
	if err != nil {
		return nil, err
	}
	res := &TreeAblationResult{Instance: in.Name}
	for _, enc := range encodings {
		s := core.Strategy{Encoding: enc, Symmetry: cfg.Symmetry}
		tu := RunStrategy(g, in.UnroutableW(), s, 0, cfg.Timeout, cfg.Pool)
		if tu.Status == sat.Sat {
			return nil, fmt.Errorf("experiments: tree ablation: %s unexpectedly routable", in.Name)
		}
		ts := RunStrategy(g, in.RoutableW, s, 0, cfg.Timeout, cfg.Pool)
		if ts.Status == sat.Unsat {
			return nil, fmt.Errorf("experiments: tree ablation: %s unexpectedly unroutable", in.Name)
		}
		res.Shapes = append(res.Shapes, enc.Name())
		res.UnsatTimes = append(res.UnsatTimes, tu.Total())
		res.SatTimes = append(res.SatTimes, ts.Total())
		res.Conflicts = append(res.Conflicts, tu.Conflicts)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "%-20s unsat %8.2fs sat %8.2fs\n",
				enc.Name(), tu.Total().Seconds(), ts.Total().Seconds())
		}
	}
	return res, nil
}

// Markdown renders the ablation.
func (r *TreeAblationResult) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### ITE-tree shape ablation on %s\n\n", r.Instance)
	sb.WriteString("Same domain, different tree structure (Sect. 3): satisfiability is invariant, solve effort is not.\n\n")
	var rows [][]string
	for i, shape := range r.Shapes {
		rows = append(rows, []string{
			shape,
			fmtDur(r.UnsatTimes[i], false),
			fmtDur(r.SatTimes[i], false),
			fmt.Sprintf("%d", r.Conflicts[i]),
		})
	}
	sb.WriteString(markdownTable([]string{"Tree shape", "unsat W-1 [s]", "sat W [s]", "unsat conflicts"}, rows))
	return sb.String()
}
