// Package fpga models the island-style FPGA substrate of the paper's
// benchmarks: a grid of configurable logic blocks (CLBs) surrounded by
// horizontal and vertical routing channels with W tracks each,
// connection blocks that join CLB pins to the adjacent channel
// segment, and subset ("disjoint") switch blocks that preserve the
// track index when a route turns or continues at a channel
// intersection.
//
// Because subset switch blocks preserve track assignments, a 2-pin net
// occupies the same track in every connection block it passes through,
// which is exactly the property that makes detailed routing equivalent
// to coloring the conflict graph of 2-pin nets (Sect. 2 of the paper,
// after Wu and Marek-Sadowska).
//
// The package also provides a deterministic netlist generator and a
// negotiated-congestion (PathFinder-style) global router, substituting
// for the MCNC circuits and SEGA-1.1 global routings used by the
// paper, which are not redistributable (see DESIGN.md).
package fpga

import "fmt"

// Arch is an island-style FPGA array: Cols×Rows CLBs, horizontal
// channels y=0..Rows (each with Cols segments) and vertical channels
// x=0..Cols (each with Rows segments). A channel segment spans one CLB
// pitch between two switch blocks and carries one connection block.
type Arch struct {
	Rows, Cols int
}

// SegID identifies a channel segment: horizontal segments come first
// in row-major order, then vertical segments.
type SegID int

// NumHSegs returns the number of horizontal channel segments.
func (a Arch) NumHSegs() int { return (a.Rows + 1) * a.Cols }

// NumVSegs returns the number of vertical channel segments.
func (a Arch) NumVSegs() int { return (a.Cols + 1) * a.Rows }

// NumSegs returns the total number of channel segments.
func (a Arch) NumSegs() int { return a.NumHSegs() + a.NumVSegs() }

// HSeg returns the horizontal segment at channel y (0..Rows), position
// x (0..Cols-1).
func (a Arch) HSeg(x, y int) SegID {
	if x < 0 || x >= a.Cols || y < 0 || y > a.Rows {
		panic(fmt.Sprintf("fpga: hseg (%d,%d) out of range for %dx%d", x, y, a.Cols, a.Rows))
	}
	return SegID(y*a.Cols + x)
}

// VSeg returns the vertical segment at channel x (0..Cols), position y
// (0..Rows-1).
func (a Arch) VSeg(x, y int) SegID {
	if x < 0 || x > a.Cols || y < 0 || y >= a.Rows {
		panic(fmt.Sprintf("fpga: vseg (%d,%d) out of range for %dx%d", x, y, a.Cols, a.Rows))
	}
	return SegID(a.NumHSegs() + x*a.Rows + y)
}

// SegIsHorizontal reports whether s is a horizontal segment.
func (a Arch) SegIsHorizontal(s SegID) bool { return int(s) < a.NumHSegs() }

// SegCoords returns (x, y, horizontal) for a segment id.
func (a Arch) SegCoords(s SegID) (x, y int, horizontal bool) {
	if s < 0 || int(s) >= a.NumSegs() {
		panic(fmt.Sprintf("fpga: segment %d out of range", s))
	}
	if a.SegIsHorizontal(s) {
		return int(s) % a.Cols, int(s) / a.Cols, true
	}
	v := int(s) - a.NumHSegs()
	return v / a.Rows, v % a.Rows, false
}

// SegName returns a human-readable name like "H(3,0)" or "V(0,2)".
func (a Arch) SegName(s SegID) string {
	x, y, h := a.SegCoords(s)
	if h {
		return fmt.Sprintf("H(%d,%d)", x, y)
	}
	return fmt.Sprintf("V(%d,%d)", x, y)
}

// Adjacent returns the segments reachable from s through its two
// endpoint switch blocks. With subset switch blocks the track index is
// preserved across each returned adjacency.
func (a Arch) Adjacent(s SegID) []SegID {
	x, y, horizontal := a.SegCoords(s)
	var out []SegID
	// The two switch blocks at the segment ends.
	var sbs [2][2]int
	if horizontal {
		sbs = [2][2]int{{x, y}, {x + 1, y}}
	} else {
		sbs = [2][2]int{{x, y}, {x, y + 1}}
	}
	for _, sb := range sbs {
		for _, t := range a.switchBlockSegs(sb[0], sb[1]) {
			if t != s {
				out = append(out, t)
			}
		}
	}
	return out
}

// switchBlockSegs lists the segments incident to the switch block at
// intersection (x, y), x in 0..Cols, y in 0..Rows.
func (a Arch) switchBlockSegs(x, y int) []SegID {
	var out []SegID
	if x-1 >= 0 {
		out = append(out, a.HSeg(x-1, y))
	}
	if x < a.Cols {
		out = append(out, a.HSeg(x, y))
	}
	if y-1 >= 0 {
		out = append(out, a.VSeg(x, y-1))
	}
	if y < a.Rows {
		out = append(out, a.VSeg(x, y))
	}
	return out
}

// Side is a CLB pin side.
type Side int

const (
	Bottom Side = iota
	Top
	Left
	Right
)

func (s Side) String() string {
	switch s {
	case Bottom:
		return "S"
	case Top:
		return "N"
	case Left:
		return "W"
	case Right:
		return "E"
	}
	return "?"
}

// Pin is a logic-block pin: the CLB coordinates plus the side whose
// connection block it uses.
type Pin struct {
	X, Y int
	Side Side
}

func (p Pin) String() string {
	return fmt.Sprintf("(%d,%d).%s", p.X, p.Y, p.Side)
}

// PinSeg returns the channel segment p's connection block belongs to.
// Out-of-range pins are programmer errors and panic (internal/robust
// taxonomy); ParseNetlist/ParseRouting bound-check pins before any
// code can reach here.
func (a Arch) PinSeg(p Pin) SegID {
	if p.X < 0 || p.X >= a.Cols || p.Y < 0 || p.Y >= a.Rows {
		panic(fmt.Sprintf("fpga: pin %v outside %dx%d array", p, a.Cols, a.Rows))
	}
	switch p.Side {
	case Bottom:
		return a.HSeg(p.X, p.Y)
	case Top:
		return a.HSeg(p.X, p.Y+1)
	case Left:
		return a.VSeg(p.X, p.Y)
	case Right:
		return a.VSeg(p.X+1, p.Y)
	}
	panic(fmt.Sprintf("fpga: bad side %d", p.Side))
}

// Validate checks the architecture parameters.
func (a Arch) Validate() error {
	if a.Rows < 1 || a.Cols < 1 {
		return fmt.Errorf("fpga: array must be at least 1x1, got %dx%d", a.Cols, a.Rows)
	}
	return nil
}
