package fpga

import (
	"fmt"

	"fpgasat/internal/graph"
)

// ConflictGraph builds the coloring CSP graph of Sect. 2: one vertex
// per 2-pin net, and an edge between two vertices whenever their
// routes belong to different multi-pin nets and pass through a common
// connection block (channel segment). A detailed routing with W tracks
// exists if and only if this graph is W-colorable, because subset
// switch blocks preserve the track along each 2-pin route.
func (gr *GlobalRouting) ConflictGraph() *graph.Graph {
	b := graph.NewBuilder(len(gr.Routes))
	b.Labels = make([]string, len(gr.Routes))
	for i, r := range gr.Routes {
		b.Labels[i] = r.Label(gr.Netlist)
	}
	// Bucket route indices by segment, then connect different-net
	// pairs within each bucket. Exclusivity needs to be imposed only
	// once per pair even when they share several connection blocks.
	bySeg := make([][]int, gr.Netlist.Arch.NumSegs())
	for ri, r := range gr.Routes {
		seen := map[SegID]bool{}
		for _, s := range r.Segs {
			if !seen[s] {
				seen[s] = true
				bySeg[s] = append(bySeg[s], ri)
			}
		}
	}
	for _, routes := range bySeg {
		for i := 0; i < len(routes); i++ {
			for j := i + 1; j < len(routes); j++ {
				ri, rj := gr.Routes[routes[i]], gr.Routes[routes[j]]
				if ri.Net != rj.Net {
					b.AddEdge(routes[i], routes[j])
				}
			}
		}
	}
	return b.Freeze()
}

// ConflictGraphXtalk is ConflictGraph with crosstalk-aware spacing
// constraints: pairs of routes that run alongside each other through
// two or more common connection blocks (a long parallel coupling run)
// get a distance-xtalk edge — their tracks must differ by at least
// xtalk — while single-crossing pairs keep the plain exclusivity edge
// (distance 1). xtalk <= 1 degenerates to ConflictGraph. The result is
// the bandwidth-coloring CSP graph of the spacing-aware track
// assignment problem.
func (gr *GlobalRouting) ConflictGraphXtalk(xtalk int) *graph.Graph {
	if xtalk <= 1 {
		return gr.ConflictGraph()
	}
	b := graph.NewBuilder(len(gr.Routes))
	b.Labels = make([]string, len(gr.Routes))
	for i, r := range gr.Routes {
		b.Labels[i] = r.Label(gr.Netlist)
	}
	bySeg := make([][]int, gr.Netlist.Arch.NumSegs())
	for ri, r := range gr.Routes {
		seen := map[SegID]bool{}
		for _, s := range r.Segs {
			if !seen[s] {
				seen[s] = true
				bySeg[s] = append(bySeg[s], ri)
			}
		}
	}
	// Count shared connection blocks per conflicting pair; two or more
	// means coupled.
	type pair struct{ a, b int }
	shared := map[pair]int{}
	for _, routes := range bySeg {
		for i := 0; i < len(routes); i++ {
			for j := i + 1; j < len(routes); j++ {
				ri, rj := gr.Routes[routes[i]], gr.Routes[routes[j]]
				if ri.Net != rj.Net {
					shared[pair{routes[i], routes[j]}]++
				}
			}
		}
	}
	for p, cnt := range shared {
		d := 1
		if cnt >= 2 {
			d = xtalk
		}
		b.AddWeightedEdge(p.a, p.b, d)
	}
	return b.Freeze()
}

// DetailedRouting is a global routing plus a track assignment: 2-pin
// net i runs on track Tracks[i] (the same track in every connection
// block it crosses, thanks to subset switch blocks).
type DetailedRouting struct {
	Global *GlobalRouting
	W      int
	Tracks []int
}

// AssignTracks turns a coloring of the conflict graph into a detailed
// routing with W tracks.
func AssignTracks(gr *GlobalRouting, colors []int, w int) (*DetailedRouting, error) {
	if len(colors) != len(gr.Routes) {
		return nil, fmt.Errorf("fpga: %d colors for %d routes", len(colors), len(gr.Routes))
	}
	dr := &DetailedRouting{Global: gr, W: w, Tracks: append([]int(nil), colors...)}
	if err := dr.Validate(); err != nil {
		return nil, err
	}
	return dr, nil
}

// Validate checks the legality of the detailed routing: every track
// index is within the channel width, and no connection block carries
// two different multi-pin nets on the same track.
func (dr *DetailedRouting) Validate() error {
	gr := dr.Global
	for i, t := range dr.Tracks {
		if t < 0 || t >= dr.W {
			return fmt.Errorf("fpga: route %d track %d outside [0,%d)", i, t, dr.W)
		}
	}
	// seg -> track -> owning multi-pin net
	type key struct {
		seg   SegID
		track int
	}
	owner := map[key]int{}
	for ri, r := range gr.Routes {
		for _, s := range r.Segs {
			k := key{s, dr.Tracks[ri]}
			if own, ok := owner[k]; ok && own != r.Net {
				return fmt.Errorf("fpga: nets %s and %s both use track %d in connection block %s",
					gr.Netlist.Nets[own].Name, gr.Netlist.Nets[r.Net].Name,
					dr.Tracks[ri], gr.Netlist.Arch.SegName(s))
			}
			owner[k] = r.Net
		}
	}
	return nil
}
