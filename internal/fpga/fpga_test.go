package fpga

import (
	"testing"

	"fpgasat/internal/coloring"
)

func TestSegIDRoundtrip(t *testing.T) {
	a := Arch{Rows: 3, Cols: 4}
	if a.NumSegs() != (3+1)*4+(4+1)*3 {
		t.Fatalf("NumSegs = %d", a.NumSegs())
	}
	seen := map[SegID]bool{}
	for y := 0; y <= a.Rows; y++ {
		for x := 0; x < a.Cols; x++ {
			s := a.HSeg(x, y)
			gx, gy, h := a.SegCoords(s)
			if !h || gx != x || gy != y {
				t.Fatalf("HSeg(%d,%d) roundtrip gave (%d,%d,%v)", x, y, gx, gy, h)
			}
			seen[s] = true
		}
	}
	for x := 0; x <= a.Cols; x++ {
		for y := 0; y < a.Rows; y++ {
			s := a.VSeg(x, y)
			gx, gy, h := a.SegCoords(s)
			if h || gx != x || gy != y {
				t.Fatalf("VSeg(%d,%d) roundtrip gave (%d,%d,%v)", x, y, gx, gy, h)
			}
			seen[s] = true
		}
	}
	if len(seen) != a.NumSegs() {
		t.Fatalf("segment ids collide: %d distinct of %d", len(seen), a.NumSegs())
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	a := Arch{Rows: 3, Cols: 3}
	for s := 0; s < a.NumSegs(); s++ {
		for _, u := range a.Adjacent(SegID(s)) {
			back := false
			for _, v := range a.Adjacent(u) {
				if v == SegID(s) {
					back = true
					break
				}
			}
			if !back {
				t.Fatalf("adjacency not symmetric: %s -> %s", a.SegName(SegID(s)), a.SegName(u))
			}
		}
	}
}

func TestAdjacencyCorner(t *testing.T) {
	a := Arch{Rows: 2, Cols: 2}
	// H(0,0) has switch blocks at (0,0) and (1,0): neighbors are
	// V(0,0), then H(1,0) and V(1,0).
	adj := a.Adjacent(a.HSeg(0, 0))
	want := map[SegID]bool{a.VSeg(0, 0): true, a.HSeg(1, 0): true, a.VSeg(1, 0): true}
	if len(adj) != len(want) {
		t.Fatalf("corner adjacency = %v", adj)
	}
	for _, s := range adj {
		if !want[s] {
			t.Fatalf("unexpected neighbor %s", a.SegName(s))
		}
	}
}

func TestPinSeg(t *testing.T) {
	a := Arch{Rows: 3, Cols: 3}
	cases := []struct {
		pin  Pin
		want SegID
	}{
		{Pin{1, 1, Bottom}, a.HSeg(1, 1)},
		{Pin{1, 1, Top}, a.HSeg(1, 2)},
		{Pin{1, 1, Left}, a.VSeg(1, 1)},
		{Pin{1, 1, Right}, a.VSeg(2, 1)},
	}
	for _, c := range cases {
		if got := a.PinSeg(c.pin); got != c.want {
			t.Errorf("PinSeg(%v) = %s, want %s", c.pin, a.SegName(got), a.SegName(c.want))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := GenParams{Rows: 6, Cols: 6, NumNets: 20, MinPins: 2, MaxPins: 4, Locality: 3, Seed: 11}
	a, err := Generate("x", p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("x", p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nets) != 20 || len(b.Nets) != 20 {
		t.Fatal("wrong net count")
	}
	for i := range a.Nets {
		if len(a.Nets[i].Pins) != len(b.Nets[i].Pins) {
			t.Fatal("generation not deterministic")
		}
		for j := range a.Nets[i].Pins {
			if a.Nets[i].Pins[j] != b.Nets[i].Pins[j] {
				t.Fatal("generation not deterministic")
			}
		}
	}
}

func TestGenerateLocality(t *testing.T) {
	p := GenParams{Rows: 12, Cols: 12, NumNets: 40, MinPins: 2, MaxPins: 5, Locality: 2, Seed: 3}
	nl, err := Generate("loc", p)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nl.Nets {
		src := n.Pins[0]
		for _, s := range n.Pins[1:] {
			dx, dy := s.X-src.X, s.Y-src.Y
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			if dx > 2 || dy > 2 {
				t.Fatalf("sink %v too far from source %v", s, src)
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	bad := []GenParams{
		{Rows: 0, Cols: 3, NumNets: 1, MinPins: 2, MaxPins: 2},
		{Rows: 3, Cols: 3, NumNets: 1, MinPins: 1, MaxPins: 2},
		{Rows: 3, Cols: 3, NumNets: 1, MinPins: 3, MaxPins: 2},
		{Rows: 3, Cols: 3, NumNets: -1, MinPins: 2, MaxPins: 2},
	}
	for i, p := range bad {
		if _, err := Generate("bad", p); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func genRouted(t *testing.T, seed int64, nets int) *GlobalRouting {
	t.Helper()
	nl, err := Generate("t", GenParams{
		Rows: 8, Cols: 8, NumNets: nets, MinPins: 2, MaxPins: 4, Locality: 3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	gr, _, err := RouteGlobal(nl, RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return gr
}

func TestRouteGlobalValid(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		gr := genRouted(t, seed, 40)
		if err := gr.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// One route per sink.
		sinks := 0
		for _, n := range gr.Netlist.Nets {
			sinks += len(n.Pins) - 1
		}
		if len(gr.Routes) != sinks {
			t.Fatalf("%d routes for %d sinks", len(gr.Routes), sinks)
		}
	}
}

func TestRouteGlobalConvergesWhenEasy(t *testing.T) {
	nl, err := Generate("easy", GenParams{
		Rows: 10, Cols: 10, NumNets: 10, MinPins: 2, MaxPins: 2, Locality: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	gr, converged, err := RouteGlobal(nl, RouteOptions{Capacity: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !converged {
		t.Fatal("router failed to meet a loose occupancy target")
	}
	if gr.MaxCongestion() > 6 {
		t.Fatalf("converged but congestion %d > 6", gr.MaxCongestion())
	}
}

func TestOccupancyCountsDistinctNets(t *testing.T) {
	// A net with two subnets over the same segment counts once.
	arch := Arch{Rows: 2, Cols: 2}
	nl := &Netlist{Name: "m", Arch: arch, Nets: []Net{{
		Name: "a",
		Pins: []Pin{{0, 0, Bottom}, {1, 0, Bottom}, {1, 0, Bottom}},
	}}}
	gr := &GlobalRouting{Netlist: nl, Routes: []TwoPinNet{
		{Net: 0, Index: 0, Src: nl.Nets[0].Pins[0], Dst: nl.Nets[0].Pins[1],
			Segs: []SegID{arch.HSeg(0, 0), arch.HSeg(1, 0)}},
		{Net: 0, Index: 1, Src: nl.Nets[0].Pins[0], Dst: nl.Nets[0].Pins[2],
			Segs: []SegID{arch.HSeg(0, 0), arch.HSeg(1, 0)}},
	}}
	if err := gr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := gr.MaxCongestion(); got != 1 {
		t.Fatalf("MaxCongestion = %d, want 1 (same net)", got)
	}
}

func TestConflictGraphProperties(t *testing.T) {
	gr := genRouted(t, 2, 50)
	g := gr.ConflictGraph()
	if g.N() != len(gr.Routes) {
		t.Fatalf("N = %d, want %d", g.N(), len(gr.Routes))
	}
	// No edges between subnets of the same net.
	g.ForEachEdge(func(u, v int) {
		if gr.Routes[u].Net == gr.Routes[v].Net {
			t.Fatalf("edge between subnets of net %d", gr.Routes[u].Net)
		}
	})
	// Nets sharing a segment must form a clique: the clique lower
	// bound is at least the max congestion.
	cl := coloring.GreedyClique(g)
	if len(cl) < gr.MaxCongestion() {
		t.Fatalf("clique %d < max congestion %d", len(cl), gr.MaxCongestion())
	}
}

func TestEndToEndDetailedRouting(t *testing.T) {
	gr := genRouted(t, 3, 40)
	g := gr.ConflictGraph()
	colors, w := coloring.DSATUR(g)
	dr, err := AssignTracks(gr, colors, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := dr.Validate(); err != nil {
		t.Fatal(err)
	}
	if w < gr.MaxCongestion() {
		t.Fatalf("W=%d below congestion bound %d", w, gr.MaxCongestion())
	}
}

func TestAssignTracksRejectsConflicts(t *testing.T) {
	gr := genRouted(t, 4, 40)
	g := gr.ConflictGraph()
	if g.M() == 0 {
		t.Skip("no conflicts in this instance")
	}
	// All routes on track 0: invalid unless the graph has no edges.
	colors := make([]int, len(gr.Routes))
	if _, err := AssignTracks(gr, colors, 1); err == nil {
		t.Fatal("conflicting track assignment accepted")
	}
	// Out-of-range track.
	first := -1
	g.ForEachEdge(func(u, v int) {
		if first < 0 {
			first = u
		}
	})
	colors2, w := coloring.DSATUR(g)
	colors2[first] = w + 3
	if _, err := AssignTracks(gr, colors2, w); err == nil {
		t.Fatal("out-of-range track accepted")
	}
}

func TestValidateCatchesBrokenRoutes(t *testing.T) {
	arch := Arch{Rows: 2, Cols: 2}
	nl := &Netlist{Name: "m", Arch: arch, Nets: []Net{{
		Name: "a", Pins: []Pin{{0, 0, Bottom}, {1, 1, Top}},
	}}}
	// Disconnected hop.
	gr := &GlobalRouting{Netlist: nl, Routes: []TwoPinNet{{
		Net: 0, Src: nl.Nets[0].Pins[0], Dst: nl.Nets[0].Pins[1],
		Segs: []SegID{arch.HSeg(0, 0), arch.HSeg(1, 2)},
	}}}
	if err := gr.Validate(); err == nil {
		t.Fatal("disconnected route accepted")
	}
	// Missing sink coverage.
	gr2 := &GlobalRouting{Netlist: nl}
	if err := gr2.Validate(); err == nil {
		t.Fatal("uncovered sink accepted")
	}
}

func TestNetlistValidate(t *testing.T) {
	arch := Arch{Rows: 2, Cols: 2}
	bad := &Netlist{Arch: arch, Nets: []Net{{Name: "a", Pins: []Pin{{0, 0, Bottom}}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("single-pin net accepted")
	}
	bad2 := &Netlist{Arch: arch, Nets: []Net{{Name: "a", Pins: []Pin{{0, 0, Bottom}, {5, 0, Top}}}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("off-array pin accepted")
	}
}

func TestSideAndSegNames(t *testing.T) {
	a := Arch{Rows: 2, Cols: 2}
	if a.SegName(a.HSeg(1, 0)) != "H(1,0)" || a.SegName(a.VSeg(0, 1)) != "V(0,1)" {
		t.Fatal("SegName format changed")
	}
	if Bottom.String() != "S" || Top.String() != "N" || Left.String() != "W" || Right.String() != "E" {
		t.Fatal("Side names changed")
	}
	p := Pin{1, 0, Top}
	if p.String() != "(1,0).N" {
		t.Fatalf("Pin.String = %q", p.String())
	}
}
