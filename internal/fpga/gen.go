package fpga

import (
	"fmt"
	"math/rand"
)

// GenParams controls the synthetic netlist generator that substitutes
// for the MCNC benchmark circuits (see DESIGN.md). Generation is fully
// deterministic for a given seed.
type GenParams struct {
	Rows, Cols int
	NumNets    int
	// Pin count per net is uniform in [MinPins, MaxPins] (including
	// the source).
	MinPins, MaxPins int
	// Locality is the maximum Chebyshev distance between a net's
	// source CLB and its sinks, mimicking the placement locality that
	// real placers produce. 0 means unconstrained.
	Locality int
	Seed     int64
}

func (p GenParams) validate() error {
	if p.Rows < 1 || p.Cols < 1 {
		return fmt.Errorf("fpga: bad array %dx%d", p.Cols, p.Rows)
	}
	if p.NumNets < 0 {
		return fmt.Errorf("fpga: negative net count")
	}
	if p.MinPins < 2 || p.MaxPins < p.MinPins {
		return fmt.Errorf("fpga: bad pin range [%d,%d]", p.MinPins, p.MaxPins)
	}
	return nil
}

// Generate builds a random placed netlist with the given parameters.
func Generate(name string, p GenParams) (*Netlist, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	arch := Arch{Rows: p.Rows, Cols: p.Cols}
	nl := &Netlist{Name: name, Arch: arch}
	for i := 0; i < p.NumNets; i++ {
		pins := p.MinPins
		if p.MaxPins > p.MinPins {
			pins += rng.Intn(p.MaxPins - p.MinPins + 1)
		}
		srcX, srcY := rng.Intn(p.Cols), rng.Intn(p.Rows)
		net := Net{
			Name: fmt.Sprintf("n%d", i),
			Pins: []Pin{{X: srcX, Y: srcY, Side: Side(rng.Intn(4))}},
		}
		for s := 1; s < pins; s++ {
			x, y := srcX, srcY
			// Resample until the sink is placed on a different CLB; a
			// bounded number of tries keeps generation total even for
			// 1x1 arrays, where self-placement is unavoidable.
			for try := 0; try < 16; try++ {
				if p.Locality > 0 {
					x = clamp(srcX+rng.Intn(2*p.Locality+1)-p.Locality, 0, p.Cols-1)
					y = clamp(srcY+rng.Intn(2*p.Locality+1)-p.Locality, 0, p.Rows-1)
				} else {
					x, y = rng.Intn(p.Cols), rng.Intn(p.Rows)
				}
				if x != srcX || y != srcY {
					break
				}
			}
			net.Pins = append(net.Pins, Pin{X: x, Y: y, Side: Side(rng.Intn(4))})
		}
		nl.Nets = append(nl.Nets, net)
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return nl, nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
