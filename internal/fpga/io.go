package fpga

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"fpgasat/internal/robust"
)

// This file provides a plain-text interchange format for netlists and
// global routings, playing the role SEGA's benchmark files played for
// the paper: placed circuits and their global routings can be saved,
// inspected and re-loaded, so detailed-routing experiments can run on
// externally supplied inputs as well as generated ones.
//
// Netlist format (one token stream, # comments):
//
//	netlist <name> <cols> <rows>
//	net <name> <x> <y> <side> [<x> <y> <side> ...]   # first pin drives
//
// Routing format (requires the netlist for validation):
//
//	routing <netlist-name>
//	route <net-index> <subnet-index> <src-x> <src-y> <src-side> \
//	      <dst-x> <dst-y> <dst-side> <seg> [<seg> ...]
//
// Sides are the single letters N, S, W, E; segments are written as
// H(x,y) / V(x,y) as printed by Arch.SegName.

// WriteNetlist serializes a netlist.
func WriteNetlist(w io.Writer, nl *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# fpgasat netlist\nnetlist %s %d %d\n", nl.Name, nl.Arch.Cols, nl.Arch.Rows)
	for _, n := range nl.Nets {
		fmt.Fprintf(bw, "net %s", n.Name)
		for _, p := range n.Pins {
			fmt.Fprintf(bw, " %d %d %s", p.X, p.Y, p.Side)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ParseNetlist reads the text format written by WriteNetlist.
func ParseNetlist(r io.Reader) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var nl *Netlist
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "netlist":
			if nl != nil {
				return nil, fmt.Errorf("fpga: line %d: duplicate netlist header", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("fpga: line %d: malformed netlist header", line)
			}
			cols, err1 := strconv.Atoi(fields[2])
			rows, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("fpga: line %d: bad array size", line)
			}
			nl = &Netlist{Name: fields[1], Arch: Arch{Rows: rows, Cols: cols}}
		case "net":
			if nl == nil {
				return nil, fmt.Errorf("fpga: line %d: net before netlist header", line)
			}
			if len(fields) < 2 || (len(fields)-2)%3 != 0 {
				return nil, fmt.Errorf("fpga: line %d: malformed net line", line)
			}
			net := Net{Name: fields[1]}
			for i := 2; i < len(fields); i += 3 {
				p, err := parsePin(fields[i], fields[i+1], fields[i+2])
				if err != nil {
					return nil, fmt.Errorf("fpga: line %d: %w", line, err)
				}
				net.Pins = append(net.Pins, p)
			}
			nl.Nets = append(nl.Nets, net)
		default:
			return nil, fmt.Errorf("fpga: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if nl == nil {
		return nil, fmt.Errorf("fpga: missing netlist header")
	}
	// The validator is written for in-process netlists, where invariant
	// violations are programmer errors; parsed input must never be able
	// to crash the process, so a panic here is converted to an error
	// (robustness contract of package robust).
	var verr error
	if cerr := robust.Capture("netlist validation", func() { verr = nl.Validate() }); cerr != nil {
		return nil, &robust.InputError{Source: "netlist", Err: cerr}
	}
	if verr != nil {
		return nil, verr
	}
	return nl, nil
}

func parsePin(xs, ys, side string) (Pin, error) {
	x, err1 := strconv.Atoi(xs)
	y, err2 := strconv.Atoi(ys)
	if err1 != nil || err2 != nil {
		return Pin{}, fmt.Errorf("bad pin coordinates %q %q", xs, ys)
	}
	s, err := parseSide(side)
	if err != nil {
		return Pin{}, err
	}
	return Pin{X: x, Y: y, Side: s}, nil
}

func parseSide(s string) (Side, error) {
	switch s {
	case "S":
		return Bottom, nil
	case "N":
		return Top, nil
	case "W":
		return Left, nil
	case "E":
		return Right, nil
	}
	return 0, fmt.Errorf("bad side %q", s)
}

// WriteRouting serializes a global routing (without its netlist).
func WriteRouting(w io.Writer, gr *GlobalRouting) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# fpgasat global routing\nrouting %s\n", gr.Netlist.Name)
	arch := gr.Netlist.Arch
	for _, r := range gr.Routes {
		fmt.Fprintf(bw, "route %d %d %d %d %s %d %d %s",
			r.Net, r.Index, r.Src.X, r.Src.Y, r.Src.Side, r.Dst.X, r.Dst.Y, r.Dst.Side)
		for _, s := range r.Segs {
			fmt.Fprintf(bw, " %s", arch.SegName(s))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ParseRouting reads a global routing written by WriteRouting and
// validates it against the netlist.
func ParseRouting(r io.Reader, nl *Netlist) (*GlobalRouting, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	gr := &GlobalRouting{Netlist: nl}
	headerSeen := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "routing":
			if len(fields) != 2 || fields[1] != nl.Name {
				return nil, fmt.Errorf("fpga: line %d: routing header %q does not match netlist %q",
					line, text, nl.Name)
			}
			headerSeen = true
		case "route":
			if !headerSeen {
				return nil, fmt.Errorf("fpga: line %d: route before routing header", line)
			}
			if len(fields) < 10 {
				return nil, fmt.Errorf("fpga: line %d: malformed route", line)
			}
			ni, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("fpga: line %d: bad net index", line)
			}
			si, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("fpga: line %d: bad subnet index", line)
			}
			if ni < 0 || ni >= len(nl.Nets) {
				return nil, fmt.Errorf("fpga: line %d: net index %d outside netlist (%d nets)",
					line, ni, len(nl.Nets))
			}
			src, err := parsePin(fields[3], fields[4], fields[5])
			if err != nil {
				return nil, fmt.Errorf("fpga: line %d: %w", line, err)
			}
			dst, err := parsePin(fields[6], fields[7], fields[8])
			if err != nil {
				return nil, fmt.Errorf("fpga: line %d: %w", line, err)
			}
			// Bound-check here, at the input boundary: downstream
			// consumers (Arch.PinSeg, Validate) treat out-of-range pins
			// as programmer errors and panic.
			for _, p := range []Pin{src, dst} {
				if p.X < 0 || p.X >= nl.Arch.Cols || p.Y < 0 || p.Y >= nl.Arch.Rows {
					return nil, fmt.Errorf("fpga: line %d: pin %v outside %dx%d array",
						line, p, nl.Arch.Cols, nl.Arch.Rows)
				}
			}
			route := TwoPinNet{Net: ni, Index: si, Src: src, Dst: dst}
			for _, seg := range fields[9:] {
				s, err := parseSegName(nl.Arch, seg)
				if err != nil {
					return nil, fmt.Errorf("fpga: line %d: %w", line, err)
				}
				route.Segs = append(route.Segs, s)
			}
			gr.Routes = append(gr.Routes, route)
		default:
			return nil, fmt.Errorf("fpga: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !headerSeen {
		return nil, fmt.Errorf("fpga: missing routing header")
	}
	// Same contract as ParseNetlist: a validator panic on corrupted
	// parsed input becomes an error, never a crash.
	var verr error
	if cerr := robust.Capture("routing validation", func() { verr = gr.Validate() }); cerr != nil {
		return nil, &robust.InputError{Source: "routing", Err: cerr}
	}
	if verr != nil {
		return nil, verr
	}
	return gr, nil
}

// parseSegName parses "H(x,y)" / "V(x,y)" as printed by Arch.SegName.
func parseSegName(a Arch, s string) (SegID, error) {
	if len(s) < 6 || s[1] != '(' || s[len(s)-1] != ')' {
		return 0, fmt.Errorf("bad segment %q", s)
	}
	parts := strings.Split(s[2:len(s)-1], ",")
	if len(parts) != 2 {
		return 0, fmt.Errorf("bad segment %q", s)
	}
	x, err1 := strconv.Atoi(parts[0])
	y, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return 0, fmt.Errorf("bad segment %q", s)
	}
	switch s[0] {
	case 'H':
		if x < 0 || x >= a.Cols || y < 0 || y > a.Rows {
			return 0, fmt.Errorf("segment %q outside array", s)
		}
		return a.HSeg(x, y), nil
	case 'V':
		if x < 0 || x > a.Cols || y < 0 || y >= a.Rows {
			return 0, fmt.Errorf("segment %q outside array", s)
		}
		return a.VSeg(x, y), nil
	}
	return 0, fmt.Errorf("bad segment %q", s)
}
