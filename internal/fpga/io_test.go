package fpga

import (
	"bytes"
	"strings"
	"testing"
)

func TestNetlistRoundtrip(t *testing.T) {
	nl, err := Generate("rt", GenParams{
		Rows: 7, Cols: 9, NumNets: 25, MinPins: 2, MaxPins: 5, Locality: 3, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNetlist(&buf, nl); err != nil {
		t.Fatal(err)
	}
	got, err := ParseNetlist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != nl.Name || got.Arch != nl.Arch || len(got.Nets) != len(nl.Nets) {
		t.Fatalf("header mismatch: %+v vs %+v", got, nl)
	}
	for i := range nl.Nets {
		if got.Nets[i].Name != nl.Nets[i].Name || len(got.Nets[i].Pins) != len(nl.Nets[i].Pins) {
			t.Fatalf("net %d mismatch", i)
		}
		for j := range nl.Nets[i].Pins {
			if got.Nets[i].Pins[j] != nl.Nets[i].Pins[j] {
				t.Fatalf("net %d pin %d: %v vs %v", i, j, got.Nets[i].Pins[j], nl.Nets[i].Pins[j])
			}
		}
	}
}

func TestRoutingRoundtrip(t *testing.T) {
	nl, err := Generate("rt2", GenParams{
		Rows: 6, Cols: 6, NumNets: 20, MinPins: 2, MaxPins: 4, Locality: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	gr, _, err := RouteGlobal(nl, RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRouting(&buf, gr); err != nil {
		t.Fatal(err)
	}
	got, err := ParseRouting(&buf, nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Routes) != len(gr.Routes) {
		t.Fatalf("%d routes vs %d", len(got.Routes), len(gr.Routes))
	}
	for i := range gr.Routes {
		a, b := gr.Routes[i], got.Routes[i]
		if a.Net != b.Net || a.Index != b.Index || a.Src != b.Src || a.Dst != b.Dst ||
			len(a.Segs) != len(b.Segs) {
			t.Fatalf("route %d mismatch: %+v vs %+v", i, a, b)
		}
		for j := range a.Segs {
			if a.Segs[j] != b.Segs[j] {
				t.Fatalf("route %d seg %d mismatch", i, j)
			}
		}
	}
	// Conflict graphs must agree exactly.
	g1, g2 := gr.ConflictGraph(), got.ConflictGraph()
	if g1.N() != g2.N() || g1.M() != g2.M() {
		t.Fatal("conflict graphs differ after roundtrip")
	}
}

func TestParseNetlistErrors(t *testing.T) {
	cases := []string{
		"net a 0 0 N 1 1 S\n",                // net before header
		"netlist a x 3\n",                    // bad size
		"netlist a 3 3\nnetlist b 3 3\n",     // duplicate header
		"netlist a 3 3\nnet n 0 0\n",         // truncated pin
		"netlist a 3 3\nnet n 0 0 Q 1 1 N\n", // bad side
		"netlist a 3 3\nnet n 0 0 N\n",       // single pin (Validate)
		"netlist a 3 3\nnet n 0 0 N 9 9 S\n", // off-array pin
		"netlist a 3 3\nfrob\n",              // unknown directive
		"",                                   // missing header
	}
	for _, in := range cases {
		if _, err := ParseNetlist(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestParseRoutingErrors(t *testing.T) {
	nl := &Netlist{Name: "m", Arch: Arch{Rows: 2, Cols: 2}, Nets: []Net{
		{Name: "a", Pins: []Pin{{0, 0, Bottom}, {1, 0, Bottom}}},
	}}
	cases := []string{
		"route 0 0 0 0 S 1 0 S H(0,0) H(1,0)\n",            // before header
		"routing other\n",                                  // wrong netlist name
		"routing m\nroute 0 0\n",                           // truncated
		"routing m\nroute 0 0 0 0 S 1 0 S H(0,0) H(5,9)\n", // segment off array
		"routing m\nroute 0 0 0 0 S 1 0 S H(0,0) X(1,0)\n", // bad segment kind
		"routing m\nroute 0 0 0 0 S 1 0 S H(0,0) H(0,1)\n", // not adjacent / wrong end
		"routing m\n", // sink uncovered (Validate)
		// Out-of-range pins and net indices used to reach Arch.PinSeg
		// and panic; they must be rejected at the parse boundary.
		"routing m\nroute 0 0 9 9 S 1 0 S H(0,0) H(1,0)\n",  // src pin off array
		"routing m\nroute 0 0 0 0 S 7 -1 S H(0,0) H(1,0)\n", // dst pin off array
		"routing m\nroute 5 0 0 0 S 1 0 S H(0,0) H(1,0)\n",  // net index too large
		"routing m\nroute -1 0 0 0 S 1 0 S H(0,0) H(1,0)\n", // negative net index
	}
	for _, in := range cases {
		if _, err := ParseRouting(strings.NewReader(in), nl); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestParseSegName(t *testing.T) {
	a := Arch{Rows: 3, Cols: 4}
	s, err := parseSegName(a, "H(2,1)")
	if err != nil || s != a.HSeg(2, 1) {
		t.Fatalf("%v %v", s, err)
	}
	v, err := parseSegName(a, "V(4,2)")
	if err != nil || v != a.VSeg(4, 2) {
		t.Fatalf("%v %v", v, err)
	}
	for _, bad := range []string{"", "H", "H(1)", "H(a,b)", "H(9,9)", "V(9,9)", "Z(1,1)"} {
		if _, err := parseSegName(a, bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestRenderOccupancy(t *testing.T) {
	nl, err := Generate("r", GenParams{Rows: 3, Cols: 3, NumNets: 6, MinPins: 2, MaxPins: 2, Locality: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	gr, _, err := RouteGlobal(nl, RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderOccupancy(gr)
	if !strings.Contains(out, "[CLB]") || !strings.Contains(out, "array 3x3") {
		t.Fatalf("render output malformed:\n%s", out)
	}
	// 4 horizontal channel lines (y=3..0) and 3 CLB rows.
	if got := strings.Count(out, "[CLB]"); got != 9 {
		t.Fatalf("%d CLB cells, want 9", got)
	}
}

func TestRenderTracks(t *testing.T) {
	nl, err := Generate("r2", GenParams{Rows: 3, Cols: 3, NumNets: 4, MinPins: 2, MaxPins: 2, Locality: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	gr, _, err := RouteGlobal(nl, RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	colors := make([]int, len(gr.Routes))
	for i := range colors {
		colors[i] = i // all distinct: trivially legal
	}
	dr, err := AssignTracks(gr, colors, len(colors))
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTracks(dr)
	if !strings.Contains(out, "track 0") || !strings.Contains(out, "n0.0") {
		t.Fatalf("track render malformed:\n%s", out)
	}
}
