package fpga

import "fmt"

// Net is a multi-pin net: Pins[0] is the source (driver), the rest are
// sinks.
type Net struct {
	Name string
	Pins []Pin
}

// Netlist is a placed circuit on an island-style array: the
// architecture plus the nets to route.
type Netlist struct {
	Name string
	Arch Arch
	Nets []Net
}

// Validate checks that every net has a source and at least one sink
// and that all pins are on the array.
func (nl *Netlist) Validate() error {
	if err := nl.Arch.Validate(); err != nil {
		return err
	}
	for i, n := range nl.Nets {
		if len(n.Pins) < 2 {
			return fmt.Errorf("fpga: net %d (%s) has %d pins, need >= 2", i, n.Name, len(n.Pins))
		}
		for _, p := range n.Pins {
			if p.X < 0 || p.X >= nl.Arch.Cols || p.Y < 0 || p.Y >= nl.Arch.Rows {
				return fmt.Errorf("fpga: net %d (%s) pin %v outside array", i, n.Name, p)
			}
			if p.Side < Bottom || p.Side > Right {
				return fmt.Errorf("fpga: net %d (%s) pin %v has bad side", i, n.Name, p)
			}
		}
	}
	return nil
}

// NumPins returns the total pin count over all nets.
func (nl *Netlist) NumPins() int {
	n := 0
	for _, net := range nl.Nets {
		n += len(net.Pins)
	}
	return n
}

// TwoPinNet is one 2-pin subnet of a decomposed multi-pin net: the
// sequence of channel segments its global route passes through,
// from the segment adjacent to Src to the segment adjacent to Dst.
type TwoPinNet struct {
	Net   int // index of the parent multi-pin net in the netlist
	Index int // index of this subnet within the parent net
	Src   Pin
	Dst   Pin
	Segs  []SegID
}

// Label names the subnet for conflict-graph vertex labels.
func (t TwoPinNet) Label(nl *Netlist) string {
	return fmt.Sprintf("%s.%d", nl.Nets[t.Net].Name, t.Index)
}

// GlobalRouting is a complete global routing of a netlist: every
// multi-pin net decomposed into 2-pin nets with segment-level paths,
// not yet assigned to tracks. This is the input of the paper's
// detailed-routing problem (what SEGA-1.1 supplied for the MCNC
// benchmarks).
type GlobalRouting struct {
	Netlist *Netlist
	Routes  []TwoPinNet
}

// Validate checks that every route is a connected segment path joining
// its endpoints' connection blocks, and that every net's sinks are
// covered by exactly one route each.
func (gr *GlobalRouting) Validate() error {
	arch := gr.Netlist.Arch
	covered := make([]map[Pin]bool, len(gr.Netlist.Nets))
	for i := range covered {
		covered[i] = map[Pin]bool{}
	}
	for ri, r := range gr.Routes {
		if r.Net < 0 || r.Net >= len(gr.Netlist.Nets) {
			return fmt.Errorf("fpga: route %d references net %d", ri, r.Net)
		}
		if len(r.Segs) == 0 {
			return fmt.Errorf("fpga: route %d (%s) has no segments", ri, r.Label(gr.Netlist))
		}
		if r.Segs[0] != arch.PinSeg(r.Src) {
			return fmt.Errorf("fpga: route %d does not start at source pin segment", ri)
		}
		if r.Segs[len(r.Segs)-1] != arch.PinSeg(r.Dst) {
			return fmt.Errorf("fpga: route %d does not end at sink pin segment", ri)
		}
		for i := 1; i < len(r.Segs); i++ {
			adj := false
			for _, t := range arch.Adjacent(r.Segs[i-1]) {
				if t == r.Segs[i] {
					adj = true
					break
				}
			}
			if !adj {
				return fmt.Errorf("fpga: route %d hop %d: %s not adjacent to %s", ri, i,
					arch.SegName(r.Segs[i-1]), arch.SegName(r.Segs[i]))
			}
		}
		covered[r.Net][r.Dst] = true
	}
	for ni, net := range gr.Netlist.Nets {
		for _, sink := range net.Pins[1:] {
			if !covered[ni][sink] {
				return fmt.Errorf("fpga: net %d (%s) sink %v has no route", ni, net.Name, sink)
			}
		}
	}
	return nil
}

// Occupancy returns, per segment, the number of distinct multi-pin
// nets whose routes pass through it. Subnets of the same net share
// tracks, so they count once.
func (gr *GlobalRouting) Occupancy() []int {
	occ := make([]int, gr.Netlist.Arch.NumSegs())
	seen := make(map[int64]bool)
	for _, r := range gr.Routes {
		for _, s := range r.Segs {
			key := int64(r.Net)<<32 | int64(s)
			if !seen[key] {
				seen[key] = true
				occ[s]++
			}
		}
	}
	return occ
}

// MaxCongestion returns the maximum segment occupancy — a lower bound
// on the channel width required for any detailed routing, since nets
// sharing a connection block form a clique in the conflict graph.
func (gr *GlobalRouting) MaxCongestion() int {
	max := 0
	for _, o := range gr.Occupancy() {
		if o > max {
			max = o
		}
	}
	return max
}

// TotalWirelength returns the total number of segment hops over all
// routes.
func (gr *GlobalRouting) TotalWirelength() int {
	n := 0
	for _, r := range gr.Routes {
		n += len(r.Segs)
	}
	return n
}
