package fpga

import (
	"fmt"
	"strings"
)

// RenderOccupancy draws the FPGA array as ASCII art with per-channel-
// segment occupancy (distinct nets), used by examples and debugging.
// CLBs are boxes, horizontal channels run between CLB rows, vertical
// channels between CLB columns; each segment shows its occupancy count
// (dot for zero, '*' for 10 or more).
//
// The drawing is oriented with y growing upward (row Rows-1 printed
// first), matching the coordinate system of Arch.
func RenderOccupancy(gr *GlobalRouting) string {
	arch := gr.Netlist.Arch
	occ := gr.Occupancy()
	glyph := func(s SegID) byte {
		switch n := occ[s]; {
		case n == 0:
			return '.'
		case n < 10:
			return byte('0' + n)
		default:
			return '*'
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "array %dx%d, max congestion %d\n", arch.Cols, arch.Rows, gr.MaxCongestion())
	// Top to bottom: horizontal channel y=Rows, then row Rows-1, etc.
	for y := arch.Rows; y >= 0; y-- {
		// Horizontal channel y.
		sb.WriteString("  ")
		for x := 0; x < arch.Cols; x++ {
			sb.WriteString("+--")
			sb.WriteByte(glyph(arch.HSeg(x, y)))
			sb.WriteString("--")
		}
		sb.WriteString("+\n")
		if y == 0 {
			break
		}
		// CLB row y-1 with vertical channel segments at each x.
		sb.WriteString("  ")
		for x := 0; x <= arch.Cols; x++ {
			sb.WriteByte(glyph(arch.VSeg(x, y-1)))
			if x < arch.Cols {
				sb.WriteString("[CLB]")
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// RenderTracks lists the detailed routing as text: every 2-pin net
// with its track and path.
func RenderTracks(dr *DetailedRouting) string {
	var sb strings.Builder
	gr := dr.Global
	arch := gr.Netlist.Arch
	fmt.Fprintf(&sb, "detailed routing with W=%d tracks, %d 2-pin nets\n", dr.W, len(gr.Routes))
	for i, r := range gr.Routes {
		names := make([]string, len(r.Segs))
		for j, s := range r.Segs {
			names[j] = arch.SegName(s)
		}
		fmt.Fprintf(&sb, "  %-14s %v -> %v  track %d  via %s\n",
			r.Label(gr.Netlist), r.Src, r.Dst, dr.Tracks[i], strings.Join(names, " "))
	}
	return sb.String()
}
