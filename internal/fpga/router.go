package fpga

import (
	"container/heap"
	"fmt"
)

// RouteOptions configure the negotiated-congestion global router.
// The zero value selects reasonable defaults.
type RouteOptions struct {
	// Capacity is the per-segment net capacity the negotiation aims
	// for. It only shapes the global routing; whether W tracks suffice
	// is afterwards decided exactly by the SAT flow. Default 4.
	Capacity int
	// MaxIters bounds the rip-up-and-reroute iterations. Default 16.
	MaxIters int
	// PresFac is the initial present-congestion penalty factor,
	// multiplied by PresGrowth each iteration. Defaults 0.5 and 1.6.
	PresFac    float64
	PresGrowth float64
	// HistFac accumulates history cost on overused segments. Default 0.4.
	HistFac float64
}

func (o RouteOptions) withDefaults() RouteOptions {
	if o.Capacity == 0 {
		o.Capacity = 4
	}
	if o.MaxIters == 0 {
		o.MaxIters = 16
	}
	if o.PresFac == 0 {
		o.PresFac = 0.5
	}
	if o.PresGrowth == 0 {
		o.PresGrowth = 1.6
	}
	if o.HistFac == 0 {
		o.HistFac = 0.4
	}
	return o
}

// RouteGlobal produces a global routing of the netlist using
// PathFinder-style negotiated congestion: every multi-pin net is
// decomposed into source-to-sink 2-pin nets (as in Sect. 2 of the
// paper), each routed by Dijkstra over the channel-segment graph with
// congestion-dependent costs; overused segments become progressively
// more expensive across rip-up iterations until the occupancy target
// is met or iterations run out. The routing is deterministic.
//
// The second return value reports whether the occupancy target was
// met; the routing is valid (connected, pin-anchored) either way.
func RouteGlobal(nl *Netlist, opts RouteOptions) (*GlobalRouting, bool, error) {
	if err := nl.Validate(); err != nil {
		return nil, false, err
	}
	opts = opts.withDefaults()
	arch := nl.Arch
	nSegs := arch.NumSegs()

	// Precompute adjacency.
	adj := make([][]SegID, nSegs)
	for s := 0; s < nSegs; s++ {
		adj[s] = arch.Adjacent(SegID(s))
	}

	hist := make([]float64, nSegs)
	occ := make([]int, nSegs)           // distinct nets per segment
	netSegs := make([]map[SegID]int, 0) // per net: segment -> use count
	for range nl.Nets {
		netSegs = append(netSegs, map[SegID]int{})
	}
	routes := make([][]SegID, 0) // one per (net, sink) in order
	type routeKey struct{ net, sink int }
	routeIdx := map[routeKey]int{}
	for ni, net := range nl.Nets {
		for si := range net.Pins[1:] {
			routeIdx[routeKey{ni, si}] = len(routes)
			routes = append(routes, nil)
		}
	}

	addSeg := func(net int, s SegID) {
		if netSegs[net][s] == 0 {
			occ[s]++
		}
		netSegs[net][s]++
	}
	removeSeg := func(net int, s SegID) {
		netSegs[net][s]--
		if netSegs[net][s] == 0 {
			delete(netSegs[net], s)
			occ[s]--
		}
	}

	presFac := opts.PresFac
	converged := false
	for iter := 0; iter < opts.MaxIters; iter++ {
		for ni, net := range nl.Nets {
			for si, sink := range net.Pins[1:] {
				ri := routeIdx[routeKey{ni, si}]
				// Rip up the previous route of this subnet.
				for _, s := range routes[ri] {
					removeSeg(ni, s)
				}
				path := dijkstra(adj, arch.PinSeg(net.Pins[0]), arch.PinSeg(sink),
					func(s SegID) float64 {
						// Segments already used by this net are free:
						// subnets of one net share tracks.
						if netSegs[ni][s] > 0 {
							return 0.01
						}
						cost := 1.0 + hist[s]
						if over := occ[s] + 1 - opts.Capacity; over > 0 {
							cost += presFac * float64(over)
						}
						return cost
					})
				routes[ri] = path
				for _, s := range path {
					addSeg(ni, s)
				}
			}
		}
		// Check overuse and update history costs.
		over := false
		for s := 0; s < nSegs; s++ {
			if occ[s] > opts.Capacity {
				over = true
				hist[s] += opts.HistFac * float64(occ[s]-opts.Capacity)
			}
		}
		if !over {
			converged = true
			break
		}
		presFac *= opts.PresGrowth
	}

	gr := &GlobalRouting{Netlist: nl}
	for ni, net := range nl.Nets {
		for si, sink := range net.Pins[1:] {
			ri := routeIdx[routeKey{ni, si}]
			gr.Routes = append(gr.Routes, TwoPinNet{
				Net:   ni,
				Index: si,
				Src:   net.Pins[0],
				Dst:   sink,
				Segs:  routes[ri],
			})
		}
	}
	if err := gr.Validate(); err != nil {
		return nil, false, fmt.Errorf("fpga: router produced invalid routing: %w", err)
	}
	return gr, converged, nil
}

// dijkstra finds a min-cost segment path from src to dst, where cost
// is charged per segment entered (including src and dst). The segment
// graph is connected, so a path always exists.
func dijkstra(adj [][]SegID, src, dst SegID, cost func(SegID) float64) []SegID {
	n := len(adj)
	const inf = 1e18
	dist := make([]float64, n)
	prev := make([]SegID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	pq := &segHeap{}
	dist[src] = cost(src)
	heap.Push(pq, segDist{src, dist[src]})
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(segDist)
		if done[cur.seg] {
			continue
		}
		done[cur.seg] = true
		if cur.seg == dst {
			break
		}
		for _, nxt := range adj[cur.seg] {
			if done[nxt] {
				continue
			}
			nd := cur.dist + cost(nxt)
			if nd < dist[nxt] {
				dist[nxt] = nd
				prev[nxt] = cur.seg
				heap.Push(pq, segDist{nxt, nd})
			}
		}
	}
	// Reconstruct.
	var rev []SegID
	for s := dst; s != -1; s = prev[s] {
		rev = append(rev, s)
		if s == src {
			break
		}
	}
	path := make([]SegID, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	return path
}

type segDist struct {
	seg  SegID
	dist float64
}

type segHeap []segDist

func (h segHeap) Len() int { return len(h) }
func (h segHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].seg < h[j].seg
}
func (h segHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *segHeap) Push(x interface{}) { *h = append(*h, x.(segDist)) }
func (h *segHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
