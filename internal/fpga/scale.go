package fpga

import (
	"fmt"
	"math"

	"fpgasat/internal/graph"
)

// This file is the tile-templated instance generator for scaling
// studies. The explicit flow (Generate → RouteGlobal → ConflictGraph)
// materializes per-route segment lists and per-segment buckets, which
// caps it at ~10³ nets. GenerateScaled skips the netlist and router
// entirely: a tile's possible 2-pin routes are drawn from a small
// library of switch-block templates whose pairwise conflicts are
// interned ONCE, and the fabric is an R×C instantiation of that
// library. Edges stream straight into the CSR builder, so conflict
// graphs with 10⁵–10⁶ nets fit in the flat offset/neighbor arrays with
// no per-tile objects at all.
//
// The template library models a subset-switch-block tile with four
// corner turns. In tile coordinates, a tile (x,y) touches four channel
// segments: Hlow = H(x,y), Hhigh = H(x,y+1), Vleft = V(x,y), and
// Vright = V(x+1,y); Hhigh is the next tile up's Hlow, and Vright the
// next tile right's Vleft — that sharing is what stitches tiles
// together. With channel width W = 4d the library holds T = 4d
// templates per tile, d copies of each corner turn:
//
//	group A: {Vleft, Hlow}    group B: {Hlow, Vright}
//	group C: {Vright, Hhigh}  group D: {Hhigh, Vleft}
//
// Each instantiated template is its own 2-pin net, so two templates
// conflict exactly when they share a physical segment. Geometrically
// that can only happen at tile offsets (0,0), (1,0) and (0,1):
// same-tile templates meet on any of the four segments, a tile and its
// right neighbor share Vright=Vleft, a tile and its upper neighbor
// share Hhigh=Hlow. H and V segments never alias. All three conflict
// pair lists are interned up front and replayed per tile.
//
// At full utilization the instance's minimum channel width is exactly
// W: every interior segment carries 4d = W mutually conflicting
// templates (a W-clique), and the block coloring
// color = group*d + copy is proper — within a tile conflicting groups
// differ, and both cross-tile conflict lists pair {B,C}×{A,D} or
// {C,D}×{A,B}, which never agree on the group. BlockColoring exposes
// that witness; TestGenerateScaledChromaticNumber pins the argument.
type ScaleParams struct {
	// Fabric size in tiles.
	Rows, Cols int
	// ChannelWidth is W, the number of tracks per channel; it must be
	// a positive multiple of 4 (d = W/4 copies of each corner turn).
	ChannelWidth int
	// Utilization is the fraction of each tile's template library that
	// is instantiated, in (0,1]. 0 means 1.0 (full). Selection rotates
	// with the tile index so dropped templates vary across the fabric.
	Utilization float64
	// Crosstalk turns the instance into a bandwidth-coloring problem:
	// every pair of templates sharing a physical segment must sit at
	// least Crosstalk tracks apart (|track(u)-track(v)| >= Crosstalk).
	// 0 and 1 are the classic disequality instance. At full utilization
	// the calibrated minimum width becomes
	// (ChannelWidth-1)*Crosstalk + 1: the W-clique on each interior
	// segment needs a color span of (W-1)*Crosstalk, and spreading
	// BlockColoring by the Crosstalk stride witnesses sufficiency.
	Crosstalk int
}

// ScaleStats summarizes a generated instance for benchmark reports.
type ScaleStats struct {
	Rows, Cols   int
	ChannelWidth int
	Nets         int // vertices of the conflict graph
	Edges        int
	CliqueLB     int // max templates on one physical segment
	GraphBytes   int // CSR storage of the conflict graph
}

func (p ScaleParams) validate() error {
	if p.Rows < 1 || p.Cols < 1 {
		return fmt.Errorf("fpga: bad fabric %dx%d", p.Cols, p.Rows)
	}
	if p.ChannelWidth < 4 || p.ChannelWidth%4 != 0 {
		return fmt.Errorf("fpga: channel width %d is not a positive multiple of 4", p.ChannelWidth)
	}
	if p.Utilization < 0 || p.Utilization > 1 {
		return fmt.Errorf("fpga: utilization %g outside (0,1]", p.Utilization)
	}
	if p.Crosstalk < 0 || p.Crosstalk > MaxCrosstalk {
		return fmt.Errorf("fpga: crosstalk %d outside [0,%d]", p.Crosstalk, MaxCrosstalk)
	}
	return nil
}

// MaxCrosstalk caps the crosstalk spacing a scaled instance may
// request: widths grow linearly with it, so the cap bounds the encoded
// formula size like the registry caps bound generator work.
const MaxCrosstalk = 64

// templatePairs interns the conflict structure of the template library
// for one channel width: every pair list is in template-index space
// (template t = group*d + copy) and is replayed verbatim for each tile.
type templatePairs struct {
	d, t  int
	intra [][2]int // same tile
	right [][2]int // (a in tile, b in right neighbor)
	up    [][2]int // (a in tile, b in upper neighbor)
}

func internTemplatePairs(w int) *templatePairs {
	d := w / 4
	tp := &templatePairs{d: d, t: 4 * d}
	id := func(group, copy int) int { return group*d + copy }
	// Same tile: copies of one group share both segments; adjacent
	// groups (A-B on Hlow, B-C on Vright, C-D on Hhigh, D-A on Vleft)
	// share one. Opposite groups (A-C, B-D) touch disjoint segments.
	for g := 0; g < 4; g++ {
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				tp.intra = append(tp.intra, [2]int{id(g, i), id(g, j)})
			}
		}
	}
	for g := 0; g < 4; g++ {
		h := (g + 1) % 4
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				tp.intra = append(tp.intra, [2]int{id(g, i), id(h, j)})
			}
		}
	}
	// Right neighbor: this tile's Vright is the neighbor's Vleft, so
	// users of Vright here ({B,C}) meet users of Vleft there ({A,D}).
	for _, g := range []int{1, 2} {
		for _, h := range []int{0, 3} {
			for i := 0; i < d; i++ {
				for j := 0; j < d; j++ {
					tp.right = append(tp.right, [2]int{id(g, i), id(h, j)})
				}
			}
		}
	}
	// Upper neighbor: this tile's Hhigh is the neighbor's Hlow, so
	// users of Hhigh here ({C,D}) meet users of Hlow there ({A,B}).
	for _, g := range []int{2, 3} {
		for _, h := range []int{0, 1} {
			for i := 0; i < d; i++ {
				for j := 0; j < d; j++ {
					tp.up = append(tp.up, [2]int{id(g, i), id(h, j)})
				}
			}
		}
	}
	return tp
}

// templateSegs returns the two tile-relative segments of template t,
// encoded as 0=Hlow, 1=Hhigh, 2=Vleft, 3=Vright.
func templateSegs(t, d int) (int, int) {
	switch t / d {
	case 0:
		return 2, 0 // A: Vleft, Hlow
	case 1:
		return 0, 3 // B: Hlow, Vright
	case 2:
		return 3, 1 // C: Vright, Hhigh
	default:
		return 1, 2 // D: Hhigh, Vleft
	}
}

// GenerateScaled instantiates the template library across the fabric
// and returns the conflict graph of all instantiated 2-pin nets plus
// its statistics. The graph streams directly into CSR storage; nothing
// proportional to the tile count is allocated beyond it.
func GenerateScaled(p ScaleParams) (*graph.Graph, ScaleStats, error) {
	if err := p.validate(); err != nil {
		return nil, ScaleStats{}, err
	}
	util := p.Utilization
	if util == 0 {
		util = 1
	}
	tp := internTemplatePairs(p.ChannelWidth)
	t := tp.t
	keep := int(math.Round(util * float64(t)))
	if keep < 1 {
		keep = 1
	}

	// Utilization drops templates per tile with a selection that
	// rotates by tile index. The kept set depends only on tile%t, so
	// rank tables (template -> dense per-tile slot, or -1) are interned
	// per residue, like the pair lists.
	rank := make([][]int, t)
	for r := 0; r < t; r++ {
		rank[r] = make([]int, t)
		next := 0
		for tmpl := 0; tmpl < t; tmpl++ {
			if (tmpl+r)%t < keep {
				rank[r][tmpl] = next
				next++
			} else {
				rank[r][tmpl] = -1
			}
		}
	}

	tiles := p.Rows * p.Cols
	n := tiles * keep
	vertex := func(tile, tmpl int) int {
		return tile*keep + rank[tile%t][tmpl]
	}
	edges := func(emit func(u, v int)) {
		for y := 0; y < p.Rows; y++ {
			for x := 0; x < p.Cols; x++ {
				tile := y*p.Cols + x
				kept := rank[tile%t]
				for _, pr := range tp.intra {
					if kept[pr[0]] >= 0 && kept[pr[1]] >= 0 {
						emit(vertex(tile, pr[0]), vertex(tile, pr[1]))
					}
				}
				if x+1 < p.Cols {
					nb := tile + 1
					keptNb := rank[nb%t]
					for _, pr := range tp.right {
						if kept[pr[0]] >= 0 && keptNb[pr[1]] >= 0 {
							emit(vertex(tile, pr[0]), vertex(nb, pr[1]))
						}
					}
				}
				if y+1 < p.Rows {
					nb := tile + p.Cols
					keptNb := rank[nb%t]
					for _, pr := range tp.up {
						if kept[pr[0]] >= 0 && keptNb[pr[1]] >= 0 {
							emit(vertex(tile, pr[0]), vertex(nb, pr[1]))
						}
					}
				}
			}
		}
	}
	var g *graph.Graph
	if p.Crosstalk >= 2 {
		// Every conflict is a shared physical segment, so the spacing
		// constraint applies uniformly to all edges.
		g = graph.FromWeightedEdgeStream(n, func(emit func(u, v, d int)) {
			edges(func(u, v int) { emit(u, v, p.Crosstalk) })
		})
	} else {
		g = graph.FromEdgeStream(n, edges)
	}

	stats := ScaleStats{
		Rows: p.Rows, Cols: p.Cols, ChannelWidth: p.ChannelWidth,
		Nets:       n,
		Edges:      g.M(),
		CliqueLB:   maxSegmentOccupancy(p, rank, tp.d),
		GraphBytes: g.Bytes(),
	}
	return g, stats, nil
}

// maxSegmentOccupancy counts, for every physical channel segment, how
// many instantiated templates use it, and returns the maximum. All
// templates on one segment conflict pairwise, so this is a clique (and
// channel-width) lower bound for the instance.
func maxSegmentOccupancy(p ScaleParams, rank [][]int, d int) int {
	t := 4 * d
	// H(x,y): x in [0,Cols), y in [0,Rows]; V(x,y): x in [0,Cols], y in [0,Rows).
	hOcc := make([]int, p.Cols*(p.Rows+1))
	vOcc := make([]int, (p.Cols+1)*p.Rows)
	for y := 0; y < p.Rows; y++ {
		for x := 0; x < p.Cols; x++ {
			tile := y*p.Cols + x
			kept := rank[tile%t]
			for tmpl := 0; tmpl < t; tmpl++ {
				if kept[tmpl] < 0 {
					continue
				}
				s1, s2 := templateSegs(tmpl, d)
				for _, s := range [2]int{s1, s2} {
					switch s {
					case 0: // Hlow = H(x,y)
						hOcc[y*p.Cols+x]++
					case 1: // Hhigh = H(x,y+1)
						hOcc[(y+1)*p.Cols+x]++
					case 2: // Vleft = V(x,y)
						vOcc[y*(p.Cols+1)+x]++
					default: // Vright = V(x+1,y)
						vOcc[y*(p.Cols+1)+x+1]++
					}
				}
			}
		}
	}
	best := 0
	for _, o := range hOcc {
		if o > best {
			best = o
		}
	}
	for _, o := range vOcc {
		if o > best {
			best = o
		}
	}
	return best
}

// BlockColoring returns the closed-form proper coloring of a
// full-utilization scaled instance: template group*d+copy gets color
// group*d+copy, using exactly ChannelWidth colors. With Crosstalk
// spacing s >= 2 the colors are spread by the stride s (template tmpl
// gets color tmpl*s): conflicting templates have distinct template
// indices, so their colors differ by at least s, witnessing that
// MinRoutableWidth tracks suffice. It is the witness that the
// instance's minimum channel width is at most MinRoutableWidth
// (CliqueLB shows the clique needs at least that span).
func BlockColoring(p ScaleParams) []int {
	d := p.ChannelWidth / 4
	t := 4 * d
	stride := p.Crosstalk
	if stride < 1 {
		stride = 1
	}
	colors := make([]int, p.Rows*p.Cols*t)
	for tile := 0; tile < p.Rows*p.Cols; tile++ {
		for tmpl := 0; tmpl < t; tmpl++ {
			colors[tile*t+tmpl] = tmpl * stride
		}
	}
	return colors
}

// MinRoutableWidth returns the calibrated minimum channel width of a
// full-utilization scaled instance: ChannelWidth for the classic
// disequality case, (ChannelWidth-1)*Crosstalk + 1 under crosstalk
// spacing (a W-clique with pairwise distance s spans (W-1)*s+1 tracks,
// and the strided BlockColoring achieves it).
func (p ScaleParams) MinRoutableWidth() int {
	s := p.Crosstalk
	if s < 1 {
		s = 1
	}
	return (p.ChannelWidth-1)*s + 1
}

// ScaledFabric returns the canonical scale-study parameters for a given
// scale factor: a square fabric whose side grows with √factor so the
// net count grows linearly with factor, at channel width 8. Factor 1 is
// calibrated near the largest MCNC instance; factor 100 exceeds 10⁵
// nets.
func ScaledFabric(factor int) ScaleParams {
	side := int(math.Round(12 * math.Sqrt(float64(factor))))
	if side < 1 {
		side = 1
	}
	return ScaleParams{Rows: side, Cols: side, ChannelWidth: 8, Utilization: 1}
}
