package fpga

import (
	"testing"

	"fpgasat/internal/coloring"
)

func TestGenerateScaledChromaticNumber(t *testing.T) {
	// At full utilization the minimum channel width is exactly W: the
	// interned block coloring is a proper W-coloring (upper bound) and
	// some segment carries a W-clique (lower bound). Check both on
	// several fabric shapes and widths, plus an independent exact
	// (W-1)-uncolorability proof on the smallest case.
	for _, tc := range []struct{ rows, cols, w int }{
		{2, 2, 4},
		{3, 4, 8},
		{5, 3, 12},
	} {
		p := ScaleParams{Rows: tc.rows, Cols: tc.cols, ChannelWidth: tc.w, Utilization: 1}
		g, stats, err := GenerateScaled(p)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != tc.rows*tc.cols*tc.w {
			t.Fatalf("%dx%d W=%d: N=%d, want %d", tc.cols, tc.rows, tc.w, g.N(), tc.rows*tc.cols*tc.w)
		}
		if stats.Nets != g.N() || stats.Edges != g.M() || stats.GraphBytes != g.Bytes() {
			t.Fatalf("stats disagree with graph: %+v", stats)
		}
		if stats.CliqueLB != tc.w {
			t.Fatalf("%dx%d W=%d: CliqueLB=%d, want %d", tc.cols, tc.rows, tc.w, stats.CliqueLB, tc.w)
		}
		if err := coloring.Verify(g, BlockColoring(p), tc.w); err != nil {
			t.Fatalf("%dx%d W=%d: block coloring improper: %v", tc.cols, tc.rows, tc.w, err)
		}
	}
	g, _, err := GenerateScaled(ScaleParams{Rows: 2, Cols: 2, ChannelWidth: 4, Utilization: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, sat, done := coloring.KColorable(g, 3, 0); !done || sat {
		t.Fatalf("2x2 W=4 fabric 3-colorable: sat=%v done=%v", sat, done)
	}
}

func TestGenerateScaledDeterministic(t *testing.T) {
	p := ScaleParams{Rows: 4, Cols: 5, ChannelWidth: 8, Utilization: 0.75}
	g1, s1, err := GenerateScaled(p)
	if err != nil {
		t.Fatal(err)
	}
	g2, s2, err := GenerateScaled(p)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 || g1.N() != g2.N() || g1.M() != g2.M() {
		t.Fatalf("generation not deterministic: %+v vs %+v", s1, s2)
	}
	var e1, e2 [][2]int
	g1.ForEachEdge(func(u, v int) { e1 = append(e1, [2]int{u, v}) })
	g2.ForEachEdge(func(u, v int) { e2 = append(e2, [2]int{u, v}) })
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestGenerateScaledUtilization(t *testing.T) {
	full, fs, err := GenerateScaled(ScaleParams{Rows: 6, Cols: 6, ChannelWidth: 8, Utilization: 1})
	if err != nil {
		t.Fatal(err)
	}
	half, hs, err := GenerateScaled(ScaleParams{Rows: 6, Cols: 6, ChannelWidth: 8, Utilization: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if hs.Nets != fs.Nets/2 {
		t.Fatalf("half utilization kept %d of %d nets", hs.Nets, fs.Nets)
	}
	if hs.Edges >= fs.Edges || hs.CliqueLB > fs.CliqueLB {
		t.Fatalf("half utilization not sparser: %+v vs %+v", hs, fs)
	}
	// A sparser instance must still color within W tracks.
	colors, used := coloring.DSATUR(half)
	if used > 8 {
		t.Fatalf("half-utilization instance needed %d > W tracks", used)
	}
	if err := coloring.Verify(half, colors, used); err != nil {
		t.Fatal(err)
	}
	_ = full
}

func TestGenerateScaledValidation(t *testing.T) {
	bad := []ScaleParams{
		{Rows: 0, Cols: 3, ChannelWidth: 4},
		{Rows: 3, Cols: 3, ChannelWidth: 6},  // not a multiple of 4
		{Rows: 3, Cols: 3, ChannelWidth: -4}, // negative
		{Rows: 3, Cols: 3, ChannelWidth: 4, Utilization: 1.5},
	}
	for _, p := range bad {
		if _, _, err := GenerateScaled(p); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

func TestScaledFabricGrowth(t *testing.T) {
	one := ScaledFabric(1)
	if one.Rows != 12 || one.Cols != 12 || one.ChannelWidth != 8 {
		t.Fatalf("1x fabric = %+v", one)
	}
	hundred := ScaledFabric(100)
	if hundred.Rows != 120 {
		t.Fatalf("100x side = %d", hundred.Rows)
	}
	_, stats, err := GenerateScaled(hundred)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Nets < 100000 {
		t.Fatalf("100x fabric has only %d nets, want >= 1e5", stats.Nets)
	}
}

func TestGenerateScaledCrosstalk(t *testing.T) {
	p := ScaleParams{Rows: 3, Cols: 3, ChannelWidth: 4, Utilization: 1, Crosstalk: 3}
	g, stats, err := GenerateScaled(p)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("crosstalk instance must be weighted")
	}
	if g.MaxEdgeWeight() != 3 {
		t.Fatalf("max edge distance %d, want 3", g.MaxEdgeWeight())
	}
	// The unweighted structure is unchanged: same nets and edges as the
	// classic instance.
	p0 := p
	p0.Crosstalk = 0
	g0, stats0, err := GenerateScaled(p0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Nets != stats0.Nets || stats.Edges != stats0.Edges {
		t.Fatalf("crosstalk changed the conflict structure: %d/%d vs %d/%d",
			stats.Nets, stats.Edges, stats0.Nets, stats0.Edges)
	}
	if g0.Weighted() {
		t.Fatal("crosstalk 0 must stay unweighted")
	}
	// The strided block coloring witnesses the calibrated width.
	w := p.MinRoutableWidth()
	if want := (4-1)*3 + 1; w != want {
		t.Fatalf("MinRoutableWidth=%d, want %d", w, want)
	}
	if err := coloring.Verify(g, BlockColoring(p), w); err != nil {
		t.Fatalf("strided block coloring invalid at width %d: %v", w, err)
	}
	// Crosstalk outside the cap is rejected.
	p.Crosstalk = MaxCrosstalk + 1
	if _, _, err := GenerateScaled(p); err == nil {
		t.Fatal("over-cap crosstalk accepted")
	}
}
