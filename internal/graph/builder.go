package graph

import (
	"fmt"
	"math"
	"sort"
)

// Builder accumulates an undirected graph under mutation — the map-based
// adjacency the package's Graph type used to expose directly — and
// Freeze()s it into the immutable CSR Graph every consumer reads.
// Self-loops are rejected (a 2-pin net cannot conflict with itself) and
// parallel edges are merged; weighted parallel edges keep the largest
// distance.
//
// Adjacency grows lazily: a Builder created for n vertices commits no
// per-vertex storage until edges touch the vertices, which is what lets
// the DIMACS parser accept a large declared vertex count without
// allocating for it up front.
type Builder struct {
	n int
	// adj maps neighbor -> edge distance (1 for classic disequality
	// edges). maxW tracks the largest distance added so Freeze knows
	// whether a weight array is needed at all.
	adj  []map[int32]int32
	m    int
	maxW int32

	// Labels optionally names vertices; carried into the frozen Graph.
	Labels []string
}

// NewBuilder creates a builder with n isolated vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// N returns the number of vertices.
func (b *Builder) N() int { return b.n }

// M returns the number of edges added so far.
func (b *Builder) M() int { return b.m }

// AddVertex appends an isolated vertex and returns its index.
func (b *Builder) AddVertex() int {
	b.n++
	return b.n - 1
}

// AddEdge inserts the undirected edge {u,v} with distance 1. Adding an
// existing edge is a no-op (an existing larger distance is kept);
// self-loops panic since they would make the coloring CSP trivially
// unsatisfiable by construction error. Out-of-range vertices panic too:
// these are programmer errors under the taxonomy of internal/robust —
// parse paths must validate before calling.
func (b *Builder) AddEdge(u, v int) {
	b.AddWeightedEdge(u, v, 1)
}

// AddWeightedEdge inserts the undirected edge {u,v} with distance
// d >= 1 (bandwidth coloring: |c(u)-c(v)| >= d). Re-adding an edge
// keeps the largest distance seen — the tighter constraint wins.
// Invalid distances panic like invalid vertices do.
func (b *Builder) AddWeightedEdge(u, v, d int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	if d < 1 || d > math.MaxInt32 {
		panic(fmt.Sprintf("graph: edge {%d,%d} has invalid distance %d", u, v, d))
	}
	b.check(u)
	b.check(v)
	b.grow(u)
	b.grow(v)
	if b.adj[u] == nil {
		b.adj[u] = make(map[int32]int32)
	}
	w := int32(d)
	if prev, dup := b.adj[u][int32(v)]; dup {
		if w > prev {
			b.adj[u][int32(v)] = w
			b.adj[v][int32(u)] = w
			if w > b.maxW {
				b.maxW = w
			}
		}
		return
	}
	if b.adj[v] == nil {
		b.adj[v] = make(map[int32]int32)
	}
	b.adj[u][int32(v)] = w
	b.adj[v][int32(u)] = w
	if w > b.maxW {
		b.maxW = w
	}
	b.m++
}

// HasEdge reports whether {u,v} has been added.
func (b *Builder) HasEdge(u, v int) bool {
	if u < 0 || u >= b.n || v < 0 || v >= b.n || u == v || u >= len(b.adj) {
		return false
	}
	_, ok := b.adj[u][int32(v)]
	return ok
}

// Degree returns the number of neighbors of v so far.
func (b *Builder) Degree(v int) int {
	b.check(v)
	if v >= len(b.adj) {
		return 0
	}
	return len(b.adj[v])
}

// Freeze converts the accumulated adjacency into an immutable CSR
// Graph. The builder remains usable afterwards (freezing copies). A
// builder whose edges all have distance 1 freezes into an unweighted
// graph: the weight array only exists when a distance >= 2 occurs.
func (b *Builder) Freeze() *Graph {
	n := b.n
	if n >= 1<<31-1 {
		panic(fmt.Sprintf("graph: %d vertices exceed the CSR int32 id space", n))
	}
	offsets := make([]int32, n+1)
	for v := 0; v < n && v < len(b.adj); v++ {
		offsets[v+1] = int32(len(b.adj[v]))
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	neighbors := make([]int32, offsets[n])
	var weights []int32
	if b.maxW > 1 {
		weights = make([]int32, offsets[n])
	}
	for v := 0; v < n && v < len(b.adj); v++ {
		row := neighbors[offsets[v]:offsets[v+1]]
		i := 0
		for u := range b.adj[v] {
			row[i] = u
			i++
		}
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		if weights != nil {
			wrow := weights[offsets[v]:offsets[v+1]]
			for i, u := range row {
				wrow[i] = b.adj[v][u]
			}
		}
	}
	g := &Graph{offsets: offsets, neighbors: neighbors, weights: weights, m: b.m}
	if b.Labels != nil {
		g.Labels = append([]string(nil), b.Labels...)
	}
	return g
}

// grow extends the adjacency slice to cover vertex v. Growth is
// incremental so that a huge declared vertex count costs nothing until
// edges actually reference high vertex ids.
func (b *Builder) grow(v int) {
	if v < len(b.adj) {
		return
	}
	if cap(b.adj) > v {
		b.adj = b.adj[:v+1]
		return
	}
	next := make([]map[int32]int32, v+1, growCap(len(b.adj), v+1))
	copy(next, b.adj)
	b.adj = next[:v+1]
}

func growCap(have, need int) int {
	c := have * 2
	if c < need {
		c = need
	}
	if c < 16 {
		c = 16
	}
	return c
}

func (b *Builder) check(v int) {
	if v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, b.n))
	}
}
