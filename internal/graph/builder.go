package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates an undirected graph under mutation — the map-based
// adjacency the package's Graph type used to expose directly — and
// Freeze()s it into the immutable CSR Graph every consumer reads.
// Self-loops are rejected (a 2-pin net cannot conflict with itself) and
// parallel edges are merged.
//
// Adjacency grows lazily: a Builder created for n vertices commits no
// per-vertex storage until edges touch the vertices, which is what lets
// the DIMACS parser accept a large declared vertex count without
// allocating for it up front.
type Builder struct {
	n   int
	adj []map[int32]struct{}
	m   int

	// Labels optionally names vertices; carried into the frozen Graph.
	Labels []string
}

// NewBuilder creates a builder with n isolated vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// N returns the number of vertices.
func (b *Builder) N() int { return b.n }

// M returns the number of edges added so far.
func (b *Builder) M() int { return b.m }

// AddVertex appends an isolated vertex and returns its index.
func (b *Builder) AddVertex() int {
	b.n++
	return b.n - 1
}

// AddEdge inserts the undirected edge {u,v}. Adding an existing edge is
// a no-op; self-loops panic since they would make the coloring CSP
// trivially unsatisfiable by construction error. Out-of-range vertices
// panic too: these are programmer errors under the taxonomy of
// internal/robust — parse paths must validate before calling.
func (b *Builder) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	b.check(u)
	b.check(v)
	b.grow(u)
	b.grow(v)
	if b.adj[u] == nil {
		b.adj[u] = make(map[int32]struct{})
	}
	if _, dup := b.adj[u][int32(v)]; dup {
		return
	}
	if b.adj[v] == nil {
		b.adj[v] = make(map[int32]struct{})
	}
	b.adj[u][int32(v)] = struct{}{}
	b.adj[v][int32(u)] = struct{}{}
	b.m++
}

// HasEdge reports whether {u,v} has been added.
func (b *Builder) HasEdge(u, v int) bool {
	if u < 0 || u >= b.n || v < 0 || v >= b.n || u == v || u >= len(b.adj) {
		return false
	}
	_, ok := b.adj[u][int32(v)]
	return ok
}

// Degree returns the number of neighbors of v so far.
func (b *Builder) Degree(v int) int {
	b.check(v)
	if v >= len(b.adj) {
		return 0
	}
	return len(b.adj[v])
}

// Freeze converts the accumulated adjacency into an immutable CSR
// Graph. The builder remains usable afterwards (freezing copies).
func (b *Builder) Freeze() *Graph {
	n := b.n
	if n >= 1<<31-1 {
		panic(fmt.Sprintf("graph: %d vertices exceed the CSR int32 id space", n))
	}
	offsets := make([]int32, n+1)
	for v := 0; v < n && v < len(b.adj); v++ {
		offsets[v+1] = int32(len(b.adj[v]))
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	neighbors := make([]int32, offsets[n])
	for v := 0; v < n && v < len(b.adj); v++ {
		row := neighbors[offsets[v]:offsets[v+1]]
		i := 0
		for u := range b.adj[v] {
			row[i] = u
			i++
		}
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
	}
	g := &Graph{offsets: offsets, neighbors: neighbors, m: b.m}
	if b.Labels != nil {
		g.Labels = append([]string(nil), b.Labels...)
	}
	return g
}

// grow extends the adjacency slice to cover vertex v. Growth is
// incremental so that a huge declared vertex count costs nothing until
// edges actually reference high vertex ids.
func (b *Builder) grow(v int) {
	if v < len(b.adj) {
		return
	}
	if cap(b.adj) > v {
		b.adj = b.adj[:v+1]
		return
	}
	next := make([]map[int32]struct{}, v+1, growCap(len(b.adj), v+1))
	copy(next, b.adj)
	b.adj = next[:v+1]
}

func growCap(have, need int) int {
	c := have * 2
	if c < need {
		c = need
	}
	if c < 16 {
		c = 16
	}
	return c
}

func (b *Builder) check(v int) {
	if v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, b.n))
	}
}
