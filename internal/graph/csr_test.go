package graph

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

// refGraph is a map-based reference implementation of the Graph
// semantics, mutated in lockstep with a Builder. The CSR Freeze()
// result must agree with it on every accessor — the behavioral
// equivalence property the migration to CSR rests on.
type refGraph struct {
	n   int
	adj []map[int]bool
}

func newRef(n int) *refGraph {
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = map[int]bool{}
	}
	return &refGraph{n: n, adj: adj}
}

func (r *refGraph) addEdge(u, v int) {
	r.adj[u][v] = true
	r.adj[v][u] = true
}

func (r *refGraph) m() int {
	total := 0
	for _, row := range r.adj {
		total += len(row)
	}
	return total / 2
}

func (r *refGraph) neighbors(v int) []int {
	out := make([]int, 0, len(r.adj[v]))
	for u := range r.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

func (r *refGraph) edges() [][2]int {
	var out [][2]int
	for u := 0; u < r.n; u++ {
		for v := range r.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func (r *refGraph) maxDegree() int {
	max := 0
	for _, row := range r.adj {
		if len(row) > max {
			max = len(row)
		}
	}
	return max
}

func (r *refGraph) neighborDegreeSum(v int) int {
	sum := 0
	for u := range r.adj[v] {
		sum += len(r.adj[u])
	}
	return sum
}

// checkAgainstRef asserts that g matches the reference on every
// accessor of the Graph API.
func checkAgainstRef(t *testing.T, g *Graph, ref *refGraph) {
	t.Helper()
	if g.N() != ref.n || g.M() != ref.m() {
		t.Fatalf("N/M = %d/%d, want %d/%d", g.N(), g.M(), ref.n, ref.m())
	}
	if g.MaxDegree() != ref.maxDegree() {
		t.Fatalf("MaxDegree = %d, want %d", g.MaxDegree(), ref.maxDegree())
	}
	for v := 0; v < ref.n; v++ {
		want := ref.neighbors(v)
		got := g.Neighbors(v)
		if g.Degree(v) != len(want) || len(got) != len(want) {
			t.Fatalf("vertex %d: degree %d, want %d", v, g.Degree(v), len(want))
		}
		for i := range want {
			if int(got[i]) != want[i] {
				t.Fatalf("Neighbors(%d) = %v, want %v", v, got, want)
			}
		}
		if g.NeighborDegreeSum(v) != ref.neighborDegreeSum(v) {
			t.Fatalf("NeighborDegreeSum(%d) = %d, want %d",
				v, g.NeighborDegreeSum(v), ref.neighborDegreeSum(v))
		}
		for u := 0; u < ref.n; u++ {
			if g.HasEdge(v, u) != ref.adj[v][u] {
				t.Fatalf("HasEdge(%d,%d) = %v, want %v", v, u, g.HasEdge(v, u), ref.adj[v][u])
			}
		}
	}
	gotEdges, wantEdges := edgeList(g), ref.edges()
	if len(gotEdges) != len(wantEdges) {
		t.Fatalf("ForEachEdge yielded %d edges, want %d", len(gotEdges), len(wantEdges))
	}
	for i := range wantEdges {
		if gotEdges[i] != wantEdges[i] {
			t.Fatalf("edge %d = %v, want %v (order must be ascending (u,v))",
				i, gotEdges[i], wantEdges[i])
		}
	}
}

// TestCSRMatchesBuilderReference drives a Builder and the map-based
// reference with the same random edge sequence (including duplicate
// insertions) and checks the frozen CSR graph is behaviorally identical
// on N/M/Degree/HasEdge/Neighbors/ForEachEdge/MaxDegree/
// NeighborDegreeSum, plus Clone and the DIMACS round-trip.
func TestCSRMatchesBuilderReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		b := NewBuilder(n)
		ref := newRef(n)
		edges := rng.Intn(3 * n)
		for i := 0; i < edges; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			b.AddEdge(u, v)
			ref.addEdge(u, v)
			if rng.Intn(4) == 0 { // duplicate insertions must merge
				b.AddEdge(v, u)
			}
		}
		g := b.Freeze()
		checkAgainstRef(t, g, ref)
		checkAgainstRef(t, g.Clone(), ref)

		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, g); err != nil {
			t.Fatal(err)
		}
		h, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstRef(t, h, ref)
	}
}

// TestFromEdgeStreamMatchesBuilder checks the two-pass streaming
// constructor and the Builder agree on identical edge sets.
func TestFromEdgeStreamMatchesBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(30)
		var edges [][2]int
		ref := newRef(n)
		b := NewBuilder(n)
		for i := 0; i < rng.Intn(4*n); i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			edges = append(edges, [2]int{u, v}) // may repeat: stream must dedup
			ref.addEdge(u, v)
			b.AddEdge(u, v)
		}
		g := FromEdgeStream(n, func(emit func(u, v int)) {
			for _, e := range edges {
				emit(e[0], e[1])
			}
		})
		checkAgainstRef(t, g, ref)
		checkAgainstRef(t, b.Freeze(), ref)
	}
}

// TestBuilderLazyAdjacency checks that a builder with a huge declared
// vertex count commits storage proportional to the referenced vertices,
// not the declared count — the property the DIMACS parser relies on to
// close its OOM-by-header hole.
func TestBuilderLazyAdjacency(t *testing.T) {
	b := NewBuilder(1 << 30)
	b.AddEdge(0, 7)
	if len(b.adj) > 16 {
		t.Fatalf("adjacency grew to %d entries for 2 touched vertices", len(b.adj))
	}
	if b.N() != 1<<30 || b.M() != 1 || !b.HasEdge(7, 0) {
		t.Fatal("lazy builder misbehaves")
	}
	if b.Degree(1<<29) != 0 {
		t.Fatal("untouched vertex degree != 0")
	}
}
