package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MaxParseVertices caps the vertex count ParseDIMACS accepts. The
// DIMACS header declares the vertex count before any edge appears, so
// without a cap a one-line file ("p edge 1000000000 0") could commit
// gigabytes before parsing a single edge. The default admits every
// published .col benchmark with two orders of magnitude to spare;
// callers that really load larger graphs can raise it.
var MaxParseVertices = 1 << 25

// MaxParseDistance caps the per-edge distance ParseDIMACS accepts in
// the weighted extension ("e u v d" lines). Distances beyond the color
// domain are clamped by the encoders anyway, so a huge value only
// inflates clause counts; the cap keeps hostile inputs from requesting
// absurd windows.
var MaxParseDistance = 1 << 20

// WriteDIMACS writes the graph in the DIMACS edge format used by the
// graph-coloring benchmark collections ("p edge N M" header, "e u v"
// lines, vertices 1-based), the intermediate format of the paper's
// two-step tool flow. Weighted graphs use the bandwidth-coloring
// extension: every edge line carries its distance as a fourth field
// ("e u v d"), which ParseDIMACS round-trips.
func WriteDIMACS(w io.Writer, g *Graph, comments ...string) error {
	bw := bufio.NewWriter(w)
	for _, c := range comments {
		if _, err := fmt.Fprintf(bw, "c %s\n", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "p edge %d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	var werr error
	if g.Weighted() {
		g.ForEachWeightedEdge(func(u, v, d int) {
			if werr != nil {
				return
			}
			_, werr = fmt.Fprintf(bw, "e %d %d %d\n", u+1, v+1, d)
		})
	} else {
		g.ForEachEdge(func(u, v int) {
			if werr != nil {
				return
			}
			_, werr = fmt.Fprintf(bw, "e %d %d\n", u+1, v+1)
		})
	}
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ParseDIMACS reads a DIMACS edge-format graph into CSR form. Duplicate
// edges are merged (keeping the largest distance); "n"-lines (vertex
// weights in some collections) are skipped. Edge lines may carry an
// optional fourth field — the bandwidth-coloring distance d >= 1
// ("e u v d"), bounded by MaxParseDistance — and a file whose distances
// are all 1 parses to a plain unweighted graph. The declared vertex
// count is validated against MaxParseVertices, per-vertex storage is
// only committed as edges reference vertices, and the number of edge
// lines read must match the edge count the header declared — a mismatch
// is an input error, not a silently wrong graph.
func ParseDIMACS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var b *Builder
	declaredEdges := 0
	edgeLines := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "c", "n":
			continue
		case "p":
			if b != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate header", line)
			}
			if len(fields) != 4 || (fields[1] != "edge" && fields[1] != "col") {
				return nil, fmt.Errorf("graph: line %d: malformed header %q", line, text)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad vertex count", line)
			}
			if n > MaxParseVertices {
				return nil, fmt.Errorf("graph: line %d: declared vertex count %d exceeds limit %d",
					line, n, MaxParseVertices)
			}
			m, err := strconv.Atoi(fields[3])
			if err != nil || m < 0 {
				return nil, fmt.Errorf("graph: line %d: bad edge count", line)
			}
			declaredEdges = m
			b = NewBuilder(n)
		case "e":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: edge before header", line)
			}
			if len(fields) != 3 && len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: malformed edge %q", line, text)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || u < 1 || v < 1 || u > b.N() || v > b.N() {
				return nil, fmt.Errorf("graph: line %d: bad edge %q", line, text)
			}
			if u == v {
				return nil, fmt.Errorf("graph: line %d: self-loop %d", line, u)
			}
			d := 1
			if len(fields) == 4 {
				var err error
				d, err = strconv.Atoi(fields[3])
				if err != nil || d < 1 {
					return nil, fmt.Errorf("graph: line %d: bad edge distance %q", line, text)
				}
				if d > MaxParseDistance {
					return nil, fmt.Errorf("graph: line %d: edge distance %d exceeds limit %d",
						line, d, MaxParseDistance)
				}
			}
			edgeLines++
			if edgeLines > declaredEdges {
				return nil, fmt.Errorf("graph: line %d: more edge lines than the %d the header declared",
					line, declaredEdges)
			}
			b.AddWeightedEdge(u-1, v-1, d)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown line type %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: missing header")
	}
	if edgeLines != declaredEdges {
		return nil, fmt.Errorf("graph: header declared %d edges but %d edge lines followed",
			declaredEdges, edgeLines)
	}
	return b.Freeze(), nil
}
