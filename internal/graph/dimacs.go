package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteDIMACS writes the graph in the DIMACS edge format used by the
// graph-coloring benchmark collections ("p edge N M" header, "e u v"
// lines, vertices 1-based), the intermediate format of the paper's
// two-step tool flow.
func WriteDIMACS(w io.Writer, g *Graph, comments ...string) error {
	bw := bufio.NewWriter(w)
	for _, c := range comments {
		if _, err := fmt.Fprintf(bw, "c %s\n", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "p edge %d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "e %d %d\n", e[0]+1, e[1]+1); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseDIMACS reads a DIMACS edge-format graph. Duplicate edges are
// merged; "n"-lines (vertex weights in some collections) are skipped.
func ParseDIMACS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "c", "n":
			continue
		case "p":
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate header", line)
			}
			if len(fields) != 4 || (fields[1] != "edge" && fields[1] != "col") {
				return nil, fmt.Errorf("graph: line %d: malformed header %q", line, text)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad vertex count", line)
			}
			g = New(n)
		case "e":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: edge before header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: malformed edge %q", line, text)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || u < 1 || v < 1 || u > g.N() || v > g.N() {
				return nil, fmt.Errorf("graph: line %d: bad edge %q", line, text)
			}
			if u == v {
				return nil, fmt.Errorf("graph: line %d: self-loop %d", line, u)
			}
			g.AddEdge(u-1, v-1)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown line type %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing header")
	}
	return g, nil
}
