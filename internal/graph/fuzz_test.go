package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseDIMACSGraph fuzzes the DIMACS edge-format parser — the only
// input-facing parser in the flow's front end. The parser must never
// panic, and any graph it accepts must satisfy the CSR invariants and
// survive a Write/Parse round-trip unchanged.
func FuzzParseDIMACSGraph(f *testing.F) {
	seeds := []string{
		"p edge 3 2\ne 1 2\ne 2 3\n",
		"c comment\np col 4 2\ne 1 4\ne 2 3\n",
		"p edge 5 3\nn 1 7\ne 1 2\ne 1 2\ne 4 5\n", // duplicate edge lines
		"p edge 2 1\ne 1 1\n",                      // self-loop (rejected)
		"p edge 2 1\ne 1 9\n",                      // out-of-range vertex
		"p edge 1000000000 0\n",                    // OOM-by-header probe
		"p edge 0 0\n",
		"p edge 4 0\n\n\nc trailing\n",
		"e 1 2\np edge 2 1\n", // edge before header
		"p edge 3 2\ne 1 2\n", // fewer edges than declared
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ParseDIMACS(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Invariants of any accepted graph.
		if g.N() < 0 || g.M() < 0 || g.N() > MaxParseVertices {
			t.Fatalf("accepted graph with N=%d M=%d", g.N(), g.M())
		}
		degSum := 0
		for v := 0; v < g.N(); v++ {
			row := g.Neighbors(v)
			degSum += len(row)
			for i, u := range row {
				if int(u) == v {
					t.Fatalf("self-loop at %d survived parsing", v)
				}
				if int(u) < 0 || int(u) >= g.N() {
					t.Fatalf("neighbor %d of %d out of range", u, v)
				}
				if i > 0 && row[i-1] >= u {
					t.Fatalf("Neighbors(%d) not strictly sorted: %v", v, row)
				}
				if !g.HasEdge(v, int(u)) || !g.HasEdge(int(u), v) {
					t.Fatalf("asymmetric adjacency {%d,%d}", v, u)
				}
			}
		}
		if degSum != 2*g.M() {
			t.Fatalf("degree sum %d != 2*M (%d)", degSum, 2*g.M())
		}
		// Round-trip: write and reparse must reproduce the graph.
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, g); err != nil {
			t.Fatalf("WriteDIMACS: %v", err)
		}
		h, err := ParseDIMACS(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\n%s", err, buf.String())
		}
		if h.N() != g.N() || h.M() != g.M() {
			t.Fatalf("round-trip changed N/M: %d/%d -> %d/%d", g.N(), g.M(), h.N(), h.M())
		}
		ge, he := edgeList(g), edgeList(h)
		for i := range ge {
			if ge[i] != he[i] {
				t.Fatalf("round-trip changed edge %d: %v -> %v", i, ge[i], he[i])
			}
		}
	})
}
