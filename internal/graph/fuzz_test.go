package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseDIMACSGraph fuzzes the DIMACS edge-format parser — the only
// input-facing parser in the flow's front end. The parser must never
// panic, and any graph it accepts must satisfy the CSR invariants and
// survive a Write/Parse round-trip unchanged.
func FuzzParseDIMACSGraph(f *testing.F) {
	seeds := []string{
		"p edge 3 2\ne 1 2\ne 2 3\n",
		"c comment\np col 4 2\ne 1 4\ne 2 3\n",
		"p edge 5 3\nn 1 7\ne 1 2\ne 1 2\ne 4 5\n", // duplicate edge lines
		"p edge 2 1\ne 1 1\n",                      // self-loop (rejected)
		"p edge 2 1\ne 1 9\n",                      // out-of-range vertex
		"p edge 1000000000 0\n",                    // OOM-by-header probe
		"p edge 0 0\n",
		"p edge 4 0\n\n\nc trailing\n",
		"e 1 2\np edge 2 1\n", // edge before header
		"p edge 3 2\ne 1 2\n", // fewer edges than declared
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ParseDIMACS(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Invariants of any accepted graph.
		if g.N() < 0 || g.M() < 0 || g.N() > MaxParseVertices {
			t.Fatalf("accepted graph with N=%d M=%d", g.N(), g.M())
		}
		degSum := 0
		for v := 0; v < g.N(); v++ {
			row := g.Neighbors(v)
			degSum += len(row)
			for i, u := range row {
				if int(u) == v {
					t.Fatalf("self-loop at %d survived parsing", v)
				}
				if int(u) < 0 || int(u) >= g.N() {
					t.Fatalf("neighbor %d of %d out of range", u, v)
				}
				if i > 0 && row[i-1] >= u {
					t.Fatalf("Neighbors(%d) not strictly sorted: %v", v, row)
				}
				if !g.HasEdge(v, int(u)) || !g.HasEdge(int(u), v) {
					t.Fatalf("asymmetric adjacency {%d,%d}", v, u)
				}
			}
		}
		if degSum != 2*g.M() {
			t.Fatalf("degree sum %d != 2*M (%d)", degSum, 2*g.M())
		}
		// Round-trip: write and reparse must reproduce the graph.
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, g); err != nil {
			t.Fatalf("WriteDIMACS: %v", err)
		}
		h, err := ParseDIMACS(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\n%s", err, buf.String())
		}
		if h.N() != g.N() || h.M() != g.M() {
			t.Fatalf("round-trip changed N/M: %d/%d -> %d/%d", g.N(), g.M(), h.N(), h.M())
		}
		ge, he := edgeList(g), edgeList(h)
		for i := range ge {
			if ge[i] != he[i] {
				t.Fatalf("round-trip changed edge %d: %v -> %v", i, ge[i], he[i])
			}
		}
	})
}

// FuzzParseWeightedDIMACS fuzzes the bandwidth-coloring extension of
// the DIMACS parser ("e u v d" lines). On top of the CSR invariants it
// checks the weight invariants: every accepted distance is in
// [1, MaxParseDistance], stored symmetrically, the distance-1 normal
// form holds (Weighted() iff some edge distance >= 2), and weighted
// graphs survive a Write/Parse round trip with distances intact.
func FuzzParseWeightedDIMACS(f *testing.F) {
	seeds := []string{
		"p edge 3 2\ne 1 2 2\ne 2 3 3\n",
		"p edge 4 3\ne 1 2 1\ne 2 3 1\ne 3 4 1\n",   // all-1: unweighted normal form
		"p edge 3 2\ne 1 2\ne 2 3 4\n",              // mixed plain and weighted lines
		"p edge 3 3\ne 1 2 2\ne 2 1 5\ne 1 3 1\n",   // duplicate edge, larger distance wins
		"p edge 2 1\ne 1 2 0\n",                     // distance < 1 (rejected)
		"p edge 2 1\ne 1 2 -3\n",                    // negative distance (rejected)
		"p edge 2 1\ne 1 2 1048577\n",               // beyond MaxParseDistance (rejected)
		"p edge 2 1\ne 1 2 999999999999999999999\n", // overflow probe
		"c bandwidth\np col 5 2\ne 1 5 7\ne 2 3 7\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ParseDIMACS(bytes.NewReader(data))
		if err != nil {
			return
		}
		maxSeen := 0
		g.ForEachWeightedEdge(func(u, v, d int) {
			if d < 1 || d > MaxParseDistance {
				t.Fatalf("edge {%d,%d} accepted with distance %d", u, v, d)
			}
			if g.EdgeWeight(u, v) != d || g.EdgeWeight(v, u) != d {
				t.Fatalf("asymmetric distance on {%d,%d}: %d vs %d/%d",
					u, v, d, g.EdgeWeight(u, v), g.EdgeWeight(v, u))
			}
			if d > maxSeen {
				maxSeen = d
			}
		})
		if g.Weighted() != (maxSeen >= 2) {
			t.Fatalf("Weighted()=%v but max distance is %d — normal form violated", g.Weighted(), maxSeen)
		}
		if got := g.MaxEdgeWeight(); g.M() > 0 && got != maxSeen {
			t.Fatalf("MaxEdgeWeight=%d, iteration saw %d", got, maxSeen)
		}
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, g); err != nil {
			t.Fatalf("WriteDIMACS: %v", err)
		}
		h, err := ParseDIMACS(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\n%s", err, buf.String())
		}
		if h.N() != g.N() || h.M() != g.M() || h.Weighted() != g.Weighted() {
			t.Fatalf("round-trip changed shape: N %d->%d M %d->%d W %v->%v",
				g.N(), h.N(), g.M(), h.M(), g.Weighted(), h.Weighted())
		}
		bad := false
		g.ForEachWeightedEdge(func(u, v, d int) {
			if h.EdgeWeight(u, v) != d {
				bad = true
			}
		})
		if bad {
			t.Fatalf("round-trip changed a distance\n%s", buf.String())
		}
	})
}
