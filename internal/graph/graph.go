// Package graph provides the undirected graphs that sit between the
// FPGA detailed-routing front end and the CSP-to-SAT encoders: vertices
// are 2-pin nets, edges are track-exclusivity constraints, and the
// DIMACS edge ("p edge", .col) format is the interchange format the
// paper's tool flow emits between its two translation steps.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph over vertices 0..N-1. Self-loops
// are rejected (a 2-pin net cannot conflict with itself) and parallel
// edges are merged.
type Graph struct {
	n   int
	adj []map[int]struct{}
	m   int

	// Labels optionally names vertices (e.g. "net12.3" for the third
	// 2-pin subnet of net 12). May be nil or shorter than n.
	Labels []string
}

// New creates a graph with n isolated vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{n: n, adj: make([]map[int]struct{}, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddVertex appends an isolated vertex and returns its index.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, nil)
	g.n++
	return g.n - 1
}

// AddEdge inserts the undirected edge {u,v}. Adding an existing edge is
// a no-op; self-loops panic since they would make the coloring CSP
// trivially unsatisfiable by construction error. Out-of-range vertices
// panic too: these are programmer errors under the taxonomy of
// internal/robust — parse paths must validate before calling.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	g.check(u)
	g.check(v)
	if g.adj[u] == nil {
		g.adj[u] = make(map[int]struct{})
	}
	if _, dup := g.adj[u][v]; dup {
		return
	}
	if g.adj[v] == nil {
		g.adj[v] = make(map[int]struct{})
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.m++
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	return len(g.adj[v])
}

// Neighbors returns the sorted neighbor list of v.
func (g *Graph) Neighbors(v int) []int {
	g.check(v)
	out := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// Edges returns all edges as ordered pairs (u < v), sorted.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// MaxDegree returns the largest vertex degree, 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// NeighborDegreeSum returns the sum of the degrees of v's neighbors,
// the tie-breaking key used by the b1 and s1 symmetry heuristics.
func (g *Graph) NeighborDegreeSum(v int) int {
	g.check(v)
	sum := 0
	for u := range g.adj[v] {
		sum += len(g.adj[u])
	}
	return sum
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	out := New(g.n)
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if u < v {
				out.AddEdge(u, v)
			}
		}
	}
	if g.Labels != nil {
		out.Labels = append([]string(nil), g.Labels...)
	}
	return out
}

// Label returns the label of v, or a numeric fallback.
func (g *Graph) Label(v int) string {
	if v < len(g.Labels) && g.Labels[v] != "" {
		return g.Labels[v]
	}
	return fmt.Sprintf("v%d", v)
}

func (g *Graph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}
