// Package graph provides the undirected graphs that sit between the
// FPGA detailed-routing front end and the CSP-to-SAT encoders: vertices
// are 2-pin nets, edges are track-exclusivity constraints, and the
// DIMACS edge ("p edge", .col) format is the interchange format the
// paper's tool flow emits between its two translation steps.
//
// The package separates construction from consumption. A Builder holds
// mutable map-based adjacency and Freeze()s into an immutable Graph in
// compressed sparse row (CSR) form: two flat int32 arrays (offsets,
// neighbors) that give O(1) Degree, allocation-free sorted Neighbors
// and a streaming ForEachEdge iterator. Consumers never materialize an
// edge list, which keeps the encode path allocation-light and lets
// tile-templated generators (package fpga) stream conflict graphs with
// 10⁵–10⁶ nets straight into the encoders.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Graph is an immutable simple undirected graph over vertices 0..N-1 in
// CSR form. Self-loops and parallel edges cannot occur (the Builder and
// the stream constructor reject or merge them). Build one with
// (*Builder).Freeze, FromEdgeStream, or the generators in this package.
//
// Edges optionally carry an integer distance weight d >= 1 (bandwidth
// coloring: adjacent colors must differ by at least d). The weights
// live in a third flat int32 array parallel to the neighbor array, so a
// weighted graph costs exactly one extra int32 per directed edge and
// nothing at all when every weight is 1: constructors normalize all-1
// weight sets back to the nil (unweighted) form, keeping classic
// disequality instances on the exact representation they had before
// distance constraints existed.
type Graph struct {
	// offsets has length n+1; the neighbors of v are
	// neighbors[offsets[v]:offsets[v+1]], sorted ascending. Each
	// undirected edge appears twice, so len(neighbors) == 2*m.
	offsets   []int32
	neighbors []int32
	// weights is nil for unweighted graphs; otherwise weights[i] is the
	// distance of the edge to neighbors[i] (>= 1, stored symmetrically).
	weights []int32
	m       int

	// Labels optionally names vertices (e.g. "net12.3" for the third
	// 2-pin subnet of net 12). May be nil or shorter than n. Large
	// generated graphs leave it nil; Label falls back to "v<i>".
	Labels []string
}

// New creates an immutable graph with n isolated vertices (the CSR form
// of the empty edge set). To build a graph with edges, use a Builder.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{offsets: make([]int32, n+1)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the number of neighbors of v in O(1).
func (g *Graph) Degree(v int) int {
	g.check(v)
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted neighbor list of v as a sub-slice of the
// CSR neighbor array — no allocation. The slice aliases the graph's
// internal storage and MUST NOT be modified; callers that need to
// reorder it must copy first.
func (g *Graph) Neighbors(v int) []int32 {
	g.check(v)
	return g.neighbors[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u,v} is an edge, by binary search over the
// smaller of the two neighbor rows.
func (g *Graph) HasEdge(u, v int) bool {
	n := g.N()
	if u < 0 || u >= n || v < 0 || v >= n || u == v {
		return false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	row := g.Neighbors(u)
	t := int32(v)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= t })
	return i < len(row) && row[i] == t
}

// ForEachEdge calls f once per edge as an ordered pair (u < v), in
// ascending (u, v) order — the same canonical order the DIMACS writer
// and the encoders rely on. It allocates nothing; this is the streaming
// replacement for materializing an edge list on hot paths.
func (g *Graph) ForEachEdge(f func(u, v int)) {
	for u := 0; u < g.N(); u++ {
		row := g.neighbors[g.offsets[u]:g.offsets[u+1]]
		// Rows are sorted, so the first neighbor > u starts the
		// unordered-pair half of the row.
		i := sort.Search(len(row), func(i int) bool { return int(row[i]) > u })
		for _, v := range row[i:] {
			f(u, int(v))
		}
	}
}

// Weighted reports whether any edge carries a distance weight >= 2.
// Constructors normalize all-1 weight sets to the unweighted form, so
// this is equivalent to "the graph has a non-trivial distance
// constraint".
func (g *Graph) Weighted() bool { return g.weights != nil }

// EdgeWeight returns the distance weight of edge {u,v}: 1 for edges of
// an unweighted graph, 0 when {u,v} is not an edge.
func (g *Graph) EdgeWeight(u, v int) int {
	n := g.N()
	if u < 0 || u >= n || v < 0 || v >= n || u == v {
		return 0
	}
	row := g.neighbors[g.offsets[u]:g.offsets[u+1]]
	t := int32(v)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= t })
	if i >= len(row) || row[i] != t {
		return 0
	}
	if g.weights == nil {
		return 1
	}
	return int(g.weights[int(g.offsets[u])+i])
}

// ForEachWeightedEdge calls f once per edge as (u, v, d) with u < v, in
// the same canonical ascending order as ForEachEdge; d is the edge's
// distance weight (1 everywhere on unweighted graphs). Allocates
// nothing.
func (g *Graph) ForEachWeightedEdge(f func(u, v, d int)) {
	for u := 0; u < g.N(); u++ {
		start := int(g.offsets[u])
		row := g.neighbors[start:g.offsets[u+1]]
		i := sort.Search(len(row), func(i int) bool { return int(row[i]) > u })
		for j := i; j < len(row); j++ {
			d := 1
			if g.weights != nil {
				d = int(g.weights[start+j])
			}
			f(u, int(row[j]), d)
		}
	}
}

// MaxEdgeWeight returns the largest edge distance (1 for non-empty
// unweighted graphs, 0 for edgeless graphs).
func (g *Graph) MaxEdgeWeight() int {
	if g.m == 0 {
		return 0
	}
	if g.weights == nil {
		return 1
	}
	max := int32(1)
	for _, w := range g.weights {
		if w > max {
			max = w
		}
	}
	return int(max)
}

// MaxDegree returns the largest vertex degree, 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := int(g.offsets[v+1] - g.offsets[v]); d > max {
			max = d
		}
	}
	return max
}

// NeighborDegreeSum returns the sum of the degrees of v's neighbors,
// the tie-breaking key used by the b1 and s1 symmetry heuristics.
func (g *Graph) NeighborDegreeSum(v int) int {
	g.check(v)
	sum := 0
	for _, u := range g.Neighbors(v) {
		sum += int(g.offsets[u+1] - g.offsets[u])
	}
	return sum
}

// Clone returns a deep copy (the CSR arrays and labels are duplicated,
// so the copy shares no storage with the original).
func (g *Graph) Clone() *Graph {
	out := &Graph{
		offsets:   append([]int32(nil), g.offsets...),
		neighbors: append([]int32(nil), g.neighbors...),
		m:         g.m,
	}
	if g.weights != nil {
		out.weights = append([]int32(nil), g.weights...)
	}
	if g.Labels != nil {
		out.Labels = append([]string(nil), g.Labels...)
	}
	return out
}

// Bytes returns the memory footprint of the CSR representation in
// bytes (offsets plus neighbors plus weights; labels excluded). This is
// the "peak graph bytes" number the scaling study records.
func (g *Graph) Bytes() int {
	return 4 * (len(g.offsets) + len(g.neighbors) + len(g.weights))
}

// Label returns the label of v, or a numeric fallback.
func (g *Graph) Label(v int) string {
	if v < len(g.Labels) && g.Labels[v] != "" {
		return g.Labels[v]
	}
	return fmt.Sprintf("v%d", v)
}

func (g *Graph) check(v int) {
	if v < 0 || v >= g.N() {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.N()))
	}
}

// FromEdgeStream builds a CSR graph directly from a deterministic edge
// stream, without any intermediate per-vertex maps: stream is invoked
// twice with an emit callback and must yield the same multiset of edges
// both times (first pass counts degrees, second pass fills the rows).
// Each undirected edge should be emitted once in either orientation;
// duplicates are merged. Self-loops and out-of-range vertices panic,
// matching (*Builder).AddEdge. This is the constructor tile-templated
// generators use to stream million-net conflict graphs into CSR form
// with two flat allocations.
func FromEdgeStream(n int, stream func(emit func(u, v int))) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	if n >= math.MaxInt32 {
		panic(fmt.Sprintf("graph: %d vertices exceed the CSR int32 id space", n))
	}
	offsets := make([]int32, n+1)
	count := func(u, v int) {
		if u == v {
			panic(fmt.Sprintf("graph: self-loop at %d", u))
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, n))
		}
		offsets[u+1]++
		offsets[v+1]++
	}
	stream(count)
	var running int64
	for v := 0; v < n; v++ {
		running += int64(offsets[v+1])
		if running > math.MaxInt32 {
			panic("graph: edge stream exceeds the CSR int32 offset space")
		}
		offsets[v+1] = int32(running)
	}
	total := int(offsets[n])
	neighbors := make([]int32, total)
	cursor := append([]int32(nil), offsets[:n]...)
	fill := func(u, v int) {
		neighbors[cursor[u]] = int32(v)
		cursor[u]++
		neighbors[cursor[v]] = int32(u)
		cursor[v]++
	}
	stream(fill)
	for v := 0; v < n; v++ {
		if cursor[v] != offsets[v+1] {
			panic("graph: edge stream changed between passes")
		}
	}
	g := &Graph{offsets: offsets, neighbors: neighbors, m: total / 2}
	g.sortAndDedup()
	return g
}

// FromWeightedEdgeStream is FromEdgeStream for distance-annotated
// graphs: stream emits (u, v, d) triples with d >= 1 and must be
// deterministic across the two passes. Duplicate edges are merged
// keeping the largest distance (the tighter constraint). A stream whose
// weights are all 1 yields a plain unweighted graph — the distance-1
// normal form.
func FromWeightedEdgeStream(n int, stream func(emit func(u, v, d int))) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	if n >= math.MaxInt32 {
		panic(fmt.Sprintf("graph: %d vertices exceed the CSR int32 id space", n))
	}
	offsets := make([]int32, n+1)
	count := func(u, v, d int) {
		if u == v {
			panic(fmt.Sprintf("graph: self-loop at %d", u))
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, n))
		}
		if d < 1 || d > math.MaxInt32 {
			panic(fmt.Sprintf("graph: edge {%d,%d} has invalid distance %d", u, v, d))
		}
		offsets[u+1]++
		offsets[v+1]++
	}
	stream(count)
	var running int64
	for v := 0; v < n; v++ {
		running += int64(offsets[v+1])
		if running > math.MaxInt32 {
			panic("graph: edge stream exceeds the CSR int32 offset space")
		}
		offsets[v+1] = int32(running)
	}
	total := int(offsets[n])
	neighbors := make([]int32, total)
	weights := make([]int32, total)
	cursor := append([]int32(nil), offsets[:n]...)
	fill := func(u, v, d int) {
		neighbors[cursor[u]] = int32(v)
		weights[cursor[u]] = int32(d)
		cursor[u]++
		neighbors[cursor[v]] = int32(u)
		weights[cursor[v]] = int32(d)
		cursor[v]++
	}
	stream(fill)
	for v := 0; v < n; v++ {
		if cursor[v] != offsets[v+1] {
			panic("graph: edge stream changed between passes")
		}
	}
	g := &Graph{offsets: offsets, neighbors: neighbors, weights: weights, m: total / 2}
	g.sortAndDedup()
	return g
}

// csrRow co-sorts one CSR row's neighbor and weight slices by neighbor
// id.
type csrRow struct {
	nbr []int32
	wt  []int32
}

func (r csrRow) Len() int           { return len(r.nbr) }
func (r csrRow) Less(i, j int) bool { return r.nbr[i] < r.nbr[j] }
func (r csrRow) Swap(i, j int) {
	r.nbr[i], r.nbr[j] = r.nbr[j], r.nbr[i]
	r.wt[i], r.wt[j] = r.wt[j], r.wt[i]
}

// sortAndDedup sorts every CSR row and merges duplicate entries in
// place, compacting the neighbor (and weight) arrays and recomputing
// offsets and the edge count. Duplicate weighted edges keep the largest
// distance; an all-1 weight array is dropped so distance-1 graphs
// normalize to the unweighted representation. Called by constructors on
// freshly filled rows.
func (g *Graph) sortAndDedup() {
	n := g.N()
	write := int32(0)
	rowStart := int32(0)
	maxWeight := int32(0)
	for v := 0; v < n; v++ {
		row := g.neighbors[rowStart:g.offsets[v+1]]
		var wts []int32
		if g.weights != nil {
			wts = g.weights[rowStart:g.offsets[v+1]]
			sort.Sort(csrRow{nbr: row, wt: wts})
		} else {
			sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		}
		rowStart = g.offsets[v+1]
		// Compact left; write never passes the current row's original
		// start, so reads stay ahead of writes.
		for i, u := range row {
			if i > 0 && u == row[i-1] {
				// Parallel edge: keep the tighter (larger) distance.
				if wts != nil && wts[i] > g.weights[write-1] {
					g.weights[write-1] = wts[i]
					if wts[i] > maxWeight {
						maxWeight = wts[i]
					}
				}
				continue
			}
			g.neighbors[write] = u
			if wts != nil {
				g.weights[write] = wts[i]
				if wts[i] > maxWeight {
					maxWeight = wts[i]
				}
			}
			write++
		}
		g.offsets[v+1] = write
	}
	g.neighbors = g.neighbors[:write]
	if g.weights != nil {
		if maxWeight <= 1 {
			g.weights = nil // distance-1 normal form
		} else {
			g.weights = g.weights[:write]
		}
	}
	g.m = int(write) / 2
}
