package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBasicOperations(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1) // duplicate merged
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("N=%d M=%d, want 4,2", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) || g.HasEdge(0, 0) {
		t.Fatal("HasEdge wrong")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(1), g.Degree(3))
	}
	nb := g.Neighbors(1)
	if len(nb) != 2 || nb[0] != 0 || nb[1] != 2 {
		t.Fatalf("Neighbors(1) = %v", nb)
	}
	if v := g.AddVertex(); v != 4 || g.N() != 5 {
		t.Fatalf("AddVertex gave %d, N=%d", v, g.N())
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-loop")
		}
	}()
	New(2).AddEdge(1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range vertex")
		}
	}()
	New(2).AddEdge(0, 5)
}

func TestEdgesSortedAndComplete(t *testing.T) {
	g := New(5)
	g.AddEdge(3, 1)
	g.AddEdge(0, 4)
	g.AddEdge(2, 0)
	es := g.Edges()
	want := [][2]int{{0, 2}, {0, 4}, {1, 3}}
	if len(es) != len(want) {
		t.Fatalf("edges = %v", es)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("edges = %v, want %v", es, want)
		}
	}
}

func TestMaxDegreeAndNeighborSum(t *testing.T) {
	g := Complete(4)
	if g.MaxDegree() != 3 {
		t.Fatalf("K4 max degree = %d", g.MaxDegree())
	}
	if s := g.NeighborDegreeSum(0); s != 9 {
		t.Fatalf("K4 neighbor degree sum = %d, want 9", s)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Cycle(5)
	g.Labels = []string{"a", "b"}
	c := g.Clone()
	c.AddEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Fatal("clone shares adjacency")
	}
	if c.Label(0) != "a" || c.Label(4) != "v4" {
		t.Fatalf("labels wrong: %q %q", c.Label(0), c.Label(4))
	}
}

func TestGenerators(t *testing.T) {
	k := Complete(6)
	if k.M() != 15 {
		t.Fatalf("K6 edges = %d", k.M())
	}
	c := Cycle(7)
	if c.M() != 7 || c.MaxDegree() != 2 {
		t.Fatalf("C7: M=%d maxdeg=%d", c.M(), c.MaxDegree())
	}
	rng := rand.New(rand.NewSource(1))
	e := Random(rng, 30, 0)
	if e.M() != 0 {
		t.Fatal("G(n,0) has edges")
	}
	f := Random(rng, 30, 1)
	if f.M() != 30*29/2 {
		t.Fatalf("G(n,1) edges = %d", f.M())
	}
}

func TestDIMACSRoundtripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%40) + 1
		p := float64(pRaw) / 255
		g := Random(rng, n, p)
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, g, "test graph"); err != nil {
			return false
		}
		h, err := ParseDIMACS(&buf)
		if err != nil {
			return false
		}
		if h.N() != g.N() || h.M() != g.M() {
			return false
		}
		ge, he := g.Edges(), h.Edges()
		for i := range ge {
			if ge[i] != he[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := []string{
		"e 1 2\n",                  // edge before header
		"p edge x 1\n",             // bad count
		"p foo 2 1\n",              // wrong format
		"p edge 2 1\ne 1 3\n",      // vertex out of range
		"p edge 2 1\ne 1 1\n",      // self loop
		"p edge 2 1\ne 1\n",        // malformed edge
		"p edge 2 1\nz 1 2\n",      // unknown line
		"p edge 2 1\np edge 2 1\n", // duplicate header
		"",                         // missing header
	}
	for _, in := range cases {
		if _, err := ParseDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestParseDIMACSSkipsNLines(t *testing.T) {
	in := "c hello\np edge 3 1\nn 1 5\ne 1 2\n"
	g, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 1 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
}

func TestNeighborDegreeSumProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		g := Random(rng, 2+rng.Intn(20), rng.Float64())
		for v := 0; v < g.N(); v++ {
			sum := 0
			for _, u := range g.Neighbors(v) {
				sum += g.Degree(u)
			}
			if got := g.NeighborDegreeSum(v); got != sum {
				t.Fatalf("vertex %d: NeighborDegreeSum=%d, manual=%d", v, got, sum)
			}
		}
	}
}

func TestParseDIMACSNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	alphabet := []byte("pe col dge0123456789 -\nc")
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(80)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		// Must not panic; errors are fine.
		ParseDIMACS(bytes.NewReader(buf))
	}
}

type limitedWriter struct{ left int }

func (w *limitedWriter) Write(p []byte) (int, error) {
	if len(p) > w.left {
		n := w.left
		w.left = 0
		return n, errShort
	}
	w.left -= len(p)
	return len(p), nil
}

var errShort = fmt.Errorf("simulated short write")

func TestWriteDIMACSPropagatesErrors(t *testing.T) {
	g := Complete(20)
	if err := WriteDIMACS(&limitedWriter{left: 10}, g, "header comment"); err == nil {
		t.Fatal("short write not reported")
	}
}
