package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// edgeList materializes a graph's edges via ForEachEdge — the test-side
// replacement for the removed Edges() accessor.
func edgeList(g *Graph) [][2]int {
	var out [][2]int
	g.ForEachEdge(func(u, v int) { out = append(out, [2]int{u, v}) })
	return out
}

func TestBasicOperations(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 1) // duplicate merged
	g := b.Freeze()
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("N=%d M=%d, want 4,2", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) || g.HasEdge(0, 0) {
		t.Fatal("HasEdge wrong")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(1), g.Degree(3))
	}
	nb := g.Neighbors(1)
	if len(nb) != 2 || nb[0] != 0 || nb[1] != 2 {
		t.Fatalf("Neighbors(1) = %v", nb)
	}
	if v := b.AddVertex(); v != 4 || b.N() != 5 {
		t.Fatalf("AddVertex gave %d, N=%d", v, b.N())
	}
	if g.N() != 4 {
		t.Fatal("Freeze result mutated by later builder growth")
	}
}

func TestNewIsEdgeless(t *testing.T) {
	g := New(3)
	if g.N() != 3 || g.M() != 0 || g.Degree(2) != 0 {
		t.Fatalf("New(3): N=%d M=%d", g.N(), g.M())
	}
	if es := edgeList(g); len(es) != 0 {
		t.Fatalf("edges = %v", es)
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-loop")
		}
	}()
	NewBuilder(2).AddEdge(1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range vertex")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestForEachEdgeSortedAndComplete(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(3, 1)
	b.AddEdge(0, 4)
	b.AddEdge(2, 0)
	es := edgeList(b.Freeze())
	want := [][2]int{{0, 2}, {0, 4}, {1, 3}}
	if len(es) != len(want) {
		t.Fatalf("edges = %v", es)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("edges = %v, want %v", es, want)
		}
	}
}

func TestFromEdgeStreamMergesDuplicates(t *testing.T) {
	g := FromEdgeStream(4, func(emit func(u, v int)) {
		emit(0, 1)
		emit(1, 0) // same edge, flipped orientation
		emit(2, 3)
		emit(2, 3)
	})
	if g.M() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
		t.Fatalf("M=%d", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatalf("degrees %d %d", g.Degree(0), g.Degree(1))
	}
}

func TestFromEdgeStreamSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-loop")
		}
	}()
	FromEdgeStream(2, func(emit func(u, v int)) { emit(1, 1) })
}

func TestMaxDegreeAndNeighborSum(t *testing.T) {
	g := Complete(4)
	if g.MaxDegree() != 3 {
		t.Fatalf("K4 max degree = %d", g.MaxDegree())
	}
	if s := g.NeighborDegreeSum(0); s != 9 {
		t.Fatalf("K4 neighbor degree sum = %d, want 9", s)
	}
}

func TestCloneIndependent(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.Labels = []string{"a", "b"}
	g := b.Freeze()
	c := g.Clone()
	c.Labels[0] = "z"
	c.neighbors[0] = 3
	if g.Labels[0] != "a" || g.neighbors[0] != 1 {
		t.Fatal("clone shares storage with original")
	}
	if c.Label(1) != "b" || c.Label(4) != "v4" {
		t.Fatalf("labels wrong: %q %q", c.Label(1), c.Label(4))
	}
}

func TestGenerators(t *testing.T) {
	k := Complete(6)
	if k.M() != 15 {
		t.Fatalf("K6 edges = %d", k.M())
	}
	c := Cycle(7)
	if c.M() != 7 || c.MaxDegree() != 2 {
		t.Fatalf("C7: M=%d maxdeg=%d", c.M(), c.MaxDegree())
	}
	rng := rand.New(rand.NewSource(1))
	e := Random(rng, 30, 0)
	if e.M() != 0 {
		t.Fatal("G(n,0) has edges")
	}
	f := Random(rng, 30, 1)
	if f.M() != 30*29/2 {
		t.Fatalf("G(n,1) edges = %d", f.M())
	}
}

func TestBytesAccountsForCSRArrays(t *testing.T) {
	g := Complete(10) // 10 vertices, 45 edges -> 11 offsets + 90 neighbor slots
	if got, want := g.Bytes(), 4*(11+90); got != want {
		t.Fatalf("Bytes = %d, want %d", got, want)
	}
}

func TestDIMACSRoundtripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%40) + 1
		p := float64(pRaw) / 255
		g := Random(rng, n, p)
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, g, "test graph"); err != nil {
			return false
		}
		h, err := ParseDIMACS(&buf)
		if err != nil {
			return false
		}
		if h.N() != g.N() || h.M() != g.M() {
			return false
		}
		ge, he := edgeList(g), edgeList(h)
		for i := range ge {
			if ge[i] != he[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := []string{
		"e 1 2\n",                    // edge before header
		"p edge x 1\n",               // bad count
		"p foo 2 1\n",                // wrong format
		"p edge 2 1\ne 1 3\n",        // vertex out of range
		"p edge 2 1\ne 1 1\n",        // self loop
		"p edge 2 1\ne 1\n",          // malformed edge
		"p edge 2 1\nz 1 2\n",        // unknown line
		"p edge 2 1\np edge 2 1\n",   // duplicate header
		"",                           // missing header
		"p edge 2 -1\n",              // negative edge count
		"p edge 2 1\n",               // fewer edges than declared
		"p edge 3 1\ne 1 2\ne 2 3\n", // more edges than declared
	}
	for _, in := range cases {
		if _, err := ParseDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

// TestParseDIMACSHugeHeaderRejected is the OOM-by-header regression
// test: a header declaring a billion vertices must fail fast instead of
// committing the adjacency for it.
func TestParseDIMACSHugeHeaderRejected(t *testing.T) {
	_, err := ParseDIMACS(strings.NewReader("p edge 1000000000 0\n"))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("err = %v, want vertex-count limit error", err)
	}
}

func TestParseDIMACSEdgeCountMismatch(t *testing.T) {
	_, err := ParseDIMACS(strings.NewReader("p edge 3 2\ne 1 2\n"))
	if err == nil || !strings.Contains(err.Error(), "declared 2 edges") {
		t.Fatalf("err = %v, want declared-edge-count mismatch", err)
	}
}

func TestParseDIMACSSkipsNLines(t *testing.T) {
	in := "c hello\np edge 3 1\nn 1 5\ne 1 2\n"
	g, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 1 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
}

func TestNeighborDegreeSumProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		g := Random(rng, 2+rng.Intn(20), rng.Float64())
		for v := 0; v < g.N(); v++ {
			sum := 0
			for _, u := range g.Neighbors(v) {
				sum += g.Degree(int(u))
			}
			if got := g.NeighborDegreeSum(v); got != sum {
				t.Fatalf("vertex %d: NeighborDegreeSum=%d, manual=%d", v, got, sum)
			}
		}
	}
}

func TestParseDIMACSNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	alphabet := []byte("pe col dge0123456789 -\nc")
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(80)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		// Must not panic; errors are fine.
		ParseDIMACS(bytes.NewReader(buf))
	}
}

type limitedWriter struct{ left int }

func (w *limitedWriter) Write(p []byte) (int, error) {
	if len(p) > w.left {
		n := w.left
		w.left = 0
		return n, errShort
	}
	w.left -= len(p)
	return len(p), nil
}

var errShort = fmt.Errorf("simulated short write")

func TestWriteDIMACSPropagatesErrors(t *testing.T) {
	g := Complete(20)
	if err := WriteDIMACS(&limitedWriter{left: 10}, g, "header comment"); err == nil {
		t.Fatal("short write not reported")
	}
}
