package graph

import "math/rand"

// Random returns an Erdős–Rényi G(n,p) graph drawn from rng. Used by
// tests and by encoding ablation benchmarks; FPGA-derived graphs come
// from package fpga instead.
func Random(rng *rand.Rand, n int, p float64) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Freeze()
}

// Complete returns the complete graph K_n, whose chromatic number is
// exactly n — a useful hard case for unsatisfiability tests.
func Complete(n int) *Graph {
	return FromEdgeStream(n, func(emit func(u, v int)) {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				emit(u, v)
			}
		}
	})
}

// Cycle returns the cycle C_n (chromatic number 2 for even n, 3 for
// odd n). It panics for n < 3.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: cycle needs at least 3 vertices")
	}
	return FromEdgeStream(n, func(emit func(u, v int)) {
		for v := 0; v < n; v++ {
			emit(v, (v+1)%n)
		}
	})
}
