package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// weightedEdge is an (u, v, d) triple for order-insensitive comparisons.
type weightedEdge struct{ u, v, d int }

func weightedEdgeList(g *Graph) []weightedEdge {
	var out []weightedEdge
	g.ForEachWeightedEdge(func(u, v, d int) {
		out = append(out, weightedEdge{u, v, d})
	})
	return out
}

func TestBuilderWeightedMerge(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 2)
	b.AddEdge(0, 1)            // re-add at distance 1: larger kept
	b.AddWeightedEdge(1, 0, 5) // larger distance wins
	b.AddWeightedEdge(1, 2, 3)
	b.AddWeightedEdge(1, 2, 2) // smaller distance ignored
	g := b.Freeze()
	if !g.Weighted() {
		t.Fatal("graph with distances >= 2 must be weighted")
	}
	if g.M() != 2 {
		t.Fatalf("M=%d, want 2", g.M())
	}
	if w := g.EdgeWeight(0, 1); w != 5 {
		t.Fatalf("EdgeWeight(0,1)=%d, want 5", w)
	}
	if w := g.EdgeWeight(1, 2); w != 3 {
		t.Fatalf("EdgeWeight(1,2)=%d, want 3", w)
	}
	if w := g.EdgeWeight(0, 2); w != 0 {
		t.Fatalf("EdgeWeight(0,2)=%d on a non-edge, want 0", w)
	}
	if mw := g.MaxEdgeWeight(); mw != 5 {
		t.Fatalf("MaxEdgeWeight=%d, want 5", mw)
	}
	got := weightedEdgeList(g)
	want := []weightedEdge{{0, 1, 5}, {1, 2, 3}}
	if len(got) != len(want) {
		t.Fatalf("edges %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edges %v, want %v", got, want)
		}
	}
}

func TestUnweightedAccessors(t *testing.T) {
	g := Complete(4)
	if g.Weighted() {
		t.Fatal("Complete graphs are unweighted")
	}
	if w := g.EdgeWeight(0, 1); w != 1 {
		t.Fatalf("EdgeWeight on unweighted edge = %d, want 1", w)
	}
	if mw := g.MaxEdgeWeight(); mw != 1 {
		t.Fatalf("MaxEdgeWeight=%d, want 1", mw)
	}
	sum := 0
	g.ForEachWeightedEdge(func(u, v, d int) { sum += d })
	if sum != g.M() {
		t.Fatalf("weighted iteration over unweighted graph summed %d, want %d", sum, g.M())
	}
}

func TestFromWeightedEdgeStreamMatchesBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type e struct{ u, v, d int }
	var edges []e
	n := 30
	for i := 0; i < 120; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		edges = append(edges, e{u, v, 1 + rng.Intn(4)})
	}
	gs := FromWeightedEdgeStream(n, func(emit func(u, v, d int)) {
		for _, ed := range edges {
			emit(ed.u, ed.v, ed.d)
		}
	})
	b := NewBuilder(n)
	for _, ed := range edges {
		b.AddWeightedEdge(ed.u, ed.v, ed.d)
	}
	gb := b.Freeze()
	if gs.N() != gb.N() || gs.M() != gb.M() || gs.Weighted() != gb.Weighted() {
		t.Fatalf("stream %d/%d/%v vs builder %d/%d/%v",
			gs.N(), gs.M(), gs.Weighted(), gb.N(), gb.M(), gb.Weighted())
	}
	ls, lb := weightedEdgeList(gs), weightedEdgeList(gb)
	for i := range ls {
		if ls[i] != lb[i] {
			t.Fatalf("edge %d: stream %v vs builder %v", i, ls[i], lb[i])
		}
	}
}

func TestWeightedCloneAndBytes(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(1, 2, 3)
	g := b.Freeze()
	unweightedBytes := 4 * ((g.N() + 1) + 2*g.M())
	if g.Bytes() != unweightedBytes+4*2*g.M() {
		t.Fatalf("Bytes=%d does not account for the weight array", g.Bytes())
	}
	c := g.Clone()
	if !c.Weighted() || c.EdgeWeight(1, 2) != 3 {
		t.Fatal("Clone dropped weights")
	}
}

func TestWeightedDIMACSRoundTrip(t *testing.T) {
	b := NewBuilder(4)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(1, 2, 1)
	b.AddWeightedEdge(2, 3, 7)
	g := b.Freeze()
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g, "weighted round trip"); err != nil {
		t.Fatal(err)
	}
	h, err := ParseDIMACS(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if !h.Weighted() || h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("round trip changed shape: %v", buf.String())
	}
	lg, lh := weightedEdgeList(g), weightedEdgeList(h)
	for i := range lg {
		if lg[i] != lh[i] {
			t.Fatalf("edge %d: %v -> %v", i, lg[i], lh[i])
		}
	}
}

func TestParseWeightedDIMACSValidation(t *testing.T) {
	cases := []string{
		"p edge 3 1\ne 1 2 0\n",          // distance < 1
		"p edge 3 1\ne 1 2 -4\n",         // negative distance
		"p edge 3 1\ne 1 2 x\n",          // non-numeric distance
		"p edge 3 1\ne 1 2 2000000\n",    // beyond MaxParseDistance
		"p edge 3 1\ne 1 2 3 9\n",        // too many fields
		"p edge 3 2\ne 1 2 2\ne 1 2 2\n", // duplicates count as lines but merge
	}
	for _, src := range cases[:5] {
		if _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
	g, err := ParseDIMACS(strings.NewReader(cases[5]))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 || g.EdgeWeight(0, 1) != 2 {
		t.Fatalf("duplicate weighted edges mishandled: M=%d w=%d", g.M(), g.EdgeWeight(0, 1))
	}
	// All-1 explicit distances parse to the unweighted normal form.
	g, err = ParseDIMACS(strings.NewReader("p edge 3 2\ne 1 2 1\ne 2 3 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Weighted() {
		t.Fatal("all-1 distances must normalize to unweighted")
	}
}
