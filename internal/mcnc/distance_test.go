package mcnc

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"fpgasat/internal/coloring"
	"fpgasat/internal/core"
	"fpgasat/internal/search"
)

// TestCalibrationDistanceInstances proves the RoutableW calibration of
// every crosstalk instance the same way the classic calibration test
// does for the disequality instances: the bandwidth-coloring CSP is SAT
// at RoutableW and UNSAT at RoutableW-1, established by an exact
// MinWidth search with the order encoding.
func TestCalibrationDistanceInstances(t *testing.T) {
	insts := DistanceInstances()
	if len(insts) == 0 {
		t.Fatal("no distance instances registered")
	}
	strat, err := core.ParseStrategy("order/-")
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range insts {
		in := in
		t.Run(in.Name, func(t *testing.T) {
			t.Parallel()
			_, g, err := in.Build()
			if err != nil {
				t.Fatal(err)
			}
			if !g.Weighted() {
				t.Fatalf("%s: conflict graph is unweighted despite xtalk=%d", in.Name, in.Crosstalk)
			}
			if got := g.MaxEdgeWeight(); got != in.Crosstalk {
				t.Fatalf("%s: max edge distance %d, want %d", in.Name, got, in.Crosstalk)
			}
			res, err := search.MinWidth(context.Background(), g, search.Options{
				Strategy: strat,
				Hi:       in.RoutableW + 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.ProvedOptimal {
				t.Fatalf("%s: MinWidth did not prove optimality", in.Name)
			}
			if res.MinWidth != in.RoutableW {
				t.Fatalf("%s: calibrated minimum width %d, registry says %d",
					in.Name, res.MinWidth, in.RoutableW)
			}
			if err := coloring.Verify(g, res.Colors, in.RoutableW); err != nil {
				t.Fatalf("%s: witness at RoutableW invalid: %v", in.Name, err)
			}
		})
	}
}

// TestDistanceInstancesShareBase checks that each crosstalk instance is
// the same placed netlist and global routing as its base instance —
// only the conflict-graph edge distances change.
func TestDistanceInstancesShareBase(t *testing.T) {
	for _, in := range DistanceInstances() {
		base := strings.TrimSuffix(strings.TrimSuffix(in.Name, ".x2"), ".x3")
		bi, err := ByName(base)
		if err != nil {
			t.Fatalf("%s: no base instance %q", in.Name, base)
		}
		if in.Gen != bi.Gen || in.Route != bi.Route {
			t.Fatalf("%s: generator/router params differ from base %s", in.Name, base)
		}
		if in.Hard {
			t.Fatalf("%s: crosstalk instances must not be in Table 2", in.Name)
		}
		_, g, err := in.Build()
		if err != nil {
			t.Fatal(err)
		}
		_, bg, err := bi.Build()
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != bg.N() || g.M() != bg.M() {
			t.Fatalf("%s: conflict graph shape %d/%d differs from base %d/%d",
				in.Name, g.N(), g.M(), bg.N(), bg.M())
		}
	}
}

// TestRegistryXtalkRoundTrip checks that the xtalk field survives a
// WriteInstances/ParseInstances round trip and is validated on parse.
func TestRegistryXtalkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteInstances(&buf, Instances()); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseInstances("registry", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, buf.String())
	}
	if len(parsed) != len(Instances()) {
		t.Fatalf("round trip kept %d of %d instances", len(parsed), len(Instances()))
	}
	for i, in := range Instances() {
		if parsed[i] != in {
			t.Fatalf("instance %s changed in round trip: %+v -> %+v", in.Name, in, parsed[i])
		}
	}
	for _, bad := range []string{
		"instance z rows=2 cols=2 nets=1 minpins=2 maxpins=2 locality=1 seed=1 capacity=1 w=1 xtalk=-1\n",
		"instance z rows=2 cols=2 nets=1 minpins=2 maxpins=2 locality=1 seed=1 capacity=1 w=1 xtalk=65\n",
	} {
		if _, err := ParseInstances("bad", strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted invalid xtalk line: %s", bad)
		}
	}
}
