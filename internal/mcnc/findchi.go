package mcnc

import (
	"context"
	"fmt"
	"time"

	"fpgasat/internal/coloring"
	"fpgasat/internal/core"
	"fpgasat/internal/graph"
	"fpgasat/internal/obs"
	"fpgasat/internal/portfolio"
	"fpgasat/internal/search"
)

// ChiResult is the outcome of FindChi: the measured chromatic number of
// a conflict graph (the instance's exact minimum channel width) plus
// the heuristic bounds that framed the search.
type ChiResult struct {
	// Chi is the smallest width proved routable; 0 if none was found
	// before cancellation.
	Chi int
	// Colors is a verified coloring with Chi colors.
	Colors []int
	// Proved reports that Chi-1 was also proved unroutable (or Chi hit
	// the clique lower bound, which proves optimality combinatorially).
	Proved bool
	// LowerBound is the greedy-clique size, UpperBound the DSATUR color
	// count that seeded the search.
	LowerBound, UpperBound int
	// Strategy names the winning strategy, Probes counts its width
	// probes, Elapsed is the winner's wall-clock search time.
	Strategy string
	Probes   int
	Elapsed  time.Duration
}

// FindChi measures the chromatic number of a conflict graph — the
// calibrated RoutableW of an instance — with the incremental width
// search, descending from the DSATUR upper bound. It is the one width-
// probe loop shared by cmd/calibrate and cmd/seedscan: each strategy
// encodes once at the upper bound and probes widths via selector
// assumptions on a single solver; with more than one strategy the
// searches race and the first completed one wins. A clique of size c
// proves chi >= c, so the search floor is the greedy-clique bound and
// reaching it skips the final Unsat probe. probeTimeout bounds each
// width probe (0 = none); reg (may be nil) receives the
// search.minwidth.* telemetry.
func FindChi(ctx context.Context, g *graph.Graph, strategies []core.Strategy, probeTimeout time.Duration, reg *obs.Registry) (ChiResult, error) {
	if len(strategies) == 0 {
		return ChiResult{}, fmt.Errorf("mcnc: FindChi needs at least one strategy")
	}
	res := ChiResult{LowerBound: len(coloring.GreedyClique(g))}
	colors, ub := coloring.DSATUR(g)
	res.UpperBound = ub
	if ub == 0 { // empty graph
		res.Proved = true
		return res, nil
	}
	lo := res.LowerBound
	if lo < 1 {
		lo = 1
	}
	if lo >= ub {
		// The heuristic bounds already meet: DSATUR's coloring is
		// optimal and no SAT probe is needed.
		res.Chi, res.Colors, res.Proved, res.Strategy = ub, colors, true, "dsatur"
		return res, nil
	}
	opts := search.Options{
		Lo:           lo,
		Hi:           ub,
		ProbeTimeout: probeTimeout,
	}
	var sres *search.Result
	if len(strategies) == 1 {
		opts.Strategy = strategies[0]
		opts.Metrics = reg
		opts.MetricSuffix = strategies[0].Name()
		r, err := search.MinWidth(ctx, g, opts)
		if err != nil {
			return res, err
		}
		sres, res.Strategy = r, strategies[0].Name()
		res.Elapsed = sumProbeTime(r)
	} else {
		win, _, err := portfolio.RunMinWidth(ctx, g, opts, strategies, reg)
		if err != nil {
			return res, err
		}
		sres, res.Strategy = win.Search, win.Strategy.Name()
		res.Elapsed = win.Elapsed
	}
	res.Probes = len(sres.Probes)
	if sres.MinWidth == 0 {
		// DSATUR already routed at ub, so the search not finding any
		// routable width means either cancellation (fall back to the
		// heuristic coloring, unproved) or an Unsat at ub — which
		// contradicts the heuristic coloring and means the winning
		// encoding is unsound.
		if sres.ProvedOptimal {
			return res, fmt.Errorf(
				"mcnc: strategy %s proves width %d unroutable but DSATUR routed it; the encoding is unsound",
				res.Strategy, ub)
		}
		res.Chi, res.Colors, res.Proved = ub, colors, false
		return res, nil
	}
	res.Chi, res.Colors = sres.MinWidth, sres.Colors
	// The search floor is the clique lower bound, so a completed search
	// proves chi exactly: either Unsat at Chi-1, or Chi == LowerBound
	// and a clique of that size certifies no smaller width exists.
	res.Proved = sres.ProvedOptimal
	return res, nil
}

func sumProbeTime(r *search.Result) time.Duration {
	d := r.EncodeTime
	for _, p := range r.Probes {
		d += p.Duration
	}
	return d
}
