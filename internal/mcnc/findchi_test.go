package mcnc

import (
	"context"
	"testing"
	"time"

	"fpgasat/internal/core"
	"fpgasat/internal/graph"
	"fpgasat/internal/obs"
)

func chiStrategies(t *testing.T, specs ...string) []core.Strategy {
	t.Helper()
	out := make([]core.Strategy, len(specs))
	for i, s := range specs {
		st, err := core.ParseStrategy(s)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = st
	}
	return out
}

// TestFindChiCalibrated re-measures a calibrated instance with the
// shared incremental width-probe helper: the result must match the
// registry's RoutableW, with the heuristic bounds bracketing it.
func TestFindChiCalibrated(t *testing.T) {
	// 9symml has a genuine gap between the greedy-clique bound (5) and
	// DSATUR (7), so FindChi must take the SAT probe path to pin chi=6.
	in, err := ByName("9symml")
	if err != nil {
		t.Fatal(err)
	}
	_, g, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	res, err := FindChi(context.Background(), g,
		chiStrategies(t, "ITE-linear-2+muldirect/s1"), time.Minute, reg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chi != in.RoutableW || !res.Proved {
		t.Fatalf("chi=%d proved=%v, want %d/true", res.Chi, res.Proved, in.RoutableW)
	}
	if res.LowerBound > res.Chi || res.Chi > res.UpperBound {
		t.Fatalf("bounds [%d,%d] do not bracket chi=%d", res.LowerBound, res.UpperBound, res.Chi)
	}
	if err := core.NewCSP(g, res.Chi).Verify(res.Colors); err != nil {
		t.Fatalf("returned coloring invalid: %v", err)
	}
	if res.Probes == 0 {
		t.Fatal("the SAT search ran but recorded no probes")
	}
}

// TestFindChiRacesStrategies exercises the portfolio path (two
// strategies) on a small graph.
func TestFindChiRacesStrategies(t *testing.T) {
	rngGraph := graph.Complete(5)
	res, err := FindChi(context.Background(), rngGraph,
		chiStrategies(t, "ITE-log/s1", "direct/s1"), time.Minute, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chi != 5 || !res.Proved {
		t.Fatalf("chi=%d proved=%v, want 5/true (K5)", res.Chi, res.Proved)
	}
	if res.Strategy == "" {
		t.Fatal("winner strategy not recorded")
	}
}

// TestFindChiBoundsMeet covers the no-SAT shortcut: on a complete
// graph the greedy clique and DSATUR agree, so no probe is needed.
func TestFindChiBoundsMeet(t *testing.T) {
	g := graph.Complete(6)
	res, err := FindChi(context.Background(), g, chiStrategies(t, "log/-"), time.Minute, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chi != 6 || !res.Proved || res.Probes != 0 {
		t.Fatalf("bounds-meet shortcut not taken: %+v", res)
	}
	if res.Strategy != "dsatur" {
		t.Fatalf("strategy %q, want dsatur shortcut", res.Strategy)
	}
}

func TestFindChiNoStrategies(t *testing.T) {
	if _, err := FindChi(context.Background(), graph.Complete(3), nil, 0, nil); err == nil {
		t.Fatal("expected an error without strategies")
	}
}
