package mcnc

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"fpgasat/internal/robust"
)

// FuzzParseMCNC checks the input-robustness contract of the instance-
// registry parser: ParseInstances never panics on any input, every
// rejection is a typed *robust.InputError, every accepted registry
// passes its own validation caps, and accepted registries survive a
// WriteInstances/ParseInstances round trip unchanged.
func FuzzParseMCNC(f *testing.F) {
	seeds := []string{
		"instance tiny rows=4 cols=4 nets=10 minpins=2 maxpins=3 locality=2 seed=42 capacity=3 w=3\n",
		"# comment\n\ninstance a rows=8 cols=8 nets=70 minpins=2 maxpins=4 locality=3 seed=102 capacity=4 w=7 hard\n",
		"instance a rows=4 cols=4 nets=1 minpins=2 maxpins=2 locality=1 seed=1 capacity=1 w=1\n" +
			"instance b rows=5 cols=5 nets=2 minpins=2 maxpins=2 locality=1 seed=2 capacity=2 w=2\n",
		"",
		"instance\n",
		"instance x\n",
		"instance x rows=banana\n",
		"instance x rows=-1 cols=4 nets=1 minpins=2 maxpins=2 locality=1 seed=1 capacity=1 w=1\n",
		"instance x rows=999999999 cols=999999999 nets=999999999 minpins=2 maxpins=2 locality=1 seed=1 capacity=1 w=1\n",
		"instance x rows=4 rows=4\n",
		"benchmark x rows=4\n",
		"instance x rows=4 cols=4 nets=1 minpins=2 maxpins=2 locality=1 seed=1 capacity=1 w=1 hard hard\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	// A registry of built-ins as a structured seed.
	var buf bytes.Buffer
	if err := WriteInstances(&buf, instances); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())

	f.Fuzz(func(t *testing.T, in string) {
		got, err := ParseInstances("fuzz.reg", strings.NewReader(in))
		if err != nil {
			if _, ok := err.(*robust.InputError); !ok {
				t.Fatalf("rejection is %T, not *robust.InputError: %v", err, err)
			}
			return
		}
		var out bytes.Buffer
		for _, g := range got {
			if verr := validateInstance(g); verr != nil {
				t.Fatalf("accepted instance fails validation: %v\ninput: %q", verr, in)
			}
		}
		if err := WriteInstances(&out, got); err != nil {
			t.Fatalf("write: %v", err)
		}
		back, err := ParseInstances("fuzz.reg", bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("reparse of own output failed: %v\noutput: %q", err, out.String())
		}
		if !reflect.DeepEqual(back, got) {
			t.Fatalf("round trip changed registry:\n got %+v\nback %+v", got, back)
		}
	})
}
