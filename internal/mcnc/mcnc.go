// Package mcnc provides the benchmark instances used by the experiment
// harness: synthetic stand-ins for the MCNC FPGA detailed-routing
// benchmarks (alu2, too_large, alu4, C880, apex7, C1355, vda, k2) with
// global routings produced by the negotiated-congestion router in
// package fpga, substituting for the SEGA-1.1 global routings the
// paper used (see DESIGN.md for the substitution rationale).
//
// Every instance is fully deterministic (seeded by instance) and comes
// with a calibrated channel width: RoutableW is the exact chromatic
// number of the conflict graph, so the configuration with RoutableW
// tracks is routable and the one with RoutableW-1 tracks is provably
// unroutable — the two experimental conditions of the paper's Sect. 6.
// The calibration is enforced by tests in this package.
package mcnc

import (
	"fmt"

	"fpgasat/internal/fpga"
	"fpgasat/internal/graph"
)

// Instance describes one benchmark: generator and router parameters
// plus the calibrated channel width.
type Instance struct {
	Name  string
	Gen   fpga.GenParams
	Route fpga.RouteOptions
	// RoutableW is the minimum channel width for which a detailed
	// routing exists: the chromatic number of the conflict graph, or —
	// for crosstalk instances — the bandwidth-coloring minimum span.
	RoutableW int
	// Hard marks the instances from the paper's Table 2 (challenging
	// unroutable configurations).
	Hard bool
	// Crosstalk >= 2 makes the instance a bandwidth-coloring problem:
	// routes coupled through two or more common connection blocks must
	// sit at least Crosstalk tracks apart (fpga.ConflictGraphXtalk).
	// 0 and 1 are the classic disequality instances.
	Crosstalk int
}

// UnroutableW returns the largest channel width for which the
// configuration is provably unroutable.
func (in Instance) UnroutableW() int { return in.RoutableW - 1 }

// Build regenerates the instance: the placed netlist, its global
// routing, and the conflict graph of 2-pin nets. Deterministic.
func (in Instance) Build() (*fpga.GlobalRouting, *graph.Graph, error) {
	nl, err := fpga.Generate(in.Name, in.Gen)
	if err != nil {
		return nil, nil, fmt.Errorf("mcnc: %s: %w", in.Name, err)
	}
	gr, _, err := fpga.RouteGlobal(nl, in.Route)
	if err != nil {
		return nil, nil, fmt.Errorf("mcnc: %s: %w", in.Name, err)
	}
	return gr, gr.ConflictGraphXtalk(in.Crosstalk), nil
}

// instances is the registry. The RoutableW values are calibrated: a
// calibration test proves SAT at RoutableW and UNSAT at RoutableW-1
// for every instance.
var instances = []Instance{
	{
		Name:      "alu2",
		Gen:       fpga.GenParams{Rows: 8, Cols: 8, NumNets: 70, MinPins: 2, MaxPins: 4, Locality: 3, Seed: 102},
		Route:     fpga.RouteOptions{Capacity: 4},
		RoutableW: 7,
		Hard:      true,
	},
	{
		Name:      "too_large",
		Gen:       fpga.GenParams{Rows: 9, Cols: 9, NumNets: 90, MinPins: 2, MaxPins: 4, Locality: 3, Seed: 8103},
		Route:     fpga.RouteOptions{Capacity: 4},
		RoutableW: 7,
		Hard:      true,
	},
	{
		Name:      "alu4",
		Gen:       fpga.GenParams{Rows: 11, Cols: 11, NumNets: 140, MinPins: 2, MaxPins: 4, Locality: 3, Seed: 5104},
		Route:     fpga.RouteOptions{Capacity: 4},
		RoutableW: 8,
		Hard:      true,
	},
	{
		Name:      "C880",
		Gen:       fpga.GenParams{Rows: 12, Cols: 12, NumNets: 170, MinPins: 2, MaxPins: 4, Locality: 3, Seed: 3105},
		Route:     fpga.RouteOptions{Capacity: 4},
		RoutableW: 10,
		Hard:      true,
	},
	{
		Name:      "apex7",
		Gen:       fpga.GenParams{Rows: 10, Cols: 10, NumNets: 120, MinPins: 2, MaxPins: 5, Locality: 3, Seed: 6106},
		Route:     fpga.RouteOptions{Capacity: 4},
		RoutableW: 10,
		Hard:      true,
	},
	{
		Name:      "C1355",
		Gen:       fpga.GenParams{Rows: 12, Cols: 12, NumNets: 160, MinPins: 2, MaxPins: 4, Locality: 4, Seed: 4107},
		Route:     fpga.RouteOptions{Capacity: 4},
		RoutableW: 8,
		Hard:      true,
	},
	{
		Name:      "vda",
		Gen:       fpga.GenParams{Rows: 11, Cols: 11, NumNets: 150, MinPins: 2, MaxPins: 5, Locality: 3, Seed: 3108},
		Route:     fpga.RouteOptions{Capacity: 4},
		RoutableW: 9,
		Hard:      true,
	},
	{
		Name:      "k2",
		Gen:       fpga.GenParams{Rows: 12, Cols: 12, NumNets: 180, MinPins: 2, MaxPins: 5, Locality: 3, Seed: 1109},
		Route:     fpga.RouteOptions{Capacity: 4},
		RoutableW: 10,
		Hard:      true,
	},
	// Smaller, easy instances used by examples and quick tests.
	{
		Name:      "tseng",
		Gen:       fpga.GenParams{Rows: 6, Cols: 6, NumNets: 40, MinPins: 2, MaxPins: 4, Locality: 3, Seed: 110},
		Route:     fpga.RouteOptions{Capacity: 4},
		RoutableW: 7,
	},
	{
		Name:      "term1",
		Gen:       fpga.GenParams{Rows: 5, Cols: 5, NumNets: 30, MinPins: 2, MaxPins: 3, Locality: 2, Seed: 111},
		Route:     fpga.RouteOptions{Capacity: 3},
		RoutableW: 4,
	},
	{
		Name:      "9symml",
		Gen:       fpga.GenParams{Rows: 7, Cols: 7, NumNets: 50, MinPins: 2, MaxPins: 4, Locality: 2, Seed: 112},
		Route:     fpga.RouteOptions{Capacity: 4},
		RoutableW: 6,
	},
	// Distance-annotated (crosstalk) companions: the same placed
	// netlists and global routings with coupled routes — pairs sharing
	// two or more connection blocks — constrained to Crosstalk-track
	// spacing. These are the bandwidth-coloring workload of the
	// order/ladder encoding family; RoutableW is calibrated exactly like
	// the classic instances (routable at W, provably unroutable at W-1)
	// and enforced by TestCalibrationDistanceInstances.
	{
		Name:      "tseng.x2",
		Gen:       fpga.GenParams{Rows: 6, Cols: 6, NumNets: 40, MinPins: 2, MaxPins: 4, Locality: 3, Seed: 110},
		Route:     fpga.RouteOptions{Capacity: 4},
		RoutableW: 8,
		Crosstalk: 2,
	},
	{
		Name:      "term1.x2",
		Gen:       fpga.GenParams{Rows: 5, Cols: 5, NumNets: 30, MinPins: 2, MaxPins: 3, Locality: 2, Seed: 111},
		Route:     fpga.RouteOptions{Capacity: 3},
		RoutableW: 5,
		Crosstalk: 2,
	},
	{
		Name:      "9symml.x2",
		Gen:       fpga.GenParams{Rows: 7, Cols: 7, NumNets: 50, MinPins: 2, MaxPins: 4, Locality: 2, Seed: 112},
		Route:     fpga.RouteOptions{Capacity: 4},
		RoutableW: 7,
		Crosstalk: 2,
	},
	{
		Name:      "term1.x3",
		Gen:       fpga.GenParams{Rows: 5, Cols: 5, NumNets: 30, MinPins: 2, MaxPins: 3, Locality: 2, Seed: 111},
		Route:     fpga.RouteOptions{Capacity: 3},
		RoutableW: 7,
		Crosstalk: 3,
	},
	{
		Name:      "alu2.x2",
		Gen:       fpga.GenParams{Rows: 8, Cols: 8, NumNets: 70, MinPins: 2, MaxPins: 4, Locality: 3, Seed: 102},
		Route:     fpga.RouteOptions{Capacity: 4},
		RoutableW: 8,
		Crosstalk: 2,
	},
}

// Instances returns all registered benchmark instances.
func Instances() []Instance {
	out := make([]Instance, len(instances))
	copy(out, instances)
	return out
}

// Table2Instances returns the eight challenging instances of the
// paper's Table 2, in the paper's order.
func Table2Instances() []Instance {
	var out []Instance
	for _, in := range instances {
		if in.Hard {
			out = append(out, in)
		}
	}
	return out
}

// DistanceInstances returns the crosstalk (bandwidth-coloring)
// instances — the workload of the `experiments -bandwidth` study.
func DistanceInstances() []Instance {
	var out []Instance
	for _, in := range instances {
		if in.Crosstalk >= 2 {
			out = append(out, in)
		}
	}
	return out
}

// ByName looks up an instance.
func ByName(name string) (Instance, error) {
	for _, in := range instances {
		if in.Name == name {
			return in, nil
		}
	}
	return Instance{}, fmt.Errorf("mcnc: unknown instance %q", name)
}

// Names lists all instance names.
func Names() []string {
	out := make([]string, len(instances))
	for i, in := range instances {
		out[i] = in.Name
	}
	return out
}
