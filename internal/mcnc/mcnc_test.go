package mcnc

import (
	"bytes"
	"context"
	"testing"
	"time"

	"fpgasat/internal/coloring"
	"fpgasat/internal/core"
	"fpgasat/internal/portfolio"
	"fpgasat/internal/sat"
)

func TestRegistryLookups(t *testing.T) {
	if len(Instances()) < 10 {
		t.Fatalf("only %d instances", len(Instances()))
	}
	if len(Table2Instances()) != 8 {
		t.Fatalf("Table 2 needs 8 instances, got %d", len(Table2Instances()))
	}
	want := []string{"alu2", "too_large", "alu4", "C880", "apex7", "C1355", "vda", "k2"}
	for i, in := range Table2Instances() {
		if in.Name != want[i] {
			t.Fatalf("Table 2 order: got %s at %d, want %s", in.Name, i, want[i])
		}
	}
	if _, err := ByName("vda"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown instance accepted")
	}
	if len(Names()) != len(Instances()) {
		t.Fatal("Names/Instances mismatch")
	}
}

func TestInstancesMutationSafe(t *testing.T) {
	a := Instances()
	a[0].Name = "clobbered"
	if Instances()[0].Name == "clobbered" {
		t.Fatal("Instances exposes internal state")
	}
}

func TestBuildDeterministic(t *testing.T) {
	in, err := ByName("term1")
	if err != nil {
		t.Fatal(err)
	}
	_, g1, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, g2, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g1.N() != g2.N() || g1.M() != g2.M() {
		t.Fatalf("instance not deterministic: %d/%d vs %d/%d", g1.N(), g1.M(), g2.N(), g2.M())
	}
}

func TestBuildValidRouting(t *testing.T) {
	for _, name := range []string{"tseng", "term1", "9symml"} {
		in, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		gr, g, err := in.Build()
		if err != nil {
			t.Fatal(err)
		}
		if err := gr.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.N() == 0 || g.M() == 0 {
			t.Fatalf("%s: trivial conflict graph", name)
		}
		// The congestion lower bound must not contradict the calibrated
		// width.
		if gr.MaxCongestion() > in.RoutableW {
			t.Fatalf("%s: congestion %d exceeds calibrated W %d", name, gr.MaxCongestion(), in.RoutableW)
		}
	}
}

// raceWidth decides satisfiability at width w with a small portfolio.
func raceWidth(t *testing.T, in Instance, w int, timeout time.Duration) sat.Status {
	t.Helper()
	_, g, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	winner, _, err := portfolio.Run(g, w, portfolio.Must(portfolio.PaperPortfolio3()), timeout)
	if err != nil {
		t.Fatalf("%s W=%d: %v", in.Name, w, err)
	}
	return winner.Status
}

// TestCalibrationEasyInstances proves the calibration claim (routable
// at W, unroutable at W-1) for the small instances on every run.
func TestCalibrationEasyInstances(t *testing.T) {
	for _, name := range []string{"tseng", "term1", "9symml"} {
		in, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if st := raceWidth(t, in, in.RoutableW, time.Minute); st != sat.Sat {
			t.Errorf("%s at W=%d: got %v, want Sat", name, in.RoutableW, st)
		}
		if st := raceWidth(t, in, in.UnroutableW(), time.Minute); st != sat.Unsat {
			t.Errorf("%s at W=%d: got %v, want Unsat", name, in.UnroutableW(), st)
		}
	}
}

// TestCalibrationHardInstances re-proves the calibration for the Table
// 2 instances. Skipped with -short: the unroutability proofs take
// seconds each by design.
func TestCalibrationHardInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("hard calibration skipped in short mode")
	}
	for _, in := range Table2Instances() {
		if st := raceWidth(t, in, in.RoutableW, 5*time.Minute); st != sat.Sat {
			t.Errorf("%s at W=%d: got %v, want Sat", in.Name, in.RoutableW, st)
		}
		if st := raceWidth(t, in, in.UnroutableW(), 5*time.Minute); st != sat.Unsat {
			t.Errorf("%s at W=%d: got %v, want Unsat", in.Name, in.UnroutableW(), st)
		}
	}
}

// TestDecodedRoutingVerifies runs the full flow on one easy instance:
// encode at W, solve, decode, verify the coloring and track
// assignment.
func TestDecodedRoutingVerifies(t *testing.T) {
	in, err := ByName("term1")
	if err != nil {
		t.Fatal(err)
	}
	_, g, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.ParseStrategy("ITE-linear-2+muldirect/s1")
	if err != nil {
		t.Fatal(err)
	}
	st, colors, err := s.EncodeGraph(g, in.RoutableW).SolveContext(context.Background(), sat.Options{})
	if err != nil || st != sat.Sat {
		t.Fatalf("%v %v", st, err)
	}
	if err := coloring.Verify(g, colors, in.RoutableW); err != nil {
		t.Fatal(err)
	}
}

// TestUnroutabilityCertificate produces and verifies a DRAT
// certificate for a real benchmark's unroutable configuration.
func TestUnroutabilityCertificate(t *testing.T) {
	in, err := ByName("term1")
	if err != nil {
		t.Fatal(err)
	}
	_, g, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.ParseStrategy("ITE-log/s1")
	if err != nil {
		t.Fatal(err)
	}
	enc := s.EncodeGraph(g, in.UnroutableW())
	var proof bytes.Buffer
	res := sat.SolveCNFContext(context.Background(), enc.CNF, sat.Options{ProofWriter: &proof})
	if res.Status != sat.Unsat {
		t.Fatalf("status %v", res.Status)
	}
	if err := sat.CheckDRAT(enc.CNF, &proof); err != nil {
		t.Fatalf("certificate rejected: %v", err)
	}
}
