package mcnc

// Instance registries: a line-oriented text format that lets the cmd/
// tools load benchmark definitions from a file instead of the built-in
// table. The parse path follows the input-robustness contract of
// package robust — corrupted files of any shape produce a
// *robust.InputError with file/line context and can never panic or
// drive the generator into pathological allocations.
//
// Format (one instance per line, '#' starts a comment):
//
//	instance <name> rows=R cols=C nets=N minpins=A maxpins=B \
//	    locality=L seed=S capacity=P w=W [xtalk=X] [hard]
//
// xtalk >= 2 marks a bandwidth-coloring (crosstalk) instance; see
// Instance.Crosstalk.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"fpgasat/internal/fpga"
	"fpgasat/internal/robust"
)

// Generator parameter caps enforced by ParseInstances. They bound the
// work a parsed registry can demand (the generator allocates
// O(rows·cols·capacity) routing resources and O(nets·maxpins) pins),
// so a hostile or fuzzed file fails fast instead of exhausting memory.
const (
	MaxArrayDim   = 256
	MaxNets       = 100000
	MaxPinsPerNet = 64
	MaxCapacity   = 256
)

// ParseInstances reads an instance registry. source names the input in
// errors (typically the file path). The returned instances are
// validated against the caps above and against each other (duplicate
// names are rejected); errors are *robust.InputError.
func ParseInstances(source string, r io.Reader) ([]Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Instance
	seen := make(map[string]bool)
	lineNo := 0
	fail := func(format string, args ...any) error {
		return &robust.InputError{Source: source, Line: lineNo, Err: fmt.Errorf(format, args...)}
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] != "instance" {
			return nil, fail("expected %q, got %q", "instance", fields[0])
		}
		if len(fields) < 2 {
			return nil, fail("instance line lacks a name")
		}
		in := Instance{Name: fields[1]}
		if seen[in.Name] {
			return nil, fail("duplicate instance %q", in.Name)
		}
		set := make(map[string]bool)
		for _, f := range fields[2:] {
			if f == "hard" {
				in.Hard = true
				continue
			}
			key, val, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fail("malformed field %q (want key=value)", f)
			}
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fail("field %s: %q is not an integer", key, val)
			}
			if set[key] {
				return nil, fail("duplicate field %s", key)
			}
			set[key] = true
			switch key {
			case "rows":
				in.Gen.Rows = n
			case "cols":
				in.Gen.Cols = n
			case "nets":
				in.Gen.NumNets = n
			case "minpins":
				in.Gen.MinPins = n
			case "maxpins":
				in.Gen.MaxPins = n
			case "locality":
				in.Gen.Locality = n
			case "seed":
				in.Gen.Seed = int64(n)
			case "capacity":
				in.Route.Capacity = n
			case "w":
				in.RoutableW = n
			case "xtalk":
				in.Crosstalk = n
			default:
				return nil, fail("unknown field %s", key)
			}
		}
		if err := validateInstance(in); err != nil {
			return nil, fail("instance %s: %w", in.Name, err)
		}
		seen[in.Name] = true
		out = append(out, in)
	}
	if err := sc.Err(); err != nil {
		return nil, &robust.InputError{Source: source, Line: lineNo, Err: err}
	}
	if len(out) == 0 {
		lineNo = 0
		return nil, fail("no instances defined")
	}
	return out, nil
}

// validateInstance enforces the generator caps and internal
// consistency of one parsed instance.
func validateInstance(in Instance) error {
	switch {
	case in.Name == "":
		return fmt.Errorf("empty name")
	case in.Gen.Rows < 1 || in.Gen.Rows > MaxArrayDim:
		return fmt.Errorf("rows %d outside [1,%d]", in.Gen.Rows, MaxArrayDim)
	case in.Gen.Cols < 1 || in.Gen.Cols > MaxArrayDim:
		return fmt.Errorf("cols %d outside [1,%d]", in.Gen.Cols, MaxArrayDim)
	case in.Gen.NumNets < 1 || in.Gen.NumNets > MaxNets:
		return fmt.Errorf("nets %d outside [1,%d]", in.Gen.NumNets, MaxNets)
	case in.Gen.MinPins < 2 || in.Gen.MinPins > MaxPinsPerNet:
		return fmt.Errorf("minpins %d outside [2,%d]", in.Gen.MinPins, MaxPinsPerNet)
	case in.Gen.MaxPins < in.Gen.MinPins || in.Gen.MaxPins > MaxPinsPerNet:
		return fmt.Errorf("maxpins %d outside [minpins,%d]", in.Gen.MaxPins, MaxPinsPerNet)
	case in.Gen.Locality < 1 || in.Gen.Locality > MaxArrayDim:
		return fmt.Errorf("locality %d outside [1,%d]", in.Gen.Locality, MaxArrayDim)
	case in.Route.Capacity < 1 || in.Route.Capacity > MaxCapacity:
		return fmt.Errorf("capacity %d outside [1,%d]", in.Route.Capacity, MaxCapacity)
	case in.RoutableW < 1 || in.RoutableW > MaxCapacity:
		return fmt.Errorf("w %d outside [1,%d]", in.RoutableW, MaxCapacity)
	case in.Crosstalk < 0 || in.Crosstalk > fpga.MaxCrosstalk:
		return fmt.Errorf("xtalk %d outside [0,%d]", in.Crosstalk, fpga.MaxCrosstalk)
	}
	return nil
}

// WriteInstances writes a registry in the format ParseInstances reads;
// ParseInstances(WriteInstances(x)) round-trips.
func WriteInstances(w io.Writer, instances []Instance) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# fpgasat instance registry")
	for _, in := range instances {
		fmt.Fprintf(bw, "instance %s rows=%d cols=%d nets=%d minpins=%d maxpins=%d locality=%d seed=%d capacity=%d w=%d",
			in.Name, in.Gen.Rows, in.Gen.Cols, in.Gen.NumNets, in.Gen.MinPins, in.Gen.MaxPins,
			in.Gen.Locality, in.Gen.Seed, in.Route.Capacity, in.RoutableW)
		if in.Crosstalk > 0 {
			fmt.Fprintf(bw, " xtalk=%d", in.Crosstalk)
		}
		if in.Hard {
			fmt.Fprint(bw, " hard")
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
