package mcnc

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"fpgasat/internal/robust"
)

func TestRegistryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteInstances(&buf, instances); err != nil {
		t.Fatal(err)
	}
	got, err := ParseInstances("builtin", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, instances) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, instances)
	}
}

func TestRegistryParsesMinimalFile(t *testing.T) {
	const text = `
# comment, then a blank line

instance tiny rows=4 cols=4 nets=10 minpins=2 maxpins=3 locality=2 seed=42 capacity=3 w=3 hard
`
	ins, err := ParseInstances("tiny.reg", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 1 || ins[0].Name != "tiny" || !ins[0].Hard || ins[0].Gen.Seed != 42 {
		t.Fatalf("parsed %+v", ins)
	}
	// A parsed instance must actually build.
	if _, g, err := ins[0].Build(); err != nil || g.N() == 0 {
		t.Fatalf("parsed instance does not build: %v", err)
	}
}

func TestRegistryRejectsCorruptedInput(t *testing.T) {
	cases := []struct {
		name, text, wantMsg string
		wantLine            int
	}{
		{"not an instance", "benchmark x rows=1", "expected", 1},
		{"missing name", "instance", "lacks a name", 1},
		{"bad integer", "instance x rows=banana", "not an integer", 1},
		{"unknown field", "instance x rows=4 cols=4 nets=1 minpins=2 maxpins=2 locality=1 seed=1 capacity=1 w=1 color=7", "unknown field", 1},
		{"malformed field", "instance x rows", "malformed field", 1},
		{"duplicate field", "instance x rows=4 rows=5", "duplicate field", 1},
		{"rows cap", "instance x rows=100000 cols=4 nets=1 minpins=2 maxpins=2 locality=1 seed=1 capacity=1 w=1", "outside", 1},
		{"nets cap", "instance x rows=4 cols=4 nets=99999999 minpins=2 maxpins=2 locality=1 seed=1 capacity=1 w=1", "outside", 1},
		{"pins inverted", "instance x rows=4 cols=4 nets=1 minpins=3 maxpins=2 locality=1 seed=1 capacity=1 w=1", "maxpins", 1},
		{"missing fields", "instance x", "outside", 1},
		{"duplicate instance", "instance x rows=4 cols=4 nets=1 minpins=2 maxpins=2 locality=1 seed=1 capacity=1 w=1\ninstance x rows=4 cols=4 nets=1 minpins=2 maxpins=2 locality=1 seed=1 capacity=1 w=1", "duplicate instance", 2},
		{"empty file", "# only a comment\n", "no instances", 0},
	}
	for _, tc := range cases {
		_, err := ParseInstances("bad.reg", strings.NewReader(tc.text))
		if err == nil {
			t.Fatalf("%s: corrupted input accepted", tc.name)
		}
		var ie *robust.InputError
		ie, ok := err.(*robust.InputError)
		if !ok {
			t.Fatalf("%s: error %T is not *robust.InputError: %v", tc.name, err, err)
		}
		if ie.Source != "bad.reg" || ie.Line != tc.wantLine {
			t.Fatalf("%s: error context %s:%d, want bad.reg:%d", tc.name, ie.Source, ie.Line, tc.wantLine)
		}
		if !strings.Contains(err.Error(), tc.wantMsg) {
			t.Fatalf("%s: error %q lacks %q", tc.name, err, tc.wantMsg)
		}
	}
}
