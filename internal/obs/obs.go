// Package obs is the observability layer of the solve pipeline: a
// lightweight metrics registry of named counters, gauges and timers,
// plus spans for per-stage wall-clock timing (decompose / encode /
// solve / decode and the per-strategy portfolio stages).
//
// Hot-path operations — Counter.Add, Gauge.Set, Timer.Observe and
// Span.End — are single atomic updates and allocate nothing. Metric
// lookup (Registry.Counter, Registry.Gauge, Registry.Timer) takes a
// lock and should be hoisted out of loops: fetch the metric once,
// then update it from the hot path.
//
// A Registry is safe for concurrent use by any number of goroutines;
// Snapshot may be taken while writers are active and returns a
// consistent-enough point-in-time view (each metric is read
// atomically, but the set of metrics is not frozen as a whole).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric (e.g. solves started,
// portfolio wins per strategy).
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the value to stay monotonic;
// this is not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time value that may go up or down (e.g. learnt
// clause database size, CNF variable count).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Timer accumulates duration observations: count, total, min and max,
// all in nanoseconds, updated atomically.
type Timer struct {
	count atomic.Int64
	total atomic.Int64
	min   atomic.Int64 // math.MaxInt64 until the first observation
	max   atomic.Int64
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	ns := int64(d)
	t.count.Add(1)
	t.total.Add(ns)
	for {
		cur := t.min.Load()
		if ns >= cur || t.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := t.max.Load()
		if ns <= cur || t.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Stats returns the timer's aggregate statistics.
func (t *Timer) Stats() TimerStats {
	s := TimerStats{
		Count: t.count.Load(),
		Total: time.Duration(t.total.Load()),
		Max:   time.Duration(t.max.Load()),
	}
	if min := t.min.Load(); min != math.MaxInt64 {
		s.Min = time.Duration(min)
	}
	if s.Count > 0 {
		s.Mean = s.Total / time.Duration(s.Count)
	}
	return s
}

// TimerStats is the snapshot of one Timer. Durations serialize to JSON
// as integer nanoseconds.
type TimerStats struct {
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	Mean  time.Duration `json:"mean_ns"`
}

// Span is an in-flight timing measurement for one pipeline stage.
// It is a value type: starting and ending a span allocates nothing.
type Span struct {
	t     *Timer
	start time.Time
}

// End stops the span, records its duration into the backing timer and
// returns the duration. End must be called at most once.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	if s.t != nil {
		s.t.Observe(d)
	}
	return d
}

// Registry is a named collection of metrics. The zero value is not
// usable; call NewRegistry. A nil *Registry is a valid no-op sink for
// StartSpan (the returned span discards its measurement), which lets
// instrumented code skip nil checks.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		timers:   map[string]*Timer{},
	}
}

// Counter returns the counter with the given name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the timer with the given name, creating it on first
// use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		t.min.Store(math.MaxInt64)
		r.timers[name] = t
	}
	return t
}

// StartSpan begins timing one stage; Span.End records the duration
// into the timer of the same name. On a nil Registry the span is a
// no-op (End still returns the elapsed time).
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{start: time.Now()}
	}
	return Span{t: r.Timer(name), start: time.Now()}
}

// Snapshot is a point-in-time copy of every metric in a Registry.
type Snapshot struct {
	Counters map[string]int64      `json:"counters,omitempty"`
	Gauges   map[string]int64      `json:"gauges,omitempty"`
	Timers   map[string]TimerStats `json:"timers,omitempty"`
}

// Snapshot copies the current value of every metric. It is safe to
// call while other goroutines are updating metrics.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]int64, len(r.counters)),
		Gauges:   make(map[string]int64, len(r.gauges)),
		Timers:   make(map[string]TimerStats, len(r.timers)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, t := range r.timers {
		s.Timers[name] = t.Stats()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot as a human-readable report: timers
// first (the per-stage timing table), then gauges and counters, each
// section sorted by name.
func (s Snapshot) WriteText(w io.Writer) error {
	if len(s.Timers) > 0 {
		if _, err := fmt.Fprintf(w, "%-40s %8s %12s %12s %12s\n",
			"timer", "count", "total", "mean", "max"); err != nil {
			return err
		}
		for _, name := range sortedKeys(s.Timers) {
			t := s.Timers[name]
			if _, err := fmt.Fprintf(w, "%-40s %8d %12s %12s %12s\n",
				name, t.Count, round(t.Total), round(t.Mean), round(t.Max)); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "%-40s %21d\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "%-40s %21d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	return nil
}

func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
