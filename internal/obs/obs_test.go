package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("solves")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("solves") != c {
		t.Fatal("Counter not idempotent per name")
	}
	g := r.Gauge("depth")
	g.Set(42)
	g.Add(-2)
	if got := g.Value(); got != 40 {
		t.Fatalf("gauge = %d, want 40", got)
	}
}

func TestTimerStats(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("stage")
	tm.Observe(10 * time.Millisecond)
	tm.Observe(30 * time.Millisecond)
	s := tm.Stats()
	if s.Count != 2 || s.Total != 40*time.Millisecond {
		t.Fatalf("count=%d total=%v", s.Count, s.Total)
	}
	if s.Min != 10*time.Millisecond || s.Max != 30*time.Millisecond {
		t.Fatalf("min=%v max=%v", s.Min, s.Max)
	}
	if s.Mean != 20*time.Millisecond {
		t.Fatalf("mean=%v", s.Mean)
	}
}

func TestEmptyTimerStats(t *testing.T) {
	s := NewRegistry().Timer("never").Stats()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Mean != 0 || s.Total != 0 {
		t.Fatalf("zero timer stats = %+v", s)
	}
}

func TestSpanRecordsIntoTimer(t *testing.T) {
	r := NewRegistry()
	span := r.StartSpan("encode")
	time.Sleep(time.Millisecond)
	d := span.End()
	if d <= 0 {
		t.Fatalf("span duration %v", d)
	}
	s := r.Timer("encode").Stats()
	if s.Count != 1 || s.Total != d {
		t.Fatalf("timer did not record the span: %+v (span %v)", s, d)
	}
}

func TestNilRegistrySpanIsNoop(t *testing.T) {
	var r *Registry
	span := r.StartSpan("anything")
	if d := span.End(); d < 0 {
		t.Fatalf("nil-registry span duration %v", d)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("wins").Add(3)
	r.Gauge("vars").Set(100)
	r.Timer("solve").Observe(time.Second)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, buf.String())
	}
	if got.Counters["wins"] != 3 || got.Gauges["vars"] != 100 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if ts := got.Timers["solve"]; ts.Count != 1 || ts.Total != time.Second {
		t.Fatalf("timer round-trip mismatch: %+v", ts)
	}
}

func TestSnapshotText(t *testing.T) {
	r := NewRegistry()
	r.Counter("portfolio.wins.a").Inc()
	r.Gauge("solver.conflicts").Set(7)
	r.Timer("pipeline.solve").Observe(time.Millisecond)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"portfolio.wins.a", "solver.conflicts", "pipeline.solve"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentUpdatesAndSnapshots(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			tm := r.Timer("work")
			for j := 0; j < 1000; j++ {
				c.Inc()
				tm.Observe(time.Duration(j))
				r.Gauge("last").Set(int64(j))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 100; j++ {
			r.Snapshot()
		}
	}()
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 8000 {
		t.Fatalf("hits = %d, want 8000", got)
	}
	if s := r.Timer("work").Stats(); s.Count != 8000 || s.Min != 0 || s.Max != 999 {
		t.Fatalf("timer stats = %+v", s)
	}
}
