package portfolio

// This file is the fault-tolerant supervision layer around the
// portfolio: every lane runs under recover() so a panic in an
// encoding, the solver or the decoder degrades the run to the
// surviving lanes instead of crashing the process; definite answers
// can be independently re-verified before being crowned ("paranoid
// mode"); and lanes whose conflict budget ran out are retried with
// escalated budgets under a per-lane watchdog, so a stuck strategy
// degrades to "slower" rather than "hung".

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"fpgasat/internal/coloring"
	"fpgasat/internal/core"
	"fpgasat/internal/graph"
	"fpgasat/internal/obs"
	"fpgasat/internal/robust"
	"fpgasat/internal/sat"
	"fpgasat/internal/share"
)

// Robustness metric names emitted by RunHardened (and by RunMinWidth
// for lane panics).
const (
	// MetricPanics counts portfolio lanes (decision and width-search)
	// that panicked and were converted into Result.Err.
	MetricPanics = "portfolio.panics"
	// MetricRetries counts lane re-runs after an exhausted conflict
	// budget or watchdog timeout.
	MetricRetries = "robust.retries"
	// MetricVerifySat and MetricVerifyUnsat count definite answers that
	// passed paranoid-mode verification (Sat answers re-checked against
	// the conflict edges; Unsat answers replayed through the DRAT
	// machinery).
	MetricVerifySat   = "robust.verify.sat"
	MetricVerifyUnsat = "robust.verify.unsat"
	// MetricAbandoned counts lanes that stayed unresponsive one full
	// LaneTimeout past cancellation and were abandoned by the watchdog.
	MetricAbandoned = "robust.watchdog.abandoned"
	// MetricPoolOversized counts solvers the lane pool dropped instead
	// of retaining because their footprint exceeded the pool cap.
	MetricPoolOversized = "sat.reset.oversized"
)

// Clause-sharing metric names emitted by RunHardened when Options.Share
// is set, mirroring share.Stats.
const (
	MetricShareExported   = "portfolio.share.exported"
	MetricShareFiltered   = "portfolio.share.filtered"
	MetricShareDuplicates = "portfolio.share.duplicates"
	MetricShareDropped    = "portfolio.share.dropped"
	MetricShareImported   = "portfolio.share.imported"
	MetricShareRejected   = "portfolio.share.rejected"
)

// Options configures a hardened portfolio run. The zero value
// reproduces the classic first-answer-wins behaviour: fresh solvers,
// no telemetry, no paranoid checks, no retries, no watchdog.
type Options struct {
	// Metrics receives per-strategy telemetry and the robustness
	// counters; nil disables telemetry.
	Metrics *obs.Registry
	// Pool supplies lane solvers (nil builds fresh ones). A lane that
	// panics abandons its solver instead of returning it to the pool.
	Pool *sat.Pool
	// Solver is the base solver configuration of every lane; its
	// ConflictBudget (when positive) is the unit the retry schedule
	// escalates.
	Solver sat.Options
	// Verify enables paranoid mode for Sat answers: the decoded
	// coloring is re-checked against the graph's conflict edges before
	// the lane's answer can be crowned, and a violation surfaces as a
	// *robust.SoundnessError naming the strategy.
	Verify bool
	// VerifyUnsat additionally replays Unsat answers: the formula is
	// re-encoded and re-solved with a DRAT proof writer, and the proof
	// is checked with sat.CheckDRAT. A replay that finds a satisfying
	// assignment, or a rejected proof, is a *robust.SoundnessError.
	// (A replay cancelled mid-flight is inconclusive, not unsound.)
	VerifyUnsat bool
	// LaneTimeout bounds each lane attempt, and doubles as the
	// watchdog grace period: once the run is decided (winner found or
	// caller cancelled), lanes that stay unresponsive for one more
	// LaneTimeout are abandoned with an error rather than awaited
	// forever. 0 disables both.
	LaneTimeout time.Duration
	// MaxRetries re-runs a lane whose attempt ended Unknown with an
	// exhausted conflict budget or watchdog timeout, up to this many
	// extra attempts with budgets escalated per RetrySchedule.
	MaxRetries int
	// RetrySchedule escalates Solver.ConflictBudget across retry
	// attempts (geometric doubling by default, or Luby).
	RetrySchedule robust.RetrySchedule
	// Seed, when non-zero, makes lane behaviour replayable and
	// diversified: lane i's attempt a runs its solver with a
	// sat.Options.Seed derived from (Seed, i, a), and the clause
	// exchange's import schedule derives from the same seed. When Share
	// is set and Seed is 0, an effective seed of 1 is used — replicated
	// lanes of one strategy must not retrace identical trajectories, or
	// there is nothing to share.
	Seed int64
	// Share, when non-nil, connects lanes through a bounded
	// learnt-clause exchange (see internal/share). Clauses flow only
	// between lanes running the same strategy — different strategies
	// encode into different variable spaces — so a heterogeneous
	// portfolio shares within its same-strategy subsets; use Replicate
	// to build a same-strategy lane set worth sharing across. Lanes
	// whose strategy appears once run unhooked at zero overhead.
	// Share.Seed defaults to the run's effective Seed.
	Share *share.Options
}

// laneSetup carries a lane's identity-derived configuration: its
// solver seed base and its port into the clause exchange (nil when
// sharing is off or the lane has no same-strategy peer).
type laneSetup struct {
	seed  int64
	share *share.Lane
}

// RunHardened is RunPooled with the full supervision layer: panic
// isolation per lane, optional answer self-checking, budgeted retries
// and a lane watchdog, all configured through opts. The first
// error-free definite answer wins and cancels the rest; a soundness
// violation caught by paranoid mode fails the whole run loudly, like
// the Sat/Unsat-disagreement guard it extends.
func RunHardened(ctx context.Context, g *graph.Graph, k int, strategies []core.Strategy, opts Options) (Result, []Result, error) {
	if len(strategies) == 0 {
		return Result{}, nil, fmt.Errorf("portfolio: no strategies")
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	seed := opts.Seed
	lanes := make([]laneSetup, len(strategies))
	var ex *share.Exchange
	if opts.Share != nil {
		if seed == 0 {
			seed = 1
		}
		so := *opts.Share
		if so.Seed == 0 {
			so.Seed = seed
		}
		groups := make([]string, len(strategies))
		for i, s := range strategies {
			groups[i] = s.Name()
		}
		ex = share.NewExchange(groups, so)
		defer ex.Close()
		// Unblock deterministic-mode waiters the moment the run is
		// decided or the caller cancels, not when the last lane exits.
		go func() {
			<-runCtx.Done()
			ex.Close()
		}()
		for i := range strategies {
			if l := ex.Lane(i); l.Peers() > 0 {
				lanes[i].share = l
			}
		}
	}
	if seed != 0 {
		for i := range lanes {
			lanes[i].seed = share.MixSeed(seed, int64(i))
		}
	}

	type laneOut struct {
		i   int
		res Result
	}
	// Buffered so abandoned lanes can still deliver (to nobody) without
	// leaking a blocked goroutine.
	ch := make(chan laneOut, len(strategies))
	for i, s := range strategies {
		go func(i int, s core.Strategy) {
			res := runLane(runCtx, g, k, s, opts, lanes[i])
			if res.Err == nil && res.Status != sat.Unknown {
				cancel() // first definite answer terminates the rest
			}
			ch <- laneOut{i, res}
		}(i, s)
	}

	results := make([]Result, len(strategies))
	received := make([]bool, len(strategies))
	remaining := len(strategies)
	var grace *time.Timer
	var graceC <-chan time.Time
	// The watchdog timer is armed inside the collect loop; stopping it
	// here (rather than after the loop) covers every exit path — early
	// returns below and any future ones — so fast runs never strand a
	// live timer.
	defer func() {
		if grace != nil {
			grace.Stop()
		}
	}()
collect:
	for remaining > 0 {
		doneC := runCtx.Done()
		if opts.LaneTimeout <= 0 || graceC != nil {
			doneC = nil // watchdog disabled, or grace period already armed
		}
		select {
		case out := <-ch:
			results[out.i] = out.res
			received[out.i] = true
			remaining--
		case <-doneC:
			// The run is decided; give stragglers one LaneTimeout of
			// grace before declaring them hung.
			grace = time.NewTimer(opts.LaneTimeout)
			graceC = grace.C
		case <-graceC:
			for i := range results {
				if received[i] {
					continue
				}
				results[i] = Result{
					Strategy: strategies[i],
					Status:   sat.Unknown,
					Err: fmt.Errorf("portfolio: lane %s unresponsive for %v after cancellation; abandoned by watchdog",
						strategies[i].Name(), opts.LaneTimeout),
				}
				if opts.Metrics != nil {
					opts.Metrics.Counter(MetricAbandoned).Inc()
				}
			}
			break collect
		}
	}
	if opts.Metrics != nil && opts.Pool != nil {
		ps := opts.Pool.Stats()
		opts.Metrics.Gauge(MetricPoolGets).Set(ps.Gets)
		opts.Metrics.Gauge(MetricPoolReuses).Set(ps.Reuses)
		opts.Metrics.Gauge(MetricArenaWords).Set(ps.ArenaWords)
		opts.Metrics.Gauge(MetricArenaCap).Set(ps.ArenaCapWords)
		opts.Metrics.Gauge(MetricPoolOversized).Set(ps.Oversized)
	}
	if ex != nil && opts.Metrics != nil {
		// Sampled at decision time: lanes still draining after an early
		// break are not waited for, the counters reflect the exchange
		// activity that could have influenced this answer.
		ss := ex.Stats()
		opts.Metrics.Counter(MetricShareExported).Add(ss.Exported)
		opts.Metrics.Counter(MetricShareFiltered).Add(ss.Filtered)
		opts.Metrics.Counter(MetricShareDuplicates).Add(ss.Duplicates)
		opts.Metrics.Counter(MetricShareDropped).Add(ss.Dropped)
		opts.Metrics.Counter(MetricShareImported).Add(ss.Imported)
		opts.Metrics.Counter(MetricShareRejected).Add(ss.Rejected)
	}

	// A caught soundness violation must fail the run loudly — masking
	// it behind a faster healthy lane would hide a corrupted encoding.
	for i := range results {
		if se, ok := robust.AsSoundness(results[i].Err); ok {
			return Result{}, results, fmt.Errorf("portfolio: %w", se)
		}
	}

	winner, err := combine(results)
	if err != nil {
		return Result{}, results, err
	}
	if winner < 0 {
		for _, r := range results {
			if r.Err != nil {
				return Result{}, results, fmt.Errorf("portfolio: strategy %s failed: %w",
					r.Strategy.Name(), r.Err)
			}
		}
		return Result{}, results, fmt.Errorf("portfolio: no strategy answered within the timeout")
	}
	results[winner].Winner = true
	if opts.Metrics != nil {
		opts.Metrics.Counter(MetricWins + "." + results[winner].Strategy.Name()).Inc()
		if margin, ok := winnerMargin(results, winner); ok {
			opts.Metrics.Gauge(MetricWinnerMargin).Set(int64(margin))
		}
	}
	return results[winner], results, nil
}

// runLane supervises one portfolio member across its retry attempts.
// An attempt that ends Unknown with the parent context still live —
// an exhausted conflict budget or an expired per-attempt watchdog —
// is retried with an escalated budget, up to opts.MaxRetries times.
func runLane(ctx context.Context, g *graph.Graph, k int, s core.Strategy, opts Options, lane laneSetup) Result {
	if lane.share != nil {
		// A closed lane publishes its remaining clauses and releases any
		// deterministic-mode peer waiting on its next round, whether this
		// lane answered, was cancelled, or exhausted its retries.
		defer lane.share.Close()
	}
	base := opts.Solver.ConflictBudget
	var res Result
	for attempt := 0; ; attempt++ {
		solverOpts := opts.Solver
		if base > 0 {
			solverOpts.ConflictBudget = opts.RetrySchedule.Budget(base, attempt)
		}
		if lane.seed != 0 {
			// Re-derive per attempt so a retried lane does not retrace the
			// trajectory that just exhausted its budget.
			solverOpts.Seed = share.MixSeed(lane.seed, int64(attempt))
		}
		if lane.share != nil {
			solverOpts.Exchange = lane.share
		}
		attemptCtx := ctx
		var cancelAttempt context.CancelFunc
		if opts.LaneTimeout > 0 {
			attemptCtx, cancelAttempt = context.WithTimeout(ctx, opts.LaneTimeout)
		}
		res = runAttempt(attemptCtx, g, k, s, opts, solverOpts)
		if cancelAttempt != nil {
			cancelAttempt()
		}
		res.Attempts = attempt + 1
		switch {
		case res.Err != nil || res.Status != sat.Unknown:
			return res // answered, or failed in a way retrying cannot fix
		case ctx.Err() != nil:
			return res // the run is over; an extra attempt helps nobody
		case attempt >= opts.MaxRetries:
			return res
		case base <= 0 && opts.LaneTimeout <= 0:
			// Unknown without a budget or watchdog means an external
			// Stop; the identical attempt would just repeat it.
			return res
		}
		if opts.Metrics != nil {
			opts.Metrics.Counter(MetricRetries).Inc()
		}
	}
}

// runAttempt executes one lane attempt — encode, solve, decode, then
// the paranoid checks — under recover(): a panic anywhere in the
// attempt becomes a *robust.PanicError in Result.Err, increments the
// portfolio.panics counter, and abandons the lane's solver (a crashed
// solver's state is suspect and must not re-enter the pool).
func runAttempt(ctx context.Context, g *graph.Graph, k int, s core.Strategy, opts Options, solverOpts sat.Options) (res Result) {
	res = Result{Strategy: s, Status: sat.Unknown}
	name := s.Name()
	reg := opts.Metrics
	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			res.Status = sat.Unknown
			res.Colors = nil
			res.Err = robust.NewPanicError("portfolio lane "+name, p)
			res.Elapsed = time.Since(start)
			if reg != nil {
				reg.Counter(MetricPanics).Inc()
			}
		}
	}()
	// Fired before the cancellation check so fault injection reaches
	// the lane even when a sibling already won the race.
	robust.Hit(robust.FPPortfolioLane, name)
	if ctx.Err() != nil {
		return res // cancelled before this member even encoded
	}

	var solver *sat.Solver
	if opts.Pool != nil {
		solver = opts.Pool.Get(solverOpts)
	} else {
		solver = sat.New(solverOpts)
	}

	span := reg.StartSpan(MetricEncode + "." + name)
	csp := core.BuildCSP(g, k, s.Symmetry)
	enc := core.EncodeInto(csp, s.Encoding, sat.SolverSink{S: solver})
	res.EncodeTime = span.End()
	res.Vars = enc.NumVars
	res.Clauses = enc.StructuralClauses + enc.ConflictClauses
	if reg != nil {
		reg.Gauge(MetricCNFVars + "." + name).Set(int64(res.Vars))
		reg.Gauge(MetricCNFClauses + "." + name).Set(int64(res.Clauses))
	}

	span = reg.StartSpan(MetricSolve + "." + name)
	st := solver.SolveAssumingContext(ctx)
	res.Status = st
	res.Stats = solver.Stats
	if st == sat.Sat {
		colors, err := enc.DecodeVerify(solver.Model())
		res.Colors = colors
		if err != nil {
			// A model that fails decode-verification is an encoding
			// soundness bug, not a lane hiccup.
			res.Err = &robust.SoundnessError{Strategy: name, Claim: "Sat", Err: err}
			res.Status = sat.Unknown
			res.Colors = nil
		}
	}
	res.SolveTime = span.End()
	// The solve is over and the model decoded: return the solver before
	// the (potentially slow) paranoid checks so other work can reuse it.
	if opts.Pool != nil {
		opts.Pool.Put(solver)
	}

	robust.Hit(robust.FPPortfolioLaneResult, name, &res)
	if res.Err == nil {
		verifyAnswer(ctx, g, k, s, opts, &res)
	}
	res.Elapsed = time.Since(start)
	return res
}

// verifyAnswer is paranoid mode: re-check a definite answer through an
// independent path before it can be crowned. Sat answers are verified
// against the graph's conflict edges directly (not through the
// encoding's own bookkeeping); Unsat answers are replayed through the
// DRAT machinery. Failures become *robust.SoundnessError.
func verifyAnswer(ctx context.Context, g *graph.Graph, k int, s core.Strategy, opts Options, res *Result) {
	reg := opts.Metrics
	switch res.Status {
	case sat.Sat:
		if !opts.Verify {
			return
		}
		if err := coloring.Verify(g, res.Colors, k); err != nil {
			res.Err = &robust.SoundnessError{Strategy: s.Name(), Claim: "Sat", Err: err}
			res.Status = sat.Unknown
			res.Colors = nil
			return
		}
		if reg != nil {
			reg.Counter(MetricVerifySat).Inc()
		}
	case sat.Unsat:
		if !opts.VerifyUnsat {
			return
		}
		verified, err := replayUnsat(ctx, g, k, s, opts.Pool)
		if err != nil {
			res.Err = &robust.SoundnessError{Strategy: s.Name(), Claim: "Unsat", Err: err}
			res.Status = sat.Unknown
			return
		}
		if verified && reg != nil {
			reg.Counter(MetricVerifyUnsat).Inc()
		}
	}
}

// replayUnsat re-encodes the lane's problem as a materialized formula,
// re-solves it with a DRAT proof writer and checks the proof — the
// strongest independent evidence of unsatisfiability this module can
// produce. The replay validates the solver, and cross-checks the
// lane's claim against a second solve; encoding-level unsoundness that
// both runs share is instead caught by the portfolio's Sat/Unsat and
// minimum-width disagreement guards. Returns (false, nil) when the
// replay was cancelled mid-flight: inconclusive, not unsound.
func replayUnsat(ctx context.Context, g *graph.Graph, k int, s core.Strategy, pool *sat.Pool) (bool, error) {
	enc := s.EncodeGraph(g, k)
	var proof bytes.Buffer
	r := sat.SolveCNFReusing(ctx, pool, enc.CNF, sat.Options{ProofWriter: &proof})
	switch r.Status {
	case sat.Sat:
		return false, fmt.Errorf("replay of the encoded formula found a satisfying assignment")
	case sat.Unknown:
		return false, nil
	}
	if err := sat.CheckDRAT(enc.CNF, bytes.NewReader(proof.Bytes())); err != nil {
		return false, fmt.Errorf("DRAT replay certificate rejected: %w", err)
	}
	return true, nil
}
