package portfolio

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"fpgasat/internal/coloring"
	"fpgasat/internal/graph"
	"fpgasat/internal/obs"
	"fpgasat/internal/robust"
	"fpgasat/internal/sat"
)

// TestPanickingLaneDoesNotChangeAnswer is the headline acceptance test
// of the supervision layer: a lane that panics mid-solve neither
// crashes the process nor changes the portfolio's answer, and the
// panic is observable through Result.Err and the portfolio.panics
// counter.
func TestPanickingLaneDoesNotChangeAnswer(t *testing.T) {
	strategies := Must(PaperPortfolio3())
	crashed := strategies[0].Name()
	robust.SetFailpoint(robust.FPPortfolioLane, func(args ...any) {
		if args[0].(string) == crashed {
			panic("injected lane crash")
		}
	})
	t.Cleanup(func() { robust.ClearFailpoint(robust.FPPortfolioLane) })

	reg := obs.NewRegistry()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		g := graph.Random(rng, 6+rng.Intn(8), 0.4+rng.Float64()*0.4)
		k := 2 + rng.Intn(4)
		_, want, _ := coloring.KColorable(g, k, 0)

		winner, all, err := RunHardened(context.Background(), g, k, strategies, Options{Metrics: reg})
		if err != nil {
			t.Fatalf("trial %d: portfolio failed despite two healthy lanes: %v", trial, err)
		}
		if (winner.Status == sat.Sat) != want {
			t.Fatalf("trial %d: portfolio says %v, exact says sat=%v", trial, winner.Status, want)
		}
		if want {
			if err := coloring.Verify(g, winner.Colors, k); err != nil {
				t.Fatalf("trial %d: winner coloring invalid: %v", trial, err)
			}
		}
		pe, ok := robust.AsPanic(all[0].Err)
		if !ok {
			t.Fatalf("trial %d: crashed lane's Result.Err = %v, want *robust.PanicError", trial, all[0].Err)
		}
		if !strings.Contains(pe.Op, crashed) || len(pe.Stack) == 0 {
			t.Fatalf("trial %d: panic error lacks lane name or stack: %+v", trial, pe)
		}
		if winner.Strategy.Name() == crashed {
			t.Fatalf("trial %d: crashed lane crowned winner", trial)
		}
	}
	if n := reg.Snapshot().Counters[MetricPanics]; n < 6 {
		t.Fatalf("portfolio.panics = %d, want >= 6", n)
	}
}

// TestPanickingAndStallingLanes is the crash-recovery property test of
// the issue: one lane always panics, one lane always stalls (ignoring
// cancellation, as a stuck solver would), and the portfolio must still
// return the correct answer from the healthy lane, with the stalled
// lane abandoned by the watchdog instead of hanging the run.
func TestPanickingAndStallingLanes(t *testing.T) {
	strategies := Must(PaperPortfolio3())
	crashed, stalled := strategies[0].Name(), strategies[1].Name()
	release := make(chan struct{})
	t.Cleanup(func() { close(release) }) // let stalled goroutines exit
	robust.SetFailpoint(robust.FPPortfolioLane, func(args ...any) {
		switch args[0].(string) {
		case crashed:
			panic("injected lane crash")
		case stalled:
			<-release // a hang that no context can interrupt
		}
	})
	t.Cleanup(func() { robust.ClearFailpoint(robust.FPPortfolioLane) })

	reg := obs.NewRegistry()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 4; trial++ {
		g := graph.Random(rng, 6+rng.Intn(8), 0.4+rng.Float64()*0.4)
		k := 2 + rng.Intn(4)
		_, want, _ := coloring.KColorable(g, k, 0)

		start := time.Now()
		winner, all, err := RunHardened(context.Background(), g, k, strategies, Options{
			Metrics:     reg,
			LaneTimeout: 200 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("trial %d: portfolio failed despite a healthy lane: %v", trial, err)
		}
		if elapsed := time.Since(start); elapsed > 30*time.Second {
			t.Fatalf("trial %d: run took %v; watchdog did not abandon the stalled lane", trial, elapsed)
		}
		if (winner.Status == sat.Sat) != want {
			t.Fatalf("trial %d: portfolio says %v, exact says sat=%v", trial, winner.Status, want)
		}
		if want {
			if err := coloring.Verify(g, winner.Colors, k); err != nil {
				t.Fatalf("trial %d: winner coloring invalid: %v", trial, err)
			}
		}
		if winner.Strategy.Name() != strategies[2].Name() {
			t.Fatalf("trial %d: winner %s, want healthy lane %s", trial, winner.Strategy.Name(), strategies[2].Name())
		}
		if _, ok := robust.AsPanic(all[0].Err); !ok {
			t.Fatalf("trial %d: crashed lane's Result.Err = %v", trial, all[0].Err)
		}
		if all[1].Err == nil || !strings.Contains(all[1].Err.Error(), "abandoned") {
			t.Fatalf("trial %d: stalled lane's Result.Err = %v, want watchdog abandonment", trial, all[1].Err)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters[MetricPanics] < 4 {
		t.Fatalf("portfolio.panics = %d, want >= 4", snap.Counters[MetricPanics])
	}
	if snap.Counters[MetricAbandoned] < 4 {
		t.Fatalf("%s = %d, want >= 4", MetricAbandoned, snap.Counters[MetricAbandoned])
	}
}

// TestAllLanesPanicSurfacesPanicError: when every lane crashes there is
// nothing to degrade to, and the run-level error must expose the panic.
func TestAllLanesPanicSurfacesPanicError(t *testing.T) {
	robust.SetFailpoint(robust.FPPortfolioLane, func(args ...any) { panic("injected") })
	t.Cleanup(func() { robust.ClearFailpoint(robust.FPPortfolioLane) })

	_, _, err := RunHardened(context.Background(), graph.Complete(4), 4, Must(PaperPortfolio2()), Options{})
	if err == nil {
		t.Fatal("all-lanes-crashed run reported success")
	}
	if _, ok := robust.AsPanic(err); !ok {
		t.Fatalf("run error does not expose the panic: %v", err)
	}
}

// TestVerifyCatchesUnsoundSatAnswer is the paranoid-mode regression
// test: a lane whose Sat answer carries a corrupted coloring (injected
// via the lane-result failpoint, simulating an unsound encoding) must
// be caught by the conflict-edge re-verification and fail the run with
// a SoundnessError naming the strategy.
func TestVerifyCatchesUnsoundSatAnswer(t *testing.T) {
	strategies := Must(PaperPortfolio2())[:1]
	name := strategies[0].Name()
	g := graph.Complete(5)
	robust.SetFailpoint(robust.FPPortfolioLaneResult, func(args ...any) {
		res := args[1].(*Result)
		if res.Status == sat.Sat && len(res.Colors) >= 2 {
			res.Colors[1] = res.Colors[0] // two adjacent nets on one track
		}
	})
	t.Cleanup(func() { robust.ClearFailpoint(robust.FPPortfolioLaneResult) })

	reg := obs.NewRegistry()
	_, _, err := RunHardened(context.Background(), g, 5, strategies, Options{Metrics: reg, Verify: true})
	se, ok := robust.AsSoundness(err)
	if !ok {
		t.Fatalf("corrupted Sat answer not caught: err = %v", err)
	}
	if se.Strategy != name || se.Claim != "Sat" {
		t.Fatalf("soundness error misattributed: %+v", se)
	}
	if n := reg.Snapshot().Counters[MetricVerifySat]; n != 0 {
		t.Fatalf("corrupted answer counted as verified: %s = %d", MetricVerifySat, n)
	}
}

// TestVerifyUnsatCatchesFlippedStatus: a lane that claims Unsat on a
// satisfiable instance (status corruption injected after the solve)
// must be contradicted by the DRAT replay.
func TestVerifyUnsatCatchesFlippedStatus(t *testing.T) {
	strategies := Must(PaperPortfolio2())[:1]
	g := graph.Complete(4) // K4 with 4 colors: satisfiable
	robust.SetFailpoint(robust.FPPortfolioLaneResult, func(args ...any) {
		res := args[1].(*Result)
		if res.Status == sat.Sat {
			res.Status = sat.Unsat
			res.Colors = nil
		}
	})
	t.Cleanup(func() { robust.ClearFailpoint(robust.FPPortfolioLaneResult) })

	_, _, err := RunHardened(context.Background(), g, 4, strategies, Options{VerifyUnsat: true})
	se, ok := robust.AsSoundness(err)
	if !ok {
		t.Fatalf("lying Unsat answer not caught: err = %v", err)
	}
	if se.Claim != "Unsat" {
		t.Fatalf("soundness error misattributed: %+v", se)
	}
}

// TestVerifyHappyPaths: with paranoid mode on and nothing injected,
// genuine answers verify and the verification counters advance.
func TestVerifyHappyPaths(t *testing.T) {
	strategies := Must(PaperPortfolio2())
	reg := obs.NewRegistry()
	opts := Options{Metrics: reg, Verify: true, VerifyUnsat: true}

	winner, _, err := RunHardened(context.Background(), graph.Complete(5), 5, strategies, opts)
	if err != nil || winner.Status != sat.Sat {
		t.Fatalf("K5/5: %v %v", winner.Status, err)
	}
	winner, _, err = RunHardened(context.Background(), graph.Complete(5), 4, strategies, opts)
	if err != nil || winner.Status != sat.Unsat {
		t.Fatalf("K5/4: %v %v", winner.Status, err)
	}
	snap := reg.Snapshot()
	if snap.Counters[MetricVerifySat] == 0 {
		t.Fatalf("%s not incremented: %+v", MetricVerifySat, snap.Counters)
	}
	if snap.Counters[MetricVerifyUnsat] == 0 {
		t.Fatalf("%s not incremented: %+v", MetricVerifyUnsat, snap.Counters)
	}
}

// TestRetryEscalatesBudget: a lane starved by a one-conflict budget
// must escalate through the retry schedule until the answer lands,
// recording its attempts and the robust.retries counter.
func TestRetryEscalatesBudget(t *testing.T) {
	strategies := Must(PaperPortfolio2())[:1]
	g := graph.Complete(7) // K7 with 6 colors: needs a real refutation
	reg := obs.NewRegistry()
	winner, all, err := RunHardened(context.Background(), g, 6, strategies, Options{
		Metrics:    reg,
		Solver:     sat.Options{ConflictBudget: 1},
		MaxRetries: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if winner.Status != sat.Unsat {
		t.Fatalf("K7 with 6 colors: %v", winner.Status)
	}
	if all[0].Attempts < 2 {
		t.Fatalf("budget-starved lane answered in %d attempt(s); retry path not exercised", all[0].Attempts)
	}
	if n := reg.Snapshot().Counters[MetricRetries]; n < 1 {
		t.Fatalf("%s = %d, want >= 1", MetricRetries, n)
	}
}

// TestRetryLubySchedule exercises the Luby escalation variant end to
// end (the schedule arithmetic itself is tested in package robust).
func TestRetryLubySchedule(t *testing.T) {
	strategies := Must(PaperPortfolio2())[:1]
	winner, all, err := RunHardened(context.Background(), graph.Complete(6), 5, strategies, Options{
		Solver:        sat.Options{ConflictBudget: 1},
		MaxRetries:    64,
		RetrySchedule: robust.LubyRetry,
	})
	if err != nil {
		t.Fatal(err)
	}
	if winner.Status != sat.Unsat {
		t.Fatalf("K6 with 5 colors: %v", winner.Status)
	}
	if all[0].Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2", all[0].Attempts)
	}
}

// TestBudgetExhaustionWithoutRetriesStaysUnknown: without MaxRetries
// the starved lane keeps its Unknown — graceful degradation, not a
// crash or a spin.
func TestBudgetExhaustionWithoutRetriesStaysUnknown(t *testing.T) {
	strategies := Must(PaperPortfolio2())[:1]
	_, all, err := RunHardened(context.Background(), graph.Complete(7), 6, strategies, Options{
		Solver: sat.Options{ConflictBudget: 1},
	})
	if err == nil {
		t.Fatal("starved portfolio reported an answer")
	}
	if all[0].Status != sat.Unknown || all[0].Attempts != 1 {
		t.Fatalf("starved lane: status %v after %d attempts", all[0].Status, all[0].Attempts)
	}
}

// TestRunPooledStillAgreesWithExact pins the delegation of the classic
// entry points through the hardened runner.
func TestRunPooledStillAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	strategies := Must(PaperPortfolio2())
	for trial := 0; trial < 5; trial++ {
		g := graph.Random(rng, 6+rng.Intn(8), 0.5)
		k := 2 + rng.Intn(4)
		_, want, _ := coloring.KColorable(g, k, 0)
		winner, _, err := RunPooled(context.Background(), g, k, strategies, nil, &lanePool)
		if err != nil {
			t.Fatal(err)
		}
		if (winner.Status == sat.Sat) != want {
			t.Fatalf("trial %d: %v vs exact sat=%v", trial, winner.Status, want)
		}
	}
}
