package portfolio

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fpgasat/internal/core"
	"fpgasat/internal/graph"
	"fpgasat/internal/obs"
	"fpgasat/internal/robust"
	"fpgasat/internal/search"
)

// Metric names emitted by RunMinWidth, in addition to the
// search.minwidth.* metrics each member records under its strategy
// suffix.
const (
	// MetricMinWidthWins counts width-search portfolio wins per
	// strategy (suffixed ".<strategy>").
	MetricMinWidthWins = "portfolio.minwidth.wins"
)

// WidthResult is one strategy's outcome within a minimum-width
// portfolio run.
type WidthResult struct {
	Strategy core.Strategy
	// Search is the strategy's width-search result (possibly partial if
	// the member was cancelled); nil when Err is set before searching.
	Search  *search.Result
	Elapsed time.Duration
	Winner  bool
	Err     error
}

// RunMinWidth races the incremental minimum-width search across
// strategies: each member encodes once into its own incremental solver
// and walks the width range (opts.Lo..opts.Hi, descending or binary per
// opts) under assumptions. The first member to complete the search —
// prove its minimum width optimal — wins and the rest are cancelled.
// This races strategies on the whole search rather than on a single
// decision problem, so a strategy that is fast on Sat probes but slow
// on the final Unsat proof does not win on partial progress.
//
// opts.Strategy, opts.Metrics and opts.MetricSuffix are overridden per
// member (the suffix becomes the strategy name); opts.Pool is shared by
// all members and defaults to the package lane pool, so sequential runs
// reuse lane solvers. Two members that both complete but disagree on
// the minimum width indicate an unsound encoding and surface as a loud
// error, mirroring Run's Sat/Unsat disagreement guard.
func RunMinWidth(ctx context.Context, g *graph.Graph, opts search.Options, strategies []core.Strategy, reg *obs.Registry) (WidthResult, []WidthResult, error) {
	if len(strategies) == 0 {
		return WidthResult{}, nil, fmt.Errorf("portfolio: no strategies")
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	if opts.Pool == nil {
		opts.Pool = &lanePool
	}
	results := make([]WidthResult, len(strategies))
	var wg sync.WaitGroup
	for i, s := range strategies {
		wg.Add(1)
		go func(i int, s core.Strategy) {
			defer wg.Done()
			memberOpts := opts
			memberOpts.Strategy = s
			memberOpts.Metrics = reg
			memberOpts.MetricSuffix = s.Name()
			start := time.Now()
			res, err := search.MinWidth(runCtx, g, memberOpts)
			if _, ok := robust.AsPanic(err); ok && reg != nil {
				// A crashed width-search lane degrades the portfolio to
				// the survivors, same as a crashed decision lane.
				reg.Counter(MetricPanics).Inc()
			}
			results[i] = WidthResult{
				Strategy: s,
				Search:   res,
				Elapsed:  time.Since(start),
				Err:      err,
			}
			if err == nil && res.ProvedOptimal {
				cancel() // first completed search terminates the rest
			}
		}(i, s)
	}
	wg.Wait()

	winner := -1
	for i, r := range results {
		if r.Err != nil || r.Search == nil || !r.Search.ProvedOptimal {
			continue
		}
		if winner >= 0 && r.Search.MinWidth != results[winner].Search.MinWidth {
			return WidthResult{}, results, fmt.Errorf(
				"portfolio: contradictory minimum widths: strategy %s proves %d but strategy %s proves %d; at least one encoding is unsound",
				results[winner].Strategy.Name(), results[winner].Search.MinWidth,
				r.Strategy.Name(), r.Search.MinWidth)
		}
		if winner < 0 || r.Elapsed < results[winner].Elapsed {
			winner = i
		}
	}
	if winner < 0 {
		for _, r := range results {
			if r.Err != nil {
				return WidthResult{}, results, fmt.Errorf("portfolio: strategy %s failed: %w",
					r.Strategy.Name(), r.Err)
			}
		}
		return WidthResult{}, results, fmt.Errorf("portfolio: no strategy completed the width search")
	}
	results[winner].Winner = true
	if reg != nil {
		reg.Counter(MetricMinWidthWins + "." + results[winner].Strategy.Name()).Inc()
	}
	return results[winner], results, nil
}
