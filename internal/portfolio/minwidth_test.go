package portfolio

import (
	"context"
	"testing"

	"fpgasat/internal/graph"
	"fpgasat/internal/obs"
	"fpgasat/internal/search"
)

func TestRunMinWidthBasic(t *testing.T) {
	g := graph.Complete(4) // chromatic number 4
	reg := obs.NewRegistry()
	win, all, err := RunMinWidth(context.Background(), g, search.Options{
		Lo: 1,
		Hi: 6,
	}, Must(PaperPortfolio2()), reg)
	if err != nil {
		t.Fatal(err)
	}
	if !win.Winner || win.Search == nil {
		t.Fatalf("winner not flagged: %+v", win)
	}
	if win.Search.MinWidth != 4 || !win.Search.ProvedOptimal {
		t.Fatalf("winner MinWidth=%d ProvedOptimal=%v, want 4/true",
			win.Search.MinWidth, win.Search.ProvedOptimal)
	}
	if len(all) != 2 {
		t.Fatalf("expected 2 member results, got %d", len(all))
	}
	snap := reg.Snapshot()
	if snap.Counters[MetricMinWidthWins+"."+win.Strategy.Name()] != 1 {
		t.Fatalf("winner %s has no win counter in %v", win.Strategy.Name(), snap.Counters)
	}
	// Each member records its search telemetry under its own suffix.
	if snap.Timers[search.MetricEncode+"."+win.Strategy.Name()].Count != 1 {
		t.Fatalf("winner %s missing encode timer", win.Strategy.Name())
	}
}

func TestRunMinWidthNoStrategies(t *testing.T) {
	if _, _, err := RunMinWidth(context.Background(), graph.Complete(3), search.Options{Hi: 3}, nil, nil); err == nil {
		t.Fatal("expected an error for an empty portfolio")
	}
}

func TestRunMinWidthCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, all, err := RunMinWidth(ctx, graph.Complete(5), search.Options{Lo: 1, Hi: 8}, Must(PaperPortfolio2()), nil)
	if err == nil {
		t.Fatal("a cancelled run must not crown a winner")
	}
	for _, r := range all {
		if r.Search != nil && r.Search.ProvedOptimal {
			t.Fatalf("cancelled member claims a completed search: %+v", r)
		}
	}
}
