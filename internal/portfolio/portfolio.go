// Package portfolio runs several (encoding, symmetry-heuristic)
// strategies on the same detailed-routing problem in parallel and
// returns the first answer, cancelling the rest — the multicore
// portfolio approach of the paper's Sect. 6. Each strategy runs in its
// own goroutine with its own solver; the SAT solvers poll a shared
// stop channel so losers terminate promptly once a winner reports.
package portfolio

import (
	"fmt"
	"sync"
	"time"

	"fpgasat/internal/core"
	"fpgasat/internal/graph"
	"fpgasat/internal/sat"
)

// Result is the outcome of one strategy within a portfolio run.
type Result struct {
	Strategy core.Strategy
	Status   sat.Status
	Colors   []int // decoded coloring for Sat results from the winner
	Elapsed  time.Duration
	Winner   bool
	Err      error
}

// Run solves the k-coloring of g with all strategies concurrently.
// The first strategy to reach Sat or Unsat wins and the others are
// cancelled (they report Unknown). A zero timeout means no timeout.
// It returns the winning result and the per-strategy results in input
// order. An error is returned only if no strategy produced an answer.
func Run(g *graph.Graph, k int, strategies []core.Strategy, timeout time.Duration) (Result, []Result, error) {
	if len(strategies) == 0 {
		return Result{}, nil, fmt.Errorf("portfolio: no strategies")
	}
	stop := make(chan struct{})
	var stopOnce sync.Once
	cancel := func() { stopOnce.Do(func() { close(stop) }) }
	defer cancel()

	var timer *time.Timer
	if timeout > 0 {
		timer = time.AfterFunc(timeout, cancel)
		defer timer.Stop()
	}

	results := make([]Result, len(strategies))
	var wg sync.WaitGroup
	for i, s := range strategies {
		wg.Add(1)
		go func(i int, s core.Strategy) {
			defer wg.Done()
			start := time.Now()
			enc := s.EncodeGraph(g, k)
			st, colors, err := enc.Solve(sat.Options{}, stop)
			results[i] = Result{
				Strategy: s,
				Status:   st,
				Colors:   colors,
				Elapsed:  time.Since(start),
				Err:      err,
			}
			if st != sat.Unknown && err == nil {
				cancel() // first definite answer terminates the rest
			}
		}(i, s)
	}
	wg.Wait()

	// The winner is the strategy with a definite answer that finished
	// first.
	winner := -1
	for i, r := range results {
		if r.Err != nil || r.Status == sat.Unknown {
			continue
		}
		if winner < 0 || r.Elapsed < results[winner].Elapsed {
			winner = i
		}
	}
	if winner < 0 {
		for _, r := range results {
			if r.Err != nil {
				return Result{}, results, fmt.Errorf("portfolio: strategy %s failed: %w",
					r.Strategy.Name(), r.Err)
			}
		}
		return Result{}, results, fmt.Errorf("portfolio: no strategy answered within the timeout")
	}
	results[winner].Winner = true
	return results[winner], results, nil
}

// Strategies parses a list of strategy specs ("encoding/heuristic").
func Strategies(specs ...string) ([]core.Strategy, error) {
	out := make([]core.Strategy, len(specs))
	for i, s := range specs {
		st, err := core.ParseStrategy(s)
		if err != nil {
			return nil, err
		}
		out[i] = st
	}
	return out, nil
}

// PaperPortfolio3 returns the paper's three-strategy portfolio:
// ITE-linear-2+muldirect/s1, muldirect-3+muldirect/s1 and
// ITE-linear-2+direct/s1.
func PaperPortfolio3() []core.Strategy {
	ss, err := Strategies(
		"ITE-linear-2+muldirect/s1",
		"muldirect-3+muldirect/s1",
		"ITE-linear-2+direct/s1",
	)
	if err != nil {
		panic(err)
	}
	return ss
}

// PaperPortfolio2 returns the paper's two-strategy portfolio (the
// first two members of PaperPortfolio3).
func PaperPortfolio2() []core.Strategy {
	return PaperPortfolio3()[:2]
}
