// Package portfolio runs several (encoding, symmetry-heuristic)
// strategies on the same detailed-routing problem in parallel and
// returns the first answer, cancelling the rest — the multicore
// portfolio approach of the paper's Sect. 6. Each strategy runs in its
// own goroutine with its own solver; cancellation is context-based, so
// losers terminate promptly once a winner reports, and a caller's
// timeout or cancel propagates to every member.
package portfolio

import (
	"context"
	"fmt"
	"time"

	"fpgasat/internal/core"
	"fpgasat/internal/graph"
	"fpgasat/internal/obs"
	"fpgasat/internal/sat"
)

// Metric names emitted by RunObserved. Per-strategy metrics append
// "." plus the strategy name (e.g. "portfolio.solve.ITE-log/s1").
const (
	MetricEncode       = "portfolio.encode"           // timer: CNF generation per strategy
	MetricSolve        = "portfolio.solve"            // timer: SAT solve + decode per strategy
	MetricCNFVars      = "portfolio.cnf_vars"         // gauge per strategy
	MetricCNFClauses   = "portfolio.cnf_clauses"      // gauge per strategy
	MetricWins         = "portfolio.wins"             // counter per strategy
	MetricWinnerMargin = "portfolio.winner_margin_ns" // gauge: runner-up lag behind the winner
	// Solver-reuse metrics of the lane pool (see sat.Pool): cumulative
	// solver hand-outs, how many were recycled instances, and the arena
	// footprint sample of the most recently returned solver.
	MetricPoolGets   = "sat.reset.solvers"
	MetricPoolReuses = "sat.reset.count"
	MetricArenaWords = "sat.arena.words"
	MetricArenaCap   = "sat.arena.cap_words"
)

// Result is the outcome of one strategy within a portfolio run.
type Result struct {
	Strategy core.Strategy
	Status   sat.Status
	Colors   []int // decoded coloring for Sat results
	Elapsed  time.Duration
	// Telemetry: where the strategy's time went and how big its CNF
	// was. EncodeTime + SolveTime ≈ Elapsed.
	EncodeTime time.Duration
	SolveTime  time.Duration
	Vars       int
	Clauses    int
	Stats      sat.Stats
	Winner     bool
	// Attempts counts how many times the lane ran, ≥ 2 when the retry
	// policy re-ran it with an escalated conflict budget.
	Attempts int
	// Err carries the lane's failure: a decode/verification failure, a
	// *robust.SoundnessError from paranoid mode, or a
	// *robust.PanicError when the lane crashed and was isolated.
	Err error
}

// Run solves the k-coloring of g with all strategies concurrently.
// The first strategy to reach Sat or Unsat wins and the others are
// cancelled (they report Unknown). A zero timeout means no timeout.
// It returns the winning result and the per-strategy results in input
// order. An error is returned if no strategy produced an answer, or if
// two strategies produced contradictory definite answers (an encoding
// soundness bug that must not be masked by crowning the faster one).
func Run(g *graph.Graph, k int, strategies []core.Strategy, timeout time.Duration) (Result, []Result, error) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return RunContext(ctx, g, k, strategies)
}

// RunContext is Run with caller-controlled cancellation: the run ends
// early when ctx is cancelled or its deadline passes (use
// context.WithTimeout for the classic timeout behaviour).
func RunContext(ctx context.Context, g *graph.Graph, k int, strategies []core.Strategy) (Result, []Result, error) {
	return RunObserved(ctx, g, k, strategies, nil)
}

// RunObserved is RunContext with per-strategy telemetry recorded into
// reg (which may be nil): encode and solve timers, CNF size gauges,
// win counters and the winner margin — how long after the winner the
// next definite answer (or cancelled loser) finished, i.e. the
// cancellation latency the portfolio pays.
func RunObserved(ctx context.Context, g *graph.Graph, k int, strategies []core.Strategy, reg *obs.Registry) (Result, []Result, error) {
	return RunPooled(ctx, g, k, strategies, reg, &lanePool)
}

// lanePool is the package-default solver pool shared by portfolio runs
// that do not bring their own: sequential runs (width sweeps, batch
// experiments) then reuse lane solvers across runs.
var lanePool sat.Pool

// PoolStats returns the solver-reuse counters of the package-default
// lane pool.
func PoolStats() sat.PoolStats { return lanePool.Stats() }

// DefaultLanePool returns the package-default lane pool, for callers
// that configure a hardened run (RunHardened) but want the shared
// solver-reuse behaviour of RunObserved.
func DefaultLanePool() *sat.Pool { return &lanePool }

// RunPooled is RunObserved drawing each lane's solver from the given
// pool (nil falls back to fresh solvers), so callers that own a
// long-lived pool — a facade Session serving many requests — carry
// solver capacity across runs. Lanes are panic-isolated (a crashing
// lane surfaces a *robust.PanicError in its Result and the run
// degrades to the survivors); the further supervision features —
// paranoid answer checking, budgeted retries, watchdog timeouts — are
// reached through RunHardened.
func RunPooled(ctx context.Context, g *graph.Graph, k int, strategies []core.Strategy, reg *obs.Registry, pool *sat.Pool) (Result, []Result, error) {
	return RunHardened(ctx, g, k, strategies, Options{Metrics: reg, Pool: pool})
}

// combine selects the winner (the fastest error-free definite answer)
// and detects contradictory definite answers: if one strategy proved
// Sat and another proved Unsat, at least one encoding is unsound and
// the disagreement must surface as a loud error rather than being
// resolved in favour of the faster strategy.
func combine(results []Result) (winner int, err error) {
	winner = -1
	firstSat, firstUnsat := -1, -1
	for i, r := range results {
		if r.Err != nil || r.Status == sat.Unknown {
			continue
		}
		switch r.Status {
		case sat.Sat:
			if firstSat < 0 {
				firstSat = i
			}
		case sat.Unsat:
			if firstUnsat < 0 {
				firstUnsat = i
			}
		}
		if winner < 0 || r.Elapsed < results[winner].Elapsed {
			winner = i
		}
	}
	if firstSat >= 0 && firstUnsat >= 0 {
		return -1, fmt.Errorf(
			"portfolio: contradictory answers: strategy %s reports Sat but strategy %s reports Unsat; at least one encoding is unsound",
			results[firstSat].Strategy.Name(), results[firstUnsat].Strategy.Name())
	}
	return winner, nil
}

// winnerMargin returns how much later the best non-winning strategy
// finished. For cancelled losers this measures cancellation latency.
func winnerMargin(results []Result, winner int) (time.Duration, bool) {
	best := time.Duration(-1)
	for i, r := range results {
		if i == winner {
			continue
		}
		if best < 0 || r.Elapsed < best {
			best = r.Elapsed
		}
	}
	if best < 0 {
		return 0, false
	}
	margin := best - results[winner].Elapsed
	if margin < 0 {
		margin = 0 // a loser can time-stamp earlier than the winner's own Elapsed
	}
	return margin, true
}

// Strategies parses a list of strategy specs ("encoding/heuristic").
func Strategies(specs ...string) ([]core.Strategy, error) {
	out := make([]core.Strategy, len(specs))
	for i, s := range specs {
		st, err := core.ParseStrategy(s)
		if err != nil {
			return nil, err
		}
		out[i] = st
	}
	return out, nil
}

// PaperPortfolio3 returns the paper's three-strategy portfolio:
// ITE-linear-2+muldirect/s1, muldirect-3+muldirect/s1 and
// ITE-linear-2+direct/s1.
func PaperPortfolio3() ([]core.Strategy, error) {
	return Strategies(
		"ITE-linear-2+muldirect/s1",
		"muldirect-3+muldirect/s1",
		"ITE-linear-2+direct/s1",
	)
}

// PaperPortfolio2 returns the paper's two-strategy portfolio (the
// first two members of PaperPortfolio3).
func PaperPortfolio2() ([]core.Strategy, error) {
	ss, err := PaperPortfolio3()
	if err != nil {
		return nil, err
	}
	return ss[:2], nil
}

// BandwidthPortfolio returns the lane set for bandwidth-coloring
// (distance-constrained) instances: the order/ladder encoding plus the
// distance-aware direct and log encodings, all without symmetry
// breaking — the color-permutation clique heuristics are unsound when
// |c(u)-c(v)| >= d(u,v) replaces plain disequality (only translation
// and reflection preserve solutions), so BuildCSP would ignore them
// anyway.
func BandwidthPortfolio() ([]core.Strategy, error) {
	specs := make([]string, len(core.BandwidthEncodingNames))
	for i, name := range core.BandwidthEncodingNames {
		specs[i] = name + "/-"
	}
	return Strategies(specs...)
}

// Replicate expands each strategy into n copies, interleaved so a
// truncated prefix stays balanced. The copies are identical strategy
// values: under a hardened run with a Seed they diversify through
// per-lane solver seeds, and with sharing enabled they form one
// clause-exchange group — the configuration where a cooperating
// portfolio beats a blind race of the same lanes.
func Replicate(strategies []core.Strategy, n int) []core.Strategy {
	if n < 1 {
		n = 1
	}
	out := make([]core.Strategy, 0, len(strategies)*n)
	for i := 0; i < n; i++ {
		out = append(out, strategies...)
	}
	return out
}

// Must unwraps a (strategies, error) pair, panicking on error — for
// examples and tests where the specs are compile-time constants:
//
//	strategies := portfolio.Must(portfolio.PaperPortfolio3())
func Must(ss []core.Strategy, err error) []core.Strategy {
	if err != nil {
		panic(err)
	}
	return ss
}
