package portfolio

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"fpgasat/internal/coloring"
	"fpgasat/internal/core"
	"fpgasat/internal/graph"
	"fpgasat/internal/obs"
	"fpgasat/internal/sat"
)

func TestRunAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	strategies := Must(PaperPortfolio3())
	for trial := 0; trial < 10; trial++ {
		g := graph.Random(rng, 6+rng.Intn(10), 0.4+rng.Float64()*0.4)
		k := 2 + rng.Intn(4)
		_, want, _ := coloring.KColorable(g, k, 0)
		winner, all, err := Run(g, k, strategies, 0)
		if err != nil {
			t.Fatal(err)
		}
		if (winner.Status == sat.Sat) != want {
			t.Fatalf("trial %d: portfolio says %v, exact says sat=%v", trial, winner.Status, want)
		}
		if want {
			if err := coloring.Verify(g, winner.Colors, k); err != nil {
				t.Fatalf("winner coloring invalid: %v", err)
			}
		}
		winners := 0
		for _, r := range all {
			if r.Winner {
				winners++
			}
		}
		if winners != 1 {
			t.Fatalf("%d winners", winners)
		}
	}
}

func TestRunCancelsLosers(t *testing.T) {
	// A hard instance: losers must report Unknown quickly after the
	// winner returns, rather than running to completion.
	g := graph.Complete(8)
	strategies, err := Strategies("ITE-log/s1", "muldirect/-", "direct/-")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	winner, all, err := Run(g, 7, strategies, 0)
	if err != nil {
		t.Fatal(err)
	}
	if winner.Status != sat.Unsat {
		t.Fatalf("K8 with 7 colors: %v", winner.Status)
	}
	if time.Since(start) > 30*time.Second {
		t.Fatal("portfolio did not cancel losers in reasonable time")
	}
	for _, r := range all {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Strategy.Name(), r.Err)
		}
	}
}

func TestRunTimeout(t *testing.T) {
	// With an absurdly small timeout on a nontrivial instance, no
	// strategy can answer.
	rng := rand.New(rand.NewSource(5))
	g := graph.Random(rng, 120, 0.5)
	if _, _, err := Run(g, 9, Must(PaperPortfolio2()), time.Microsecond); err == nil {
		t.Skip("instance solved within a microsecond; timeout path not exercised")
	}
}

// TestCombineDetectsDisagreement is the regression test for the
// silent-disagreement bug: when one strategy returns Sat and another
// Unsat (an encoding soundness bug), Run used to crown the faster one
// instead of failing loudly.
func TestCombineDetectsDisagreement(t *testing.T) {
	ss, err := Strategies("ITE-log/s1", "muldirect/-")
	if err != nil {
		t.Fatal(err)
	}
	results := []Result{
		{Strategy: ss[0], Status: sat.Sat, Elapsed: time.Second},
		{Strategy: ss[1], Status: sat.Unsat, Elapsed: 2 * time.Second},
	}
	if _, err := combine(results); err == nil {
		t.Fatal("contradictory Sat/Unsat answers accepted silently")
	} else {
		msg := err.Error()
		for _, name := range []string{ss[0].Name(), ss[1].Name()} {
			if !strings.Contains(msg, name) {
				t.Fatalf("disagreement error does not identify strategy %s: %v", name, err)
			}
		}
	}
}

func TestCombineIgnoresErroredAndUnknown(t *testing.T) {
	ss, err := Strategies("ITE-log/s1", "muldirect/-", "direct/-")
	if err != nil {
		t.Fatal(err)
	}
	results := []Result{
		{Strategy: ss[0], Status: sat.Sat, Elapsed: time.Second, Err: errBroken},
		{Strategy: ss[1], Status: sat.Unknown, Elapsed: time.Second},
		{Strategy: ss[2], Status: sat.Unsat, Elapsed: 3 * time.Second},
	}
	winner, err := combine(results)
	if err != nil {
		t.Fatalf("errored Sat result should not count as a disagreement: %v", err)
	}
	if winner != 2 {
		t.Fatalf("winner = %d, want 2", winner)
	}
}

var errBroken = fmt.Errorf("broken strategy")

// TestRunTelemetryPopulated asserts that every strategy's Result
// carries per-stage telemetry and that RunObserved mirrors it into the
// registry.
func TestRunTelemetryPopulated(t *testing.T) {
	g := graph.Complete(6)
	strategies := Must(PaperPortfolio3())
	reg := obs.NewRegistry()
	winner, all, err := RunObserved(context.Background(), g, 6, strategies, reg)
	if err != nil {
		t.Fatal(err)
	}
	if winner.Status != sat.Sat {
		t.Fatalf("K6 with 6 colors: %v", winner.Status)
	}
	if winner.EncodeTime <= 0 || winner.SolveTime <= 0 ||
		winner.Vars == 0 || winner.Clauses == 0 {
		t.Fatalf("winner telemetry not populated: %+v", winner)
	}
	if winner.Stats.Decisions == 0 && winner.Stats.Propagations == 0 {
		t.Fatalf("winner solver stats empty: %+v", winner.Stats)
	}
	for _, r := range all {
		if r.Status == sat.Unknown && r.EncodeTime == 0 {
			continue // cancelled before encoding started
		}
		if r.EncodeTime <= 0 || r.Vars == 0 || r.Clauses == 0 {
			t.Fatalf("strategy %s telemetry not populated: %+v", r.Strategy.Name(), r)
		}
	}
	snap := reg.Snapshot()
	name := winner.Strategy.Name()
	if ts := snap.Timers[MetricSolve+"."+name]; ts.Count == 0 {
		t.Fatalf("registry missing solve timer for winner %s: %+v", name, snap.Timers)
	}
	if ts := snap.Timers[MetricEncode+"."+name]; ts.Count == 0 {
		t.Fatalf("registry missing encode timer for winner %s", name)
	}
	if v := snap.Gauges[MetricCNFVars+"."+name]; v == 0 {
		t.Fatalf("registry missing CNF vars gauge for winner %s", name)
	}
	if snap.Counters[MetricWins+"."+name] != 1 {
		t.Fatalf("registry missing win counter for %s: %+v", name, snap.Counters)
	}
	if _, ok := snap.Gauges[MetricWinnerMargin]; !ok {
		t.Fatalf("registry missing winner margin gauge: %+v", snap.Gauges)
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, all, err := RunContext(ctx, graph.Complete(8), 7, Must(PaperPortfolio3()))
	if err == nil {
		t.Fatal("pre-cancelled context produced an answer")
	}
	for _, r := range all {
		if r.Status != sat.Unknown {
			t.Fatalf("strategy %s ran to %v under a cancelled context", r.Strategy.Name(), r.Status)
		}
	}
}

func TestRunEmptyStrategies(t *testing.T) {
	if _, _, err := Run(graph.New(1), 1, nil, 0); err == nil {
		t.Fatal("empty portfolio accepted")
	}
}

func TestStrategiesParse(t *testing.T) {
	ss, err := Strategies("muldirect/s1", "log/b1")
	if err != nil || len(ss) != 2 {
		t.Fatalf("%v %v", ss, err)
	}
	if _, err := Strategies("bogus/s1"); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestPaperPortfolios(t *testing.T) {
	p3, err := PaperPortfolio3()
	if err != nil {
		t.Fatal(err)
	}
	if len(p3) != 3 || p3[0].Name() != "ITE-linear-2+muldirect/s1" ||
		p3[1].Name() != "muldirect-3+muldirect/s1" || p3[2].Name() != "ITE-linear-2+direct/s1" {
		t.Fatalf("portfolio 3 = %v", names(p3))
	}
	if len(Must(PaperPortfolio2())) != 2 {
		t.Fatal("portfolio 2 size")
	}
}

func names(ss []core.Strategy) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name()
	}
	return out
}
