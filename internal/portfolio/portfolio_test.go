package portfolio

import (
	"math/rand"
	"testing"
	"time"

	"fpgasat/internal/coloring"
	"fpgasat/internal/core"
	"fpgasat/internal/graph"
	"fpgasat/internal/sat"
)

func TestRunAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	strategies := PaperPortfolio3()
	for trial := 0; trial < 10; trial++ {
		g := graph.Random(rng, 6+rng.Intn(10), 0.4+rng.Float64()*0.4)
		k := 2 + rng.Intn(4)
		_, want, _ := coloring.KColorable(g, k, 0)
		winner, all, err := Run(g, k, strategies, 0)
		if err != nil {
			t.Fatal(err)
		}
		if (winner.Status == sat.Sat) != want {
			t.Fatalf("trial %d: portfolio says %v, exact says sat=%v", trial, winner.Status, want)
		}
		if want {
			if err := coloring.Verify(g, winner.Colors, k); err != nil {
				t.Fatalf("winner coloring invalid: %v", err)
			}
		}
		winners := 0
		for _, r := range all {
			if r.Winner {
				winners++
			}
		}
		if winners != 1 {
			t.Fatalf("%d winners", winners)
		}
	}
}

func TestRunCancelsLosers(t *testing.T) {
	// A hard instance: losers must report Unknown quickly after the
	// winner returns, rather than running to completion.
	g := graph.Complete(8)
	strategies, err := Strategies("ITE-log/s1", "muldirect/-", "direct/-")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	winner, all, err := Run(g, 7, strategies, 0)
	if err != nil {
		t.Fatal(err)
	}
	if winner.Status != sat.Unsat {
		t.Fatalf("K8 with 7 colors: %v", winner.Status)
	}
	if time.Since(start) > 30*time.Second {
		t.Fatal("portfolio did not cancel losers in reasonable time")
	}
	for _, r := range all {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Strategy.Name(), r.Err)
		}
	}
}

func TestRunTimeout(t *testing.T) {
	// With an absurdly small timeout on a nontrivial instance, no
	// strategy can answer.
	rng := rand.New(rand.NewSource(5))
	g := graph.Random(rng, 120, 0.5)
	if _, _, err := Run(g, 9, PaperPortfolio2(), time.Microsecond); err == nil {
		t.Skip("instance solved within a microsecond; timeout path not exercised")
	}
}

func TestRunEmptyStrategies(t *testing.T) {
	if _, _, err := Run(graph.New(1), 1, nil, 0); err == nil {
		t.Fatal("empty portfolio accepted")
	}
}

func TestStrategiesParse(t *testing.T) {
	ss, err := Strategies("muldirect/s1", "log/b1")
	if err != nil || len(ss) != 2 {
		t.Fatalf("%v %v", ss, err)
	}
	if _, err := Strategies("bogus/s1"); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestPaperPortfolios(t *testing.T) {
	p3 := PaperPortfolio3()
	if len(p3) != 3 || p3[0].Name() != "ITE-linear-2+muldirect/s1" ||
		p3[1].Name() != "muldirect-3+muldirect/s1" || p3[2].Name() != "ITE-linear-2+direct/s1" {
		t.Fatalf("portfolio 3 = %v", names(p3))
	}
	if len(PaperPortfolio2()) != 2 {
		t.Fatal("portfolio 2 size")
	}
}

func names(ss []core.Strategy) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name()
	}
	return out
}
