package portfolio

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"fpgasat/internal/coloring"
	"fpgasat/internal/graph"
	"fpgasat/internal/obs"
	"fpgasat/internal/robust"
	"fpgasat/internal/sat"
	"fpgasat/internal/share"
)

func TestReplicate(t *testing.T) {
	ss := Must(PaperPortfolio2())
	got := Replicate(ss, 3)
	if len(got) != 6 {
		t.Fatalf("len = %d, want 6", len(got))
	}
	// Interleaved: a truncated prefix keeps both strategies represented.
	if got[0].Name() != ss[0].Name() || got[1].Name() != ss[1].Name() ||
		got[2].Name() != ss[0].Name() {
		t.Fatalf("not interleaved: %s, %s, %s", got[0].Name(), got[1].Name(), got[2].Name())
	}
	if got := Replicate(ss, 0); len(got) != 2 {
		t.Fatalf("Replicate(_, 0) gave %d strategies, want 2", len(got))
	}
}

// TestSharedPortfolioAgreesWithExact: a cooperating portfolio of
// replicated lanes, with paranoid verification on, must keep agreeing
// with the exact algorithm — sharing may only move clauses that
// preserve satisfiability.
func TestSharedPortfolioAgreesWithExact(t *testing.T) {
	strategies := Replicate(Must(PaperPortfolio2())[:1], 2)
	rng := rand.New(rand.NewSource(19))
	reg := obs.NewRegistry()
	for trial := 0; trial < 6; trial++ {
		g := graph.Random(rng, 8+rng.Intn(8), 0.4+rng.Float64()*0.4)
		k := 2 + rng.Intn(4)
		_, want, _ := coloring.KColorable(g, k, 0)

		winner, _, err := RunHardened(context.Background(), g, k, strategies, Options{
			Metrics:     reg,
			Seed:        int64(trial + 1),
			Share:       &share.Options{},
			Solver:      sat.Options{RestartBase: 2},
			Verify:      true,
			VerifyUnsat: true,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if (winner.Status == sat.Sat) != want {
			t.Fatalf("trial %d: shared portfolio says %v, exact says sat=%v", trial, winner.Status, want)
		}
		if want {
			if err := coloring.Verify(g, winner.Colors, k); err != nil {
				t.Fatalf("trial %d: winner coloring invalid: %v", trial, err)
			}
		}
	}
	snap := reg.Snapshot()
	if snap.Counters[MetricShareExported] == 0 {
		t.Fatalf("no clauses exported across 6 tight trials; sharing never engaged: %+v", snap.Counters)
	}
}

// TestShareExportPanicIsolated: a lane that panics at the clause-export
// boundary (mid-restart, via the share.export failpoint) must be
// isolated like any other lane crash — the peer still answers, and the
// crashed lane surfaces a *robust.PanicError.
func TestShareExportPanicIsolated(t *testing.T) {
	strategies := Replicate(Must(PaperPortfolio2())[:1], 2)
	// Crash whichever lane reaches an export boundary first — an Unsat
	// answer on K7/6 needs many restarts, so the eventual winner is
	// guaranteed to pass through here, while the loser may be cancelled
	// before its first restart.
	crashed := int32(-1)
	var crashedLane atomic.Int32
	crashedLane.Store(crashed)
	robust.SetFailpoint(robust.FPShareExport, func(args ...any) {
		id := int32(args[0].(int))
		if crashedLane.CompareAndSwap(-1, id) || crashedLane.Load() == id {
			panic("injected export crash")
		}
	})
	t.Cleanup(func() { robust.ClearFailpoint(robust.FPShareExport) })

	reg := obs.NewRegistry()
	winner, all, err := RunHardened(context.Background(), graph.Complete(7), 6, strategies, Options{
		Metrics: reg,
		Seed:    3,
		Share:   &share.Options{},
		Solver:  sat.Options{RestartBase: 1},
	})
	if err != nil {
		t.Fatalf("portfolio failed despite a healthy peer: %v", err)
	}
	if winner.Status != sat.Unsat {
		t.Fatalf("K7 with 6 tracks: %v, want Unsat", winner.Status)
	}
	id := crashedLane.Load()
	if id < 0 {
		t.Fatal("no lane ever reached the export boundary")
	}
	if _, ok := robust.AsPanic(all[id].Err); !ok {
		t.Fatalf("exporting lane %d's Result.Err = %v, want *robust.PanicError", id, all[id].Err)
	}
	if n := reg.Snapshot().Counters[MetricPanics]; n < 1 {
		t.Fatalf("portfolio.panics = %d, want >= 1", n)
	}
}

// TestShareCorruptionCaughtByVerify: the share.import failpoint rewrites
// every foreign clause into alternating contradictory units, so any lane
// importing two of them is silently refuted and claims Unsat on a
// routable instance. Paranoid mode (-verify) must catch the lie with a
// SoundnessError; the run must never return a wrong answer quietly.
func TestShareCorruptionCaughtByVerify(t *testing.T) {
	strategies := Replicate(Must(PaperPortfolio2())[:1], 2)

	var mu sync.Mutex
	flips := map[int]int{}
	robust.SetFailpoint(robust.FPShareImport, func(args ...any) {
		lane := args[0].(int)
		lits := args[1].(*[]sat.Lit)
		mu.Lock()
		n := flips[lane]
		flips[lane]++
		mu.Unlock()
		d := 1
		if n%2 == 1 {
			d = -1
		}
		*lits = []sat.Lit{sat.LitFromDimacs(d)}
	})
	t.Cleanup(func() { robust.ClearFailpoint(robust.FPShareImport) })

	rng := rand.New(rand.NewSource(29))
	caught := 0
	for trial := 0; trial < 8; trial++ {
		g := graph.Random(rng, 10+rng.Intn(6), 0.5)
		// Tightest routable track count: satisfiable, but only after a
		// real search with conflicts, restarts and therefore imports.
		k := 1
		for {
			if _, ok, _ := coloring.KColorable(g, k, 0); ok {
				break
			}
			k++
		}
		// Deterministic lockstep forces imports to actually happen: each
		// lane consumes its peers' round-r exports before starting round
		// r+1, instead of racing tiny instances to the finish line.
		winner, _, err := RunHardened(context.Background(), g, k, strategies, Options{
			Seed:        int64(trial + 1),
			Share:       &share.Options{Deterministic: true},
			Solver:      sat.Options{RestartBase: 1},
			Verify:      true,
			VerifyUnsat: true,
		})
		if err != nil {
			if _, ok := robust.AsSoundness(err); !ok {
				t.Fatalf("trial %d: non-soundness failure: %v", trial, err)
			}
			caught++
			continue
		}
		// No corruption landed in time — then the answer must be right.
		if winner.Status != sat.Sat {
			t.Fatalf("trial %d: routable instance answered %v without a soundness error", trial, winner.Status)
		}
		if err := coloring.Verify(g, winner.Colors, k); err != nil {
			t.Fatalf("trial %d: silently wrong coloring: %v", trial, err)
		}
	}
	if caught == 0 {
		t.Fatal("corrupted imports never caught across 8 tight trials; -verify protection not exercised")
	}
}

// TestDeterministicPortfolioReplay: the deterministic exchange mode must
// compose with the full hardened runner — two seeded runs on the same
// unroutable instance both answer Unsat with no error and with sharing
// engaged (lane scheduling may still vary, but lockstep rounds must not
// deadlock under cancellation).
func TestDeterministicPortfolioReplay(t *testing.T) {
	strategies := Replicate(Must(PaperPortfolio2())[:1], 3)
	for run := 0; run < 2; run++ {
		reg := obs.NewRegistry()
		winner, _, err := RunHardened(context.Background(), graph.Complete(7), 6, strategies, Options{
			Metrics: reg,
			Seed:    5,
			Share:   &share.Options{Deterministic: true},
			Solver:  sat.Options{RestartBase: 1},
		})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if winner.Status != sat.Unsat {
			t.Fatalf("run %d: K7 with 6 tracks answered %v", run, winner.Status)
		}
		if n := reg.Snapshot().Counters[MetricShareExported]; n == 0 {
			t.Fatalf("run %d: deterministic exchange never exported", run)
		}
	}
}
