package robust

import "sync"

// Failpoints are named fault-injection sites compiled into the solve
// pipeline. In production they are disabled and a Hit call is a single
// lock-free map lookup miss; tests install handlers with SetFailpoint
// to make a chosen site panic, stall, or corrupt data in flight, which
// is how the crash-recovery and paranoid-mode properties are proved
// under -race without touching the production code paths.
//
// A handler receives the arguments the site passes to Hit — typically
// the strategy name first, so one handler can target a single
// portfolio lane — and may do anything: panic to simulate a crash,
// block to simulate a hang, or mutate a pointer argument to simulate
// an unsound result. The registry is safe for concurrent use.
var failpoints sync.Map // name -> func(args ...any)

// Failpoint names compiled into the pipeline.
const (
	// FPPortfolioLane fires at the start of every portfolio lane
	// attempt with (strategyName string).
	FPPortfolioLane = "portfolio.lane"
	// FPPortfolioLaneResult fires after a lane produced its result,
	// before answer self-checking, with (strategyName string,
	// res *portfolio.Result) — mutating res simulates an unsound
	// encoding.
	FPPortfolioLaneResult = "portfolio.lane.result"
	// FPSearchProbe fires before every width-search probe with
	// (strategyName string, width int).
	FPSearchProbe = "search.minwidth.probe"
	// FPSessionSolve fires at the start of every facade Session solve
	// with (op string).
	FPSessionSolve = "session.solve"
	// FPShareExport fires at the start of every clause-exchange restart
	// boundary, before the lane publishes its buffered learnt clauses,
	// with (laneID int, group string). Panicking here simulates a lane
	// crashing mid-export.
	FPShareExport = "share.export"
	// FPShareImport fires for every foreign clause about to be imported,
	// with (laneID int, lits *[]sat.Lit) — mutating the slice simulates
	// a corrupted shared clause in flight.
	FPShareImport = "share.import"
	// FPServeWorker fires inside a serve worker after it dequeued a job,
	// before the solve starts, with (jobID string, shardName string).
	// Panicking here simulates a worker crashing mid-job.
	FPServeWorker = "serve.worker"
	// FPServeDequeue fires when a serve worker picks a job off its
	// shard queue, with (shardName string). Blocking here simulates a
	// stalled queue consumer.
	FPServeDequeue = "serve.dequeue"
	// FPJournalAppend fires before every journal record write, with
	// (kind string, errp *error) — setting *errp simulates a failed
	// write (disk full, I/O error) without touching the file.
	FPJournalAppend = "serve.journal.append"
	// FPJournalSync fires before every journal fsync, with
	// (kind string). Sleeping here simulates a slow or stalled disk.
	FPJournalSync = "serve.journal.sync"
)

// SetFailpoint installs (or replaces) the handler of a named
// failpoint. Tests must pair it with ClearFailpoint (t.Cleanup).
func SetFailpoint(name string, fn func(args ...any)) {
	failpoints.Store(name, fn)
}

// ClearFailpoint removes a failpoint handler.
func ClearFailpoint(name string) {
	failpoints.Delete(name)
}

// Hit triggers a failpoint: if a handler is installed for name it runs
// with args, otherwise Hit is a no-op. Panics raised by the handler
// propagate to the call site — exactly like an organic crash there.
func Hit(name string, args ...any) {
	if fn, ok := failpoints.Load(name); ok {
		fn.(func(args ...any))(args...)
	}
}
