// Package robust is the fault-tolerance layer of the solve pipeline:
// a typed error taxonomy (panics captured with their stacks, soundness
// violations, corrupted user input), panic-capture helpers, retry
// budget schedules and test-only failpoints for fault injection.
//
// The error taxonomy draws a deliberate boundary through the code
// base:
//
//   - Programmer errors stay panics. Misuse of an in-process API with
//     preconditions the caller controls — sat.Lit with a zero DIMACS
//     literal, graph.AddEdge with an out-of-range vertex, an encoding
//     emitting the wrong cube count — indicates a bug in this module
//     or its embedding program, and panicking at the violation is the
//     fastest route to the broken call site.
//
//   - Input errors are errors. Anything parsed from a file or a flag
//     (DIMACS graphs and formulas, netlists, routings, benchmark
//     registries) must never be able to crash the process, no matter
//     how corrupted; parse paths validate before constructing and wrap
//     failures as *InputError with source context.
//
//   - Crashes of supervised work become *PanicError. Portfolio lanes,
//     width-search probes and facade Session solves run under
//     recover(); a panic there is converted into a typed error
//     carrying the captured stack, so one misbehaving lane degrades
//     the portfolio instead of killing the service.
//
//   - Lies become *SoundnessError. When answer self-checking
//     ("paranoid mode") catches a Sat answer violating a conflict
//     edge, or an Unsat answer contradicted by a replay, the failure
//     names the guilty strategy and is never silently masked by a
//     faster lane.
package robust

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// PanicError is a panic captured at a supervision boundary (portfolio
// lane, width-search probe, Session solve): the panic value, the stack
// at the point of the panic, and the operation that was running.
type PanicError struct {
	// Op names the supervised operation, e.g.
	// "portfolio lane ITE-linear-2+muldirect/s1".
	Op string
	// Value is the value the goroutine panicked with.
	Value any
	// Stack is the debug.Stack() capture taken inside recover().
	Stack []byte
}

// NewPanicError captures the current stack and wraps a recovered panic
// value. Call it inside a recover() block.
func NewPanicError(op string, value any) *PanicError {
	return &PanicError{Op: op, Value: value, Stack: debug.Stack()}
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("robust: panic in %s: %v", e.Op, e.Value)
}

// Unwrap exposes a wrapped error panic value (panic(err)) to
// errors.Is/As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Capture runs fn and converts a panic into a *PanicError; all other
// outcomes (including errors fn reports through its own channels)
// return nil. Use it to supervise one unit of work whose resources —
// e.g. a pooled solver — must not be recycled after a crash:
//
//	if perr := robust.Capture("solve", func() { res = doSolve() }); perr != nil {
//		return perr // solver abandoned, not returned to the pool
//	}
//	pool.Put(solver)
func Capture(op string, fn func()) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = NewPanicError(op, p)
		}
	}()
	fn()
	return nil
}

// SoundnessError reports that answer self-checking caught a definite
// answer that fails independent verification: a Sat answer whose
// decoded coloring violates a conflict edge, or an Unsat answer
// contradicted by a verified replay. It names the strategy so the
// unsound encoding is identifiable from the error alone.
type SoundnessError struct {
	// Strategy is the name of the (encoding, symmetry) strategy whose
	// answer failed verification.
	Strategy string
	// Claim is the answer that failed the check: "Sat" or "Unsat".
	Claim string
	// Err is the underlying verification failure.
	Err error
}

func (e *SoundnessError) Error() string {
	return fmt.Sprintf("robust: strategy %s reported %s but the answer fails verification: %v",
		e.Strategy, e.Claim, e.Err)
}

func (e *SoundnessError) Unwrap() error { return e.Err }

// InputError wraps a failure to parse or validate user-supplied input
// (benchmark registries, netlists, graphs) with its source context.
type InputError struct {
	// Source describes the input, e.g. a file path or format name.
	Source string
	// Line is the 1-based source line of the failure, 0 if unknown.
	Line int
	// Err is the underlying parse or validation failure.
	Err error
}

func (e *InputError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("%s: line %d: %v", e.Source, e.Line, e.Err)
	}
	return fmt.Sprintf("%s: %v", e.Source, e.Err)
}

func (e *InputError) Unwrap() error { return e.Err }

// AsPanic reports whether err has a *PanicError in its chain,
// returning it if so.
func AsPanic(err error) (*PanicError, bool) {
	var pe *PanicError
	if errors.As(err, &pe) {
		return pe, true
	}
	return nil, false
}

// AsSoundness reports whether err has a *SoundnessError in its chain,
// returning it if so.
func AsSoundness(err error) (*SoundnessError, bool) {
	var se *SoundnessError
	if errors.As(err, &se) {
		return se, true
	}
	return nil, false
}

// RetrySchedule selects how a retry policy escalates conflict budgets
// across attempts.
type RetrySchedule int

const (
	// GeometricRetry doubles the budget on every retry: base, 2·base,
	// 4·base, ... — fast escalation for lanes that were merely
	// under-budgeted.
	GeometricRetry RetrySchedule = iota
	// LubyRetry follows the Luby restart sequence (1, 1, 2, 1, 1, 2,
	// 4, ...) scaled by the base budget — the theoretically optimal
	// universal schedule when the required budget is unknown.
	LubyRetry
)

// Budget returns the conflict budget of the given attempt (0-based)
// under the schedule, scaled by base. A non-positive base returns 0
// (no budget — the attempt is bounded only by its context).
func (s RetrySchedule) Budget(base int64, attempt int) int64 {
	if base <= 0 {
		return 0
	}
	switch s {
	case LubyRetry:
		return base * luby(attempt+1)
	default:
		if attempt >= 62 { // avoid shifting into the sign bit
			attempt = 62
		}
		b := base << uint(attempt)
		if b <= 0 || b < base { // overflow
			return int64(1) << 62
		}
		return b
	}
}

// luby returns the i-th element (1-based) of the Luby sequence
// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
func luby(i int) int64 {
	// Find the subsequence 2^k - 1 >= i, then recurse or return.
	for k := 1; ; k++ {
		pow := int64(1)<<uint(k) - 1
		if int64(i) == pow {
			return int64(1) << uint(k-1)
		}
		if int64(i) < pow {
			return luby(i - int(int64(1)<<uint(k-1)) + 1)
		}
	}
}
