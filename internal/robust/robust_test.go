package robust

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCaptureConvertsPanic(t *testing.T) {
	err := Capture("test op", func() { panic("boom") })
	pe, ok := AsPanic(err)
	if !ok {
		t.Fatalf("Capture returned %T, want *PanicError", err)
	}
	if pe.Op != "test op" || pe.Value != "boom" {
		t.Fatalf("captured %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	if !strings.Contains(pe.Error(), "test op") || !strings.Contains(pe.Error(), "boom") {
		t.Fatalf("message %q lacks op or value", pe.Error())
	}
}

func TestCapturePassesThroughSuccess(t *testing.T) {
	ran := false
	if err := Capture("ok", func() { ran = true }); err != nil || !ran {
		t.Fatalf("err=%v ran=%v", err, ran)
	}
}

func TestPanicErrorUnwrapsErrorValue(t *testing.T) {
	sentinel := errors.New("sentinel")
	err := Capture("op", func() { panic(sentinel) })
	if !errors.Is(err, sentinel) {
		t.Fatalf("panic(err) not unwrappable: %v", err)
	}
}

func TestSoundnessError(t *testing.T) {
	inner := errors.New("edge {1,2} monochromatic")
	err := fmt.Errorf("portfolio: %w", &SoundnessError{Strategy: "direct/-", Claim: "Sat", Err: inner})
	se, ok := AsSoundness(err)
	if !ok {
		t.Fatal("SoundnessError not found in chain")
	}
	if se.Strategy != "direct/-" || !errors.Is(err, inner) {
		t.Fatalf("got %+v", se)
	}
	if !strings.Contains(se.Error(), "direct/-") || !strings.Contains(se.Error(), "Sat") {
		t.Fatalf("message %q lacks strategy or claim", se.Error())
	}
}

func TestInputError(t *testing.T) {
	err := &InputError{Source: "bench.reg", Line: 7, Err: errors.New("bad seed")}
	if got := err.Error(); !strings.Contains(got, "bench.reg") || !strings.Contains(got, "line 7") {
		t.Fatalf("message %q lacks context", got)
	}
	if (&InputError{Source: "x", Err: errors.New("y")}).Error() != "x: y" {
		t.Fatal("line-less format")
	}
}

func TestLubySequence(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(i + 1); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestRetryScheduleBudget(t *testing.T) {
	if got := GeometricRetry.Budget(100, 0); got != 100 {
		t.Fatalf("geometric attempt 0: %d", got)
	}
	if got := GeometricRetry.Budget(100, 3); got != 800 {
		t.Fatalf("geometric attempt 3: %d", got)
	}
	if got := GeometricRetry.Budget(1<<40, 62); got <= 0 {
		t.Fatalf("geometric overflow not clamped: %d", got)
	}
	if got := LubyRetry.Budget(100, 2); got != 200 {
		t.Fatalf("luby attempt 2: %d", got)
	}
	if got := LubyRetry.Budget(0, 5); got != 0 {
		t.Fatalf("zero base must stay unbudgeted: %d", got)
	}
}

func TestFailpointLifecycle(t *testing.T) {
	const fp = "test.failpoint"
	Hit(fp, "no handler") // no-op

	var mu sync.Mutex
	var seen []any
	SetFailpoint(fp, func(args ...any) {
		mu.Lock()
		defer mu.Unlock()
		seen = append(seen, args...)
	})
	t.Cleanup(func() { ClearFailpoint(fp) })

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			Hit(fp, i)
		}(i)
	}
	wg.Wait()
	mu.Lock()
	n := len(seen)
	mu.Unlock()
	if n != 8 {
		t.Fatalf("handler saw %d hits, want 8", n)
	}

	ClearFailpoint(fp)
	Hit(fp, "cleared") // no-op again
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 8 {
		t.Fatal("cleared failpoint still firing")
	}
}

func TestFailpointPanicPropagates(t *testing.T) {
	const fp = "test.failpoint.panic"
	SetFailpoint(fp, func(args ...any) { panic("injected") })
	t.Cleanup(func() { ClearFailpoint(fp) })
	err := Capture("op", func() { Hit(fp) })
	if _, ok := AsPanic(err); !ok {
		t.Fatalf("injected panic not captured: %v", err)
	}
}
