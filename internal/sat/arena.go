package sat

import "math"

// This file implements the flat clause arena backing the solver's
// clause database. Instead of one heap object per clause chased through
// pointer-typed watch lists, every clause lives inline in a single
// []uint32 and is addressed by a ClauseRef offset:
//
//	word 0:            header — size (bits 0..21), learnt flag (bit 22),
//	                   LBD clamped to 255 (bits 24..31)
//	word 1 (learnt):   activity as float32 bits
//	following words:   the literals, one per word
//
// The layout keeps propagation cache-friendly (the header and the
// watched literals share a cache line), shrinks a watch entry to 8
// bytes, and makes the whole database one allocation that Reset can
// retain across solves. Deleted clauses leave dead words behind;
// reduceDB compacts the arena once the dead fraction passes a
// threshold, relocating live clauses and patching watch lists and
// reason references through forwarding words.
type ClauseRef = uint32

// RefUndef is the null clause reference ("no clause"), the arena
// analogue of a nil *clause.
const RefUndef ClauseRef = ^ClauseRef(0)

// Header word layout.
const (
	hdrSizeBits  = 22
	hdrSizeMask  = 1<<hdrSizeBits - 1 // 4M literals per clause
	hdrLearntBit = 1 << hdrSizeBits
	hdrLBDShift  = 24
	hdrLBDMax    = 255
)

// clauseArena is the flat clause store. The zero value is ready to use.
type clauseArena struct {
	data []uint32
	// wasted counts the words occupied by freed clauses; compact()
	// reclaims them.
	wasted int
	// collections and freedWords count compactions and reclaimed words
	// since the owning solver was created or last Reset.
	collections int64
	freedWords  int64
}

func (ca *clauseArena) reset() {
	ca.data = ca.data[:0]
	ca.wasted = 0
	ca.collections = 0
	ca.freedWords = 0
}

// alloc appends a clause and returns its reference. The literal slice
// is copied; the caller may reuse it.
func (ca *clauseArena) alloc(lits []Lit, learnt bool, lbd int32) ClauseRef {
	if len(lits) > hdrSizeMask {
		panic("sat: clause exceeds arena size limit")
	}
	r := ClauseRef(len(ca.data))
	hdr := uint32(len(lits))
	if learnt {
		hdr |= hdrLearntBit
	}
	if lbd > hdrLBDMax {
		lbd = hdrLBDMax
	}
	hdr |= uint32(lbd) << hdrLBDShift
	ca.data = append(ca.data, hdr)
	if learnt {
		ca.data = append(ca.data, 0) // activity 0.0
	}
	for _, l := range lits {
		ca.data = append(ca.data, uint32(l))
	}
	return r
}

func (ca *clauseArena) size(r ClauseRef) int { return int(ca.data[r] & hdrSizeMask) }

func (ca *clauseArena) learnt(r ClauseRef) bool { return ca.data[r]&hdrLearntBit != 0 }

// lbd returns the clause's literal-block distance (clamped to 255 at
// alloc time, which preserves every "glue" comparison the deletion
// policy makes).
func (ca *clauseArena) lbd(r ClauseRef) int32 { return int32(ca.data[r] >> hdrLBDShift) }

func (ca *clauseArena) act(r ClauseRef) float32 {
	return math.Float32frombits(ca.data[r+1])
}

func (ca *clauseArena) setAct(r ClauseRef, a float32) {
	ca.data[r+1] = math.Float32bits(a)
}

// headerWords returns the number of words preceding the literals.
func (ca *clauseArena) headerWords(r ClauseRef) int {
	if ca.learnt(r) {
		return 2
	}
	return 1
}

// lits returns the clause's literal words as a mutable view into the
// arena (each word is a Lit stored as uint32). The view is invalidated
// by alloc and compact.
func (ca *clauseArena) lits(r ClauseRef) []uint32 {
	off := int(r) + ca.headerWords(r)
	return ca.data[off : off+ca.size(r)]
}

// words returns the clause's total footprint in arena words.
func (ca *clauseArena) words(r ClauseRef) int {
	return ca.headerWords(r) + ca.size(r)
}

// free marks the clause's words as garbage. The words stay in place
// (nothing references them any more) until the next compaction.
func (ca *clauseArena) free(r ClauseRef) { ca.wasted += ca.words(r) }

// needsCompaction reports whether at least a fifth of the arena is
// garbage — the MiniSat-style trigger used by reduceDB.
func (ca *clauseArena) needsCompaction() bool {
	return ca.wasted > 0 && ca.wasted > len(ca.data)/5
}

// relocate copies clause r to the end of dst, overwrites r's header
// with a forwarding word holding the new reference, and returns the
// new reference. Callers must relocate every live clause exactly once
// and then resolve all remaining references through forward.
func (ca *clauseArena) relocate(dst *[]uint32, r ClauseRef) ClauseRef {
	n := ca.words(r)
	nr := ClauseRef(len(*dst))
	*dst = append(*dst, ca.data[int(r):int(r)+n]...)
	ca.data[r] = uint32(nr)
	return nr
}

// forward resolves a reference to a clause already relocated by
// relocate during the current compaction.
func (ca *clauseArena) forward(r ClauseRef) ClauseRef { return ca.data[r] }

// garbageCollect compacts the arena: live clauses (exactly the members
// of s.clauses and s.learnts — reason clauses are always locked and
// therefore live) are relocated into a fresh arena and every watch and
// reason reference is patched through the forwarding words.
func (s *Solver) garbageCollect() {
	ca := &s.ca
	dst := make([]uint32, 0, len(ca.data)-ca.wasted)
	for i, r := range s.clauses {
		s.clauses[i] = ca.relocate(&dst, r)
	}
	for i, r := range s.learnts {
		s.learnts[i] = ca.relocate(&dst, r)
	}
	for l := range s.watches {
		ws := s.watches[l]
		for i := range ws {
			ws[i].ref = ca.forward(ws[i].ref)
		}
	}
	for v := range s.reason {
		if r := s.reason[v]; r != RefUndef {
			s.reason[v] = ca.forward(r)
		}
	}
	ca.freedWords += int64(len(ca.data) - len(dst))
	ca.data = dst
	ca.wasted = 0
	ca.collections++
}

// ArenaStats is a point-in-time view of the clause arena, the raw
// material of the sat.arena.* observability gauges.
type ArenaStats struct {
	// Words is the arena length (live + garbage), CapWords its backing
	// capacity, WastedWords the garbage portion awaiting compaction.
	Words, CapWords, WastedWords int
	// WatchCapWords is the total backing capacity of the per-literal
	// watch lists in 4-byte words (a watch entry is two words). Together
	// with CapWords it approximates the memory a pooled solver retains
	// for its next use — the quantity Pool.MaxRetainedWords caps.
	WatchCapWords int
	// Clauses and Learnts count the live problem and learnt clauses.
	Clauses, Learnts int
	// Collections and FreedWords count compactions and reclaimed words
	// since the solver was created or last Reset.
	Collections, FreedWords int64
}

// ArenaStats returns the current clause-arena statistics.
func (s *Solver) ArenaStats() ArenaStats {
	watchCap := 0
	for i := range s.watches {
		watchCap += cap(s.watches[i]) * 2
	}
	return ArenaStats{
		Words:         len(s.ca.data),
		CapWords:      cap(s.ca.data),
		WastedWords:   s.ca.wasted,
		WatchCapWords: watchCap,
		Clauses:       len(s.clauses),
		Learnts:       len(s.learnts),
		Collections:   s.ca.collections,
		FreedWords:    s.ca.freedWords,
	}
}
