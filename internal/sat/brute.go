package sat

// BruteForce decides satisfiability by exhaustive enumeration. It is a
// reference oracle for tests and only practical for roughly 25
// variables or fewer; it returns Unknown beyond 30 to avoid accidental
// exponential blow-ups in test code.
func BruteForce(c *CNF) (Status, []bool) {
	n := c.NumVars
	if n > 30 {
		return Unknown, nil
	}
	model := make([]bool, n)
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		for v := 0; v < n; v++ {
			model[v] = mask&(1<<uint(v)) != 0
		}
		if c.Eval(model) {
			out := make([]bool, n)
			copy(out, model)
			return Sat, out
		}
	}
	return Unsat, nil
}
