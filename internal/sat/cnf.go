package sat

import (
	"context"
	"fmt"
)

// CNF is a formula in conjunctive normal form with literals in DIMACS
// convention: variables are 1-based, a negative integer is a negated
// literal, and 0 never appears inside a clause. CNF is the interchange
// type between the encoders in package core and this solver.
type CNF struct {
	NumVars int
	Clauses [][]int
	// Comments are emitted at the top of DIMACS output; encoders use
	// them to record the encoding, symmetry heuristic and source graph.
	Comments []string
}

// AddClause appends a copy of the clause. Callers may reuse the slice
// after the call, per the clause-sink contract (see core.ClauseSink):
// emitters stream clauses from a scratch buffer and every sink copies
// what it intends to keep.
func (c *CNF) AddClause(lits ...int) {
	for _, l := range lits {
		if l == 0 {
			panic("sat: literal 0 in clause")
		}
		if v := abs(l); v > c.NumVars {
			c.NumVars = v
		}
	}
	c.Clauses = append(c.Clauses, append([]int(nil), lits...))
}

// NumClauses returns the number of clauses.
func (c *CNF) NumClauses() int { return len(c.Clauses) }

// NumLiterals returns the total literal count over all clauses.
func (c *CNF) NumLiterals() int {
	n := 0
	for _, cl := range c.Clauses {
		n += len(cl)
	}
	return n
}

// Validate checks structural well-formedness (no zero literals, all
// variables within NumVars, no empty header mismatch).
func (c *CNF) Validate() error {
	for i, cl := range c.Clauses {
		for _, l := range cl {
			if l == 0 {
				return fmt.Errorf("sat: clause %d contains literal 0", i)
			}
			if abs(l) > c.NumVars {
				return fmt.Errorf("sat: clause %d literal %d exceeds NumVars=%d", i, l, c.NumVars)
			}
		}
	}
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Load adds all clauses of the formula to the solver, creating the
// variables first so that variable numbering matches the DIMACS file
// (DIMACS variable i is solver Var(i-1)).
func (s *Solver) Load(c *CNF) bool {
	for s.NumVars() < c.NumVars {
		s.NewVar()
	}
	for _, cl := range c.Clauses {
		if !s.AddDimacsClause(cl...) {
			return false
		}
	}
	return true
}

// Result bundles the outcome of SolveCNF.
type Result struct {
	Status Status
	// Model, for Sat results, maps DIMACS variable v (1-based) to
	// Model[v-1].
	Model []bool
	Stats Stats
	// Err is set by supervised wrappers (e.g. Session.SolveCNF) when
	// the solve failed abnormally — typically a *robust.PanicError from
	// a crashed solve; Status is Unknown in that case. The plain
	// SolveCNF* functions leave it nil.
	Err error
}

// SolveCNFContext is SolveCNF with context-based cancellation: the
// solve returns Unknown promptly once ctx is cancelled or its deadline
// passes. This is the preferred cancellation API; the stop-channel
// parameter of SolveCNF is retained for backward compatibility.
func SolveCNFContext(ctx context.Context, c *CNF, opts Options) Result {
	return solveCNFOn(New(opts), c, ctx.Done())
}

// SolveCNFReusing is SolveCNFContext on a pooled solver: the solver is
// taken from the pool (reset and configured with opts), used for this
// one solve, and returned afterwards. A nil pool falls back to a fresh
// solver.
func SolveCNFReusing(ctx context.Context, pool *Pool, c *CNF, opts Options) Result {
	if pool == nil {
		return SolveCNFContext(ctx, c, opts)
	}
	s := pool.Get(opts)
	res := solveCNFOn(s, c, ctx.Done())
	// Deliberately not deferred: a panicking solve must abandon the
	// solver rather than return its corrupted state to the pool.
	pool.Put(s)
	return res
}

// SolveCNF is a convenience wrapper: load the formula into a fresh
// solver with the given options and solve it. The stop channel, when
// non-nil, cancels the solve when closed (used by portfolio runs).
//
// Deprecated for new code: prefer SolveCNFContext, which accepts a
// context.Context instead of a raw channel.
func SolveCNF(c *CNF, opts Options, stop <-chan struct{}) Result {
	return solveCNFOn(New(opts), c, stop)
}

// solveCNFOn loads the formula into s and solves it, with optional
// stop-channel cancellation. The watcher goroutine is joined before
// returning so that a late Stop can never land on a solver that has
// already been handed to another solve (essential once solvers are
// pooled and reused).
func solveCNFOn(s *Solver, c *CNF, stop <-chan struct{}) Result {
	if !s.Load(c) {
		// Refuted during loading (conflicting units at level 0). Solve
		// on the refuted database is a cheap no-op that still closes
		// the DRAT proof with the empty clause — returning Unsat here
		// directly would leave a proof that derives nothing.
		return Result{Status: s.Solve(), Stats: s.Stats}
	}
	var st Status
	if stop != nil {
		done := make(chan struct{})
		exited := make(chan struct{})
		go func() {
			defer close(exited)
			select {
			case <-stop:
				s.Stop()
			case <-done:
			}
		}()
		st = func() Status {
			// Deferred so the watcher is joined even when the solve
			// panics and the panic unwinds through a recover boundary.
			defer func() {
				close(done)
				<-exited
			}()
			return s.Solve()
		}()
	} else {
		st = s.Solve()
	}
	res := Result{Status: st, Stats: s.Stats}
	if st == Sat {
		m := s.Model()
		res.Model = make([]bool, c.NumVars)
		copy(res.Model, m)
	}
	return res
}

// Eval reports whether assignment (1-based indexing into model as in
// Result.Model) satisfies the formula. Variables beyond len(model) are
// treated as false.
func (c *CNF) Eval(model []bool) bool {
	for _, cl := range c.Clauses {
		sat := false
		for _, l := range cl {
			v := abs(l)
			val := v-1 < len(model) && model[v-1]
			if (l > 0) == val {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}
