package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteDIMACS writes the formula in DIMACS CNF format, including any
// comments stored on the CNF.
func WriteDIMACS(w io.Writer, c *CNF) error {
	bw := bufio.NewWriter(w)
	for _, cm := range c.Comments {
		if _, err := fmt.Fprintf(bw, "c %s\n", cm); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", c.NumVars, len(c.Clauses)); err != nil {
		return err
	}
	for _, cl := range c.Clauses {
		for _, l := range cl {
			if _, err := bw.WriteString(strconv.Itoa(l)); err != nil {
				return err
			}
			if err := bw.WriteByte(' '); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseDIMACS reads a DIMACS CNF file. It tolerates comment lines
// anywhere, clauses spanning multiple lines, and a missing final
// terminator on the last clause. Literal counts exceeding the header
// are accepted (NumVars grows); fewer clauses than declared is an
// error.
func ParseDIMACS(r io.Reader) (*CNF, error) {
	cnf := &CNF{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	declaredClauses := -1
	headerSeen := false
	var cur []int
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		switch text[0] {
		case 'c':
			cnf.Comments = append(cnf.Comments, strings.TrimSpace(strings.TrimPrefix(text, "c")))
			continue
		case 'p':
			if headerSeen {
				return nil, fmt.Errorf("sat: line %d: duplicate DIMACS header", line)
			}
			fields := strings.Fields(text)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("sat: line %d: malformed header %q", line, text)
			}
			nv, err1 := strconv.Atoi(fields[2])
			nc, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || nv < 0 || nc < 0 {
				return nil, fmt.Errorf("sat: line %d: malformed header %q", line, text)
			}
			cnf.NumVars = nv
			declaredClauses = nc
			headerSeen = true
			continue
		}
		if !headerSeen {
			return nil, fmt.Errorf("sat: line %d: clause before header", line)
		}
		for _, f := range strings.Fields(text) {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("sat: line %d: bad literal %q", line, f)
			}
			if v == 0 {
				lits := make([]int, len(cur))
				copy(lits, cur)
				cnf.AddClause(lits...)
				cur = cur[:0]
				continue
			}
			cur = append(cur, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		lits := make([]int, len(cur))
		copy(lits, cur)
		cnf.AddClause(lits...)
	}
	if declaredClauses >= 0 && len(cnf.Clauses) < declaredClauses {
		return nil, fmt.Errorf("sat: header declares %d clauses, found %d", declaredClauses, len(cnf.Clauses))
	}
	return cnf, nil
}
