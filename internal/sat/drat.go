package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements DRAT-style unsatisfiability certificates: the
// solver can log every learnt clause (and deletion) to a proof writer,
// and CheckDRAT verifies such a proof against the original formula by
// forward RUP (reverse unit propagation) checking. A checked proof is
// a machine-verifiable certificate that a global routing is
// unroutable — the guarantee the paper's introduction advertises for
// SAT-based detailed routing, made independently auditable.
//
// The format is the standard DRAT text format: one lemma per line as
// DIMACS literals terminated by 0; deletions are prefixed with "d".
// The proof must end with (or at some point derive) the empty clause.

// proofLogger accumulates proof lines efficiently.
type proofLogger struct {
	w   *bufio.Writer
	err error
}

func newProofLogger(w io.Writer) *proofLogger {
	return &proofLogger{w: bufio.NewWriter(w)}
}

func (p *proofLogger) addClause(lits []Lit) {
	if p.err != nil {
		return
	}
	for _, l := range lits {
		if _, err := p.w.WriteString(strconv.Itoa(l.Dimacs())); err != nil {
			p.err = err
			return
		}
		p.w.WriteByte(' ')
	}
	_, p.err = p.w.WriteString("0\n")
}

func (p *proofLogger) deleteClause(lits []Lit) {
	if p.err != nil {
		return
	}
	if _, err := p.w.WriteString("d "); err != nil {
		p.err = err
		return
	}
	p.addClause(lits)
}

func (p *proofLogger) flush() error {
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}

// checker is a self-contained unit-propagation engine over an
// evolving clause database, used by CheckDRAT. It is deliberately
// independent of Solver so the certificate check does not trust the
// code being certified.
type checker struct {
	numVars int
	clauses map[int]*chkClause // id -> clause
	nextID  int
	// occur[lit] lists clause ids containing the literal (simple
	// occurrence propagation; proofs of the sizes we produce check in
	// well under a second).
	occur   map[int][]int
	assigns map[int]bool // literal -> true when asserted
}

type chkClause struct {
	lits []int
	key  string
}

func clauseKey(lits []int) string {
	sorted := append([]int(nil), lits...)
	// insertion sort: clauses are short
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var sb strings.Builder
	for _, l := range sorted {
		fmt.Fprintf(&sb, "%d,", l)
	}
	return sb.String()
}

func newChecker(cnf *CNF) *checker {
	c := &checker{
		numVars: cnf.NumVars,
		clauses: map[int]*chkClause{},
		occur:   map[int][]int{},
		assigns: map[int]bool{},
	}
	for _, cl := range cnf.Clauses {
		c.add(cl)
	}
	return c
}

func (c *checker) add(lits []int) int {
	id := c.nextID
	c.nextID++
	cl := &chkClause{lits: append([]int(nil), lits...), key: clauseKey(lits)}
	c.clauses[id] = cl
	for _, l := range lits {
		c.occur[l] = append(c.occur[l], id)
	}
	return id
}

// removeByKey deletes one clause matching the literal multiset; DRAT
// deletion lines identify clauses by content.
func (c *checker) removeByKey(lits []int) bool {
	key := clauseKey(lits)
	for id, cl := range c.clauses {
		if cl.key == key {
			delete(c.clauses, id)
			return true
		}
	}
	return false
}

// rup reports whether the clause is derivable by reverse unit
// propagation: assuming all its literals false must yield a conflict
// under unit propagation over the current database.
func (c *checker) rup(lits []int) bool {
	assign := map[int]int8{} // var -> +1/-1
	assignLit := func(l int) bool {
		v, s := abs(l), int8(1)
		if l < 0 {
			s = -1
		}
		if old, ok := assign[v]; ok {
			return old == s // false signals conflict
		}
		assign[v] = s
		return true
	}
	valueOf := func(l int) int8 {
		s, ok := assign[abs(l)]
		if !ok {
			return 0
		}
		if l < 0 {
			return -s
		}
		return s
	}
	for _, l := range lits {
		if !assignLit(-l) {
			return true // the negated clause is self-contradictory
		}
	}
	// Saturate unit propagation (simple fixpoint; databases here are
	// small).
	for {
		progress := false
		for _, cl := range c.clauses {
			var unassigned int
			unassignedCount := 0
			sat := false
			for _, l := range cl.lits {
				switch valueOf(l) {
				case 1:
					sat = true
				case 0:
					unassigned = l
					unassignedCount++
				}
			}
			if sat {
				continue
			}
			switch unassignedCount {
			case 0:
				return true // conflict
			case 1:
				if !assignLit(unassigned) {
					return true
				}
				progress = true
			}
		}
		if !progress {
			return false
		}
	}
}

// CheckDRAT verifies a DRAT proof of unsatisfiability for the formula:
// every added lemma must be RUP with respect to the current database,
// and the proof must derive the empty clause. It returns nil for a
// valid refutation.
func CheckDRAT(cnf *CNF, proof io.Reader) error {
	c := newChecker(cnf)
	sc := bufio.NewScanner(proof)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line := 0
	derivedEmpty := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		del := false
		if strings.HasPrefix(text, "d ") {
			del = true
			text = strings.TrimSpace(text[2:])
		}
		fields := strings.Fields(text)
		var lits []int
		terminated := false
		for _, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return fmt.Errorf("sat: proof line %d: bad literal %q", line, f)
			}
			if v == 0 {
				terminated = true
				break
			}
			lits = append(lits, v)
		}
		if !terminated {
			return fmt.Errorf("sat: proof line %d: missing 0 terminator", line)
		}
		if del {
			// Deleting a clause that is not present is tolerated (the
			// solver may delete a clause it strengthened at add time).
			c.removeByKey(lits)
			continue
		}
		if !c.rup(lits) {
			return fmt.Errorf("sat: proof line %d: lemma %v is not RUP", line, lits)
		}
		if len(lits) == 0 {
			derivedEmpty = true
			break
		}
		c.add(lits)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !derivedEmpty {
		return fmt.Errorf("sat: proof does not derive the empty clause")
	}
	return nil
}
