package sat

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// solveWithProof solves the formula with proof logging and returns the
// status and the proof text.
func solveWithProof(t *testing.T, cnf *CNF) (Status, *bytes.Buffer) {
	t.Helper()
	var proof bytes.Buffer
	s := New(Options{ProofWriter: &proof})
	s.Load(cnf)
	st := s.Solve()
	if err := s.ProofError(); err != nil {
		t.Fatal(err)
	}
	return st, &proof
}

func TestDRATPigeonhole(t *testing.T) {
	for holes := 2; holes <= 5; holes++ {
		cnf := php(holes+1, holes)
		st, proof := solveWithProof(t, cnf)
		if st != Unsat {
			t.Fatalf("PHP(%d,%d): %v", holes+1, holes, st)
		}
		if err := CheckDRAT(cnf, proof); err != nil {
			t.Fatalf("PHP(%d,%d) proof rejected: %v", holes+1, holes, err)
		}
	}
}

func TestDRATTrivialUnsat(t *testing.T) {
	cnf := &CNF{}
	cnf.AddClause(1)
	cnf.AddClause(-1)
	st, proof := solveWithProof(t, cnf)
	if st != Unsat {
		t.Fatalf("%v", st)
	}
	if err := CheckDRAT(cnf, proof); err != nil {
		t.Fatalf("trivial proof rejected: %v", err)
	}
}

func TestDRATRandomUnsat(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	checked := 0
	for trial := 0; trial < 60 && checked < 12; trial++ {
		vars := 5 + rng.Intn(6)
		cnf := randomCNF(rng, vars, vars*6, 3)
		st, proof := solveWithProof(t, cnf)
		if st != Unsat {
			continue
		}
		if err := CheckDRAT(cnf, proof); err != nil {
			t.Fatalf("trial %d: proof rejected: %v", trial, err)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no unsat instances generated")
	}
}

func TestDRATWithReduceDB(t *testing.T) {
	// PHP(8,7) generates enough conflicts to trigger learnt-clause
	// deletion, exercising the "d" lines.
	cnf := php(8, 7)
	var proof bytes.Buffer
	s := New(Options{ProofWriter: &proof, LearntLimit: 60})
	s.Load(cnf)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("%v", st)
	}
	if err := s.ProofError(); err != nil {
		t.Fatal(err)
	}
	if s.Stats.Removed == 0 {
		t.Fatal("reduceDB did not fire despite LearntLimit")
	}
	if !strings.Contains(proof.String(), "\nd ") {
		t.Fatal("no deletion lines in proof despite reduceDB")
	}
	if err := CheckDRAT(cnf, &proof); err != nil {
		t.Fatalf("proof with deletions rejected: %v", err)
	}
}

func TestDRATRejectsBogusProofs(t *testing.T) {
	cnf := &CNF{}
	cnf.AddClause(1, 2)
	cnf.AddClause(-1, 2)
	cnf.AddClause(1, -2)
	cnf.AddClause(-1, -2)
	cases := map[string]string{
		"non-RUP lemma":   "3 0\n0\n",
		"no empty clause": "2 0\n1 0\n",
		"bad literal":     "x 0\n",
		"missing zero":    "1 2\n",
	}
	for name, proof := range cases {
		if err := CheckDRAT(cnf, strings.NewReader(proof)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// The genuine refutation is accepted: 2, then 1... unit propagation
	// of ¬2 hits (1 2),( -1 2) -> conflict, so "2" is RUP; then the
	// empty clause is RUP.
	if err := CheckDRAT(cnf, strings.NewReader("2 0\n0\n")); err != nil {
		t.Errorf("hand-written refutation rejected: %v", err)
	}
}

func TestDRATSatFormulaProofIncomplete(t *testing.T) {
	cnf := &CNF{}
	cnf.AddClause(1, 2)
	st, proof := solveWithProof(t, cnf)
	if st != Sat {
		t.Fatalf("%v", st)
	}
	if err := CheckDRAT(cnf, proof); err == nil {
		t.Fatal("proof for satisfiable formula accepted as refutation")
	}
}

func TestDRATGraphColoringCertificate(t *testing.T) {
	// End-to-end: K5 with 4 colors (direct encoding) is unroutable-
	// style unsat; the certificate must check.
	cnf := &CNF{}
	v := func(node, color int) int { return node*4 + color + 1 }
	for n := 0; n < 5; n++ {
		cnf.AddClause(v(n, 0), v(n, 1), v(n, 2), v(n, 3))
	}
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			for c := 0; c < 4; c++ {
				cnf.AddClause(-v(a, c), -v(b, c))
			}
		}
	}
	st, proof := solveWithProof(t, cnf)
	if st != Unsat {
		t.Fatalf("%v", st)
	}
	if proof.Len() == 0 {
		t.Fatal("empty proof")
	}
	if err := CheckDRAT(cnf, proof); err != nil {
		t.Fatalf("coloring certificate rejected: %v", err)
	}
}

// TestDRATLoadTimeUnsatProofCloses: a formula refuted while loading
// (conflicting unit clauses, zero search conflicts) must still produce
// a checkable proof — solveCNFOn used to return Unsat before Solve()
// could log the closing empty clause, leaving an empty proof that
// CheckDRAT rejects.
func TestDRATLoadTimeUnsatProofCloses(t *testing.T) {
	cases := map[string]*CNF{
		"conflicting units": func() *CNF {
			c := &CNF{}
			c.AddClause(1)
			c.AddClause(-1)
			return c
		}(),
		"unit chain": func() *CNF {
			c := &CNF{}
			c.AddClause(1)
			c.AddClause(-1, 2)
			c.AddClause(-2)
			return c
		}(),
	}
	for name, cnf := range cases {
		var proof bytes.Buffer
		r := SolveCNFContext(context.Background(), cnf, Options{ProofWriter: &proof})
		if r.Status != Unsat {
			t.Fatalf("%s: status %v", name, r.Status)
		}
		if err := CheckDRAT(cnf, bytes.NewReader(proof.Bytes())); err != nil {
			t.Fatalf("%s: load-time-unsat proof rejected: %v", name, err)
		}
	}
}

func TestDRATTruncatedByBudget(t *testing.T) {
	// A budget-interrupted solve leaves a truncated proof; the checker
	// must reject it (no empty clause) without crashing.
	var proof bytes.Buffer
	cnf := php(10, 9)
	s := New(Options{ProofWriter: &proof, ConflictBudget: 50})
	s.Load(cnf)
	if st := s.Solve(); st != Unknown {
		t.Skipf("instance solved within budget: %v", st)
	}
	if err := s.ProofError(); err != nil {
		t.Fatal(err)
	}
	if err := CheckDRAT(cnf, &proof); err == nil {
		t.Fatal("truncated proof accepted as refutation")
	}
}

// failWriter errors after n bytes, exercising proof I/O error paths.
type failWriter struct{ left int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, errFail
	}
	n := len(p)
	if n > f.left {
		n = f.left
	}
	f.left -= n
	if n < len(p) {
		return n, errFail
	}
	return n, nil
}

var errFail = fmt.Errorf("simulated write failure")

func TestProofWriterFailureSurfaces(t *testing.T) {
	s := New(Options{ProofWriter: &failWriter{left: 8}})
	s.Load(php(6, 5))
	if st := s.Solve(); st != Unsat {
		t.Fatalf("%v", st)
	}
	if err := s.ProofError(); err == nil {
		t.Fatal("write failure not surfaced by ProofError")
	}
}
