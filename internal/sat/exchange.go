package sat

// Clause-exchange integration: the solver side of the clause-sharing
// portfolio (the exchange itself lives in internal/share). The solver
// offers every learnt clause to the exchange as it is derived, and
// integrates foreign clauses at restart boundaries — the only points
// where the trail is rewound to level 0, so an import is an ordinary
// database extension and never perturbs an in-flight search.
//
// Soundness has two regimes. Without a proof writer the exchange is
// trusted: peers run on the same formula, so their learnt clauses are
// logical consequences and adding them preserves equivalence (a
// corrupted exchange is exactly what the portfolio's -verify paranoia
// and the share failpoints exist to catch). With a proof writer every
// import must additionally be RUP with respect to the importing
// solver's current database — otherwise logging it would break the
// DRAT certificate, which is checked clause by clause with no
// knowledge of the peer that derived it. Non-RUP imports are simply
// rejected in proof mode; the certificate stays independently
// checkable by CheckDRAT.

// ClauseExchange connects a Solver to a clause-sharing peer group. The
// solver calls Learnt for every learnt clause as it is derived and
// Restart at every restart boundary, both from the solving goroutine;
// the implementation decides filtering, buffering and which foreign
// clauses to deliver back.
type ClauseExchange interface {
	// Learnt offers a just-derived learnt clause (asserting literal
	// first) with its literal-block distance. The slice is scratch owned
	// by the solver; implementations must copy what they keep and must
	// not block.
	Learnt(lits []Lit, lbd int32)
	// Restart marks a restart boundary: the exchange publishes the
	// clauses buffered by Learnt and delivers foreign clauses through
	// add, which reports whether the solver accepted the clause. add may
	// only be called during this Restart invocation, from the calling
	// goroutine; the literal slice passed to add is owned by the
	// exchange.
	Restart(add func(lits []Lit, lbd int32) bool)
}

// exchangeAtRestart runs the clause exchange at a restart boundary
// (decision level 0): buffered learnt clauses become visible to the
// peer group and foreign clauses are integrated into the database. It
// returns false when an import refuted the database — the solve must
// answer Unsat.
func (s *Solver) exchangeAtRestart() bool {
	alive := true
	s.opts.Exchange.Restart(func(lits []Lit, lbd int32) bool {
		if !alive {
			return false
		}
		accepted, ok := s.importShared(lits, lbd)
		if !ok {
			alive = false
		}
		return accepted
	})
	return alive
}

// importShared integrates one foreign clause at a restart boundary.
// accepted reports whether the clause entered the database (or refuted
// it); alive is false when the database is now unsatisfiable.
func (s *Solver) importShared(lits []Lit, lbd int32) (accepted, alive bool) {
	// Reduce against the level-0 trail into the import scratch buffer:
	// drop falsified literals, reject satisfied clauses, tautologies,
	// duplicates and clauses mentioning variables this solver never
	// created (a foreign clause from a different formula).
	buf := s.importBuf[:0]
	for _, l := range lits {
		if l.Var() < 0 || int(l.Var()) >= len(s.assigns) {
			s.importBuf = buf
			return false, true
		}
		switch s.value(l) {
		case lTrue:
			s.importBuf = buf
			return false, true
		case lFalse:
			continue
		}
		dup := false
		for _, p := range buf {
			if p == l {
				dup = true
				break
			}
			if p == l.Neg() {
				s.importBuf = buf
				return false, true
			}
		}
		if !dup {
			buf = append(buf, l)
		}
	}
	s.importBuf = buf
	if len(buf) == 0 {
		// Every literal is false at level 0: the clause, trusted to be
		// implied by the formula, refutes the database. Proof mode cannot
		// take this shortcut — the refutation is not RUP here (the trail
		// is already saturated), so it is rejected instead of breaking
		// the certificate.
		if s.proof != nil {
			return false, true
		}
		s.Stats.Imported++
		s.ok = false
		return true, false
	}
	if s.proof != nil {
		if !s.importRUP(buf) {
			return false, true
		}
		s.proof.addClause(buf)
	}
	s.Stats.Imported++
	if len(buf) == 1 {
		s.uncheckedEnqueue(buf[0], RefUndef)
		if s.propagate() != RefUndef {
			if s.proof != nil {
				s.proof.addClause(nil)
			}
			s.ok = false
			return true, false
		}
		return true, true
	}
	if lbd < 1 {
		lbd = 1
	}
	if int(lbd) > len(buf) {
		lbd = int32(len(buf))
	}
	ref := s.ca.alloc(buf, true, lbd)
	s.learnts = append(s.learnts, ref)
	s.attach(ref)
	return true, true
}

// importRUP reports whether the clause follows from the current
// database by reverse unit propagation: assuming all its literals
// false must produce a conflict. Runs on a throwaway decision level
// that is unwound before returning.
func (s *Solver) importRUP(lits []Lit) bool {
	s.trailLim = append(s.trailLim, len(s.trail))
	for _, l := range lits {
		s.uncheckedEnqueue(l.Neg(), RefUndef)
	}
	confl := s.propagate()
	s.cancelUntil(0)
	return confl != RefUndef
}

// splitmix64 is the SplitMix64 mixing function — the seed expander
// behind Options.Seed diversification (and, in internal/share, clause
// fingerprints and per-lane schedules).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
