package sat

import (
	"bytes"
	"testing"
)

// fakeExchange is a scripted ClauseExchange: deliver is invoked at
// every restart boundary with the round number (1-based) and the add
// callback; learnt offers are counted.
type fakeExchange struct {
	offered int
	rounds  int
	deliver func(round int, add func([]Lit, int32) bool)
}

func (f *fakeExchange) Learnt(lits []Lit, lbd int32) { f.offered++ }

func (f *fakeExchange) Restart(add func([]Lit, int32) bool) {
	f.rounds++
	if f.deliver != nil {
		f.deliver(f.rounds, add)
	}
}

func loadPHPInto(s *Solver, pigeons, holes int) {
	c := php(pigeons, holes)
	for _, cl := range c.Clauses {
		s.AddDimacsClause(cl...)
	}
}

// TestExchangeLearntOffersAndRestartRounds pins the hook contract: the
// solver offers every learnt clause and calls Restart once per restart
// boundary.
func TestExchangeLearntOffersAndRestartRounds(t *testing.T) {
	f := &fakeExchange{}
	s := New(Options{RestartBase: 1, Exchange: f})
	loadPHPInto(s, 7, 6)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP(7,6): got %v, want Unsat", st)
	}
	if f.offered == 0 {
		t.Fatal("no learnt clauses offered to the exchange")
	}
	if int64(f.rounds) != s.Stats.Restarts {
		t.Fatalf("Restart called %d times, solver restarted %d times", f.rounds, s.Stats.Restarts)
	}
}

// TestTrustedImportRefutation: without a proof writer the exchange is
// trusted, so importing a unit and then its negation refutes the
// database at the first restart boundary instead of paying for the
// full refutation.
func TestTrustedImportRefutation(t *testing.T) {
	f := &fakeExchange{}
	f.deliver = func(round int, add func([]Lit, int32) bool) {
		if round != 1 {
			return
		}
		if !add([]Lit{LitFromDimacs(1)}, 1) {
			t.Error("unit import rejected")
		}
		if !add([]Lit{LitFromDimacs(-1)}, 1) {
			t.Error("refuting import not accepted")
		}
	}
	s := New(Options{RestartBase: 1, Exchange: f})
	loadPHPInto(s, 7, 6)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want Unsat", st)
	}
	if f.rounds != 1 {
		t.Fatalf("refutation took %d rounds, want 1 (import shortcut not taken)", f.rounds)
	}
	if s.Stats.Imported != 2 {
		t.Fatalf("Stats.Imported = %d, want 2", s.Stats.Imported)
	}
}

// TestImportRejectsForeignAndSatisfied: clauses over unknown variables
// (a different formula's variable space) and clauses already satisfied
// at level 0 must be declined.
func TestImportRejectsForeignAndSatisfied(t *testing.T) {
	f := &fakeExchange{}
	f.deliver = func(round int, add func([]Lit, int32) bool) {
		if round != 1 {
			return
		}
		if add([]Lit{LitFromDimacs(5000)}, 1) {
			t.Error("clause over an unknown variable accepted")
		}
		if !add([]Lit{LitFromDimacs(1)}, 1) {
			t.Error("fresh unit rejected")
		}
		if add([]Lit{LitFromDimacs(1), LitFromDimacs(2)}, 1) {
			t.Error("clause satisfied at level 0 accepted")
		}
	}
	s := New(Options{RestartBase: 1, Exchange: f})
	loadPHPInto(s, 7, 6)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want Unsat", st)
	}
}

// TestProofModeRUPGateKeepsCertificateValid: in proof mode an import
// is admitted only when it is RUP against the importer's database, so
// the resulting DRAT certificate must check out even though foreign
// clauses were injected mid-solve.
func TestProofModeRUPGateKeepsCertificateValid(t *testing.T) {
	cnf := php(7, 6)
	var proof bytes.Buffer
	f := &fakeExchange{}
	f.deliver = func(round int, add func([]Lit, int32) bool) {
		if round != 1 {
			return
		}
		// Not RUP at round 1: nothing propagates from assuming pigeon 0
		// out of hole 0 (its at-least-one clause still has 5 open
		// literals), so the unit must be rejected rather than logged.
		if add([]Lit{LitFromDimacs(1)}, 1) {
			t.Error("non-RUP unit admitted in proof mode")
		}
		// RUP (it is an original clause: assuming both literals false
		// falsifies it directly), so it may be admitted and logged.
		if !add([]Lit{LitFromDimacs(-1), LitFromDimacs(-7)}, 2) {
			t.Error("RUP clause rejected in proof mode")
		}
	}
	s := New(Options{RestartBase: 1, ProofWriter: &proof, Exchange: f})
	loadPHPInto(s, 7, 6)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want Unsat", st)
	}
	if s.Stats.Imported == 0 {
		t.Fatal("RUP import not counted")
	}
	if err := CheckDRAT(cnf, bytes.NewReader(proof.Bytes())); err != nil {
		t.Fatalf("DRAT certificate with imported lemma rejected: %v", err)
	}
}

// TestSeedDiversifiesAndReplays: distinct seeds must change the search
// trajectory; an identical seed must reproduce it exactly.
func TestSeedDiversifiesAndReplays(t *testing.T) {
	run := func(seed int64) Stats {
		s := New(Options{Seed: seed})
		loadPHPInto(s, 7, 6)
		if st := s.Solve(); st != Unsat {
			t.Fatalf("seed %d: got %v, want Unsat", seed, st)
		}
		return s.Stats
	}
	a, b, c := run(1), run(2), run(3)
	if a == b && b == c {
		t.Fatalf("three seeds, identical statistics %+v; seeding has no effect", a)
	}
	if again := run(1); again != a {
		t.Fatalf("seed 1 replay differs:\n  %+v\n  %+v", a, again)
	}
	base := New(Options{})
	loadPHPInto(base, 7, 6)
	if st := base.Solve(); st != Unsat {
		t.Fatalf("unseeded: got %v, want Unsat", st)
	}
	if base.Stats == a && base.Stats == b {
		t.Fatal("seeded runs indistinguishable from the unseeded baseline")
	}
}
