package sat

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseDimacs checks that ParseDIMACS never panics, that every
// formula it accepts is structurally valid, and that accepted formulas
// survive a WriteDIMACS/ParseDIMACS round trip unchanged.
func FuzzParseDimacs(f *testing.F) {
	seeds := []string{
		"p cnf 2 1\n1 2 0\n",
		"p cnf 2 1\n1 2", // missing final terminator is tolerated
		"c conflict graph of instance alu2\np cnf 3 2\n1 -2 0\n-1\n3 0\n",
		"p cnf 0 0\n",
		"p cnf 1 1\n0\n",              // empty clause
		"p cnf 2 3\n1 0\n",            // fewer clauses than declared
		"p cnf 1 1\n5 -5 0\n",         // literals beyond the header grow NumVars
		"p cnf x y\n",                 // malformed header
		"1 2 0\n",                     // clause before header
		"p cnf 2 1\np cnf 2 1\n1 0\n", // duplicate header
		"\n\nc only comments\nc and blanks\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		cnf, err := ParseDIMACS(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := cnf.Validate(); err != nil {
			t.Fatalf("accepted formula fails Validate: %v\ninput: %q", err, in)
		}
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, cnf); err != nil {
			t.Fatalf("write: %v", err)
		}
		back, err := ParseDIMACS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparse of own output failed: %v\noutput: %q", err, buf.String())
		}
		if back.NumVars != cnf.NumVars || len(back.Clauses) != len(cnf.Clauses) {
			t.Fatalf("round trip changed shape: vars %d->%d, clauses %d->%d",
				cnf.NumVars, back.NumVars, len(cnf.Clauses), len(back.Clauses))
		}
		for i, cl := range cnf.Clauses {
			if len(back.Clauses[i]) != len(cl) {
				t.Fatalf("clause %d: length %d -> %d", i, len(cl), len(back.Clauses[i]))
			}
			for j, l := range cl {
				if back.Clauses[i][j] != l {
					t.Fatalf("clause %d literal %d: %d -> %d", i, j, l, back.Clauses[i][j])
				}
			}
		}
	})
}
