package sat

// varHeap is a binary max-heap of variables ordered by activity, with
// an index map for decrease/increase-key, as used for VSIDS decision
// ordering. It is a dedicated implementation rather than
// container/heap so that updates avoid interface-call overhead on the
// solver's hottest non-propagation path.
type varHeap struct {
	heap    []Var // heap of variables
	indices []int // variable -> position in heap, -1 if absent
	act     *[]float64
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{act: act}
}

// reset empties the heap for solver reuse, retaining capacity; grow
// refills the index map as variables are reintroduced.
func (h *varHeap) reset() {
	h.heap = h.heap[:0]
	h.indices = h.indices[:0]
}

func (h *varHeap) less(a, b Var) bool {
	return (*h.act)[a] > (*h.act)[b]
}

func (h *varHeap) grow(n int) {
	for len(h.indices) < n {
		h.indices = append(h.indices, -1)
	}
}

func (h *varHeap) inHeap(v Var) bool {
	return int(v) < len(h.indices) && h.indices[v] >= 0
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) percolateUp(i int) {
	x := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(x, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.indices[h.heap[p]] = i
		i = p
	}
	h.heap[i] = x
	h.indices[x] = i
}

func (h *varHeap) percolateDown(i int) {
	x := h.heap[i]
	n := len(h.heap)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && h.less(h.heap[r], h.heap[l]) {
			child = r
		}
		if !h.less(h.heap[child], x) {
			break
		}
		h.heap[i] = h.heap[child]
		h.indices[h.heap[i]] = i
		i = child
	}
	h.heap[i] = x
	h.indices[x] = i
}

// insert puts v into the heap if it is not already there.
func (h *varHeap) insert(v Var) {
	h.grow(int(v) + 1)
	if h.inHeap(v) {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap) - 1
	h.percolateUp(len(h.heap) - 1)
}

// removeMin pops the highest-activity variable.
func (h *varHeap) removeMin() Var {
	x := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap[0] = last
	h.indices[last] = 0
	h.indices[x] = -1
	h.heap = h.heap[:len(h.heap)-1]
	if len(h.heap) > 1 {
		h.percolateDown(0)
	}
	return x
}

// decrease re-heapifies after v's activity increased (so v may need to
// move toward the root; the name follows MiniSat's min-heap wording).
func (h *varHeap) decrease(v Var) {
	if h.inHeap(v) {
		h.percolateUp(h.indices[v])
	}
}
