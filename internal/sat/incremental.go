package sat

import "context"

// This file is the incremental interface of the solver, in the style of
// the MiniSat "solve under assumptions" API (Eén & Sörensson): a single
// Solver instance answers a sequence of queries that share one clause
// database, so learnt clauses, VSIDS activity and saved phases carry
// over from one query to the next. Between queries the caller may add
// further problem clauses with AddClause/AddDimacsClause — the solver
// is always back at decision level 0 when a solve call returns, watch
// lists stay attached across calls, and new clauses are simplified
// against the level-0 trail exactly as during initial construction.
//
// Assumptions are temporary unit constraints: SolveAssuming(a1, ..., an)
// decides satisfiability of the clause database conjoined with the
// assumption literals, without adding them as clauses. Internally each
// assumption occupies one decision level below all search decisions, so
// conflict analysis and backtracking treat them like decisions; learnt
// clauses therefore never depend on the assumptions being true (any
// assumption involved in a conflict appears negated inside the learnt
// clause) and remain sound for later calls with different assumptions.
//
// When a solve returns Unsat, FailedAssumptions distinguishes the two
// flavours of unsatisfiability:
//   - nil core: the clause database itself is unsatisfiable (the solver
//     is poisoned; every further call returns Unsat), and
//   - non-nil core: a subset of the assumptions that is inconsistent
//     with the database ("final-conflict analysis"); dropping or
//     changing assumptions can make the next call satisfiable.
//
// DRAT interaction: learnt clauses are derived by resolution on reason
// clauses only — assumption literals are decisions and are never
// resolved away — so every lemma logged to Options.ProofWriter is RUP
// with respect to the clause database alone and the proof log stays
// valid across assumption-based calls. The empty clause is emitted only
// when the database itself is refuted (nil failed-assumption core); an
// Unsat answer under assumptions produces no empty clause, because none
// is derivable. A session of assumption probes that ends in a genuine
// Unsat therefore yields one contiguous, checkable DRAT refutation (see
// TestIncrementalDRAT).

// SolveAssuming solves the current clause database under the given
// assumption literals. It may be called repeatedly, interleaved with
// AddClause, on one Solver; state from earlier calls (learnt clauses,
// activity, phases, statistics) is retained. Unlike Solve, it clears
// any pending Stop so that a cancelled earlier call does not poison
// later ones; use SolveAssumingContext for per-call cancellation.
//
// After Sat, Model holds an assignment satisfying the database and all
// assumptions. After Unsat, FailedAssumptions reports which assumptions
// (if any) were to blame.
func (s *Solver) SolveAssuming(assumps ...Lit) Status {
	s.stopped.Store(false)
	return s.solveWith(assumps)
}

// SolveAssumingContext is SolveAssuming with context-based
// cancellation: the solve returns Unknown promptly once ctx is
// cancelled or its deadline passes. The cancellation applies to this
// call only; the solver remains usable for further incremental calls.
func (s *Solver) SolveAssumingContext(ctx context.Context, assumps ...Lit) Status {
	s.stopped.Store(false)
	if ctx.Err() != nil {
		return Unknown
	}
	if ctx.Done() == nil {
		return s.solveWith(assumps)
	}
	// The watcher is joined before returning: if it ran at all, its
	// Stop lands before this call returns, never inside a later solve
	// on the same Solver. (With a plain `defer close(done)` the watcher
	// can wake after the caller has cancelled ctx, see both channels
	// ready, pick ctx.Done() at random and poison the next call.)
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		select {
		case <-ctx.Done():
			s.Stop()
		case <-done:
		}
	}()
	st := s.solveWith(assumps)
	close(done)
	<-exited
	return st
}

// FailedAssumptions returns the failed-assumption core of the last
// Unsat answer: a subset of the assumptions passed to the last solve
// call that is inconsistent with the clause database. A nil result
// after Unsat means the database is unsatisfiable regardless of
// assumptions. The slice is valid until the next solve call.
func (s *Solver) FailedAssumptions() []Lit { return s.conflictCore }

// NumLearnts returns the current learnt-clause database size — the
// clauses an incremental caller reuses across SolveAssuming calls.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// analyzeFinal computes the failed-assumption core when assumption p is
// found false while establishing the assumption decision levels: the
// subset of assumptions that (with the clause database) imply ¬p. It
// walks the trail from the top, expanding propagated literals through
// their reason clauses and collecting decision literals — which, at
// this point of the search, are all assumptions.
func (s *Solver) analyzeFinal(p Lit) {
	s.conflictCore = append(s.conflictCore[:0], p)
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.Var()] = 1
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if s.seen[v] == 0 {
			continue
		}
		if r := s.reason[v]; r == RefUndef {
			if s.level[v] > 0 {
				s.conflictCore = append(s.conflictCore, s.trail[i])
			}
		} else {
			for _, qw := range s.ca.lits(r)[1:] {
				if q := Lit(qw); s.level[q.Var()] > 0 {
					s.seen[q.Var()] = 1
				}
			}
		}
		s.seen[v] = 0
	}
	s.seen[p.Var()] = 0
}

// SolverSink adapts a Solver to the clause-sink consumers in package
// core: encodings stream DIMACS clauses straight into the solver with
// no intermediate CNF materialization. If a streamed clause makes the
// formula trivially unsatisfiable the solver records that (subsequent
// adds become no-ops) and the next solve call returns Unsat.
type SolverSink struct{ S *Solver }

// AddClause implements the clause-sink contract over AddDimacsClause.
func (ss SolverSink) AddClause(lits ...int) { ss.S.AddDimacsClause(lits...) }
