package sat

import (
	"bytes"
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

func lit(d int) Lit { return LitFromDimacs(d) }

func TestSolveAssumingBasic(t *testing.T) {
	s := New(Options{})
	// (x1 ∨ x2) ∧ (¬x1 ∨ x3)
	s.AddDimacsClause(1, 2)
	s.AddDimacsClause(-1, 3)
	if st := s.SolveAssuming(); st != Sat {
		t.Fatalf("unconstrained: got %v, want Sat", st)
	}
	if st := s.SolveAssuming(lit(1), lit(-3)); st != Unsat {
		t.Fatalf("x1 ∧ ¬x3: got %v, want Unsat", st)
	}
	core := s.FailedAssumptions()
	if len(core) == 0 {
		t.Fatal("assumption Unsat with nil core")
	}
	// The same solver answers Sat again with compatible assumptions.
	if st := s.SolveAssuming(lit(1), lit(3)); st != Sat {
		t.Fatalf("x1 ∧ x3: got %v, want Sat", st)
	}
	m := s.Model()
	if !m[0] || !m[2] {
		t.Fatalf("model %v does not satisfy the assumptions", m)
	}
}

func TestSolveAssumingContradictoryAssumptions(t *testing.T) {
	s := New(Options{})
	s.AddDimacsClause(1, 2)
	if st := s.SolveAssuming(lit(3), lit(-3)); st != Unsat {
		t.Fatalf("got %v, want Unsat for x3 ∧ ¬x3", st)
	}
	core := s.FailedAssumptions()
	seen := map[Lit]bool{}
	for _, l := range core {
		seen[l] = true
	}
	if !seen[lit(3)] || !seen[lit(-3)] {
		t.Fatalf("core %v should contain both contradictory assumptions", core)
	}
}

func TestSolveAssumingLevelZeroFalse(t *testing.T) {
	s := New(Options{})
	s.AddDimacsClause(-1) // unit: x1 false
	s.AddDimacsClause(2, 3)
	if st := s.SolveAssuming(lit(1)); st != Unsat {
		t.Fatalf("got %v, want Unsat when assuming a level-0-false literal", st)
	}
	core := s.FailedAssumptions()
	if len(core) != 1 || core[0] != lit(1) {
		t.Fatalf("core %v, want [x1]", core)
	}
	// The database itself stays satisfiable.
	if st := s.SolveAssuming(); st != Sat {
		t.Fatalf("got %v, want Sat without assumptions", st)
	}
}

func TestSolveAssumingCoreIsSubset(t *testing.T) {
	s := New(Options{})
	// Chain: x1 → x2 → x3; assuming x1 and ¬x3 is inconsistent, x5 is
	// irrelevant and must not pollute the core.
	s.AddDimacsClause(-1, 2)
	s.AddDimacsClause(-2, 3)
	if st := s.SolveAssuming(lit(5), lit(1), lit(-3)); st != Unsat {
		t.Fatalf("got %v, want Unsat", st)
	}
	for _, l := range s.FailedAssumptions() {
		if l == lit(5) {
			t.Fatalf("irrelevant assumption x5 in core %v", s.FailedAssumptions())
		}
	}
}

func TestAddClausesBetweenSolves(t *testing.T) {
	s := New(Options{})
	s.AddDimacsClause(1, 2)
	if st := s.SolveAssuming(); st != Sat {
		t.Fatal("expected Sat")
	}
	// Tighten the formula between calls: force ¬x1 then ¬x2.
	if !s.AddDimacsClause(-1) {
		t.Fatal("adding ¬x1 should keep the formula consistent")
	}
	if st := s.SolveAssuming(); st != Sat {
		t.Fatal("expected Sat after ¬x1")
	}
	if m := s.Model(); m[0] || !m[1] {
		t.Fatalf("model %v, want ¬x1 ∧ x2", m)
	}
	s.AddDimacsClause(-2)
	if st := s.SolveAssuming(); st != Unsat {
		t.Fatal("expected Unsat after ¬x1 ∧ ¬x2")
	}
	if s.FailedAssumptions() != nil {
		t.Fatalf("genuine Unsat must have nil core, got %v", s.FailedAssumptions())
	}
	// Poisoned database: every further call answers Unsat.
	if st := s.SolveAssuming(lit(3)); st != Unsat {
		t.Fatal("poisoned solver must stay Unsat")
	}
}

func TestSolveAssumingFreshVariables(t *testing.T) {
	s := New(Options{})
	s.AddDimacsClause(1, 2)
	// Assume over a variable the solver has never seen.
	if st := s.SolveAssuming(lit(-9)); st != Sat {
		t.Fatalf("got %v, want Sat", st)
	}
	if m := s.Model(); len(m) < 9 || m[8] {
		t.Fatalf("model %v must assign ¬x9", m)
	}
}

// TestSolveAssumingAgainstBruteForce cross-checks incremental solves
// under random assumption sets against the reference solver on the
// same formula with the assumptions added as unit clauses.
func TestSolveAssumingAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 30; round++ {
		vars := 6 + rng.Intn(6)
		cnf := randomCNF(rng, vars, vars*4, 3)
		s := New(Options{DisableMinimize: round%2 == 0})
		if !s.Load(cnf) {
			continue // trivially unsat at load time
		}
		for probe := 0; probe < 6; probe++ {
			var assumps []Lit
			ref := &CNF{NumVars: cnf.NumVars}
			for _, cl := range cnf.Clauses {
				ref.AddClause(append([]int(nil), cl...)...)
			}
			for v := 1; v <= vars; v++ {
				if rng.Intn(3) != 0 {
					continue
				}
				d := v
				if rng.Intn(2) == 0 {
					d = -v
				}
				assumps = append(assumps, lit(d))
				ref.AddClause(d)
			}
			want, _ := BruteForce(ref)
			got := s.SolveAssuming(assumps...)
			if got != want {
				t.Fatalf("round %d probe %d assumps %v: incremental %v, brute force %v",
					round, probe, assumps, got, want)
			}
			if got == Sat {
				m := s.Model()
				if !ref.Eval(m) {
					t.Fatalf("round %d probe %d: model violates formula+assumptions", round, probe)
				}
			} else {
				// The failed core must itself be inconsistent with the
				// original formula.
				coreRef := &CNF{NumVars: cnf.NumVars}
				for _, cl := range cnf.Clauses {
					coreRef.AddClause(append([]int(nil), cl...)...)
				}
				for _, l := range s.FailedAssumptions() {
					coreRef.AddClause(l.Dimacs())
				}
				if st, _ := BruteForce(coreRef); st != Unsat {
					t.Fatalf("round %d probe %d: failed core %v is not actually inconsistent",
						round, probe, s.FailedAssumptions())
				}
			}
		}
	}
}

// TestIncrementalLearntReuse verifies that learnt clauses survive
// across SolveAssuming calls — the property the incremental width
// search relies on.
func TestIncrementalLearntReuse(t *testing.T) {
	cnf := php(8, 7)
	s := New(Options{})
	if !s.Load(cnf) {
		t.Fatal("php should not be trivially unsat")
	}
	// A selector-guarded probe first: the guard variable is free, so
	// the instance stays Unsat (php is unsat on its own).
	if st := s.SolveAssuming(); st != Unsat {
		t.Fatalf("got %v, want Unsat", st)
	}
	if s.NumLearnts() == 0 && s.Stats.Learnt == 0 {
		t.Fatal("expected learnt clauses from the pigeonhole proof")
	}
}

func TestSolveAssumingContextCancel(t *testing.T) {
	cnf := php(10, 9)
	s := New(Options{})
	if !s.Load(cnf) {
		t.Fatal("unexpected trivial unsat")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if st := s.SolveAssumingContext(ctx); st != Unknown {
		t.Skipf("instance solved before the deadline (%v); cannot exercise cancellation", st)
	}
	// The solver must remain usable: a later call with a fresh context
	// is not poisoned by the earlier Stop.
	s2ctx := context.Background()
	if st := s.SolveAssumingContext(s2ctx, lit(1)); st == Unknown {
		t.Fatal("solver stayed cancelled after an expired context")
	}
}

// TestSolveAssumingContextStopDoesNotLeak pins the watcher-join
// semantics: once SolveAssumingContext returns, cancelling its context
// must never Stop the solver. (A watcher that outlives the call can
// wake after the caller's deferred cancel, see both its channels
// ready, pick ctx.Done() at random and silently kill the *next*
// incremental solve — observed as spurious Unknown probes in the
// width search under scheduler load.)
func TestSolveAssumingContextStopDoesNotLeak(t *testing.T) {
	s := New(Options{})
	s.AddDimacsClause(1, 2)
	for i := 0; i < 1000; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		if st := s.SolveAssumingContext(ctx, lit(1)); st != Sat {
			t.Fatalf("iter %d: got %v, want Sat", i, st)
		}
		cancel()
		runtime.Gosched()
		if s.stopped.Load() {
			t.Fatalf("iter %d: a stale context watcher stopped the solver after its call returned", i)
		}
	}
}

func TestSolveAssumingAlreadyCancelledContext(t *testing.T) {
	s := New(Options{})
	s.AddDimacsClause(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if st := s.SolveAssumingContext(ctx); st != Unknown {
		t.Fatalf("got %v, want Unknown for a cancelled context", st)
	}
	if st := s.SolveAssumingContext(context.Background()); st != Sat {
		t.Fatalf("got %v, want Sat on retry", st)
	}
}

// TestIncrementalDRAT checks the documented DRAT interaction: lemmas
// learnt during assumption-based probes are RUP with respect to the
// clause database alone, so a session of probes that ends in a genuine
// Unsat yields one contiguous checkable refutation.
func TestIncrementalDRAT(t *testing.T) {
	var proof bytes.Buffer
	cnf := php(7, 6)
	// Guard every pigeon's at-least-one clause with selector variable
	// g (DIMACS index = NumVars+1): the formula is Sat while g may be
	// false, Unsat under assumption g.
	sel := cnf.NumVars + 1
	guarded := &CNF{NumVars: sel}
	for _, cl := range cnf.Clauses {
		if len(cl) > 2 {
			guarded.AddClause(append(append([]int(nil), cl...), -sel)...)
		} else {
			guarded.AddClause(append([]int(nil), cl...)...)
		}
	}
	s := New(Options{ProofWriter: &proof})
	if !s.Load(guarded) {
		t.Fatal("unexpected trivial unsat")
	}
	if st := s.SolveAssuming(lit(sel)); st != Unsat {
		t.Fatalf("guarded probe: got %v, want Unsat", st)
	}
	if s.FailedAssumptions() == nil {
		t.Fatal("guarded probe must blame the selector assumption")
	}
	if st := s.SolveAssuming(lit(-sel)); st != Sat {
		t.Fatalf("relaxed probe: got %v, want Sat", st)
	}
	// Now make the selector permanent: the database becomes genuinely
	// unsatisfiable and the proof must close with the empty clause.
	s.AddDimacsClause(sel)
	if st := s.SolveAssuming(); st != Unsat {
		t.Fatal("expected genuine Unsat after asserting the selector")
	}
	if s.FailedAssumptions() != nil {
		t.Fatal("genuine Unsat must have a nil core")
	}
	if err := s.ProofError(); err != nil {
		t.Fatal(err)
	}
	// The proof is checked against the final database (original clauses
	// plus the asserted selector unit).
	guarded.AddClause(sel)
	if err := CheckDRAT(guarded, bytes.NewReader(proof.Bytes())); err != nil {
		t.Fatalf("incremental DRAT proof rejected: %v", err)
	}
}

// TestSolveAssumingRepeatedWidths mimics the descending width search:
// a sequence of strictly stronger assumption sets over one solver, with
// per-call conflict budgets bounding each probe independently.
func TestSolveAssumingConflictBudgetPerCall(t *testing.T) {
	cnf := php(9, 8)
	s := New(Options{ConflictBudget: 5})
	if !s.Load(cnf) {
		t.Fatal("unexpected trivial unsat")
	}
	first := s.SolveAssuming()
	if first != Unknown {
		t.Skipf("php(9,8) solved within 5 conflicts (%v)?", first)
	}
	// The budget is per call, not lifetime: a second call gets its own
	// 5 conflicts instead of returning immediately.
	before := s.Stats.Conflicts
	if st := s.SolveAssuming(); st != Unknown {
		t.Skipf("unexpectedly solved on second budgeted call (%v)", st)
	}
	if s.Stats.Conflicts <= before {
		t.Fatal("second call did no work: conflict budget is not per-call")
	}
}
