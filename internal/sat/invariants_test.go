package sat

import (
	"fmt"
	"math/rand"
	"testing"
)

// checkInvariants verifies structural solver invariants at decision
// level 0: every stored clause is watched on exactly its first two
// literals, watch lists reference live clauses, the trail is consistent
// with the assignment, and the arena's garbage accounting is sound.
func (s *Solver) checkInvariants() error {
	if s.decisionLevel() != 0 {
		return fmt.Errorf("invariants checked above level 0")
	}
	all := map[ClauseRef]bool{}
	liveWords := 0
	for _, list := range [2][]ClauseRef{s.clauses, s.learnts} {
		for _, ref := range list {
			if all[ref] {
				return fmt.Errorf("clause ref %d stored twice", ref)
			}
			all[ref] = true
			liveWords += s.ca.words(ref)
		}
	}
	watched := map[ClauseRef]int{}
	for l := range s.watches {
		for _, w := range s.watches[l] {
			if !all[w.ref] {
				return fmt.Errorf("watch list references removed clause")
			}
			watched[w.ref]++
			lits := s.ca.lits(w.ref)
			if Lit(lits[0]) != Lit(l) && Lit(lits[1]) != Lit(l) {
				return fmt.Errorf("clause watched on a non-watch literal")
			}
		}
	}
	for ref := range all {
		if s.ca.size(ref) < 2 {
			return fmt.Errorf("stored clause with %d literals", s.ca.size(ref))
		}
		if watched[ref] != 2 {
			return fmt.Errorf("clause watched %d times, want 2", watched[ref])
		}
	}
	// Arena accounting: live words plus recorded garbage must exactly
	// tile the arena.
	if liveWords+s.ca.wasted != len(s.ca.data) {
		return fmt.Errorf("arena accounting: %d live + %d wasted != %d total",
			liveWords, s.ca.wasted, len(s.ca.data))
	}
	for v, r := range s.reason {
		if r == RefUndef {
			continue
		}
		if s.assigns[v] == lUndef {
			continue // stale reason of an unassigned var is never read
		}
		if !all[r] {
			return fmt.Errorf("var %d reason references removed clause", v)
		}
		if Lit(s.ca.lits(r)[0]).Var() != Var(v) {
			return fmt.Errorf("var %d reason clause does not propagate it", v)
		}
	}
	for i, l := range s.trail {
		if s.value(l) != lTrue {
			return fmt.Errorf("trail[%d] not true under assignment", i)
		}
	}
	if s.qhead > len(s.trail) {
		return fmt.Errorf("qhead %d beyond trail %d", s.qhead, len(s.trail))
	}
	return nil
}

func TestInvariantsAfterSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 40; trial++ {
		s := New(Options{})
		cnf := randomCNF(rng, 10+rng.Intn(30), 60+rng.Intn(120), 3)
		if s.Load(cnf) {
			s.Solve()
		}
		if err := s.checkInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestInvariantsAfterBudgetedSolve(t *testing.T) {
	// Interrupted searches (restart path, reduceDB path) must leave the
	// solver structurally sound too.
	s := New(Options{ConflictBudget: 400})
	s.Load(php(10, 9))
	if st := s.Solve(); st != Unknown {
		t.Skipf("instance solved within budget: %v", st)
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsAfterReduceDB(t *testing.T) {
	// Force learnt-clause deletion by solving something conflict-heavy
	// under a small learnt-database cap, then check structure. PHP(9,8)
	// generates thousands of conflicts, so the cap makes reduceDB delete
	// clauses and (once a fifth of the arena is garbage) compact the
	// arena.
	s := New(Options{LearntLimit: 300})
	s.Load(php(9, 8))
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v", st)
	}
	if s.Stats.Removed == 0 {
		t.Fatalf("reduceDB never deleted a clause; invariant test is vacuous")
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsAfterReset(t *testing.T) {
	// A reused solver must be structurally indistinguishable from a
	// fresh one, across problems of different shapes and answers.
	rng := rand.New(rand.NewSource(909))
	s := New(Options{})
	for trial := 0; trial < 40; trial++ {
		s.Reset(Options{})
		cnf := randomCNF(rng, 10+rng.Intn(30), 60+rng.Intn(120), 3)
		if s.Load(cnf) {
			s.Solve()
		}
		if err := s.checkInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	if s.Resets() != 40 {
		t.Fatalf("Resets() = %d, want 40", s.Resets())
	}
}
