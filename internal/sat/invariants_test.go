package sat

import (
	"fmt"
	"math/rand"
	"testing"
)

// checkInvariants verifies structural solver invariants at decision
// level 0: every stored clause is watched on exactly its first two
// literals, watch lists reference live clauses, and the trail is
// consistent with the assignment.
func (s *Solver) checkInvariants() error {
	if s.decisionLevel() != 0 {
		return fmt.Errorf("invariants checked above level 0")
	}
	all := map[*clause]bool{}
	for _, c := range s.clauses {
		all[c] = true
	}
	for _, c := range s.learnts {
		all[c] = true
	}
	watched := map[*clause]int{}
	for l := range s.watches {
		for _, w := range s.watches[l] {
			if !all[w.c] {
				return fmt.Errorf("watch list references removed clause")
			}
			watched[w.c]++
			if w.c.lits[0] != Lit(l) && w.c.lits[1] != Lit(l) {
				return fmt.Errorf("clause watched on a non-watch literal")
			}
		}
	}
	for c := range all {
		if len(c.lits) < 2 {
			return fmt.Errorf("stored clause with %d literals", len(c.lits))
		}
		if watched[c] != 2 {
			return fmt.Errorf("clause watched %d times, want 2", watched[c])
		}
	}
	for i, l := range s.trail {
		if s.value(l) != lTrue {
			return fmt.Errorf("trail[%d] not true under assignment", i)
		}
	}
	if s.qhead > len(s.trail) {
		return fmt.Errorf("qhead %d beyond trail %d", s.qhead, len(s.trail))
	}
	return nil
}

func TestInvariantsAfterSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 40; trial++ {
		s := New(Options{})
		cnf := randomCNF(rng, 10+rng.Intn(30), 60+rng.Intn(120), 3)
		if s.Load(cnf) {
			s.Solve()
		}
		if err := s.checkInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestInvariantsAfterBudgetedSolve(t *testing.T) {
	// Interrupted searches (restart path, reduceDB path) must leave the
	// solver structurally sound too.
	s := New(Options{ConflictBudget: 400})
	s.Load(php(10, 9))
	if st := s.Solve(); st != Unknown {
		t.Skipf("instance solved within budget: %v", st)
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsAfterReduceDB(t *testing.T) {
	// Force learnt-clause deletion by solving something conflict-heavy,
	// then check structure. PHP(9,8) generates thousands of conflicts.
	s := New(Options{})
	s.Load(php(9, 8))
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v", st)
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
