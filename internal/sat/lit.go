// Package sat implements a conflict-driven clause-learning (CDCL)
// Boolean satisfiability solver in the MiniSat family, together with
// DIMACS CNF input/output and a small reference solver used by tests.
//
// The solver provides the substrate the paper relied on external tools
// (siege_v4, MiniSat) for: deciding satisfiability of the CNF formulas
// produced by the CSP-to-SAT encodings in package core. It supports
// cooperative cancellation so that portfolio runs (package portfolio)
// can stop losing strategies as soon as one strategy answers.
package sat

import "fmt"

// Var is a 0-based propositional variable index.
type Var int32

// Lit is a literal: a variable together with a sign. The encoding is
// the usual MiniSat one, Lit = Var*2 + sign, where sign 1 means the
// negated literal. The zero value is the positive literal of variable 0;
// LitUndef is a sentinel that never denotes a real literal.
type Lit int32

// LitUndef is a sentinel literal used internally to mean "no literal".
const LitUndef Lit = -1

// MkLit constructs the literal for v, negated when neg is true.
func MkLit(v Var, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v << 1) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v<<1) | 1 }

// Var returns the variable underlying l.
func (l Lit) Var() Var { return Var(l >> 1) }

// Sign reports whether l is a negated literal.
func (l Lit) Sign() bool { return l&1 == 1 }

// Neg returns the complement of l.
func (l Lit) Neg() Lit { return l ^ 1 }

// Dimacs returns the DIMACS integer form of l: 1-based variable index,
// negative when the literal is negated.
func (l Lit) Dimacs() int {
	v := int(l.Var()) + 1
	if l.Sign() {
		return -v
	}
	return v
}

// LitFromDimacs converts a non-zero DIMACS integer to a Lit.
// It panics on 0, which DIMACS reserves as the clause terminator.
func LitFromDimacs(d int) Lit {
	// Programmer error, not an input error (internal/robust taxonomy):
	// DIMACS parse paths reject literal 0 before constructing.
	if d == 0 {
		panic("sat: DIMACS literal 0")
	}
	if d < 0 {
		return NegLit(Var(-d - 1))
	}
	return PosLit(Var(d - 1))
}

func (l Lit) String() string {
	if l == LitUndef {
		return "undef"
	}
	return fmt.Sprintf("%d", l.Dimacs())
}

// Truth values used on the trail. lUndef must be the zero value so that
// freshly grown assignment slices start out unassigned.
const (
	lUndef int8 = 0
	lTrue  int8 = 1
	lFalse int8 = -1
)

// Status is the result of a Solve call.
type Status int

const (
	// Unknown means the solver gave up before reaching an answer
	// (cancellation or conflict budget exhausted).
	Unknown Status = iota
	// Sat means a satisfying assignment was found; see Solver.Model.
	Sat
	// Unsat means the formula was proved unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SATISFIABLE"
	case Unsat:
		return "UNSATISFIABLE"
	default:
		return "UNKNOWN"
	}
}
