package sat

import (
	"testing"
	"testing/quick"
)

func TestLitBasics(t *testing.T) {
	v := Var(7)
	p, n := PosLit(v), NegLit(v)
	if p.Var() != v || n.Var() != v {
		t.Fatalf("Var roundtrip failed: %v %v", p.Var(), n.Var())
	}
	if p.Sign() || !n.Sign() {
		t.Fatalf("Sign wrong: pos=%v neg=%v", p.Sign(), n.Sign())
	}
	if p.Neg() != n || n.Neg() != p {
		t.Fatalf("Neg not involutive")
	}
	if MkLit(v, false) != p || MkLit(v, true) != n {
		t.Fatalf("MkLit mismatch")
	}
	if p.Dimacs() != 8 || n.Dimacs() != -8 {
		t.Fatalf("Dimacs: got %d %d", p.Dimacs(), n.Dimacs())
	}
}

func TestLitDimacsRoundtrip(t *testing.T) {
	f := func(d int16) bool {
		if d == 0 {
			return true
		}
		return LitFromDimacs(int(d)).Dimacs() == int(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLitFromDimacsZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for DIMACS literal 0")
		}
	}()
	LitFromDimacs(0)
}

func TestNegIsComplement(t *testing.T) {
	f := func(raw uint16, sign bool) bool {
		l := MkLit(Var(raw), sign)
		return l.Neg().Var() == l.Var() && l.Neg().Sign() != l.Sign()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{Sat: "SATISFIABLE", Unsat: "UNSATISFIABLE", Unknown: "UNKNOWN"}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", st, st.String(), want)
		}
	}
}

func TestLubySequence(t *testing.T) {
	// The Luby sequence with y=2: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
	want := []float64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(2, int64(i)); got != w {
			t.Errorf("luby(2,%d) = %v, want %v", i, got, w)
		}
	}
}

func TestVarHeapOrdering(t *testing.T) {
	act := []float64{3, 1, 4, 1.5, 9, 2.6}
	h := newVarHeap(&act)
	for v := range act {
		h.insert(Var(v))
	}
	var got []Var
	for !h.empty() {
		got = append(got, h.removeMin())
	}
	want := []Var{4, 2, 0, 5, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("heap order = %v, want %v", got, want)
		}
	}
}

func TestVarHeapDecrease(t *testing.T) {
	act := []float64{1, 2, 3}
	h := newVarHeap(&act)
	for v := range act {
		h.insert(Var(v))
	}
	act[0] = 100
	h.decrease(0)
	if v := h.removeMin(); v != 0 {
		t.Fatalf("after bump, removeMin = %v, want 0", v)
	}
	// Reinsert an already-present variable must be a no-op.
	h.insert(1)
	h.insert(1)
	if n := len(h.heap); n != 2 {
		t.Fatalf("duplicate insert grew heap to %d", n)
	}
}
