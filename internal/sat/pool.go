package sat

import (
	"sync"
	"sync/atomic"
)

// Pool is a concurrency-safe pool of reusable Solvers built on
// sync.Pool. Repeated solver launches — width-search probes, portfolio
// lanes, batch experiment runs — draw a reset solver whose clause
// arena, watch lists and trail keep the capacity of earlier problems,
// instead of re-growing a fresh Solver from zero each time.
//
// The zero value is ready to use. Get hands out a solver configured
// for the given options; Put returns it once no solve is running and
// no other goroutine can still call Stop on it (join any cancellation
// watcher first — see SolveAssumingContext for the pattern).
type Pool struct {
	// MaxRetainedWords caps the footprint a solver may retain to be
	// pooled: a solver whose clause-arena capacity plus watch-list
	// capacity (in 4-byte words, see ArenaStats) exceeds the cap is
	// dropped by Put instead of recycled, so one huge instance in a
	// mixed-size workload cannot permanently bloat every later borrower.
	// 0 selects DefaultMaxRetainedWords; a negative value disables the
	// cap. Set it before the pool is first used.
	MaxRetainedWords int

	p sync.Pool

	gets        atomic.Int64
	reuses      atomic.Int64
	collections atomic.Int64
	freedWords  atomic.Int64
	arenaWords  atomic.Int64
	arenaCap    atomic.Int64
	oversized   atomic.Int64
}

// DefaultMaxRetainedWords is the retained-footprint cap applied when
// Pool.MaxRetainedWords is zero: 8M words (32 MiB), room for every
// Table-2 instance while still shedding pathological outliers.
const DefaultMaxRetainedWords = 1 << 23

// Get returns a solver reset and configured with opts. The solver is
// either a reused instance (retaining allocated capacity) or freshly
// created.
func (p *Pool) Get(opts Options) *Solver {
	p.gets.Add(1)
	if s, ok := p.p.Get().(*Solver); ok && s != nil {
		p.reuses.Add(1)
		s.Reset(opts)
		return s
	}
	return New(opts)
}

// Put returns a solver to the pool for reuse and folds its arena
// statistics into the pool's counters. A solver whose retained
// footprint exceeds MaxRetainedWords is dropped (counted in
// PoolStats.Oversized) rather than pooled. The caller must not use the
// solver afterwards, and no goroutine may still hold a Stop reference
// to it.
func (p *Pool) Put(s *Solver) {
	if s == nil {
		return
	}
	st := s.ArenaStats()
	p.collections.Add(st.Collections)
	p.freedWords.Add(st.FreedWords)
	p.arenaWords.Store(int64(st.Words))
	p.arenaCap.Store(int64(st.CapWords))
	limit := p.MaxRetainedWords
	if limit == 0 {
		limit = DefaultMaxRetainedWords
	}
	if limit > 0 && st.CapWords+st.WatchCapWords > limit {
		p.oversized.Add(1)
		return
	}
	p.p.Put(s)
}

// PoolStats is a point-in-time view of pool activity, the raw material
// of the sat.reset.* observability gauges.
type PoolStats struct {
	// Gets counts solvers handed out; Reuses counts how many of those
	// were recycled instances (Gets-Reuses solvers were built fresh).
	Gets, Reuses int64
	// Collections and FreedWords accumulate the arena compactions and
	// reclaimed words of every solver returned via Put.
	Collections, FreedWords int64
	// ArenaWords and ArenaCapWords are the arena length and capacity of
	// the most recently returned solver — a sample of how much clause
	// storage a pooled solver retains for its next use.
	ArenaWords, ArenaCapWords int64
	// Oversized counts solvers dropped by Put because their retained
	// footprint exceeded MaxRetainedWords.
	Oversized int64
}

// Stats returns a snapshot of the pool counters. It is safe to call
// concurrently with Get/Put.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Gets:          p.gets.Load(),
		Reuses:        p.reuses.Load(),
		Collections:   p.collections.Load(),
		FreedWords:    p.freedWords.Load(),
		ArenaWords:    p.arenaWords.Load(),
		ArenaCapWords: p.arenaCap.Load(),
		Oversized:     p.oversized.Load(),
	}
}
