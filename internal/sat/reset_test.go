package sat

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestResetSolvesIndependentProblems reuses one solver across problems
// with different shapes and answers and cross-checks every verdict
// against a fresh solver.
func TestResetSolvesIndependentProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	s := New(Options{})
	for trial := 0; trial < 60; trial++ {
		s.Reset(Options{})
		cnf := randomCNF(rng, 5+rng.Intn(25), 20+rng.Intn(150), 3)
		want := SolveCNFContext(context.Background(), cnf, Options{})
		got := Unsat
		if s.Load(cnf) {
			got = s.Solve()
		}
		if got != want.Status {
			t.Fatalf("trial %d: reused solver says %v, fresh solver says %v", trial, got, want.Status)
		}
		if got == Sat {
			model := make([]bool, cnf.NumVars)
			copy(model, s.Model())
			if !cnf.Eval(model) {
				t.Fatalf("trial %d: reused solver produced a non-model", trial)
			}
		}
	}
}

// TestResetAfterUnsat checks that Reset clears the poisoned (ok=false)
// state left by an unsatisfiable database.
func TestResetAfterUnsat(t *testing.T) {
	s := New(Options{})
	s.Load(php(6, 5))
	if st := s.Solve(); st != Unsat {
		t.Fatalf("php(6,5) = %v, want Unsat", st)
	}
	s.Reset(Options{})
	if !s.AddDimacsClause(1) || !s.AddDimacsClause(-1, 2) {
		t.Fatal("AddDimacsClause failed after Reset")
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("trivially satisfiable formula after Reset = %v, want Sat", st)
	}
	if m := s.Model(); !m[0] || !m[1] {
		t.Fatalf("model after Reset = %v, want both true", m[:2])
	}
}

// TestResetRetainsCapacity is the point of Reset: the arena and
// variable tables keep their backing storage across problems.
func TestResetRetainsCapacity(t *testing.T) {
	s := New(Options{})
	s.Load(php(8, 7))
	s.Solve()
	before := s.ArenaStats()
	if before.CapWords == 0 {
		t.Fatal("no arena capacity after a solve")
	}
	s.Reset(Options{})
	after := s.ArenaStats()
	if after.Words != 0 || after.Clauses != 0 || after.Learnts != 0 {
		t.Fatalf("Reset left live content: %+v", after)
	}
	if after.CapWords != before.CapWords {
		t.Fatalf("Reset dropped arena capacity: %d -> %d words", before.CapWords, after.CapWords)
	}
	if s.NumVars() != 0 {
		t.Fatalf("Reset left %d variables", s.NumVars())
	}
	// The retained capacity must actually be reusable.
	s.Load(php(8, 7))
	if st := s.Solve(); st != Unsat {
		t.Fatalf("php(8,7) after Reset = %v, want Unsat", st)
	}
}

// TestGarbageCollection forces reduceDB deletions until the arena
// compacts, and checks both the accounting and the verdict.
func TestGarbageCollection(t *testing.T) {
	s := New(Options{LearntLimit: 300})
	s.Load(php(9, 8))
	if st := s.Solve(); st != Unsat {
		t.Fatalf("php(9,8) = %v, want Unsat", st)
	}
	st := s.ArenaStats()
	if st.Collections == 0 {
		t.Fatalf("arena never compacted despite %d deletions", s.Stats.Removed)
	}
	if st.FreedWords == 0 {
		t.Fatal("compaction freed no words")
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDRATAcrossReset: a proof written after Reset must stand on its
// own — it may reference nothing from the previous problem.
func TestDRATAcrossReset(t *testing.T) {
	s := New(Options{})
	s.Load(php(6, 5))
	if st := s.Solve(); st != Unsat {
		t.Fatalf("first solve = %v, want Unsat", st)
	}
	var proof bytes.Buffer
	s.Reset(Options{ProofWriter: &proof, LearntLimit: 200})
	cnf := php(8, 7)
	s.Load(cnf)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("second solve = %v, want Unsat", st)
	}
	if err := s.ProofError(); err != nil {
		t.Fatal(err)
	}
	if err := CheckDRAT(cnf, &proof); err != nil {
		t.Fatalf("proof after Reset does not check: %v", err)
	}
}

// TestPoolConcurrent hammers one Pool from several goroutines and
// cross-checks each verdict against a fresh solver; run with -race
// this also validates Get/Put synchronization.
func TestPoolConcurrent(t *testing.T) {
	var pool Pool
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for trial := 0; trial < 20; trial++ {
				cnf := randomCNF(rng, 5+rng.Intn(20), 20+rng.Intn(100), 3)
				want := SolveCNFContext(context.Background(), cnf, Options{})
				got := SolveCNFReusing(context.Background(), &pool, cnf, Options{})
				if got.Status != want.Status {
					errs <- fmt.Errorf("pooled solver says %v, fresh solver says %v", got.Status, want.Status)
					return
				}
				if got.Status == Sat && !cnf.Eval(got.Model) {
					errs <- fmt.Errorf("pooled solver produced a non-model")
					return
				}
			}
		}(int64(1000 + g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := pool.Stats()
	if st.Gets != 8*20 {
		t.Fatalf("pool Gets = %d, want %d", st.Gets, 8*20)
	}
	if st.Reuses == 0 {
		t.Fatal("pool never reused a solver")
	}
}

// TestPoolDropsOversizedSolvers: a solver whose retained footprint
// exceeds MaxRetainedWords must be dropped by Put (and counted) so one
// huge instance cannot bloat every later borrower, while a pool with
// the cap disabled keeps recycling it.
func TestPoolDropsOversizedSolvers(t *testing.T) {
	capped := Pool{MaxRetainedWords: 64}
	s := capped.Get(Options{})
	s.Load(php(6, 5))
	if st := s.Solve(); st != Unsat {
		t.Fatalf("php(6,5) = %v, want Unsat", st)
	}
	if st := s.ArenaStats(); st.CapWords+st.WatchCapWords <= 64 {
		t.Fatalf("test premise broken: footprint %d words fits the 64-word cap", st.CapWords+st.WatchCapWords)
	}
	capped.Put(s)
	if st := capped.Stats(); st.Oversized != 1 {
		t.Fatalf("Oversized = %d, want 1", st.Oversized)
	}
	capped.Get(Options{})
	if st := capped.Stats(); st.Reuses != 0 {
		t.Fatalf("pool served a dropped solver: Reuses = %d", st.Reuses)
	}

	uncapped := Pool{MaxRetainedWords: -1}
	s2 := uncapped.Get(Options{})
	s2.Load(php(6, 5))
	if st := s2.Solve(); st != Unsat {
		t.Fatalf("php(6,5) = %v, want Unsat", st)
	}
	uncapped.Put(s2)
	if st := uncapped.Stats(); st.Oversized != 0 {
		t.Fatalf("cap disabled but Oversized = %d", st.Oversized)
	}
}
