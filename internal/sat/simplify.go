package sat

import "fmt"

// Simplified is the result of preprocessing a CNF formula: the reduced
// formula plus enough bookkeeping to extend any of its models to a
// model of the original formula.
type Simplified struct {
	// CNF is the reduced formula (same variable numbering; eliminated
	// variables simply no longer occur).
	CNF *CNF
	// Status is Unsat when preprocessing already refuted the formula,
	// Sat when it satisfied every clause, Unknown otherwise.
	Status Status
	// Fixed maps DIMACS variables to values forced by unit propagation
	// or chosen for pure literals.
	Fixed map[int]bool
	// Stats.
	UnitRounds, PureRounds int
}

// Simplify preprocesses a formula with unit propagation and
// pure-literal elimination to fixpoint. The input is not modified.
// Solving Simplify(f).CNF is equisatisfiable with f, and Extend turns
// any model of the reduced formula into a model of f.
func Simplify(input *CNF) *Simplified {
	res := &Simplified{Fixed: map[int]bool{}, Status: Unknown}
	clauses := make([][]int, 0, len(input.Clauses))
	for _, cl := range input.Clauses {
		clauses = append(clauses, cl)
	}
	valueOf := func(l int) (bool, bool) { // (value, known)
		v, ok := res.Fixed[abs(l)]
		if !ok {
			return false, false
		}
		return v == (l > 0), true
	}
	fix := func(l int) bool { // false on conflict
		want := l > 0
		if v, ok := res.Fixed[abs(l)]; ok {
			return v == want
		}
		res.Fixed[abs(l)] = want
		return true
	}

	for {
		changed := false
		// Unit propagation round: rewrite the clause list under the
		// current fixing, collecting new units.
		out := clauses[:0]
		for _, cl := range clauses {
			keep := make([]int, 0, len(cl))
			sat := false
			for _, l := range cl {
				if v, known := valueOf(l); known {
					if v {
						sat = true
						break
					}
					continue // falsified literal dropped
				}
				keep = append(keep, l)
			}
			if sat {
				changed = true
				continue
			}
			switch len(keep) {
			case 0:
				// All literals falsified: the original formula is
				// refuted. Callers must check Status before using CNF.
				res.Status = Unsat
				res.CNF = &CNF{NumVars: input.NumVars}
				return res
			case 1:
				if !fix(keep[0]) {
					res.Status = Unsat
					res.CNF = &CNF{NumVars: input.NumVars}
					return res
				}
				changed = true
				continue
			}
			if len(keep) != len(cl) {
				changed = true
			}
			out = append(out, keep)
		}
		clauses = out
		if changed {
			res.UnitRounds++
			continue
		}

		// Pure-literal round: a variable occurring with one polarity
		// only can be fixed to that polarity, satisfying its clauses.
		polarity := map[int]int8{} // var -> 1 pos only, -1 neg only, 0 both
		for _, cl := range clauses {
			for _, l := range cl {
				v := abs(l)
				s := int8(1)
				if l < 0 {
					s = -1
				}
				if old, ok := polarity[v]; !ok {
					polarity[v] = s
				} else if old != s {
					polarity[v] = 0
				}
			}
		}
		pure := false
		for v, s := range polarity {
			if s != 0 {
				fix(v * int(s))
				pure = true
			}
		}
		if !pure {
			break
		}
		res.PureRounds++
	}

	res.CNF = &CNF{NumVars: input.NumVars, Comments: input.Comments}
	for _, cl := range clauses {
		res.CNF.Clauses = append(res.CNF.Clauses, cl)
	}
	if len(clauses) == 0 {
		res.Status = Sat
	}
	return res
}

// Extend completes a model of the simplified formula into a model of
// the original: fixed variables take their forced values, variables
// free in both take the model's value (or false if the model is
// shorter).
func (s *Simplified) Extend(model []bool) ([]bool, error) {
	if s.Status == Unsat {
		return nil, fmt.Errorf("sat: cannot extend a model of an unsatisfiable formula")
	}
	out := make([]bool, s.CNF.NumVars)
	copy(out, model)
	for v, val := range s.Fixed {
		out[v-1] = val
	}
	return out, nil
}
