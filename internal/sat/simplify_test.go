package sat

import (
	"context"
	"math/rand"
	"testing"
)

func TestSimplifyUnitPropagation(t *testing.T) {
	cnf := &CNF{}
	cnf.AddClause(1)
	cnf.AddClause(-1, 2)
	cnf.AddClause(-2, 3, 4)
	s := Simplify(cnf)
	if s.Status == Unsat {
		t.Fatal("sat formula refuted")
	}
	if !s.Fixed[1] || !s.Fixed[2] {
		t.Fatalf("units not propagated: %v", s.Fixed)
	}
	// Remaining clause (3 4) is purified away, so everything is fixed.
	if s.Status != Sat {
		t.Fatalf("status %v, want Sat after pure elimination", s.Status)
	}
}

func TestSimplifyDetectsUnsat(t *testing.T) {
	cnf := &CNF{}
	cnf.AddClause(1)
	cnf.AddClause(-1)
	if s := Simplify(cnf); s.Status != Unsat {
		t.Fatalf("status %v", s.Status)
	}
	cnf2 := &CNF{}
	cnf2.AddClause(1)
	cnf2.AddClause(-1, 2)
	cnf2.AddClause(-1, -2)
	if s := Simplify(cnf2); s.Status != Unsat {
		t.Fatalf("chained refutation missed: %v", s.Status)
	}
}

func TestSimplifyPureLiterals(t *testing.T) {
	// Variable 3 occurs only positively: all its clauses vanish.
	cnf := &CNF{}
	cnf.AddClause(1, 3)
	cnf.AddClause(2, 3)
	cnf.AddClause(1, -2)
	s := Simplify(cnf)
	if v, ok := s.Fixed[3]; !ok || !v {
		t.Fatalf("pure literal 3 not fixed true: %v", s.Fixed)
	}
	if s.PureRounds == 0 {
		t.Fatal("pure rounds not counted")
	}
}

// TestSimplifyPreservesSatisfiability: Simplify + solve must agree with
// direct solving, and extended models must satisfy the original.
func TestSimplifyPreservesSatisfiability(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 200; trial++ {
		vars := 3 + rng.Intn(10)
		cnf := randomCNF(rng, vars, vars*3+rng.Intn(vars*3), 1+rng.Intn(3))
		want, _ := BruteForce(cnf)
		s := Simplify(cnf)
		var got Status
		switch s.Status {
		case Unsat:
			got = Unsat
		case Sat:
			got = Sat
		default:
			got = SolveCNFContext(context.Background(), s.CNF, Options{}).Status
		}
		if got != want {
			t.Fatalf("trial %d: simplified=%v, direct=%v", trial, got, want)
		}
		if want == Sat {
			var model []bool
			if s.Status != Sat {
				res := SolveCNFContext(context.Background(), s.CNF, Options{})
				model = res.Model
			}
			full, err := s.Extend(model)
			if err != nil {
				t.Fatal(err)
			}
			if !cnf.Eval(full) {
				t.Fatalf("trial %d: extended model does not satisfy original", trial)
			}
		}
	}
}

func TestSimplifyShrinksColoringFormulas(t *testing.T) {
	// A coloring CNF with symmetry-restricted singleton domains has
	// units: simplification must shrink it.
	cnf := &CNF{}
	cnf.AddClause(1)      // vertex fixed to color 0
	cnf.AddClause(2, 3)   // neighbor has two colors
	cnf.AddClause(-1, -2) // conflict on color 0
	s := Simplify(cnf)
	if s.Status == Unsat {
		t.Fatal("refuted")
	}
	if len(s.CNF.Clauses) >= 3 {
		t.Fatalf("no shrink: %d clauses", len(s.CNF.Clauses))
	}
	if v := s.Fixed[2]; v {
		t.Fatal("variable 2 must be fixed false")
	}
}

func TestSimplifyExtendUnsatErrors(t *testing.T) {
	cnf := &CNF{}
	cnf.AddClause(1)
	cnf.AddClause(-1)
	s := Simplify(cnf)
	if _, err := s.Extend(nil); err == nil {
		t.Fatal("Extend on unsat accepted")
	}
}
