package sat

import (
	"io"
	"math"
	"sort"
	"sync/atomic"
)

// watch pairs a watched clause with a blocker literal: if the blocker
// is already true the clause is satisfied and need not be inspected.
// With arena references instead of clause pointers an entry is 8 bytes,
// halving watch-list bandwidth during propagation.
type watch struct {
	ref     ClauseRef
	blocker Lit
}

// Stats counts solver work. It is valid after Solve returns and is
// also delivered, as a point-in-time snapshot, to the Options.Progress
// callback during a solve.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learnt       int64 // learnt clauses added
	Removed      int64 // learnt clauses deleted by reduceDB
	Imported     int64 // foreign clauses integrated from a ClauseExchange
	MaxTrail     int   // deepest trail seen
	// LearntDB and TrailDepth are point-in-time values filled in for
	// Progress snapshots: the current learnt-clause database size and
	// the current assignment-trail depth.
	LearntDB   int
	TrailDepth int
}

// Options configure a Solver. The zero value selects defaults.
type Options struct {
	// ConflictBudget, when positive, bounds the number of conflicts
	// before Solve returns Unknown.
	ConflictBudget int64
	// InitialPhase is the first branching polarity for every variable
	// (false, the default, branches negative first like MiniSat).
	InitialPhase bool
	// DisableMinimize turns off conflict-clause minimization
	// (used by tests to exercise both analyze paths).
	DisableMinimize bool
	// DisablePhaseSaving makes every decision use InitialPhase instead
	// of the last assigned polarity.
	DisablePhaseSaving bool
	// VarDecay is the VSIDS decay factor in (0,1); 0 selects the
	// default 0.95. Larger values keep activity longer (slower focus
	// shifts); smaller values chase recent conflicts harder.
	VarDecay float64
	// RestartBase is the conflict budget unit of the restart schedule;
	// 0 selects the default 100.
	RestartBase int64
	// GeometricRestarts replaces the Luby schedule with a geometric
	// one (budget multiplied by 1.5 per restart), the strategy of
	// several pre-Luby clause-learning solvers.
	GeometricRestarts bool
	// ProofWriter, when non-nil, receives a DRAT unsatisfiability
	// proof: every learnt clause and deletion is logged, and an Unsat
	// answer ends with the empty clause. Verify with CheckDRAT.
	ProofWriter io.Writer
	// LearntLimit, when positive, caps the learnt-clause database size
	// that triggers deletion (default max(#clauses/3, 5000)); smaller
	// values bound memory at the cost of relearning. The cap is a hard
	// ceiling: the usual geometric growth of the deletion threshold
	// across restarts never exceeds it.
	LearntLimit int
	// Progress, when non-nil, is invoked with a Stats snapshot at every
	// restart and periodically during search (every
	// progressDecisionInterval decisions or progressPropagationInterval
	// propagations, whichever comes first), so that long conflict-free
	// propagation phases remain visible. The callback runs on the
	// solving goroutine and must return promptly; it must not call back
	// into the Solver except for Stop.
	Progress func(Stats)
	// Seed, when non-zero, diversifies the search trajectory: initial
	// branching polarities and a tiny variable-activity jitter are drawn
	// from the seed, so identically configured solvers on the same
	// formula explore different parts of the search space. Runs with the
	// same seed are replayable. Seed 0 keeps the deterministic MiniSat
	// defaults (InitialPhase everywhere, zero initial activity).
	Seed int64
	// Exchange, when non-nil, connects the solver to a learnt-clause
	// exchange (see internal/share): learnt clauses are offered as they
	// are derived and foreign clauses are imported at restart
	// boundaries. See ClauseExchange for the contract.
	Exchange ClauseExchange
}

// Profile is a named solver configuration. The paper compared two
// external solvers (siege_v4, stronger on unsatisfiable formulas, and
// MiniSat, slightly ahead on satisfiable ones); Profiles exposes two
// analogous configurations of this solver so that the experiment can
// be reproduced without external binaries.
type Profile struct {
	Name string
	Opts Options
}

// Profiles returns the built-in solver configurations: "luby" (MiniSat
// defaults: Luby restarts, decay 0.95, phase saving) and "geometric"
// (geometric restarts from a larger base with slower decay, in the
// style of earlier clause-learning solvers such as siege).
func Profiles() []Profile {
	return []Profile{
		{Name: "luby", Opts: Options{}},
		{Name: "geometric", Opts: Options{
			GeometricRestarts: true,
			RestartBase:       700,
			VarDecay:          0.99,
		}},
	}
}

// Solver is a CDCL SAT solver: two-literal watching, first-UIP conflict
// analysis with basic clause minimization, VSIDS branching with phase
// saving, Luby restarts and activity/LBD-driven learnt-clause deletion.
// Clauses live in a flat arena (see arena.go) addressed by ClauseRef
// offsets; Reset rewinds the solver for a fresh problem while keeping
// the arena, watch-list and trail capacity, so one Solver can serve
// many solves without re-paying its allocations.
//
// A Solver is not safe for concurrent use, with one exception: Stop may
// be called from another goroutine to cancel a running Solve.
type Solver struct {
	opts Options

	ca      clauseArena
	clauses []ClauseRef
	learnts []ClauseRef
	watches [][]watch // indexed by Lit; watches[l] lists clauses watching l

	assigns  []int8 // indexed by Var
	polarity []bool // saved phase, indexed by Var
	level    []int32
	reason   []ClauseRef // RefUndef = decision or unassigned
	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	order    *varHeap

	claInc     float64
	maxLearnts float64

	seen     []byte
	minStack []Lit // scratch: all literals marked seen during analyze
	lbdStamp []int64
	lbdGen   int64

	// Per-solver scratch buffers so the hot add/learn/delete paths do
	// not allocate: addBuf backs AddClause's sort/dedupe, litBuf backs
	// AddDimacsClause's DIMACS conversion, learntBuf backs the learnt
	// clause built by analyze, proofBuf backs DRAT deletion lines.
	addBuf    []Lit
	litBuf    []Lit
	learntBuf []Lit
	proofBuf  []Lit
	importBuf []Lit

	ok      bool // false once an empty clause is derived at level 0
	stopped atomic.Bool
	proof   *proofLogger

	// Incremental-solve state: the assumptions of the current solve
	// call (one per decision level below all search decisions), the
	// failed-assumption core of the last Unsat answer (nil when the
	// clause database itself is unsatisfiable), and the Conflicts value
	// at the start of the current call, so Options.ConflictBudget
	// bounds each call rather than the solver's lifetime.
	assumptions  []Lit
	conflictCore []Lit
	conflictBase int64

	// Next Stats.Decisions / Stats.Propagations values at which search
	// polls stopped and fires the Progress callback.
	pollDecisions    int64
	pollPropagations int64

	model  []bool
	resets int64
	Stats  Stats
}

// Default VSIDS and clause-activity decay factors (MiniSat values).
const (
	defaultVarDecay    = 0.95
	clauseDecay        = 0.999
	defaultRestartBase = 100 // conflicts per Luby unit
)

// In-search polling intervals: stopped is checked (and Progress fired)
// after this many decisions or propagations, whichever comes first, in
// addition to the per-1024-conflicts check. The decision interval
// bounds cancellation latency on conflict-free searches, where neither
// conflicts nor restarts ever occur; the propagation interval bounds it
// on long unit-propagation phases with few decisions.
const (
	progressDecisionInterval    = 1 << 10
	progressPropagationInterval = 1 << 17
)

// New creates a solver with the given options.
func New(opts Options) *Solver {
	s := &Solver{}
	s.order = newVarHeap(&s.activity)
	s.reset(opts)
	return s
}

// Reset rewinds the solver to the just-constructed state under new
// options while retaining the capacity of the clause arena, watch
// lists, trail and per-variable tables, so the next problem loads
// without re-paying their allocations. Any proof logger is replaced
// according to opts.ProofWriter; statistics start from zero. Reset
// must not be called while a solve is running.
func (s *Solver) Reset(opts Options) {
	s.reset(opts)
	s.resets++
}

// Resets returns how many times the solver has been Reset — how many
// problems beyond the first this instance has been reused for.
func (s *Solver) Resets() int64 { return s.resets }

func (s *Solver) reset(opts Options) {
	s.opts = opts
	s.ca.reset()
	s.clauses = s.clauses[:0]
	s.learnts = s.learnts[:0]
	// Truncate each inner watch list before the outer slice so NewVar
	// can re-expose them (with their capacity) by reslicing.
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	s.watches = s.watches[:0]
	s.assigns = s.assigns[:0]
	s.polarity = s.polarity[:0]
	s.level = s.level[:0]
	s.reason = s.reason[:0]
	s.trail = s.trail[:0]
	s.trailLim = s.trailLim[:0]
	s.qhead = 0
	s.activity = s.activity[:0]
	s.order.reset()
	s.varInc = 1
	s.claInc = 1
	s.maxLearnts = 0
	s.seen = s.seen[:0]
	s.minStack = s.minStack[:0]
	// lbdStamp/lbdGen survive: stamps are generation-checked, and the
	// generation counter only ever grows, so stale stamps never match.
	s.ok = true
	s.stopped.Store(false)
	s.proof = nil
	if opts.ProofWriter != nil {
		s.proof = newProofLogger(opts.ProofWriter)
	}
	s.assumptions = s.assumptions[:0]
	s.conflictCore = nil
	s.conflictBase = 0
	s.pollDecisions = 0
	s.pollPropagations = 0
	s.model = nil
	s.Stats = Stats{}
}

// NewVar introduces a fresh variable and returns it.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	phase := s.opts.InitialPhase
	act := 0.0
	if s.opts.Seed != 0 {
		// Seeded diversification: the polarity and a sub-unit activity
		// jitter are a pure function of (seed, variable), so a seeded run
		// replays exactly while distinct seeds branch differently from
		// the first decision on. The jitter stays below the first
		// conflict's activity bump, so VSIDS ordering under conflicts is
		// unaffected; it only breaks ties among never-bumped variables.
		h := splitmix64(uint64(s.opts.Seed) ^ splitmix64(uint64(v)+0x9e3779b97f4a7c15))
		phase = h&1 == 1
		act = float64(h>>40) / float64(int64(1)<<24) * 1e-3
	}
	s.assigns = append(s.assigns, lUndef)
	s.polarity = append(s.polarity, phase)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, RefUndef)
	s.activity = append(s.activity, act)
	s.seen = append(s.seen, 0)
	// Re-expose retained inner watch lists by reslicing when a Reset
	// left capacity behind; appending nil would orphan them.
	if n := len(s.watches); cap(s.watches) >= n+2 {
		s.watches = s.watches[:n+2]
		s.watches[n] = s.watches[n][:0]
		s.watches[n+1] = s.watches[n+1][:0]
	} else {
		s.watches = append(s.watches, nil, nil)
	}
	s.order.insert(v)
	return v
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assigns) }

// ensureVars grows the variable table so that v is valid.
func (s *Solver) ensureVars(v Var) {
	for Var(len(s.assigns)) <= v {
		s.NewVar()
	}
}

func (s *Solver) value(l Lit) int8 {
	v := s.assigns[l.Var()]
	if l.Sign() {
		return -v
	}
	return v
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a problem clause (literals in DIMACS-free Lit form).
// It returns false if the formula is already known unsatisfiable.
// It may be called before the first solve and between solve calls
// (every solve returns with the trail unwound to decision level 0, so
// the new clause is simplified against the level-0 trail and its watch
// literals attach exactly as during initial construction); it must not
// be called while a solve is running. The literal slice is not
// retained; callers may reuse it.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	// Sort and strip duplicates/tautologies and level-0 false literals,
	// in a scratch buffer reused across calls.
	ls := append(s.addBuf[:0], lits...)
	s.addBuf = ls
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit = LitUndef
	for _, l := range ls {
		s.ensureVars(l.Var())
		switch {
		case s.value(l) == lTrue || l == prev.Neg() && prev != LitUndef:
			return true // satisfied or tautological
		case s.value(l) == lFalse || l == prev:
			continue // falsified at level 0 or duplicate
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], RefUndef)
		s.ok = s.propagate() == RefUndef
		return s.ok
	}
	ref := s.ca.alloc(out, false, 0)
	s.clauses = append(s.clauses, ref)
	s.attach(ref)
	return true
}

// AddDimacsClause adds a clause given as DIMACS integers.
func (s *Solver) AddDimacsClause(dimacs ...int) bool {
	lits := s.litBuf[:0]
	for _, d := range dimacs {
		lits = append(lits, LitFromDimacs(d))
	}
	s.litBuf = lits
	return s.AddClause(lits...)
}

func (s *Solver) attach(ref ClauseRef) {
	lits := s.ca.lits(ref)
	l0, l1 := Lit(lits[0]), Lit(lits[1])
	s.watches[l0] = append(s.watches[l0], watch{ref, l1})
	s.watches[l1] = append(s.watches[l1], watch{ref, l0})
}

func (s *Solver) detach(ref ClauseRef) {
	lits := s.ca.lits(ref)
	for _, l := range [2]Lit{Lit(lits[0]), Lit(lits[1])} {
		ws := s.watches[l]
		for i := range ws {
			if ws[i].ref == ref {
				ws[i] = ws[len(ws)-1]
				s.watches[l] = ws[:len(ws)-1]
				break
			}
		}
	}
}

func (s *Solver) uncheckedEnqueue(l Lit, from ClauseRef) {
	v := l.Var()
	if l.Sign() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
	if len(s.trail) > s.Stats.MaxTrail {
		s.Stats.MaxTrail = len(s.trail)
	}
}

// propagate performs unit propagation over the watch lists and returns
// the first conflicting clause, or RefUndef if a fixpoint was reached.
func (s *Solver) propagate() ClauseRef {
	confl := RefUndef
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		falseLit := p.Neg()
		ws := s.watches[falseLit]
		j := 0
	nextWatch:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				ws[j] = w
				j++
				continue
			}
			lits := s.ca.lits(w.ref)
			// Ensure the falsified literal is at position 1.
			if Lit(lits[0]) == falseLit {
				lits[0], lits[1] = lits[1], uint32(falseLit)
			}
			first := Lit(lits[0])
			if first != w.blocker && s.value(first) == lTrue {
				ws[j] = watch{w.ref, first}
				j++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(lits); k++ {
				if s.value(Lit(lits[k])) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					wl := Lit(lits[1])
					s.watches[wl] = append(s.watches[wl], watch{w.ref, first})
					continue nextWatch
				}
			}
			// Clause is unit or conflicting.
			ws[j] = watch{w.ref, first}
			j++
			if s.value(first) == lFalse {
				confl = w.ref
				s.qhead = len(s.trail)
				// Copy the remaining watches back before bailing out.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				break
			}
			s.uncheckedEnqueue(first, w.ref)
		}
		s.watches[falseLit] = ws[:j]
		if confl != RefUndef {
			return confl
		}
	}
	return RefUndef
}

// analyze derives a first-UIP learnt clause from the conflict confl.
// It returns the learnt literals (asserting literal first) and the
// backtrack level. The returned slice is scratch owned by the solver,
// valid until the next analyze call.
func (s *Solver) analyze(confl ClauseRef) ([]Lit, int) {
	learnt := append(s.learntBuf[:0], LitUndef) // slot 0 reserved for the asserting literal
	pathC := 0
	p := LitUndef
	index := len(s.trail) - 1

	for {
		s.claBumpActivity(confl)
		lits := s.ca.lits(confl)
		if p != LitUndef {
			lits = lits[1:] // lits[0] of a reason clause is the propagated literal
		}
		for _, qw := range lits {
			q := Lit(qw)
			v := q.Var()
			if s.seen[v] == 0 && s.level[v] > 0 {
				s.varBumpActivity(v)
				s.seen[v] = 1
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Find the next literal of the current level on the trail.
		for s.seen[s.trail[index].Var()] == 0 {
			index--
		}
		p = s.trail[index]
		index--
		confl = s.reason[p.Var()]
		s.seen[p.Var()] = 0
		pathC--
		if pathC == 0 {
			break
		}
	}
	learnt[0] = p.Neg()

	// Basic conflict-clause minimization: drop literals whose reason is
	// subsumed by the rest of the learnt clause. Seen flags of dropped
	// literals must still be cleared afterwards, so remember them.
	s.minStack = append(s.minStack[:0], learnt...)
	if !s.opts.DisableMinimize {
		j := 1
		for i := 1; i < len(learnt); i++ {
			if !s.litRedundant(learnt[i]) {
				learnt[j] = learnt[i]
				j++
			}
		}
		learnt = learnt[:j]
	}

	btLevel := 0
	if len(learnt) > 1 {
		// Move a literal of the highest remaining level to slot 1.
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}
	for _, l := range s.minStack {
		s.seen[l.Var()] = 0
	}
	s.learntBuf = learnt[:0]
	return learnt, btLevel
}

// litRedundant reports whether l's reason clause is entirely covered by
// literals already marked seen (or fixed at level 0), making l
// removable from the learnt clause. This is the non-recursive "basic"
// minimization of MiniSat.
func (s *Solver) litRedundant(l Lit) bool {
	r := s.reason[l.Var()]
	if r == RefUndef {
		return false
	}
	for _, qw := range s.ca.lits(r)[1:] {
		v := Lit(qw).Var()
		if s.seen[v] == 0 && s.level[v] > 0 {
			return false
		}
	}
	return true
}

// cancelUntil undoes all assignments above the given decision level.
func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		if !s.opts.DisablePhaseSaving {
			s.polarity[v] = s.assigns[v] == lTrue
		}
		s.assigns[v] = lUndef
		s.reason[v] = RefUndef
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = bound
}

func (s *Solver) varBumpActivity(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.decrease(v)
}

func (s *Solver) varDecayActivity() {
	decay := s.opts.VarDecay
	if decay == 0 {
		decay = defaultVarDecay
	}
	s.varInc /= decay
}

func (s *Solver) claBumpActivity(ref ClauseRef) {
	if !s.ca.learnt(ref) {
		return
	}
	a := s.ca.act(ref) + float32(s.claInc)
	s.ca.setAct(ref, a)
	if a > 1e20 {
		for _, lr := range s.learnts {
			s.ca.setAct(lr, s.ca.act(lr)*1e-20)
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) claDecayActivity() { s.claInc /= clauseDecay }

// pickBranchLit selects the unassigned variable with highest activity
// and applies the saved phase. It returns LitUndef when all variables
// are assigned (i.e. the formula is satisfied).
func (s *Solver) pickBranchLit() Lit {
	for !s.order.empty() {
		v := s.order.removeMin()
		if s.assigns[v] == lUndef {
			s.Stats.Decisions++
			return MkLit(v, !s.polarity[v])
		}
	}
	return LitUndef
}

// computeLBD counts the number of distinct decision levels among lits,
// using a generation-stamped scratch array to avoid allocation on the
// per-conflict path.
func (s *Solver) computeLBD(lits []Lit) int32 {
	s.lbdGen++
	var n int32
	for _, l := range lits {
		lev := int(s.level[l.Var()])
		for lev >= len(s.lbdStamp) {
			s.lbdStamp = append(s.lbdStamp, 0)
		}
		if s.lbdStamp[lev] != s.lbdGen {
			s.lbdStamp[lev] = s.lbdGen
			n++
		}
	}
	return n
}

// clauseLits copies clause ref's literals into the solver's proof
// scratch buffer (for DRAT deletion lines, which need []Lit).
func (s *Solver) clauseLits(ref ClauseRef) []Lit {
	buf := s.proofBuf[:0]
	for _, w := range s.ca.lits(ref) {
		buf = append(buf, Lit(w))
	}
	s.proofBuf = buf
	return buf
}

// reduceDB removes roughly half of the learnt clauses, preferring high
// LBD and low activity, and never touching reason ("locked") clauses
// or binary clauses. Deleted clauses become arena garbage; once a
// fifth of the arena is garbage it is compacted in place.
func (s *Solver) reduceDB() {
	ca := &s.ca
	sort.Slice(s.learnts, func(i, j int) bool {
		a, b := s.learnts[i], s.learnts[j]
		albd, blbd := ca.lbd(a), ca.lbd(b)
		if (albd > 2) != (blbd > 2) {
			return blbd > 2 // glue clauses last (kept)
		}
		return ca.act(a) < ca.act(b)
	})
	extLim := s.claInc / float64(len(s.learnts)+1)
	j := 0
	limit := len(s.learnts) / 2
	for i, ref := range s.learnts {
		removable := ca.size(ref) > 2 && !s.locked(ref) &&
			(i < limit || float64(ca.act(ref)) < extLim) && ca.lbd(ref) > 2
		if removable {
			s.detach(ref)
			if s.proof != nil {
				s.proof.deleteClause(s.clauseLits(ref))
			}
			ca.free(ref)
			s.Stats.Removed++
		} else {
			s.learnts[j] = ref
			j++
		}
	}
	s.learnts = s.learnts[:j]
	if ca.needsCompaction() {
		s.garbageCollect()
	}
}

func (s *Solver) locked(ref ClauseRef) bool {
	first := Lit(s.ca.lits(ref)[0])
	return s.reason[first.Var()] == ref && s.value(first) == lTrue
}

// Stop cancels a running Solve from another goroutine; the solve
// returns Unknown at the next check point. It is safe to call at any
// time, including before Solve.
func (s *Solver) Stop() { s.stopped.Store(true) }

// Stopped reports whether Stop has been called.
func (s *Solver) Stopped() bool { return s.stopped.Load() }

// snapshotStats returns the cumulative counters plus the current
// learnt-DB size and trail depth, the payload of a Progress callback.
func (s *Solver) snapshotStats() Stats {
	st := s.Stats
	st.LearntDB = len(s.learnts)
	st.TrailDepth = len(s.trail)
	return st
}

// poll checks the stop flag and fires the Progress callback once a
// decision or propagation interval has elapsed. It returns true when
// the solve has been cancelled.
func (s *Solver) poll() (cancelled bool) {
	if s.Stats.Decisions < s.pollDecisions && s.Stats.Propagations < s.pollPropagations {
		return false
	}
	s.pollDecisions = s.Stats.Decisions + progressDecisionInterval
	s.pollPropagations = s.Stats.Propagations + progressPropagationInterval
	if s.opts.Progress != nil {
		s.opts.Progress(s.snapshotStats())
	}
	return s.stopped.Load()
}

// search runs CDCL for at most nofConflicts conflicts and returns the
// status (Unknown means "restart budget exhausted").
func (s *Solver) search(nofConflicts int64) Status {
	var conflictC int64
	for {
		if s.poll() {
			return Unknown
		}
		confl := s.propagate()
		if confl != RefUndef {
			s.Stats.Conflicts++
			conflictC++
			if s.decisionLevel() == 0 {
				if s.proof != nil {
					s.proof.addClause(nil)
				}
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			if s.proof != nil {
				s.proof.addClause(learnt)
			}
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], RefUndef)
				if s.opts.Exchange != nil {
					s.opts.Exchange.Learnt(learnt, 1)
				}
			} else {
				lbd := s.computeLBD(learnt)
				ref := s.ca.alloc(learnt, true, lbd)
				s.learnts = append(s.learnts, ref)
				s.attach(ref)
				s.claBumpActivity(ref)
				s.uncheckedEnqueue(learnt[0], ref)
				s.Stats.Learnt++
				if s.opts.Exchange != nil {
					s.opts.Exchange.Learnt(learnt, lbd)
				}
			}
			s.varDecayActivity()
			s.claDecayActivity()
			if s.Stats.Conflicts&1023 == 0 && s.stopped.Load() {
				return Unknown
			}
			continue
		}
		// No conflict.
		if conflictC >= nofConflicts {
			s.cancelUntil(0)
			return Unknown
		}
		if s.opts.ConflictBudget > 0 && s.Stats.Conflicts-s.conflictBase >= s.opts.ConflictBudget {
			s.cancelUntil(0)
			return Unknown
		}
		if float64(len(s.learnts))-float64(len(s.trail)) >= s.maxLearnts {
			s.reduceDB()
		}
		// Establish the assumption decision levels before any search
		// decision: assumption i always sits at decision level i+1, so
		// backtracking below an assumption simply re-enqueues it here.
		next := LitUndef
		for next == LitUndef && s.decisionLevel() < len(s.assumptions) {
			p := s.assumptions[s.decisionLevel()]
			switch s.value(p) {
			case lTrue:
				// Already implied: open a dummy decision level so the
				// remaining assumptions keep their positional levels.
				s.trailLim = append(s.trailLim, len(s.trail))
			case lFalse:
				s.analyzeFinal(p)
				return Unsat
			default:
				next = p
				s.Stats.Decisions++
			}
		}
		if next == LitUndef {
			next = s.pickBranchLit()
			if next == LitUndef {
				return Sat
			}
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(next, RefUndef)
	}
}

// luby returns the i-th element (1-based) of the Luby restart sequence
// scaled by y.
func luby(y float64, i int64) float64 {
	// Find the finite subsequence containing index i, and its position.
	var size, seq int64 = 1, 0
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) >> 1
		seq--
		i = i % size
	}
	return math.Pow(y, float64(seq))
}

// Solve runs the solver. It returns Sat, Unsat or Unknown (budget
// exhausted or Stop called). After Sat, Model returns the assignment.
// Solve is SolveAssuming with no assumptions, except that a Stop issued
// before the call still cancels it (the documented Stop contract).
func (s *Solver) Solve() Status { return s.solveWith(nil) }

// solveWith is the restart loop shared by Solve and SolveAssuming. It
// always returns with the trail unwound to decision level 0, so the
// caller may add clauses and solve again.
func (s *Solver) solveWith(assumps []Lit) Status {
	s.model = nil
	s.conflictCore = nil
	s.assumptions = s.assumptions[:0]
	for _, p := range assumps {
		s.ensureVars(p.Var())
		s.assumptions = append(s.assumptions, p)
	}
	if !s.ok {
		if s.proof != nil {
			s.proof.addClause(nil)
			s.flushProof()
		}
		return Unsat
	}
	defer s.flushProof()
	defer s.cancelUntil(0)
	s.maxLearnts = math.Max(float64(len(s.clauses))*0.33, 5000)
	if s.opts.LearntLimit > 0 {
		s.maxLearnts = float64(s.opts.LearntLimit)
	}
	s.pollDecisions = s.Stats.Decisions + progressDecisionInterval
	s.pollPropagations = s.Stats.Propagations + progressPropagationInterval
	s.conflictBase = s.Stats.Conflicts
	var curRestarts int64
	for {
		if s.stopped.Load() {
			return Unknown
		}
		base := s.opts.RestartBase
		if base == 0 {
			base = defaultRestartBase
		}
		var budget int64
		if s.opts.GeometricRestarts {
			budget = int64(float64(base) * math.Pow(1.5, float64(curRestarts)))
		} else {
			budget = int64(luby(2, curRestarts) * float64(base))
		}
		status := s.search(budget)
		switch status {
		case Sat:
			s.model = make([]bool, len(s.assigns))
			for v := range s.assigns {
				s.model[v] = s.assigns[v] == lTrue
			}
			return Sat
		case Unsat:
			// A nil failed-assumption core means the clause database
			// itself is refuted; with a core, only the assumptions are
			// to blame and the solver stays usable.
			if s.conflictCore == nil {
				s.ok = false
			}
			return Unsat
		}
		if s.opts.ConflictBudget > 0 && s.Stats.Conflicts-s.conflictBase >= s.opts.ConflictBudget {
			return Unknown
		}
		curRestarts++
		s.Stats.Restarts++
		s.maxLearnts *= 1.05
		// LearntLimit is a hard ceiling: geometric growth of the
		// deletion threshold must not drift past the configured cap.
		if lim := s.opts.LearntLimit; lim > 0 && s.maxLearnts > float64(lim) {
			s.maxLearnts = float64(lim)
		}
		// Restart boundary: publish buffered learnt clauses and import
		// foreign ones. Guarded against the cancelled-search path, which
		// is the one way search returns Unknown above decision level 0.
		if s.opts.Exchange != nil && !s.stopped.Load() && s.decisionLevel() == 0 {
			if !s.exchangeAtRestart() {
				return Unsat
			}
		}
		if s.opts.Progress != nil {
			s.opts.Progress(s.snapshotStats())
		}
	}
}

// Model returns the satisfying assignment found by the last successful
// Solve: Model()[v] is the value of variable v. It returns nil if no
// model is available.
func (s *Solver) Model() []bool { return s.model }

// NumClauses returns the number of problem clauses currently stored
// (after level-0 simplification during AddClause).
func (s *Solver) NumClauses() int { return len(s.clauses) }

// flushProof flushes any pending proof output. The flush error, if
// any, is reported by ProofError.
func (s *Solver) flushProof() {
	if s.proof != nil {
		s.proof.flush()
	}
}

// ProofError returns the first error encountered while writing the
// DRAT proof, or nil. Callers that rely on certificates should check
// it after Solve.
func (s *Solver) ProofError() error {
	if s.proof == nil {
		return nil
	}
	if s.proof.err != nil {
		return s.proof.err
	}
	return s.proof.flush()
}
