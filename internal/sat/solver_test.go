package sat

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

func solveClauses(t *testing.T, clauses ...[]int) (Status, *Solver) {
	t.Helper()
	s := New(Options{})
	for _, cl := range clauses {
		if !s.AddDimacsClause(cl...) {
			return Unsat, s
		}
	}
	return s.Solve(), s
}

func TestEmptyFormulaIsSat(t *testing.T) {
	st, _ := solveClauses(t)
	if st != Sat {
		t.Fatalf("empty formula: got %v, want Sat", st)
	}
}

func TestUnitClauses(t *testing.T) {
	st, s := solveClauses(t, []int{1}, []int{-2}, []int{3})
	if st != Sat {
		t.Fatalf("got %v, want Sat", st)
	}
	m := s.Model()
	if !m[0] || m[1] || !m[2] {
		t.Fatalf("model = %v, want [true false true]", m)
	}
}

func TestDirectContradiction(t *testing.T) {
	st, _ := solveClauses(t, []int{1}, []int{-1})
	if st != Unsat {
		t.Fatalf("got %v, want Unsat", st)
	}
}

func TestImplicationChainUnsat(t *testing.T) {
	// 1, 1->2, 2->3, 3->-1 is unsat only with ... actually 1,2,3 true and
	// clause -3 forces the contradiction.
	st, _ := solveClauses(t, []int{1}, []int{-1, 2}, []int{-2, 3}, []int{-3})
	if st != Unsat {
		t.Fatalf("got %v, want Unsat", st)
	}
}

func TestSmallSatWithSearch(t *testing.T) {
	// (1 v 2) & (-1 v 2) & (1 v -2) forces 1 and 2 true.
	st, s := solveClauses(t, []int{1, 2}, []int{-1, 2}, []int{1, -2})
	if st != Sat {
		t.Fatalf("got %v, want Sat", st)
	}
	m := s.Model()
	if !m[0] || !m[1] {
		t.Fatalf("model = %v, want both true", m)
	}
}

func TestTautologyAndDuplicatesIgnored(t *testing.T) {
	s := New(Options{})
	if !s.AddDimacsClause(1, -1) { // tautology: no constraint
		t.Fatal("tautology rejected")
	}
	if s.NumClauses() != 0 {
		t.Fatalf("tautology stored: %d clauses", s.NumClauses())
	}
	if !s.AddDimacsClause(2, 2, 3, 3, 3) {
		t.Fatal("clause with duplicates rejected")
	}
	if got := s.NumClauses(); got != 1 {
		t.Fatalf("NumClauses = %d, want 1", got)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v, want Sat", st)
	}
}

// php builds the pigeonhole principle formula PHP(pigeons, holes):
// each pigeon in some hole, no two pigeons share a hole. Unsat iff
// pigeons > holes.
func php(pigeons, holes int) *CNF {
	cnf := &CNF{}
	v := func(p, h int) int { return p*holes + h + 1 }
	for p := 0; p < pigeons; p++ {
		cl := make([]int, holes)
		for h := 0; h < holes; h++ {
			cl[h] = v(p, h)
		}
		cnf.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				cnf.AddClause(-v(p1, h), -v(p2, h))
			}
		}
	}
	return cnf
}

func TestPigeonholeUnsat(t *testing.T) {
	for holes := 2; holes <= 6; holes++ {
		res := SolveCNFContext(context.Background(), php(holes+1, holes), Options{})
		if res.Status != Unsat {
			t.Fatalf("PHP(%d,%d): got %v, want Unsat", holes+1, holes, res.Status)
		}
	}
}

func TestPigeonholeSat(t *testing.T) {
	for holes := 2; holes <= 8; holes++ {
		cnf := php(holes, holes)
		res := SolveCNFContext(context.Background(), cnf, Options{})
		if res.Status != Sat {
			t.Fatalf("PHP(%d,%d): got %v, want Sat", holes, holes, res.Status)
		}
		if !cnf.Eval(res.Model) {
			t.Fatalf("PHP(%d,%d): returned model does not satisfy formula", holes, holes)
		}
	}
}

// randomCNF generates a random k-SAT instance.
func randomCNF(rng *rand.Rand, vars, clauses, k int) *CNF {
	cnf := &CNF{NumVars: vars}
	for i := 0; i < clauses; i++ {
		cl := make([]int, 0, k)
		used := map[int]bool{}
		for len(cl) < k {
			v := rng.Intn(vars) + 1
			if used[v] {
				continue
			}
			used[v] = true
			if rng.Intn(2) == 0 {
				v = -v
			}
			cl = append(cl, v)
		}
		cnf.AddClause(cl...)
	}
	return cnf
}

// TestRandomAgainstBruteForce cross-checks the CDCL solver against
// exhaustive enumeration on many small random instances spanning the
// sat/unsat phase transition.
func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 300; trial++ {
		vars := 3 + rng.Intn(10)
		ratio := 2 + rng.Float64()*4 // clause/var ratio 2..6 spans the transition
		clauses := int(float64(vars) * ratio)
		cnf := randomCNF(rng, vars, clauses, 3)
		want, _ := BruteForce(cnf)
		res := SolveCNFContext(context.Background(), cnf, Options{})
		if res.Status != want {
			t.Fatalf("trial %d (vars=%d clauses=%d): CDCL=%v brute=%v",
				trial, vars, clauses, res.Status, want)
		}
		if res.Status == Sat && !cnf.Eval(res.Model) {
			t.Fatalf("trial %d: model does not satisfy formula", trial)
		}
	}
}

func TestRandomAgainstBruteForceNoMinimize(t *testing.T) {
	rng := rand.New(rand.NewSource(999))
	for trial := 0; trial < 100; trial++ {
		vars := 4 + rng.Intn(8)
		cnf := randomCNF(rng, vars, vars*4, 3)
		want, _ := BruteForce(cnf)
		res := SolveCNFContext(context.Background(), cnf, Options{DisableMinimize: true})
		if res.Status != want {
			t.Fatalf("trial %d: CDCL(nomin)=%v brute=%v", trial, res.Status, want)
		}
	}
}

func TestConflictBudgetReturnsUnknown(t *testing.T) {
	res := SolveCNFContext(context.Background(), php(9, 8), Options{ConflictBudget: 5})
	if res.Status != Unknown {
		t.Fatalf("got %v, want Unknown under tiny budget", res.Status)
	}
}

// TestStopCancelsSolve is the regression test for the deprecated
// stop-channel wrapper; everything else in the repo uses the
// context-based API.
func TestStopCancelsSolve(t *testing.T) {
	cnf := php(11, 10) // hard enough to run for a while
	stop := make(chan struct{})
	done := make(chan Result, 1)
	go func() { done <- SolveCNF(cnf, Options{}, stop) }()
	time.Sleep(5 * time.Millisecond)
	close(stop)
	select {
	case res := <-done:
		if res.Status == Sat {
			t.Fatalf("PHP(11,10) reported Sat")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("solver did not stop after cancellation")
	}
}

func TestStopBeforeSolve(t *testing.T) {
	s := New(Options{})
	s.Load(php(8, 7))
	s.Stop()
	if st := s.Solve(); st != Unknown {
		t.Fatalf("got %v, want Unknown when stopped before solve", st)
	}
	if !s.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestStatsPopulated(t *testing.T) {
	s := New(Options{})
	s.Load(php(7, 6))
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want Unsat", st)
	}
	if s.Stats.Conflicts == 0 || s.Stats.Propagations == 0 || s.Stats.Decisions == 0 {
		t.Fatalf("stats not populated: %+v", s.Stats)
	}
}

func TestInitialPhaseOption(t *testing.T) {
	// With a single free variable and no constraints, the first decision
	// follows InitialPhase.
	for _, phase := range []bool{false, true} {
		s := New(Options{InitialPhase: phase})
		s.NewVar()
		if st := s.Solve(); st != Sat {
			t.Fatalf("got %v, want Sat", st)
		}
		if got := s.Model()[0]; got != phase {
			t.Fatalf("InitialPhase=%v: model[0]=%v", phase, got)
		}
	}
}

func TestGraphColoringTriangle(t *testing.T) {
	// Triangle with 2 colors: direct encoding, must be Unsat.
	cnf := &CNF{}
	v := func(node, color int) int { return node*2 + color + 1 }
	for n := 0; n < 3; n++ {
		cnf.AddClause(v(n, 0), v(n, 1))
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		for c := 0; c < 2; c++ {
			cnf.AddClause(-v(e[0], c), -v(e[1], c))
		}
	}
	if res := SolveCNFContext(context.Background(), cnf, Options{}); res.Status != Unsat {
		t.Fatalf("triangle 2-coloring: got %v, want Unsat", res.Status)
	}
}

func TestSolverReusedModelAfterUnsatIsNil(t *testing.T) {
	s := New(Options{})
	s.AddDimacsClause(1)
	s.AddDimacsClause(-1)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v", st)
	}
	if s.Model() != nil {
		t.Fatal("model should be nil after Unsat")
	}
}

func TestLargerRandomSat(t *testing.T) {
	// Under-constrained instances are almost surely satisfiable; verify
	// the solver handles a few thousand variables and that models check.
	rng := rand.New(rand.NewSource(7))
	cnf := randomCNF(rng, 2000, 4000, 3)
	res := SolveCNFContext(context.Background(), cnf, Options{})
	if res.Status != Sat {
		t.Fatalf("got %v, want Sat", res.Status)
	}
	if !cnf.Eval(res.Model) {
		t.Fatal("model does not satisfy formula")
	}
}

func TestCNFValidate(t *testing.T) {
	good := &CNF{}
	good.AddClause(1, -2)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid CNF rejected: %v", err)
	}
	bad := &CNF{NumVars: 1, Clauses: [][]int{{1, 0}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero literal accepted")
	}
	bad2 := &CNF{NumVars: 1, Clauses: [][]int{{2}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("out-of-range literal accepted")
	}
}

func TestCNFCounts(t *testing.T) {
	c := &CNF{}
	c.AddClause(1, 2, 3)
	c.AddClause(-1, -2)
	if c.NumClauses() != 2 || c.NumLiterals() != 5 || c.NumVars != 3 {
		t.Fatalf("counts wrong: %d clauses, %d lits, %d vars",
			c.NumClauses(), c.NumLiterals(), c.NumVars)
	}
}

func TestProfilesAgreeOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	profiles := Profiles()
	if len(profiles) < 2 {
		t.Fatal("need at least two profiles")
	}
	for trial := 0; trial < 60; trial++ {
		vars := 4 + rng.Intn(9)
		cnf := randomCNF(rng, vars, vars*4, 3)
		want, _ := BruteForce(cnf)
		for _, p := range profiles {
			res := SolveCNFContext(context.Background(), cnf, p.Opts)
			if res.Status != want {
				t.Fatalf("trial %d profile %s: got %v, want %v", trial, p.Name, res.Status, want)
			}
		}
	}
}

func TestGeometricRestartsSolve(t *testing.T) {
	opts := Options{GeometricRestarts: true, RestartBase: 10}
	if res := SolveCNFContext(context.Background(), php(8, 7), opts); res.Status != Unsat {
		t.Fatalf("got %v", res.Status)
	}
	if res := SolveCNFContext(context.Background(), php(7, 7), opts); res.Status != Sat {
		t.Fatalf("got %v", res.Status)
	}
}

func TestDisablePhaseSaving(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		cnf := randomCNF(rng, 10, 40, 3)
		want, _ := BruteForce(cnf)
		res := SolveCNFContext(context.Background(), cnf, Options{DisablePhaseSaving: true, InitialPhase: true})
		if res.Status != want {
			t.Fatalf("trial %d: got %v, want %v", trial, res.Status, want)
		}
	}
}

// TestLearntLimitClampedAcrossRestarts is the regression test for the
// LearntLimit drift bug: the deletion threshold used to grow by 1.05×
// per restart even when the user configured a hard cap, silently
// exceeding the memory bound on long runs.
func TestLearntLimitClampedAcrossRestarts(t *testing.T) {
	const limit = 100
	s := New(Options{LearntLimit: limit, RestartBase: 10})
	s.Load(php(9, 8))
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want Unsat", st)
	}
	if s.Stats.Restarts == 0 {
		t.Fatal("test needs restarts to exercise threshold growth")
	}
	if s.maxLearnts > limit {
		t.Fatalf("maxLearnts drifted to %v after %d restarts; LearntLimit=%d",
			s.maxLearnts, s.Stats.Restarts, limit)
	}
}

// TestLearntLimitKeepsDeletionActive checks the observable consequence
// of the clamp: with a small cap the deletion threshold stays small
// across restarts, so reduceDB keeps firing (Removed grows) instead of
// the threshold drifting out of reach.
func TestLearntLimitKeepsDeletionActive(t *testing.T) {
	s := New(Options{LearntLimit: 50, RestartBase: 10})
	s.Load(php(9, 8))
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want Unsat", st)
	}
	if s.Stats.Removed == 0 {
		t.Fatalf("reduceDB never fired under LearntLimit=50 (%d learnt, %d restarts)",
			s.Stats.Learnt, s.Stats.Restarts)
	}
}

// TestStopDuringConflictFreeSearch is the regression test for the
// cancellation-latency bug: stopped used to be polled only every 1024
// conflicts and at restart boundaries, so a search that never
// conflicts (here: a formula with no clauses at all, where every
// decision just extends the trail) could not be cancelled at all.
func TestStopDuringConflictFreeSearch(t *testing.T) {
	const numVars = 200000
	const stopAt = 2048
	var s *Solver
	s = New(Options{
		Progress: func(st Stats) {
			if st.Decisions >= stopAt {
				s.Stop()
			}
		},
	})
	for i := 0; i < numVars; i++ {
		s.NewVar()
	}
	st := s.Solve()
	if st != Unknown {
		t.Fatalf("got %v, want Unknown (Stop ignored during conflict-free search)", st)
	}
	// The solver must notice the stop within one polling interval.
	const bound = stopAt + 3*progressDecisionInterval
	if s.Stats.Decisions > bound {
		t.Fatalf("solver made %d decisions after Stop at %d (bound %d)",
			s.Stats.Decisions, stopAt, bound)
	}
}

// TestProgressSnapshots checks the Progress callback contract: it
// fires during the solve, its snapshots carry the point-in-time
// LearntDB/TrailDepth fields, and cumulative counters never decrease.
func TestProgressSnapshots(t *testing.T) {
	var calls int
	var prev Stats
	s := New(Options{
		RestartBase: 10,
		Progress: func(st Stats) {
			calls++
			if st.Conflicts < prev.Conflicts || st.Decisions < prev.Decisions ||
				st.Propagations < prev.Propagations || st.Restarts < prev.Restarts {
				t.Fatalf("cumulative counters went backwards: %+v after %+v", st, prev)
			}
			if st.LearntDB < 0 || st.TrailDepth < 0 || st.TrailDepth > st.MaxTrail {
				t.Fatalf("inconsistent snapshot: %+v", st)
			}
			prev = st
		},
	})
	s.Load(php(8, 7))
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want Unsat", st)
	}
	if calls == 0 {
		t.Fatal("Progress never invoked")
	}
	if prev.Restarts == 0 {
		t.Fatal("Progress not invoked at restart boundaries")
	}
}

func TestSolveCNFContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cnf := php(11, 10)
	done := make(chan Result, 1)
	go func() { done <- SolveCNFContext(ctx, cnf, Options{}) }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		if res.Status == Sat {
			t.Fatal("PHP(11,10) reported Sat")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("solver did not stop after context cancellation")
	}
}

func TestSolveCNFContextBackground(t *testing.T) {
	res := SolveCNFContext(context.Background(), php(6, 6), Options{})
	if res.Status != Sat {
		t.Fatalf("got %v, want Sat", res.Status)
	}
}

func TestCustomVarDecay(t *testing.T) {
	for _, decay := range []float64{0.8, 0.999} {
		res := SolveCNFContext(context.Background(), php(7, 6), Options{VarDecay: decay})
		if res.Status != Unsat {
			t.Fatalf("decay %v: got %v", decay, res.Status)
		}
	}
}
