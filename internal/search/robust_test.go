package search_test

import (
	"context"
	"testing"

	"fpgasat/internal/graph"
	"fpgasat/internal/robust"
	"fpgasat/internal/sat"
	"fpgasat/internal/search"
)

// TestMinWidthIsolatesProbePanic: a panic inside a width probe must
// come back as a *robust.PanicError with the partial result — never
// crash — and the crashed solver must not re-enter the pool.
func TestMinWidthIsolatesProbePanic(t *testing.T) {
	s := mustStrategy(t, "ITE-linear-2+muldirect/s1")
	robust.SetFailpoint(robust.FPSearchProbe, func(args ...any) {
		if args[1].(int) == 3 { // crash mid-search, after the W=4 probe
			panic("injected probe crash")
		}
	})
	t.Cleanup(func() { robust.ClearFailpoint(robust.FPSearchProbe) })

	var pool sat.Pool
	g := graph.Complete(4) // needs exactly 4 colors
	res, err := search.MinWidth(context.Background(), g, search.Options{
		Strategy: s,
		Hi:       5,
		Pool:     &pool,
	})
	pe, ok := robust.AsPanic(err)
	if !ok {
		t.Fatalf("probe panic not isolated: err = %v", err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error lacks a stack")
	}
	if res == nil || res.MinWidth != 4 {
		t.Fatalf("partial result lost: %+v", res)
	}

	// The crashed solver was abandoned: a follow-up search on the same
	// pool must get a fresh instance (no reuse) and still work.
	robust.ClearFailpoint(robust.FPSearchProbe)
	res, err = search.MinWidth(context.Background(), g, search.Options{
		Strategy: s,
		Hi:       5,
		Pool:     &pool,
	})
	if err != nil || !res.ProvedOptimal || res.MinWidth != 4 {
		t.Fatalf("pool poisoned by crashed solver: res=%+v err=%v", res, err)
	}
	if st := pool.Stats(); st.Reuses != 0 {
		t.Fatalf("crashed solver re-entered the pool: %+v", st)
	}
}

// TestMinWidthReturnsSolverOnHealthyPath pins the counterpart: an
// error-free search recycles its solver, so later searches reuse it.
// Under the race detector sync.Pool deliberately drops 1 in 4 Puts
// (and the pool may also come up empty after GC), so run enough
// searches that at least one reuse is overwhelmingly likely instead
// of demanding the very next Get hits.
func TestMinWidthReturnsSolverOnHealthyPath(t *testing.T) {
	s := mustStrategy(t, "ITE-linear-2+muldirect/s1")
	var pool sat.Pool
	g := graph.Complete(4)
	for i := 0; i < 10; i++ {
		res, err := search.MinWidth(context.Background(), g, search.Options{
			Strategy: s,
			Hi:       5,
			Pool:     &pool,
		})
		if err != nil || res.MinWidth != 4 {
			t.Fatalf("run %d: res=%+v err=%v", i, res, err)
		}
	}
	if st := pool.Stats(); st.Reuses == 0 {
		t.Fatalf("healthy solver not recycled: %+v", st)
	}
}
