// Package search implements the minimum-channel-width search at the
// heart of the paper's workflow — prove width W-1 unroutable, route at
// width W — on a single incremental SAT solver. The graph is encoded
// once at the upper-bound width with selector-guarded color-domain
// bounds (core.EncodeIncremental); each width probe is then one
// SolveAssuming call with a single selector assumption, so learnt
// clauses, VSIDS activity and saved phases carry over between widths
// instead of being discarded by a fresh encode+solve per width.
package search

import (
	"context"
	"fmt"
	"time"

	"fpgasat/internal/core"
	"fpgasat/internal/graph"
	"fpgasat/internal/obs"
	"fpgasat/internal/robust"
	"fpgasat/internal/sat"
)

// Metric names emitted into Options.Metrics. Options.MetricSuffix is
// appended (e.g. "search.minwidth.probe.ITE-log/s1") so portfolio
// members remain distinguishable in one registry.
const (
	// MetricEncode times the one-off incremental encode (structural +
	// conflict + selector guard clauses streamed into the solver).
	MetricEncode = "search.minwidth.encode"
	// MetricProbe times each per-width SolveAssuming probe.
	MetricProbe = "search.minwidth.probe"
	// MetricProbes counts width probes.
	MetricProbes = "search.minwidth.probes"
	// MetricWidth gauges the best routable width found so far.
	MetricWidth = "search.minwidth.width"
	// MetricLearntReused gauges the learnt-clause database size carried
	// into the most recent probe — the clauses the probe reuses from
	// earlier widths.
	MetricLearntReused = "search.minwidth.learnt_reused"
	// MetricAssumpSolves counts assumption-based solver calls.
	MetricAssumpSolves = "sat.assumptions.solves"
	// MetricAssumpCoreSize gauges the failed-assumption core size of
	// the most recent Unsat probe (0 = genuine database unsat).
	MetricAssumpCoreSize = "sat.assumptions.core_size"
	// MetricArenaWords, MetricArenaCap and MetricArenaCollections gauge
	// the solver's clause-arena footprint at the end of the search:
	// live+garbage words, backing capacity, and arena compactions.
	MetricArenaWords       = "sat.arena.words"
	MetricArenaCap         = "sat.arena.cap_words"
	MetricArenaCollections = "sat.arena.collections"
)

// Options configures a MinWidth search.
type Options struct {
	// Strategy is the encoding + symmetry-breaking pair to search with.
	Strategy core.Strategy
	// Hi is the upper-bound width the graph is encoded at; the search
	// space is [Lo, Hi]. Hi must be >= 1.
	Hi int
	// Lo is the smallest width to probe; it defaults to 1.
	Lo int
	// Binary selects binary search over the default descending scan.
	// Descending matches the paper's W / W-1 workflow and visits every
	// width from the first routable one downward; binary does O(log W)
	// probes and suits loose upper bounds.
	Binary bool
	// Solver configures the underlying incremental solver.
	Solver sat.Options
	// Pool, when non-nil, supplies the search's solver and receives it
	// back when the search ends, so repeated searches (portfolio
	// members, batch experiments, service requests) reuse clause-arena
	// and watch-list capacity instead of growing a fresh solver each
	// time.
	Pool *sat.Pool
	// ProbeTimeout bounds each width probe; 0 means no per-probe bound.
	// A probe that times out ends the search with the best width found
	// so far and ProvedOptimal=false.
	ProbeTimeout time.Duration
	// Metrics receives search.minwidth.* and sat.assumptions.* metrics;
	// nil disables telemetry.
	Metrics *obs.Registry
	// MetricSuffix is appended to every metric name as ".<suffix>".
	MetricSuffix string
}

// Probe records one width probe of the search.
type Probe struct {
	Width     int
	Status    sat.Status
	Duration  time.Duration
	Conflicts int64 // conflicts spent in this probe
	Learnts   int   // learnt-clause database size going into the probe
	CoreSize  int   // failed-assumption core size (Unsat probes)
}

// Result is the outcome of a MinWidth search.
type Result struct {
	// MinWidth is the smallest width proved routable, 0 if none was.
	MinWidth int
	// Colors is the verified coloring at MinWidth (nil if MinWidth=0).
	Colors []int
	// ProvedOptimal reports that the search also proved no smaller
	// width in [Lo, Hi] is routable: Unsat at MinWidth-1 (or at Hi when
	// MinWidth=0), or MinWidth == Lo. False when a probe was cancelled
	// or timed out first.
	ProvedOptimal bool
	// Probes lists every width probe in execution order.
	Probes []Probe
	// EncodeTime is the one-off incremental encode cost; Stats are the
	// solver's cumulative statistics over all probes.
	EncodeTime time.Duration
	Stats      sat.Stats
}

// MinWidth runs the incremental minimum-width search for g under the
// options. It encodes once at opts.Hi and probes widths via selector
// assumptions on one solver. The returned error is non-nil only for
// invalid options, a decode failure (an encoding soundness bug), or a
// *robust.PanicError when the search crashed and was isolated;
// cancellation and timeouts end the search early with a partial Result.
func MinWidth(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	if opts.Hi < 1 {
		return nil, fmt.Errorf("search: upper-bound width %d < 1", opts.Hi)
	}
	lo := opts.Lo
	if lo < 1 {
		lo = 1
	}
	if lo > opts.Hi {
		return nil, fmt.Errorf("search: width range [%d,%d] is empty", lo, opts.Hi)
	}
	if opts.Strategy.Encoding == nil {
		return nil, fmt.Errorf("search: options lack an encoding strategy")
	}
	// The search runs supervised: a panic in the encoder or the solver
	// comes back as a *robust.PanicError with the partial Result, and
	// the crashed solver is abandoned instead of re-entering the pool.
	res := &Result{}
	var err error
	if cerr := robust.Capture("width search "+opts.Strategy.Name(), func() {
		err = minWidthOn(ctx, g, opts, lo, res)
	}); cerr != nil {
		return res, cerr
	}
	return res, err
}

// minWidthOn is the unsupervised body of MinWidth. It returns the
// search's solver to the pool only on the panic-free path — its caller
// owns the recover boundary.
func minWidthOn(ctx context.Context, g *graph.Graph, opts Options, lo int, res *Result) error {
	suffix := ""
	if opts.MetricSuffix != "" {
		suffix = "." + opts.MetricSuffix
	}
	reg := opts.Metrics

	var solver *sat.Solver
	if opts.Pool != nil {
		solver = opts.Pool.Get(opts.Solver)
	} else {
		solver = sat.New(opts.Solver)
	}
	span := reg.StartSpan(MetricEncode + suffix)
	csp := core.BuildCSP(g, opts.Hi, opts.Strategy.Symmetry)
	inc := core.EncodeIncremental(csp, opts.Strategy.Encoding, lo, sat.SolverSink{S: solver})
	res.EncodeTime = span.End()

	probe := func(w int) (sat.Status, error) {
		robust.Hit(robust.FPSearchProbe, opts.Strategy.Name(), w)
		assumps, err := inc.Assumptions(w)
		if err != nil {
			return sat.Unknown, err
		}
		learnts := solver.NumLearnts()
		if reg != nil {
			reg.Gauge(MetricLearntReused + suffix).Set(int64(learnts))
			reg.Counter(MetricProbes + suffix).Inc()
			reg.Counter(MetricAssumpSolves + suffix).Inc()
		}
		probeCtx := ctx
		if opts.ProbeTimeout > 0 {
			var cancel context.CancelFunc
			probeCtx, cancel = context.WithTimeout(ctx, opts.ProbeTimeout)
			defer cancel()
		}
		before := solver.Stats.Conflicts
		sp := reg.StartSpan(MetricProbe + suffix)
		st := solver.SolveAssumingContext(probeCtx, assumps...)
		d := sp.End()
		p := Probe{
			Width:     w,
			Status:    st,
			Duration:  d,
			Conflicts: solver.Stats.Conflicts - before,
			Learnts:   learnts,
		}
		if st == sat.Unsat {
			p.CoreSize = len(solver.FailedAssumptions())
			if reg != nil {
				reg.Gauge(MetricAssumpCoreSize + suffix).Set(int64(p.CoreSize))
			}
		}
		res.Probes = append(res.Probes, p)
		if st == sat.Sat {
			colors, err := inc.DecodeVerifyWidth(solver.Model(), w)
			if err != nil {
				return st, err
			}
			res.MinWidth = w
			res.Colors = colors
			if reg != nil {
				reg.Gauge(MetricWidth + suffix).Set(int64(w))
			}
		}
		return st, nil
	}

	var err error
	if opts.Binary {
		err = binarySearch(probe, lo, opts.Hi, res)
	} else {
		err = descendingSearch(probe, lo, opts.Hi, res)
	}
	res.Stats = solver.Stats
	if reg != nil {
		ast := solver.ArenaStats()
		reg.Gauge(MetricArenaWords + suffix).Set(int64(ast.Words))
		reg.Gauge(MetricArenaCap + suffix).Set(int64(ast.CapWords))
		reg.Gauge(MetricArenaCollections + suffix).Set(ast.Collections)
	}
	// Reached only when no probe panicked: the solver is healthy and
	// may carry its capacity to the next search.
	if opts.Pool != nil {
		opts.Pool.Put(solver)
	}
	return err
}

// descendingSearch probes Hi, Hi-1, ... until an Unsat width (proved
// optimal), an Unknown (cancelled/timed out), or Lo routes.
func descendingSearch(probe func(int) (sat.Status, error), lo, hi int, res *Result) error {
	for w := hi; w >= lo; w-- {
		st, err := probe(w)
		if err != nil {
			return err
		}
		switch st {
		case sat.Unsat:
			res.ProvedOptimal = true
			return nil
		case sat.Unknown:
			return nil
		}
	}
	res.ProvedOptimal = true // Lo routed; nothing below Lo to disprove
	return nil
}

// binarySearch maintains routable-above/unroutable-below bounds and
// bisects; every probe shares the one incremental solver.
func binarySearch(probe func(int) (sat.Status, error), lo, hi int, res *Result) error {
	for lo <= hi {
		mid := lo + (hi-lo)/2
		st, err := probe(mid)
		if err != nil {
			return err
		}
		switch st {
		case sat.Sat:
			hi = mid - 1
		case sat.Unsat:
			lo = mid + 1
		default:
			return nil // cancelled or timed out: bounds not closed
		}
	}
	res.ProvedOptimal = true
	return nil
}
