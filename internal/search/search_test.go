package search_test

import (
	"context"
	"math/rand"
	"testing"

	"fpgasat/internal/core"
	"fpgasat/internal/graph"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/obs"
	"fpgasat/internal/sat"
	"fpgasat/internal/search"
)

func mustStrategy(t *testing.T, spec string) core.Strategy {
	t.Helper()
	s, err := core.ParseStrategy(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// canColor decides k-colorability exactly by backtracking — the
// reference oracle for the property tests.
func canColor(g *graph.Graph, k int) bool {
	n := g.N()
	if n == 0 {
		return true
	}
	if k < 1 {
		return false
	}
	adj := make([][]int, n)
	g.ForEachEdge(func(u, v int) {
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	})
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == n {
			return true
		}
		for c := 0; c < k; c++ {
			ok := true
			for _, u := range adj[v] {
				if colors[u] == c {
					ok = false
					break
				}
			}
			if ok {
				colors[v] = c
				if rec(v + 1) {
					return true
				}
				colors[v] = -1
			}
		}
		return false
	}
	return rec(0)
}

// singleShot solves the width-w decision problem from scratch, the way
// the pipeline did before the incremental search existed.
func singleShot(t *testing.T, g *graph.Graph, w int, s core.Strategy) (sat.Status, []int) {
	t.Helper()
	enc := core.Encode(core.BuildCSP(g, w, s.Symmetry), s.Encoding)
	res := sat.SolveCNFContext(context.Background(), enc.CNF, sat.Options{})
	if res.Status != sat.Sat {
		return res.Status, nil
	}
	colors, err := enc.DecodeVerify(res.Model)
	if err != nil {
		t.Fatalf("single-shot decode at width %d: %v", w, err)
	}
	return sat.Sat, colors
}

// TestMinWidthAgainstSingleShotAndBrute is the cross-check property
// test: on random CSPs, every incremental width probe agrees with a
// fresh single-shot solve of that width, the found minimum width is the
// backtracking chromatic number, and the Sat model decodes to a valid
// coloring.
func TestMinWidthAgainstSingleShotAndBrute(t *testing.T) {
	specs := []string{
		"log/-",
		"direct/s1",
		"muldirect/b1",
		"ITE-log/c1",
		"ITE-linear/-",
		"ITE-log-2+ITE-linear/s1",
		"ITE-linear-2+muldirect/s1",
		"muldirect-3+muldirect/c1",
		"direct-3+direct/b1",
	}
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 18; round++ {
		n := 4 + rng.Intn(5)
		g := graph.Random(rng, n, 0.3+0.4*rng.Float64())
		strat := mustStrategy(t, specs[round%len(specs)])
		hi := n // n colors always suffice

		chi := 1
		for !canColor(g, chi) {
			chi++
		}

		for _, binary := range []bool{false, true} {
			res, err := search.MinWidth(context.Background(), g, search.Options{
				Strategy: strat,
				Lo:       1,
				Hi:       hi,
				Binary:   binary,
			})
			if err != nil {
				t.Fatalf("round %d %s binary=%v: %v", round, strat.Name(), binary, err)
			}
			if !res.ProvedOptimal {
				t.Fatalf("round %d %s binary=%v: search did not complete", round, strat.Name(), binary)
			}
			if res.MinWidth != chi {
				t.Fatalf("round %d %s binary=%v: MinWidth %d, chromatic number %d",
					round, strat.Name(), binary, res.MinWidth, chi)
			}
			if err := core.BuildCSP(g, chi, strat.Symmetry).Verify(res.Colors); err != nil {
				t.Fatalf("round %d %s binary=%v: returned coloring invalid: %v",
					round, strat.Name(), binary, err)
			}
			// Every probe verdict must match a fresh single-shot solve
			// at that width.
			for _, p := range res.Probes {
				want, _ := singleShot(t, g, p.Width, strat)
				if p.Status != want {
					t.Fatalf("round %d %s binary=%v width %d: incremental %v, single-shot %v",
						round, strat.Name(), binary, p.Width, p.Status, want)
				}
			}
		}
	}
}

// TestMinWidthCalibratedInstance runs the search on a calibrated MCNC
// instance: it must route at RoutableW, prove RoutableW-1 unroutable,
// and surface the learnt-clause reuse and probe telemetry.
func TestMinWidthCalibratedInstance(t *testing.T) {
	in, err := mcnc.ByName("term1")
	if err != nil {
		t.Fatal(err)
	}
	_, g, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	res, err := search.MinWidth(context.Background(), g, search.Options{
		Strategy: mustStrategy(t, "ITE-linear-2+muldirect/s1"),
		Lo:       1,
		Hi:       in.RoutableW + 2,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MinWidth != in.RoutableW || !res.ProvedOptimal {
		t.Fatalf("MinWidth=%d ProvedOptimal=%v, want %d/true", res.MinWidth, res.ProvedOptimal, in.RoutableW)
	}
	last := res.Probes[len(res.Probes)-1]
	if last.Width != in.UnroutableW() || last.Status != sat.Unsat {
		t.Fatalf("last probe %+v, want Unsat at width %d", last, in.UnroutableW())
	}
	if last.CoreSize == 0 {
		t.Fatal("Unsat at W-1 must blame the selector assumption, not the database")
	}
	snap := reg.Snapshot()
	if got := snap.Timers[search.MetricProbe].Count; got != int64(len(res.Probes)) {
		t.Fatalf("probe timer count %d, want %d", got, len(res.Probes))
	}
	if snap.Counters[search.MetricAssumpSolves] != int64(len(res.Probes)) {
		t.Fatalf("assumption solve counter %d, want %d",
			snap.Counters[search.MetricAssumpSolves], len(res.Probes))
	}
	if snap.Gauges[search.MetricWidth] != int64(in.RoutableW) {
		t.Fatalf("width gauge %d, want %d", snap.Gauges[search.MetricWidth], in.RoutableW)
	}
	if _, ok := snap.Gauges[search.MetricLearntReused]; !ok {
		t.Fatal("learnt-reuse gauge missing from snapshot")
	}
	if snap.Timers[search.MetricEncode].Count != 1 {
		t.Fatal("incremental search must encode exactly once")
	}
}

// TestMinWidthBinaryProbesFewer checks that binary mode does O(log W)
// probes where descending does O(W).
func TestMinWidthBinaryProbesFewer(t *testing.T) {
	g := graph.Complete(5) // chromatic number 5
	run := func(binary bool) *search.Result {
		res, err := search.MinWidth(context.Background(), g, search.Options{
			Strategy: mustStrategy(t, "direct/s1"),
			Lo:       1,
			Hi:       32,
			Binary:   binary,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.MinWidth != 5 || !res.ProvedOptimal {
			t.Fatalf("binary=%v: MinWidth=%d ProvedOptimal=%v, want 5/true",
				binary, res.MinWidth, res.ProvedOptimal)
		}
		return res
	}
	desc := run(false)
	bin := run(true)
	if len(bin.Probes) >= len(desc.Probes) {
		t.Fatalf("binary took %d probes, descending %d", len(bin.Probes), len(desc.Probes))
	}
}

func TestMinWidthCancelled(t *testing.T) {
	g := graph.Complete(6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := search.MinWidth(ctx, g, search.Options{
		Strategy: mustStrategy(t, "log/-"),
		Hi:       8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProvedOptimal {
		t.Fatal("cancelled search must not claim a completed proof")
	}
}

func TestMinWidthOptionValidation(t *testing.T) {
	g := graph.Complete(3)
	if _, err := search.MinWidth(context.Background(), g, search.Options{Hi: 0}); err == nil {
		t.Fatal("Hi=0 must be rejected")
	}
	if _, err := search.MinWidth(context.Background(), g, search.Options{
		Strategy: mustStrategy(t, "log/-"), Hi: 2, Lo: 5,
	}); err == nil {
		t.Fatal("empty width range must be rejected")
	}
	if _, err := search.MinWidth(context.Background(), g, search.Options{Hi: 3}); err == nil {
		t.Fatal("missing encoding must be rejected")
	}
}
