package serve

// Adaptive admission control. Three mechanisms, all per shard:
//
//   - Service-time tracking: an EWMA plus a sliding window of recent
//     solve times. The EWMA drives the backlog-drain estimate behind
//     Retry-After; the window's median is the floor — the daemon never
//     advertises a retry sooner than half the work it has recently
//     been doing per job takes, no matter how empty the queue looks.
//
//   - CoDel-style sojourn shedding: a worker that dequeues a job which
//     sat queued past the sojourn target (or whose own deadline has
//     already expired) sheds it — the job completes immediately as
//     UNDECIDED with Shed set — instead of burning a solver on an
//     answer that would arrive too late anyway. Shedding at dequeue
//     (rather than submit) is what CoDel gets right: the decision uses
//     the job's actual sojourn time, so short bursts ride through and
//     only standing queues shed.
//
//   - Priority classes: every shard runs two queues, interactive
//     (default) and batch. Workers always drain interactive first and
//     only pick up batch work when no interactive job is waiting, so a
//     flood of batch sweeps cannot add queueing delay to interactive
//     traffic beyond the one job already being solved.

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Priority classes of SolveRequest.Priority.
const (
	PriorityInteractive = "interactive"
	PriorityBatch       = "batch"
)

// admWindow is the number of recent service-time samples kept for the
// median estimate.
const admWindow = 64

// ewmaAlpha weights the newest sample in the service-time EWMA; ~0.2
// reacts within a handful of jobs without chasing single outliers.
const ewmaAlpha = 0.2

// admission is one shard's service-time statistics.
type admission struct {
	mu      sync.Mutex
	ewmaNS  float64
	samples []int64 // ring buffer of recent service times (ns)
	next    int
}

// observe records one completed solve's wall clock.
func (a *admission) observe(d time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ns := float64(d)
	if a.ewmaNS == 0 {
		a.ewmaNS = ns
	} else {
		a.ewmaNS = ewmaAlpha*ns + (1-ewmaAlpha)*a.ewmaNS
	}
	if len(a.samples) < admWindow {
		a.samples = append(a.samples, int64(d))
	} else {
		a.samples[a.next] = int64(d)
	}
	a.next = (a.next + 1) % admWindow
}

// ewma returns the current service-time EWMA (0 before any sample).
func (a *admission) ewma() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return time.Duration(a.ewmaNS)
}

// median returns the median of the recent service-time window (0
// before any sample).
func (a *admission) median() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.samples) == 0 {
		return 0
	}
	sorted := append([]int64(nil), a.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return time.Duration(sorted[len(sorted)/2])
}

// retryAfter computes the Retry-After advertised on a 429 from this
// shard: the estimated time to drain the current backlog (queued jobs
// plus the ones being solved, at one EWMA service time each across the
// shard's workers), floored at the observed median service time —
// never tell a client to come back sooner than a typical job takes —
// and at one second, the smallest honest value HTTP's integer-seconds
// header can carry.
func (a *admission) retryAfter(queued, busy, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	ewma := a.ewma()
	backlog := time.Duration(math.Ceil(float64(queued+busy)/float64(workers))) * ewma
	if floor := a.median(); backlog < floor {
		backlog = floor
	}
	if backlog < time.Second {
		backlog = time.Second
	}
	return backlog
}

// retryAfterSeconds renders a Retry-After duration as the HTTP
// header's integer seconds, rounding up so the advertised wait is
// never shorter than the estimate.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
