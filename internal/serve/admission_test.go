package serve

import (
	"testing"
	"time"
)

func TestAdmissionEWMAAndMedian(t *testing.T) {
	var a admission
	if a.ewma() != 0 || a.median() != 0 {
		t.Fatal("fresh admission should report zero estimates")
	}
	a.observe(time.Second)
	if a.ewma() != time.Second || a.median() != time.Second {
		t.Fatalf("single sample: ewma %v median %v, want 1s/1s", a.ewma(), a.median())
	}
	// A single outlier moves the EWMA by alpha, not all the way.
	a.observe(11 * time.Second)
	got := a.ewma()
	want := time.Duration(ewmaAlpha*float64(11*time.Second) + (1-ewmaAlpha)*float64(time.Second))
	if got != want {
		t.Errorf("ewma after outlier = %v, want %v", got, want)
	}

	// Fill the window past capacity; the median must reflect only the
	// surviving recent samples.
	var b admission
	for i := 0; i < admWindow+10; i++ {
		b.observe(time.Duration(i) * time.Millisecond)
	}
	med := b.median()
	if med < 10*time.Millisecond {
		t.Errorf("median %v still dominated by evicted early samples", med)
	}
}

func TestRetryAfterComputedAndFloors(t *testing.T) {
	// Floor case: no samples at all -> the 1-second HTTP floor.
	var a admission
	if got := a.retryAfter(10, 2, 2); got != time.Second {
		t.Errorf("retryAfter with no samples = %v, want the 1s floor", got)
	}

	// Computed case: steady 2s service times, 3 queued + 1 busy over 2
	// workers -> ceil(4/2) * 2s = 4s.
	var b admission
	for i := 0; i < 16; i++ {
		b.observe(2 * time.Second)
	}
	if got := b.retryAfter(3, 1, 2); got != 4*time.Second {
		t.Errorf("retryAfter(3,1,2) = %v, want 4s", got)
	}

	// Median floor: an empty queue must still advertise at least the
	// typical service time, never less.
	if got := b.retryAfter(0, 0, 2); got != 2*time.Second {
		t.Errorf("retryAfter on empty queue = %v, want the 2s median floor", got)
	}

	// Degenerate worker count is clamped rather than dividing by zero.
	if got := b.retryAfter(1, 0, 0); got != 2*time.Second {
		t.Errorf("retryAfter with 0 workers = %v, want 2s", got)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Millisecond, 1},
		{time.Second, 1},
		{1100 * time.Millisecond, 2}, // rounds up, never advertises early
		{5 * time.Second, 5},
	} {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}
