package serve

// Per-shard circuit breakers, layered on the internal/robust failure
// taxonomy. A shard whose jobs keep dying of supervision failures —
// lane panics, watchdog abandonments, soundness violations, worker
// crashes — is poisoned: some workload it attracts is tripping a bug,
// and every job routed there burns a solver and a queue slot to learn
// the same thing. The breaker isolates it:
//
//	closed ──(threshold consecutive failures)──> open
//	open   ──(jittered backoff elapsed)──> half-open
//	half-open ──(probe job succeeds)──> closed
//	half-open ──(probe job fails)──> open (backoff doubled, capped)
//
// While open, submits to the shard are rejected with
// *BreakerOpenError (HTTP 503 + Retry-After); other shards are
// untouched, so a poisoned size class degrades to "unavailable"
// instead of dragging the whole daemon down. The backoff is jittered
// (uniform in [backoff/2, backoff]) so a fleet of breakers tripped by
// the same poison pill does not re-probe in lockstep.
//
// Only supervision failures count: timeouts, conflict-budget
// exhaustion and load shedding are healthy overload behaviour, not
// poison, and never trip a breaker.

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Breaker states, in the order reported by the serve.breaker.state
// gauge.
const (
	breakerClosed int64 = iota
	breakerHalfOpen
	breakerOpen
)

// breakerStateNames maps gauge values to the names used in /readyz and
// error messages.
var breakerStateNames = map[int64]string{
	breakerClosed:   "closed",
	breakerHalfOpen: "half-open",
	breakerOpen:     "open",
}

// BreakerOpenError reports a submit rejected because the target
// shard's circuit breaker is open; RetryAfter is the remaining backoff
// before the breaker will admit a probe.
type BreakerOpenError struct {
	Shard      string
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("serve: shard %s circuit breaker open (retry in %v)", e.Shard, e.RetryAfter.Round(time.Millisecond))
}

// breaker is one shard's circuit breaker. The zero value is not
// usable; build with newBreaker.
type breaker struct {
	mu        sync.Mutex
	state     int64
	fails     int           // consecutive supervision failures while closed
	threshold int           // fails that trip the breaker
	base      time.Duration // backoff after the first trip
	max       time.Duration // backoff cap
	backoff   time.Duration // current open duration (doubles per re-trip)
	until     time.Time     // while open: when a probe becomes admissible
	probing   bool          // while half-open: a probe job is in flight
	rng       *rand.Rand
	now       func() time.Time // injectable clock for tests
	onChange  func(state int64)
}

func newBreaker(threshold int, base, max time.Duration, seed int64, onChange func(int64)) *breaker {
	b := &breaker{
		threshold: threshold,
		base:      base,
		max:       max,
		backoff:   base,
		rng:       rand.New(rand.NewSource(seed)),
		now:       time.Now,
		onChange:  onChange,
	}
	b.onChange(breakerClosed)
	return b
}

// allow decides whether a submit may enter the shard. probe is true
// when the admitted job is the half-open probe whose outcome decides
// the next transition; retryAfter is meaningful only when ok is false.
func (b *breaker) allow() (ok bool, probe bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false, 0
	case breakerOpen:
		if wait := b.until.Sub(b.now()); wait > 0 {
			return false, false, wait
		}
		b.setState(breakerHalfOpen)
		b.probing = true
		return true, true, 0
	default: // half-open
		if b.probing {
			return false, false, b.backoff
		}
		b.probing = true
		return true, true, 0
	}
}

// onResult feeds one finished job's outcome back: failure reports a
// supervision failure (panic, abandonment, soundness violation),
// probe marks the job as the half-open probe.
func (b *breaker) onResult(failure, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		if failure {
			b.trip(b.backoff * 2)
		} else {
			b.setState(breakerClosed)
			b.fails = 0
			b.backoff = b.base
		}
		return
	}
	if b.state != breakerClosed {
		// A pre-trip straggler finishing while the breaker is open or a
		// probe is pending; its outcome is stale evidence either way.
		return
	}
	if !failure {
		b.fails = 0
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.trip(b.backoff)
	}
}

// releaseProbe un-claims a half-open probe whose job never ran (backed
// out of admission, or shed before solving); the breaker stays
// half-open and the next submit becomes the probe instead.
func (b *breaker) releaseProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
}

// trip opens the breaker with the given backoff (jittered, capped).
// Caller holds b.mu.
func (b *breaker) trip(backoff time.Duration) {
	if backoff > b.max {
		backoff = b.max
	}
	b.backoff = backoff
	jittered := backoff/2 + time.Duration(b.rng.Int63n(int64(backoff/2)+1))
	b.until = b.now().Add(jittered)
	b.fails = 0
	b.setState(breakerOpen)
}

// setState records a transition and publishes it through onChange.
// Caller holds b.mu.
func (b *breaker) setState(state int64) {
	b.state = state
	b.onChange(state)
}

// current returns the breaker's state for /readyz and /metrics.
func (b *breaker) current() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
