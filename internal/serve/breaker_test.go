package serve

import (
	"testing"
	"time"
)

// newTestBreaker builds a breaker on an adjustable fake clock.
func newTestBreaker(threshold int, base, max time.Duration) (*breaker, *time.Time) {
	now := time.Unix(1000, 0)
	var states []int64
	b := newBreaker(threshold, base, max, 42, func(s int64) { states = append(states, s) })
	b.now = func() time.Time { return now }
	return b, &now
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second, time.Minute)
	for i := 0; i < 2; i++ {
		if ok, _, _ := b.allow(); !ok {
			t.Fatalf("closed breaker denied admission after %d failures", i)
		}
		b.onResult(true, false)
	}
	// A success resets the consecutive-failure count.
	b.onResult(false, false)
	for i := 0; i < 2; i++ {
		b.onResult(true, false)
	}
	if b.current() != breakerClosed {
		t.Fatal("breaker tripped before reaching the threshold of consecutive failures")
	}
	b.onResult(true, false)
	if b.current() != breakerOpen {
		t.Fatal("breaker still closed after threshold consecutive failures")
	}
	ok, _, retry := b.allow()
	if ok {
		t.Fatal("open breaker admitted a submit inside the backoff")
	}
	// Jittered backoff lands in [base/2, base].
	if retry < time.Second/2 || retry > time.Second {
		t.Errorf("retryAfter %v outside the jitter window [0.5s, 1s]", retry)
	}
}

func TestBreakerHalfOpenProbeAndReclose(t *testing.T) {
	b, now := newTestBreaker(1, time.Second, time.Minute)
	b.onResult(true, false)
	if b.current() != breakerOpen {
		t.Fatal("threshold-1 breaker did not trip on first failure")
	}

	// Backoff elapsed: the next allow admits exactly one probe.
	*now = now.Add(2 * time.Second)
	ok, probe, _ := b.allow()
	if !ok || !probe {
		t.Fatalf("allow after backoff = (%v, %v), want an admitted probe", ok, probe)
	}
	if b.current() != breakerHalfOpen {
		t.Fatal("breaker not half-open while probing")
	}
	if ok, _, _ := b.allow(); ok {
		t.Fatal("second submit admitted while a probe is in flight")
	}

	// Probe succeeds: closed again, backoff reset.
	b.onResult(false, true)
	if b.current() != breakerClosed {
		t.Fatal("breaker did not re-close on probe success")
	}
	if b.backoff != time.Second {
		t.Errorf("backoff %v after re-close, want reset to base", b.backoff)
	}
}

func TestBreakerProbeFailureDoublesBackoff(t *testing.T) {
	b, now := newTestBreaker(1, time.Second, 3*time.Second)
	b.onResult(true, false)
	for i, wantBackoff := range []time.Duration{2 * time.Second, 3 * time.Second, 3 * time.Second} {
		*now = now.Add(time.Minute)
		ok, probe, _ := b.allow()
		if !ok || !probe {
			t.Fatalf("round %d: probe not admitted", i)
		}
		b.onResult(true, true)
		if b.current() != breakerOpen {
			t.Fatalf("round %d: breaker not open after failed probe", i)
		}
		// Doubled each round, capped at max.
		if b.backoff != wantBackoff {
			t.Errorf("round %d: backoff %v, want %v", i, b.backoff, wantBackoff)
		}
	}
}

func TestBreakerReleaseProbe(t *testing.T) {
	b, now := newTestBreaker(1, time.Second, time.Minute)
	b.onResult(true, false)
	*now = now.Add(2 * time.Second)
	if ok, probe, _ := b.allow(); !ok || !probe {
		t.Fatal("probe not admitted after backoff")
	}
	// The probe job was shed before solving: releasing it lets the next
	// submit probe instead of deadlocking the half-open state.
	b.releaseProbe()
	if ok, probe, _ := b.allow(); !ok || !probe {
		t.Fatal("next submit after releaseProbe was not admitted as probe")
	}
}

func TestBreakerIgnoresStaleResults(t *testing.T) {
	b, _ := newTestBreaker(2, time.Second, time.Minute)
	b.onResult(true, false)
	b.onResult(true, false)
	if b.current() != breakerOpen {
		t.Fatal("breaker did not trip")
	}
	// A pre-trip straggler reporting success while open must not close
	// the breaker without a probe.
	b.onResult(false, false)
	if b.current() != breakerOpen {
		t.Fatal("stale non-probe success closed an open breaker")
	}
}
