package serve

// The serve-layer chaos harness: the 8-client load pattern from
// load_test.go run under random fault injection — worker panics
// mid-job, slow journal fsyncs, journal write errors — followed by a
// simulated SIGKILL mid-load and a restart over the same journal
// directory. The invariants checked are the crash-only contract:
//
//   - zero lost jobs: every submit the server acknowledged is either
//     done in the restarted server or still running there;
//   - zero duplicated jobs: one idempotency key maps to exactly one
//     job ID across both incarnations;
//   - a panic storm trips only the affected shard's breaker while the
//     other shards keep serving.
//
// Everything runs with -race in CI (the chaos-smoke job).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fpgasat/internal/obs"
	"fpgasat/internal/robust"
)

// chaosClient is one load generator: it submits jobs with unique
// idempotency keys, retrying on 429/503, and records every key the
// server acknowledged together with the job ID it was bound to.
type chaosClient struct {
	id       int
	accepted map[string]string // idempotency key -> job ID
}

func postJSON(url string, req SolveRequest) (*http.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return http.Post(url+"/v1/solve", "application/json", strings.NewReader(string(body)))
}

// submitChaos submits one job, retrying transient rejections, and
// returns the bound job ID ("" when the server was gone/unavailable
// throughout).
func submitChaos(t *testing.T, url string, req SolveRequest) string {
	t.Helper()
	for attempt := 0; attempt < 50; attempt++ {
		resp, err := postJSON(url, req)
		if err != nil {
			// Server crashed mid-request: the submit may or may not have
			// been accepted; the recovery check resolves it via the key.
			return ""
		}
		var v JobView
		derr := json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK:
			if derr != nil {
				t.Errorf("decoding accepted response: %v", derr)
				return ""
			}
			return v.ID
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			time.Sleep(2 * time.Millisecond)
		default:
			t.Errorf("submit status %d", resp.StatusCode)
			return ""
		}
	}
	return ""
}

// TestChaosCrashRecoveryNoLossNoDup is the headline chaos test: 8
// clients load the daemon while failpoints randomly crash workers and
// slow fsyncs, the server is killed mid-load, and a new server over the
// same journal must account for every acknowledged job exactly once.
func TestChaosCrashRecoveryNoLossNoDup(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test needs real load; skipped in -short")
	}
	dir := t.TempDir()
	opts := Options{
		Shards:     []ShardConfig{{Name: "only", MaxVertices: 0, Workers: 4, QueueDepth: 256}},
		JournalDir: dir,
		GCInterval: time.Hour,
		// Generous sojourn target: shedding is legitimate completion, but
		// the test is cleaner when most jobs actually solve.
		SojournTarget: time.Minute,
		// A panic storm is part of the fault mix; keep the breaker from
		// blackholing the whole run.
		BreakerThreshold: 50,
	}
	s, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	// Random fault injection: ~3% of dequeues panic the worker, ~10% of
	// fsyncs stall briefly. Each failpoint owns its rng (guarded by a
	// mutex — failpoints fire from many goroutines).
	var fpMu sync.Mutex
	rng := rand.New(rand.NewSource(7))
	robust.SetFailpoint(robust.FPServeWorker, func(args ...any) {
		fpMu.Lock()
		crash := rng.Intn(100) < 3
		fpMu.Unlock()
		if crash {
			panic("chaos: worker crash mid-job")
		}
	})
	robust.SetFailpoint(robust.FPJournalSync, func(args ...any) {
		fpMu.Lock()
		stall := rng.Intn(100) < 10
		fpMu.Unlock()
		if stall {
			time.Sleep(time.Millisecond)
		}
	})
	t.Cleanup(func() {
		robust.ClearFailpoint(robust.FPServeWorker)
		robust.ClearFailpoint(robust.FPJournalSync)
	})

	const clients = 8
	const jobsPerClient = 12
	results := make([]chaosClient, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := chaosClient{id: c, accepted: map[string]string{}}
			for i := 0; i < jobsPerClient; i++ {
				key := fmt.Sprintf("chaos-%d-%d", c, i)
				id := submitChaos(t, ts.URL, SolveRequest{
					Graph: triangleCol, Width: 3, IdempotencyKey: key,
					DeadlineMS: 60_000,
				})
				if id != "" {
					cl.accepted[key] = id
				}
			}
			results[c] = cl
		}(c)
	}

	// Kill the server while the clients are mid-load.
	time.Sleep(50 * time.Millisecond)
	s.Crash()
	ts.Close()
	wg.Wait()

	// Restart over the same journal. Give recovery a fresh registry so
	// the counters below measure only this incarnation.
	reg := obs.NewRegistry()
	opts.Metrics = reg
	s2, err := NewServer(opts)
	if err != nil {
		t.Fatalf("restart over journal: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = s2.Drain(ctx)
	}()

	// Zero lost: every acknowledged key resolves to a job in the
	// restarted server — either restored done or re-enqueued — and the
	// ID binding survived.
	total := 0
	for _, cl := range results {
		for key, id := range cl.accepted {
			total++
			job, ok := s2.jobs.getByKey(key)
			if !ok {
				t.Errorf("client %d: acknowledged key %s lost across crash", cl.id, key)
				continue
			}
			if job.ID != id {
				t.Errorf("key %s rebound from %s to %s across crash", key, id, job.ID)
			}
		}
	}
	if total == 0 {
		t.Fatal("chaos run acknowledged no jobs at all; the load phase is broken")
	}

	// Zero duplicated: a resubmit with a recovered key must bind to the
	// recovered job, not admit a new one.
	for _, cl := range results {
		for key, id := range cl.accepted {
			job, dup, err := s2.SubmitDedup(SolveRequest{
				Graph: triangleCol, Width: 3, IdempotencyKey: key,
			})
			if err != nil {
				t.Fatalf("resubmit of %s: %v", key, err)
			}
			if !dup || job.ID != id {
				t.Errorf("resubmit of %s: dup=%v id=%s, want duplicate of %s", key, dup, job.ID, id)
			}
			break // one spot-check per client keeps the test fast
		}
	}

	// Every recovered pending job must eventually complete.
	deadline := time.Now().Add(60 * time.Second)
	for _, cl := range results {
		for key := range cl.accepted {
			job, ok := s2.jobs.getByKey(key)
			if !ok {
				continue // already reported above
			}
			select {
			case <-job.Done():
			case <-time.After(time.Until(deadline)):
				t.Fatalf("recovered job %s (key %s) never completed", job.ID, key)
			}
		}
	}
	if got := reg.Counter(MetricJournalReplayed).Value(); got == 0 {
		t.Error("restart replayed no journal records; recovery did not engage")
	}
}

// TestChaosJournalWriteErrorRejectsSubmit proves the durability-or-
// rejection contract: when the WAL cannot be written, the submit fails
// with ErrJournal (503) and the job is neither queued nor retained.
func TestChaosJournalWriteErrorRejectsSubmit(t *testing.T) {
	s := newTestServer(t, Options{JournalDir: t.TempDir()})
	robust.SetFailpoint(robust.FPJournalAppend, func(args ...any) {
		if args[0] == recSubmit {
			*(args[1].(*error)) = errors.New("chaos: disk full")
		}
	})
	t.Cleanup(func() { robust.ClearFailpoint(robust.FPJournalAppend) })

	_, err := s.Submit(SolveRequest{Graph: triangleCol, Width: 3, IdempotencyKey: "doomed"})
	if !errors.Is(err, ErrJournal) {
		t.Fatalf("submit with failing journal returned %v, want ErrJournal", err)
	}
	if s.JobCount() != 0 {
		t.Errorf("rejected submit left %d jobs in the table", s.JobCount())
	}
	if _, ok := s.jobs.getByKey("doomed"); ok {
		t.Error("rejected submit left its idempotency key bound")
	}

	// The path must recover once the fault clears: same key, accepted.
	robust.ClearFailpoint(robust.FPJournalAppend)
	job, err := s.Submit(SolveRequest{Graph: triangleCol, Width: 3, IdempotencyKey: "doomed"})
	if err != nil {
		t.Fatalf("submit after fault cleared: %v", err)
	}
	waitDone(t, job)
}

// TestChaosPanicStormTripsOnlyAffectedShard poisons one shard with
// worker panics until its breaker opens, then checks the sibling shard
// still accepts and solves jobs.
func TestChaosPanicStormTripsOnlyAffectedShard(t *testing.T) {
	s := newTestServer(t, Options{
		Shards: []ShardConfig{
			{Name: "small", MaxVertices: 10, Workers: 2, QueueDepth: 32},
			{Name: "large", MaxVertices: 0, Workers: 2, QueueDepth: 32},
		},
		BreakerThreshold: 3,
		BreakerBackoff:   time.Minute, // stay open for the whole test
	})
	robust.SetFailpoint(robust.FPServeWorker, func(args ...any) {
		if args[1].(string) == "small" {
			panic("chaos: poisoned shard")
		}
	})
	t.Cleanup(func() { robust.ClearFailpoint(robust.FPServeWorker) })

	// Feed the small shard until its breaker opens (each job dies of the
	// injected panic, counting as a supervision failure).
	deadline := time.Now().Add(30 * time.Second)
	for {
		job, err := s.Submit(SolveRequest{Graph: triangleCol, Width: 3})
		var brkErr *BreakerOpenError
		if errors.As(err, &brkErr) {
			if brkErr.Shard != "small" {
				t.Fatalf("breaker open on shard %s, want small", brkErr.Shard)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, job)
		if v := job.View(); v.Answer != AnswerUndecided || v.Error == "" {
			t.Fatalf("poisoned job finished as %+v, want failed UNDECIDED", v)
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened under the panic storm")
		}
	}
	if got := s.reg.Gauge(MetricBreakerState + ".small").Value(); got != breakerOpen {
		t.Errorf("small shard breaker gauge = %d, want open (%d)", got, breakerOpen)
	}
	if got := s.reg.Counter(MetricBreakerTrips + ".small").Value(); got < 1 {
		t.Errorf("%s.small = %d, want >= 1", MetricBreakerTrips, got)
	}

	// The sibling shard is untouched: a 12-vertex job routes to "large"
	// and solves normally.
	job, err := s.Submit(SolveRequest{Graph: cliqueDIMACS(12), Width: 12})
	if err != nil {
		t.Fatalf("large shard rejected a job while small is open: %v", err)
	}
	if v := waitDone(t, job); v.Answer != AnswerRoutable || v.Shard != "large" {
		t.Fatalf("large-shard job: %+v, want ROUTABLE on large", v)
	}
	if got := s.reg.Gauge(MetricBreakerState + ".large").Value(); got != breakerClosed {
		t.Errorf("large shard breaker = %d, want closed", got)
	}

	// Readiness reflects the partial outage: still ready overall, with
	// the small shard reported open.
	ready, shards := s.Readiness()
	if !ready {
		t.Error("server not ready although the large shard is healthy")
	}
	for _, st := range shards {
		want := "closed"
		if st.Name == "small" {
			want = "open"
		}
		if st.Breaker != want {
			t.Errorf("shard %s breaker %q, want %q", st.Name, st.Breaker, want)
		}
	}
}

// TestChaosQueueStallSheds wedges the shard's consumer with a blocked
// dequeue failpoint so queued jobs overstay the sojourn target, then
// checks they are shed (completed UNDECIDED, Shed set) instead of
// solved late or lost.
func TestChaosQueueStallSheds(t *testing.T) {
	s := newTestServer(t, Options{
		Shards:        []ShardConfig{{Name: "only", MaxVertices: 0, Workers: 1, QueueDepth: 8}},
		SojournTarget: 20 * time.Millisecond,
	})
	stall := make(chan struct{})
	var once sync.Once
	unstall := func() { once.Do(func() { close(stall) }) }
	robust.SetFailpoint(robust.FPServeDequeue, func(args ...any) { <-stall })
	t.Cleanup(func() {
		robust.ClearFailpoint(robust.FPServeDequeue)
		unstall()
	})

	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := s.Submit(SolveRequest{Graph: triangleCol, Width: 3})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	time.Sleep(40 * time.Millisecond) // all of them overstay the target
	unstall()

	shed := 0
	for _, j := range jobs {
		v := waitDone(t, j)
		if v.Shed {
			shed++
			if v.Answer != AnswerUndecided || v.Error == "" {
				t.Errorf("shed job view %+v, want UNDECIDED with an error", v)
			}
		}
	}
	// The first job was dequeued before the stall engaged (the failpoint
	// fires after the dequeue), so at least the tail must shed.
	if shed == 0 {
		t.Error("no job was shed although all overstayed the sojourn target")
	}
	if got := s.reg.Counter(MetricShedSojourn).Value(); int(got) != shed {
		t.Errorf("%s = %d, want %d", MetricShedSojourn, got, shed)
	}
}
