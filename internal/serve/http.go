package serve

// The HTTP surface of the daemon. Four endpoints:
//
//	POST /v1/solve     submit a job (async 202, or sync with "wait")
//	GET  /v1/jobs/{id} job status / result
//	GET  /metrics      live obs snapshot (JSON)
//	GET  /healthz      liveness + drain state
//
// Error mapping: *RequestError -> 400, ErrQueueFull -> 429 (with
// Retry-After), ErrDraining -> 503, a synchronous job whose deadline
// expired mid-solve -> 504 with the partial job view (attempt counts
// per lane) in the body.

import (
	"encoding/json"
	"errors"
	"net/http"
)

// maxRequestBody bounds POST bodies; inline DIMACS graphs above this
// belong in a file submitted through an instance registry instead.
const maxRequestBody = 64 << 20

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body) // the status line is already out; nothing to recover
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding request: " + err.Error()})
		return
	}
	job, err := s.Submit(req)
	if err != nil {
		var reqErr *RequestError
		switch {
		case errors.As(err, &reqErr):
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		case errors.Is(err, ErrDraining):
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		}
		return
	}
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, job.View())
		return
	}
	select {
	case <-job.Done():
		v := job.View()
		switch {
		case v.TimedOut:
			// The job's own deadline expired mid-solve; the view still
			// carries the per-lane attempt counts accumulated so far.
			writeJSON(w, http.StatusGatewayTimeout, v)
		case v.Answer == AnswerUndecided:
			writeJSON(w, http.StatusInternalServerError, v)
		default:
			writeJSON(w, http.StatusOK, v)
		}
	case <-r.Context().Done():
		// The client went away (or its own request deadline passed)
		// while the job was still solving; report the in-flight view.
		writeJSON(w, http.StatusGatewayTimeout, job.View())
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = s.Scrape().WriteJSON(w)
}

// healthBody is the GET /healthz payload.
type healthBody struct {
	Status string `json:"status"`
	Jobs   int    `json:"jobs"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, healthBody{Status: "draining", Jobs: s.JobCount()})
		return
	}
	writeJSON(w, http.StatusOK, healthBody{Status: "ok", Jobs: s.JobCount()})
}
