package serve

// The HTTP surface of the daemon. Five endpoints:
//
//	POST /v1/solve     submit a job (async 202, or sync with "wait")
//	GET  /v1/jobs/{id} job status / result
//	GET  /metrics      live obs snapshot (JSON)
//	GET  /healthz      liveness (200 while the process serves requests)
//	GET  /readyz       readiness (503 while draining or saturated)
//
// Error mapping: *RequestError -> 400, ErrQueueFull -> 429 with an
// adaptive Retry-After computed from the shard's observed service
// times, *BreakerOpenError -> 503 with Retry-After set to the breaker's
// remaining backoff, ErrDraining and ErrJournal -> 503, a synchronous
// job whose deadline expired mid-solve -> 504 with the partial job view
// (attempt counts per lane) in the body, and a synchronous job shed by
// the admission controller -> 503.
//
// Idempotency: a request carrying idempotency_key returns the
// already-accepted job when the key is known — 200 if that job is done,
// 202 (or the usual synchronous wait) otherwise — instead of admitting
// a duplicate.

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// maxRequestBody bounds POST bodies; inline DIMACS graphs above this
// belong in a file submitted through an instance registry instead.
const maxRequestBody = 64 << 20

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body) // the status line is already out; nothing to recover
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding request: " + err.Error()})
		return
	}
	job, duplicate, err := s.SubmitDedup(req)
	if err != nil {
		var reqErr *RequestError
		var fullErr *QueueFullError
		var brkErr *BreakerOpenError
		switch {
		case errors.As(err, &reqErr):
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		case errors.As(err, &fullErr):
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(fullErr.RetryAfter)))
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		case errors.As(err, &brkErr):
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(brkErr.RetryAfter)))
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		case errors.Is(err, ErrDraining), errors.Is(err, ErrJournal):
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		}
		return
	}
	if duplicate {
		// Idempotent replay of an accepted request: report the bound job.
		select {
		case <-job.Done():
			writeJSON(w, http.StatusOK, job.View())
			return
		default:
		}
		if !req.Wait {
			writeJSON(w, http.StatusAccepted, job.View())
			return
		}
		// fall through to the synchronous wait below
	}
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, job.View())
		return
	}
	select {
	case <-job.Done():
		v := job.View()
		switch {
		case v.Shed:
			// Load-shed at dequeue: the server chose not to solve it.
			writeJSON(w, http.StatusServiceUnavailable, v)
		case v.TimedOut:
			// The job's own deadline expired mid-solve; the view still
			// carries the per-lane attempt counts accumulated so far.
			writeJSON(w, http.StatusGatewayTimeout, v)
		case v.Answer == AnswerUndecided:
			writeJSON(w, http.StatusInternalServerError, v)
		default:
			writeJSON(w, http.StatusOK, v)
		}
	case <-r.Context().Done():
		// The client went away (or its own request deadline passed)
		// while the job was still solving; report the in-flight view.
		writeJSON(w, http.StatusGatewayTimeout, job.View())
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = s.Scrape().WriteJSON(w)
}

// healthBody is the GET /healthz payload.
type healthBody struct {
	Status string `json:"status"`
	Jobs   int    `json:"jobs"`
}

// handleHealthz is pure liveness: it answers 200 as long as the process
// can serve a request at all, even while draining — restarting a
// daemon because it is shutting down gracefully would only lose the
// jobs it is trying to finish. Point liveness probes here and traffic
// routing at /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, healthBody{Status: status, Jobs: s.JobCount()})
}

// readyBody is the GET /readyz payload.
type readyBody struct {
	Ready  bool          `json:"ready"`
	Status string        `json:"status"`
	Shards []ShardStatus `json:"shards"`
}

// handleReadyz is readiness: 200 while the daemon should receive new
// traffic, 503 once it is draining or no shard can accept an
// interactive job (every breaker open or every queue full). Load
// balancers should eject on 503 here and re-add when it recovers.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready, shards := s.Readiness()
	body := readyBody{Ready: ready, Status: "ready", Shards: shards}
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
		body.Status = "not ready"
		if s.Draining() {
			body.Status = "draining"
		}
	}
	writeJSON(w, code, body)
}
