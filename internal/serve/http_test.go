package serve

// End-to-end tests of the HTTP surface: every endpoint, every error
// status the daemon can return, and the drain behaviour a rolling
// restart relies on. All tests run against httptest servers wrapping
// Server.Handler, so they exercise exactly what cmd/fpgasatd serves.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"fpgasat/internal/coloring"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/obs"
	"fpgasat/internal/robust"
)

// newHTTPServer starts an httptest server around a fresh Server and
// registers ordered cleanup: the HTTP listener closes before the
// Server drains.
func newHTTPServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postSolve sends a SolveRequest and returns the status code plus the
// decoded body (a JobView on 2xx/504, an errorBody otherwise).
func postSolve(t *testing.T, ts *httptest.Server, req SolveRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func decodeView(t *testing.T, raw []byte) JobView {
	t.Helper()
	var v JobView
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("decoding job view from %s: %v", raw, err)
	}
	return v
}

func TestHTTPSolveSyncRoutable(t *testing.T) {
	_, ts := newHTTPServer(t, Options{})
	code, raw := postSolve(t, ts, SolveRequest{
		Graph: triangleCol, Width: 3,
		Wait: true, WantColors: true, Verify: true,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, raw)
	}
	v := decodeView(t, raw)
	if v.Answer != AnswerRoutable || v.State != StateDone {
		t.Fatalf("answer %q state %q, want ROUTABLE/done", v.Answer, v.State)
	}
	if len(v.Colors) != 3 {
		t.Fatalf("colors %v, want a 3-vertex assignment", v.Colors)
	}
	if v.Winner == "" || len(v.Lanes) == 0 {
		t.Fatalf("missing winner/lanes in %s", raw)
	}
}

func TestHTTPSolveSyncUnroutable(t *testing.T) {
	_, ts := newHTTPServer(t, Options{})
	code, raw := postSolve(t, ts, SolveRequest{Graph: triangleCol, Width: 2, Wait: true, Verify: true})
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, raw)
	}
	if v := decodeView(t, raw); v.Answer != AnswerUnroutable {
		t.Fatalf("answer %q, want UNROUTABLE", v.Answer)
	}
}

func TestHTTPSolveAsyncPoll(t *testing.T) {
	_, ts := newHTTPServer(t, Options{})
	code, raw := postSolve(t, ts, SolveRequest{Instance: "too_large", Verify: true})
	if code != http.StatusAccepted {
		t.Fatalf("status %d, body %s", code, raw)
	}
	v := decodeView(t, raw)
	if v.ID == "" || v.State == StateDone {
		t.Fatalf("async submit returned %s", raw)
	}
	deadline := time.Now().Add(60 * time.Second)
	for v.State != StateDone {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %+v", v.ID, v)
		}
		time.Sleep(5 * time.Millisecond)
		resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		raw, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("poll: status %d err %v", resp.StatusCode, err)
		}
		v = decodeView(t, raw)
	}
	// Width 0 on a named instance defaults to its calibrated routable width.
	if v.Answer != AnswerRoutable || v.Instance != "too_large" || v.Width != 7 {
		t.Fatalf("polled result %+v, want ROUTABLE too_large at width 7", v)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := newHTTPServer(t, Options{})
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	for name, req := range map[string]SolveRequest{
		"no problem":       {Width: 3},
		"both problems":    {Instance: "alu2", Graph: triangleCol, Width: 3},
		"unknown instance": {Instance: "definitely-not-registered"},
		"graph sans width": {Graph: triangleCol},
	} {
		if code, raw := postSolve(t, ts, req); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (body %s), want 400", name, code, raw)
		}
	}
}

func TestHTTPJobNotFound(t *testing.T) {
	_, ts := newHTTPServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/jobs/no-such-job")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestHTTPHealthzAndMetrics(t *testing.T) {
	_, ts := newHTTPServer(t, Options{})
	if code, raw := postSolve(t, ts, SolveRequest{Graph: triangleCol, Width: 3, Wait: true}); code != http.StatusOK {
		t.Fatalf("warm-up solve: status %d body %s", code, raw)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health healthBody
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || health.Status != "ok" || health.Jobs != 1 {
		t.Fatalf("healthz: status %d body %+v err %v", resp.StatusCode, health, err)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d err %v", resp.StatusCode, err)
	}
	if got := snap.Counters[MetricJobsCompleted]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricJobsCompleted, got)
	}
	for _, g := range []string{
		MetricQueueDepth + ".only",
		MetricQueueCap + ".only",
		MetricWorkersBusy + ".only",
		MetricWorkers + ".only",
		MetricPoolGets + ".only",
		MetricJobsRetained,
	} {
		if _, ok := snap.Gauges[g]; !ok {
			t.Errorf("gauge %q missing from /metrics", g)
		}
	}
	if _, ok := snap.Timers[MetricSolve]; !ok {
		t.Errorf("timer %q missing from /metrics", MetricSolve)
	}
}

func TestHTTPDeadlineExpiry504(t *testing.T) {
	_, ts := newHTTPServer(t, Options{})
	robust.SetFailpoint(robust.FPPortfolioLane, func(args ...any) { time.Sleep(150 * time.Millisecond) })
	t.Cleanup(func() { robust.ClearFailpoint(robust.FPPortfolioLane) })

	code, raw := postSolve(t, ts, SolveRequest{Graph: triangleCol, Width: 3, DeadlineMS: 40, Wait: true})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d (body %s), want 504", code, raw)
	}
	v := decodeView(t, raw)
	if !v.TimedOut || v.Answer != AnswerUndecided {
		t.Fatalf("view %+v, want timed_out UNDECIDED", v)
	}
	// The 504 body must still carry the partial per-lane attempt info.
	if v.Attempts < 1 || len(v.Lanes) == 0 {
		t.Fatalf("504 body lost attempt info: %+v", v)
	}
}

func TestHTTPQueueFull429(t *testing.T) {
	_, ts := newHTTPServer(t, Options{
		Shards: []ShardConfig{{Name: "only", Workers: 1, QueueDepth: 1}},
	})
	release := make(chan struct{})
	var once sync.Once
	releaseAll := func() { once.Do(func() { close(release) }) }
	robust.SetFailpoint(robust.FPPortfolioLane, func(args ...any) { <-release })
	t.Cleanup(func() {
		robust.ClearFailpoint(robust.FPPortfolioLane)
		releaseAll()
	})

	var running JobView
	if code, raw := postSolve(t, ts, SolveRequest{Graph: triangleCol, Width: 3}); code != http.StatusAccepted {
		t.Fatalf("first submit: status %d body %s", code, raw)
	} else {
		running = decodeView(t, raw)
	}
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + running.ID)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if decodeView(t, raw).State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if code, raw := postSolve(t, ts, SolveRequest{Graph: triangleCol, Width: 3}); code != http.StatusAccepted {
		t.Fatalf("second submit: status %d body %s", code, raw)
	}

	body, _ := json.Marshal(SolveRequest{Graph: triangleCol, Width: 3})
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: status %d, want 429", resp.StatusCode)
	}
	// No service time has been observed yet (the one worker is stalled),
	// so the adaptive Retry-After bottoms out at its 1-second floor.
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("429 Retry-After = %q, want the 1s floor", got)
	}
	releaseAll()
}

// TestHTTPRetryAfterAdaptive covers the computed case: once the shard
// has observed real service times, a 429's Retry-After advertises the
// backlog-drain estimate instead of a hardcoded constant.
func TestHTTPRetryAfterAdaptive(t *testing.T) {
	s, ts := newHTTPServer(t, Options{
		Shards: []ShardConfig{{Name: "only", Workers: 1, QueueDepth: 1}},
	})
	// Pretend the shard has been solving 5-second jobs all day.
	for i := 0; i < 8; i++ {
		s.shards[0].adm.observe(5 * time.Second)
	}
	release := make(chan struct{})
	var once sync.Once
	releaseAll := func() { once.Do(func() { close(release) }) }
	robust.SetFailpoint(robust.FPPortfolioLane, func(args ...any) { <-release })
	t.Cleanup(func() {
		robust.ClearFailpoint(robust.FPPortfolioLane)
		releaseAll()
	})

	if code, raw := postSolve(t, ts, SolveRequest{Graph: triangleCol, Width: 3}); code != http.StatusAccepted {
		t.Fatalf("first submit: status %d body %s", code, raw)
	}
	// Wait until the worker picked the job up, then occupy the queue slot.
	for s.shards[0].busy.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if code, raw := postSolve(t, ts, SolveRequest{Graph: triangleCol, Width: 3}); code != http.StatusAccepted {
		t.Fatalf("second submit: status %d body %s", code, raw)
	}

	body, _ := json.Marshal(SolveRequest{Graph: triangleCol, Width: 3})
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: status %d, want 429", resp.StatusCode)
	}
	// 1 queued + 1 busy at ~5s each on one worker: the estimate must be
	// at least the 5s median floor, far above the old hardcoded 1.
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	if secs < 5 {
		t.Errorf("Retry-After = %ds, want >= 5s (observed median service time)", secs)
	}
	releaseAll()
}

// TestHTTPIdempotencyKey covers the retry contract: resubmitting with
// the same idempotency key binds to the existing job instead of
// admitting a duplicate.
func TestHTTPIdempotencyKey(t *testing.T) {
	s, ts := newHTTPServer(t, Options{})
	req := SolveRequest{Graph: triangleCol, Width: 3, IdempotencyKey: "retry-me"}
	code, raw := postSolve(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d body %s", code, raw)
	}
	first := decodeView(t, raw)

	// Wait for completion, then retry: the duplicate reports the done
	// job with a 200, same ID, no new admission.
	job, ok := s.Lookup(first.ID)
	if !ok {
		t.Fatalf("job %s not in table", first.ID)
	}
	waitDone(t, job)
	code, raw = postSolve(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("duplicate submit: status %d body %s, want 200", code, raw)
	}
	if dup := decodeView(t, raw); dup.ID != first.ID {
		t.Fatalf("duplicate submit created job %s, want %s", dup.ID, first.ID)
	}
	if got := s.reg.Counter(MetricJobsSubmitted).Value(); got != 1 {
		t.Errorf("%s = %d, want 1 (duplicate must not be admitted)", MetricJobsSubmitted, got)
	}
}

func TestHTTPDrainReturns503(t *testing.T) {
	s, ts := newHTTPServer(t, Options{})

	// Before the drain: alive and ready.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready readyBody
	err = json.NewDecoder(resp.Body).Decode(&ready)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || !ready.Ready || len(ready.Shards) == 0 {
		t.Fatalf("pre-drain readyz: status %d body %+v err %v", resp.StatusCode, ready, err)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code, raw := postSolve(t, ts, SolveRequest{Graph: triangleCol, Width: 3}); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: status %d body %s, want 503", code, raw)
	}

	// Liveness stays 200 while draining — restarting a gracefully
	// shutting-down daemon would lose the jobs it is finishing — but it
	// reports the drain state.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health healthBody
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || health.Status != "draining" {
		t.Fatalf("draining healthz: status %d body %+v err %v", resp.StatusCode, health, err)
	}

	// Readiness flips to 503 so load balancers stop routing here.
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&ready)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable || ready.Ready || ready.Status != "draining" {
		t.Fatalf("draining readyz: status %d body %+v err %v", resp.StatusCode, ready, err)
	}
}

// TestHTTPSigtermDrainViaSignalPath mirrors what cmd/fpgasatd does on
// SIGTERM: stop admission, let in-flight jobs finish, then shut the
// listener down. The in-flight synchronous request must complete with
// its real answer, not an error.
func TestHTTPSigtermDrainViaSignalPath(t *testing.T) {
	s, ts := newHTTPServer(t, Options{
		Shards: []ShardConfig{{Name: "only", Workers: 2, QueueDepth: 16}},
	})
	gate := make(chan struct{})
	var once sync.Once
	robust.SetFailpoint(robust.FPPortfolioLane, func(args ...any) { <-gate })
	t.Cleanup(func() {
		robust.ClearFailpoint(robust.FPPortfolioLane)
		once.Do(func() { close(gate) })
	})

	type result struct {
		code int
		raw  []byte
	}
	results := make(chan result, 4)
	for i := 0; i < 4; i++ {
		go func() {
			code, raw := postSolve(t, ts, SolveRequest{Graph: triangleCol, Width: 3, Wait: true, DeadlineMS: 60_000})
			results <- result{code, raw}
		}()
	}
	// Wait for all four to be admitted (2 running + 2 queued), then
	// start the drain concurrently and release the solver gate.
	for s.JobCount() < 4 {
		time.Sleep(time.Millisecond)
	}
	drainErr := make(chan error, 1)
	go func() {
		dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer dcancel()
		drainErr <- s.Drain(dctx)
	}()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	once.Do(func() { close(gate) })

	for i := 0; i < 4; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("in-flight request during drain: status %d body %s", r.code, r.raw)
		}
		if v := decodeView(t, r.raw); v.Answer != AnswerRoutable {
			t.Fatalf("in-flight request during drain: %+v", v)
		}
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestHTTPSolveDistanceInstance is the serve round trip of the
// bandwidth-coloring flow: a crosstalk instance solved with the order
// encoding is ROUTABLE at its calibrated width (with a distance-valid
// track assignment) and UNROUTABLE one track below it.
func TestHTTPSolveDistanceInstance(t *testing.T) {
	_, ts := newHTTPServer(t, Options{})
	in, err := mcnc.ByName("term1.x2")
	if err != nil {
		t.Fatal(err)
	}
	code, raw := postSolve(t, ts, SolveRequest{
		Instance: in.Name, Strategy: "order/-",
		Wait: true, WantColors: true, Verify: true,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, raw)
	}
	v := decodeView(t, raw)
	if v.Answer != AnswerRoutable || v.Width != in.RoutableW {
		t.Fatalf("answer %q at width %d, want ROUTABLE at %d", v.Answer, v.Width, in.RoutableW)
	}
	_, g, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.Verify(g, v.Colors, in.RoutableW); err != nil {
		t.Fatalf("returned track assignment violates a distance constraint: %v", err)
	}

	code, raw = postSolve(t, ts, SolveRequest{
		Instance: in.Name, Strategy: "ladder/-", Width: in.UnroutableW(),
		Wait: true, Verify: true,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, raw)
	}
	if v := decodeView(t, raw); v.Answer != AnswerUnroutable {
		t.Fatalf("answer %q at width %d, want UNROUTABLE", v.Answer, in.UnroutableW())
	}
}

// TestHTTPSolveWeightedInlineGraph submits a bandwidth-coloring graph
// as inline weighted DIMACS: a distance-2 triangle needs span 5 tracks
// (colors {0,2,4}) and is infeasible with 4.
func TestHTTPSolveWeightedInlineGraph(t *testing.T) {
	_, ts := newHTTPServer(t, Options{})
	const triX2 = "p edge 3 3\ne 1 2 2\ne 2 3 2\ne 1 3 2\n"
	code, raw := postSolve(t, ts, SolveRequest{
		Graph: triX2, Width: 5, Strategy: "order/-",
		Wait: true, WantColors: true, Verify: true,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, raw)
	}
	v := decodeView(t, raw)
	if v.Answer != AnswerRoutable || len(v.Colors) != 3 {
		t.Fatalf("got %s, want ROUTABLE with 3 colors", raw)
	}
	code, raw = postSolve(t, ts, SolveRequest{Graph: triX2, Width: 4, Strategy: "order/-", Wait: true, Verify: true})
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, raw)
	}
	if v := decodeView(t, raw); v.Answer != AnswerUnroutable {
		t.Fatalf("distance-2 triangle at width 4: answer %q, want UNROUTABLE", v.Answer)
	}
}
