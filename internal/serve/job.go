package serve

// The job model: the JSON request/response types of the HTTP API and
// the concurrency-safe job table behind /v1/jobs. A Job's mutable
// state lives in its JobView and is only touched under the job mutex;
// readers take consistent copies with View, and completion is
// published through the done channel so synchronous waiters need no
// polling.

import (
	"sync"
	"time"

	"fpgasat/internal/core"
	"fpgasat/internal/graph"
	"fpgasat/internal/portfolio"
)

// Job states reported in JobView.State.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
)

// Answers reported in JobView.Answer once a job is done.
const (
	AnswerRoutable   = "ROUTABLE"
	AnswerUnroutable = "UNROUTABLE"
	AnswerUndecided  = "UNDECIDED"
)

// SolveRequest is the JSON body of POST /v1/solve. Exactly one of
// Instance (a registered benchmark name) or Graph (an inline DIMACS
// edge-format conflict graph) selects the problem.
type SolveRequest struct {
	// Instance names a registered benchmark (see GET /v1/instances via
	// cmd/fpgasat -list); Width 0 defaults to its calibrated routable
	// width.
	Instance string `json:"instance,omitempty"`
	// Graph is an inline conflict graph in DIMACS edge (.col) format;
	// it requires an explicit Width.
	Graph string `json:"graph,omitempty"`
	// Width is the channel width W to decide routability at.
	Width int `json:"width,omitempty"`
	// Strategy selects a single encoding[/heuristic] lane (default
	// DefaultStrategy); Portfolio instead races the paper's 3-strategy
	// portfolio. The two are mutually exclusive.
	Strategy  string `json:"strategy,omitempty"`
	Portfolio bool   `json:"portfolio,omitempty"`
	// Lanes replicates the lane set n-fold (same-strategy lanes
	// diversify by seed); Share connects same-strategy lanes through
	// the learnt-clause exchange and implies Lanes >= 2.
	Lanes int  `json:"lanes,omitempty"`
	Share bool `json:"share,omitempty"`
	// Seed makes lane behaviour replayable and diversified (0 =
	// unseeded; sharing defaults it to 1).
	Seed int64 `json:"seed,omitempty"`
	// DeadlineMS bounds the whole job (queue wait + solve) in
	// milliseconds; 0 uses the server default and values above the
	// server maximum are clamped. A deadline that expires mid-solve
	// yields an UNDECIDED answer with TimedOut set.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// ConflictBudget bounds each lane attempt's conflicts; with
	// MaxRetries > 0 exhausted attempts re-run under an escalating
	// (Luby) budget schedule.
	ConflictBudget int64 `json:"conflict_budget,omitempty"`
	MaxRetries     int   `json:"max_retries,omitempty"`
	// LaneTimeoutMS bounds each lane attempt and arms the watchdog
	// that abandons unresponsive lanes after the run is decided.
	LaneTimeoutMS int64 `json:"lane_timeout_ms,omitempty"`
	// Verify enables paranoid mode for this job: Sat answers re-checked
	// against the conflict edges, Unsat answers replayed through the
	// DRAT checker.
	Verify bool `json:"verify,omitempty"`
	// WantColors includes the decoded track assignment in the result.
	WantColors bool `json:"want_colors,omitempty"`
	// Wait makes POST /v1/solve synchronous: the response is the
	// completed job (200), or 504 with partial attempt info when the
	// job deadline expires first.
	Wait bool `json:"wait,omitempty"`
	// IdempotencyKey deduplicates retries: a resubmit carrying the key
	// of an already-accepted job returns that job instead of creating a
	// new one, including across a crash and journal replay. Keys are
	// client-chosen and should be unique per logical request.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// Priority selects the admission class: "interactive" (default)
	// jobs are always dequeued before "batch" jobs on the same shard.
	Priority string `json:"priority,omitempty"`
}

// LaneView is the per-lane slice of a job result: one portfolio lane's
// strategy, answer, attempt count and conflict work.
type LaneView struct {
	Strategy  string `json:"strategy"`
	Status    string `json:"status"`
	Attempts  int    `json:"attempts"`
	Conflicts int64  `json:"conflicts"`
	ElapsedMS int64  `json:"elapsed_ms"`
	Error     string `json:"error,omitempty"`
}

// JobView is the JSON representation of a job returned by POST
// /v1/solve and GET /v1/jobs/{id}.
type JobView struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Problem identity: the instance name (when submitted by name),
	// width, and the conflict graph's size plus the shard it routed to.
	Instance string `json:"instance,omitempty"`
	Width    int    `json:"width"`
	Shard    string `json:"shard"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	// Priority is the admission class the job was accepted under.
	Priority string `json:"priority,omitempty"`
	// Result: the answer, the winning strategy, its attempt count (or
	// the largest lane attempt count when undecided), and the decoded
	// coloring when requested. TimedOut marks an UNDECIDED answer
	// caused by the job deadline expiring mid-solve; Shed marks one the
	// admission controller dropped at dequeue (deadline already expired
	// or sojourn past the target) without running a solver.
	Answer   string     `json:"answer,omitempty"`
	Winner   string     `json:"winner,omitempty"`
	Attempts int        `json:"attempts,omitempty"`
	TimedOut bool       `json:"timed_out,omitempty"`
	Shed     bool       `json:"shed,omitempty"`
	Error    string     `json:"error,omitempty"`
	Colors   []int      `json:"colors,omitempty"`
	Lanes    []LaneView `json:"lanes,omitempty"`
	// Timing: submission time, effective deadline, queue wait and
	// solve wall clock.
	SubmittedAt time.Time `json:"submitted_at"`
	DeadlineMS  int64     `json:"deadline_ms"`
	QueuedMS    int64     `json:"queued_ms"`
	SolveMS     int64     `json:"solve_ms"`
}

// Job is one submitted solve: immutable inputs, the mutable view, and
// the completion channel synchronous waiters block on.
type Job struct {
	ID string

	// Immutable after Submit.
	g          *graph.Graph
	width      int
	strategies []core.Strategy
	popts      portfolio.Options
	wantColors bool
	deadline   time.Time
	key        string // idempotency key ("" = none)
	priority   string // PriorityInteractive or PriorityBatch
	probe      bool   // this job is a half-open circuit-breaker probe

	mu       sync.Mutex
	view     JobView
	finished time.Time

	done chan struct{}
}

// View returns a consistent copy of the job's current state. The
// Lanes and Colors slices are shared with the job but never mutated
// after publication.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.view
}

// Done is closed when the job completes (any answer).
func (j *Job) Done() <-chan struct{} { return j.done }

// finishedAt returns the completion time (zero while not done).
func (j *Job) finishedAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finished
}

// jobTable is the ID-indexed job registry with insertion order kept
// for cap eviction and an idempotency-key index for duplicate-free
// retries.
type jobTable struct {
	mu    sync.Mutex
	byID  map[string]*Job
	byKey map[string]*Job
	order []*Job
}

func (t *jobTable) add(j *Job, maxJobs int) {
	t.mu.Lock()
	t.byID[j.ID] = j
	if j.key != "" {
		t.byKey[j.key] = j
	}
	t.order = append(t.order, j)
	t.mu.Unlock()
	if maxJobs > 0 {
		t.gc(time.Time{}, maxJobs)
	}
}

// addOrGet registers j unless another job already holds its
// idempotency key, in which case the existing job is returned with
// dup=true and j is discarded. The check-and-insert is atomic, so two
// racing submits with the same key register exactly one job.
func (t *jobTable) addOrGet(j *Job, maxJobs int) (*Job, bool) {
	t.mu.Lock()
	if j.key != "" {
		if prev, ok := t.byKey[j.key]; ok {
			t.mu.Unlock()
			return prev, true
		}
		t.byKey[j.key] = j
	}
	t.byID[j.ID] = j
	t.order = append(t.order, j)
	t.mu.Unlock()
	if maxJobs > 0 {
		t.gc(time.Time{}, maxJobs)
	}
	return j, false
}

func (t *jobTable) get(id string) (*Job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.byID[id]
	return j, ok
}

func (t *jobTable) getByKey(key string) (*Job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.byKey[key]
	return j, ok
}

// remove unregisters a job that failed after registration (journal
// write error); the backing order slice entry is dropped lazily by the
// next gc pass.
func (t *jobTable) remove(j *Job) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.byID, j.ID)
	if j.key != "" && t.byKey[j.key] == j {
		delete(t.byKey, j.key)
	}
	for i, o := range t.order {
		if o == j {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
}

func (t *jobTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byID)
}

// gc deletes completed jobs finished before cutoff, then — oldest
// first — evicts further completed jobs until the table fits maxJobs.
// Queued and running jobs are never evicted: the table can exceed
// maxJobs only by the number of in-flight jobs, which the bounded
// queues already cap.
func (t *jobTable) gc(cutoff time.Time, maxJobs int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.order[:0]
	for _, j := range t.order {
		fin := j.finishedAt()
		doneAndExpired := !fin.IsZero() && fin.Before(cutoff)
		doneAndOverCap := !fin.IsZero() && maxJobs > 0 && len(t.byID) > maxJobs
		if doneAndExpired || doneAndOverCap {
			delete(t.byID, j.ID)
			if j.key != "" && t.byKey[j.key] == j {
				delete(t.byKey, j.key)
			}
			continue
		}
		kept = append(kept, j)
	}
	// Zero the evicted tail so the backing array does not pin jobs.
	for i := len(kept); i < len(t.order); i++ {
		t.order[i] = nil
	}
	t.order = kept
}
