package serve

// Concurrency tests of the job table: submits, key lookups, cap
// eviction and retention GC all racing under -race.

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// doneJob builds a completed job for table tests.
func doneJob(id, key string, finished time.Time) *Job {
	j := &Job{ID: id, key: key, done: make(chan struct{})}
	j.view = JobView{ID: id, State: StateDone}
	j.finished = finished
	close(j.done)
	return j
}

func TestJobTableAddOrGetDedupes(t *testing.T) {
	tab := jobTable{byID: map[string]*Job{}, byKey: map[string]*Job{}}
	first := doneJob("j1", "k", time.Now())
	if got, dup := tab.addOrGet(first, 0); dup || got != first {
		t.Fatalf("first addOrGet: dup=%v", dup)
	}
	second := doneJob("j2", "k", time.Now())
	got, dup := tab.addOrGet(second, 0)
	if !dup || got != first {
		t.Fatalf("second addOrGet with same key: dup=%v got=%s, want duplicate of j1", dup, got.ID)
	}
	if _, ok := tab.get("j2"); ok {
		t.Error("losing duplicate was still registered by ID")
	}
}

func TestJobTableRemoveUnbindsKey(t *testing.T) {
	tab := jobTable{byID: map[string]*Job{}, byKey: map[string]*Job{}}
	j := doneJob("j1", "k", time.Now())
	tab.add(j, 0)
	tab.remove(j)
	if _, ok := tab.get("j1"); ok {
		t.Error("removed job still resolvable by ID")
	}
	if _, ok := tab.getByKey("k"); ok {
		t.Error("removed job still resolvable by key")
	}
	if tab.len() != 0 {
		t.Errorf("table length %d after remove, want 0", tab.len())
	}
}

func TestJobTableGCUnbindsKeys(t *testing.T) {
	tab := jobTable{byID: map[string]*Job{}, byKey: map[string]*Job{}}
	old := doneJob("j1", "k1", time.Now().Add(-time.Hour))
	fresh := doneJob("j2", "k2", time.Now())
	tab.add(old, 0)
	tab.add(fresh, 0)
	tab.gc(time.Now().Add(-time.Minute), 0)
	if _, ok := tab.getByKey("k1"); ok {
		t.Error("retention GC left the evicted job's key bound")
	}
	if _, ok := tab.getByKey("k2"); !ok {
		t.Error("retention GC unbound a live job's key")
	}
}

// TestJobTableGCRace races concurrent adds (with cap eviction), key
// lookups, explicit removes and retention GC passes; -race is the
// assertion, plus the invariant that every surviving key maps to a
// registered job.
func TestJobTableGCRace(t *testing.T) {
	tab := jobTable{byID: map[string]*Job{}, byKey: map[string]*Job{}}
	const (
		writers       = 4
		jobsPerWriter = 200
		maxJobs       = 64
	)
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < jobsPerWriter; i++ {
				id := fmt.Sprintf("j%d-%d", w, i)
				key := fmt.Sprintf("k%d-%d", w, i%50) // keys collide across iterations
				// Half the jobs are already stale, so the retention pass
				// below always has something to cut.
				fin := time.Now()
				if i%2 == 0 {
					fin = fin.Add(-time.Hour)
				}
				j, dup := tab.addOrGet(doneJob(id, key, fin), maxJobs)
				if dup {
					// The key's previous holder won; it may have been GCed
					// by now, which is fine — just exercise the lookup.
					tab.getByKey(key)
				} else if i%17 == 0 {
					tab.remove(j)
				}
			}
		}(w)
	}

	// The janitor hammers retention + cap GC until the writers finish.
	stop := make(chan struct{})
	janitorDone := make(chan struct{})
	go func() {
		defer close(janitorDone)
		for {
			select {
			case <-stop:
				return
			default:
				tab.gc(time.Now().Add(-time.Minute), maxJobs)
				tab.len()
			}
		}
	}()

	writersWG.Wait()
	close(stop)
	<-janitorDone

	// Final sweep, then check the key index is consistent with the ID
	// index: every bound key resolves to a registered job.
	tab.gc(time.Now().Add(-time.Minute), maxJobs)
	tab.mu.Lock()
	defer tab.mu.Unlock()
	if len(tab.byID) > maxJobs {
		t.Errorf("table holds %d jobs, cap is %d", len(tab.byID), maxJobs)
	}
	for key, j := range tab.byKey {
		if tab.byID[j.ID] != j {
			t.Errorf("key %s maps to unregistered job %s", key, j.ID)
		}
	}
}
