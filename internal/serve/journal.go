package serve

// The durable job journal: an append-only write-ahead log that makes
// the daemon crash-only. Every accepted job is journaled (and fsynced)
// before the submit returns, every completed job's result is journaled
// before it is published, and OpenJournal replays the log on startup —
// jobs that were accepted but never finished are handed back for
// re-enqueueing, completed results are restored to the job table, and
// idempotency-key mappings survive so client retries across a crash
// stay duplicate-free.
//
// On-disk layout: a directory of sequentially numbered segment files
//
//	wal-00000001.log
//	wal-00000002.log        <- active (highest sequence number)
//
// Each segment starts with an 8-byte magic ("FPGAWAL1") and holds a
// stream of CRC-framed records:
//
//	uint32 payload length (little-endian)
//	uint32 CRC-32 (IEEE) of the payload
//	payload (JSON journalRecord)
//
// A torn tail — a record cut short by a crash mid-write, or one whose
// CRC does not match — ends the replay of that segment: everything
// before it is recovered, the damage is counted in
// serve.journal.truncated, and the startup compaction (below) rewrites
// only the good records, so the damage never survives into the new
// active segment.
//
// Recovery compacts: after replaying every segment in sequence order,
// OpenJournal writes the live state (submit records for unfinished
// jobs, done records for retained results) into a fresh segment via
// write-to-temp + rename, then deletes the old segments. A crash at
// any point mid-compaction is safe — replay is idempotent per job ID,
// so reading both the old and the new segments reconstructs the same
// state.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"fpgasat/internal/obs"
	"fpgasat/internal/robust"
)

// journalMagic heads every segment file.
const journalMagic = "FPGAWAL1"

// journalSegMax rotates the active segment once it exceeds this many
// bytes; old segments are reclaimed by the next startup compaction.
const journalSegMax = 64 << 20

// Journal record kinds.
const (
	recSubmit = "submit"
	recStart  = "start"
	recDone   = "done"
)

// journalRecord is the JSON payload of one WAL record.
type journalRecord struct {
	Kind string `json:"kind"`
	ID   string `json:"id"`
	// Key is the job's idempotency key (submit and done records), so
	// duplicate-suppression survives a restart.
	Key string `json:"key,omitempty"`
	// Req is the original solve request (submit records) — everything
	// needed to re-create the job on replay.
	Req *SolveRequest `json:"req,omitempty"`
	// View is the completed job's result (done records).
	View *JobView  `json:"view,omitempty"`
	At   time.Time `json:"at"`
}

// RecoveredJob is one job reconstructed from the journal: View is
// non-nil for jobs that completed before the crash (restore to the job
// table), nil for accepted-but-unfinished jobs (re-enqueue).
type RecoveredJob struct {
	ID          string
	Key         string
	Req         SolveRequest
	View        *JobView
	SubmittedAt time.Time
	FinishedAt  time.Time // completion time of done jobs (zero for pending)
}

// Journal is the append side of the WAL. All methods are safe for
// concurrent use; appends are serialized internally.
type Journal struct {
	dir string
	reg *obs.Registry

	mu     sync.Mutex
	f      *os.File
	seq    int
	size   int64
	buf    []byte
	killed bool
}

// OpenJournal opens (creating if needed) the journal directory,
// replays every segment, compacts the live state into a fresh segment
// and returns the journal ready for appends plus the recovered jobs in
// submission order. The returned maxID is the largest numeric job-ID
// suffix seen, so the server's ID sequence can resume past it.
func OpenJournal(dir string, reg *obs.Registry) (*Journal, []RecoveredJob, int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, fmt.Errorf("journal: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, 0, err
	}
	j := &Journal{dir: dir, reg: reg}

	// Replay: fold every record into the per-job state, last write
	// wins. Replay is idempotent per job ID, which is what makes the
	// rename-then-delete compaction crash-safe.
	type jobState struct {
		rec    journalRecord // latest submit fields
		view   *JobView
		doneAt time.Time
		order  int
	}
	jobs := map[string]*jobState{}
	next := 0
	for _, seg := range segs {
		recs, err := replaySegment(filepath.Join(dir, seg.name), reg)
		if err != nil {
			return nil, nil, 0, err
		}
		for _, rec := range recs {
			st, ok := jobs[rec.ID]
			if !ok {
				st = &jobState{order: next}
				next++
				jobs[rec.ID] = st
			}
			switch rec.Kind {
			case recSubmit:
				st.rec = rec
			case recDone:
				st.view = rec.View
				st.doneAt = rec.At
				if st.rec.Key == "" {
					st.rec.Key = rec.Key
				}
				if st.rec.ID == "" {
					st.rec.ID = rec.ID
				}
			}
		}
	}

	var recovered []RecoveredJob
	var maxID int64
	for id, st := range jobs {
		var n int64
		if _, err := fmt.Sscanf(id, "j%d", &n); err == nil && n > maxID {
			maxID = n
		}
		rj := RecoveredJob{ID: id, Key: st.rec.Key, View: st.view, SubmittedAt: st.rec.At, FinishedAt: st.doneAt}
		if st.rec.Req != nil {
			rj.Req = *st.rec.Req
		} else if st.view == nil {
			continue // done-less record without a request: nothing to recover
		}
		recovered = append(recovered, rj)
	}
	sort.Slice(recovered, func(a, b int) bool {
		return jobs[recovered[a].ID].order < jobs[recovered[b].ID].order
	})

	// Compact the live state into a fresh segment and drop the old
	// ones. The new segment's sequence number is past every existing
	// one, so a crash after the rename but before the deletes replays
	// old state first and the compacted state last (idempotently).
	seq := 1
	if len(segs) > 0 {
		seq = segs[len(segs)-1].seq + 1
	}
	if err := j.startSegment(seq, recovered); err != nil {
		return nil, nil, 0, err
	}
	for _, seg := range segs {
		if err := os.Remove(filepath.Join(dir, seg.name)); err != nil {
			return nil, nil, 0, fmt.Errorf("journal: removing compacted segment: %w", err)
		}
	}
	return j, recovered, maxID, nil
}

// segment is one WAL file, ordered by sequence number.
type segment struct {
	name string
	seq  int
}

func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		var seq int
		if _, err := fmt.Sscanf(e.Name(), "wal-%d.log", &seq); err == nil {
			segs = append(segs, segment{name: e.Name(), seq: seq})
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].seq < segs[b].seq })
	return segs, nil
}

// replaySegment reads one segment's records, stopping (and counting a
// truncation) at the first torn or corrupted frame.
func replaySegment(path string, reg *obs.Registry) ([]journalRecord, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if len(raw) < len(journalMagic) || string(raw[:len(journalMagic)]) != journalMagic {
		reg.Counter(MetricJournalTruncated).Inc()
		return nil, nil // not a WAL segment (or torn before the magic); recover nothing from it
	}
	var recs []journalRecord
	off := len(journalMagic)
	for off < len(raw) {
		if len(raw)-off < 8 {
			reg.Counter(MetricJournalTruncated).Inc()
			break
		}
		length := binary.LittleEndian.Uint32(raw[off:])
		sum := binary.LittleEndian.Uint32(raw[off+4:])
		if length > uint32(len(raw)-off-8) {
			reg.Counter(MetricJournalTruncated).Inc()
			break
		}
		payload := raw[off+8 : off+8+int(length)]
		if crc32.ChecksumIEEE(payload) != sum {
			reg.Counter(MetricJournalTruncated).Inc()
			break
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			reg.Counter(MetricJournalTruncated).Inc()
			break
		}
		recs = append(recs, rec)
		reg.Counter(MetricJournalReplayed).Inc()
		off += 8 + int(length)
	}
	return recs, nil
}

// startSegment creates the new active segment seeded with the live
// records, using write-to-temp + rename so a crash mid-compaction
// never produces a half-written active segment.
func (j *Journal) startSegment(seq int, live []RecoveredJob) error {
	name := fmt.Sprintf("wal-%08d.log", seq)
	tmp := filepath.Join(j.dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.WriteString(journalMagic); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	size := int64(len(journalMagic))
	for _, rj := range live {
		var rec journalRecord
		if rj.View != nil {
			rec = journalRecord{Kind: recDone, ID: rj.ID, Key: rj.Key, View: rj.View, At: rj.FinishedAt}
		} else {
			req := rj.Req
			rec = journalRecord{Kind: recSubmit, ID: rj.ID, Key: rj.Key, Req: &req, At: rj.SubmittedAt}
		}
		n, err := writeFrame(f, nil, rec)
		if err != nil {
			f.Close()
			return err
		}
		size += n
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, name)); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	active, err := os.OpenFile(filepath.Join(j.dir, name), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.f, j.seq, j.size = active, seq, size
	return nil
}

// writeFrame appends one CRC-framed record and returns the bytes
// written. scratch (may be nil) is reused for the frame header.
func writeFrame(w io.Writer, scratch []byte, rec journalRecord) (int64, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	hdr := scratch
	if cap(hdr) < 8 {
		hdr = make([]byte, 8)
	}
	hdr = hdr[:8]
	binary.LittleEndian.PutUint32(hdr, uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr); err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	return int64(8 + len(payload)), nil
}

// append writes one record, optionally fsyncing before returning.
// After kill() or Close() it fails: nothing becomes durable once the
// "process" has died, and an accept path that cannot make its record
// durable must reject rather than acknowledge. (The advisory start and
// done writers ignore append errors, so wind-down stays quiet.)
func (j *Journal) append(rec journalRecord, fsync bool) error {
	var fperr error
	robust.Hit(robust.FPJournalAppend, rec.Kind, &fperr)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.killed || j.f == nil {
		return errors.New("journal: closed")
	}
	if fperr != nil {
		j.reg.Counter(MetricJournalErrors).Inc()
		return fmt.Errorf("journal: %w", fperr)
	}
	n, err := writeFrame(j.f, j.buf, rec)
	if err != nil {
		j.reg.Counter(MetricJournalErrors).Inc()
		return err
	}
	j.size += n
	j.reg.Counter(MetricJournalRecords).Inc()
	if fsync {
		robust.Hit(robust.FPJournalSync, rec.Kind)
		span := j.reg.StartSpan(MetricJournalFsync)
		err := j.f.Sync()
		span.End()
		if err != nil {
			j.reg.Counter(MetricJournalErrors).Inc()
			return fmt.Errorf("journal: %w", err)
		}
	}
	if j.size > journalSegMax {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// rotateLocked opens the next segment; the old one stays on disk until
// the next startup compaction reclaims it. Caller holds j.mu.
func (j *Journal) rotateLocked() error {
	name := fmt.Sprintf("wal-%08d.log", j.seq+1)
	f, err := os.OpenFile(filepath.Join(j.dir, name), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.WriteString(journalMagic); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	j.f.Close()
	j.f, j.seq, j.size = f, j.seq+1, int64(len(journalMagic))
	return nil
}

// kill makes every further append fail, simulating SIGKILL at the
// durability layer: records already fsynced survive, everything after
// this call is lost — exactly what a real crash loses.
func (j *Journal) kill() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.killed = true
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}

// Close flushes and closes the active segment (orderly shutdown).
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil || j.killed {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
