package serve

// Unit tests of the WAL itself: framing round-trips, torn-tail and
// CRC-corruption truncation, replay folding, compaction idempotence and
// the crash-simulation (kill) contract. The serve-level recovery
// behaviour is covered by chaos_test.go.

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fpgasat/internal/obs"
)

// openTestJournal opens a journal over dir and fails the test on error.
func openTestJournal(t *testing.T, dir string) (*Journal, []RecoveredJob, int64) {
	t.Helper()
	j, recovered, maxID, err := OpenJournal(dir, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return j, recovered, maxID
}

func submitRec(id, key string) journalRecord {
	return journalRecord{
		Kind: recSubmit, ID: id, Key: key,
		Req: &SolveRequest{Graph: triangleCol, Width: 3},
		At:  time.Now(),
	}
}

func doneRec(id, key, answer string) journalRecord {
	return journalRecord{
		Kind: recDone, ID: id, Key: key,
		View: &JobView{ID: id, State: StateDone, Answer: answer},
		At:   time.Now(),
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, recovered, maxID := openTestJournal(t, dir)
	if len(recovered) != 0 || maxID != 0 {
		t.Fatalf("fresh journal recovered %d jobs, maxID %d", len(recovered), maxID)
	}
	if err := j.append(submitRec("j00000001", "k1"), true); err != nil {
		t.Fatal(err)
	}
	if err := j.append(journalRecord{Kind: recStart, ID: "j00000001", At: time.Now()}, false); err != nil {
		t.Fatal(err)
	}
	if err := j.append(submitRec("j00000002", ""), true); err != nil {
		t.Fatal(err)
	}
	if err := j.append(doneRec("j00000001", "k1", AnswerRoutable), true); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, recovered, maxID = openTestJournal(t, dir)
	if maxID != 2 {
		t.Errorf("maxID = %d, want 2", maxID)
	}
	if len(recovered) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(recovered))
	}
	// Submission order is preserved.
	if recovered[0].ID != "j00000001" || recovered[1].ID != "j00000002" {
		t.Fatalf("recovered order %s, %s", recovered[0].ID, recovered[1].ID)
	}
	if recovered[0].View == nil || recovered[0].View.Answer != AnswerRoutable || recovered[0].Key != "k1" {
		t.Errorf("done job restored wrong: %+v", recovered[0])
	}
	if recovered[0].FinishedAt.IsZero() {
		t.Error("done job lost its completion time across replay")
	}
	if recovered[1].View != nil {
		t.Errorf("pending job came back with a view: %+v", recovered[1].View)
	}
	if recovered[1].Req.Graph != triangleCol || recovered[1].Req.Width != 3 {
		t.Errorf("pending job lost its request: %+v", recovered[1].Req)
	}
}

// activeSegment returns the path of the highest-sequence WAL segment.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err %v)", dir, err)
	}
	return filepath.Join(dir, segs[len(segs)-1].name)
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openTestJournal(t, dir)
	if err := j.append(submitRec("j00000001", ""), true); err != nil {
		t.Fatal(err)
	}
	if err := j.append(submitRec("j00000002", ""), true); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop the last record mid-payload, as a crash during
	// a write would.
	path := activeSegment(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	_, recovered, _, err := OpenJournal(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0].ID != "j00000001" {
		t.Fatalf("recovered %+v, want only the first record", recovered)
	}
	if got := reg.Counter(MetricJournalTruncated).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricJournalTruncated, got)
	}
}

func TestJournalCRCCorruptionTruncated(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openTestJournal(t, dir)
	if err := j.append(submitRec("j00000001", ""), true); err != nil {
		t.Fatal(err)
	}
	if err := j.append(submitRec("j00000002", ""), true); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the second record's payload; its CRC no longer
	// matches and replay must stop before it.
	path := activeSegment(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := len(journalMagic)
	first := 8 + int(binary.LittleEndian.Uint32(raw[off:]))
	raw[off+first+12] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	_, recovered, _, err := OpenJournal(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0].ID != "j00000001" {
		t.Fatalf("recovered %+v, want only the intact record", recovered)
	}
	if got := reg.Counter(MetricJournalTruncated).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricJournalTruncated, got)
	}
}

// TestJournalCompactionIdempotent reopens a journal repeatedly without
// writing anything new: the recovered state must be identical every
// time, and the old segments must be reclaimed.
func TestJournalCompactionIdempotent(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openTestJournal(t, dir)
	if err := j.append(submitRec("j00000001", "k1"), true); err != nil {
		t.Fatal(err)
	}
	if err := j.append(doneRec("j00000001", "k1", AnswerUnroutable), true); err != nil {
		t.Fatal(err)
	}
	if err := j.append(submitRec("j00000002", ""), true); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 3; round++ {
		jr, recovered, maxID, err := OpenJournal(dir, obs.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		if maxID != 2 || len(recovered) != 2 {
			t.Fatalf("round %d: recovered %d jobs maxID %d, want 2/2", round, len(recovered), maxID)
		}
		if recovered[0].View == nil || recovered[0].View.Answer != AnswerUnroutable {
			t.Fatalf("round %d: done job decayed: %+v", round, recovered[0])
		}
		if recovered[1].View != nil || recovered[1].Req.Graph == "" {
			t.Fatalf("round %d: pending job decayed: %+v", round, recovered[1])
		}
		segs, err := listSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) != 1 {
			t.Fatalf("round %d: %d segments on disk, want 1 after compaction", round, len(segs))
		}
		if err := jr.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJournalKillDropsSubsequentAppends proves the crash-simulation
// contract: records fsynced before kill survive, appends after it
// write nothing and report failure — so an accept path in flight
// during the "crash" rejects instead of acknowledging a lost job.
func TestJournalKillDropsSubsequentAppends(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openTestJournal(t, dir)
	if err := j.append(submitRec("j00000001", ""), true); err != nil {
		t.Fatal(err)
	}
	j.kill()
	if err := j.append(doneRec("j00000001", "", AnswerRoutable), true); err == nil {
		t.Fatal("post-kill append must fail; a dead journal cannot make records durable")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, recovered, _ := openTestJournal(t, dir)
	if len(recovered) != 1 || recovered[0].View != nil {
		t.Fatalf("recovered %+v, want one still-pending job", recovered)
	}
}

// TestJournalRotation drives the active segment past the size cap and
// checks that appends continue into a new segment and replay still sees
// everything.
func TestJournalRotation(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openTestJournal(t, dir)
	// Shrink the effective cap by preloading size; the const is 64MB,
	// far too big to write in a unit test.
	j.mu.Lock()
	j.size = journalSegMax
	j.mu.Unlock()
	if err := j.append(submitRec("j00000001", ""), true); err != nil {
		t.Fatal(err)
	}
	if err := j.append(submitRec("j00000002", ""), true); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("%d segments after forced rotation, want 2", len(segs))
	}
	_, recovered, _ := openTestJournal(t, dir)
	if len(recovered) != 2 {
		t.Fatalf("recovered %d jobs across rotated segments, want 2", len(recovered))
	}
}
