package serve

// End-to-end load test: a fleet of concurrent HTTP clients drives the
// daemon over real MCNC benchmark instances, mixing synchronous and
// asynchronous submissions, routable and provably-unroutable widths,
// with paranoid verification on every job. The assertions are the
// service contract: zero dropped results, every answer matching the
// calibrated ground truth, and a /metrics snapshot that accounts for
// every job.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"fpgasat/internal/mcnc"
	"fpgasat/internal/obs"
	"fpgasat/internal/portfolio"
)

// loadClients is the number of concurrent clients; the acceptance bar
// is at least 8.
const loadClients = 8

// submitWithRetry POSTs a solve request, retrying on 429 backpressure
// until the queue accepts it. Returns the final status and body.
func submitWithRetry(t *testing.T, ts *httptest.Server, req SolveRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; ; attempt++ {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			return resp.StatusCode, raw
		}
		if attempt > 10_000 {
			t.Fatalf("queue still full after %d attempts", attempt)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func pollUntilDone(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("polling %s: status %d err %v", id, resp.StatusCode, err)
		}
		v := decodeView(t, raw)
		if v.State == StateDone {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck: %+v", id, v)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestLoadConcurrentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	// Small queues on purpose: with 8 clients and 3 workers the 429
	// backpressure path is part of what this test exercises.
	s, ts := newHTTPServer(t, Options{
		Shards: []ShardConfig{
			{Name: "small", MaxVertices: 1500, Workers: 2, QueueDepth: 4},
			{Name: "large", MaxVertices: 0, Workers: 1, QueueDepth: 4},
		},
		DefaultDeadline: 5 * time.Minute,
	})

	// Calibrated instances with cheap solves: the routable sides land
	// in ~50-120ms each; too_large's width-6 refutation verifies (DRAT
	// replay included) in under two seconds. Heavier refutations like
	// alu2's belong in the benchmark suite, not a load test.
	satInstances := []string{"too_large", "alu2", "C880", "apex7"}

	type outcome struct {
		client int
		job    string
		view   JobView
		want   string
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []outcome
	)
	record := func(o outcome) {
		mu.Lock()
		results = append(results, o)
		mu.Unlock()
	}

	for c := 0; c < loadClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()

			// 1. Synchronous routable solve at the calibrated width; odd
			// clients race the paper's 3-strategy portfolio. (Portfolio
			// refutations under Verify are avoided here: every lane that
			// independently derives Unsat replays its own DRAT proof, and
			// the losing encodings' proofs can take orders of magnitude
			// longer than the winner's answer.)
			sat := satInstances[c%len(satInstances)]
			code, raw := submitWithRetry(t, ts, SolveRequest{
				Instance: sat, Portfolio: c%2 == 1,
				Verify: true, Wait: true, WantColors: true,
			})
			if code != http.StatusOK {
				t.Errorf("client %d: sat %s: status %d body %s", c, sat, code, raw)
				return
			}
			record(outcome{c, sat, decodeView(t, raw), AnswerRoutable})

			// 2. Synchronous refutation at the provably-unroutable width.
			inst, err := mcnc.ByName("too_large")
			if err != nil {
				t.Error(err)
				return
			}
			code, raw = submitWithRetry(t, ts, SolveRequest{
				Instance: "too_large", Width: inst.UnroutableW(),
				Verify: true, Wait: true,
			})
			if code != http.StatusOK {
				t.Errorf("client %d: unsat too_large: status %d body %s", c, code, raw)
				return
			}
			record(outcome{c, "too_large/w-1", decodeView(t, raw), AnswerUnroutable})

			// 3. Asynchronous submit + poll.
			code, raw = submitWithRetry(t, ts, SolveRequest{Instance: "too_large", Verify: true})
			if code != http.StatusAccepted {
				t.Errorf("client %d: async submit: status %d body %s", c, code, raw)
				return
			}
			record(outcome{c, "too_large/async", pollUntilDone(t, ts, decodeView(t, raw).ID), AnswerRoutable})
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Zero dropped results: every client produced all three outcomes.
	wantJobs := loadClients * 3
	if len(results) != wantJobs {
		t.Fatalf("collected %d results, want %d", len(results), wantJobs)
	}
	for _, o := range results {
		v := o.view
		if v.State != StateDone || v.Answer != o.want || v.TimedOut || v.Error != "" {
			t.Errorf("client %d job %s: got %s/%s (timedout=%v err=%q), want %s",
				o.client, o.job, v.State, v.Answer, v.TimedOut, v.Error, o.want)
		}
		if o.want == AnswerRoutable && v.Winner == "" {
			t.Errorf("client %d job %s: routable answer with no winning strategy", o.client, o.job)
		}
	}

	// The metrics snapshot must account for every job and expose the
	// operational gauges: queue depth, shard utilization, pool hit rate.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters[MetricJobsCompleted]; got != int64(wantJobs) {
		t.Errorf("%s = %d, want %d", MetricJobsCompleted, got, wantJobs)
	}
	for _, zero := range []string{MetricJobsTimeout, MetricJobsFailed} {
		if got := snap.Counters[zero]; got != 0 {
			t.Errorf("%s = %d, want 0", zero, got)
		}
	}
	if snap.Counters[MetricJobsSubmitted] != int64(wantJobs) {
		t.Errorf("%s = %d, want %d", MetricJobsSubmitted, snap.Counters[MetricJobsSubmitted], wantJobs)
	}
	// Paranoid verification ran on both answer polarities.
	if snap.Counters[portfolio.MetricVerifySat] == 0 {
		t.Errorf("%s = 0: Sat answers were not verified", portfolio.MetricVerifySat)
	}
	if snap.Counters[portfolio.MetricVerifyUnsat] == 0 {
		t.Errorf("%s = 0: Unsat answers were not replayed", portfolio.MetricVerifyUnsat)
	}
	var gets, reuses int64
	for _, sh := range []string{"small", "large"} {
		for _, g := range []string{MetricQueueDepth, MetricQueueCap, MetricWorkersBusy, MetricWorkers} {
			if _, ok := snap.Gauges[g+"."+sh]; !ok {
				t.Errorf("gauge %s.%s missing", g, sh)
			}
		}
		gets += snap.Gauges[MetricPoolGets+"."+sh]
		reuses += snap.Gauges[MetricPoolReuses+"."+sh]
	}
	// Each job takes at least one solver from its shard pool, and with
	// 24 jobs funnelled through 3 workers the pools must be recycling.
	if gets < int64(wantJobs) {
		t.Errorf("pool gets = %d, want >= %d", gets, wantJobs)
	}
	if reuses == 0 {
		t.Error("pool reuses = 0: shard pools are not recycling solvers")
	}
	if snap.Timers[MetricSolve].Count != int64(wantJobs) {
		t.Errorf("%s count = %d, want %d", MetricSolve, snap.Timers[MetricSolve].Count, wantJobs)
	}

	// The daemon is still healthy after the burst.
	if s.Draining() {
		t.Error("server reports draining after load")
	}
}
