// Package serve is the solve-as-a-service layer behind cmd/fpgasatd:
// it turns the one-shot decide-routability-at-W flow into a
// long-running daemon that accepts solve jobs over HTTP, executes them
// on sharded pools of reusable solvers, and exposes its internals
// through the obs metrics registry.
//
// The architecture is a fixed set of size-class shards. Each shard
// owns a sat.Pool (so solvers recycle their clause arenas within a
// size class instead of ping-ponging between tiny and huge instances)
// and a group of worker goroutines draining a bounded admission queue.
// A job is classified by its conflict graph's vertex count at submit
// time; a full queue rejects the submit immediately (HTTP 429) rather
// than buffering unboundedly — callers are expected to back off and
// retry, which keeps tail latency honest under overload.
//
// Every job runs through portfolio.RunHardened, so the daemon inherits
// the whole supervision stack: panic-isolated lanes, paranoid answer
// verification, budgeted conflict-budget retries and per-lane
// watchdogs. The per-job deadline becomes a context deadline on the
// run; a deadline that expires mid-solve surfaces as an UNDECIDED
// answer with TimedOut set and the per-lane attempt counts preserved.
//
// Shutdown is graceful: Drain stops admission (new submits fail with
// ErrDraining, /healthz flips to 503), lets the workers finish every
// queued and in-flight job, and only then returns. A drain context
// that expires instead cancels the in-flight solves, which unwind
// promptly through their cancellation polling.
package serve

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fpgasat/internal/core"
	"fpgasat/internal/graph"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/obs"
	"fpgasat/internal/portfolio"
	"fpgasat/internal/robust"
	"fpgasat/internal/sat"
	"fpgasat/internal/share"
)

// Daemon metric names. Per-shard metrics append "." plus the shard
// name (e.g. "serve.queue.depth.small"); the gauges are refreshed on
// every /metrics scrape.
const (
	// MetricJobsSubmitted counts jobs admitted to a queue;
	// MetricJobsRejected counts submits refused with ErrQueueFull.
	MetricJobsSubmitted = "serve.jobs.submitted"
	MetricJobsRejected  = "serve.jobs.rejected"
	// MetricJobsCompleted counts jobs that ran to completion (any
	// answer); MetricJobsTimeout the subset whose deadline expired
	// mid-solve; MetricJobsFailed the subset that ended with an error
	// and no definite answer (lane panics, soundness violations).
	MetricJobsCompleted = "serve.jobs.completed"
	MetricJobsTimeout   = "serve.jobs.timeout"
	MetricJobsFailed    = "serve.jobs.failed"
	// MetricJobsRetained gauges the jobs currently held in the job
	// table (queued, running and done-but-not-yet-GCed).
	MetricJobsRetained = "serve.jobs.retained"
	// MetricQueueWait times how long jobs sat queued before a worker
	// picked them up; MetricSolve times the solve itself.
	MetricQueueWait = "serve.queue.wait"
	MetricSolve     = "serve.solve"
	// Per-shard gauges: current queue depth and capacity, busy and
	// total workers, and the shard pool's cumulative solver hand-outs
	// and reuses (reuses/gets is the pool hit rate).
	MetricQueueDepth  = "serve.queue.depth"
	MetricQueueCap    = "serve.queue.cap"
	MetricWorkersBusy = "serve.workers.busy"
	MetricWorkers     = "serve.workers"
	MetricPoolGets    = "serve.pool.gets"
	MetricPoolReuses  = "serve.pool.reuses"
)

// DefaultStrategy is the encoding/symmetry pair jobs solve with when
// the request names neither a strategy nor the portfolio: the paper's
// overall best single strategy.
const DefaultStrategy = "ITE-linear-2+muldirect/s1"

// Submit-time caps on the request knobs. A request outside these
// bounds is rejected with a *RequestError (HTTP 400) at submit instead
// of being admitted as a job doomed to fail or monopolize a shard.
const (
	// MaxSubmitWidth caps the channel width of any job: wider CSPs only
	// grow the variable count without changing routability on any
	// realistic architecture.
	MaxSubmitWidth = 1 << 16
	// MaxSubmitLanes caps lane replication per job so one request
	// cannot claim an unbounded slice of a shard's solver pool.
	MaxSubmitLanes = 64
	// MaxSubmitRetries caps the per-lane retry count (the Luby budget
	// schedule grows geometrically, so larger values are never useful
	// within a sane job deadline).
	MaxSubmitRetries = 32
)

// Sentinel errors of the admission path. The HTTP layer maps them to
// status codes (429, 503, 400).
var (
	// ErrQueueFull reports that the job's size-class shard had no queue
	// slot free. The job was not admitted; retry with backoff.
	ErrQueueFull = fmt.Errorf("serve: shard queue full")
	// ErrDraining reports that the server has begun its graceful
	// shutdown and admits no new work.
	ErrDraining = fmt.Errorf("serve: server is draining")
)

// RequestError marks a submit rejected because of the request itself
// (unknown instance, unparsable graph, invalid width); the HTTP layer
// maps it to 400 rather than 5xx.
type RequestError struct{ Err error }

func (e *RequestError) Error() string { return "serve: bad request: " + e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }

// badRequest wraps a validation failure as a *RequestError.
func badRequest(format string, args ...any) error {
	return &RequestError{Err: fmt.Errorf(format, args...)}
}

// ShardConfig sizes one size-class shard.
type ShardConfig struct {
	// Name labels the shard in metrics and job views.
	Name string
	// MaxVertices is the inclusive conflict-graph size bound of the
	// shard; jobs are routed to the first shard (in ascending bound
	// order) whose bound admits them. A bound <= 0 means unbounded —
	// the catch-all shard every configuration must end with.
	MaxVertices int
	// Workers is the number of concurrent solve workers (default 2).
	Workers int
	// QueueDepth bounds the admission queue; a submit that finds the
	// queue full fails with ErrQueueFull (default 64).
	QueueDepth int
}

// DefaultShards returns the default three-class layout: "small" for
// MCNC-scale graphs, "medium" for the tile-templated scaled instances,
// and an unbounded "large" catch-all with few workers (large jobs are
// memory-hungry; fewer in flight keeps the arenas bounded).
func DefaultShards() []ShardConfig {
	return []ShardConfig{
		{Name: "small", MaxVertices: 4096, Workers: 4, QueueDepth: 256},
		{Name: "medium", MaxVertices: 1 << 18, Workers: 2, QueueDepth: 64},
		{Name: "large", MaxVertices: 0, Workers: 1, QueueDepth: 8},
	}
}

// Options configures a Server. The zero value serves with
// DefaultShards, a fresh metrics registry and the documented default
// deadlines and retention.
type Options struct {
	// Shards is the size-class layout; nil selects DefaultShards().
	// Shards are sorted by bound; exactly the unbounded ones must have
	// MaxVertices <= 0 and at least one is required as catch-all.
	Shards []ShardConfig
	// Metrics receives all daemon, portfolio and robustness telemetry;
	// nil creates a private registry (exposed via Metrics()).
	Metrics *obs.Registry
	// DefaultDeadline applies to jobs that set none (default 1m);
	// MaxDeadline clamps every job deadline (default 10m, <0 disables
	// the clamp).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// Verify forces paranoid mode on every job regardless of the
	// request: Sat answers re-checked against conflict edges, Unsat
	// answers replayed through the DRAT checker.
	Verify bool
	// RetainJobs is how long completed jobs stay queryable before the
	// janitor deletes them (default 15m). MaxJobs additionally caps the
	// job table, evicting the oldest completed jobs first (default
	// 16384). GCInterval is the janitor period (default 30s).
	RetainJobs time.Duration
	MaxJobs    int
	GCInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.Shards == nil {
		o.Shards = DefaultShards()
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = time.Minute
	}
	if o.MaxDeadline == 0 {
		o.MaxDeadline = 10 * time.Minute
	}
	if o.RetainJobs <= 0 {
		o.RetainJobs = 15 * time.Minute
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 16384
	}
	if o.GCInterval <= 0 {
		o.GCInterval = 30 * time.Second
	}
	return o
}

// shard is one size class: a bounded admission queue drained by a
// fixed worker group, and the sat.Pool those workers draw solvers
// from.
type shard struct {
	cfg   ShardConfig
	queue chan *Job
	pool  sat.Pool
	busy  atomic.Int64
}

// Server is the serving core: shards, workers, the job table and its
// janitor. Create one with NewServer and expose it over HTTP with
// Handler; it is safe for concurrent use.
type Server struct {
	opts   Options
	reg    *obs.Registry
	shards []*shard

	// admit serializes submits against the drain transition: Submit
	// holds the read side while it checks the draining flag and sends
	// on a shard queue, so Drain's queue close can never race a send.
	admit    sync.RWMutex
	draining bool

	baseCtx    context.Context
	cancelBase context.CancelFunc
	workers    sync.WaitGroup
	stopGC     chan struct{}
	gcDone     chan struct{}

	jobs   jobTable
	idSeq  atomic.Int64
	graphs sync.Map // instance name -> instanceEntry
}

// instanceEntry caches a built benchmark instance so repeated jobs on
// the same instance skip netlist generation and global routing.
type instanceEntry struct {
	g         *graph.Graph
	routableW int
	err       error
}

// NewServer builds and starts a server: workers and the job janitor
// begin running immediately. Returns an error for an invalid shard
// layout.
func NewServer(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	shards := append([]ShardConfig(nil), opts.Shards...)
	for i := range shards {
		if shards[i].Name == "" {
			return nil, fmt.Errorf("serve: shard %d has no name", i)
		}
		if shards[i].Workers <= 0 {
			shards[i].Workers = 2
		}
		if shards[i].QueueDepth <= 0 {
			shards[i].QueueDepth = 64
		}
	}
	// Ascending bound order with the unbounded catch-all(s) last.
	sort.SliceStable(shards, func(i, j int) bool {
		bi, bj := shards[i].MaxVertices, shards[j].MaxVertices
		switch {
		case bi <= 0:
			return false
		case bj <= 0:
			return true
		default:
			return bi < bj
		}
	})
	if shards[len(shards)-1].MaxVertices > 0 {
		return nil, fmt.Errorf("serve: shard layout needs an unbounded catch-all (MaxVertices <= 0)")
	}
	seen := map[string]bool{}
	for _, sc := range shards {
		if seen[sc.Name] {
			return nil, fmt.Errorf("serve: duplicate shard name %q", sc.Name)
		}
		seen[sc.Name] = true
	}

	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		reg:        opts.Metrics,
		baseCtx:    ctx,
		cancelBase: cancel,
		stopGC:     make(chan struct{}),
		gcDone:     make(chan struct{}),
		jobs:       jobTable{byID: map[string]*Job{}},
	}
	for _, sc := range shards {
		sh := &shard{cfg: sc, queue: make(chan *Job, sc.QueueDepth)}
		s.shards = append(s.shards, sh)
		for w := 0; w < sc.Workers; w++ {
			s.workers.Add(1)
			go s.worker(sh)
		}
	}
	s.preregisterMetrics()
	go s.janitor()
	return s, nil
}

// Metrics returns the server's registry (for -metrics-out style dumps
// alongside the /metrics endpoint).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// preregisterMetrics touches every metric the daemon can emit so a
// /metrics scrape shows zero values instead of omitting quiet
// counters — operators alert on absence otherwise.
func (s *Server) preregisterMetrics() {
	for _, name := range []string{
		MetricJobsSubmitted, MetricJobsRejected, MetricJobsCompleted,
		MetricJobsTimeout, MetricJobsFailed,
	} {
		s.reg.Counter(name)
	}
	for _, name := range []string{
		portfolio.MetricPanics, portfolio.MetricRetries,
		portfolio.MetricVerifySat, portfolio.MetricVerifyUnsat,
		portfolio.MetricAbandoned,
		portfolio.MetricShareExported, portfolio.MetricShareFiltered,
		portfolio.MetricShareDuplicates, portfolio.MetricShareDropped,
		portfolio.MetricShareImported, portfolio.MetricShareRejected,
	} {
		s.reg.Counter(name)
	}
	s.reg.Timer(MetricQueueWait)
	s.reg.Timer(MetricSolve)
	s.reg.Gauge(MetricJobsRetained)
	for _, sh := range s.shards {
		suffix := "." + sh.cfg.Name
		s.reg.Gauge(MetricQueueDepth + suffix)
		s.reg.Gauge(MetricQueueCap + suffix).Set(int64(sh.cfg.QueueDepth))
		s.reg.Gauge(MetricWorkersBusy + suffix)
		s.reg.Gauge(MetricWorkers + suffix).Set(int64(sh.cfg.Workers))
		s.reg.Gauge(MetricPoolGets + suffix)
		s.reg.Gauge(MetricPoolReuses + suffix)
	}
}

// Scrape refreshes the point-in-time gauges (queue depths, busy
// workers, pool hit rates, retained jobs) and returns a snapshot of
// the registry — the payload of GET /metrics.
func (s *Server) Scrape() obs.Snapshot {
	for _, sh := range s.shards {
		suffix := "." + sh.cfg.Name
		s.reg.Gauge(MetricQueueDepth + suffix).Set(int64(len(sh.queue)))
		s.reg.Gauge(MetricWorkersBusy + suffix).Set(sh.busy.Load())
		ps := sh.pool.Stats()
		s.reg.Gauge(MetricPoolGets + suffix).Set(ps.Gets)
		s.reg.Gauge(MetricPoolReuses + suffix).Set(ps.Reuses)
	}
	s.reg.Gauge(MetricJobsRetained).Set(int64(s.jobs.len()))
	return s.reg.Snapshot()
}

// Draining reports whether the server has begun shutdown.
func (s *Server) Draining() bool {
	s.admit.RLock()
	defer s.admit.RUnlock()
	return s.draining
}

// classify routes a conflict graph to its size-class shard: the first
// shard whose vertex bound admits it (the catch-all admits anything).
func (s *Server) classify(n int) *shard {
	for _, sh := range s.shards {
		if sh.cfg.MaxVertices <= 0 || n <= sh.cfg.MaxVertices {
			return sh
		}
	}
	return s.shards[len(s.shards)-1]
}

// resolveInstance builds (or fetches from cache) a benchmark
// instance's conflict graph and calibrated width.
func (s *Server) resolveInstance(name string) (instanceEntry, error) {
	if e, ok := s.graphs.Load(name); ok {
		ent := e.(instanceEntry)
		return ent, ent.err
	}
	in, err := mcnc.ByName(name)
	if err != nil {
		return instanceEntry{}, badRequest("%v", err)
	}
	_, g, err := in.Build()
	ent := instanceEntry{g: g, routableW: in.RoutableW, err: err}
	// Two racing builders compute identical graphs (builds are
	// deterministic), so last-store-wins is fine.
	s.graphs.Store(name, ent)
	return ent, err
}

// Submit validates a request, resolves its conflict graph, classifies
// it into a shard and enqueues it. It returns the registered job on
// success; ErrQueueFull, ErrDraining and *RequestError are the
// documented failure modes.
func (s *Server) Submit(req SolveRequest) (*Job, error) {
	if err := validateKnobs(&req); err != nil {
		return nil, err
	}
	g, width, instName, err := s.resolveProblem(&req)
	if err != nil {
		return nil, err
	}
	strategies, popts, err := s.resolveRun(&req)
	if err != nil {
		return nil, err
	}

	deadline := time.Duration(req.DeadlineMS) * time.Millisecond
	if deadline <= 0 {
		deadline = s.opts.DefaultDeadline
	}
	if s.opts.MaxDeadline > 0 && deadline > s.opts.MaxDeadline {
		deadline = s.opts.MaxDeadline
	}

	sh := s.classify(g.N())
	now := time.Now()
	job := &Job{
		g:          g,
		width:      width,
		strategies: strategies,
		popts:      popts,
		wantColors: req.WantColors,
		deadline:   now.Add(deadline),
		done:       make(chan struct{}),
	}
	job.view = JobView{
		State:       StateQueued,
		Instance:    instName,
		Width:       width,
		Shard:       sh.cfg.Name,
		Vertices:    g.N(),
		Edges:       g.M(),
		SubmittedAt: now,
		DeadlineMS:  deadline.Milliseconds(),
	}

	s.admit.RLock()
	if s.draining {
		s.admit.RUnlock()
		return nil, ErrDraining
	}
	job.ID = fmt.Sprintf("j%08d", s.idSeq.Add(1))
	job.view.ID = job.ID
	select {
	case sh.queue <- job:
		s.jobs.add(job, s.opts.MaxJobs)
		s.reg.Counter(MetricJobsSubmitted).Inc()
		s.admit.RUnlock()
		return job, nil
	default:
		s.admit.RUnlock()
		s.reg.Counter(MetricJobsRejected).Inc()
		return nil, ErrQueueFull
	}
}

// validateKnobs bounds-checks every numeric solve knob before any
// graph building happens, so a malformed request costs nothing and
// fails with a 400 immediately.
func validateKnobs(req *SolveRequest) error {
	switch {
	case req.Width < 0:
		return badRequest("width must not be negative, got %d", req.Width)
	case req.Width > MaxSubmitWidth:
		return badRequest("width %d above the maximum %d", req.Width, MaxSubmitWidth)
	case req.Lanes < 0:
		return badRequest("lanes must not be negative, got %d", req.Lanes)
	case req.Lanes > MaxSubmitLanes:
		return badRequest("lanes %d above the maximum %d", req.Lanes, MaxSubmitLanes)
	case req.MaxRetries < 0:
		return badRequest("max_retries must not be negative, got %d", req.MaxRetries)
	case req.MaxRetries > MaxSubmitRetries:
		return badRequest("max_retries %d above the maximum %d", req.MaxRetries, MaxSubmitRetries)
	case req.ConflictBudget < 0:
		return badRequest("conflict_budget must not be negative, got %d", req.ConflictBudget)
	case req.DeadlineMS < 0:
		return badRequest("deadline_ms must not be negative, got %d", req.DeadlineMS)
	case req.LaneTimeoutMS < 0:
		return badRequest("lane_timeout_ms must not be negative, got %d", req.LaneTimeoutMS)
	}
	return nil
}

// resolveProblem turns the request's instance name or inline DIMACS
// graph into a conflict graph plus effective width.
func (s *Server) resolveProblem(req *SolveRequest) (*graph.Graph, int, string, error) {
	switch {
	case req.Instance != "" && req.Graph != "":
		return nil, 0, "", badRequest("give either an instance name or an inline graph, not both")
	case req.Instance != "":
		ent, err := s.resolveInstance(req.Instance)
		if err != nil {
			if _, ok := err.(*RequestError); ok {
				return nil, 0, "", err
			}
			return nil, 0, "", badRequest("building instance %s: %v", req.Instance, err)
		}
		width := req.Width
		if width == 0 {
			width = ent.routableW
		}
		if width < 1 {
			return nil, 0, "", badRequest("width must be >= 1, got %d", width)
		}
		return ent.g, width, req.Instance, nil
	case req.Graph != "":
		g, err := graph.ParseDIMACS(strings.NewReader(req.Graph))
		if err != nil {
			return nil, 0, "", badRequest("parsing graph: %v", err)
		}
		if req.Width < 1 {
			return nil, 0, "", badRequest("width must be >= 1 with an inline graph, got %d", req.Width)
		}
		return g, req.Width, "", nil
	default:
		return nil, 0, "", badRequest("request names neither an instance nor a graph")
	}
}

// resolveRun translates the request's solve knobs into the lane set
// and hardened-portfolio options the workers execute with.
func (s *Server) resolveRun(req *SolveRequest) ([]core.Strategy, portfolio.Options, error) {
	var strategies []core.Strategy
	switch {
	case req.Portfolio && req.Strategy != "":
		return nil, portfolio.Options{}, badRequest("portfolio and strategy are mutually exclusive")
	case req.Portfolio:
		ss, err := portfolio.PaperPortfolio3()
		if err != nil {
			return nil, portfolio.Options{}, err
		}
		strategies = ss
	default:
		spec := req.Strategy
		if spec == "" {
			spec = DefaultStrategy
		}
		st, err := core.ParseStrategy(spec)
		if err != nil {
			return nil, portfolio.Options{}, badRequest("%v", err)
		}
		strategies = []core.Strategy{st}
	}
	lanes := req.Lanes
	if req.Share && lanes < 2 {
		lanes = 2 // sharing needs same-strategy peers
	}
	if lanes > 1 {
		strategies = portfolio.Replicate(strategies, lanes)
	}

	popts := portfolio.Options{
		Metrics:     s.reg,
		Verify:      req.Verify || s.opts.Verify,
		VerifyUnsat: req.Verify || s.opts.Verify,
		MaxRetries:  req.MaxRetries,
		Seed:        req.Seed,
		LaneTimeout: time.Duration(req.LaneTimeoutMS) * time.Millisecond,
		Solver:      sat.Options{ConflictBudget: req.ConflictBudget},
	}
	if req.MaxRetries > 0 {
		popts.RetrySchedule = robust.LubyRetry
	}
	if req.Share {
		popts.Share = &share.Options{}
	}
	return strategies, popts, nil
}

// Lookup returns a job by ID.
func (s *Server) Lookup(id string) (*Job, bool) { return s.jobs.get(id) }

// JobCount returns the number of jobs currently retained in the table.
func (s *Server) JobCount() int { return s.jobs.len() }

// worker drains one shard's queue until Drain closes it. Each job runs
// under the server's base context capped by the job deadline; the
// solve itself is further supervised by portfolio.RunHardened.
func (s *Server) worker(sh *shard) {
	defer s.workers.Done()
	for job := range sh.queue {
		sh.busy.Add(1)
		s.runJob(sh, job)
		sh.busy.Add(-1)
	}
}

// runJob executes one job end to end and publishes its result.
func (s *Server) runJob(sh *shard, job *Job) {
	started := time.Now()
	job.mu.Lock()
	queued := started.Sub(job.view.SubmittedAt)
	job.view.State = StateRunning
	job.view.QueuedMS = queued.Milliseconds()
	job.mu.Unlock()
	s.reg.Timer(MetricQueueWait).Observe(queued)

	ctx, cancel := context.WithDeadline(s.baseCtx, job.deadline)
	popts := job.popts
	popts.Pool = &sh.pool
	span := s.reg.StartSpan(MetricSolve)
	winner, all, err := portfolio.RunHardened(ctx, job.g, job.width, job.strategies, popts)
	elapsed := span.End()
	deadlineExceeded := ctx.Err() == context.DeadlineExceeded
	cancel()

	job.mu.Lock()
	v := &job.view
	v.State = StateDone
	v.SolveMS = elapsed.Milliseconds()
	v.Lanes = laneViews(all)
	switch {
	case err == nil && winner.Status == sat.Sat:
		v.Answer = AnswerRoutable
		v.Winner = winner.Strategy.Name()
		v.Attempts = winner.Attempts
		if job.wantColors {
			v.Colors = winner.Colors
		}
	case err == nil && winner.Status == sat.Unsat:
		v.Answer = AnswerUnroutable
		v.Winner = winner.Strategy.Name()
		v.Attempts = winner.Attempts
	default:
		v.Answer = AnswerUndecided
		v.Attempts = maxAttempts(all)
		if err != nil {
			v.Error = err.Error()
		}
		if deadlineExceeded {
			v.TimedOut = true
			s.reg.Counter(MetricJobsTimeout).Inc()
		} else {
			s.reg.Counter(MetricJobsFailed).Inc()
		}
	}
	job.finished = time.Now()
	job.mu.Unlock()
	s.reg.Counter(MetricJobsCompleted).Inc()
	close(job.done)
}

// laneViews condenses the per-lane portfolio results for the job view.
func laneViews(all []portfolio.Result) []LaneView {
	out := make([]LaneView, len(all))
	for i, r := range all {
		out[i] = LaneView{
			Strategy:  r.Strategy.Name(),
			Status:    r.Status.String(),
			Attempts:  r.Attempts,
			Conflicts: r.Stats.Conflicts,
			ElapsedMS: r.Elapsed.Milliseconds(),
		}
		if r.Err != nil {
			out[i].Error = r.Err.Error()
		}
	}
	return out
}

// maxAttempts reports the largest per-lane attempt count — the
// "partial attempt info" an undecided job still carries.
func maxAttempts(all []portfolio.Result) int {
	max := 0
	for _, r := range all {
		if r.Attempts > max {
			max = r.Attempts
		}
	}
	return max
}

// janitor garbage-collects completed jobs past their retention and
// enforces the table cap between scrapes.
func (s *Server) janitor() {
	defer close(s.gcDone)
	t := time.NewTicker(s.opts.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.jobs.gc(time.Now().Add(-s.opts.RetainJobs), s.opts.MaxJobs)
		case <-s.stopGC:
			return
		}
	}
}

// Drain performs the graceful shutdown: admission stops, queued and
// in-flight jobs run to completion, then workers exit. If ctx expires
// first, the base context is cancelled so in-flight solves unwind
// promptly (their jobs complete as UNDECIDED), and Drain still waits
// for the workers before returning ctx's error. Drain is idempotent;
// concurrent calls all block until the drain finishes.
func (s *Server) Drain(ctx context.Context) error {
	s.admit.Lock()
	if !s.draining {
		s.draining = true
		for _, sh := range s.shards {
			close(sh.queue)
		}
		close(s.stopGC)
	}
	s.admit.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		<-s.gcDone
		return nil
	case <-ctx.Done():
		s.cancelBase() // abort in-flight solves; they exit via cancellation polling
		<-done
		<-s.gcDone
		return ctx.Err()
	}
}
