// Package serve is the solve-as-a-service layer behind cmd/fpgasatd:
// it turns the one-shot decide-routability-at-W flow into a
// long-running daemon that accepts solve jobs over HTTP, executes them
// on sharded pools of reusable solvers, and exposes its internals
// through the obs metrics registry.
//
// The architecture is a fixed set of size-class shards. Each shard
// owns a sat.Pool (so solvers recycle their clause arenas within a
// size class instead of ping-ponging between tiny and huge instances)
// and a group of worker goroutines draining a bounded admission queue.
// A job is classified by its conflict graph's vertex count at submit
// time; a full queue rejects the submit immediately (HTTP 429) rather
// than buffering unboundedly — callers are expected to back off and
// retry, which keeps tail latency honest under overload.
//
// Every job runs through portfolio.RunHardened, so the daemon inherits
// the whole supervision stack: panic-isolated lanes, paranoid answer
// verification, budgeted conflict-budget retries and per-lane
// watchdogs. The per-job deadline becomes a context deadline on the
// run; a deadline that expires mid-solve surfaces as an UNDECIDED
// answer with TimedOut set and the per-lane attempt counts preserved.
//
// Shutdown is graceful: Drain stops admission (new submits fail with
// ErrDraining, /healthz flips to 503), lets the workers finish every
// queued and in-flight job, and only then returns. A drain context
// that expires instead cancels the in-flight solves, which unwind
// promptly through their cancellation polling.
package serve

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fpgasat/internal/core"
	"fpgasat/internal/graph"
	"fpgasat/internal/mcnc"
	"fpgasat/internal/obs"
	"fpgasat/internal/portfolio"
	"fpgasat/internal/robust"
	"fpgasat/internal/sat"
	"fpgasat/internal/share"
)

// Daemon metric names. Per-shard metrics append "." plus the shard
// name (e.g. "serve.queue.depth.small"); the gauges are refreshed on
// every /metrics scrape.
const (
	// MetricJobsSubmitted counts jobs admitted to a queue;
	// MetricJobsRejected counts submits refused with ErrQueueFull.
	MetricJobsSubmitted = "serve.jobs.submitted"
	MetricJobsRejected  = "serve.jobs.rejected"
	// MetricJobsCompleted counts jobs that ran to completion (any
	// answer); MetricJobsTimeout the subset whose deadline expired
	// mid-solve; MetricJobsFailed the subset that ended with an error
	// and no definite answer (lane panics, soundness violations).
	MetricJobsCompleted = "serve.jobs.completed"
	MetricJobsTimeout   = "serve.jobs.timeout"
	MetricJobsFailed    = "serve.jobs.failed"
	// MetricJobsRetained gauges the jobs currently held in the job
	// table (queued, running and done-but-not-yet-GCed).
	MetricJobsRetained = "serve.jobs.retained"
	// MetricQueueWait times how long jobs sat queued before a worker
	// picked them up; MetricSolve times the solve itself.
	MetricQueueWait = "serve.queue.wait"
	MetricSolve     = "serve.solve"
	// Per-shard gauges: current queue depth and capacity, busy and
	// total workers, and the shard pool's cumulative solver hand-outs
	// and reuses (reuses/gets is the pool hit rate).
	MetricQueueDepth  = "serve.queue.depth"
	MetricQueueCap    = "serve.queue.cap"
	MetricWorkersBusy = "serve.workers.busy"
	MetricWorkers     = "serve.workers"
	MetricPoolGets    = "serve.pool.gets"
	MetricPoolReuses  = "serve.pool.reuses"
	// MetricQueueBatch gauges the batch-class backlog per shard (the
	// main depth gauge counts both classes); MetricRetryAfter gauges
	// the Retry-After seconds the shard currently advertises on 429.
	MetricQueueBatch = "serve.queue.batch"
	MetricRetryAfter = "serve.retry.after"
	// Journal metrics: records appended, records replayed at startup,
	// unfinished jobs re-enqueued, completed results restored, torn or
	// corrupt tails truncated, write errors, and the fsync timer.
	MetricJournalRecords   = "serve.journal.records"
	MetricJournalReplayed  = "serve.journal.replayed"
	MetricJournalRecovered = "serve.journal.recovered"
	MetricJournalRestored  = "serve.journal.restored"
	MetricJournalTruncated = "serve.journal.truncated"
	MetricJournalErrors    = "serve.journal.errors"
	MetricJournalFsync     = "serve.journal.fsync"
	// Breaker metrics: the per-shard state gauge (0 closed, 1
	// half-open, 2 open), trips to open, and half-open probes admitted
	// (both per shard).
	MetricBreakerState  = "serve.breaker.state"
	MetricBreakerTrips  = "serve.breaker.trips"
	MetricBreakerProbes = "serve.breaker.probes"
	// Shed metrics: jobs rejected at dequeue because they sat queued
	// past the sojourn target, and jobs whose own deadline had already
	// expired when a worker picked them up.
	MetricShedSojourn  = "serve.shed.sojourn"
	MetricShedDeadline = "serve.shed.deadline"
)

// DefaultStrategy is the encoding/symmetry pair jobs solve with when
// the request names neither a strategy nor the portfolio: the paper's
// overall best single strategy.
const DefaultStrategy = "ITE-linear-2+muldirect/s1"

// Submit-time caps on the request knobs. A request outside these
// bounds is rejected with a *RequestError (HTTP 400) at submit instead
// of being admitted as a job doomed to fail or monopolize a shard.
const (
	// MaxSubmitWidth caps the channel width of any job: wider CSPs only
	// grow the variable count without changing routability on any
	// realistic architecture.
	MaxSubmitWidth = 1 << 16
	// MaxSubmitLanes caps lane replication per job so one request
	// cannot claim an unbounded slice of a shard's solver pool.
	MaxSubmitLanes = 64
	// MaxSubmitRetries caps the per-lane retry count (the Luby budget
	// schedule grows geometrically, so larger values are never useful
	// within a sane job deadline).
	MaxSubmitRetries = 32
)

// Sentinel errors of the admission path. The HTTP layer maps them to
// status codes (429, 503, 400).
var (
	// ErrQueueFull reports that the job's size-class shard had no queue
	// slot free. The job was not admitted; retry with backoff. Submit
	// returns it wrapped in a *QueueFullError carrying the shard's
	// adaptive Retry-After estimate.
	ErrQueueFull = fmt.Errorf("serve: shard queue full")
	// ErrDraining reports that the server has begun its graceful
	// shutdown and admits no new work.
	ErrDraining = fmt.Errorf("serve: server is draining")
	// ErrJournal reports that the job journal could not durably record
	// an accepted job; the submit is refused (retryable — the job was
	// not admitted) rather than accepted without a durability
	// guarantee.
	ErrJournal = fmt.Errorf("serve: journal write failed; job not accepted")
)

// QueueFullError is the concrete error of a queue-full rejection:
// errors.Is(err, ErrQueueFull) holds, and RetryAfter carries the
// shard's backlog-drain estimate for the 429's Retry-After header.
type QueueFullError struct {
	Shard      string
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("serve: shard %s queue full (retry in %v)", e.Shard, e.RetryAfter.Round(time.Second))
}

// Is makes errors.Is(err, ErrQueueFull) succeed.
func (e *QueueFullError) Is(target error) bool { return target == ErrQueueFull }

// RequestError marks a submit rejected because of the request itself
// (unknown instance, unparsable graph, invalid width); the HTTP layer
// maps it to 400 rather than 5xx.
type RequestError struct{ Err error }

func (e *RequestError) Error() string { return "serve: bad request: " + e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }

// badRequest wraps a validation failure as a *RequestError.
func badRequest(format string, args ...any) error {
	return &RequestError{Err: fmt.Errorf(format, args...)}
}

// ShardConfig sizes one size-class shard.
type ShardConfig struct {
	// Name labels the shard in metrics and job views.
	Name string
	// MaxVertices is the inclusive conflict-graph size bound of the
	// shard; jobs are routed to the first shard (in ascending bound
	// order) whose bound admits them. A bound <= 0 means unbounded —
	// the catch-all shard every configuration must end with.
	MaxVertices int
	// Workers is the number of concurrent solve workers (default 2).
	Workers int
	// QueueDepth bounds the admission queue; a submit that finds the
	// queue full fails with ErrQueueFull (default 64).
	QueueDepth int
}

// DefaultShards returns the default three-class layout: "small" for
// MCNC-scale graphs, "medium" for the tile-templated scaled instances,
// and an unbounded "large" catch-all with few workers (large jobs are
// memory-hungry; fewer in flight keeps the arenas bounded).
func DefaultShards() []ShardConfig {
	return []ShardConfig{
		{Name: "small", MaxVertices: 4096, Workers: 4, QueueDepth: 256},
		{Name: "medium", MaxVertices: 1 << 18, Workers: 2, QueueDepth: 64},
		{Name: "large", MaxVertices: 0, Workers: 1, QueueDepth: 8},
	}
}

// Options configures a Server. The zero value serves with
// DefaultShards, a fresh metrics registry and the documented default
// deadlines and retention.
type Options struct {
	// Shards is the size-class layout; nil selects DefaultShards().
	// Shards are sorted by bound; exactly the unbounded ones must have
	// MaxVertices <= 0 and at least one is required as catch-all.
	Shards []ShardConfig
	// Metrics receives all daemon, portfolio and robustness telemetry;
	// nil creates a private registry (exposed via Metrics()).
	Metrics *obs.Registry
	// DefaultDeadline applies to jobs that set none (default 1m);
	// MaxDeadline clamps every job deadline (default 10m, <0 disables
	// the clamp).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// Verify forces paranoid mode on every job regardless of the
	// request: Sat answers re-checked against conflict edges, Unsat
	// answers replayed through the DRAT checker.
	Verify bool
	// RetainJobs is how long completed jobs stay queryable before the
	// janitor deletes them (default 15m). MaxJobs additionally caps the
	// job table, evicting the oldest completed jobs first (default
	// 16384). GCInterval is the janitor period (default 30s).
	RetainJobs time.Duration
	MaxJobs    int
	GCInterval time.Duration
	// JournalDir enables the durable job journal: every accepted job is
	// fsynced to a WAL in this directory before the submit returns, and
	// NewServer replays it — re-enqueueing accepted-but-unfinished jobs
	// and restoring completed results. Empty disables journaling (a
	// restart loses all job state, as before).
	JournalDir string
	// SojournTarget is the CoDel-style shedding bound: a job that sat
	// queued longer than this is rejected at dequeue (completing as
	// UNDECIDED with Shed set) instead of being solved late. 0 selects
	// the 30s default; negative disables sojourn shedding. Jobs whose
	// own deadline already expired at dequeue are always shed.
	SojournTarget time.Duration
	// BreakerThreshold is the number of consecutive supervision
	// failures (lane panics, watchdog abandonments, soundness
	// violations, worker crashes) that trips a shard's circuit breaker
	// (default 5; negative disables the breakers). BreakerBackoff is
	// the first open period, doubling per consecutive failed probe up
	// to BreakerMaxBackoff (defaults 1s and 1m).
	BreakerThreshold  int
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration
}

func (o Options) withDefaults() Options {
	if o.Shards == nil {
		o.Shards = DefaultShards()
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = time.Minute
	}
	if o.MaxDeadline == 0 {
		o.MaxDeadline = 10 * time.Minute
	}
	if o.RetainJobs <= 0 {
		o.RetainJobs = 15 * time.Minute
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 16384
	}
	if o.GCInterval <= 0 {
		o.GCInterval = 30 * time.Second
	}
	if o.SojournTarget == 0 {
		o.SojournTarget = 30 * time.Second
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerBackoff <= 0 {
		o.BreakerBackoff = time.Second
	}
	if o.BreakerMaxBackoff <= 0 {
		o.BreakerMaxBackoff = time.Minute
	}
	return o
}

// shard is one size class: two bounded admission queues (interactive
// drained before batch) behind atomic reservation counters, the
// sat.Pool the workers draw solvers from, the shard's service-time
// statistics and its circuit breaker.
type shard struct {
	cfg ShardConfig
	// qi/qb are the interactive and batch queues; ni/nb count reserved
	// slots (reservation precedes the channel send so the journal can
	// be written between admission and publication without a full-queue
	// surprise after the fsync).
	qi, qb chan *Job
	ni, nb atomic.Int64
	pool   sat.Pool
	busy   atomic.Int64
	adm    admission
	brk    *breaker
}

// queued returns the shard's total reserved backlog across both
// classes.
func (sh *shard) queued() int { return int(sh.ni.Load() + sh.nb.Load()) }

// reserve claims a queue slot in the given class, returning the
// reservation counter to release on failure, or nil when the class
// queue is full.
func (sh *shard) reserve(priority string) *atomic.Int64 {
	n, depth := &sh.ni, cap(sh.qi)
	if priority == PriorityBatch {
		n, depth = &sh.nb, cap(sh.qb)
	}
	if n.Add(1) > int64(depth) {
		n.Add(-1)
		return nil
	}
	return n
}

// Server is the serving core: shards, workers, the job table and its
// janitor. Create one with NewServer and expose it over HTTP with
// Handler; it is safe for concurrent use.
type Server struct {
	opts   Options
	reg    *obs.Registry
	shards []*shard

	// admit serializes submits against the drain transition: Submit
	// holds the read side while it checks the draining flag and sends
	// on a shard queue, so Drain's queue close can never race a send.
	admit    sync.RWMutex
	draining bool

	baseCtx    context.Context
	cancelBase context.CancelFunc
	workers    sync.WaitGroup
	stopGC     chan struct{}
	gcDone     chan struct{}

	jobs    jobTable
	idSeq   atomic.Int64
	graphs  sync.Map // instance name -> instanceEntry
	journal *Journal // nil when journaling is disabled
}

// instanceEntry caches a built benchmark instance so repeated jobs on
// the same instance skip netlist generation and global routing.
type instanceEntry struct {
	g         *graph.Graph
	routableW int
	err       error
}

// NewServer builds and starts a server: workers and the job janitor
// begin running immediately. Returns an error for an invalid shard
// layout.
func NewServer(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	shards := append([]ShardConfig(nil), opts.Shards...)
	for i := range shards {
		if shards[i].Name == "" {
			return nil, fmt.Errorf("serve: shard %d has no name", i)
		}
		if shards[i].Workers <= 0 {
			shards[i].Workers = 2
		}
		if shards[i].QueueDepth <= 0 {
			shards[i].QueueDepth = 64
		}
	}
	// Ascending bound order with the unbounded catch-all(s) last.
	sort.SliceStable(shards, func(i, j int) bool {
		bi, bj := shards[i].MaxVertices, shards[j].MaxVertices
		switch {
		case bi <= 0:
			return false
		case bj <= 0:
			return true
		default:
			return bi < bj
		}
	})
	if shards[len(shards)-1].MaxVertices > 0 {
		return nil, fmt.Errorf("serve: shard layout needs an unbounded catch-all (MaxVertices <= 0)")
	}
	seen := map[string]bool{}
	for _, sc := range shards {
		if seen[sc.Name] {
			return nil, fmt.Errorf("serve: duplicate shard name %q", sc.Name)
		}
		seen[sc.Name] = true
	}

	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		reg:        opts.Metrics,
		baseCtx:    ctx,
		cancelBase: cancel,
		stopGC:     make(chan struct{}),
		gcDone:     make(chan struct{}),
		jobs:       jobTable{byID: map[string]*Job{}, byKey: map[string]*Job{}},
	}
	for i, sc := range shards {
		sh := &shard{
			cfg: sc,
			qi:  make(chan *Job, sc.QueueDepth),
			qb:  make(chan *Job, sc.QueueDepth),
		}
		if opts.BreakerThreshold > 0 {
			name := sc.Name
			sh.brk = newBreaker(opts.BreakerThreshold, opts.BreakerBackoff, opts.BreakerMaxBackoff,
				time.Now().UnixNano()+int64(i), func(state int64) {
					s.reg.Gauge(MetricBreakerState + "." + name).Set(state)
					if state == breakerOpen {
						s.reg.Counter(MetricBreakerTrips + "." + name).Inc()
					}
				})
		}
		s.shards = append(s.shards, sh)
	}
	s.preregisterMetrics()

	// Replay the journal before any worker starts, so restored results
	// are visible in the job table from the first request and recovered
	// pending jobs keep their submission order.
	var pending []*Job
	if opts.JournalDir != "" {
		journal, recovered, maxID, err := OpenJournal(opts.JournalDir, s.reg)
		if err != nil {
			cancel()
			return nil, err
		}
		s.journal = journal
		s.idSeq.Store(maxID)
		pending = s.restoreRecovered(recovered)
	}

	for _, sh := range s.shards {
		for w := 0; w < sh.cfg.Workers; w++ {
			s.workers.Add(1)
			go s.worker(sh)
		}
	}
	if len(pending) > 0 {
		go s.requeueRecovered(pending)
	}
	go s.janitor()
	return s, nil
}

// restoreRecovered folds the journal's replayed jobs into the server:
// completed results go straight into the job table (idempotency keys
// included), accepted-but-unfinished jobs are rebuilt from their
// journaled requests and returned for re-enqueueing. A pending job
// whose request no longer resolves (e.g. an instance that left the
// registry) completes as failed rather than vanishing.
func (s *Server) restoreRecovered(recovered []RecoveredJob) []*Job {
	var pending []*Job
	for _, rj := range recovered {
		if rj.View != nil {
			job := &Job{ID: rj.ID, key: rj.Key, view: *rj.View, done: make(chan struct{})}
			job.finished = rj.FinishedAt
			if job.finished.IsZero() {
				job.finished = time.Now()
			}
			close(job.done)
			s.jobs.addOrGet(job, s.opts.MaxJobs)
			s.reg.Counter(MetricJournalRestored).Inc()
			continue
		}
		job, err := s.rebuildJob(rj)
		if err != nil {
			job = &Job{ID: rj.ID, key: rj.Key, done: make(chan struct{})}
			job.view = JobView{ID: rj.ID, State: StateDone, Answer: AnswerUndecided,
				Error: fmt.Sprintf("recovery: %v", err), SubmittedAt: rj.SubmittedAt}
			job.finished = time.Now()
			close(job.done)
			s.jobs.addOrGet(job, s.opts.MaxJobs)
			continue
		}
		s.jobs.addOrGet(job, s.opts.MaxJobs)
		s.reg.Counter(MetricJournalRecovered).Inc()
		pending = append(pending, job)
	}
	return pending
}

// rebuildJob reconstructs a runnable job from its journaled request.
// The deadline restarts from now — the original absolute deadline
// usually lies in the crashed process's past, and re-enqueueing a job
// only to shed it at dequeue would turn every recovery into a loss.
func (s *Server) rebuildJob(rj RecoveredJob) (*Job, error) {
	req := rj.Req
	if err := validateKnobs(&req); err != nil {
		return nil, err
	}
	g, width, instName, err := s.resolveProblem(&req)
	if err != nil {
		return nil, err
	}
	strategies, popts, err := s.resolveRun(&req)
	if err != nil {
		return nil, err
	}
	deadline := s.effectiveDeadline(req.DeadlineMS)
	sh := s.classify(g.N())
	now := time.Now()
	job := &Job{
		ID:         rj.ID,
		key:        rj.Key,
		g:          g,
		width:      width,
		strategies: strategies,
		popts:      popts,
		wantColors: req.WantColors,
		priority:   req.Priority,
		deadline:   now.Add(deadline),
		done:       make(chan struct{}),
	}
	job.view = JobView{
		ID:          rj.ID,
		State:       StateQueued,
		Instance:    instName,
		Width:       width,
		Shard:       sh.cfg.Name,
		Priority:    priorityName(req.Priority),
		Vertices:    g.N(),
		Edges:       g.M(),
		SubmittedAt: now,
		DeadlineMS:  deadline.Milliseconds(),
	}
	return job, nil
}

// requeueRecovered feeds the recovered pending jobs back into their
// shard queues. Sends block when a queue is momentarily full (the
// workers are already draining), and each send holds the admission
// read lock so it can never race a drain's queue close; a drain that
// begins mid-recovery strands the remainder in the journal, where the
// next startup recovers them again.
func (s *Server) requeueRecovered(pending []*Job) {
	for _, job := range pending {
		sh := s.classify(job.view.Vertices)
		q, n := sh.qi, &sh.ni
		if job.priority == PriorityBatch {
			q, n = sh.qb, &sh.nb
		}
		s.admit.RLock()
		if s.draining {
			s.admit.RUnlock()
			return
		}
		n.Add(1)
		q <- job
		s.admit.RUnlock()
	}
}

// effectiveDeadline applies the server's default and clamp to a
// requested deadline.
func (s *Server) effectiveDeadline(deadlineMS int64) time.Duration {
	deadline := time.Duration(deadlineMS) * time.Millisecond
	if deadline <= 0 {
		deadline = s.opts.DefaultDeadline
	}
	if s.opts.MaxDeadline > 0 && deadline > s.opts.MaxDeadline {
		deadline = s.opts.MaxDeadline
	}
	return deadline
}

// Metrics returns the server's registry (for -metrics-out style dumps
// alongside the /metrics endpoint).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// preregisterMetrics touches every metric the daemon can emit so a
// /metrics scrape shows zero values instead of omitting quiet
// counters — operators alert on absence otherwise.
func (s *Server) preregisterMetrics() {
	for _, name := range []string{
		MetricJobsSubmitted, MetricJobsRejected, MetricJobsCompleted,
		MetricJobsTimeout, MetricJobsFailed,
		MetricJournalRecords, MetricJournalReplayed, MetricJournalRecovered,
		MetricJournalRestored, MetricJournalTruncated, MetricJournalErrors,
		MetricShedSojourn, MetricShedDeadline,
	} {
		s.reg.Counter(name)
	}
	s.reg.Timer(MetricJournalFsync)
	for _, name := range []string{
		portfolio.MetricPanics, portfolio.MetricRetries,
		portfolio.MetricVerifySat, portfolio.MetricVerifyUnsat,
		portfolio.MetricAbandoned,
		portfolio.MetricShareExported, portfolio.MetricShareFiltered,
		portfolio.MetricShareDuplicates, portfolio.MetricShareDropped,
		portfolio.MetricShareImported, portfolio.MetricShareRejected,
	} {
		s.reg.Counter(name)
	}
	s.reg.Timer(MetricQueueWait)
	s.reg.Timer(MetricSolve)
	s.reg.Gauge(MetricJobsRetained)
	for _, sh := range s.shards {
		suffix := "." + sh.cfg.Name
		s.reg.Gauge(MetricQueueDepth + suffix)
		s.reg.Gauge(MetricQueueCap + suffix).Set(int64(sh.cfg.QueueDepth))
		s.reg.Gauge(MetricQueueBatch + suffix)
		s.reg.Gauge(MetricWorkersBusy + suffix)
		s.reg.Gauge(MetricWorkers + suffix).Set(int64(sh.cfg.Workers))
		s.reg.Gauge(MetricPoolGets + suffix)
		s.reg.Gauge(MetricPoolReuses + suffix)
		s.reg.Gauge(MetricRetryAfter + suffix)
		s.reg.Gauge(MetricBreakerState + suffix)
		s.reg.Counter(MetricBreakerTrips + suffix)
		s.reg.Counter(MetricBreakerProbes + suffix)
	}
}

// Scrape refreshes the point-in-time gauges (queue depths, busy
// workers, pool hit rates, retained jobs) and returns a snapshot of
// the registry — the payload of GET /metrics.
func (s *Server) Scrape() obs.Snapshot {
	for _, sh := range s.shards {
		suffix := "." + sh.cfg.Name
		s.reg.Gauge(MetricQueueDepth + suffix).Set(int64(sh.queued()))
		s.reg.Gauge(MetricQueueBatch + suffix).Set(sh.nb.Load())
		s.reg.Gauge(MetricWorkersBusy + suffix).Set(sh.busy.Load())
		ps := sh.pool.Stats()
		s.reg.Gauge(MetricPoolGets + suffix).Set(ps.Gets)
		s.reg.Gauge(MetricPoolReuses + suffix).Set(ps.Reuses)
		ra := sh.adm.retryAfter(sh.queued(), int(sh.busy.Load()), sh.cfg.Workers)
		s.reg.Gauge(MetricRetryAfter + suffix).Set(int64(retryAfterSeconds(ra)))
	}
	s.reg.Gauge(MetricJobsRetained).Set(int64(s.jobs.len()))
	return s.reg.Snapshot()
}

// Draining reports whether the server has begun shutdown.
func (s *Server) Draining() bool {
	s.admit.RLock()
	defer s.admit.RUnlock()
	return s.draining
}

// classify routes a conflict graph to its size-class shard: the first
// shard whose vertex bound admits it (the catch-all admits anything).
func (s *Server) classify(n int) *shard {
	for _, sh := range s.shards {
		if sh.cfg.MaxVertices <= 0 || n <= sh.cfg.MaxVertices {
			return sh
		}
	}
	return s.shards[len(s.shards)-1]
}

// resolveInstance builds (or fetches from cache) a benchmark
// instance's conflict graph and calibrated width.
func (s *Server) resolveInstance(name string) (instanceEntry, error) {
	if e, ok := s.graphs.Load(name); ok {
		ent := e.(instanceEntry)
		return ent, ent.err
	}
	in, err := mcnc.ByName(name)
	if err != nil {
		return instanceEntry{}, badRequest("%v", err)
	}
	_, g, err := in.Build()
	ent := instanceEntry{g: g, routableW: in.RoutableW, err: err}
	// Two racing builders compute identical graphs (builds are
	// deterministic), so last-store-wins is fine.
	s.graphs.Store(name, ent)
	return ent, err
}

// Submit validates a request, resolves its conflict graph, classifies
// it into a shard and enqueues it. It returns the registered job on
// success; *QueueFullError (errors.Is ErrQueueFull), ErrDraining,
// *BreakerOpenError, ErrJournal and *RequestError are the documented
// failure modes.
func (s *Server) Submit(req SolveRequest) (*Job, error) {
	job, _, err := s.SubmitDedup(req)
	return job, err
}

// SubmitDedup is Submit plus idempotency: when the request carries an
// IdempotencyKey already bound to a retained job, that job is returned
// with duplicate=true and nothing new is admitted — the client retry
// contract across crashes and timeouts.
func (s *Server) SubmitDedup(req SolveRequest) (job *Job, duplicate bool, err error) {
	if err := validateKnobs(&req); err != nil {
		return nil, false, err
	}
	g, width, instName, err := s.resolveProblem(&req)
	if err != nil {
		return nil, false, err
	}
	strategies, popts, err := s.resolveRun(&req)
	if err != nil {
		return nil, false, err
	}

	deadline := s.effectiveDeadline(req.DeadlineMS)
	sh := s.classify(g.N())
	now := time.Now()
	job = &Job{
		key:        req.IdempotencyKey,
		g:          g,
		width:      width,
		strategies: strategies,
		popts:      popts,
		wantColors: req.WantColors,
		priority:   req.Priority,
		deadline:   now.Add(deadline),
		done:       make(chan struct{}),
	}
	job.view = JobView{
		State:       StateQueued,
		Instance:    instName,
		Width:       width,
		Shard:       sh.cfg.Name,
		Priority:    priorityName(req.Priority),
		Vertices:    g.N(),
		Edges:       g.M(),
		SubmittedAt: now,
		DeadlineMS:  deadline.Milliseconds(),
	}

	s.admit.RLock()
	defer s.admit.RUnlock()
	if s.draining {
		return nil, false, ErrDraining
	}
	if req.IdempotencyKey != "" {
		if exist, ok := s.jobs.getByKey(req.IdempotencyKey); ok {
			return exist, true, nil
		}
	}
	probe := false
	if sh.brk != nil {
		ok, p, wait := sh.brk.allow()
		if !ok {
			return nil, false, &BreakerOpenError{Shard: sh.cfg.Name, RetryAfter: wait}
		}
		if probe = p; probe {
			s.reg.Counter(MetricBreakerProbes + "." + sh.cfg.Name).Inc()
		}
	}
	releaseProbe := func() {
		if probe {
			sh.brk.releaseProbe()
		}
	}
	// Reserve the queue slot before the durable accept: a full queue
	// must be discovered while no journal record exists, so rejected
	// submits can never reappear as replayed jobs.
	slot := sh.reserve(job.priority)
	if slot == nil {
		releaseProbe()
		s.reg.Counter(MetricJobsRejected).Inc()
		retry := sh.adm.retryAfter(sh.queued(), int(sh.busy.Load()), sh.cfg.Workers)
		return nil, false, &QueueFullError{Shard: sh.cfg.Name, RetryAfter: retry}
	}
	job.ID = fmt.Sprintf("j%08d", s.idSeq.Add(1))
	job.view.ID = job.ID
	job.probe = probe
	if exist, dup := s.jobs.addOrGet(job, s.opts.MaxJobs); dup {
		// Two submits raced the same fresh idempotency key; the loser
		// backs out and returns the winner.
		slot.Add(-1)
		releaseProbe()
		return exist, true, nil
	}
	// Durable accept: the submit record is fsynced before the job is
	// published to a worker or the caller — once Submit returns, a
	// crash cannot lose the job.
	if jerr := s.journalSubmit(job, &req, now); jerr != nil {
		slot.Add(-1)
		releaseProbe()
		s.jobs.remove(job)
		return nil, false, jerr
	}
	q := sh.qi
	if job.priority == PriorityBatch {
		q = sh.qb
	}
	q <- job // cannot block: the slot reservation guarantees room
	s.reg.Counter(MetricJobsSubmitted).Inc()
	return job, false, nil
}

// journalSubmit durably records an accepted job (fsync before return);
// a failure is wrapped in ErrJournal.
func (s *Server) journalSubmit(job *Job, req *SolveRequest, at time.Time) error {
	if s.journal == nil {
		return nil
	}
	rec := journalRecord{Kind: recSubmit, ID: job.ID, Key: job.key, Req: req, At: at}
	if err := s.journal.append(rec, true); err != nil {
		return fmt.Errorf("%w: %v", ErrJournal, err)
	}
	return nil
}

// journalStart records that a worker picked the job up (advisory — no
// fsync; replay treats started and queued jobs identically).
func (s *Server) journalStart(job *Job) {
	if s.journal == nil {
		return
	}
	_ = s.journal.append(journalRecord{Kind: recStart, ID: job.ID, At: time.Now()}, false)
}

// journalDone durably records a completed job's result so a restart
// restores it instead of re-running it.
func (s *Server) journalDone(job *Job, view JobView) {
	if s.journal == nil {
		return
	}
	rec := journalRecord{Kind: recDone, ID: job.ID, Key: job.key, View: &view, At: time.Now()}
	_ = s.journal.append(rec, true)
}

// validateKnobs bounds-checks every numeric solve knob before any
// graph building happens, so a malformed request costs nothing and
// fails with a 400 immediately.
func validateKnobs(req *SolveRequest) error {
	switch {
	case req.Width < 0:
		return badRequest("width must not be negative, got %d", req.Width)
	case req.Width > MaxSubmitWidth:
		return badRequest("width %d above the maximum %d", req.Width, MaxSubmitWidth)
	case req.Lanes < 0:
		return badRequest("lanes must not be negative, got %d", req.Lanes)
	case req.Lanes > MaxSubmitLanes:
		return badRequest("lanes %d above the maximum %d", req.Lanes, MaxSubmitLanes)
	case req.MaxRetries < 0:
		return badRequest("max_retries must not be negative, got %d", req.MaxRetries)
	case req.MaxRetries > MaxSubmitRetries:
		return badRequest("max_retries %d above the maximum %d", req.MaxRetries, MaxSubmitRetries)
	case req.ConflictBudget < 0:
		return badRequest("conflict_budget must not be negative, got %d", req.ConflictBudget)
	case req.DeadlineMS < 0:
		return badRequest("deadline_ms must not be negative, got %d", req.DeadlineMS)
	case req.LaneTimeoutMS < 0:
		return badRequest("lane_timeout_ms must not be negative, got %d", req.LaneTimeoutMS)
	case req.Priority != "" && req.Priority != PriorityInteractive && req.Priority != PriorityBatch:
		return badRequest("priority must be %q or %q, got %q", PriorityInteractive, PriorityBatch, req.Priority)
	}
	return nil
}

// priorityName normalizes the priority for job views ("" means
// interactive).
func priorityName(p string) string {
	if p == "" {
		return PriorityInteractive
	}
	return p
}

// resolveProblem turns the request's instance name or inline DIMACS
// graph into a conflict graph plus effective width.
func (s *Server) resolveProblem(req *SolveRequest) (*graph.Graph, int, string, error) {
	switch {
	case req.Instance != "" && req.Graph != "":
		return nil, 0, "", badRequest("give either an instance name or an inline graph, not both")
	case req.Instance != "":
		ent, err := s.resolveInstance(req.Instance)
		if err != nil {
			if _, ok := err.(*RequestError); ok {
				return nil, 0, "", err
			}
			return nil, 0, "", badRequest("building instance %s: %v", req.Instance, err)
		}
		width := req.Width
		if width == 0 {
			width = ent.routableW
		}
		if width < 1 {
			return nil, 0, "", badRequest("width must be >= 1, got %d", width)
		}
		return ent.g, width, req.Instance, nil
	case req.Graph != "":
		g, err := graph.ParseDIMACS(strings.NewReader(req.Graph))
		if err != nil {
			return nil, 0, "", badRequest("parsing graph: %v", err)
		}
		if req.Width < 1 {
			return nil, 0, "", badRequest("width must be >= 1 with an inline graph, got %d", req.Width)
		}
		return g, req.Width, "", nil
	default:
		return nil, 0, "", badRequest("request names neither an instance nor a graph")
	}
}

// resolveRun translates the request's solve knobs into the lane set
// and hardened-portfolio options the workers execute with.
func (s *Server) resolveRun(req *SolveRequest) ([]core.Strategy, portfolio.Options, error) {
	var strategies []core.Strategy
	switch {
	case req.Portfolio && req.Strategy != "":
		return nil, portfolio.Options{}, badRequest("portfolio and strategy are mutually exclusive")
	case req.Portfolio:
		ss, err := portfolio.PaperPortfolio3()
		if err != nil {
			return nil, portfolio.Options{}, err
		}
		strategies = ss
	default:
		spec := req.Strategy
		if spec == "" {
			spec = DefaultStrategy
		}
		st, err := core.ParseStrategy(spec)
		if err != nil {
			return nil, portfolio.Options{}, badRequest("%v", err)
		}
		strategies = []core.Strategy{st}
	}
	lanes := req.Lanes
	if req.Share && lanes < 2 {
		lanes = 2 // sharing needs same-strategy peers
	}
	if lanes > 1 {
		strategies = portfolio.Replicate(strategies, lanes)
	}

	popts := portfolio.Options{
		Metrics:     s.reg,
		Verify:      req.Verify || s.opts.Verify,
		VerifyUnsat: req.Verify || s.opts.Verify,
		MaxRetries:  req.MaxRetries,
		Seed:        req.Seed,
		LaneTimeout: time.Duration(req.LaneTimeoutMS) * time.Millisecond,
		Solver:      sat.Options{ConflictBudget: req.ConflictBudget},
	}
	if req.MaxRetries > 0 {
		popts.RetrySchedule = robust.LubyRetry
	}
	if req.Share {
		popts.Share = &share.Options{}
	}
	return strategies, popts, nil
}

// Lookup returns a job by ID.
func (s *Server) Lookup(id string) (*Job, bool) { return s.jobs.get(id) }

// JobCount returns the number of jobs currently retained in the table.
func (s *Server) JobCount() int { return s.jobs.len() }

// worker drains one shard's queues — interactive strictly before
// batch — until Drain closes them. Each job runs under the server's
// base context capped by the job deadline; the solve itself is
// supervised by portfolio.RunHardened, and the worker loop itself is a
// panic boundary: a crash in the serve layer fails the one job (and
// feeds the shard's breaker) instead of killing the process.
func (s *Server) worker(sh *shard) {
	defer s.workers.Done()
	qi, qb := sh.qi, sh.qb
	for qi != nil || qb != nil {
		var job *Job
		var ok bool
		var fromBatch bool
		// Interactive first: only when no interactive job is waiting may
		// a batch job be picked up.
		if qi != nil {
			select {
			case job, ok = <-qi:
				if !ok {
					qi = nil
					continue
				}
			default:
			}
		}
		if job == nil {
			switch {
			case qi != nil && qb != nil:
				select {
				case job, ok = <-qi:
					if !ok {
						qi = nil
						continue
					}
				case job, ok = <-qb:
					if !ok {
						qb = nil
						continue
					}
					fromBatch = true
				}
			case qi != nil:
				if job, ok = <-qi; !ok {
					qi = nil
					continue
				}
			default:
				if job, ok = <-qb; !ok {
					qb = nil
					continue
				}
				fromBatch = true
			}
		}
		if fromBatch {
			sh.nb.Add(-1)
		} else {
			sh.ni.Add(-1)
		}
		robust.Hit(robust.FPServeDequeue, sh.cfg.Name)
		sh.busy.Add(1)
		s.superviseJob(sh, job)
		sh.busy.Add(-1)
	}
}

// superviseJob runs one job under a panic boundary. A panic in the
// serve layer itself (not in a solver lane — those have their own
// supervision) fails the job, journals the failure and counts as a
// supervision failure for the shard's breaker.
func (s *Server) superviseJob(sh *shard, job *Job) {
	perr := robust.Capture("serve worker "+sh.cfg.Name, func() {
		s.runJob(sh, job)
	})
	if perr == nil {
		return
	}
	s.reg.Counter(MetricJobsFailed).Inc()
	view := s.finishJob(job, func(v *JobView) {
		v.Answer = AnswerUndecided
		v.Error = perr.Error()
	})
	s.journalDone(job, view)
	s.breakerResult(sh, job, true)
}

// breakerResult feeds a job outcome into the shard's breaker.
func (s *Server) breakerResult(sh *shard, job *Job, failure bool) {
	if sh.brk != nil {
		sh.brk.onResult(failure, job.probe)
	}
}

// shedJob rejects a job at dequeue time: it completes immediately as
// UNDECIDED with Shed set instead of occupying a solver. reason is
// "sojourn" (sat queued past the target) or "deadline" (its own
// deadline had already expired).
func (s *Server) shedJob(sh *shard, job *Job, queued time.Duration, reason string) {
	if reason == "sojourn" {
		s.reg.Counter(MetricShedSojourn).Inc()
	} else {
		s.reg.Counter(MetricShedDeadline).Inc()
	}
	view := s.finishJob(job, func(v *JobView) {
		v.Answer = AnswerUndecided
		v.Shed = true
		v.QueuedMS = queued.Milliseconds()
		v.Error = fmt.Sprintf("serve: shed at dequeue (%s): queued %v", reason, queued.Round(time.Millisecond))
	})
	s.journalDone(job, view)
	// Shedding is overload, not poison: the breaker learns nothing, and
	// a shed probe releases its claim so the next submit probes instead.
	if job.probe && sh.brk != nil {
		sh.brk.releaseProbe()
	}
}

// finishJob transitions a job to done exactly once (workers, the shed
// path and the panic boundary can race on a crashing worker), applies
// mutate to the view and closes the done channel. It returns the final
// view for journaling.
func (s *Server) finishJob(job *Job, mutate func(v *JobView)) JobView {
	job.mu.Lock()
	defer job.mu.Unlock()
	if job.view.State != StateDone {
		job.view.State = StateDone
		mutate(&job.view)
		job.finished = time.Now()
		s.reg.Counter(MetricJobsCompleted).Inc()
		close(job.done)
	}
	return job.view
}

// runJob executes one job end to end and publishes its result.
func (s *Server) runJob(sh *shard, job *Job) {
	started := time.Now()
	job.mu.Lock()
	queued := started.Sub(job.view.SubmittedAt)
	job.mu.Unlock()
	s.reg.Timer(MetricQueueWait).Observe(queued)

	// CoDel-style early rejection: a job that would be solved late is
	// cheaper to shed now than to solve for nobody.
	if !job.deadline.IsZero() && started.After(job.deadline) {
		s.shedJob(sh, job, queued, "deadline")
		return
	}
	if s.opts.SojournTarget > 0 && queued > s.opts.SojournTarget {
		s.shedJob(sh, job, queued, "sojourn")
		return
	}

	job.mu.Lock()
	job.view.State = StateRunning
	job.view.QueuedMS = queued.Milliseconds()
	job.mu.Unlock()
	robust.Hit(robust.FPServeWorker, job.ID, sh.cfg.Name)
	s.journalStart(job)

	ctx, cancel := context.WithDeadline(s.baseCtx, job.deadline)
	popts := job.popts
	popts.Pool = &sh.pool
	span := s.reg.StartSpan(MetricSolve)
	winner, all, err := portfolio.RunHardened(ctx, job.g, job.width, job.strategies, popts)
	elapsed := span.End()
	deadlineExceeded := ctx.Err() == context.DeadlineExceeded
	cancel()
	sh.adm.observe(elapsed)

	view := s.finishJob(job, func(v *JobView) {
		v.SolveMS = elapsed.Milliseconds()
		v.Lanes = laneViews(all)
		switch {
		case err == nil && winner.Status == sat.Sat:
			v.Answer = AnswerRoutable
			v.Winner = winner.Strategy.Name()
			v.Attempts = winner.Attempts
			if job.wantColors {
				v.Colors = winner.Colors
			}
		case err == nil && winner.Status == sat.Unsat:
			v.Answer = AnswerUnroutable
			v.Winner = winner.Strategy.Name()
			v.Attempts = winner.Attempts
		default:
			v.Answer = AnswerUndecided
			v.Attempts = maxAttempts(all)
			if err != nil {
				v.Error = err.Error()
			}
			if deadlineExceeded {
				v.TimedOut = true
				s.reg.Counter(MetricJobsTimeout).Inc()
			} else {
				s.reg.Counter(MetricJobsFailed).Inc()
			}
		}
	})
	s.journalDone(job, view)
	s.breakerResult(sh, job, supervisionFailure(err, all))
}

// supervisionFailure classifies a finished run for the circuit
// breaker: true only for the failure modes that indicate a poisoned
// shard — lane panics, watchdog abandonments and soundness violations.
// Timeouts, budget exhaustion and plain UNDECIDED answers are healthy
// overload behaviour and never trip a breaker.
func supervisionFailure(err error, all []portfolio.Result) bool {
	check := func(e error) bool {
		if e == nil {
			return false
		}
		if _, ok := robust.AsPanic(e); ok {
			return true
		}
		if _, ok := robust.AsSoundness(e); ok {
			return true
		}
		// The watchdog reports abandonment as a plain error (see
		// portfolio.RunHardened); match its fixed message.
		return strings.Contains(e.Error(), "abandoned by watchdog")
	}
	if check(err) {
		return true
	}
	for _, r := range all {
		if check(r.Err) {
			return true
		}
	}
	return false
}

// laneViews condenses the per-lane portfolio results for the job view.
func laneViews(all []portfolio.Result) []LaneView {
	out := make([]LaneView, len(all))
	for i, r := range all {
		out[i] = LaneView{
			Strategy:  r.Strategy.Name(),
			Status:    r.Status.String(),
			Attempts:  r.Attempts,
			Conflicts: r.Stats.Conflicts,
			ElapsedMS: r.Elapsed.Milliseconds(),
		}
		if r.Err != nil {
			out[i].Error = r.Err.Error()
		}
	}
	return out
}

// maxAttempts reports the largest per-lane attempt count — the
// "partial attempt info" an undecided job still carries.
func maxAttempts(all []portfolio.Result) int {
	max := 0
	for _, r := range all {
		if r.Attempts > max {
			max = r.Attempts
		}
	}
	return max
}

// janitor garbage-collects completed jobs past their retention and
// enforces the table cap between scrapes.
func (s *Server) janitor() {
	defer close(s.gcDone)
	t := time.NewTicker(s.opts.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.jobs.gc(time.Now().Add(-s.opts.RetainJobs), s.opts.MaxJobs)
		case <-s.stopGC:
			return
		}
	}
}

// Drain performs the graceful shutdown: admission stops, queued and
// in-flight jobs run to completion, then workers exit. If ctx expires
// first, the base context is cancelled so in-flight solves unwind
// promptly (their jobs complete as UNDECIDED), and Drain still waits
// for the workers before returning ctx's error. Drain is idempotent;
// concurrent calls all block until the drain finishes.
func (s *Server) Drain(ctx context.Context) error {
	s.admit.Lock()
	if !s.draining {
		s.draining = true
		for _, sh := range s.shards {
			close(sh.qi)
			close(sh.qb)
		}
		close(s.stopGC)
	}
	s.admit.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
		<-s.gcDone
	case <-ctx.Done():
		s.cancelBase() // abort in-flight solves; they exit via cancellation polling
		<-done
		<-s.gcDone
		err = ctx.Err()
	}
	_ = s.journal.Close()
	return err
}

// Crash simulates SIGKILL at the serve layer: the journal stops
// persisting immediately (records already fsynced survive, exactly
// what a real crash preserves), in-flight solves are cancelled, and
// the goroutines are reaped without any of the drain path's result
// publication reaching disk. The crash-only recovery contract — open a
// new Server on the same JournalDir and every accepted-but-unfinished
// job is re-enqueued, every journaled result restored — is what the
// chaos suite exercises through this method.
func (s *Server) Crash() {
	s.journal.kill()
	s.cancelBase()
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Drain(expired)
}

// ShardStatus is one shard's slice of the readiness report.
type ShardStatus struct {
	Name string `json:"name"`
	// Breaker is the circuit-breaker state: closed, half-open or open
	// ("disabled" when breakers are off).
	Breaker string `json:"breaker"`
	// Queued and Cap are the interactive backlog and its capacity; a
	// shard with a full interactive queue or an open breaker is not
	// ready.
	Queued int  `json:"queued"`
	Cap    int  `json:"cap"`
	Ready  bool `json:"ready"`
}

// Readiness reports whether the server should receive new traffic and
// the per-shard detail behind the verdict: not draining, and at least
// one shard with a closed (or half-open) breaker and a non-full
// interactive queue.
func (s *Server) Readiness() (bool, []ShardStatus) {
	draining := s.Draining()
	shards := make([]ShardStatus, 0, len(s.shards))
	anyReady := false
	for _, sh := range s.shards {
		st := ShardStatus{
			Name:    sh.cfg.Name,
			Breaker: "disabled",
			Queued:  int(sh.ni.Load()),
			Cap:     cap(sh.qi),
		}
		open := false
		if sh.brk != nil {
			state := sh.brk.current()
			st.Breaker = breakerStateNames[state]
			open = state == breakerOpen
		}
		st.Ready = !draining && !open && st.Queued < st.Cap
		anyReady = anyReady || st.Ready
		shards = append(shards, st)
	}
	return !draining && anyReady, shards
}
