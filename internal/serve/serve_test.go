package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"fpgasat/internal/graph"
	"fpgasat/internal/robust"
)

// triangleCol is a 3-vertex conflict graph needing exactly 3 tracks —
// the smallest non-trivial job body.
const triangleCol = "p edge 3 3\ne 1 2\ne 2 3\ne 1 3\n"

// newTestServer builds a server with a compact single-shard layout
// unless cfg overrides it, and drains it at test end.
func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Shards == nil {
		opts.Shards = []ShardConfig{{Name: "only", MaxVertices: 0, Workers: 2, QueueDepth: 16}}
	}
	if opts.GCInterval == 0 {
		opts.GCInterval = time.Hour // keep the janitor quiet unless the test wants it
	}
	s, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s
}

// waitDone blocks until the job completes or the test deadline nears.
func waitDone(t *testing.T, j *Job) JobView {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not complete", j.ID)
	}
	return j.View()
}

func TestClassifyRoutesBySize(t *testing.T) {
	s := newTestServer(t, Options{Shards: []ShardConfig{
		{Name: "large", MaxVertices: 0, Workers: 1, QueueDepth: 1},
		{Name: "small", MaxVertices: 10, Workers: 1, QueueDepth: 1},
		{Name: "medium", MaxVertices: 1000, Workers: 1, QueueDepth: 1},
	}})
	// NewServer sorts by bound, so classification is by ascending size.
	for _, tc := range []struct {
		n    int
		want string
	}{{1, "small"}, {10, "small"}, {11, "medium"}, {1000, "medium"}, {1001, "large"}} {
		if got := s.classify(tc.n).cfg.Name; got != tc.want {
			t.Errorf("classify(%d) = %s, want %s", tc.n, got, tc.want)
		}
	}
}

func TestNewServerRejectsBadLayouts(t *testing.T) {
	if _, err := NewServer(Options{Shards: []ShardConfig{{Name: "a", MaxVertices: 10}}}); err == nil {
		t.Error("layout without an unbounded catch-all was accepted")
	}
	if _, err := NewServer(Options{Shards: []ShardConfig{
		{Name: "a", MaxVertices: 10}, {Name: "a", MaxVertices: 0},
	}}); err == nil {
		t.Error("duplicate shard names were accepted")
	}
	if _, err := NewServer(Options{Shards: []ShardConfig{{MaxVertices: 0}}}); err == nil {
		t.Error("unnamed shard was accepted")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Options{})
	for name, req := range map[string]SolveRequest{
		"empty":                   {},
		"both inputs":             {Instance: "alu2", Graph: triangleCol},
		"graph without width":     {Graph: triangleCol},
		"unknown instance":        {Instance: "no-such-instance"},
		"bad graph":               {Graph: "p edge nonsense", Width: 3},
		"bad strategy":            {Graph: triangleCol, Width: 3, Strategy: "no-such-encoding"},
		"portfolio plus strategy": {Graph: triangleCol, Width: 3, Portfolio: true, Strategy: DefaultStrategy},
		"negative width":          {Graph: triangleCol, Width: -1},
		"oversized width":         {Graph: triangleCol, Width: MaxSubmitWidth + 1},
		"negative lanes":          {Graph: triangleCol, Width: 3, Lanes: -2},
		"oversized lanes":         {Graph: triangleCol, Width: 3, Lanes: MaxSubmitLanes + 1},
		"negative retries":        {Graph: triangleCol, Width: 3, MaxRetries: -1},
		"oversized retries":       {Graph: triangleCol, Width: 3, MaxRetries: MaxSubmitRetries + 1},
		"negative budget":         {Graph: triangleCol, Width: 3, ConflictBudget: -5},
		"negative deadline":       {Graph: triangleCol, Width: 3, DeadlineMS: -1},
		"negative lane timeout":   {Graph: triangleCol, Width: 3, LaneTimeoutMS: -1},
	} {
		if _, err := s.Submit(req); err == nil {
			t.Errorf("%s: Submit accepted an invalid request", name)
		} else if _, ok := err.(*RequestError); !ok {
			t.Errorf("%s: error %v is not a *RequestError", name, err)
		}
	}
}

func TestSolveInlineGraph(t *testing.T) {
	s := newTestServer(t, Options{})
	job, err := s.Submit(SolveRequest{Graph: triangleCol, Width: 3, WantColors: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, job)
	if v.Answer != AnswerRoutable {
		t.Fatalf("triangle at W=3: answer %s (error %q), want ROUTABLE", v.Answer, v.Error)
	}
	if len(v.Colors) != 3 {
		t.Fatalf("want_colors returned %d colors, want 3", len(v.Colors))
	}
	if v.Winner == "" || v.Attempts < 1 {
		t.Errorf("winner %q attempts %d: incomplete result", v.Winner, v.Attempts)
	}

	job, err = s.Submit(SolveRequest{Graph: triangleCol, Width: 2, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if v := waitDone(t, job); v.Answer != AnswerUnroutable {
		t.Fatalf("triangle at W=2: answer %s, want UNROUTABLE", v.Answer)
	}
}

func TestQueueFullRejects(t *testing.T) {
	s := newTestServer(t, Options{Shards: []ShardConfig{
		{Name: "only", MaxVertices: 0, Workers: 1, QueueDepth: 1},
	}})
	release := make(chan struct{})
	var once sync.Once
	releaseAll := func() { once.Do(func() { close(release) }) }
	robust.SetFailpoint(robust.FPPortfolioLane, func(args ...any) { <-release })
	// Cleanups run LIFO, so this fires before newTestServer's Drain —
	// a failed test must not leave the worker parked on the failpoint.
	t.Cleanup(func() {
		robust.ClearFailpoint(robust.FPPortfolioLane)
		releaseAll()
	})

	running, err := s.Submit(SolveRequest{Graph: triangleCol, Width: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the single worker has dequeued the stalled job, so the
	// next submit occupies the one queue slot deterministically.
	for running.View().State != StateRunning {
		time.Sleep(time.Millisecond)
	}
	queued, err := s.Submit(SolveRequest{Graph: triangleCol, Width: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(SolveRequest{Graph: triangleCol, Width: 3}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit returned %v, want ErrQueueFull", err)
	} else {
		var qf *QueueFullError
		if !errors.As(err, &qf) || qf.RetryAfter < time.Second {
			t.Fatalf("queue-full error %#v should carry a Retry-After of at least 1s", err)
		}
	}
	if got := s.reg.Counter(MetricJobsRejected).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricJobsRejected, got)
	}

	releaseAll()
	waitDone(t, running)
	waitDone(t, queued)
}

func TestDrainFinishesInFlightJobsAndStopsAdmission(t *testing.T) {
	s := newTestServer(t, Options{Shards: []ShardConfig{
		{Name: "only", MaxVertices: 0, Workers: 2, QueueDepth: 16},
	}})
	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, err := s.Submit(SolveRequest{Graph: triangleCol, Width: 3})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, j := range jobs {
		v := j.View()
		if v.State != StateDone || v.Answer != AnswerRoutable {
			t.Errorf("job %s after drain: state %s answer %s, want done/ROUTABLE", j.ID, v.State, v.Answer)
		}
	}
	if !s.Draining() {
		t.Error("Draining() = false after Drain")
	}
	if _, err := s.Submit(SolveRequest{Graph: triangleCol, Width: 3}); err != ErrDraining {
		t.Errorf("submit after drain returned %v, want ErrDraining", err)
	}
	// Idempotent: a second drain returns immediately.
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

func TestDrainTimeoutCancelsInFlightSolves(t *testing.T) {
	s := newTestServer(t, Options{Shards: []ShardConfig{
		{Name: "only", MaxVertices: 0, Workers: 1, QueueDepth: 4},
	}})
	// A pigeonhole refutation (K18 at 17 colors, no symmetry breaking)
	// cannot finish inside the drain window; the solver stays busy
	// until the expired drain cancels it.
	job, err := s.Submit(SolveRequest{Graph: cliqueDIMACS(18), Width: 17, Strategy: "log", DeadlineMS: 120_000})
	if err != nil {
		t.Fatal(err)
	}
	for job.View().State != StateRunning {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err = s.Drain(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("drain returned %v, want context.DeadlineExceeded", err)
	}
	// The cancelled solve must still have completed its job record.
	v := waitDone(t, job)
	if v.State != StateDone {
		t.Errorf("job state %s after cancelled drain, want done", v.State)
	}
}

// cliqueDIMACS renders K_n in DIMACS edge format; coloring it with
// n-1 colors and no symmetry breaking is a pigeonhole refutation, the
// canonical exponentially-hard CDCL input.
func cliqueDIMACS(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "p edge %d %d\n", n, n*(n-1)/2)
	for u := 1; u <= n; u++ {
		for v := u + 1; v <= n; v++ {
			fmt.Fprintf(&b, "e %d %d\n", u, v)
		}
	}
	return b.String()
}

func TestJobGC(t *testing.T) {
	s := newTestServer(t, Options{
		RetainJobs: 10 * time.Millisecond,
		GCInterval: 5 * time.Millisecond,
	})
	job, err := s.Submit(SolveRequest{Graph: triangleCol, Width: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	deadline := time.Now().Add(10 * time.Second)
	for s.JobCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("job table still holds %d jobs after retention expired", s.JobCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok := s.Lookup(job.ID); ok {
		t.Error("completed job still resolvable after GC")
	}
}

func TestJobTableCapEvictsOldestDone(t *testing.T) {
	s := newTestServer(t, Options{MaxJobs: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		j, err := s.Submit(SolveRequest{Graph: triangleCol, Width: 3})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		ids = append(ids, j.ID)
	}
	if n := s.JobCount(); n > 2 {
		t.Errorf("job table holds %d jobs, cap is 2", n)
	}
	if _, ok := s.Lookup(ids[0]); ok {
		t.Error("oldest completed job survived the cap eviction")
	}
	if _, ok := s.Lookup(ids[3]); !ok {
		t.Error("newest job was evicted")
	}
}

func TestDeadlineMapsToUndecidedWithAttempts(t *testing.T) {
	s := newTestServer(t, Options{})
	// Stall the lane past the job deadline; the solve then observes the
	// expired context and returns Unknown with its attempt recorded.
	robust.SetFailpoint(robust.FPPortfolioLane, func(args ...any) { time.Sleep(150 * time.Millisecond) })
	t.Cleanup(func() { robust.ClearFailpoint(robust.FPPortfolioLane) })

	job, err := s.Submit(SolveRequest{Graph: triangleCol, Width: 3, DeadlineMS: 30})
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, job)
	if v.Answer != AnswerUndecided || !v.TimedOut {
		t.Fatalf("answer %s timed_out %v, want UNDECIDED with timed_out", v.Answer, v.TimedOut)
	}
	if v.Attempts < 1 || len(v.Lanes) != 1 || v.Lanes[0].Attempts < 1 {
		t.Errorf("partial attempt info missing: attempts %d lanes %+v", v.Attempts, v.Lanes)
	}
	if got := s.reg.Counter(MetricJobsTimeout).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricJobsTimeout, got)
	}
}

func TestInstanceCacheIsReused(t *testing.T) {
	s := newTestServer(t, Options{})
	e1, err := s.resolveInstance("alu2")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := s.resolveInstance("alu2")
	if err != nil {
		t.Fatal(err)
	}
	if e1.g != e2.g {
		t.Error("second resolveInstance rebuilt the graph instead of using the cache")
	}
	if _, err := graph.ParseDIMACS(strings.NewReader(triangleCol)); err != nil {
		t.Fatal(err)
	}
}
