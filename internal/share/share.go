// Package share implements a bounded learnt-clause exchange between
// the solvers of a parallel portfolio — the HordeSat-style cooperation
// layer that turns racing lanes into cooperating ones. Each lane owns
// a fixed-size ring of exported clauses; peers read the rings with
// private cursors, so exporters never block and a slow importer loses
// old clauses (counted, never waited for) instead of stalling the
// group.
//
// Clauses only make sense inside one variable space. Different
// encoding strategies allocate entirely different CNF variables for
// the same routing instance, so an exchange partitions its lanes into
// groups — in the portfolio, lanes of the same strategy name — and
// clauses flow strictly within a group. Diversification inside a group
// comes from per-lane solver seeds (sat.Options.Seed), not from
// varying the formula.
//
// Exports are filtered at the source (LBD and size bounds, default
// LBD ≤ 4 and ≤ 8 literals) and deduplicated by a commutative
// literal-set hash, which also stops a clause from ping-ponging: a
// lane that imported a clause will neither re-export it after learning
// it organically nor import it again from another peer.
//
// Deterministic replay mode trades the racing latency for a lockstep
// round structure: a lane's r-th restart exchanges exactly against its
// peers' first r export rounds, and import order follows a seeded
// per-lane schedule, so a run is a pure function of the formula and
// the seeds — the property the determinism and DRAT-replay tests rest
// on.
package share

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"fpgasat/internal/robust"
	"fpgasat/internal/sat"
)

// MaxShareableSize is the hard cap on the length of an exchanged
// clause; Options.MaxSize is clamped to it. Ring entries are
// fixed-size records so a lane's ring is one flat allocation.
const MaxShareableSize = 16

// maxSeenFingerprints bounds a lane's dedup set; when full it is
// discarded and restarted, trading occasional re-exports for bounded
// memory.
const maxSeenFingerprints = 1 << 16

// Options configure an Exchange. The zero value selects the defaults.
type Options struct {
	// MaxLBD admits only learnt clauses whose literal-block distance is
	// at most this bound (default 4): low-LBD "glue" clauses are the
	// ones worth shipping to peers.
	MaxLBD int32
	// MaxSize admits only clauses with at most this many literals
	// (default 8, clamped to MaxShareableSize).
	MaxSize int
	// RingSize is the per-lane export ring capacity in clauses (default
	// 256). Overwritten-before-read entries are counted as Dropped.
	RingSize int
	// ImportBudget bounds the clauses a lane imports per restart
	// boundary (default 64). Deterministic mode ignores it — replay
	// requires consuming every visible clause.
	ImportBudget int
	// Seed drives the per-lane import schedules (the order peers are
	// visited). Two runs with the same seed and Deterministic set replay
	// identically.
	Seed int64
	// Deterministic enables replay mode: lanes advance through lockstep
	// export rounds, so a lane's r-th import sees exactly the entries
	// its peers published in their first r rounds. Costs a barrier wait
	// per restart; leave it off when racing for wall-clock.
	Deterministic bool
}

func (o Options) withDefaults() Options {
	if o.MaxLBD <= 0 {
		o.MaxLBD = 4
	}
	if o.MaxSize <= 0 {
		o.MaxSize = 8
	}
	if o.MaxSize > MaxShareableSize {
		o.MaxSize = MaxShareableSize
	}
	if o.RingSize <= 0 {
		o.RingSize = 256
	}
	if o.ImportBudget <= 0 {
		o.ImportBudget = 64
	}
	return o
}

// Stats is a point-in-time view of exchange activity, the raw material
// of the portfolio.share.* counters.
type Stats struct {
	// Exported counts clauses published to a ring; Filtered counts
	// learnt clauses the LBD/size filter rejected at the source.
	Exported, Filtered int64
	// Duplicates counts dedup hits — clauses already exported or
	// imported by the same lane.
	Duplicates int64
	// Dropped counts ring entries overwritten before an importer read
	// them, plus deterministic-mode entries shed by the per-round
	// publish clamp.
	Dropped int64
	// Imported counts foreign clauses accepted by importing solvers;
	// Rejected counts the ones the solver declined (satisfied, unknown
	// variables, or — in proof mode — not RUP at import time).
	Imported, Rejected int64
}

// entry is one exported clause as stored in a ring.
type entry struct {
	n    int32
	lbd  int32
	lits [MaxShareableSize]sat.Lit
}

// Exchange is a clause exchange for a fixed set of lanes. Create one
// per portfolio run with NewExchange, hand Lane(i) to lane i's solver
// as its sat.Options.Exchange, and Close it once the run is decided so
// deterministic-mode waiters unblock.
type Exchange struct {
	opts Options

	exported   atomic.Int64
	filtered   atomic.Int64
	duplicates atomic.Int64
	dropped    atomic.Int64
	imported   atomic.Int64
	rejected   atomic.Int64

	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	lanes  []*Lane
}

// NewExchange builds an exchange for len(groups) lanes. groups[i]
// names lane i's sharing group — in the portfolio, the strategy name —
// and clauses flow only between lanes of the same group: different
// strategies encode into different variable spaces, where a foreign
// clause would be meaningless at best and unsound at worst.
func NewExchange(groups []string, opts Options) *Exchange {
	opts = opts.withDefaults()
	e := &Exchange{opts: opts}
	e.cond = sync.NewCond(&e.mu)
	e.lanes = make([]*Lane, len(groups))
	for i, g := range groups {
		e.lanes[i] = &Lane{
			ex:    e,
			id:    i,
			group: g,
			ring:  make([]entry, opts.RingSize),
			seen:  make(map[uint64]struct{}),
			rng:   rand.New(rand.NewSource(MixSeed(opts.Seed, int64(i)))),
		}
	}
	for _, l := range e.lanes {
		for _, p := range e.lanes {
			if p.id != l.id && p.group == l.group {
				l.peers = append(l.peers, p)
			}
		}
		l.cursors = make([]int, len(l.peers))
	}
	return e
}

// Lane returns lane i's port into the exchange.
func (e *Exchange) Lane(i int) *Lane { return e.lanes[i] }

// Close releases the exchange: deterministic-mode waiters wake and no
// further imports are served. It is idempotent and safe to call
// concurrently with lane activity; the portfolio closes the exchange
// as soon as the run is decided or cancelled.
func (e *Exchange) Close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// Stats returns a snapshot of the exchange counters. Safe to call at
// any time.
func (e *Exchange) Stats() Stats {
	return Stats{
		Exported:   e.exported.Load(),
		Filtered:   e.filtered.Load(),
		Duplicates: e.duplicates.Load(),
		Dropped:    e.dropped.Load(),
		Imported:   e.imported.Load(),
		Rejected:   e.rejected.Load(),
	}
}

// Lane is one solver's port into the exchange; it implements
// sat.ClauseExchange. All methods except the Exchange's Close must be
// called from the lane's own solving goroutine.
type Lane struct {
	ex      *Exchange
	id      int
	group   string
	peers   []*Lane
	cursors []int // per-peer count of entries consumed, parallel to peers
	rng     *rand.Rand

	// Owner-goroutine state.
	pending []entry
	seen    map[uint64]struct{}
	batch   []entry
	scratch []sat.Lit

	// Guarded by ex.mu.
	ring   []entry
	head   int   // total entries ever published to the ring
	marks  []int // head value after each completed export round
	closed bool
}

// ID returns the lane's index in the exchange.
func (l *Lane) ID() int { return l.id }

// Group returns the lane's sharing-group name.
func (l *Lane) Group() string { return l.group }

// Peers returns how many lanes share this lane's group. A lane with no
// peers has nothing to exchange with; the portfolio skips hooking such
// lanes into their solvers entirely.
func (l *Lane) Peers() int { return len(l.peers) }

// Learnt implements sat.ClauseExchange: filter, dedup and buffer a
// just-learnt clause for publication at the next restart boundary.
// Runs on the solver's hot path, so it is allocation-free past the
// dedup map.
func (l *Lane) Learnt(lits []sat.Lit, lbd int32) {
	o := &l.ex.opts
	if len(lits) == 0 || len(lits) > o.MaxSize || lbd > o.MaxLBD {
		l.ex.filtered.Add(1)
		return
	}
	fp := fingerprint(lits)
	if _, ok := l.seen[fp]; ok {
		l.ex.duplicates.Add(1)
		return
	}
	l.remember(fp)
	var e entry
	e.n = int32(len(lits))
	e.lbd = lbd
	copy(e.lits[:], lits)
	l.pending = append(l.pending, e)
}

// Restart implements sat.ClauseExchange: publish the buffered clauses
// as one export round, then import from the peer rings through add.
func (l *Lane) Restart(add func(lits []sat.Lit, lbd int32) bool) {
	robust.Hit(robust.FPShareExport, l.id, l.group)
	round := l.publish()
	if len(l.peers) == 0 {
		return
	}
	if l.ex.opts.Deterministic {
		l.ex.waitRound(l, round)
	}
	l.importBatch(add, round)
}

// Close marks the lane finished: remaining buffered clauses are
// published so peers can still use them, and deterministic-mode peers
// stop waiting for this lane's rounds. Idempotent.
//
// In deterministic mode the final flush is skipped (the leftovers are
// counted as Dropped): whether a peer observes the flush would depend
// on scheduling, while the lane's completed rounds are a deterministic
// function of the formula and seeds — exactly the visibility replay
// needs.
func (l *Lane) Close() {
	ex := l.ex
	ex.mu.Lock()
	if !l.closed {
		if ex.opts.Deterministic {
			ex.dropped.Add(int64(len(l.pending)))
			l.pending = l.pending[:0]
		} else {
			l.publishLocked()
		}
		l.closed = true
		ex.cond.Broadcast()
	}
	ex.mu.Unlock()
}

// publish moves the pending clauses into the lane's ring and completes
// one export round, returning the round number just completed.
func (l *Lane) publish() int {
	ex := l.ex
	ex.mu.Lock()
	l.publishLocked()
	l.marks = append(l.marks, l.head)
	round := len(l.marks)
	ex.cond.Broadcast()
	ex.mu.Unlock()
	return round
}

// publishLocked appends the pending entries to the ring. Caller holds
// ex.mu. In deterministic mode a round is clamped to half the ring:
// with lockstep guaranteeing peers are at most one round ahead, two
// half-ring rounds can never overwrite entries a peer has yet to read,
// which is what makes replay independent of scheduling.
func (l *Lane) publishLocked() {
	batch := l.pending
	if l.ex.opts.Deterministic {
		if max := len(l.ring) / 2; len(batch) > max {
			l.ex.dropped.Add(int64(len(batch) - max))
			batch = batch[:max]
		}
	}
	for _, e := range batch {
		l.ring[l.head%len(l.ring)] = e
		l.head++
	}
	l.ex.exported.Add(int64(len(batch)))
	l.pending = l.pending[:0]
}

// markAt returns the ring position visible to a peer importing at
// round r — the lane's head after its own round r, or its final head
// if it closed before reaching r. Caller holds ex.mu.
func (l *Lane) markAt(r int) int {
	if r <= len(l.marks) {
		return l.marks[r-1]
	}
	return l.head
}

// waitRound blocks lane l until every peer has completed export round
// r, closed, or the exchange closed — the lockstep barrier of
// deterministic replay.
func (ex *Exchange) waitRound(l *Lane, r int) {
	ex.mu.Lock()
	for _, p := range l.peers {
		for len(p.marks) < r && !p.closed && !ex.closed {
			ex.cond.Wait()
		}
	}
	ex.mu.Unlock()
}

// importBatch copies importable peer entries out under the lock, then
// delivers them to the solver through add outside it — add runs solver
// code (and the FPShareImport failpoint) that must not execute while
// holding the exchange mutex.
func (l *Lane) importBatch(add func(lits []sat.Lit, lbd int32) bool, round int) {
	ex := l.ex
	det := ex.opts.Deterministic
	budget := ex.opts.ImportBudget
	l.batch = l.batch[:0]
	var droppedN int64

	ex.mu.Lock()
	if ex.closed {
		ex.mu.Unlock()
		return
	}
	// Seeded import schedule: the peer visiting order rotates by a
	// per-lane pseudo-random offset each round, so a bounded budget does
	// not starve the same peer every restart.
	start := 0
	if len(l.peers) > 1 {
		start = l.rng.Intn(len(l.peers))
	}
	for i := 0; i < len(l.peers); i++ {
		if !det && budget <= 0 {
			break
		}
		pi := (start + i) % len(l.peers)
		p := l.peers[pi]
		limit := p.head
		if det {
			limit = p.markAt(round)
		}
		cur := l.cursors[pi]
		if lag := limit - len(p.ring); cur < lag {
			droppedN += int64(lag - cur)
			cur = lag
		}
		for cur < limit {
			if !det && budget <= 0 {
				break
			}
			l.batch = append(l.batch, p.ring[cur%len(p.ring)])
			cur++
			budget--
		}
		l.cursors[pi] = cur
	}
	ex.mu.Unlock()

	if droppedN > 0 {
		ex.dropped.Add(droppedN)
	}
	for i := range l.batch {
		e := &l.batch[i]
		lits := append(l.scratch[:0], e.lits[:e.n]...)
		l.scratch = lits
		fp := fingerprint(lits)
		if _, ok := l.seen[fp]; ok {
			ex.duplicates.Add(1)
			continue
		}
		robust.Hit(robust.FPShareImport, l.id, &lits)
		if add(lits, e.lbd) {
			l.remember(fp)
			ex.imported.Add(1)
		} else {
			ex.rejected.Add(1)
		}
	}
}

// remember adds a fingerprint to the lane's dedup set, restarting the
// set when it reaches its size bound.
func (l *Lane) remember(fp uint64) {
	if len(l.seen) >= maxSeenFingerprints {
		l.seen = make(map[uint64]struct{})
	}
	l.seen[fp] = struct{}{}
}

// fingerprint hashes a clause as a literal set: per-literal hashes are
// combined commutatively, so two lanes that learnt the same clause
// with different literal orders deduplicate against each other.
func fingerprint(lits []sat.Lit) uint64 {
	h := 0x9e3779b97f4a7c15 * uint64(len(lits)+1)
	for _, l := range lits {
		h += splitmix64(uint64(uint32(l)) + 0x632be59bd9b4e019)
	}
	return splitmix64(h)
}

// MixSeed derives an independent child seed from a base seed and a
// salt (lane index, attempt number). It is the seed-splitting function
// shared by the exchange and the portfolio's per-lane solver seeding;
// the result is never zero, so derived sat.Options.Seed values never
// accidentally disable diversification.
func MixSeed(seed, salt int64) int64 {
	m := splitmix64(uint64(seed) ^ splitmix64(uint64(salt)+0x9e3779b97f4a7c15))
	if m == 0 {
		m = 0x9e3779b97f4a7c15
	}
	return int64(m)
}

// splitmix64 is the SplitMix64 mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
