package share

import (
	"bytes"
	"sync"
	"testing"

	"fpgasat/internal/sat"
)

func lits(ds ...int) []sat.Lit {
	out := make([]sat.Lit, len(ds))
	for i, d := range ds {
		out[i] = sat.LitFromDimacs(d)
	}
	return out
}

// collectImports drains a lane's imports into a slice via Restart.
func collectImports(l *Lane) [][]sat.Lit {
	var got [][]sat.Lit
	l.Restart(func(ls []sat.Lit, lbd int32) bool {
		got = append(got, append([]sat.Lit(nil), ls...))
		return true
	})
	return got
}

func TestFilterDedupAndFlow(t *testing.T) {
	ex := NewExchange([]string{"g", "g"}, Options{MaxLBD: 2, MaxSize: 3})
	l0, l1 := ex.Lane(0), ex.Lane(1)
	if l0.Peers() != 1 || l1.Peers() != 1 {
		t.Fatalf("peers = %d/%d, want 1/1", l0.Peers(), l1.Peers())
	}

	l0.Learnt(lits(1, 2, 3), 5)    // LBD above bound: filtered
	l0.Learnt(lits(1, 2, 3, 4), 1) // too long: filtered
	l0.Learnt(lits(1, 2, 3), 2)    // exported
	l0.Learnt(lits(3, 1, 2), 2)    // same literal set, reordered: duplicate
	l0.Restart(func([]sat.Lit, int32) bool { return false })

	st := ex.Stats()
	if st.Filtered != 2 || st.Duplicates != 1 || st.Exported != 1 {
		t.Fatalf("stats after export = %+v", st)
	}

	got := collectImports(l1)
	if len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("lane 1 imported %v, want one 3-literal clause", got)
	}
	if st := ex.Stats(); st.Imported != 1 || st.Rejected != 0 {
		t.Fatalf("stats after import = %+v", st)
	}

	// Re-import on the next round must dedup, and the importer must not
	// re-export a clause it imported.
	if got := collectImports(l1); len(got) != 0 {
		t.Fatalf("second import delivered %v, want nothing", got)
	}
	l1.Learnt(lits(2, 3, 1), 1) // organically re-learnt after import
	l1.Restart(func([]sat.Lit, int32) bool { return false })
	if got := collectImports(l0); len(got) != 0 {
		t.Fatalf("clause ping-ponged back to its exporter: %v", got)
	}
}

func TestGroupIsolation(t *testing.T) {
	ex := NewExchange([]string{"a", "b", "a"}, Options{})
	if ex.Lane(0).Peers() != 1 || ex.Lane(1).Peers() != 0 || ex.Lane(2).Peers() != 1 {
		t.Fatalf("peer counts = %d/%d/%d, want 1/0/1",
			ex.Lane(0).Peers(), ex.Lane(1).Peers(), ex.Lane(2).Peers())
	}
	ex.Lane(1).Learnt(lits(7, 8), 1)
	ex.Lane(1).Restart(func([]sat.Lit, int32) bool { return true })
	if got := collectImports(ex.Lane(0)); len(got) != 0 {
		t.Fatalf("clause crossed group boundary: %v", got)
	}
}

func TestRingOverflowCountsDropped(t *testing.T) {
	ex := NewExchange([]string{"g", "g"}, Options{RingSize: 4, ImportBudget: 100})
	l0, l1 := ex.Lane(0), ex.Lane(1)
	for i := 0; i < 10; i++ {
		l0.Learnt(lits(i+1, i+2), 1)
	}
	l0.Restart(func([]sat.Lit, int32) bool { return false })

	got := collectImports(l1)
	if len(got) != 4 {
		t.Fatalf("imported %d clauses from a 4-slot ring, want 4", len(got))
	}
	if st := ex.Stats(); st.Dropped != 6 {
		t.Fatalf("Dropped = %d, want 6", st.Dropped)
	}
}

func TestImportBudgetBoundsBatch(t *testing.T) {
	ex := NewExchange([]string{"g", "g"}, Options{ImportBudget: 3})
	l0 := ex.Lane(0)
	for i := 0; i < 8; i++ {
		l0.Learnt(lits(i+1, i+2), 1)
	}
	l0.Restart(func([]sat.Lit, int32) bool { return false })
	if got := collectImports(ex.Lane(1)); len(got) != 3 {
		t.Fatalf("imported %d clauses, want budget of 3", len(got))
	}
	if got := collectImports(ex.Lane(1)); len(got) != 3 {
		t.Fatalf("second round imported %d clauses, want 3", len(got))
	}
}

func TestCloseUnblocksDeterministicWaiters(t *testing.T) {
	ex := NewExchange([]string{"g", "g"}, Options{Deterministic: true})
	done := make(chan struct{})
	go func() {
		// Lane 0 publishes round 1 and then waits for lane 1's round 1,
		// which never comes.
		ex.Lane(0).Restart(func([]sat.Lit, int32) bool { return true })
		close(done)
	}()
	ex.Lane(1).Close()
	<-done

	// Same again, unblocked by closing the whole exchange.
	ex2 := NewExchange([]string{"g", "g"}, Options{Deterministic: true})
	done2 := make(chan struct{})
	go func() {
		ex2.Lane(0).Restart(func([]sat.Lit, int32) bool { return true })
		close(done2)
	}()
	ex2.Close()
	<-done2
}

func TestMixSeedNeverZeroAndSpreads(t *testing.T) {
	seen := map[int64]bool{}
	for lane := int64(0); lane < 64; lane++ {
		m := MixSeed(1, lane)
		if m == 0 {
			t.Fatalf("MixSeed(1,%d) = 0", lane)
		}
		if seen[m] {
			t.Fatalf("MixSeed collision at lane %d", lane)
		}
		seen[m] = true
	}
}

// loadPHP adds the pigeonhole formula PHP(pigeons, holes) to the sink —
// unsat iff pigeons > holes, with enough conflicts to restart under a
// small RestartBase. Returns the formula for DRAT checking.
func loadPHP(add func(ds ...int) bool, pigeons, holes int) *sat.CNF {
	cnf := &sat.CNF{}
	v := func(p, h int) int { return p*holes + h + 1 }
	for p := 0; p < pigeons; p++ {
		cl := make([]int, holes)
		for h := 0; h < holes; h++ {
			cl[h] = v(p, h)
		}
		cnf.AddClause(cl...)
		add(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				cnf.AddClause(-v(p1, h), -v(p2, h))
				add(-v(p1, h), -v(p2, h))
			}
		}
	}
	return cnf
}

type sharedRun struct {
	status []sat.Status
	proofs [][]byte
	stats  []sat.Stats
	share  Stats
}

// runSharedPHP solves PHP(7,6) on n cooperating solvers in
// deterministic replay mode, each with its own seed and DRAT proof.
func runSharedPHP(t *testing.T, n int, seed int64) sharedRun {
	t.Helper()
	groups := make([]string, n)
	for i := range groups {
		groups[i] = "php"
	}
	ex := NewExchange(groups, Options{Seed: seed, Deterministic: true})
	defer ex.Close()

	out := sharedRun{
		status: make([]sat.Status, n),
		proofs: make([][]byte, n),
		stats:  make([]sat.Stats, n),
	}
	bufs := make([]bytes.Buffer, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lane := ex.Lane(i)
			defer lane.Close()
			s := sat.New(sat.Options{
				Seed:        MixSeed(seed, int64(i)),
				RestartBase: 10,
				ProofWriter: &bufs[i],
				Exchange:    lane,
			})
			loadPHP(s.AddDimacsClause, 7, 6)
			out.status[i] = s.Solve()
			out.stats[i] = s.Stats
			if err := s.ProofError(); err != nil {
				t.Errorf("lane %d proof error: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	for i := range bufs {
		out.proofs[i] = bufs[i].Bytes()
	}
	out.share = ex.Stats()
	return out
}

// TestDeterministicReplayIdenticalProofs is the determinism acceptance
// test: two seeded replay runs of a cooperating solver group must
// produce identical answers, identical per-lane statistics and
// byte-identical, DRAT-valid proofs.
func TestDeterministicReplayIdenticalProofs(t *testing.T) {
	cnf := loadPHP(func(ds ...int) bool { return true }, 7, 6)
	a := runSharedPHP(t, 3, 42)
	b := runSharedPHP(t, 3, 42)

	for i := range a.status {
		if a.status[i] != sat.Unsat || b.status[i] != sat.Unsat {
			t.Fatalf("lane %d: statuses %v / %v, want Unsat", i, a.status[i], b.status[i])
		}
		if a.stats[i] != b.stats[i] {
			t.Fatalf("lane %d stats differ between replay runs:\n  %+v\n  %+v", i, a.stats[i], b.stats[i])
		}
		if !bytes.Equal(a.proofs[i], b.proofs[i]) {
			t.Fatalf("lane %d: proofs differ between replay runs (%d vs %d bytes)",
				i, len(a.proofs[i]), len(b.proofs[i]))
		}
		if err := sat.CheckDRAT(cnf, bytes.NewReader(a.proofs[i])); err != nil {
			t.Fatalf("lane %d: DRAT certificate rejected: %v", i, err)
		}
	}
	if a.share != b.share {
		t.Fatalf("exchange stats differ between replay runs:\n  %+v\n  %+v", a.share, b.share)
	}
	if a.share.Exported == 0 {
		t.Fatalf("no clauses exported; sharing never engaged: %+v", a.share)
	}
	// A different seed must change the trajectories (the diversification
	// sharing relies on).
	c := runSharedPHP(t, 3, 7)
	same := true
	for i := range a.stats {
		if a.stats[i] != c.stats[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 7 produced identical per-lane statistics; seeding has no effect")
	}
}
