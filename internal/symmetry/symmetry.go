// Package symmetry implements the two symmetry-breaking heuristics of
// the paper (Sect. 5) for graph-coloring problems solved with K colors.
//
// Both heuristics rely on Van Gelder's observation that for any ordered
// sequence of K-1 vertices, the i-th vertex (1-based) can be restricted
// to colors < i without losing any solutions up to color permutation:
//
//   - b1 (Van Gelder): the sequence starts with the vertex of maximum
//     degree, followed by up to K-2 of its neighbors in descending
//     order of degree, ties broken by the sum of the neighbors'
//     degrees.
//   - s1 (this paper): the K-1 highest-degree vertices overall, sorted
//     in descending order of degree, ties broken by the sum of the
//     neighbors' degrees.
//
// The sequences are applied by shrinking the color domains of the
// selected vertices (vertex at 1-based position i gets domain
// {0,...,i-1}), which is equivalent to adding Van Gelder's restriction
// clauses but lets the encodings in package core allocate fewer Boolean
// variables for the restricted vertices.
package symmetry

import (
	"fmt"
	"sort"

	"fpgasat/internal/coloring"
	"fpgasat/internal/graph"
)

// Heuristic selects a symmetry-breaking vertex sequence.
type Heuristic string

const (
	// None disables symmetry breaking.
	None Heuristic = ""
	// B1 is Van Gelder's max-degree-plus-neighbors heuristic.
	B1 Heuristic = "b1"
	// S1 is the paper's global highest-degrees heuristic.
	S1 Heuristic = "s1"
	// C1 is an extension beyond the paper: the restricted sequence is a
	// greedily grown large clique, sorted by descending degree (ties by
	// neighbor-degree sum). Clique members must receive pairwise
	// distinct colors anyway, so the triangular restriction pins the
	// color permutation exactly where the coloring is tightest. Like
	// b1 and s1 it is sound for any vertex choice (Van Gelder).
	C1 Heuristic = "c1"
)

// Parse converts a string ("", "-", "none", "b1", "s1", "c1") to a
// Heuristic.
func Parse(s string) (Heuristic, error) {
	switch s {
	case "", "-", "none":
		return None, nil
	case "b1":
		return B1, nil
	case "s1":
		return S1, nil
	case "c1":
		return C1, nil
	}
	return None, fmt.Errorf("symmetry: unknown heuristic %q", s)
}

// Sequence returns the ordered vertex sequence selected by h for a
// K-coloring of g; position i (0-based) is restricted to colors <= i.
// The sequence has at most K-1 entries (fewer when the graph is small
// or, for b1, when the seed vertex has few neighbors). A nil slice
// means no restriction.
func Sequence(g *graph.Graph, k int, h Heuristic) []int {
	if k <= 1 || g.N() == 0 {
		return nil
	}
	switch h {
	case None:
		return nil
	case B1:
		return b1(g, k)
	case S1:
		return s1(g, k)
	case C1:
		return c1(g, k)
	}
	panic(fmt.Sprintf("symmetry: unknown heuristic %q", h))
}

// byDegreeDesc sorts vertices by descending degree, ties broken by
// descending neighbor-degree sum, final tie on index for determinism.
func byDegreeDesc(g *graph.Graph, vs []int) {
	sort.Slice(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if da, db := g.Degree(a), g.Degree(b); da != db {
			return da > db
		}
		if sa, sb := g.NeighborDegreeSum(a), g.NeighborDegreeSum(b); sa != sb {
			return sa > sb
		}
		return a < b
	})
}

func maxDegreeVertex(g *graph.Graph) int {
	best := 0
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(best) ||
			(g.Degree(v) == g.Degree(best) &&
				g.NeighborDegreeSum(v) > g.NeighborDegreeSum(best)) {
			best = v
		}
	}
	return best
}

func b1(g *graph.Graph, k int) []int {
	seed := maxDegreeVertex(g)
	seq := []int{seed}
	// Neighbors returns a read-only view into the CSR arrays; copy
	// before sorting so the graph stays immutable.
	row := g.Neighbors(seed)
	nbs := make([]int, len(row))
	for i, u := range row {
		nbs[i] = int(u)
	}
	byDegreeDesc(g, nbs)
	for _, u := range nbs {
		if len(seq) == k-1 {
			break
		}
		seq = append(seq, u)
	}
	return seq
}

func s1(g *graph.Graph, k int) []int {
	vs := make([]int, g.N())
	for i := range vs {
		vs[i] = i
	}
	byDegreeDesc(g, vs)
	if len(vs) > k-1 {
		vs = vs[:k-1]
	}
	return vs
}

func c1(g *graph.Graph, k int) []int {
	cl := coloring.GreedyClique(g)
	byDegreeDesc(g, cl)
	if len(cl) > k-1 {
		cl = cl[:k-1]
	}
	return cl
}
