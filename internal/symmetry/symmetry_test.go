package symmetry

import (
	"math/rand"
	"testing"

	"fpgasat/internal/graph"
)

func TestParse(t *testing.T) {
	for _, s := range []string{"", "-", "none"} {
		if h, err := Parse(s); err != nil || h != None {
			t.Errorf("Parse(%q) = %v, %v", s, h, err)
		}
	}
	if h, err := Parse("b1"); err != nil || h != B1 {
		t.Errorf("Parse(b1) = %v, %v", h, err)
	}
	if h, err := Parse("s1"); err != nil || h != S1 {
		t.Errorf("Parse(s1) = %v, %v", h, err)
	}
	if _, err := Parse("zz"); err == nil {
		t.Error("Parse(zz) accepted")
	}
}

func TestSequenceLengthBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		g := graph.Random(rng, 1+rng.Intn(30), rng.Float64())
		k := 1 + rng.Intn(8)
		for _, h := range []Heuristic{None, B1, S1} {
			seq := Sequence(g, k, h)
			if h == None && seq != nil {
				t.Fatal("None returned a sequence")
			}
			if len(seq) > k-1 {
				t.Fatalf("%s: sequence length %d > k-1=%d", h, len(seq), k-1)
			}
			seen := map[int]bool{}
			for _, v := range seq {
				if v < 0 || v >= g.N() || seen[v] {
					t.Fatalf("%s: invalid or duplicate vertex %d in %v", h, v, seq)
				}
				seen[v] = true
			}
		}
	}
}

func TestB1StartsAtMaxDegree(t *testing.T) {
	// Star graph: center 0 has max degree.
	b := graph.NewBuilder(6)
	for v := 1; v < 6; v++ {
		b.AddEdge(0, v)
	}
	g := b.Freeze()
	seq := Sequence(g, 4, B1)
	if len(seq) != 3 || seq[0] != 0 {
		t.Fatalf("b1 = %v, want [0 ...] of length 3", seq)
	}
	// Remaining entries must be neighbors of 0 (all vertices here).
	for _, v := range seq[1:] {
		if !g.HasEdge(0, v) {
			t.Fatalf("b1 member %d is not a neighbor of the seed", v)
		}
	}
}

func TestB1LimitedByNeighbors(t *testing.T) {
	// Two disjoint edges: seed has only 1 neighbor, so b1 yields 2
	// vertices even for large k.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Freeze()
	seq := Sequence(g, 10, B1)
	if len(seq) != 2 {
		t.Fatalf("b1 = %v, want length 2", seq)
	}
}

func TestS1PicksHighestDegrees(t *testing.T) {
	// Path 0-1-2-3-4: degrees 1,2,2,2,1.
	b := graph.NewBuilder(5)
	for v := 0; v < 4; v++ {
		b.AddEdge(v, v+1)
	}
	g := b.Freeze()
	seq := Sequence(g, 4, S1)
	if len(seq) != 3 {
		t.Fatalf("s1 = %v, want length 3", seq)
	}
	for _, v := range seq {
		if g.Degree(v) != 2 {
			t.Fatalf("s1 chose degree-%d vertex %d; middle vertices have degree 2", g.Degree(v), v)
		}
	}
}

func TestS1TieBreakByNeighborSum(t *testing.T) {
	// Vertices 1 and 4 both have degree 2, but 1's neighbors (0,2) have
	// higher total degree than 4's (3,5) in this construction.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2) // triangle boosts degrees of 0 and 2
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	g := b.Freeze()
	seq := Sequence(g, 2, S1)
	if len(seq) != 1 {
		t.Fatalf("s1 = %v, want length 1", seq)
	}
	if g.Degree(seq[0]) != 2 {
		t.Fatalf("wrong degree")
	}
	if seq[0] != 0 && seq[0] != 1 && seq[0] != 2 {
		t.Fatalf("tie-break failed: picked %d outside the triangle", seq[0])
	}
}

func TestKOneNoSequence(t *testing.T) {
	g := graph.Complete(3)
	if seq := Sequence(g, 1, S1); seq != nil {
		t.Fatalf("k=1 gave %v", seq)
	}
	if seq := Sequence(graph.New(0), 5, B1); seq != nil {
		t.Fatalf("empty graph gave %v", seq)
	}
}

func TestC1IsClique(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 30; trial++ {
		g := graph.Random(rng, 4+rng.Intn(25), 0.3+rng.Float64()*0.5)
		k := 2 + rng.Intn(6)
		seq := Sequence(g, k, C1)
		if len(seq) > k-1 {
			t.Fatalf("c1 too long: %v", seq)
		}
		for i := 0; i < len(seq); i++ {
			for j := i + 1; j < len(seq); j++ {
				if !g.HasEdge(seq[i], seq[j]) {
					t.Fatalf("c1 members %d,%d not adjacent", seq[i], seq[j])
				}
			}
		}
	}
}

func TestParseC1(t *testing.T) {
	h, err := Parse("c1")
	if err != nil || h != C1 {
		t.Fatalf("%v %v", h, err)
	}
}
