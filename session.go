package fpgasat

// A Session is the facade-level entry point for callers that solve
// many problems — CLI batch runs, experiment sweeps, a long-lived
// service. It owns a solver pool so that every solve, width search and
// portfolio run draws an arena-backed solver whose clause storage,
// watch lists and trail keep the capacity of earlier problems, and it
// records the solver-reuse and arena gauges (sat.reset.*, sat.arena.*)
// into its metrics registry so the memory behaviour is visible in
// -metrics-out dumps.

import (
	"context"
	"fmt"

	"fpgasat/internal/core"
	"fpgasat/internal/portfolio"
	"fpgasat/internal/robust"
	"fpgasat/internal/sat"
	"fpgasat/internal/search"
)

// Pool-related re-exports.
type (
	// SolverPool is a concurrency-safe pool of reusable solvers.
	SolverPool = sat.Pool
	// SolverPoolStats snapshots pool activity (gets, reuses, arena
	// footprint of the last returned solver).
	SolverPoolStats = sat.PoolStats
	// SolverArenaStats snapshots one solver's clause-arena state.
	SolverArenaStats = sat.ArenaStats
)

// Session metric names (gauges in the session's Metrics registry).
const (
	// MetricPoolSolvers is the cumulative number of solvers the session
	// pool handed out; MetricPoolReuses counts how many of those were
	// recycled instances rather than fresh allocations.
	MetricPoolSolvers = "sat.reset.solvers"
	MetricPoolReuses  = "sat.reset.count"
	// MetricArenaWords / MetricArenaCapWords sample the clause-arena
	// length and capacity of the most recently pooled solver.
	MetricArenaWords    = "sat.arena.words"
	MetricArenaCapWords = "sat.arena.cap_words"
	// MetricPoolFreedWords accumulates the arena words reclaimed by
	// garbage compaction across all pooled solvers.
	MetricPoolFreedWords = "sat.arena.freed_words"
	// MetricPoolOversized counts solvers the pool dropped instead of
	// retaining because their footprint exceeded the pool cap.
	MetricPoolOversized = "sat.reset.oversized"
)

// Session is a reusable solving context: one solver pool plus an
// optional metrics registry shared by all its operations. Create one
// per process (or per tenant) and use it for every request; it is safe
// for concurrent use.
type Session struct {
	pool    SolverPool
	metrics *Metrics
}

// NewSession returns a Session recording into m, which may be nil for
// no telemetry.
func NewSession(m *Metrics) *Session {
	return &Session{metrics: m}
}

// Pool exposes the session's solver pool, e.g. to thread into
// lower-level APIs (SearchOptions.Pool) or experiment runners.
func (s *Session) Pool() *SolverPool { return &s.pool }

// Metrics returns the session's registry (nil when none was given).
func (s *Session) Metrics() *Metrics { return s.metrics }

// PoolStats snapshots the session pool's reuse counters, publishing
// them to the session's metrics registry as a side effect — call it
// before dumping metrics when the pool was driven through Pool()
// rather than the Session methods.
func (s *Session) PoolStats() SolverPoolStats {
	s.recordPoolMetrics()
	return s.pool.Stats()
}

// recordPoolMetrics publishes the pool's reuse and arena gauges.
func (s *Session) recordPoolMetrics() {
	if s.metrics == nil {
		return
	}
	ps := s.pool.Stats()
	s.metrics.Gauge(MetricPoolSolvers).Set(ps.Gets)
	s.metrics.Gauge(MetricPoolReuses).Set(ps.Reuses)
	s.metrics.Gauge(MetricArenaWords).Set(ps.ArenaWords)
	s.metrics.Gauge(MetricArenaCapWords).Set(ps.ArenaCapWords)
	s.metrics.Gauge(MetricPoolFreedWords).Set(ps.FreedWords)
	s.metrics.Gauge(MetricPoolOversized).Set(ps.Oversized)
}

// SolveCNF solves a formula on a pooled solver with context-based
// cancellation — the session counterpart of SolveCNFContext. The solve
// is supervised: a panicking solver is converted into a
// *robust.PanicError in SolveResult.Err (Status Unknown) and its
// corrupted instance is abandoned instead of returning to the pool.
func (s *Session) SolveCNF(ctx context.Context, c *CNF, opts SolverOptions) SolveResult {
	var res SolveResult
	if err := robust.Capture("session CNF solve", func() {
		robust.Hit(robust.FPSessionSolve, "cnf")
		res = sat.SolveCNFReusing(ctx, &s.pool, c, opts)
	}); err != nil {
		res = SolveResult{Status: Unknown, Err: err}
	}
	s.recordPoolMetrics()
	return res
}

// SolveGraph solves the k-coloring of g under one strategy on a pooled
// solver, streaming the encoding straight into the solver's clause
// arena (no intermediate CNF). For Sat it returns the verified
// coloring. The solve is supervised: a panic anywhere in encode, solve
// or decode comes back as a *robust.PanicError (Status Unknown), and
// the crashed solver is abandoned instead of returning to the pool.
func (s *Session) SolveGraph(ctx context.Context, g *Graph, k int, strategy Strategy, opts SolverOptions) (Status, []int, error) {
	if strategy.Encoding == nil {
		return Unknown, nil, fmt.Errorf("fpgasat: strategy lacks an encoding")
	}
	st := Unknown
	var colors []int
	var err error
	cerr := robust.Capture("session graph solve "+strategy.Name(), func() {
		robust.Hit(robust.FPSessionSolve, "graph")
		solver := s.pool.Get(opts)
		csp := core.BuildCSP(g, k, strategy.Symmetry)
		enc := core.EncodeInto(csp, strategy.Encoding, sat.SolverSink{S: solver})
		st = solver.SolveAssumingContext(ctx)
		if st == Sat {
			colors, err = enc.DecodeVerify(solver.Model())
		}
		// Reached only when the solve did not panic: the solver is
		// healthy and may be recycled.
		s.pool.Put(solver)
	})
	if cerr != nil {
		st, colors, err = Unknown, nil, cerr
	}
	s.recordPoolMetrics()
	if err != nil {
		return st, nil, err
	}
	return st, colors, nil
}

// MinWidth runs the incremental minimum-width search on a pooled
// solver, with the session's metrics registry filled in when the
// options leave it nil.
func (s *Session) MinWidth(ctx context.Context, g *Graph, opts SearchOptions) (*SearchResult, error) {
	if opts.Pool == nil {
		opts.Pool = &s.pool
	}
	if opts.Metrics == nil {
		opts.Metrics = s.metrics
	}
	res, err := search.MinWidth(ctx, g, opts)
	s.recordPoolMetrics()
	return res, err
}

// Portfolio races the strategies on the k-coloring of g with every
// lane drawing its solver from the session pool; telemetry goes to the
// session's metrics registry.
func (s *Session) Portfolio(ctx context.Context, g *Graph, k int, strategies []Strategy) (PortfolioResult, []PortfolioResult, error) {
	win, all, err := portfolio.RunPooled(ctx, g, k, strategies, s.metrics, &s.pool)
	s.recordPoolMetrics()
	return win, all, err
}

// PortfolioHardened is Portfolio with the full supervision layer
// (paranoid answer checking, per-lane watchdogs, budgeted retries)
// configured through opts; opts.Metrics and opts.Pool default to the
// session's registry and pool.
func (s *Session) PortfolioHardened(ctx context.Context, g *Graph, k int, strategies []Strategy, opts PortfolioOptions) (PortfolioResult, []PortfolioResult, error) {
	if opts.Metrics == nil {
		opts.Metrics = s.metrics
	}
	if opts.Pool == nil {
		opts.Pool = &s.pool
	}
	win, all, err := portfolio.RunHardened(ctx, g, k, strategies, opts)
	s.recordPoolMetrics()
	return win, all, err
}

// MinWidthPortfolio races the incremental width search across
// strategies, sharing the session pool between members.
func (s *Session) MinWidthPortfolio(ctx context.Context, g *Graph, opts SearchOptions, strategies []Strategy) (WidthResult, []WidthResult, error) {
	if opts.Pool == nil {
		opts.Pool = &s.pool
	}
	win, all, err := portfolio.RunMinWidth(ctx, g, opts, strategies, s.metrics)
	s.recordPoolMetrics()
	return win, all, err
}
