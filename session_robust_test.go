package fpgasat_test

import (
	"context"
	"testing"

	"fpgasat"
	"fpgasat/internal/graph"
	"fpgasat/internal/robust"
)

// TestSessionSolveGraphIsolatesPanic: a crash inside a Session solve
// must surface as a *PanicError instead of killing the process, and
// the session must stay usable (the crashed solver is abandoned, not
// returned to the pool).
func TestSessionSolveGraphIsolatesPanic(t *testing.T) {
	robust.SetFailpoint(robust.FPSessionSolve, func(args ...any) { panic("injected session crash") })
	session := fpgasat.NewSession(fpgasat.NewMetrics())
	g := graph.Complete(4)
	strategy, err := fpgasat.ParseStrategy("ITE-linear-2+muldirect/s1")
	if err != nil {
		t.Fatal(err)
	}

	st, colors, err := session.SolveGraph(context.Background(), g, 4, strategy, fpgasat.SolverOptions{})
	robust.ClearFailpoint(robust.FPSessionSolve)
	if _, ok := robust.AsPanic(err); !ok {
		t.Fatalf("session crash not isolated: st=%v err=%v", st, err)
	}
	if st != fpgasat.Unknown || colors != nil {
		t.Fatalf("crashed solve leaked a result: %v %v", st, colors)
	}

	// The session survives and answers correctly afterwards.
	st, colors, err = session.SolveGraph(context.Background(), g, 4, strategy, fpgasat.SolverOptions{})
	if err != nil || st != fpgasat.Sat {
		t.Fatalf("session unusable after isolated crash: st=%v err=%v", st, err)
	}
	if err := fpgasat.VerifyColoring(g, colors, 4); err != nil {
		t.Fatal(err)
	}
	if stats := session.PoolStats(); stats.Reuses != 0 {
		t.Fatalf("crashed solver re-entered the session pool: %+v", stats)
	}
}

// TestSessionSolveCNFIsolatesPanic: the CNF entry point reports the
// captured panic through SolveResult.Err.
func TestSessionSolveCNFIsolatesPanic(t *testing.T) {
	robust.SetFailpoint(robust.FPSessionSolve, func(args ...any) { panic("injected session crash") })
	t.Cleanup(func() { robust.ClearFailpoint(robust.FPSessionSolve) })
	session := fpgasat.NewSession(nil)

	var c fpgasat.CNF
	c.AddClause(1, 2)
	c.AddClause(-1)
	res := session.SolveCNF(context.Background(), &c, fpgasat.SolverOptions{})
	if _, ok := robust.AsPanic(res.Err); !ok {
		t.Fatalf("SolveResult.Err = %v, want *PanicError", res.Err)
	}
	if res.Status != fpgasat.Unknown {
		t.Fatalf("crashed solve reported %v", res.Status)
	}

	robust.ClearFailpoint(robust.FPSessionSolve)
	res = session.SolveCNF(context.Background(), &c, fpgasat.SolverOptions{})
	if res.Err != nil || res.Status != fpgasat.Sat {
		t.Fatalf("session unusable after isolated crash: %+v", res)
	}
	if len(res.Model) < 2 || !res.Model[1] {
		t.Fatalf("model wrong: %v", res.Model)
	}
}
